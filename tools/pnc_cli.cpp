// pnc — command-line interface to the printed-neuromorphic library.
//
//   pnc curve      --kind ptanh|inv [--omega r1,r2,r3,r4,r5,w,l] [--points N]
//   pnc fit        --kind ptanh|inv [--omega ...]
//   pnc datasets
//   pnc dataset    --name iris [--seed N]
//   pnc train      --dataset iris --out model.pnn [--eps 0.1] [--learnable 0|1]
//                  [--epochs N] [--patience N] [--hidden N] [--seed N]
//                  [--lr-theta A] [--lr-omega A] [--loss margin|xent]
//   pnc eval       --model model.pnn --dataset iris [--eps 0.1] [--mc N]
//                  [--backend reference|compiled]
//                  [--fault-model stuck_open|stuck_short|stuck_at|dead_nonlinear|
//                   drift|mixed] [--fault-rate R] [--spec A] [--fault-report f.json]
//
// `eval --backend compiled` runs the Monte-Carlo sweep on the compiled
// inference engine (src/infer) — bit-identical results, no autodiff graph.
// PNC_INFER_BACKEND=reference|compiled selects the backend when the flag is
// absent. --fault-report still needs the reference evaluator and is
// rejected (usage, exit 2) in combination with --backend compiled.
//   pnc certify    --model model.pnn --dataset iris [--eps 0.05]
//   pnc yield      --model model.pnn --dataset iris [--eps 0.1] [--spec 0.8]
//                  [--samples N] [--mode statistical|fixed] [--ci wilson|cp]
//                  [--ci-width W] [--confidence C] [--round N]
//                  [--antithetic 0|1] [--strata S] [--seed N] [--shard i/N]
//                  [--report shard.json] [--min-yield Y]
//                  [--baseline-model other.pnn]
//   pnc yield      merge SHARD.json... --out MERGED.json [--min-yield Y]
//                  [--merge-events a.jsonl,b.jsonl --merged-events out.jsonl]
//   pnc export     --model model.pnn [--out netlist.sp]
//   pnc cost       --model model.pnn
//   pnc report     diff BASELINE.json CANDIDATE.json [--tolerance-file F]
//   pnc report     check [CANDIDATE.json] --baseline B.json
//                  [--tolerance-file F] [--timing-warn-only 1]
//   pnc doctor     HEALTH.json
//   pnc serve      --dataset iris --emit-requests R.jsonl [--requests N] [--seed N]
//   pnc serve      --model model.pnn --replay R.jsonl [--batch B] [--queue-cap Q]
//                  [--check-reference 0|1] [--predictions-out P.jsonl]
//   pnc serve      --model model.pnn --dataset iris --self-load N [--batch B]
//                  [--deadline-ms D] [--queue-cap Q] [--submitters S]
//   pnc top        LIVESTATS.jsonl [--follow 1] [--history N]
//   pnc prof       summary PROFILE.json | flame PROFILE.json |
//                  diff BASE.json CAND.json [--top N]
//
// `prof` inspects pnc-profile/1 captures from the in-process sampling
// profiler (docs/OBSERVABILITY.md "Profiling"): `summary` prints the
// top-frames / kernel-cost / allocation tables, `flame` emits collapsed
// stacks ("a;b;c N" — pipe into flamegraph.pl or load into speedscope),
// `diff` attributes the wall-clock delta between two captures to the
// frames whose self-time moved most. `report diff|check` accept
// --profile-base DIR --profile-cand DIR to decorate timing regressions
// with the same attribution using `pnc-bench --profile` captures.
//
// `serve --replay/--self-load` additionally accept the live telemetry plane
// (docs/OBSERVABILITY.md "Live serving telemetry"):
//   --spans-out S.jsonl            pnc-spans/1 per-request phase timings
//   --live-stats-out L.jsonl       pnc-livestats/1 rolling-window snapshots
//   --live-stats-period-ms N       snapshot period (default 250)
//   --slo-p99-ms MS                arm the watchdog's latency_slo rule
//   --serve-health-out H.json      pnc-serve-health/1 flight recorder
//   --watchdog-canary KIND[:N]     inject N synthetic anomalous windows
// A self-load run whose watchdog tripped exits 4 (like `pnc doctor`).
// `top` renders a pnc-livestats/1 stream as a terminal dashboard;
// --follow 1 tails a growing file until its stream.close trailer arrives.
//
// `serve` drives the async batched serving runtime (src/serve,
// docs/ARCHITECTURE.md "The serving runtime"). --emit-requests writes a
// pnc-requests/1 log from a dataset's test rows; --replay feeds a log
// through a *deterministic* pipeline (deadline flush disabled — batch
// boundaries are a pure function of the request sequence and --batch) and,
// with --check-reference 1 (the default), exits 1 unless every served
// output voltage is bitwise-identical to the reference forward pass.
// --self-load measures throughput: S submitter threads push N total
// requests through the timed micro-batcher and the summary reports
// samples/sec, p50/p99 latency and shed (queue-full) counts.
//
// `yield` runs the large-scale Monte-Carlo yield campaign (src/yield) on
// the compiled engine; docs/YIELD.md is the statistical contract. --seed
// seeds the Monte-Carlo streams (the dataset split stays at its fixed
// seed). --mode fixed is bit-identical to pnn::estimate_yield; statistical
// mode may stop early on --ci-width and accepts --antithetic / --strata
// (budgets are rounded up to the variance-reduction granularity).
// --shard i/N runs one process-level shard (requires --report); `pnc yield
// merge` folds the shard reports into the byte-identical single-process
// report. --min-yield Y certifies the design (exit 3 when the CI lower
// bound misses Y). --baseline-model compares two designs under common
// random numbers instead of estimating one yield.
//
// `doctor` classifies a pnc-health/1 training flight recorder (written by
// `pnc train --health-out` / PNC_HEALTH_OUT) into a named verdict and exits
// 4 when the run diverged (loss_divergence / gradient_explosion), so CI
// divergence canaries can gate on it.
//
// `report` compares pnc-bench-suite/1 artifacts (written by pnc-bench) with
// noise-aware verdicts — relative thresholds for timings, absolute for
// accuracies — and exits 3 when the candidate regressed, so CI can gate on
// it. `check` defaults the candidate to the newest BENCH_*.json in the
// artifact directory (the two-command workflow: pnc-bench --smoke, then
// pnc report check --baseline baselines/ci.json).
//
// Unknown options are rejected (usage + exit code 2): a typo like
// --fault-rte must not silently run a different experiment.
//
// Every command also accepts the telemetry flags (docs/OBSERVABILITY.md):
//   --metrics-out report.json   write the run-report JSON on success
//   --trace-out trace.json      write the scoped-timer trace tree
//   --events-out events.jsonl   stream pnc-events/1 lines as the run goes
//   --chrome-trace-out t.json   Chrome trace-event view of the trace tree
//   --health-out health.json    training flight recorder (pnc-health/1)
//   --profile-out p.json        pnc-profile/1 sampling-profiler capture
//                               [--profile-hz N  sample rate, default 997]
// Any of these flags (or PNC_OBS=1 / PNC_METRICS_OUT / PNC_TRACE_OUT /
// PNC_EVENTS_OUT / PNC_CHROME_TRACE_OUT / PNC_HEALTH_OUT / PNC_PROF_OUT in
// the environment) enables metric collection; it never changes results.
//
// Surrogate models are loaded from (or built into) the artifact cache, the
// same one the benches use ($PNC_ARTIFACTS, default ./artifacts).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <unistd.h>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "autodiff/ops.hpp"
#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "faults/fault_report.hpp"
#include "infer/backend.hpp"
#include "obs/baseline.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/events.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "pnn/certification.hpp"
#include "pnn/cost_analysis.hpp"
#include "pnn/netlist_export.hpp"
#include "pnn/robustness.hpp"
#include "pnn/serialize.hpp"
#include "pnn/training.hpp"
#include "prof/profile.hpp"
#include "prof/profiler.hpp"
#include "serve/pipeline.hpp"
#include "serve/request_log.hpp"
#include "serve/telemetry.hpp"
#include "yield/campaign.hpp"
#include "yield/yield_report.hpp"

using namespace pnc;

namespace {

/// A bad invocation (as opposed to a failed run): main prints usage and
/// exits with code 2.
struct UsageError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

struct Args {
    std::string command;
    std::vector<std::string> positionals;  ///< only report/doctor/yield take any
    std::map<std::string, std::string> options;

    std::string get(const std::string& key, const std::string& fallback = "") const {
        const auto it = options.find(key);
        return it == options.end() ? fallback : it->second;
    }
    double number(const std::string& key, double fallback) const {
        const auto it = options.find(key);
        return it == options.end() ? fallback : std::stod(it->second);
    }
    std::string require(const std::string& key) const {
        const auto it = options.find(key);
        if (it == options.end())
            throw UsageError("missing required option --" + key);
        return it->second;
    }
};

/// Reject any option outside the command's allow-list (plus the global
/// telemetry flags), so typos fail loudly instead of running a silently
/// different experiment.
void validate_options(const Args& args, std::initializer_list<const char*> allowed) {
    for (const auto& [key, value] : args.options) {
        (void)value;
        if (key == "metrics-out" || key == "trace-out" || key == "events-out" ||
            key == "chrome-trace-out" || key == "health-out" || key == "profile-out" ||
            key == "profile-hz")
            continue;
        bool known = false;
        for (const char* name : allowed) known |= key == name;
        if (!known)
            throw UsageError("unknown option --" + key + " for command '" + args.command +
                             "'");
    }
}

Args parse_args(int argc, char** argv) {
    Args args;
    if (argc < 2) throw UsageError("no command given (try 'pnc help')");
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string token = argv[i];
        if (token.rfind("--", 0) != 0) {
            // Positional argument (subcommand / artifact path). Only the
            // `report` command consumes any; dispatch() rejects the rest.
            args.positionals.push_back(std::move(token));
            continue;
        }
        token = token.substr(2);
        if (i + 1 >= argc) throw UsageError("--" + token + " needs a value");
        args.options[token] = argv[++i];
    }
    return args;
}

circuit::NonlinearCircuitKind parse_kind(const std::string& kind) {
    if (kind == "ptanh") return circuit::NonlinearCircuitKind::kPtanh;
    if (kind == "inv" || kind == "negative_weight")
        return circuit::NonlinearCircuitKind::kNegativeWeight;
    throw std::runtime_error("unknown circuit kind '" + kind + "' (ptanh | inv)");
}

circuit::Omega parse_omega(const Args& args, circuit::NonlinearCircuitKind kind) {
    const std::string spec = args.get("omega");
    if (spec.empty()) return circuit::default_omega(kind);
    std::array<double, circuit::Omega::kDimension> values{};
    std::stringstream ss(spec);
    std::string cell;
    std::size_t i = 0;
    while (std::getline(ss, cell, ',') && i < values.size()) values[i++] = std::stod(cell);
    if (i != values.size())
        throw std::runtime_error("--omega needs 7 comma-separated values");
    return circuit::Omega::from_array(values);
}

int cmd_curve(const Args& args) {
    const auto kind = parse_kind(args.get("kind", "ptanh"));
    const auto omega = parse_omega(args, kind);
    const auto points = static_cast<std::size_t>(args.number("points", 33));
    const auto curve = circuit::simulate_characteristic(omega, kind, points);
    std::printf("# Vin Vout\n");
    for (std::size_t i = 0; i < curve.vin.size(); ++i)
        std::printf("%.4f %.6f\n", curve.vin[i], curve.vout[i]);
    return 0;
}

int cmd_fit(const Args& args) {
    const auto kind = parse_kind(args.get("kind", "ptanh"));
    const auto omega = parse_omega(args, kind);
    const auto curve = circuit::simulate_characteristic(omega, kind, 48);
    const auto fit = fit::fit_ptanh(curve, kind);
    std::printf("eta1 = %.6f\neta2 = %.6f\neta3 = %.6f\neta4 = %.6f\nrmse = %.6f V\n",
                fit.eta.eta1, fit.eta.eta2, fit.eta.eta3, fit.eta.eta4, fit.rmse);
    return 0;
}

int cmd_datasets() {
    std::printf("%-22s %8s %6s %8s %7s\n", "name", "samples", "dims", "classes", "exact");
    for (const auto& spec : data::benchmark_specs())
        std::printf("%-22s %8zu %6zu %8d %7s\n", spec.name.c_str(), spec.samples,
                    spec.features, spec.classes, spec.exact ? "yes" : "no");
    return 0;
}

int cmd_dataset(const Args& args) {
    const auto ds = data::make_dataset(args.require("name"));
    const auto split = data::split_and_normalize(
        ds, static_cast<std::uint64_t>(args.number("seed", 99)));
    std::printf("%s: %zu samples, %zu features, %d classes\n", ds.name.c_str(), ds.size(),
                ds.n_features(), ds.n_classes);
    std::printf("split: %zu train / %zu val / %zu test (features scaled to [0,1] V)\n",
                split.x_train.rows(), split.x_val.rows(), split.x_test.rows());
    return 0;
}

struct Surrogates {
    surrogate::SurrogateModel act;
    surrogate::SurrogateModel neg;
};

Surrogates load_surrogates() {
    return {exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh),
            exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight)};
}

int cmd_train(const Args& args) {
    const auto surrogates = load_surrogates();
    const auto split = data::split_and_normalize(
        data::make_dataset(args.require("dataset")),
        static_cast<std::uint64_t>(args.number("seed", 99)));
    const auto hidden = static_cast<std::size_t>(args.number("hidden", 3));

    math::Rng rng(static_cast<std::uint64_t>(args.number("seed", 1)));
    pnn::Pnn net({split.n_features(), hidden, static_cast<std::size_t>(split.n_classes)},
                 &surrogates.act, &surrogates.neg, surrogate::DesignSpace::table1(), rng);

    pnn::TrainOptions options;
    options.epsilon = args.number("eps", 0.0);
    options.n_mc_train = options.epsilon > 0 ? static_cast<int>(args.number("mc", 10)) : 1;
    options.learnable_nonlinear = args.number("learnable", 1) != 0;
    options.max_epochs = static_cast<int>(args.number("epochs", 1500));
    options.patience = static_cast<int>(args.number("patience", 300));
    options.seed = static_cast<std::uint64_t>(args.number("seed", 1));
    options.lr_theta = args.number("lr-theta", options.lr_theta);
    options.lr_omega = args.number("lr-omega", options.lr_omega);
    if (const std::string loss = args.get("loss"); !loss.empty()) {
        if (loss == "margin")
            options.loss = pnn::LossKind::kMargin;
        else if (loss == "xent" || loss == "cross_entropy")
            options.loss = pnn::LossKind::kCrossEntropy;
        else
            throw UsageError("unknown --loss '" + loss + "' (margin | xent)");
    }
    const auto result = pnn::train_pnn(net, split, options);
    std::printf("trained %d epochs, best validation loss %.5f\n", result.epochs_run,
                result.best_val_loss);
    if (result.health.monitored) {
        std::printf("health: verdict %s (%llu anomalies, max grad norm %.4g)\n",
                    result.health.verdict.c_str(),
                    static_cast<unsigned long long>(result.health.anomalies),
                    result.health.max_grad_norm);
        const std::string dump = obs::health_out_path();
        if (!dump.empty())
            std::printf("health dump written to %s\n", dump.c_str());
    }

    const std::string out = args.get("out", "model.pnn");
    pnn::save_pnn_file(net, out);
    std::printf("model written to %s\n", out.c_str());
    return 0;
}

pnn::Pnn load_model(const Args& args, const Surrogates& surrogates) {
    return pnn::load_pnn_file(args.require("model"), &surrogates.act, &surrogates.neg,
                              surrogate::DesignSpace::table1());
}

int cmd_eval(const Args& args) {
    // Reject incoherent fault flags before any expensive work.
    const std::string fault_model_name = args.get("fault-model");
    if (fault_model_name.empty() &&
        (!args.get("fault-rate").empty() || !args.get("fault-report").empty()))
        throw UsageError("--fault-rate/--fault-report need --fault-model");

    // Backend selection: flag > PNC_INFER_BACKEND > reference.
    infer::Backend backend = infer::Backend::kReference;
    const std::string backend_arg = args.get("backend");
    if (!backend_arg.empty()) {
        const auto parsed = infer::parse_backend(backend_arg);
        if (!parsed)
            throw UsageError("--backend must be 'reference' or 'compiled', got '" +
                             backend_arg + "'");
        backend = *parsed;
    } else {
        try {
            backend = infer::backend_from_env();
        } catch (const std::invalid_argument& e) {
            throw UsageError(e.what());
        }
    }
    if (backend == infer::Backend::kCompiled && !args.get("fault-report").empty())
        throw UsageError(
            "--fault-report needs the reference evaluator (drop --backend compiled)");

    const auto surrogates = load_surrogates();
    const auto net = load_model(args, surrogates);
    const std::string dataset = args.require("dataset");
    const auto split = data::split_and_normalize(
        data::make_dataset(dataset), static_cast<std::uint64_t>(args.number("seed", 99)));
    pnn::EvalOptions options;
    options.epsilon = args.number("eps", 0.0);
    options.n_mc = static_cast<int>(args.number("mc", 100));
    const auto result = infer::evaluate_pnn(backend, net, split.x_test, split.y_test, options);
    std::printf("test accuracy @%.0f%% variation: %.4f +- %.4f (%zu Monte-Carlo samples)\n",
                options.epsilon * 100, result.mean_accuracy, result.std_accuracy,
                result.per_sample_accuracy.size());

    // Optional defect campaign on top of the variation sweep.
    if (fault_model_name.empty()) return 0;
    const double fault_rate = args.number("fault-rate", 0.01);
    const double spec = args.number("spec", 0.8);
    const auto n_mc = std::max(2, static_cast<int>(args.number("mc", 100)));
    const pnn::PnnOptions& pnn_opts = net.layer(0).options();
    const faults::FaultDomain domain{pnn_opts.g_max, pnn_opts.bias_voltage};
    const auto model = faults::make_fault_model(fault_model_name, fault_rate, domain);
    const auto fault_result = infer::estimate_yield_under_faults(
        backend, net, split.x_test, split.y_test, spec, options.epsilon, *model, n_mc,
        static_cast<std::uint64_t>(args.number("seed", 777)));
    std::printf("fault campaign (%s @ rate %.4g, %d copies): yield %.4f @ spec %.2f\n",
                model->name().c_str(), fault_rate, n_mc, fault_result.yield.yield, spec);
    std::printf("  accuracy mean %.4f / median %.4f / p5 %.4f / worst %.4f, "
                "mean defects per copy %.2f\n",
                fault_result.mean_accuracy, fault_result.yield.median_accuracy,
                fault_result.yield.p5_accuracy, fault_result.yield.worst_accuracy,
                fault_result.mean_fault_count);

    const std::string report_path = args.get("fault-report");
    if (!report_path.empty()) {
        faults::FaultReport report;
        report.tool = "pnc";
        faults::FaultReportEntry entry;
        entry.dataset = dataset;
        entry.model = model->name();
        entry.fault_rate = fault_rate;
        entry.samples = n_mc;
        entry.accuracy_spec = spec;
        entry.baseline_accuracy =
            ad::accuracy(net.predict(split.x_test), split.y_test);
        entry.yield = fault_result.yield.yield;
        entry.mean_accuracy = fault_result.mean_accuracy;
        entry.p5_accuracy = fault_result.yield.p5_accuracy;
        entry.median_accuracy = fault_result.yield.median_accuracy;
        entry.worst_accuracy = fault_result.yield.worst_accuracy;
        entry.mean_fault_count = fault_result.mean_fault_count;
        report.campaigns.push_back(entry);
        faults::write_fault_report(report_path, report);
        std::printf("fault report written to %s\n", report_path.c_str());
    }
    return 0;
}

int cmd_certify(const Args& args) {
    const auto surrogates = load_surrogates();
    const auto net = load_model(args, surrogates);
    const auto split = data::split_and_normalize(
        data::make_dataset(args.require("dataset")),
        static_cast<std::uint64_t>(args.number("seed", 99)));
    pnn::CertificationOptions options;
    options.epsilon = args.number("eps", 0.05);
    const auto result = pnn::certify(net, split.x_test, split.y_test, options);
    std::printf("certified accuracy @%.0f%%: %.4f (decision-stable fraction %.4f, "
                "%zu samples)\n",
                options.epsilon * 100, result.certified_accuracy,
                result.certified_fraction, result.samples);
    return 0;
}

yield::ShardSpec parse_shard(const std::string& spec) {
    const auto slash = spec.find('/');
    const auto bad = [&] {
        return UsageError("--shard must be i/N with 0 <= i < N, got '" + spec + "'");
    };
    if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) throw bad();
    yield::ShardSpec shard;
    try {
        shard.index = std::stoul(spec.substr(0, slash));
        shard.count = std::stoul(spec.substr(slash + 1));
    } catch (const std::exception&) {
        throw bad();
    }
    if (shard.count == 0 || shard.index >= shard.count) throw bad();
    return shard;
}

void print_yield_estimate(const yield::YieldEstimate& estimate,
                          const yield::YieldCampaignOptions& options) {
    std::printf("yield %.6f @ spec %.2f  (%llu passing / %llu samples, %zu rounds)\n",
                estimate.yield, options.accuracy_spec,
                static_cast<unsigned long long>(estimate.n_passing),
                static_cast<unsigned long long>(estimate.n_samples),
                estimate.rounds_used);
    std::printf("%.0f%% CI [%.6f, %.6f]  width %.2e  (%s)%s\n", estimate.confidence * 100,
                estimate.ci_lo, estimate.ci_hi, estimate.ci_width(),
                yield::ci_method_name(estimate.method),
                estimate.target_reached ? "  [target reached, stopped early]" : "");
    std::printf("accuracy mean %.4f / median %.4f / p5 %.4f / worst %.4f\n",
                estimate.mean_accuracy, estimate.median_accuracy, estimate.p5_accuracy,
                estimate.worst_accuracy);
}

/// The certification gate: exit 3 when the CI lower bound misses the
/// required yield, mirroring `pnc report`'s regression exit code.
int certify_min_yield(const yield::YieldEstimate& estimate, double min_yield) {
    const bool certified = estimate.ci_lo >= min_yield;
    std::printf("certification: CI lower bound %.6f %s min yield %.6f -> %s\n",
                estimate.ci_lo, certified ? ">=" : "<", min_yield,
                certified ? "CERTIFIED" : "NOT CERTIFIED");
    return certified ? 0 : 3;
}

std::string read_text_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw UsageError("cannot open " + path);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/// `pnc yield merge SHARD.json... --out MERGED.json` — fold shard reports
/// (and optionally their event streams) into the single-process-equivalent
/// artifacts.
int cmd_yield_merge(const Args& args) {
    validate_options(args, {"out", "min-yield", "merge-events", "merged-events"});
    if (args.positionals.size() < 2)
        throw UsageError("usage: pnc yield merge SHARD.json... --out MERGED.json");
    const std::string out = args.require("out");

    std::vector<yield::YieldReport> shards;
    for (std::size_t i = 1; i < args.positionals.size(); ++i) {
        const std::string& path = args.positionals[i];
        try {
            shards.push_back(
                yield::parse_yield_report(obs::json::Value::parse(read_text_file(path))));
        } catch (const UsageError&) {
            throw;  // missing file: bad invocation (exit 2)
        } catch (const std::exception& e) {
            throw std::runtime_error(path + ": " + e.what());
        }
    }
    const yield::YieldReport merged = yield::merge_yield_reports(shards);
    yield::write_yield_report(out, merged);
    std::printf("merged %zu shard report(s) into %s\n", shards.size(), out.c_str());
    print_yield_estimate(merged.result, yield::options_from_meta(merged.meta));

    // Optional pnc-events/1 merge rides along: one validated stream with
    // re-stamped seq and a `shard` field per line (docs/OBSERVABILITY.md).
    const std::string event_inputs = args.get("merge-events");
    const std::string event_out = args.get("merged-events");
    if (event_inputs.empty() != event_out.empty())
        throw UsageError("--merge-events and --merged-events go together");
    if (!event_inputs.empty()) {
        std::vector<std::string> streams;
        std::stringstream ss(event_inputs);
        std::string path;
        while (std::getline(ss, path, ','))
            if (!path.empty()) streams.push_back(read_text_file(path));
        const std::string merged_events = obs::merge_event_streams(streams, "pnc");
        std::ofstream os(event_out, std::ios::trunc);
        if (!os) throw std::runtime_error("cannot write merged event stream " + event_out);
        os << merged_events;
        std::printf("merged %zu event stream(s) into %s\n", streams.size(),
                    event_out.c_str());
    }

    if (args.options.count("min-yield"))
        return certify_min_yield(merged.result, args.number("min-yield", 0.0));
    return 0;
}

int cmd_yield(const Args& args) {
    if (!args.positionals.empty()) {
        if (args.positionals[0] == "merge") return cmd_yield_merge(args);
        throw UsageError("unknown yield subcommand '" + args.positionals[0] +
                         "' (only: merge)");
    }
    validate_options(args, {"model", "dataset", "eps", "spec", "samples", "mode", "ci",
                            "ci-width", "confidence", "round", "antithetic", "strata",
                            "seed", "shard", "report", "min-yield", "baseline-model"});

    yield::YieldCampaignOptions options;
    options.accuracy_spec = args.number("spec", 0.8);
    options.epsilon = args.number("eps", 0.1);
    options.confidence = args.number("confidence", 0.95);
    options.ci_width = args.number("ci-width", 0.0);
    options.round_size = static_cast<std::uint64_t>(args.number("round", 4096));
    options.antithetic = args.number("antithetic", 0) != 0;
    options.strata = static_cast<std::uint64_t>(args.number("strata", 1));
    options.seed = static_cast<std::uint64_t>(args.number("seed", 777));
    options.shard = parse_shard(args.get("shard", "0/1"));
    try {
        options.mode = yield::parse_campaign_mode(args.get("mode", "statistical"));
        options.method = yield::parse_ci_method(args.get("ci", "wilson"));
    } catch (const std::invalid_argument& e) {
        throw UsageError(e.what());
    }
    if (options.mode == yield::CampaignMode::kFixed &&
        (options.antithetic || options.strata > 1 || options.ci_width > 0))
        throw UsageError(
            "--antithetic/--strata/--ci-width need --mode statistical (fixed mode is "
            "the bit-identity contract)");

    // Round the budget up to the variance-reduction granularity: whole
    // antithetic pairs, equal allocation across strata.
    const std::uint64_t requested =
        static_cast<std::uint64_t>(args.number("samples", 10000));
    const std::uint64_t per_unit = options.antithetic ? 2 : 1;
    std::uint64_t units = (std::max<std::uint64_t>(requested, 2) + per_unit - 1) / per_unit;
    if (options.strata > 1)
        units = (units + options.strata - 1) / options.strata * options.strata;
    options.n_samples = units * per_unit;
    if (options.n_samples != requested)
        std::printf("note: budget rounded up %llu -> %llu (whole antithetic pairs / "
                    "equal strata allocation)\n",
                    static_cast<unsigned long long>(requested),
                    static_cast<unsigned long long>(options.n_samples));

    const std::string baseline_model = args.get("baseline-model");
    const std::string report_path = args.get("report");
    if (options.shard.is_sharded() && report_path.empty())
        throw UsageError("--shard runs write partial results: --report is required");
    if (options.shard.is_sharded() && args.options.count("min-yield"))
        throw UsageError("--min-yield needs the whole campaign: certify the merged "
                         "report via 'pnc yield merge --min-yield'");
    if (!baseline_model.empty())
        for (const char* flag : {"report", "shard", "min-yield", "mode", "ci-width",
                                 "antithetic", "strata"})
            if (args.options.count(flag))
                throw UsageError("--" + std::string(flag) +
                                 " does not apply to a --baseline-model comparison");

    const auto surrogates = load_surrogates();
    const auto net = load_model(args, surrogates);
    const std::string dataset = args.require("dataset");
    const auto split = data::split_and_normalize(data::make_dataset(dataset),
                                                 /*seed=*/99);
    const infer::CompiledPnn engine(net);

    // Paired comparison under common random numbers.
    if (!baseline_model.empty()) {
        const auto baseline = pnn::load_pnn_file(baseline_model, &surrogates.act,
                                                 &surrogates.neg,
                                                 surrogate::DesignSpace::table1());
        const infer::CompiledPnn engine_b(baseline);
        const auto paired =
            yield::compare_yield(engine, engine_b, split.x_test, split.y_test, options);
        std::printf("paired yield comparison (common random numbers, %llu samples each)\n",
                    static_cast<unsigned long long>(paired.n_samples));
        std::printf("  %-24s yield %.6f  CI [%.6f, %.6f]\n", args.require("model").c_str(),
                    paired.a.yield, paired.a.ci_lo, paired.a.ci_hi);
        std::printf("  %-24s yield %.6f  CI [%.6f, %.6f]\n", baseline_model.c_str(),
                    paired.b.yield, paired.b.ci_lo, paired.b.ci_hi);
        std::printf("  delta %+.6f  %.0f%% CI [%+.6f, %+.6f]  (discordant: %llu vs %llu)\n",
                    paired.delta, options.confidence * 100, paired.delta_ci.lo,
                    paired.delta_ci.hi, static_cast<unsigned long long>(paired.n10),
                    static_cast<unsigned long long>(paired.n01));
        return 0;
    }

    std::printf("yield campaign: %s mode, eps %.2f, budget %llu samples",
                yield::campaign_mode_name(options.mode), options.epsilon,
                static_cast<unsigned long long>(options.n_samples));
    if (options.shard.is_sharded())
        std::printf(" (shard %zu/%zu)", options.shard.index, options.shard.count);
    std::printf("\n");
    const auto result =
        yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
    if (options.shard.is_sharded())
        std::printf("shard %zu/%zu partial result — merge all shard reports with "
                    "'pnc yield merge':\n",
                    options.shard.index, options.shard.count);
    print_yield_estimate(result.estimate, options);

    if (!report_path.empty()) {
        yield::YieldReport report;
        report.meta.tool = "pnc";
        report.meta.dataset = dataset;
        report.meta.model_file = args.require("model");
        report.meta.mode = options.mode;
        report.meta.method = options.method;
        report.meta.accuracy_spec = options.accuracy_spec;
        report.meta.epsilon = options.epsilon;
        report.meta.confidence = options.confidence;
        report.meta.ci_width = options.ci_width;
        report.meta.n_samples = options.n_samples;
        report.meta.round_size = options.round_size;
        report.meta.seed = options.seed;
        report.meta.antithetic = options.antithetic;
        report.meta.strata = options.strata;
        report.meta.test_rows = result.test_rows;
        report.shard = options.shard;
        report.rounds = result.rounds;
        report.result = result.estimate;
        yield::write_yield_report(report_path, report);
        std::printf("yield report written to %s\n", report_path.c_str());
    }

    if (args.options.count("min-yield"))
        return certify_min_yield(result.estimate, args.number("min-yield", 0.0));
    return 0;
}

int cmd_export(const Args& args) {
    const auto surrogates = load_surrogates();
    const auto net = load_model(args, surrogates);
    const auto design = pnn::extract_design(net);
    const std::string spice = pnn::export_spice(design);
    const std::string out = args.get("out");
    if (out.empty()) {
        std::fputs(spice.c_str(), stdout);
    } else {
        std::ofstream(out) << spice;
        std::printf("netlist (%zu components) written to %s\n", design.component_count(),
                    out.c_str());
    }
    return 0;
}

int cmd_cost(const Args& args) {
    const auto surrogates = load_surrogates();
    const auto net = load_model(args, surrogates);
    const auto design = pnn::extract_design(net);
    pnn::CostAnalysisOptions options;
    options.transient.time_step = 20e-6;
    options.transient.duration = 40e-3;
    const auto cost = pnn::analyze_design_cost(design, options);
    std::printf("components: %zu\nstatic power: %.1f uW\nlatency: %.2f ms\n",
                cost.components, cost.total_watts * 1e6, cost.latency_seconds * 1e3);
    for (std::size_t l = 0; l < cost.layers.size(); ++l)
        std::printf("  layer %zu: crossbar %.1f uW, nonlinear %.1f uW, settle %.2f ms\n", l,
                    cost.layers[l].crossbar_watts * 1e6,
                    cost.layers[l].nonlinear_watts * 1e6,
                    cost.layers[l].settle_seconds * 1e3);
    return 0;
}

obs::BenchSuite load_suite_file(const std::string& path) {
    std::ifstream is(path);
    // Naming a file that is not there is a bad invocation (exit 2, path in
    // the message), distinct from a present-but-malformed artifact (exit 1).
    if (!is) throw UsageError("cannot open suite artifact " + path);
    std::stringstream ss;
    ss << is.rdbuf();
    try {
        return obs::parse_bench_suite(obs::json::Value::parse(ss.str()));
    } catch (const std::exception& e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

obs::ToleranceConfig load_tolerances(const Args& args) {
    const std::string path = args.get("tolerance-file");
    if (path.empty()) return {};
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open tolerance file " + path);
    std::stringstream ss;
    ss << is.rdbuf();
    try {
        return obs::ToleranceConfig::from_json(obs::json::Value::parse(ss.str()));
    } catch (const std::exception& e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

/// Newest BENCH_<utc>.json in the artifact directory — the timestamped
/// names sort lexicographically, so "newest" is the greatest filename.
std::string newest_bench_artifact() {
    std::string best;
    for (const auto& entry : std::filesystem::directory_iterator(exp::artifact_dir())) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json" &&
            name > best)
            best = name;
    }
    if (best.empty())
        throw std::runtime_error(
            "no BENCH_*.json artifact found in " + exp::artifact_dir() +
            " (run pnc-bench first, or name the candidate explicitly)");
    return exp::artifact_dir() + "/" + best;
}

int report_verdict(const obs::DiffResult& diff, bool timing_warn_only) {
    std::fputs(obs::format_diff(diff).c_str(), stdout);
    if (diff.accuracy_regressed) {
        std::printf("\nverdict: ACCURACY REGRESSION\n");
        return 3;
    }
    if (diff.throughput_regressed) {
        // Deliberately immune to --timing-warn-only: throughput baselines
        // carry their own generous tolerances, so a breach is signal.
        std::printf("\nverdict: THROUGHPUT REGRESSION\n");
        return 3;
    }
    if (diff.timing_regressed) {
        if (timing_warn_only) {
            std::printf("\nverdict: timing regression (warn-only, not gating)\n");
            return 0;
        }
        std::printf("\nverdict: TIMING REGRESSION\n");
        return 3;
    }
    std::printf("\nverdict: regression-free\n");
    return 0;
}

prof::Profile load_profile_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw UsageError("cannot open profile " + path);
    std::stringstream ss;
    ss << is.rdbuf();
    try {
        return prof::parse_profile(obs::json::Value::parse(ss.str()));
    } catch (const UsageError&) {
        throw;
    } catch (const std::exception& e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

/// `pnc report --profile-base/--profile-cand`: attribute each bench's
/// timing/throughput regression to the frames whose self-time moved most,
/// using the per-bench pnc-profile/1 captures from `pnc-bench --profile`
/// (<name>.profile.json in each directory). Benches without a capture on
/// both sides are skipped silently — attribution is best-effort decoration
/// on top of the gate, never part of it.
void print_profile_attribution(const obs::DiffResult& diff, const std::string& base_dir,
                               const std::string& cand_dir) {
    std::vector<std::string> benches;
    for (const auto& delta : diff.deltas) {
        if (delta.verdict != obs::Verdict::kRegressed) continue;
        if (delta.kind != obs::MetricKind::kTiming &&
            delta.kind != obs::MetricKind::kThroughput)
            continue;
        const std::string bench = delta.name.substr(0, delta.name.find('.'));
        if (std::find(benches.begin(), benches.end(), bench) == benches.end())
            benches.push_back(bench);
    }
    for (const std::string& bench : benches) {
        const std::string base_path = base_dir + "/" + bench + ".profile.json";
        const std::string cand_path = cand_dir + "/" + bench + ".profile.json";
        if (!std::ifstream(base_path) || !std::ifstream(cand_path)) continue;
        try {
            const auto profile_diff =
                prof::diff_profiles(load_profile_file(base_path),
                                    load_profile_file(cand_path));
            std::printf("\nprofile attribution for %s (%s vs %s):\n", bench.c_str(),
                        base_path.c_str(), cand_path.c_str());
            std::fputs(prof::format_profile_diff(profile_diff, 5).c_str(), stdout);
        } catch (const std::exception& e) {
            std::printf("\nprofile attribution for %s unavailable: %s\n", bench.c_str(),
                        e.what());
        }
    }
}

int cmd_report(const Args& args) {
    if (args.positionals.empty())
        throw UsageError("report needs a subcommand: diff | check");
    const std::string& sub = args.positionals[0];
    const std::string profile_base = args.get("profile-base");
    const std::string profile_cand = args.get("profile-cand");
    if (profile_base.empty() != profile_cand.empty())
        throw UsageError("--profile-base and --profile-cand go together");
    if (sub == "diff") {
        validate_options(args, {"tolerance-file", "profile-base", "profile-cand"});
        if (args.positionals.size() != 3)
            throw UsageError("usage: pnc report diff BASELINE.json CANDIDATE.json");
        const auto baseline = load_suite_file(args.positionals[1]);
        const auto candidate = load_suite_file(args.positionals[2]);
        const auto diff = diff_suites(baseline, candidate, load_tolerances(args));
        if (!profile_base.empty())
            print_profile_attribution(diff, profile_base, profile_cand);
        return report_verdict(diff, /*timing_warn_only=*/false);
    }
    if (sub == "check") {
        validate_options(args, {"baseline", "tolerance-file", "timing-warn-only",
                                "profile-base", "profile-cand"});
        if (args.positionals.size() > 2)
            throw UsageError(
                "usage: pnc report check [CANDIDATE.json] --baseline BASELINE.json");
        const auto baseline = load_suite_file(args.require("baseline"));
        const std::string candidate_path =
            args.positionals.size() == 2 ? args.positionals[1] : newest_bench_artifact();
        std::printf("candidate: %s\n", candidate_path.c_str());
        const auto candidate = load_suite_file(candidate_path);
        const auto diff = diff_suites(baseline, candidate, load_tolerances(args));
        if (!profile_base.empty())
            print_profile_attribution(diff, profile_base, profile_cand);
        return report_verdict(diff, args.number("timing-warn-only", 0) != 0);
    }
    throw UsageError("unknown report subcommand '" + sub + "' (diff | check)");
}

/// `pnc prof summary|flame|diff` — inspect pnc-profile/1 captures.
/// summary prints the top-frames/kernel/allocation tables, flame prints
/// the collapsed-stack export (pipe into flamegraph.pl or load into
/// speedscope), diff attributes the wall-clock delta between two captures
/// to the frames whose self-time moved most.
int cmd_prof(const Args& args) {
    if (args.positionals.empty())
        throw UsageError("prof needs a subcommand: summary | flame | diff");
    const std::string& sub = args.positionals[0];
    if (sub == "summary" || sub == "flame") {
        validate_options(args, {});
        if (args.positionals.size() != 2)
            throw UsageError("usage: pnc prof " + sub + " PROFILE.json");
        const prof::Profile profile = load_profile_file(args.positionals[1]);
        if (sub == "summary")
            std::fputs(prof::format_summary(profile).c_str(), stdout);
        else
            std::fputs(prof::collapsed_stacks(profile).c_str(), stdout);
        return 0;
    }
    if (sub == "diff") {
        validate_options(args, {"top"});
        if (args.positionals.size() != 3)
            throw UsageError("usage: pnc prof diff BASE.json CAND.json [--top N]");
        const auto top = static_cast<std::size_t>(args.number("top", 10));
        const auto diff = prof::diff_profiles(load_profile_file(args.positionals[1]),
                                              load_profile_file(args.positionals[2]));
        std::fputs(prof::format_profile_diff(diff, top).c_str(), stdout);
        return 0;
    }
    throw UsageError("unknown prof subcommand '" + sub + "' (summary | flame | diff)");
}

/// `pnc doctor HEALTH.json` — classify a training flight recorder. Exit 4
/// on divergence (loss_divergence / gradient_explosion), 0 on a healthy run
/// or a saturation-only warning, 1 on an unreadable/invalid dump.
int cmd_doctor(const Args& args) {
    validate_options(args, {});
    if (args.positionals.size() != 1)
        throw UsageError("usage: pnc doctor HEALTH.json");
    const std::string& path = args.positionals[0];
    std::ifstream is(path);
    if (!is) throw UsageError("cannot open health dump " + path);
    std::stringstream ss;
    ss << is.rdbuf();
    obs::HealthReading reading;
    try {
        reading = obs::classify_health(obs::json::Value::parse(ss.str()));
    } catch (const std::exception& e) {
        throw std::runtime_error(path + ": " + e.what());
    }
    std::printf("health dump: %s\n", path.c_str());
    std::printf("epochs run: %d, anomalies: %llu\n", reading.epochs_run,
                static_cast<unsigned long long>(reading.anomalies_total));
    for (const auto& [kind, count] : reading.kinds)
        std::printf("  %s: %llu recorded\n", kind.c_str(),
                    static_cast<unsigned long long>(count));
    std::printf("verdict: %s\n", reading.verdict.c_str());
    if (reading.diverged) {
        std::printf("training DIVERGED — inspect the flight-recorder ring in %s\n",
                    path.c_str());
        return 4;
    }
    return 0;
}

/// Request rows for `serve`: the dataset's normalized test rows, cycled
/// when more requests than rows are asked for.
std::vector<std::vector<double>> serve_rows(const math::Matrix& x_test, std::size_t n) {
    std::vector<std::vector<double>> rows(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = i % x_test.rows();
        rows[i].resize(x_test.cols());
        for (std::size_t c = 0; c < x_test.cols(); ++c) rows[i][c] = x_test(r, c);
    }
    return rows;
}

/// Live telemetry plane for serve modes: CLI flags override the
/// PNC_SERVE_* / PNC_LIVE_STATS_* environment (same precedence the obs
/// flags follow).
serve::TelemetryOptions telemetry_options_from_args(const Args& args) {
    serve::TelemetryOptions telemetry = serve::TelemetryOptions::from_env();
    if (const std::string v = args.get("spans-out"); !v.empty()) telemetry.spans_out = v;
    if (const std::string v = args.get("live-stats-out"); !v.empty())
        telemetry.live_stats_out = v;
    if (const std::string v = args.get("live-stats-period-ms"); !v.empty()) {
        telemetry.live_stats_period_ms = args.number("live-stats-period-ms", 250.0);
        if (telemetry.live_stats_period_ms <= 0.0)
            throw UsageError("--live-stats-period-ms must be positive");
    }
    if (const std::string v = args.get("slo-p99-ms"); !v.empty()) {
        telemetry.slo_p99_ms = args.number("slo-p99-ms", 0.0);
        if (telemetry.slo_p99_ms <= 0.0) throw UsageError("--slo-p99-ms must be positive");
        telemetry.watchdog = true;
    }
    if (const std::string v = args.get("serve-health-out"); !v.empty()) {
        telemetry.serve_health_out = v;
        telemetry.watchdog = true;
    }
    if (const std::string v = args.get("watchdog-canary"); !v.empty()) {
        telemetry.canary = v;
        telemetry.watchdog = true;
    }
    return telemetry;
}

int cmd_serve_emit(const Args& args) {
    const std::string out_path = args.get("emit-requests");
    const auto split = data::split_and_normalize(
        data::make_dataset(args.require("dataset")),
        static_cast<std::uint64_t>(args.number("seed", 99)));
    const auto n = static_cast<std::size_t>(
        args.number("requests", static_cast<double>(split.x_test.rows())));
    if (n == 0) throw UsageError("--requests must be positive");

    serve::RequestLog log;
    log.model = args.require("dataset");
    log.n_features = split.x_test.cols();
    log.requests = serve_rows(split.x_test, n);
    std::ofstream os(out_path);
    if (!os) throw UsageError("cannot write request log " + out_path);
    serve::write_request_log(os, log);
    std::printf("request log written to %s (%zu requests, %zu features, model '%s')\n",
                out_path.c_str(), log.requests.size(), log.n_features, log.model.c_str());
    return 0;
}

int cmd_serve_replay(const Args& args) {
    const std::string replay_path = args.get("replay");
    std::ifstream is(replay_path);
    if (!is) throw UsageError("cannot open request log " + replay_path);
    const serve::RequestLog log = serve::parse_request_log(is);

    const auto surrogates = load_surrogates();
    const auto net = load_model(args, surrogates);

    serve::ModelRegistry registry;
    registry.install(log.model, net);
    serve::ServeOptions options;
    options.max_batch = static_cast<std::size_t>(args.number("batch", 32));
    options.queue_capacity = static_cast<std::size_t>(args.number("queue-cap", 1024));
    options.deterministic = true;  // replay contract: deadline flush disabled
    options.telemetry = telemetry_options_from_args(args);

    std::vector<serve::Prediction> served;
    served.reserve(log.requests.size());
    {
        serve::ServePipeline pipeline(registry, options);
        std::vector<std::future<serve::Prediction>> futures;
        futures.reserve(log.requests.size());
        for (const auto& row : log.requests)
            futures.push_back(pipeline.submit_or_wait(log.model, row));
        pipeline.drain();
        for (auto& f : futures) served.push_back(f.get());
    }

    std::size_t batches = 0, max_occupancy = 0;
    for (const auto& p : served) {
        batches = std::max<std::size_t>(batches, p.batch_seq + 1);
        max_occupancy = std::max(max_occupancy, p.batch_rows);
    }
    std::printf("replayed %zu requests for '%s' in %zu micro-batches "
                "(max occupancy %zu, batch limit %zu)\n",
                served.size(), log.model.c_str(), batches, max_occupancy,
                options.max_batch);

    if (const std::string out_path = args.get("predictions-out"); !out_path.empty()) {
        std::vector<serve::PredictionRecord> records(served.size());
        for (std::size_t i = 0; i < served.size(); ++i)
            records[i] = {i, served[i].predicted_class, served[i].outputs,
                          served[i].span};
        std::ofstream os(out_path);
        if (!os) throw UsageError("cannot write predictions " + out_path);
        serve::write_prediction_log(os, log.model, records);
        std::printf("predictions written to %s\n", out_path.c_str());
    }

    if (args.number("check-reference", 1) != 0) {
        math::Matrix x(log.requests.size(), log.n_features);
        for (std::size_t r = 0; r < log.requests.size(); ++r)
            for (std::size_t c = 0; c < log.n_features; ++c) x(r, c) = log.requests[r][c];
        const math::Matrix reference = net.predict(x);
        std::size_t mismatched = 0;
        for (std::size_t r = 0; r < served.size(); ++r)
            for (std::size_t c = 0; c < reference.cols(); ++c)
                if (served[r].outputs[c] != reference(r, c)) {
                    ++mismatched;
                    break;
                }
        if (mismatched > 0) {
            std::fprintf(stderr,
                         "serve: %zu/%zu rows differ from the reference forward pass\n",
                         mismatched, served.size());
            return 1;
        }
        std::printf("bit-identity vs reference: OK (%zu/%zu rows)\n", served.size(),
                    served.size());
    }
    return 0;
}

int cmd_serve_self_load(const Args& args) {
    const auto total = static_cast<std::size_t>(args.number("self-load", 0));
    if (total == 0) throw UsageError("--self-load needs a positive request count");
    const auto submitters =
        std::max<std::size_t>(1, static_cast<std::size_t>(args.number("submitters", 4)));

    const auto surrogates = load_surrogates();
    const auto net = load_model(args, surrogates);
    const std::string dataset = args.require("dataset");
    const auto split = data::split_and_normalize(
        data::make_dataset(dataset), static_cast<std::uint64_t>(args.number("seed", 99)));
    const auto rows = serve_rows(split.x_test, split.x_test.rows());

    serve::ModelRegistry registry;
    registry.install(dataset, net);
    serve::ServeOptions options;
    options.max_batch = static_cast<std::size_t>(args.number("batch", 32));
    options.flush_deadline_ms = args.number("deadline-ms", 2.0);
    options.queue_capacity = static_cast<std::size_t>(args.number("queue-cap", 1024));
    options.telemetry = telemetry_options_from_args(args);

    // Latency histograms need the metrics registry regardless of the
    // telemetry flags; results are unchanged.
    obs::set_enabled(true);

    std::atomic<std::size_t> sheds{0};
    serve::WindowStats final_window;
    bool have_final_window = false;
    bool watchdog_tripped = false;
    std::string watchdog_verdict;
    const auto start = std::chrono::steady_clock::now();
    {
        serve::ServePipeline pipeline(registry, options);
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < submitters; ++t) {
            threads.emplace_back([&, t] {
                std::vector<std::future<serve::Prediction>> futures;
                for (std::size_t i = t; i < total; i += submitters) {
                    try {
                        // Shed-first submission: exercise the backpressure
                        // policy, then fall back to the lossless path so
                        // every request is eventually served.
                        futures.push_back(pipeline.submit(dataset, rows[i % rows.size()]));
                    } catch (const serve::ServeError& e) {
                        if (e.code() != serve::ServeErrorCode::kQueueFull) throw;
                        sheds.fetch_add(1, std::memory_order_relaxed);
                        futures.push_back(
                            pipeline.submit_or_wait(dataset, rows[i % rows.size()]));
                    }
                }
                for (auto& f : futures) f.get();
            });
        }
        for (auto& thread : threads) thread.join();
        pipeline.drain();
        // Stop flushes the final (possibly partial) telemetry window, so a
        // short run still reports what it actually did instead of an empty
        // window. Read the plane's final state before the pipeline goes away.
        pipeline.stop();
        if (const serve::ServeTelemetry* telemetry = pipeline.telemetry()) {
            final_window = telemetry->last_window();
            have_final_window = true;
            if (telemetry->watchdog_armed()) {
                watchdog_tripped = telemetry->watchdog_tripped();
                watchdog_verdict = telemetry->watchdog_verdict();
            }
        }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    double p50 = 0, p99 = 0;
    for (const auto& h : obs::MetricsRegistry::global().snapshot().histograms)
        if (h.name == "serve.request.latency_seconds") {
            p50 = h.quantile(0.50);
            p99 = h.quantile(0.99);
        }
    std::printf("self-load '%s': %zu requests, %zu submitters, batch %zu: "
                "%.0f samples/sec, p50 %.3f ms, p99 %.3f ms, %zu shed\n",
                dataset.c_str(), total, submitters, options.max_batch,
                seconds > 0 ? static_cast<double>(total) / seconds : 0.0, p50 * 1e3,
                p99 * 1e3, sheds.load());
    if (have_final_window) {
        std::printf("final window: %llu samples, %.0f samples/sec, p50 %.3f ms, "
                    "p99 %.3f ms, queue depth max %.0f\n",
                    static_cast<unsigned long long>(final_window.samples),
                    final_window.samples_per_sec, final_window.p50_ms,
                    final_window.p99_ms, final_window.queue_depth_max);
    }
    if (!watchdog_verdict.empty()) {
        std::printf("watchdog: %s\n", watchdog_verdict.c_str());
        // Exit 4 mirrors `pnc doctor` on a diverged training run.
        if (watchdog_tripped) return 4;
    }
    return 0;
}

int cmd_serve(const Args& args) {
    const int modes = (args.get("emit-requests").empty() ? 0 : 1) +
                      (args.get("replay").empty() ? 0 : 1) +
                      (args.get("self-load").empty() ? 0 : 1);
    if (modes != 1)
        throw UsageError(
            "serve needs exactly one of --emit-requests / --replay / --self-load");
    if (!args.get("emit-requests").empty()) return cmd_serve_emit(args);
    if (!args.get("replay").empty()) return cmd_serve_replay(args);
    return cmd_serve_self_load(args);
}

// ---- pnc top ---------------------------------------------------------------

/// One parsed pnc-livestats/1 `window` line (lenient subset for rendering).
struct TopWindow {
    double t = 0.0;
    std::uint64_t index = 0;
    double queue_depth = 0.0, queue_depth_max = 0.0;
    double requests = 0.0, sheds = 0.0, errors = 0.0, samples = 0.0;
    double samples_per_sec = 0.0, p50_ms = 0.0, p99_ms = 0.0, batch_rows_mean = 0.0;
    std::vector<std::pair<std::string, std::pair<double, double>>> models;
};

struct TopStream {
    double window_seconds = 0.0, period_ms = 0.0, queue_capacity = 0.0;
    std::vector<TopWindow> windows;
    bool closed = false;
};

double top_number(const obs::json::Value& line, const char* key) {
    const obs::json::Value* v = line.find(key);
    return v && v->is_number() ? v->as_number() : 0.0;
}

/// Lenient incremental parse for --follow: complete, well-formed lines are
/// consumed; a partial trailing line (the writer mid-append) stops the scan
/// without an error. Strict validation is the non-follow path's job.
TopStream parse_livestats_lenient(const std::string& text) {
    TopStream stream;
    std::istringstream is(text);
    std::string raw;
    while (std::getline(is, raw)) {
        if (raw.empty()) continue;
        obs::json::Value line;
        try {
            line = obs::json::Value::parse(raw);
        } catch (const std::exception&) {
            break;  // partial tail of a growing file
        }
        const obs::json::Value* event = line.find("event");
        if (!event || !event->is_string()) continue;
        if (event->as_string() == "stream.open") {
            stream.window_seconds = top_number(line, "window_seconds");
            stream.period_ms = top_number(line, "period_ms");
            stream.queue_capacity = top_number(line, "queue_capacity");
        } else if (event->as_string() == "window") {
            TopWindow w;
            w.t = top_number(line, "t");
            w.index = static_cast<std::uint64_t>(top_number(line, "window"));
            w.queue_depth = top_number(line, "queue_depth");
            w.queue_depth_max = top_number(line, "queue_depth_max");
            w.requests = top_number(line, "requests");
            w.sheds = top_number(line, "sheds");
            w.errors = top_number(line, "errors");
            w.samples = top_number(line, "samples");
            w.samples_per_sec = top_number(line, "samples_per_sec");
            w.p50_ms = top_number(line, "p50_ms");
            w.p99_ms = top_number(line, "p99_ms");
            w.batch_rows_mean = top_number(line, "batch_rows_mean");
            if (const obs::json::Value* models = line.find("models");
                models && models->is_object()) {
                for (const auto& [name, entry] : models->members())
                    w.models.emplace_back(
                        name, std::make_pair(top_number(entry, "samples"),
                                             top_number(entry, "samples_per_sec")));
            }
            stream.windows.push_back(std::move(w));
        } else if (event->as_string() == "stream.close") {
            stream.closed = true;
        }
    }
    return stream;
}

std::string sparkline(const std::vector<double>& values) {
    static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                    "▅", "▆", "▇", "█"};
    double max = 0.0;
    for (const double v : values) max = std::max(max, v);
    std::string out;
    for (const double v : values) {
        const int level =
            max > 0.0 ? std::min(7, static_cast<int>(v / max * 7.0 + 0.5)) : 0;
        out += kBlocks[level];
    }
    return out;
}

void render_top(const std::string& path, const TopStream& stream,
                std::size_t history) {
    std::printf("pnc top — %s   window %.1fs  period %.0fms  queue cap %.0f%s\n",
                path.c_str(), stream.window_seconds, stream.period_ms,
                stream.queue_capacity, stream.closed ? "  [closed]" : "");
    if (stream.windows.empty()) {
        std::printf("(no windows yet)\n");
        return;
    }
    const TopWindow& w = stream.windows.back();
    std::printf("window %llu  t %.1fs\n", static_cast<unsigned long long>(w.index),
                w.t);
    std::printf("  requests %.0f  sheds %.0f  errors %.0f  samples %.0f\n",
                w.requests, w.sheds, w.errors, w.samples);
    std::printf("  samples/sec %.0f  p50 %.3f ms  p99 %.3f ms\n", w.samples_per_sec,
                w.p50_ms, w.p99_ms);
    std::printf("  queue depth %.0f (max %.0f)  batch rows mean %.1f\n",
                w.queue_depth, w.queue_depth_max, w.batch_rows_mean);
    for (const auto& [name, stats] : w.models)
        std::printf("  model %s: %.0f samples, %.0f/sec\n", name.c_str(), stats.first,
                    stats.second);

    const std::size_t n = std::min(history, stream.windows.size());
    const std::size_t first = stream.windows.size() - n;
    std::vector<double> throughput, p99, depth;
    for (std::size_t i = first; i < stream.windows.size(); ++i) {
        throughput.push_back(stream.windows[i].samples_per_sec);
        p99.push_back(stream.windows[i].p99_ms);
        depth.push_back(stream.windows[i].queue_depth_max);
    }
    std::printf("  samples/sec %s\n", sparkline(throughput).c_str());
    std::printf("  p99 ms      %s\n", sparkline(p99).c_str());
    std::printf("  queue depth %s\n", sparkline(depth).c_str());
}

int cmd_top(const Args& args) {
    validate_options(args, {"follow", "history"});
    if (args.positionals.size() != 1)
        throw UsageError("usage: pnc top LIVESTATS.jsonl [--follow 1] [--history N]");
    const std::string& path = args.positionals.front();
    const bool follow = args.number("follow", 0) != 0;
    const auto history =
        std::max<std::size_t>(1, static_cast<std::size_t>(args.number("history", 60)));

    const auto slurp = [&path]() -> std::string {
        std::ifstream is(path);
        std::ostringstream buffer;
        buffer << is.rdbuf();
        return buffer.str();
    };
    {
        std::ifstream probe(path);
        if (!probe) throw UsageError("cannot open livestats file " + path);
    }

    if (!follow) {
        const std::string text = slurp();
        const std::string error = serve::validate_livestats(text);
        if (!error.empty()) {
            std::fprintf(stderr, "top: invalid pnc-livestats/1 stream: %s\n",
                         error.c_str());
            return 1;
        }
        render_top(path, parse_livestats_lenient(text), history);
        return 0;
    }

    // Follow mode tails the growing file, re-rendering as complete lines
    // land, and exits when the stream.close trailer arrives — so pointing
    // it at a finished file terminates immediately (CI-safe).
    const bool tty = isatty(STDOUT_FILENO) != 0;
    for (;;) {
        const TopStream stream = parse_livestats_lenient(slurp());
        if (tty) std::fputs("\x1b[2J\x1b[H", stdout);
        render_top(path, stream, history);
        std::fflush(stdout);
        if (stream.closed) return 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
}

/// `out` is stdout for `pnc help` and stderr from the usage-error path in
/// main() — diagnostics never pollute a command's machine-readable stdout.
int cmd_help(std::FILE* out = stdout) {
    std::fputs("pnc — printed neuromorphic circuit designer\n", out);
    std::fputs("commands: curve fit datasets dataset train eval certify yield export cost "
               "report doctor serve top prof help\n", out);
    std::fputs("global flags: --metrics-out report.json  --trace-out trace.json\n", out);
    std::fputs("              --events-out events.jsonl  --chrome-trace-out trace.json\n", out);
    std::fputs("              --health-out health.json   (training flight recorder)\n", out);
    std::fputs("              --profile-out p.json [--profile-hz N]  (sampling profiler,\n", out);
    std::fputs("              pnc-profile/1; results stay bitwise identical)\n", out);
    std::fputs("prof:   pnc prof summary P.json | pnc prof flame P.json (collapsed\n", out);
    std::fputs("        stacks for flamegraph.pl/speedscope) | pnc prof diff A.json\n", out);
    std::fputs("        B.json [--top N]  (frame-level slowdown attribution)\n", out);
    std::fputs("report: pnc report diff A.json B.json | pnc report check [CAND.json]\n", out);
    std::fputs("        --baseline B.json [--tolerance-file F] [--timing-warn-only 1]\n", out);
    std::fputs("doctor: pnc doctor HEALTH.json   (exit 4 when training diverged)\n", out);
    std::fputs("yield:  pnc yield --model M --dataset D [--samples N --ci-width W\n", out);
    std::fputs("        --shard i/N --report shard.json --min-yield Y] (exit 3 when\n", out);
    std::fputs("        uncertified); pnc yield merge SHARD.json... --out MERGED.json\n", out);
    std::fputs("serve:  pnc serve --dataset D --emit-requests R.jsonl [--requests N] |\n", out);
    std::fputs("        --model M --replay R.jsonl [--batch B --check-reference 0|1\n", out);
    std::fputs("        --predictions-out P.jsonl] (exit 1 unless bit-identical) |\n", out);
    std::fputs("        --model M --dataset D --self-load N [--submitters S --batch B\n", out);
    std::fputs("        --deadline-ms D --queue-cap Q] (exit 4 when the watchdog trips)\n", out);
    std::fputs("        live telemetry: --spans-out S.jsonl --live-stats-out L.jsonl\n", out);
    std::fputs("        --live-stats-period-ms N --slo-p99-ms MS --serve-health-out H\n", out);
    std::fputs("        --watchdog-canary KIND[:N]\n", out);
    std::fputs("top:    pnc top LIVESTATS.jsonl [--follow 1] [--history N]\n", out);
    std::fputs("fault flags (eval): --fault-model NAME --fault-rate R --spec A "
               "--fault-report f.json\n", out);
    std::fputs("eval backend: --backend reference|compiled (or PNC_INFER_BACKEND)\n", out);
    std::fputs("see the header of tools/pnc_cli.cpp for the option reference\n", out);
    return 0;
}

int dispatch(const Args& args) {
    if (args.command == "report") return cmd_report(args);
    if (args.command == "doctor") return cmd_doctor(args);
    if (args.command == "yield") return cmd_yield(args);
    if (args.command == "top") return cmd_top(args);
    if (args.command == "prof") return cmd_prof(args);
    if (!args.positionals.empty())
        throw UsageError("command '" + args.command + "' takes no positional argument '" +
                         args.positionals.front() + "'");
    if (args.command == "curve") {
        validate_options(args, {"kind", "omega", "points"});
        return cmd_curve(args);
    }
    if (args.command == "fit") {
        validate_options(args, {"kind", "omega"});
        return cmd_fit(args);
    }
    if (args.command == "datasets") {
        validate_options(args, {});
        return cmd_datasets();
    }
    if (args.command == "dataset") {
        validate_options(args, {"name", "seed"});
        return cmd_dataset(args);
    }
    if (args.command == "train") {
        validate_options(args, {"dataset", "out", "eps", "mc", "learnable", "epochs",
                                "patience", "hidden", "seed", "lr-theta", "lr-omega",
                                "loss"});
        return cmd_train(args);
    }
    if (args.command == "eval") {
        validate_options(args, {"model", "dataset", "eps", "mc", "seed", "backend",
                                "fault-model", "fault-rate", "spec", "fault-report"});
        return cmd_eval(args);
    }
    if (args.command == "certify") {
        validate_options(args, {"model", "dataset", "eps", "seed"});
        return cmd_certify(args);
    }
    if (args.command == "export") {
        validate_options(args, {"model", "out"});
        return cmd_export(args);
    }
    if (args.command == "cost") {
        validate_options(args, {"model"});
        return cmd_cost(args);
    }
    if (args.command == "serve") {
        validate_options(args, {"model", "dataset", "seed", "emit-requests", "requests",
                                "replay", "batch", "queue-cap", "check-reference",
                                "predictions-out", "self-load", "deadline-ms",
                                "submitters", "spans-out", "live-stats-out",
                                "live-stats-period-ms", "slo-p99-ms",
                                "serve-health-out", "watchdog-canary"});
        return cmd_serve(args);
    }
    if (args.command == "help" || args.command == "--help") return cmd_help();
    throw UsageError("unknown command '" + args.command + "'");
}

}  // namespace

int main(int argc, char** argv) {
    std::string events_path;  // visible to the catch blocks for cleanup
    try {
        const Args args = parse_args(argc, argv);

        // Telemetry: CLI flags override the PNC_OBS / PNC_*_OUT environment.
        auto obs_config = obs::ObsConfig::from_env();
        if (const std::string v = args.get("metrics-out"); !v.empty()) obs_config.metrics_out = v;
        if (const std::string v = args.get("trace-out"); !v.empty()) obs_config.trace_out = v;
        if (const std::string v = args.get("events-out"); !v.empty()) obs_config.events_out = v;
        if (const std::string v = args.get("chrome-trace-out"); !v.empty())
            obs_config.chrome_trace_out = v;
        if (const std::string v = args.get("health-out"); !v.empty())
            obs_config.health_out = v;
        if (const std::string v = args.get("profile-out"); !v.empty())
            obs_config.profile_out = v;
        obs_config.enabled |= !obs_config.metrics_out.empty() ||
                              !obs_config.trace_out.empty() ||
                              !obs_config.events_out.empty() ||
                              !obs_config.chrome_trace_out.empty() ||
                              !obs_config.health_out.empty() ||
                              !obs_config.profile_out.empty();
        obs::set_enabled(obs_config.enabled);
        if (args.options.count("profile-hz") && args.number("profile-hz", 0.0) <= 0.0)
            throw UsageError("--profile-hz must be positive");
        if (!obs_config.profile_out.empty())
            prof::Profiler::global().start(args.number("profile-hz", 0.0));
        if (!obs_config.health_out.empty())
            obs::set_health_out(obs_config.health_out, "pnc");
        if (!obs_config.events_out.empty()) {
            obs::EventStream::global().open(obs_config.events_out, "pnc");
            events_path = obs_config.events_out;
            obs::emit_event("run.start", {obs::EventField::str("command", args.command)});
        }

        const int rc = dispatch(args);

        if (rc == 0 && !obs_config.metrics_out.empty()) {
            obs::RunMeta meta;
            meta.tool = "pnc";
            meta.command = args.command;
            for (const auto& [key, value] : args.options)
                if (key != "metrics-out" && key != "trace-out") meta.extra.emplace_back(key, value);
            obs::write_run_report(obs_config.metrics_out, meta);
            std::fprintf(stderr, "[obs] run report written to %s\n",
                         obs_config.metrics_out.c_str());
        }
        if (rc == 0 && !obs_config.trace_out.empty()) {
            obs::write_trace_json(obs_config.trace_out);
            std::fprintf(stderr, "[obs] trace written to %s\n", obs_config.trace_out.c_str());
        }
        if (rc == 0 && !obs_config.chrome_trace_out.empty()) {
            obs::write_chrome_trace(obs_config.chrome_trace_out);
            std::fprintf(stderr, "[obs] chrome trace written to %s\n",
                         obs_config.chrome_trace_out.c_str());
        }
        if (rc == 0 && !obs_config.profile_out.empty() &&
            prof::Profiler::global().running()) {
            prof::write_profile(obs_config.profile_out, prof::Profiler::global().stop());
            std::fprintf(stderr, "[obs] profile written to %s\n",
                         obs_config.profile_out.c_str());
        }
        if (!events_path.empty()) {
            obs::emit_event("run.finish", {obs::EventField::num("exit_code", rc)});
            obs::EventStream::global().close();
        }
        return rc;
    } catch (const UsageError& e) {
        // A bad invocation must leave no artifacts behind — remove the event
        // stream if it was already open when validation rejected the options.
        if (!events_path.empty()) {
            obs::EventStream::global().close();
            std::remove(events_path.c_str());
        }
        // Usage diagnostics belong on stderr in full — stdout stays clean
        // for pipelines even on a bad invocation.
        std::cerr << "error: " << e.what() << "\n";
        cmd_help(stderr);
        return 2;
    } catch (const std::exception& e) {
        if (!events_path.empty()) {
            obs::emit_event("run.error", {obs::EventField::str("what", e.what())});
            obs::EventStream::global().close();
        }
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
