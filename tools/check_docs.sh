#!/bin/sh
# check_docs.sh — fail when any markdown file in the repo contains a broken
# relative link. Checks inline links `[text](target)` in every tracked
# *.md file; absolute URLs (http/https/mailto) are skipped and #fragments
# are stripped before the existence check. Run from anywhere:
#
#   tools/check_docs.sh          # exit 0 = all links resolve
#
# Used as the docs counterpart of the test suite: new docs must keep every
# cross-reference valid.
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root" || exit 2

if command -v git >/dev/null 2>&1 && git rev-parse --git-dir >/dev/null 2>&1; then
    md_files=$(git ls-files --cached --others --exclude-standard '*.md')
else
    md_files=$(find . -name '*.md' -not -path './build*' | sed 's|^\./||')
fi

failures=0
checked=0

for file in $md_files; do
    dir=$(dirname -- "$file")
    # Pull out every (target) of an inline [text](target) link, one per line.
    links=$(grep -oE '\[[^]]*\]\([^)]+\)' "$file" 2>/dev/null \
                | sed -E 's/^\[[^]]*\]\(//; s/\)$//')
    [ -n "$links" ] || continue
    # One link per line (targets may contain spaces, so no word-splitting).
    while IFS= read -r link; do
        [ -n "$link" ] || continue
        case "$link" in
            http://*|https://*|mailto:*) continue ;;   # external
            '#'*) continue ;;                          # same-file fragment
        esac
        # Drop an optional quoted title (`[text](file.md "Title")`), then
        # the #fragment.
        target=$(printf '%s\n' "$link" \
                     | sed -E "s/[[:space:]]+(\"[^\"]*\"|'[^']*')[[:space:]]*\$//")
        target=${target%%#*}
        [ -n "$target" ] || continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$target" ]; then
            echo "BROKEN: $file -> $link" >&2
            failures=$((failures + 1))
        fi
    done <<EOF
$links
EOF
done

if [ "$failures" -ne 0 ]; then
    echo "check_docs: $failures broken link(s) out of $checked checked" >&2
    exit 1
fi
echo "check_docs: all $checked relative links resolve"
exit 0
