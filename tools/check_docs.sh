#!/bin/sh
# check_docs.sh — two docs gates, run from anywhere:
#
#   tools/check_docs.sh          # exit 0 = all checks pass
#
# 1. Broken links: every inline `[text](target)` in every tracked *.md
#    file must resolve (absolute URLs skipped, #fragments stripped).
# 2. Schema coverage: every schema id `pnc-<name>/<version>` mentioned
#    anywhere in the docs must have a matching `validate_<name>` symbol
#    (dashes -> underscores, version stripped) somewhere under src/ — a
#    documented document format without a validator is either vapor-docs
#    or a missing validator.
#
# Used as the docs counterpart of the test suite: new docs must keep every
# cross-reference valid.
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root" || exit 2

if command -v git >/dev/null 2>&1 && git rev-parse --git-dir >/dev/null 2>&1; then
    md_files=$(git ls-files --cached --others --exclude-standard '*.md')
else
    md_files=$(find . -name '*.md' -not -path './build*' | sed 's|^\./||')
fi

failures=0
checked=0

for file in $md_files; do
    dir=$(dirname -- "$file")
    # Pull out every (target) of an inline [text](target) link, one per line.
    links=$(grep -oE '\[[^]]*\]\([^)]+\)' "$file" 2>/dev/null \
                | sed -E 's/^\[[^]]*\]\(//; s/\)$//')
    [ -n "$links" ] || continue
    # One link per line (targets may contain spaces, so no word-splitting).
    while IFS= read -r link; do
        [ -n "$link" ] || continue
        case "$link" in
            http://*|https://*|mailto:*) continue ;;   # external
            '#'*) continue ;;                          # same-file fragment
        esac
        # Drop an optional quoted title (`[text](file.md "Title")`), then
        # the #fragment.
        target=$(printf '%s\n' "$link" \
                     | sed -E "s/[[:space:]]+(\"[^\"]*\"|'[^']*')[[:space:]]*\$//")
        target=${target%%#*}
        [ -n "$target" ] || continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$target" ]; then
            echo "BROKEN: $file -> $link" >&2
            failures=$((failures + 1))
        fi
    done <<EOF
$links
EOF
done

if [ "$failures" -ne 0 ]; then
    echo "check_docs: $failures broken link(s) out of $checked checked" >&2
    exit 1
fi
echo "check_docs: all $checked relative links resolve"

# ---- schema ids must have validators ------------------------------------
# Collect every pnc-<name>/<version> schema id in the markdown set, map it
# to its versionless validator symbol (pnc-bench-suite/1 ->
# validate_bench_suite, pnc-predictions/2 -> validate_predictions), and
# require that symbol to appear in a C++ source/header under src/.
schemas=$(grep -ohE 'pnc-[a-z0-9-]+/[0-9]+' $md_files 2>/dev/null | sort -u)
schema_failures=0
schema_checked=0
for schema in $schemas; do
    name=${schema#pnc-}
    name=${name%/*}
    symbol="validate_$(printf '%s' "$name" | tr '-' '_')"
    schema_checked=$((schema_checked + 1))
    if ! grep -rqE "std::string ${symbol}\(" src/; then
        echo "NO VALIDATOR: docs mention $schema but src/ has no '$symbol'" >&2
        schema_failures=$((schema_failures + 1))
    fi
done
if [ "$schema_failures" -ne 0 ]; then
    echo "check_docs: $schema_failures schema id(s) without a validator" >&2
    exit 1
fi
echo "check_docs: all $schema_checked documented schemas have validators"
exit 0
