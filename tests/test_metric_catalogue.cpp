// Metric-catalogue drift gate: every metric the instrumented hot paths
// register at runtime must be documented in docs/OBSERVABILITY.md. A new
// metric without a catalogue row fails here, so the docs cannot silently
// rot as instrumentation grows.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "faults/campaign.hpp"
#include "infer/engine.hpp"
#include "math/random.hpp"
#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pnn/certification.hpp"
#include "pnn/robustness.hpp"
#include "pnn/training.hpp"
#include "prof/profiler.hpp"
#include "serve/pipeline.hpp"
#include "serve/registry.hpp"
#include "surrogate/dataset_builder.hpp"
#include "yield/campaign.hpp"

#ifndef PNC_OBS_DOC_PATH
#error "PNC_OBS_DOC_PATH must point at docs/OBSERVABILITY.md"
#endif

using namespace pnc;

namespace {

/// Instance-bearing names collapse to their documented patterns:
/// pool.g<digits>.worker.<digits>.* -> pool.g<G>.worker.<i>.*,
/// *.samples_with.<kind> -> *.samples_with.<kind> and
/// serve.model.<anything>.* -> serve.model.<name>.*.
std::string normalize(const std::string& name) {
    std::string out;
    std::size_t i = 0;
    const auto starts = [&](const char* token) {
        return name.compare(i, std::string(token).size(), token) == 0;
    };
    if (name.rfind("serve.model.", 0) == 0) {
        const std::size_t tail = name.find('.', std::string("serve.model.").size());
        return tail == std::string::npos ? "serve.model.<name>"
                                         : "serve.model.<name>" + name.substr(tail);
    }
    while (i < name.size()) {
        if (starts(".g") && i + 2 < name.size() && std::isdigit(name[i + 2])) {
            out += ".g<G>";
            i += 2;
            while (i < name.size() && std::isdigit(name[i])) ++i;
        } else if (starts(".worker.") && i + 8 < name.size() &&
                   std::isdigit(name[i + 8])) {
            out += ".worker.<i>";
            i += 8;
            while (i < name.size() && std::isdigit(name[i])) ++i;
        } else if (starts(".samples_with.")) {
            out += ".samples_with.<kind>";
            i = name.size();
        } else {
            out += name[i++];
        }
    }
    return out;
}

const surrogate::SurrogateModel& catalogue_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 300;
        options.sweep_points = 17;
        const auto dataset =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 400;
        train.mlp.patience = 100;
        return surrogate::SurrogateModel::train(dataset, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

data::SplitDataset catalogue_split() {
    math::Rng rng(81);
    data::Dataset ds;
    ds.name = "blobs";
    ds.n_classes = 2;
    ds.features = math::Matrix(60, 2);
    for (int i = 0; i < 60; ++i) {
        const int label = i % 2;
        ds.labels.push_back(label);
        ds.features(i, 0) = rng.normal(label ? 0.8 : 0.2, 0.08);
        ds.features(i, 1) = rng.normal(label ? 0.2 : 0.8, 0.08);
    }
    return data::split_and_normalize(ds, 9);
}

}  // namespace

TEST(MetricCatalogue, EveryRegisteredMetricIsDocumented) {
    // Enable obs BEFORE the surrogates build so the surrogate pipeline's
    // metrics register too, then touch every instrumented subsystem once.
    obs::set_enabled(true);
    obs::MetricsRegistry::global().reset();
    obs::Tracer::global().reset();

    const auto split = catalogue_split();
    math::Rng rng(82);
    pnn::Pnn net({2, 3, 2}, &catalogue_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                 &catalogue_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                 surrogate::DesignSpace::table1(), rng);

    pnn::TrainOptions train;
    train.max_epochs = 4;
    train.patience = 4;
    train.epsilon = 0.1;
    train.n_mc_train = 2;
    train.n_mc_val = 2;
    train.seed = 83;
    pnn::train_pnn(net, split, train);

    pnn::EvalOptions eval;
    eval.epsilon = 0.1;
    eval.n_mc = 4;
    pnn::evaluate_pnn(net, split.x_test, split.y_test, eval);
    pnn::estimate_yield(net, split.x_test, split.y_test, 0.6, 0.1, 8, 84);
    pnn::worst_corner_accuracy(net, split.x_test, split.y_test, 0.1, 8, 85);
    pnn::certify(net, split.x_test, split.y_test, {});

    // The compiled inference engine: plan build + serving-path batch +
    // both MC drivers, so every infer.* metric registers.
    const infer::CompiledPnn compiled(net);
    compiled.predict(split.x_test);
    compiled.evaluate(split.x_test, split.y_test, eval);
    compiled.estimate_yield(split.x_test, split.y_test, 0.6, 0.1, 8, 84);

    // The large-scale yield campaign and its CRN comparison, so every
    // yield.* metric registers.
    yield::YieldCampaignOptions campaign_options;
    campaign_options.accuracy_spec = 0.6;
    campaign_options.n_samples = 8;
    campaign_options.round_size = 4;
    yield::run_yield_campaign(compiled, split.x_test, split.y_test, campaign_options);
    yield::compare_yield(compiled, compiled, split.x_test, split.y_test, campaign_options);

    // The serving runtime: registry install/hit/swap/evict plus a drained
    // pipeline burst (shed included), so every serve.* metric registers.
    {
        serve::ModelRegistry registry(1);
        registry.install("blobs", net);
        registry.install("blobs", net);  // content hit
        math::Rng swap_rng(86);
        pnn::Pnn other({2, 3, 2},
                       &catalogue_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                       &catalogue_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                       surrogate::DesignSpace::table1(), swap_rng);
        registry.install("blobs", other);  // hot-swap
        registry.install("extra", net);    // LRU eviction at capacity 1
        registry.install("blobs", other);

        serve::ServeOptions serve_options;
        serve_options.max_batch = 4;
        serve_options.queue_capacity = 4;
        serve_options.deterministic = true;
        // Arm the live telemetry plane with a tripping canary so the
        // serve.window.* gauges and both serve.anomaly.* metrics register
        // (the final pipeline stop() flushes the window that sets them).
        serve_options.telemetry.collect = true;
        serve_options.telemetry.watchdog = true;
        serve_options.telemetry.sustain_windows = 1;
        serve_options.telemetry.canary = "queue_saturation:1";
        serve::ServePipeline pipeline(registry, serve_options);
        pipeline.pause();
        std::vector<std::future<serve::Prediction>> futures;
        std::vector<double> row(2, 0.5);
        for (int i = 0; i < 4; ++i) futures.push_back(pipeline.submit("blobs", row));
        try {
            pipeline.submit("blobs", row);  // queue full: the shed counter
        } catch (const serve::ServeError&) {
        }
        pipeline.resume();
        pipeline.drain();
        for (auto& f : futures) f.get();
    }

    // A short sampling-profiler session over the compiled eval, so every
    // prof.* session metric registers (Profiler::stop is what posts them).
    prof::Profiler::global().start(2000.0);
    compiled.evaluate(split.x_test, split.y_test, eval);
    prof::Profiler::global().stop();

    const auto shape = net.fault_shape();
    // A high rate so at least one realization actually draws a fault and
    // the per-kind counter registers.
    const auto model = faults::make_fault_model("stuck_open", 0.5);
    faults::FaultCampaignOptions campaign;
    campaign.n_samples = 8;
    faults::run_fault_campaign(*model, shape,
                               [](const faults::NetworkFaultOverlay*, math::Rng&) {
                                   return 1.0;
                               },
                               campaign);

    // Collect every name the workload registered.
    const auto snapshot = obs::MetricsRegistry::global().snapshot();
    std::set<std::string> names;
    for (const auto& [name, value] : snapshot.counters) names.insert(normalize(name));
    for (const auto& [name, value] : snapshot.gauges) names.insert(normalize(name));
    for (const auto& hist : snapshot.histograms) names.insert(normalize(hist.name));
    for (const auto& [name, values] : snapshot.series) names.insert(normalize(name));
    ASSERT_GT(names.size(), 20u) << "workload did not exercise the instrumented paths";

    std::ifstream in(PNC_OBS_DOC_PATH);
    ASSERT_TRUE(in) << "cannot read " << PNC_OBS_DOC_PATH;
    std::ostringstream os;
    os << in.rdbuf();
    const std::string doc = os.str();

    for (const std::string& name : names)
        EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
            << "metric \"" << name
            << "\" is registered by the code but has no row in docs/OBSERVABILITY.md";

    obs::set_enabled(false);
    obs::MetricsRegistry::global().reset();
    obs::Tracer::global().reset();
}
