// Differential harness for the compiled inference engine.
//
// The compiled backend's whole value rests on one claim: it is bitwise
// equal to the autodiff reference path — same outputs, same accuracies,
// same yields — for every dataset, thread count, fault overlay, and batch
// shape. This suite sweeps that matrix and asserts exact equality
// (EXPECT_DOUBLE_EQ / memcmp-grade comparisons, no tolerances). Any
// reassociation, fused contraction, or RNG drift in src/infer shows up
// here as a one-ULP diff long before it could corrupt a Table II entry.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "data/registry.hpp"
#include "faults/fault_model.hpp"
#include "infer/backend.hpp"
#include "infer/engine.hpp"
#include "pnn/robustness.hpp"
#include "pnn/training.hpp"
#include "runtime/thread_pool.hpp"
#include "surrogate/dataset_builder.hpp"
#include "surrogate/design_space.hpp"

using namespace pnc;

namespace {

const surrogate::SurrogateModel& diff_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 250;
        options.sweep_points = 17;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 300;
        train.mlp.patience = 80;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

/// Untrained net over a dataset: random Xavier-style init exercises the
/// full conductance range (including sub-threshold thetas that project to
/// exactly 0), which is all the differential comparison needs.
pnn::Pnn make_net(const data::SplitDataset& split, std::uint64_t seed) {
    math::Rng rng(seed);
    return pnn::Pnn({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                    &diff_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                    &diff_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                    surrogate::DesignSpace::table1(), rng);
}

void expect_bitwise_equal(const math::Matrix& a, const math::Matrix& b,
                          const std::string& what) {
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_DOUBLE_EQ(a[i], b[i]) << what << " element " << i;
}

void expect_bitwise_equal(const std::vector<double>& a, const std::vector<double>& b,
                          const std::string& what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_DOUBLE_EQ(a[i], b[i]) << what << " element " << i;
}

void expect_equal_yield(const pnn::YieldResult& ref, const pnn::YieldResult& got,
                        const std::string& what) {
    EXPECT_DOUBLE_EQ(ref.yield, got.yield) << what;
    EXPECT_DOUBLE_EQ(ref.worst_accuracy, got.worst_accuracy) << what;
    EXPECT_DOUBLE_EQ(ref.p5_accuracy, got.p5_accuracy) << what;
    EXPECT_DOUBLE_EQ(ref.median_accuracy, got.median_accuracy) << what;
    EXPECT_EQ(ref.n_samples, got.n_samples) << what;
}

/// RAII thread-count override (the global pool is process-wide state).
class ThreadGuard {
public:
    explicit ThreadGuard(std::size_t n) { runtime::set_global_threads(n); }
    ~ThreadGuard() {
        runtime::set_global_threads(runtime::ThreadPool::default_thread_count());
    }
};

}  // namespace

// ---- full sweep: every dataset, both thread counts, all overlay kinds -------

class InferDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(InferDifferential, CompiledMatchesReferenceBitwise) {
    const std::string name = GetParam();
    const auto split = data::split_and_normalize(data::make_dataset(name), 66);
    const auto net = make_net(split, 91);
    const infer::CompiledPnn compiled(net);

    const circuit::VariationModel variation(0.1);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadGuard guard(threads);
        const std::string ctx = name + " threads=" + std::to_string(threads);

        // Fault-free predictions, nominal and perturbed.
        expect_bitwise_equal(net.predict(split.x_test), compiled.predict(split.x_test),
                             ctx + " nominal predict");
        math::Rng ref_rng(17), inf_rng(17);
        const auto ref_factors = net.sample_variation(variation, ref_rng);
        const auto inf_factors = compiled.sample_variation(variation, inf_rng);
        expect_bitwise_equal(net.predict(split.x_test, &ref_factors),
                             compiled.predict(split.x_test, &inf_factors),
                             ctx + " perturbed predict");

        // Stuck-at and drift overlays on top of the perturbed copy.
        for (const char* fault : {"stuck_open", "drift"}) {
            const auto model = faults::make_fault_model(fault, 0.3);
            math::Rng fault_rng(23);
            std::vector<faults::Fault> sampled;
            model->sample(net.fault_shape(), {}, fault_rng, sampled);
            const auto overlay = faults::materialize(net.fault_shape(), sampled);
            expect_bitwise_equal(
                net.predict(split.x_test, &ref_factors, &overlay),
                compiled.predict(split.x_test, &inf_factors, &overlay),
                ctx + " predict under " + fault);
        }

        // Monte-Carlo drivers: equal statistics AND equal per-sample data.
        pnn::EvalOptions eval;
        eval.epsilon = 0.1;
        eval.n_mc = 6;
        const auto ref_eval = pnn::evaluate_pnn(net, split.x_test, split.y_test, eval);
        const auto inf_eval = compiled.evaluate(split.x_test, split.y_test, eval);
        EXPECT_DOUBLE_EQ(ref_eval.mean_accuracy, inf_eval.mean_accuracy) << ctx;
        EXPECT_DOUBLE_EQ(ref_eval.std_accuracy, inf_eval.std_accuracy) << ctx;
        expect_bitwise_equal(ref_eval.per_sample_accuracy, inf_eval.per_sample_accuracy,
                             ctx + " eval per-sample");

        expect_equal_yield(pnn::estimate_yield(net, split.x_test, split.y_test, 0.5, 0.1, 8, 77),
                           compiled.estimate_yield(split.x_test, split.y_test, 0.5, 0.1, 8, 77),
                           ctx + " yield");

        const auto fault_model = faults::make_fault_model("stuck_open", 0.2);
        const auto ref_fy = pnn::estimate_yield_under_faults(net, split.x_test, split.y_test,
                                                             0.5, 0.1, *fault_model, 6, 78);
        const auto inf_fy = compiled.estimate_yield_under_faults(split.x_test, split.y_test,
                                                                 0.5, 0.1, *fault_model, 6, 78);
        expect_equal_yield(ref_fy.yield, inf_fy.yield, ctx + " fault yield");
        EXPECT_DOUBLE_EQ(ref_fy.mean_accuracy, inf_fy.mean_accuracy) << ctx;
        EXPECT_DOUBLE_EQ(ref_fy.mean_fault_count, inf_fy.mean_fault_count) << ctx;
        expect_bitwise_equal(ref_fy.campaign.scores, inf_fy.campaign.scores,
                             ctx + " fault yield scores");
    }
}

namespace {

std::vector<std::string> all_dataset_names() {
    std::vector<std::string> names;
    for (const auto& spec : data::benchmark_specs()) names.push_back(spec.name);
    return names;
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(AllDatasets, InferDifferential,
                         ::testing::ValuesIn(all_dataset_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                             return info.param;
                         });

// ---- batch shapes ------------------------------------------------------------

TEST(InferDifferentialShapes, BatchShapesMatchReference) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
    const auto net = make_net(split, 92);
    const infer::CompiledPnn compiled(net);

    // Empty batch, single row, odd slice, full test set.
    const math::Matrix empty(0, split.n_features());
    expect_bitwise_equal(net.predict(empty), compiled.predict(empty), "empty batch");
    for (const std::size_t rows : {std::size_t{1}, std::size_t{3}, split.x_test.rows()}) {
        math::Matrix x(rows, split.n_features());
        for (std::size_t i = 0; i < rows; ++i)
            for (std::size_t j = 0; j < split.n_features(); ++j) x(i, j) = split.x_test(i, j);
        expect_bitwise_equal(net.predict(x), compiled.predict(x),
                             "batch rows=" + std::to_string(rows));
    }
}

// ---- backend dispatch --------------------------------------------------------

TEST(InferBackend, DispatchersSelectBackends) {
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), 66);
    const auto net = make_net(split, 93);

    pnn::EvalOptions eval;
    eval.epsilon = 0.05;
    eval.n_mc = 4;
    const auto ref = infer::evaluate_pnn(infer::Backend::kReference, net, split.x_test,
                                         split.y_test, eval);
    const auto com = infer::evaluate_pnn(infer::Backend::kCompiled, net, split.x_test,
                                         split.y_test, eval);
    EXPECT_DOUBLE_EQ(ref.mean_accuracy, com.mean_accuracy);
    expect_bitwise_equal(ref.per_sample_accuracy, com.per_sample_accuracy, "dispatch eval");

    expect_equal_yield(
        infer::estimate_yield(infer::Backend::kReference, net, split.x_test, split.y_test,
                              0.5, 0.05, 6, 71),
        infer::estimate_yield(infer::Backend::kCompiled, net, split.x_test, split.y_test,
                              0.5, 0.05, 6, 71),
        "dispatch yield");
}

TEST(InferBackend, ParseAndEnvPrecedence) {
    EXPECT_EQ(infer::parse_backend("reference"), infer::Backend::kReference);
    EXPECT_EQ(infer::parse_backend("compiled"), infer::Backend::kCompiled);
    EXPECT_FALSE(infer::parse_backend("fast").has_value());
    EXPECT_STREQ(infer::backend_name(infer::Backend::kCompiled), "compiled");

    unsetenv("PNC_INFER_BACKEND");
    EXPECT_EQ(infer::backend_from_env(), infer::Backend::kReference);
    EXPECT_EQ(infer::backend_from_env(infer::Backend::kCompiled), infer::Backend::kCompiled);
    ASSERT_EQ(setenv("PNC_INFER_BACKEND", "compiled", 1), 0);
    EXPECT_EQ(infer::backend_from_env(), infer::Backend::kCompiled);
    ASSERT_EQ(setenv("PNC_INFER_BACKEND", "turbo", 1), 0);
    EXPECT_THROW(infer::backend_from_env(), std::invalid_argument);
    unsetenv("PNC_INFER_BACKEND");
}

// ---- driver argument validation ---------------------------------------------

TEST(InferBackend, CompiledDriversValidateLikeReference) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
    const auto net = make_net(split, 94);
    const infer::CompiledPnn compiled(net);

    pnn::EvalOptions eval;
    eval.n_mc = 0;
    EXPECT_THROW(compiled.evaluate(split.x_test, split.y_test, eval), std::invalid_argument);
    EXPECT_THROW(compiled.estimate_yield(split.x_test, split.y_test, 0.5, 0.1, 1, 7),
                 std::invalid_argument);
    const auto model = faults::make_fault_model("stuck_open", 0.1);
    EXPECT_THROW(
        compiled.estimate_yield_under_faults(split.x_test, split.y_test, 0.5, 0.1, *model, 1, 7),
        std::invalid_argument);

    math::Matrix wrong(2, split.n_features() + 1);
    EXPECT_THROW(compiled.predict(wrong), std::invalid_argument);
}
