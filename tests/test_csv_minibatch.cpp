// CSV ingestion and minibatch-training tests.
#include <gtest/gtest.h>

#include <sstream>

#include "data/csv_loader.hpp"
#include "data/registry.hpp"
#include "pnn/training.hpp"

using namespace pnc;
using data::CsvOptions;

// ---- CSV loader ----------------------------------------------------------

TEST(CsvLoader, ParsesNumericRowsAndStringLabels) {
    std::stringstream csv(
        "5.1,3.5,setosa\n"
        "4.9,3.0,setosa\n"
        "6.3,2.9,virginica\n"
        "5.8,2.7,virginica\n");
    const auto ds = data::load_csv(csv, "mini_iris");
    EXPECT_EQ(ds.size(), 4u);
    EXPECT_EQ(ds.n_features(), 2u);
    EXPECT_EQ(ds.n_classes, 2);
    // First-appearance class ordering.
    EXPECT_EQ(ds.labels, (std::vector<int>{0, 0, 1, 1}));
    EXPECT_DOUBLE_EQ(ds.features(2, 0), 6.3);
}

TEST(CsvLoader, HeaderAndCustomDelimiter) {
    std::stringstream csv(
        "a;b;label\n"
        "1;2;x\n"
        "3;4;y\n");
    CsvOptions options;
    options.delimiter = ';';
    options.has_header = true;
    const auto ds = data::load_csv(csv, "semi", options);
    EXPECT_EQ(ds.size(), 2u);
    EXPECT_DOUBLE_EQ(ds.features(1, 1), 4.0);
}

TEST(CsvLoader, LabelColumnSelection) {
    std::stringstream csv(
        "x,1.0,2.0\n"
        "y,3.0,4.0\n"
        "x,3.5,4.5\n"
        "y,3.6,4.6\n");
    CsvOptions options;
    options.label_column = 0;
    const auto ds = data::load_csv(csv, "labelfirst", options);
    EXPECT_EQ(ds.n_features(), 2u);
    EXPECT_EQ(ds.labels, (std::vector<int>{0, 1, 0, 1}));
    EXPECT_DOUBLE_EQ(ds.features(0, 0), 1.0);
}

TEST(CsvLoader, MissingValueHandling) {
    const std::string text =
        "1.0,2.0,a\n"
        "?,4.0,b\n"
        "5.0,6.0,a\n"
        "7.0,8.0,b\n";
    {
        std::stringstream csv(text);
        const auto ds = data::load_csv(csv, "skipper");  // default: drop the row
        EXPECT_EQ(ds.size(), 3u);
    }
    {
        std::stringstream csv(text);
        CsvOptions options;
        options.skip_missing_rows = false;
        EXPECT_THROW(data::load_csv(csv, "strict", options), std::runtime_error);
    }
}

TEST(CsvLoader, RejectsMalformedInput) {
    std::stringstream ragged("1,2,a\n1,b\n");
    EXPECT_THROW(data::load_csv(ragged, "ragged"), std::runtime_error);
    std::stringstream textual("hello,world,a\n");
    EXPECT_THROW(data::load_csv(textual, "textual"), std::runtime_error);
    std::stringstream empty("");
    EXPECT_THROW(data::load_csv(empty, "empty"), std::runtime_error);
    EXPECT_THROW(data::load_csv_file("/no/such/file.csv", "nofile"), std::runtime_error);
}

TEST(CsvLoader, RoundTripsIntoSplitPipeline) {
    // A CSV-loaded dataset flows through the standard split/normalize path.
    std::stringstream csv;
    math::Rng rng(3);
    for (int i = 0; i < 60; ++i) {
        const int label = i % 2;
        csv << rng.normal(label ? 2.0 : -2.0, 0.5) << "," << rng.normal(0.0, 1.0) << ","
            << (label ? "pos" : "neg") << "\n";
    }
    const auto ds = data::load_csv(csv, "csv_blobs");
    const auto split = data::split_and_normalize(ds, 5);
    EXPECT_EQ(split.x_train.rows() + split.x_val.rows() + split.x_test.rows(), 60u);
    EXPECT_EQ(split.n_classes, 2);
}

// ---- minibatch training ----------------------------------------------------

namespace {

const surrogate::SurrogateModel& mb_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 300;
        options.sweep_points = 17;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 400;
        train.mlp.patience = 100;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

}  // namespace

TEST(Minibatch, TrainsToComparableAccuracy) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 55);
    const auto train_with_batch = [&](std::size_t batch) {
        math::Rng rng(81);
        pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                     &mb_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                     &mb_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                     surrogate::DesignSpace::table1(), rng);
        pnn::TrainOptions options;
        options.max_epochs = 150;
        options.patience = 150;
        options.batch_size = batch;
        pnn::train_pnn(net, split, options);
        return ad::accuracy(net.predict(split.x_test), split.y_test);
    };
    const double full_batch = train_with_batch(0);
    const double mini_batch = train_with_batch(16);
    EXPECT_GT(full_batch, 0.8);
    EXPECT_GT(mini_batch, 0.8);
}

TEST(Minibatch, OversizedBatchEqualsFullBatch) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 56);
    const auto run = [&](std::size_t batch) {
        math::Rng rng(82);
        pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                     &mb_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                     &mb_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                     surrogate::DesignSpace::table1(), rng);
        pnn::TrainOptions options;
        options.max_epochs = 30;
        options.patience = 30;
        options.batch_size = batch;
        pnn::train_pnn(net, split, options);
        return net.predict(split.x_test);
    };
    // batch >= n_train falls back to the (deterministic) full-batch path.
    const auto a = run(0);
    const auto b = run(1000000);
    EXPECT_DOUBLE_EQ(math::max_abs_diff(a, b), 0.0);
}
