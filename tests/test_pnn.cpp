// Printed-neural-network tests: the Fig. 5 learnable-parameter pipeline,
// crossbar layer semantics (checked against the closed-form Eq. 1), sign
// routing through the negative-weight circuit, variation handling, training
// and Monte-Carlo evaluation.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/crossbar.hpp"
#include "data/registry.hpp"
#include "pnn/training.hpp"
#include "test_util.hpp"

using namespace pnc;
using ad::Var;
using circuit::NonlinearCircuitKind;
using circuit::Omega;
using math::Matrix;

namespace {

const surrogate::SurrogateModel& shared_surrogate(NonlinearCircuitKind kind) {
    static const auto build = [](NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 400;
        options.sweep_points = 17;
        const auto dataset =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 800;
        train.mlp.patience = 150;
        return surrogate::SurrogateModel::train(dataset, train);
    };
    static const surrogate::SurrogateModel act = build(NonlinearCircuitKind::kPtanh);
    static const surrogate::SurrogateModel neg = build(NonlinearCircuitKind::kNegativeWeight);
    return kind == NonlinearCircuitKind::kPtanh ? act : neg;
}

pnn::Pnn make_net(const std::vector<std::size_t>& layers, std::uint64_t seed = 11) {
    math::Rng rng(seed);
    return pnn::Pnn(layers, &shared_surrogate(NonlinearCircuitKind::kPtanh),
                    &shared_surrogate(NonlinearCircuitKind::kNegativeWeight),
                    surrogate::DesignSpace::table1(), rng);
}

}  // namespace

// ---- NonlinearParam (Fig. 5 pipeline) -----------------------------------

TEST(NonlinearParam, InitializationRoundTripsOmega) {
    const auto space = surrogate::DesignSpace::table1();
    const Omega initial = circuit::kDefaultPtanhOmega;
    const pnn::NonlinearParam param(&shared_surrogate(NonlinearCircuitKind::kPtanh), space,
                                    initial);
    const Omega printable = param.printable_omega();
    EXPECT_NEAR(printable.r1, initial.r1, initial.r1 * 0.01);
    EXPECT_NEAR(printable.r2, initial.r2, initial.r2 * 0.01);
    EXPECT_NEAR(printable.r3, initial.r3, initial.r3 * 0.01);
    EXPECT_NEAR(printable.r4, initial.r4, initial.r4 * 0.01);
    EXPECT_NEAR(printable.w, initial.w, initial.w * 0.01);
}

TEST(NonlinearParam, PrintableAlwaysFeasible) {
    // Whatever the raw values, the processed design stays in the space.
    const auto space = surrogate::DesignSpace::table1();
    pnn::NonlinearParam param(&shared_surrogate(NonlinearCircuitKind::kPtanh), space,
                              circuit::kDefaultPtanhOmega);
    math::Rng rng(13);
    for (int trial = 0; trial < 20; ++trial) {
        param.raw().set_value(rng.uniform_matrix(1, 7, -6.0, 6.0));
        const Omega omega = param.printable_omega();
        EXPECT_TRUE(space.contains(omega))
            << "r1=" << omega.r1 << " r2=" << omega.r2 << " r3=" << omega.r3
            << " r4=" << omega.r4;
    }
}

TEST(NonlinearParam, InstancesReplicateDesign) {
    const auto space = surrogate::DesignSpace::table1();
    const pnn::NonlinearParam param(&shared_surrogate(NonlinearCircuitKind::kPtanh), space,
                                    circuit::kDefaultPtanhOmega);
    const Matrix three = param.printable(3).value();
    ASSERT_EQ(three.rows(), 3u);
    for (std::size_t c = 0; c < 7; ++c) {
        EXPECT_DOUBLE_EQ(three(0, c), three(1, c));
        EXPECT_DOUBLE_EQ(three(0, c), three(2, c));
    }
}

TEST(NonlinearParam, VariationPerturbsEachInstance) {
    const auto space = surrogate::DesignSpace::table1();
    const pnn::NonlinearParam param(&shared_surrogate(NonlinearCircuitKind::kPtanh), space,
                                    circuit::kDefaultPtanhOmega);
    math::Rng rng(14);
    const circuit::VariationModel model(0.1);
    const Matrix factors = model.sample_factors(rng, 2, 7);
    const Matrix perturbed = param.printable(2, &factors).value();
    const Matrix nominal = param.printable(2).value();
    for (std::size_t c = 0; c < 7; ++c) {
        EXPECT_NEAR(perturbed(0, c), nominal(0, c) * factors(0, c), 1e-9);
        EXPECT_NEAR(perturbed(1, c), nominal(1, c) * factors(1, c), 1e-9);
    }
    EXPECT_THROW(param.printable(3, &factors), std::invalid_argument);
}

TEST(NonlinearParam, EtaGradientFlowsToRaw) {
    const auto space = surrogate::DesignSpace::table1();
    const pnn::NonlinearParam param(&shared_surrogate(NonlinearCircuitKind::kPtanh), space,
                                    circuit::kDefaultPtanhOmega);
    pnc::testutil::expect_gradients_match({param.raw()},
                                          [&] { return ad::sum(param.eta()); }, 1e-5, 2e-3);
}

TEST(NonlinearParam, RejectsBadSetup) {
    const auto space = surrogate::DesignSpace::table1();
    EXPECT_THROW(pnn::NonlinearParam(nullptr, space, circuit::kDefaultPtanhOmega),
                 std::invalid_argument);
    Omega outside = circuit::kDefaultPtanhOmega;
    outside.w = 5000.0;
    EXPECT_THROW(pnn::NonlinearParam(&shared_surrogate(NonlinearCircuitKind::kPtanh), space,
                                     outside),
                 std::invalid_argument);
}

// ---- ptanh application --------------------------------------------------------

TEST(ApplyPtanh, MatchesFormulaPerColumn) {
    const Matrix eta{{0.5, 0.4, 0.5, 10.0}, {0.2, 0.1, 0.3, 5.0}};
    const Matrix x{{0.1, 0.9}, {0.7, 0.2}};
    const Matrix out = pnn::apply_ptanh(ad::constant(eta), ad::constant(x)).value();
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            const double expected =
                eta(j, 0) + eta(j, 1) * std::tanh((x(i, j) - eta(j, 2)) * eta(j, 3));
            EXPECT_NEAR(out(i, j), expected, 1e-12);
        }
    }
    const Matrix neg_out =
        pnn::apply_negated_ptanh(ad::constant(eta), ad::constant(x)).value();
    EXPECT_NEAR(neg_out(0, 0), -out(0, 0), 1e-12);
}

TEST(ApplyPtanh, GradientCheck) {
    math::Rng rng(15);
    Var eta = ad::parameter(Matrix{{0.5, 0.4, 0.5, 8.0}, {0.3, 0.2, 0.4, 4.0}});
    Var x = ad::parameter(rng.uniform_matrix(3, 2, 0.0, 1.0));
    pnc::testutil::expect_gradients_match(
        {eta, x}, [&] { return ad::sum(pnn::apply_ptanh(eta, x)); }, 1e-6, 1e-4);
}

TEST(ApplyPtanh, ShapeValidation) {
    const Var eta = ad::constant(Matrix(3, 4));
    const Var x = ad::constant(Matrix(5, 2));
    EXPECT_THROW(pnn::apply_ptanh(eta, x), std::invalid_argument);
}

// ---- PrintedLayer -----------------------------------------------------------------

TEST(PrintedLayer, ForwardMatchesClosedFormCrossbar) {
    // Pin theta to known values and compare the layer (without activation)
    // against Eq. 1 computed by the circuit::CrossbarColumn closed form.
    auto net = make_net({2, 1});
    auto& layer = net.layer(0);
    auto params = layer.theta_params();
    params[0].set_value(Matrix{{4.0}, {7.0}});  // positive: no inversion
    params[1].set_value(Matrix{{2.0}});         // bias
    params[2].set_value(Matrix{{3.0}});         // drain
    const Matrix x{{0.3, 0.9}};
    const Matrix out = layer.forward(ad::constant(x), nullptr, false).value();

    circuit::CrossbarColumn column;
    column.input_conductances = {4.0e-6, 7.0e-6};
    column.bias_conductance = 2.0e-6;
    column.drain_conductance = 3.0e-6;
    EXPECT_NEAR(out(0, 0), column.output({0.3, 0.9}), 1e-12);
}

TEST(PrintedLayer, NegativeThetaRoutesThroughInverter) {
    auto net = make_net({1, 1});
    auto& layer = net.layer(0);
    auto params = layer.theta_params();
    params[0].set_value(Matrix{{-5.0}});
    params[1].set_value(Matrix{{1.0}});
    params[2].set_value(Matrix{{1.0}});
    const Matrix x{{0.8}};
    const double out = layer.forward(ad::constant(x), nullptr, false).value()(0, 0);
    // Expected: w = 5/7 applied to inv(0.8), bias 1/7 * 1V.
    const auto eta = layer.negation().eta_value();
    const double inverted = -(eta.eta1 + eta.eta2 * std::tanh((0.8 - eta.eta3) * eta.eta4));
    EXPECT_NEAR(out, (5.0 * inverted + 1.0) / 7.0, 1e-9);
    const auto flags = layer.inversion_flags();
    EXPECT_TRUE(flags[0][0]);
}

TEST(PrintedLayer, ProjectionZeroesTinyConductances) {
    auto net = make_net({2, 1});
    auto& layer = net.layer(0);
    auto params = layer.theta_params();
    params[0].set_value(Matrix{{0.01}, {4.0}});  // below g_min/2 -> not printed
    params[1].set_value(Matrix{{1.0}});
    params[2].set_value(Matrix{{1.0}});
    const Matrix printable = layer.printable_input_conductances();
    EXPECT_DOUBLE_EQ(printable(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(printable(1, 0), 4.0);
    // Input 0 cannot influence the output.
    const Matrix a{{0.0, 0.5}};
    const Matrix b{{1.0, 0.5}};
    EXPECT_NEAR(layer.forward(ad::constant(a), nullptr, false).value()(0, 0),
                layer.forward(ad::constant(b), nullptr, false).value()(0, 0), 1e-12);
}

TEST(PrintedLayer, OutputsAreVoltagesWithActivation) {
    auto net = make_net({4, 3}, 21);
    math::Rng rng(22);
    const Matrix x = rng.uniform_matrix(8, 4, 0.0, 1.0);
    const Matrix out = net.layer(0).forward(ad::constant(x), nullptr, true).value();
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_GT(out[i], -0.2);
        EXPECT_LT(out[i], 1.2);
    }
}

TEST(PrintedLayer, VariationChangesOutputs) {
    auto net = make_net({3, 2}, 23);
    auto& layer = net.layer(0);
    math::Rng rng(24);
    const circuit::VariationModel model(0.1);
    const auto variation = layer.sample_variation(model, rng);
    EXPECT_EQ(variation.theta_in.rows(), 3u);
    EXPECT_EQ(variation.omega_act.rows(), 2u);
    EXPECT_EQ(variation.omega_neg.rows(), 3u);
    const Matrix x{{0.2, 0.5, 0.8}};
    const Matrix nominal = layer.forward(ad::constant(x), nullptr).value();
    const Matrix perturbed = layer.forward(ad::constant(x), &variation).value();
    EXPECT_GT(math::max_abs_diff(nominal, perturbed), 1e-6);
}

TEST(PrintedLayer, ThetaGradientCheck) {
    auto net = make_net({2, 2}, 25);
    auto& layer = net.layer(0);
    math::Rng rng(26);
    const Matrix x = rng.uniform_matrix(4, 2, 0.1, 0.9);
    auto thetas = layer.theta_params();
    // Keep |theta| comfortably inside (g_min, g_max) so the projection is
    // differentiable at the evaluation point.
    thetas[0].set_value(Matrix{{3.0, -4.0}, {5.0, 2.0}});
    thetas[1].set_value(Matrix{{1.5, 2.5}});
    thetas[2].set_value(Matrix{{2.0, 1.0}});
    pnc::testutil::expect_gradients_match(
        {thetas[0], thetas[1], thetas[2]},
        [&] { return ad::sum(layer.forward(ad::constant(x), nullptr)); }, 1e-5, 1e-4);
}

TEST(PrintedLayer, OmegaGradientCheck) {
    auto net = make_net({2, 2}, 27);
    auto& layer = net.layer(0);
    math::Rng rng(28);
    const Matrix x = rng.uniform_matrix(4, 2, 0.1, 0.9);
    pnc::testutil::expect_gradients_match(
        {layer.activation().raw(), layer.negation().raw()},
        [&] { return ad::sum(layer.forward(ad::constant(x), nullptr)); }, 1e-5, 2e-3);
}

// ---- Pnn ------------------------------------------------------------------------------

TEST(Pnn, TopologyAndParameterCounts) {
    auto net = make_net({4, 3, 2});
    EXPECT_EQ(net.n_layers(), 2u);
    EXPECT_EQ(net.theta_params().size(), 6u);  // 3 blocks x 2 layers
    EXPECT_EQ(net.omega_params().size(), 4u);  // act + neg per layer
    EXPECT_THROW(make_net({4}), std::invalid_argument);
}

TEST(Pnn, PredictShapesAndDeterminism) {
    auto net = make_net({4, 3, 2}, 31);
    math::Rng rng(32);
    const Matrix x = rng.uniform_matrix(10, 4, 0.0, 1.0);
    const Matrix out = net.predict(x);
    EXPECT_EQ(out.rows(), 10u);
    EXPECT_EQ(out.cols(), 2u);
    EXPECT_DOUBLE_EQ(math::max_abs_diff(out, net.predict(x)), 0.0);
}

TEST(Pnn, SnapshotRestoreRoundTrip) {
    auto net = make_net({3, 3, 2}, 33);
    math::Rng rng(34);
    const Matrix x = rng.uniform_matrix(5, 3, 0.0, 1.0);
    const Matrix before = net.predict(x);
    const auto snapshot = net.snapshot();
    // Scramble all parameters.
    for (auto& p : net.theta_params())
        p.set_value(rng.uniform_matrix(p.rows(), p.cols(), -1.0, 1.0));
    for (auto& p : net.omega_params())
        p.set_value(rng.uniform_matrix(p.rows(), p.cols(), -1.0, 1.0));
    EXPECT_GT(math::max_abs_diff(before, net.predict(x)), 1e-9);
    net.restore(snapshot);
    EXPECT_DOUBLE_EQ(math::max_abs_diff(before, net.predict(x)), 0.0);
}

TEST(Pnn, VariationEntriesMustMatchLayers) {
    auto net = make_net({3, 3, 2}, 35);
    const pnn::NetworkVariation wrong(1);
    EXPECT_THROW(net.forward(ad::constant(Matrix(2, 3)), &wrong), std::invalid_argument);
}

// ---- training / evaluation -----------------------------------------------------------

namespace {

data::SplitDataset blob_split() {
    // Two well-separated Gaussian blobs: trivially learnable.
    math::Rng rng(40);
    data::Dataset ds;
    ds.name = "blobs";
    ds.n_classes = 2;
    ds.features = Matrix(80, 2);
    for (int i = 0; i < 80; ++i) {
        const int label = i % 2;
        ds.labels.push_back(label);
        ds.features(i, 0) = rng.normal(label ? 0.8 : 0.2, 0.08);
        ds.features(i, 1) = rng.normal(label ? 0.2 : 0.8, 0.08);
    }
    return data::split_and_normalize(ds, 7);
}

}  // namespace

TEST(Training, LearnsSeparableBlobs) {
    auto net = make_net({2, 3, 2}, 41);
    auto split = blob_split();
    pnn::TrainOptions options;
    options.max_epochs = 300;
    options.patience = 300;
    const auto result = pnn::train_pnn(net, split, options);
    EXPECT_GT(result.epochs_run, 0);
    const double acc = ad::accuracy(net.predict(split.x_test), split.y_test);
    EXPECT_GT(acc, 0.95);
}

TEST(Training, NonLearnableKeepsOmegaFixed) {
    auto net = make_net({2, 3, 2}, 42);
    const Matrix raw_before = net.omega_params().front().value();
    auto split = blob_split();
    pnn::TrainOptions options;
    options.max_epochs = 50;
    options.patience = 50;
    options.learnable_nonlinear = false;
    pnn::train_pnn(net, split, options);
    EXPECT_DOUBLE_EQ(math::max_abs_diff(net.omega_params().front().value(), raw_before), 0.0);
}

TEST(Training, LearnableMovesOmega) {
    auto net = make_net({2, 3, 2}, 43);
    const Matrix raw_before = net.omega_params().front().value();
    auto split = blob_split();
    pnn::TrainOptions options;
    options.max_epochs = 50;
    options.patience = 50;
    options.learnable_nonlinear = true;
    pnn::train_pnn(net, split, options);
    EXPECT_GT(math::max_abs_diff(net.omega_params().front().value(), raw_before), 1e-6);
}

TEST(Training, VariationAwareUsesMonteCarlo) {
    auto net = make_net({2, 3, 2}, 44);
    auto split = blob_split();
    pnn::TrainOptions options;
    options.max_epochs = 40;
    options.patience = 40;
    options.epsilon = 0.1;
    options.n_mc_train = 4;
    const auto result = pnn::train_pnn(net, split, options);
    EXPECT_GT(result.epochs_run, 0);
    EXPECT_THROW(
        [&] {
            pnn::TrainOptions bad;
            bad.n_mc_train = 0;
            pnn::train_pnn(net, split, bad);
        }(),
        std::invalid_argument);
}

// ---- early stopping -------------------------------------------------------

TEST(EarlyStopping, PatienceTriggersAtExpectedEpoch) {
    auto net = make_net({2, 3, 2}, 48);
    auto split = blob_split();
    pnn::TrainOptions options;
    options.max_epochs = 400;
    options.patience = 3;
    const auto result = pnn::train_pnn(net, split, options);
    // Easy blobs converge long before 400 epochs, so the patience counter
    // must be what ended training...
    ASSERT_LT(result.epochs_run, options.max_epochs);
    // ...and the stopping epoch is fully determined by the contract: the
    // loop breaks after `patience + 1` consecutive non-improving epochs.
    EXPECT_EQ(result.epochs_run, result.best_epoch + options.patience + 2);
}

TEST(EarlyStopping, ZeroPatienceStopsAtFirstNonImprovement) {
    auto net = make_net({2, 3, 2}, 49);
    auto split = blob_split();
    pnn::TrainOptions options;
    options.max_epochs = 400;
    options.patience = 0;
    const auto result = pnn::train_pnn(net, split, options);
    ASSERT_LT(result.epochs_run, options.max_epochs);
    EXPECT_EQ(result.epochs_run, result.best_epoch + 2);
}

TEST(EarlyStopping, LargePatienceRunsFullBudget) {
    auto net = make_net({2, 3, 2}, 50);
    auto split = blob_split();
    pnn::TrainOptions options;
    options.max_epochs = 25;
    options.patience = 1000;
    const auto result = pnn::train_pnn(net, split, options);
    EXPECT_EQ(result.epochs_run, options.max_epochs);
}

TEST(EarlyStopping, BestValidationParametersAreRestored) {
    auto net = make_net({2, 3, 2}, 51);
    auto split = blob_split();
    pnn::TrainOptions options;
    options.max_epochs = 200;
    options.patience = 5;
    const auto result = pnn::train_pnn(net, split, options);
    // Nominal training (eps = 0): the validation criterion is the plain
    // deterministic loss, so the returned parameters must reproduce
    // best_val_loss exactly — anything later than the best epoch would not.
    const double val_loss =
        pnn::classification_loss(net.forward(ad::constant(split.x_val)), split.y_val,
                                 options.loss, options.margin)
            .scalar();
    EXPECT_DOUBLE_EQ(val_loss, result.best_val_loss);
}

TEST(Evaluation, NominalIsDeterministicSingleSample) {
    auto net = make_net({2, 3, 2}, 45);
    auto split = blob_split();
    pnn::EvalOptions options;
    options.epsilon = 0.0;
    options.n_mc = 100;
    const auto result = pnn::evaluate_pnn(net, split.x_test, split.y_test, options);
    EXPECT_EQ(result.per_sample_accuracy.size(), 1u);
    EXPECT_DOUBLE_EQ(result.std_accuracy, 0.0);
}

TEST(Evaluation, VariationProducesSpread) {
    auto net = make_net({2, 3, 2}, 46);
    auto split = blob_split();
    pnn::TrainOptions train;
    train.max_epochs = 150;
    train.patience = 150;
    pnn::train_pnn(net, split, train);
    pnn::EvalOptions options;
    options.epsilon = 0.1;
    options.n_mc = 40;
    const auto result = pnn::evaluate_pnn(net, split.x_test, split.y_test, options);
    EXPECT_EQ(result.per_sample_accuracy.size(), 40u);
    EXPECT_GT(result.mean_accuracy, 0.5);
    // Repeatable for a fixed seed.
    const auto again = pnn::evaluate_pnn(net, split.x_test, split.y_test, options);
    EXPECT_DOUBLE_EQ(result.mean_accuracy, again.mean_accuracy);
}

TEST(Losses, BothKindsDecreaseUnderTraining) {
    for (auto kind : {pnn::LossKind::kMargin, pnn::LossKind::kCrossEntropy}) {
        auto net = make_net({2, 3, 2}, 47);
        auto split = blob_split();
        const Var x = ad::constant(split.x_train);
        const double before =
            pnn::classification_loss(net.forward(x), split.y_train, kind, 0.3).scalar();
        pnn::TrainOptions options;
        options.max_epochs = 120;
        options.patience = 120;
        options.loss = kind;
        pnn::train_pnn(net, split, options);
        const double after =
            pnn::classification_loss(net.forward(x), split.y_train, kind, 0.3).scalar();
        EXPECT_LT(after, before);
    }
}
