// Autodiff engine tests: every operation's value semantics and gradient
// (checked against central finite differences), backward-pass topology,
// straight-through estimators, losses and optimizers.
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/optimizer.hpp"
#include "math/random.hpp"
#include "test_util.hpp"

using namespace pnc;
using ad::Var;
using math::Matrix;
using pnc::testutil::expect_gradients_match;

namespace {

Matrix random_matrix(std::uint64_t seed, std::size_t r, std::size_t c, double lo = -1.0,
                     double hi = 1.0) {
    math::Rng rng(seed);
    return rng.uniform_matrix(r, c, lo, hi);
}

}  // namespace

// ---- value semantics ---------------------------------------------------

TEST(AutodiffValues, AddSubMulDiv) {
    const Var a = ad::constant(Matrix{{1.0, 2.0}, {3.0, 4.0}});
    const Var b = ad::constant(Matrix{{5.0, 6.0}, {7.0, 8.0}});
    EXPECT_DOUBLE_EQ(ad::add(a, b).value()(0, 0), 6.0);
    EXPECT_DOUBLE_EQ(ad::sub(a, b).value()(1, 1), -4.0);
    EXPECT_DOUBLE_EQ(ad::mul(a, b).value()(1, 0), 21.0);
    EXPECT_DOUBLE_EQ(ad::div(b, a).value()(0, 1), 3.0);
}

TEST(AutodiffValues, MatmulMatchesManual) {
    const Var a = ad::constant(Matrix{{1.0, 2.0, 3.0}});
    const Var b = ad::constant(Matrix{{1.0}, {10.0}, {100.0}});
    EXPECT_DOUBLE_EQ(ad::matmul(a, b).value()(0, 0), 321.0);
}

TEST(AutodiffValues, ShapeMismatchThrows) {
    const Var a = ad::constant(Matrix(2, 3));
    const Var b = ad::constant(Matrix(3, 2));
    EXPECT_THROW(ad::add(a, b), std::invalid_argument);
    EXPECT_THROW(ad::mul(a, b), std::invalid_argument);
    EXPECT_THROW(ad::matmul(a, a), std::invalid_argument);
}

TEST(AutodiffValues, ReductionsAndBroadcasts) {
    const Var a = ad::constant(Matrix{{1.0, 2.0}, {3.0, 4.0}});
    EXPECT_DOUBLE_EQ(ad::sum(a).scalar(), 10.0);
    EXPECT_DOUBLE_EQ(ad::mean(a).scalar(), 2.5);
    const Var cols = ad::sum_rows(a);
    EXPECT_DOUBLE_EQ(cols.value()(0, 0), 4.0);
    EXPECT_DOUBLE_EQ(cols.value()(0, 1), 6.0);
    const Var r = ad::constant(Matrix{{10.0, 20.0}});
    EXPECT_DOUBLE_EQ(ad::add_rowvec(a, r).value()(1, 1), 24.0);
    EXPECT_DOUBLE_EQ(ad::mul_rowvec(a, r).value()(0, 1), 40.0);
    EXPECT_DOUBLE_EQ(ad::div_rowvec(a, r).value()(1, 0), 0.3);
}

TEST(AutodiffValues, SliceAndConcat) {
    const Var a = ad::constant(Matrix{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
    const Var s = ad::slice_cols(a, 1, 2);
    EXPECT_EQ(s.cols(), 2u);
    EXPECT_DOUBLE_EQ(s.value()(1, 0), 5.0);
    const Var joined = ad::concat_cols({s, s});
    EXPECT_EQ(joined.cols(), 4u);
    EXPECT_DOUBLE_EQ(joined.value()(0, 3), 3.0);
    EXPECT_THROW(ad::slice_cols(a, 2, 2), std::invalid_argument);
}

TEST(AutodiffValues, ClampSteValue) {
    const Var a = ad::constant(Matrix{{-2.0, 0.5, 3.0}});
    const Var c = ad::clamp_ste(a, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(c.value()(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(c.value()(0, 1), 0.5);
    EXPECT_DOUBLE_EQ(c.value()(0, 2), 1.0);
}

TEST(AutodiffValues, ConductanceProjection) {
    const Var theta = ad::constant(Matrix{{-150.0, -0.04, 0.02, 0.06, 5.0, 150.0}});
    const Var p = ad::project_conductance_ste(theta, 0.1, 100.0);
    EXPECT_DOUBLE_EQ(p.value()(0, 0), -100.0);  // clamped magnitude, sign kept
    EXPECT_DOUBLE_EQ(p.value()(0, 1), 0.0);     // below g_min/2: not printed
    EXPECT_DOUBLE_EQ(p.value()(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(p.value()(0, 3), 0.1);     // snapped up to g_min
    EXPECT_DOUBLE_EQ(p.value()(0, 4), 5.0);
    EXPECT_DOUBLE_EQ(p.value()(0, 5), 100.0);
    EXPECT_THROW(ad::project_conductance_ste(theta, -1.0, 10.0), std::invalid_argument);
}

// ---- gradients (finite differences) ------------------------------------

struct UnaryOpCase {
    const char* name;
    std::function<Var(const Var&)> op;
    double lo, hi;  // input value range keeping the op smooth
};

class UnaryGradient : public ::testing::TestWithParam<UnaryOpCase> {};

TEST_P(UnaryGradient, MatchesFiniteDifferences) {
    const auto& param = GetParam();
    Var x = ad::parameter(random_matrix(42, 3, 4, param.lo, param.hi));
    expect_gradients_match({x}, [&] { return ad::sum(param.op(x)); });
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradient,
    ::testing::Values(
        UnaryOpCase{"tanh", [](const Var& v) { return ad::tanh(v); }, -2.0, 2.0},
        UnaryOpCase{"sigmoid", [](const Var& v) { return ad::sigmoid(v); }, -3.0, 3.0},
        UnaryOpCase{"exp", [](const Var& v) { return ad::exp(v); }, -1.0, 1.0},
        UnaryOpCase{"log", [](const Var& v) { return ad::log(v); }, 0.5, 3.0},
        UnaryOpCase{"softplus", [](const Var& v) { return ad::softplus(v); }, -3.0, 3.0},
        UnaryOpCase{"relu", [](const Var& v) { return ad::relu(v); }, 0.2, 2.0},
        UnaryOpCase{"abs", [](const Var& v) { return ad::abs(v); }, 0.2, 2.0},
        UnaryOpCase{"square", [](const Var& v) { return ad::square(v); }, -2.0, 2.0},
        UnaryOpCase{"neg", [](const Var& v) { return ad::neg(v); }, -2.0, 2.0},
        UnaryOpCase{"mul_scalar", [](const Var& v) { return ad::mul_scalar(v, 2.5); }, -2.0, 2.0},
        UnaryOpCase{"add_scalar", [](const Var& v) { return ad::add_scalar(v, 1.5); }, -2.0, 2.0},
        UnaryOpCase{"transpose", [](const Var& v) { return ad::transpose(v); }, -2.0, 2.0},
        UnaryOpCase{"sum_rows", [](const Var& v) { return ad::sum_rows(v); }, -2.0, 2.0},
        UnaryOpCase{"mean", [](const Var& v) { return ad::mean(v); }, -2.0, 2.0},
        UnaryOpCase{"slice", [](const Var& v) { return ad::slice_cols(v, 1, 2); }, -2.0, 2.0}),
    [](const auto& info) { return info.param.name; });

TEST(AutodiffGradients, BinaryElementwise) {
    Var a = ad::parameter(random_matrix(1, 2, 3, 0.5, 2.0));
    Var b = ad::parameter(random_matrix(2, 2, 3, 0.5, 2.0));
    expect_gradients_match({a, b}, [&] { return ad::sum(ad::add(a, b)); });
    expect_gradients_match({a, b}, [&] { return ad::sum(ad::sub(a, b)); });
    expect_gradients_match({a, b}, [&] { return ad::sum(ad::mul(a, b)); });
    expect_gradients_match({a, b}, [&] { return ad::sum(ad::div(a, b)); });
}

TEST(AutodiffGradients, Matmul) {
    Var a = ad::parameter(random_matrix(3, 2, 4));
    Var b = ad::parameter(random_matrix(4, 4, 3));
    expect_gradients_match({a, b}, [&] { return ad::sum(ad::matmul(a, b)); });
}

TEST(AutodiffGradients, RowvecBroadcasts) {
    Var a = ad::parameter(random_matrix(5, 3, 4, 0.5, 2.0));
    Var r = ad::parameter(random_matrix(6, 1, 4, 0.5, 2.0));
    expect_gradients_match({a, r}, [&] { return ad::sum(ad::add_rowvec(a, r)); });
    expect_gradients_match({a, r}, [&] { return ad::sum(ad::mul_rowvec(a, r)); });
    expect_gradients_match({a, r}, [&] { return ad::sum(ad::div_rowvec(a, r)); });
}

TEST(AutodiffGradients, ScalarBroadcasts) {
    Var s = ad::parameter(Matrix(1, 1, 0.7));
    Var a = ad::parameter(random_matrix(7, 3, 3));
    expect_gradients_match({s, a}, [&] { return ad::sum(ad::scalar_add(s, a)); });
    expect_gradients_match({s, a}, [&] { return ad::sum(ad::scalar_mul(s, a)); });
    expect_gradients_match({s, a}, [&] { return ad::sum(ad::scalar_sub_from(a, s)); });
}

TEST(AutodiffGradients, ConcatAndSelect) {
    Var a = ad::parameter(random_matrix(8, 2, 2));
    Var b = ad::parameter(random_matrix(9, 2, 2));
    expect_gradients_match({a, b}, [&] {
        return ad::sum(ad::square(ad::concat_cols({a, b, a})));
    });
    Matrix mask{{1.0, 0.0}, {0.0, 1.0}};
    expect_gradients_match({a, b}, [&] { return ad::sum(ad::select(mask, a, b)); });
}

TEST(AutodiffGradients, StraightThroughIsIdentity) {
    // STE: the forward is clamped but the gradient must equal the gradient
    // of the identity.
    Var a = ad::parameter(Matrix{{-2.0, 0.5, 3.0}});
    a.zero_grad();
    ad::backward(ad::sum(ad::clamp_ste(a, 0.0, 1.0)));
    for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(a.grad()[i], 1.0);

    Var theta = ad::parameter(Matrix{{-150.0, 0.01, 5.0}});
    theta.zero_grad();
    ad::backward(ad::sum(ad::project_conductance_ste(theta, 0.1, 100.0)));
    for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(theta.grad()[i], 1.0);
}

TEST(AutodiffGradients, DeepChainAndReuse) {
    // A node used twice must receive both adjoint contributions.
    Var x = ad::parameter(Matrix(1, 1, 0.3));
    expect_gradients_match({x}, [&] {
        const Var t = ad::tanh(x);
        return ad::sum(ad::mul(t, t));  // t^2 -> d/dx = 2 tanh(x)(1 - tanh^2)
    });
}

TEST(AutodiffGradients, StopGradientBlocksFlow) {
    Var x = ad::parameter(Matrix(1, 1, 0.5));
    x.zero_grad();
    ad::backward(ad::sum(ad::mul(ad::stop_gradient(x), x)));
    // d/dx [c * x] = c = 0.5, not 2x.
    EXPECT_DOUBLE_EQ(x.grad()(0, 0), 0.5);
}

TEST(AutodiffGradients, GradAccumulatesAcrossBackwardCalls) {
    Var x = ad::parameter(Matrix(1, 1, 1.0));
    x.zero_grad();
    ad::backward(ad::sum(ad::mul_scalar(x, 3.0)));
    ad::backward(ad::sum(ad::mul_scalar(x, 4.0)));
    EXPECT_DOUBLE_EQ(x.grad()(0, 0), 7.0);
    x.zero_grad();
    EXPECT_DOUBLE_EQ(x.grad()(0, 0), 0.0);
}

// ---- losses --------------------------------------------------------------

TEST(AutodiffLosses, MarginLossValue) {
    // Row 0: correct by a margin > 0.3 -> no loss. Row 1: violated.
    const Var out = ad::constant(Matrix{{0.9, 0.1}, {0.4, 0.5}});
    const std::vector<int> labels = {0, 0};
    const double loss = ad::margin_loss(out, labels, 0.3).scalar();
    EXPECT_NEAR(loss, 0.5 * (0.3 - 0.4 + 0.5), 1e-12);
}

TEST(AutodiffLosses, MarginLossGradient) {
    Var out = ad::parameter(Matrix{{0.6, 0.5, 0.1}, {0.2, 0.3, 0.4}});
    const std::vector<int> labels = {0, 2};
    expect_gradients_match({out}, [&] { return ad::margin_loss(out, labels, 0.3); });
}

TEST(AutodiffLosses, CrossEntropyGradient) {
    Var logits = ad::parameter(random_matrix(11, 4, 3));
    const std::vector<int> labels = {0, 1, 2, 1};
    expect_gradients_match({logits}, [&] { return ad::cross_entropy(logits, labels); });
}

TEST(AutodiffLosses, CrossEntropyMatchesManual) {
    const Var logits = ad::constant(Matrix{{1.0, 0.0}});
    const double loss = ad::cross_entropy(logits, {0}).scalar();
    EXPECT_NEAR(loss, std::log(1.0 + std::exp(-1.0)), 1e-12);
}

TEST(AutodiffLosses, MseGradient) {
    Var pred = ad::parameter(random_matrix(12, 3, 2));
    const Matrix target = random_matrix(13, 3, 2);
    expect_gradients_match({pred}, [&] { return ad::mse(pred, target); });
}

TEST(AutodiffLosses, LabelValidation) {
    const Var out = ad::constant(Matrix(2, 2));
    EXPECT_THROW(ad::margin_loss(out, {0}, 0.3), std::invalid_argument);
    EXPECT_THROW(ad::margin_loss(out, {0, 5}, 0.3), std::invalid_argument);
    EXPECT_THROW(ad::cross_entropy(out, {0, -1}), std::invalid_argument);
}

TEST(AutodiffLosses, AccuracyHelper) {
    const Matrix out{{0.9, 0.1}, {0.2, 0.8}, {0.6, 0.4}};
    EXPECT_NEAR(ad::accuracy(out, {0, 1, 1}), 2.0 / 3.0, 1e-12);
    EXPECT_EQ(ad::argmax_rows(out), (std::vector<int>{0, 1, 0}));
}

// ---- backward-pass mechanics ------------------------------------------------

TEST(AutodiffBackward, RequiresScalarRoot) {
    const Var a = ad::parameter(Matrix(2, 2, 1.0));
    EXPECT_THROW(ad::backward(ad::add(a, a)), std::logic_error);
}

TEST(AutodiffBackward, ConstantSubtreesAreSkipped) {
    // A graph of pure constants allocates no backprop closures.
    const Var c = ad::constant(Matrix(2, 2, 1.0));
    const Var d = ad::add(c, c);
    EXPECT_FALSE(d.node()->backprop);
    const Var p = ad::parameter(Matrix(2, 2, 1.0));
    EXPECT_TRUE(ad::add(d, p).node()->backprop);
}

TEST(AutodiffBackward, SetValueRejectsInteriorAndShapeChange) {
    Var a = ad::parameter(Matrix(2, 2, 1.0));
    Var b = ad::add(a, a);
    EXPECT_THROW(b.set_value(Matrix(2, 2)), std::logic_error);
    EXPECT_THROW(a.set_value(Matrix(3, 2)), std::invalid_argument);
}

// ---- optimizers ----------------------------------------------------------------

TEST(Optimizers, SgdConvergesOnQuadratic) {
    Var x = ad::parameter(Matrix(1, 1, 5.0));
    ad::Sgd opt({{{x}, 0.1}});
    for (int i = 0; i < 200; ++i) {
        opt.zero_grad();
        ad::backward(ad::square(x));
        opt.step();
    }
    EXPECT_NEAR(x.value()(0, 0), 0.0, 1e-6);
}

TEST(Optimizers, SgdMomentumConverges) {
    Var x = ad::parameter(Matrix(1, 1, 5.0));
    ad::Sgd opt({{{x}, 0.05}}, 0.9);
    for (int i = 0; i < 300; ++i) {
        opt.zero_grad();
        ad::backward(ad::square(x));
        opt.step();
    }
    EXPECT_NEAR(x.value()(0, 0), 0.0, 1e-4);
}

TEST(Optimizers, AdamConvergesOnRosenbrockish) {
    Var x = ad::parameter(Matrix(1, 1, -1.0));
    Var y = ad::parameter(Matrix(1, 1, 2.0));
    ad::Adam opt({{{x, y}, 0.05}});
    for (int i = 0; i < 2000; ++i) {
        opt.zero_grad();
        // (1-x)^2 + 5 (y - x^2)^2
        const Var a = ad::square(ad::add_scalar(ad::neg(x), 1.0));
        const Var b = ad::mul_scalar(ad::square(ad::sub(y, ad::square(x))), 5.0);
        ad::backward(ad::add(a, b));
        opt.step();
    }
    EXPECT_NEAR(x.value()(0, 0), 1.0, 0.05);
    EXPECT_NEAR(y.value()(0, 0), 1.0, 0.1);
}

TEST(Optimizers, PerGroupLearningRates) {
    Var fast = ad::parameter(Matrix(1, 1, 1.0));
    Var slow = ad::parameter(Matrix(1, 1, 1.0));
    ad::Sgd opt({{{fast}, 0.1}, {{slow}, 0.001}});
    opt.zero_grad();
    ad::backward(ad::add(ad::square(fast), ad::square(slow)));
    opt.step();
    // Both gradients are 2.0; steps differ by the group learning rate.
    EXPECT_NEAR(fast.value()(0, 0), 0.8, 1e-12);
    EXPECT_NEAR(slow.value()(0, 0), 0.998, 1e-12);
}

TEST(Optimizers, LinearRegressionEndToEnd) {
    // Fit y = 2x + 1 with Adam on the engine only.
    math::Rng rng(3);
    const Matrix x_data = rng.uniform_matrix(64, 1, -1.0, 1.0);
    Matrix y_data(64, 1);
    for (std::size_t i = 0; i < 64; ++i) y_data(i, 0) = 2.0 * x_data(i, 0) + 1.0;
    Var w = ad::parameter(Matrix(1, 1, 0.0));
    Var b = ad::parameter(Matrix(1, 1, 0.0));
    ad::Adam opt({{{w, b}, 0.05}});
    const Var x = ad::constant(x_data);
    for (int epoch = 0; epoch < 500; ++epoch) {
        opt.zero_grad();
        const Var pred = ad::scalar_add(b, ad::scalar_mul(w, x));
        ad::backward(ad::mse(pred, y_data));
        opt.step();
    }
    EXPECT_NEAR(w.value()(0, 0), 2.0, 1e-3);
    EXPECT_NEAR(b.value()(0, 0), 1.0, 1e-3);
}
