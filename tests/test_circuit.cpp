// Analog substrate tests: EGT compact model, netlist, MNA Newton solver
// (validated against closed-form resistor networks), nonlinear circuit
// curve properties and the crossbar (Eq. 1 vs full netlist solve).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/crossbar.hpp"
#include "circuit/nonlinear_circuit.hpp"
#include "circuit/variation.hpp"
#include "math/sobol.hpp"
#include "surrogate/design_space.hpp"

using namespace pnc;
using circuit::Egt;
using circuit::EgtParams;
using circuit::Netlist;
using circuit::NonlinearCircuitKind;

// ---- EGT compact model ----------------------------------------------------

TEST(Egt, OffBelowThreshold) {
    const Egt t(400.0, 40.0);
    // Well below threshold the channel current is negligible.
    EXPECT_LT(t.drain_current(1.0, 0.0, 0.0), 2e-7);
}

TEST(Egt, CurrentIncreasesWithGate) {
    const Egt t(400.0, 40.0);
    double previous = -1.0;
    for (double vg = 0.0; vg <= 1.0; vg += 0.1) {
        const double id = t.drain_current(1.0, vg, 0.0);
        EXPECT_GT(id, previous);
        previous = id;
    }
}

TEST(Egt, CurrentIncreasesWithDrain) {
    const Egt t(400.0, 40.0);
    double previous = -1.0;
    for (double vd = 0.0; vd <= 1.0; vd += 0.1) {
        const double id = t.drain_current(vd, 0.6, 0.0);
        EXPECT_GE(id, previous);
        previous = id;
    }
}

TEST(Egt, ScalesWithAspectRatio) {
    const Egt narrow(200.0, 70.0);
    const Egt wide(800.0, 10.0);
    const double i_narrow = narrow.drain_current(0.5, 0.6, 0.0);
    const double i_wide = wide.drain_current(0.5, 0.6, 0.0);
    EXPECT_NEAR(i_wide / i_narrow, (800.0 / 10.0) / (200.0 / 70.0), 1e-9);
}

TEST(Egt, AntisymmetricUnderTerminalExchange) {
    const Egt t(400.0, 40.0);
    // Swapping drain and source negates the current (channel symmetry).
    const double forward = t.drain_current(0.8, 0.6, 0.2);
    const double backward = t.drain_current(0.2, 0.6, 0.8);
    EXPECT_NEAR(forward, -backward, 1e-15);
}

TEST(Egt, AnalyticDerivativesMatchFiniteDifferences) {
    const Egt t(523.0, 31.0);
    const double vd = 0.63, vg = 0.41, vs = 0.12, h = 1e-7;
    const auto op = t.evaluate(vd, vg, vs);
    EXPECT_NEAR(op.did_dvd,
                (t.drain_current(vd + h, vg, vs) - t.drain_current(vd - h, vg, vs)) / (2 * h),
                1e-6 * std::abs(op.did_dvd) + 1e-12);
    EXPECT_NEAR(op.did_dvg,
                (t.drain_current(vd, vg + h, vs) - t.drain_current(vd, vg - h, vs)) / (2 * h),
                1e-6 * std::abs(op.did_dvg) + 1e-12);
    EXPECT_NEAR(op.did_dvs,
                (t.drain_current(vd, vg, vs + h) - t.drain_current(vd, vg, vs - h)) / (2 * h),
                1e-6 * std::abs(op.did_dvs) + 1e-12);
}

TEST(Egt, RejectsNonPositiveGeometry) {
    EXPECT_THROW(Egt(0.0, 40.0), std::invalid_argument);
    EXPECT_THROW(Egt(400.0, -1.0), std::invalid_argument);
}

// ---- netlist -----------------------------------------------------------------

TEST(Netlist, NodeManagement) {
    Netlist net;
    const auto a = net.node("a");
    EXPECT_EQ(net.node("a"), a);  // idempotent
    EXPECT_TRUE(net.has_node("a"));
    EXPECT_FALSE(net.has_node("b"));
    EXPECT_THROW(net.find_node("b"), std::invalid_argument);
    EXPECT_EQ(net.node_count(), 2u);  // ground + a
}

TEST(Netlist, ComponentValidation) {
    Netlist net;
    const auto a = net.node("a");
    EXPECT_THROW(net.add_resistor(a, a, 100.0), std::invalid_argument);
    EXPECT_THROW(net.add_resistor(a, Netlist::kGround, -5.0), std::invalid_argument);
    EXPECT_THROW(net.add_resistor(a, 99, 5.0), std::invalid_argument);
    EXPECT_THROW(net.add_voltage_source(Netlist::kGround, 1.0), std::invalid_argument);
}

TEST(Netlist, SourceReplacement) {
    Netlist net;
    const auto a = net.node("a");
    net.add_voltage_source(a, 1.0);
    net.set_source_voltage(a, 0.5);
    EXPECT_EQ(net.sources().size(), 1u);
    EXPECT_DOUBLE_EQ(*net.source_voltage(a), 0.5);
}

TEST(Netlist, SpiceExportMentionsComponents) {
    const auto net = circuit::build_nonlinear_circuit(
        circuit::default_omega(NonlinearCircuitKind::kPtanh), NonlinearCircuitKind::kPtanh);
    const std::string spice = net.to_spice();
    EXPECT_NE(spice.find("R1 "), std::string::npos);
    EXPECT_NE(spice.find("XT1"), std::string::npos);
    EXPECT_NE(spice.find(".end"), std::string::npos);
}

// ---- DC solver ------------------------------------------------------------------

TEST(DcSolver, VoltageDividerExact) {
    Netlist net;
    const auto vin = net.node("in");
    const auto mid = net.node("mid");
    net.add_voltage_source(vin, 1.0);
    net.add_resistor(vin, mid, 1000.0);
    net.add_resistor(mid, Netlist::kGround, 3000.0);
    const auto sol = circuit::DcSolver().solve(net);
    EXPECT_TRUE(sol.converged);
    EXPECT_NEAR(sol.voltages[mid], 0.75, 1e-9);
}

TEST(DcSolver, WheatstoneBridge) {
    Netlist net;
    const auto top = net.node("top");
    const auto left = net.node("left");
    const auto right = net.node("right");
    net.add_voltage_source(top, 1.0);
    net.add_resistor(top, left, 100.0);
    net.add_resistor(top, right, 200.0);
    net.add_resistor(left, Netlist::kGround, 200.0);
    net.add_resistor(right, Netlist::kGround, 100.0);
    net.add_resistor(left, right, 50.0);  // bridge
    const auto sol = circuit::DcSolver().solve(net);
    // Nodal analysis by hand: G matrix [[1/100+1/200+1/50, -1/50],[-1/50, 1/200+1/100+1/50]]
    // I = [1/100, 1/200].
    const double g11 = 1.0 / 100 + 1.0 / 200 + 1.0 / 50;
    const double g22 = 1.0 / 200 + 1.0 / 100 + 1.0 / 50;
    const double g12 = -1.0 / 50;
    const double det = g11 * g22 - g12 * g12;
    const double v_left = (g22 * (1.0 / 100) - g12 * (1.0 / 200)) / det;
    const double v_right = (g11 * (1.0 / 200) - g12 * (1.0 / 100)) / det;
    EXPECT_NEAR(sol.voltages[left], v_left, 1e-9);
    EXPECT_NEAR(sol.voltages[right], v_right, 1e-9);
}

TEST(DcSolver, InverterTransfersHighToLow) {
    // A single resistor-loaded EGT inverter: output near VDD for gate low,
    // near ground for gate high.
    Netlist net;
    const auto vdd = net.node("vdd");
    const auto gate = net.node("g");
    const auto drain = net.node("d");
    net.add_voltage_source(vdd, 1.0);
    net.add_voltage_source(gate, 0.0);
    net.add_resistor(vdd, drain, 100e3);
    net.add_transistor(drain, gate, Netlist::kGround, Egt(600.0, 20.0));
    circuit::DcSolver solver;
    auto sol = solver.solve(net);
    EXPECT_GT(sol.voltages[drain], 0.95);
    net.set_source_voltage(gate, 1.0);
    sol = solver.solve(net);
    EXPECT_LT(sol.voltages[drain], 0.1);
}

TEST(DcSolver, KclResidualIsSmall) {
    const auto net = circuit::build_nonlinear_circuit(
        circuit::default_omega(NonlinearCircuitKind::kPtanh), NonlinearCircuitKind::kPtanh);
    auto copy = net;
    copy.set_source_voltage(copy.find_node("in"), 0.5);
    const auto sol = circuit::DcSolver().solve(copy);
    EXPECT_TRUE(sol.converged);
    EXPECT_LT(sol.residual, 1e-10);
}

TEST(DcSolver, SweepWarmStartMatchesColdSolves) {
    auto net = circuit::build_nonlinear_circuit(
        circuit::default_omega(NonlinearCircuitKind::kNegativeWeight),
        NonlinearCircuitKind::kNegativeWeight);
    const auto in = net.find_node("in");
    const auto out = net.find_node("out");
    circuit::DcSolver solver;
    const std::vector<double> values = {0.0, 0.25, 0.5, 0.75, 1.0};
    const auto swept = solver.sweep(net, in, out, values);
    for (std::size_t i = 0; i < values.size(); ++i) {
        net.set_source_voltage(in, values[i]);
        const auto cold = solver.solve(net);
        // Newton stops on a KCL-current tolerance; at high-impedance
        // nodes that maps to micro-volt-level voltage agreement.
        EXPECT_NEAR(swept[i], cold.voltages[out], 1e-5);
    }
}

TEST(DcSolver, RejectsBadInitialGuessSize) {
    Netlist net;
    const auto a = net.node("a");
    net.add_voltage_source(a, 1.0);
    net.add_resistor(a, Netlist::kGround, 100.0);
    EXPECT_THROW(circuit::DcSolver().solve(net, {1.0}), std::invalid_argument);
}

// ---- nonlinear circuits -----------------------------------------------------------

TEST(NonlinearCircuit, PtanhIsIncreasingWithHealthySwing) {
    const auto curve = circuit::simulate_characteristic(
        circuit::default_omega(NonlinearCircuitKind::kPtanh), NonlinearCircuitKind::kPtanh, 33);
    EXPECT_TRUE(curve.is_monotone(true));
    EXPECT_GT(curve.swing(), 0.5);
    for (double v : curve.vout) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(NonlinearCircuit, NegativeWeightIsDecreasing) {
    const auto curve = circuit::simulate_characteristic(
        circuit::default_omega(NonlinearCircuitKind::kNegativeWeight),
        NonlinearCircuitKind::kNegativeWeight, 33);
    EXPECT_TRUE(curve.is_monotone(false));
    EXPECT_GT(curve.swing(), 0.3);
}

TEST(NonlinearCircuit, MonotoneAcrossDesignSpace) {
    // Property sweep: every feasible design yields a monotone transfer in
    // the right direction (the basis of the tanh-parameterization).
    const auto space = surrogate::DesignSpace::table1();
    math::SobolSequence sobol(7);
    sobol.skip(1);
    for (const auto& omega : space.sample_batch(sobol, 60)) {
        const auto up = circuit::simulate_characteristic(
            omega, NonlinearCircuitKind::kPtanh, 17);
        EXPECT_TRUE(up.is_monotone(true));
        const auto down = circuit::simulate_characteristic(
            omega, NonlinearCircuitKind::kNegativeWeight, 17);
        EXPECT_TRUE(down.is_monotone(false));
    }
}

TEST(NonlinearCircuit, RatiosMatter) {
    // Same divider ratios, different absolute values: gate leakage makes the
    // curves differ (the Table I discussion's "surrounding circuit elements").
    circuit::Omega a = circuit::default_omega(NonlinearCircuitKind::kPtanh);
    circuit::Omega b = a;
    b.r3 *= 1.8;
    b.r4 *= 1.8;  // k2 unchanged
    const auto curve_a =
        circuit::simulate_characteristic(a, NonlinearCircuitKind::kPtanh, 17);
    const auto curve_b =
        circuit::simulate_characteristic(b, NonlinearCircuitKind::kPtanh, 17);
    double max_diff = 0.0;
    for (std::size_t i = 0; i < curve_a.vout.size(); ++i)
        max_diff = std::max(max_diff, std::abs(curve_a.vout[i] - curve_b.vout[i]));
    EXPECT_GT(max_diff, 0.005);
}

TEST(NonlinearCircuit, InputValidation) {
    circuit::Omega bad = circuit::default_omega(NonlinearCircuitKind::kPtanh);
    bad.r5 = 0.0;
    EXPECT_THROW(circuit::build_nonlinear_circuit(bad, NonlinearCircuitKind::kPtanh),
                 std::invalid_argument);
    EXPECT_THROW(circuit::simulate_characteristic(
                     circuit::default_omega(NonlinearCircuitKind::kPtanh),
                     NonlinearCircuitKind::kPtanh, 1),
                 std::invalid_argument);
}

TEST(NonlinearCircuit, OmegaHelpers) {
    const circuit::Omega omega{100.0, 50.0, 200e3, 100e3, 300e3, 400.0, 40.0};
    EXPECT_DOUBLE_EQ(omega.k1(), 0.5);
    EXPECT_DOUBLE_EQ(omega.k2(), 0.5);
    EXPECT_DOUBLE_EQ(omega.k3(), 10.0);
    const auto round_trip = circuit::Omega::from_array(omega.to_array());
    EXPECT_DOUBLE_EQ(round_trip.r5, 300e3);
}

// ---- crossbar ------------------------------------------------------------------------

TEST(Crossbar, ClosedFormMatchesHandComputation) {
    circuit::CrossbarColumn column;
    column.input_conductances = {1e-6, 3e-6};
    column.bias_conductance = 2e-6;
    column.drain_conductance = 4e-6;
    const double vz = column.output({1.0, 0.5});
    // (1*1 + 3*0.5 + 2*1) / (1+3+2+4) = 4.5/10
    EXPECT_NEAR(vz, 0.45, 1e-12);
}

TEST(Crossbar, MatchesAnalogNetlistSolve) {
    // Eq. 1 against the MNA solver on the physically realized column.
    circuit::CrossbarColumn column;
    column.input_conductances = {2e-6, 0.0, 5e-6, 1e-6};  // one not printed
    column.bias_conductance = 3e-6;
    column.drain_conductance = 2e-6;
    const std::vector<double> inputs = {0.9, 0.4, 0.1, 0.7};
    auto net = circuit::build_crossbar_netlist(column);
    for (std::size_t i = 0; i < inputs.size(); ++i)
        net.set_source_voltage(net.find_node("in" + std::to_string(i)), inputs[i]);
    const auto sol = circuit::DcSolver().solve(net);
    EXPECT_NEAR(sol.voltages[net.find_node("z")], column.output(inputs), 1e-7);
}

TEST(Crossbar, OutputIsConvexCombination) {
    circuit::CrossbarColumn column;
    column.input_conductances = {1e-6, 2e-6, 3e-6};
    column.bias_conductance = 1e-6;
    column.drain_conductance = 0.0;
    const double vz = column.output({0.2, 0.8, 0.5});
    EXPECT_GT(vz, 0.2);
    EXPECT_LT(vz, 1.0);
    // The drain conductance only pulls the output down.
    column.drain_conductance = 5e-6;
    EXPECT_LT(column.output({0.2, 0.8, 0.5}), vz);
}

TEST(Crossbar, Validation) {
    circuit::CrossbarColumn column;
    column.input_conductances = {1e-6};
    EXPECT_THROW(column.output({0.5, 0.5}), std::invalid_argument);
    circuit::CrossbarColumn floating;
    floating.input_conductances = {0.0};
    EXPECT_THROW(floating.output({0.5}), std::invalid_argument);
    circuit::CrossbarColumn negative;
    negative.input_conductances = {-1e-6};
    negative.bias_conductance = 1e-6;
    EXPECT_THROW(negative.output({0.5}), std::invalid_argument);
}

TEST(Crossbar, MultiColumn) {
    circuit::Crossbar xbar;
    for (int j = 0; j < 3; ++j) {
        circuit::CrossbarColumn column;
        column.input_conductances = {1e-6 * (j + 1), 2e-6};
        column.bias_conductance = 1e-6;
        column.drain_conductance = 1e-6;
        xbar.columns.push_back(column);
    }
    const auto out = xbar.outputs({0.5, 0.25});
    EXPECT_EQ(out.size(), 3u);
    for (double v : out) {
        EXPECT_GT(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

// ---- variation model --------------------------------------------------------------------

TEST(Variation, FactorsWithinBand) {
    const circuit::VariationModel model(0.1);
    math::Rng rng(3);
    const auto factors = model.sample_factors(rng, 50, 50);
    for (std::size_t i = 0; i < factors.size(); ++i) {
        ASSERT_GE(factors[i], 0.9);
        ASSERT_LT(factors[i], 1.1);
    }
    // Mean stays close to 1.
    EXPECT_NEAR(factors.sum() / static_cast<double>(factors.size()), 1.0, 0.01);
}

TEST(Variation, NominalIsExactlyOne) {
    const circuit::VariationModel model(0.0);
    math::Rng rng(4);
    EXPECT_TRUE(model.is_nominal());
    EXPECT_DOUBLE_EQ(model.sample_factor(rng), 1.0);
    const auto factors = model.sample_factors(rng, 3, 3);
    for (std::size_t i = 0; i < factors.size(); ++i) EXPECT_DOUBLE_EQ(factors[i], 1.0);
}

TEST(Variation, PerturbsOmegaComponentwise) {
    const circuit::VariationModel model(0.05);
    math::Rng rng(5);
    const auto base = circuit::default_omega(NonlinearCircuitKind::kPtanh);
    const auto perturbed = model.perturb(base, rng);
    const auto a = base.to_array();
    const auto b = perturbed.to_array();
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_GE(b[i], a[i] * 0.95);
        EXPECT_LE(b[i], a[i] * 1.05);
        EXPECT_NE(b[i], a[i]);
    }
}

TEST(Variation, RejectsBadEpsilon) {
    EXPECT_THROW(circuit::VariationModel(-0.1), std::invalid_argument);
    EXPECT_THROW(circuit::VariationModel(1.0), std::invalid_argument);
}
