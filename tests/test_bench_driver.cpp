// End-to-end regression-observatory flow against the real binaries: the
// `pnc-bench` driver runs one real bench in smoke tier and writes a
// pnc-bench-suite/1 artifact, then `pnc report check` gates a candidate
// against it — green on itself, exit 3 on a doctored accuracy drop.
//
// ctest runs every discovered case as its own process, so the whole
// driver → artifact → report flow lives in ONE test; the cheap usage-error
// probes get their own.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/baseline.hpp"
#include "obs/json.hpp"

#ifndef PNC_BENCH_DRIVER_PATH
#error "PNC_BENCH_DRIVER_PATH must point at the pnc-bench binary"
#endif
#ifndef PNC_CLI_PATH
#error "PNC_CLI_PATH must point at the pnc binary"
#endif

using namespace pnc;
namespace fs = std::filesystem;

namespace {

struct CommandResult {
    int exit_code = -1;
    std::string output;  ///< stdout + stderr
};

/// Run through the shell, capturing combined output and the exit code.
CommandResult run_command(const std::string& command) {
    const fs::path capture =
        fs::temp_directory_path() / ("pnc_bench_driver_out_" + std::to_string(getpid()));
    const int status = std::system((command + " > " + capture.string() + " 2>&1").c_str());
    CommandResult result;
    if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
    std::ifstream in(capture);
    std::ostringstream os;
    os << in.rdbuf();
    result.output = os.str();
    fs::remove(capture);
    return result;
}

std::string slurp(const fs::path& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/// Fresh scratch workspace per test case (cases are separate processes).
class BenchDriverTest : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        workspace_ = fs::temp_directory_path() /
                     (std::string("pnc_bench_driver_") + info->name());
        fs::remove_all(workspace_);
        fs::create_directories(workspace_);
        setenv("PNC_ARTIFACTS", workspace_.string().c_str(), 1);
    }
    void TearDown() override {
        unsetenv("PNC_ARTIFACTS");
        std::error_code ec;
        fs::remove_all(workspace_, ec);
    }

    fs::path suite_path() const { return workspace_ / "suite.json"; }
    fs::path workspace_;
};

}  // namespace

TEST_F(BenchDriverTest, ListAndUsageErrors) {
    const auto list = run_command(std::string(PNC_BENCH_DRIVER_PATH) + " --list");
    EXPECT_EQ(list.exit_code, 0);
    EXPECT_NE(list.output.find("fig2"), std::string::npos) << list.output;
    EXPECT_NE(list.output.find("table2"), std::string::npos) << list.output;

    EXPECT_EQ(run_command(std::string(PNC_BENCH_DRIVER_PATH) + " --bogus").exit_code, 2);
    // A filter matching nothing is usage-class (exit 2) and names the
    // unmatched pattern, so a typo'd CI filter cannot pass silently.
    const auto nomatch =
        run_command(std::string(PNC_BENCH_DRIVER_PATH) + " --filter no_such_bench");
    EXPECT_EQ(nomatch.exit_code, 2);
    EXPECT_NE(nomatch.output.find("no_such_bench"), std::string::npos) << nomatch.output;
}

TEST_F(BenchDriverTest, ReportUsageErrors) {
    EXPECT_EQ(run_command(std::string(PNC_CLI_PATH) + " report").exit_code, 2);
    EXPECT_EQ(run_command(std::string(PNC_CLI_PATH) + " report diff onlyone").exit_code, 2);
    // Naming a file that is not there is usage-class (exit 2) and the error
    // reports the path (test_observatory covers the message content).
    EXPECT_EQ(run_command(std::string(PNC_CLI_PATH) +
                          " report diff nosuch_a.json nosuch_b.json")
                  .exit_code,
              2);
}

TEST_F(BenchDriverTest, SmokeRunThenReportCheckFlow) {
    // ---- 1. Driver: one real bench, smoke tier, explicit artifact path.
    const auto run = run_command(std::string(PNC_BENCH_DRIVER_PATH) +
                                 " --smoke --filter fig2 --out " + suite_path().string());
    ASSERT_EQ(run.exit_code, 0) << run.output;
    ASSERT_TRUE(fs::exists(suite_path())) << run.output;

    // The artifact is a valid pnc-bench-suite/1 with real content.
    const obs::BenchSuite suite =
        obs::parse_bench_suite(obs::json::Value::parse(slurp(suite_path())));
    EXPECT_EQ(suite.meta_value("tool"), "pnc-bench");
    EXPECT_EQ(suite.meta_value("tier"), "smoke");
    EXPECT_FALSE(suite.meta_value("compiler").empty());
    ASSERT_EQ(suite.benches.size(), 1u);
    const obs::BenchResult* fig2 = suite.find("fig2");
    ASSERT_NE(fig2, nullptr);
    EXPECT_EQ(fig2->exit_code, 0);
    EXPECT_GT(fig2->wall_seconds, 0.0);
    EXPECT_GT(fig2->peak_rss_kb, 0.0);
    EXPECT_FALSE(fig2->metrics.empty());

    // The driver kept the bench's log under the artifact dir.
    EXPECT_TRUE(fs::exists(workspace_ / "bench_logs" / "fig2.log"));

    // ---- 2. report check against itself: green.
    const auto check = run_command(std::string(PNC_CLI_PATH) + " report check " +
                                   suite_path().string() + " --baseline " +
                                   suite_path().string());
    EXPECT_EQ(check.exit_code, 0) << check.output;
    EXPECT_NE(check.output.find("regression-free"), std::string::npos) << check.output;

    // ---- 3. Doctored artifact: exit 3 (the ISSUE acceptance gate).
    // Degrade every accuracy-like headline; fig2's headlines are all
    // informational (swing/family), so also drop one metric — a coverage
    // loss, which the differ grades as an accuracy regression too.
    obs::BenchSuite doctored = suite;
    for (auto& bench : doctored.benches)
        for (auto& [name, value] : bench.metrics)
            if (obs::classify_metric(name) == obs::MetricKind::kAccuracy) value -= 0.5;
    ASSERT_FALSE(doctored.benches[0].metrics.empty());
    doctored.benches[0].metrics.pop_back();
    const fs::path doctored_path = workspace_ / "doctored.json";
    std::ofstream(doctored_path) << obs::bench_suite_document(doctored).dump() << "\n";

    const auto bad = run_command(std::string(PNC_CLI_PATH) + " report check " +
                                 doctored_path.string() + " --baseline " +
                                 suite_path().string());
    EXPECT_EQ(bad.exit_code, 3) << bad.output;
    EXPECT_NE(bad.output.find("ACCURACY REGRESSION"), std::string::npos) << bad.output;

    // `report diff` agrees and flags the dropped metric as MISSING.
    const auto diff = run_command(std::string(PNC_CLI_PATH) + " report diff " +
                                  suite_path().string() + " " + doctored_path.string());
    EXPECT_EQ(diff.exit_code, 3) << diff.output;
    EXPECT_NE(diff.output.find("MISSING"), std::string::npos) << diff.output;

    // ---- 4. Timing regression: gates by default, warn-only on request.
    obs::BenchSuite slow = suite;
    for (auto& bench : slow.benches) bench.wall_seconds *= 10.0;
    const fs::path slow_path = workspace_ / "slow.json";
    std::ofstream(slow_path) << obs::bench_suite_document(slow).dump() << "\n";

    const auto hard = run_command(std::string(PNC_CLI_PATH) + " report check " +
                                  slow_path.string() + " --baseline " +
                                  suite_path().string());
    EXPECT_EQ(hard.exit_code, 3) << hard.output;

    const auto soft = run_command(std::string(PNC_CLI_PATH) + " report check " +
                                  slow_path.string() + " --baseline " +
                                  suite_path().string() + " --timing-warn-only 1");
    EXPECT_EQ(soft.exit_code, 0) << soft.output;

    // ---- 5. With no explicit candidate, check picks the newest artifact
    // in PNC_ARTIFACTS (BENCH_*.json) — run the driver once without --out.
    // Timing warn-only: this step tests candidate selection, not the timing
    // gate (step 4 covers that); a ~10 ms bench re-run jitters far beyond
    // the relative threshold whenever the machine is loaded.
    const auto second = run_command(std::string(PNC_BENCH_DRIVER_PATH) +
                                    " --smoke --filter fig2");
    ASSERT_EQ(second.exit_code, 0) << second.output;
    const auto implicit = run_command(std::string(PNC_CLI_PATH) +
                                      " report check --timing-warn-only 1 --baseline " +
                                      suite_path().string());
    EXPECT_EQ(implicit.exit_code, 0) << implicit.output;
    EXPECT_NE(implicit.output.find("candidate: "), std::string::npos) << implicit.output;
}
