// Tests for yield estimation, corner analysis, cost analysis and pNN
// serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "data/registry.hpp"
#include "pnn/cost_analysis.hpp"
#include "pnn/robustness.hpp"
#include "pnn/serialize.hpp"
#include "pnn/training.hpp"

using namespace pnc;
using math::Matrix;

namespace {

const surrogate::SurrogateModel& rs_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 300;
        options.sweep_points = 17;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 400;
        train.mlp.patience = 100;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

struct Fixture {
    data::SplitDataset split;
    pnn::Pnn net;
};

Fixture trained_fixture() {
    auto split = data::split_and_normalize(data::make_dataset("iris"), 33);
    math::Rng rng(71);
    pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                 &rs_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                 &rs_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                 surrogate::DesignSpace::table1(), rng);
    pnn::TrainOptions options;
    options.max_epochs = 300;
    options.patience = 120;
    pnn::train_pnn(net, split, options);
    return {std::move(split), std::move(net)};
}

}  // namespace

// ---- yield ---------------------------------------------------------------

TEST(Yield, TrivialSpecsBracketTheDistribution) {
    const auto fx = trained_fixture();
    const auto always = pnn::estimate_yield(fx.net, fx.split.x_test, fx.split.y_test,
                                            0.0, 0.05, 50);
    EXPECT_DOUBLE_EQ(always.yield, 1.0);
    const auto never = pnn::estimate_yield(fx.net, fx.split.x_test, fx.split.y_test,
                                           1.01, 0.05, 50);
    EXPECT_DOUBLE_EQ(never.yield, 0.0);
}

TEST(Yield, QuantilesAreOrdered) {
    const auto fx = trained_fixture();
    const auto result = pnn::estimate_yield(fx.net, fx.split.x_test, fx.split.y_test,
                                            0.8, 0.10, 100);
    EXPECT_LE(result.worst_accuracy, result.p5_accuracy);
    EXPECT_LE(result.p5_accuracy, result.median_accuracy);
    EXPECT_EQ(result.n_samples, 100);
}

TEST(Yield, HigherVariationNeverHelps) {
    const auto fx = trained_fixture();
    const auto low = pnn::estimate_yield(fx.net, fx.split.x_test, fx.split.y_test,
                                         0.85, 0.02, 100);
    const auto high = pnn::estimate_yield(fx.net, fx.split.x_test, fx.split.y_test,
                                          0.85, 0.15, 100);
    EXPECT_GE(low.yield + 1e-12, high.yield);
    EXPECT_GE(low.worst_accuracy, high.worst_accuracy - 0.05);
}

TEST(Yield, Validation) {
    const auto fx = trained_fixture();
    EXPECT_THROW(pnn::estimate_yield(fx.net, fx.split.x_test, fx.split.y_test, 0.5, 0.05, 1),
                 std::invalid_argument);
    EXPECT_THROW(pnn::worst_corner_accuracy(fx.net, fx.split.x_test, fx.split.y_test, 0.05,
                                            0),
                 std::invalid_argument);
}

TEST(CornerAnalysis, IsAtMostMonteCarloWorst) {
    // Corners push every component to a tolerance extreme; the result must
    // be no better than the uniform Monte-Carlo median.
    const auto fx = trained_fixture();
    const auto mc = pnn::estimate_yield(fx.net, fx.split.x_test, fx.split.y_test, 0.8,
                                        0.10, 80);
    const double corner =
        pnn::worst_corner_accuracy(fx.net, fx.split.x_test, fx.split.y_test, 0.10, 40);
    EXPECT_LE(corner, mc.median_accuracy + 1e-9);
}

// ---- cost analysis -----------------------------------------------------------

TEST(CostAnalysis, ReportsPositivePhysicalNumbers) {
    const auto fx = trained_fixture();
    const auto design = pnn::extract_design(fx.net);
    pnn::CostAnalysisOptions options;
    options.transient.time_step = 50e-6;
    options.transient.duration = 20e-3;
    const auto cost = pnn::analyze_design_cost(design, options);
    ASSERT_EQ(cost.layers.size(), 2u);
    EXPECT_GT(cost.total_watts, 1e-6);
    EXPECT_LT(cost.total_watts, 1.0);
    EXPECT_GT(cost.latency_seconds, 0.0);
    EXPECT_LT(cost.latency_seconds, 0.1);
    EXPECT_GT(cost.components, 20u);
    // Hidden layer has nonlinear circuits; the readout layer may only have
    // negative-weight instances.
    EXPECT_GT(cost.layers[0].nonlinear_watts, 0.0);
    EXPECT_GT(cost.layers[0].settle_seconds, 0.0);
}

// ---- serialization --------------------------------------------------------------

TEST(Serialize, RoundTripPreservesBehaviour) {
    const auto fx = trained_fixture();
    std::stringstream ss;
    pnn::save_pnn(fx.net, ss);
    const auto loaded =
        pnn::load_pnn(ss, &rs_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                      &rs_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                      surrogate::DesignSpace::table1());
    EXPECT_EQ(loaded.layer_sizes(), fx.net.layer_sizes());
    const Matrix a = fx.net.predict(fx.split.x_test);
    const Matrix b = loaded.predict(fx.split.x_test);
    EXPECT_LT(math::max_abs_diff(a, b), 1e-12);
}

TEST(Serialize, RoundTripPreservesDesign) {
    const auto fx = trained_fixture();
    std::stringstream ss;
    pnn::save_pnn(fx.net, ss);
    const auto loaded =
        pnn::load_pnn(ss, &rs_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                      &rs_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                      surrogate::DesignSpace::table1());
    const auto original_design = pnn::extract_design(fx.net);
    const auto loaded_design = pnn::extract_design(loaded);
    EXPECT_EQ(pnn::export_spice(original_design), pnn::export_spice(loaded_design));
}

TEST(Serialize, RejectsGarbage) {
    std::stringstream ss("not-a-pnn 9\n");
    EXPECT_THROW(pnn::load_pnn(ss, &rs_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                               &rs_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                               surrogate::DesignSpace::table1()),
                 std::runtime_error);
}
