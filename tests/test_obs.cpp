// Observability suite: metric primitives, the registry under the thread
// pool, scoped-trace aggregation, exporter round-trips, and — the invariant
// everything else depends on — that enabling telemetry does not perturb
// training or evaluation by a single bit (obs reads clocks and values, it
// never touches an Rng stream).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "obs/config.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "pnn/robustness.hpp"
#include "pnn/training.hpp"
#include "runtime/thread_pool.hpp"
#include "surrogate/dataset_builder.hpp"

using namespace pnc;

namespace {

/// Every test starts and ends with obs disabled and all global sinks empty,
/// so suites can run in any order without leaking metrics into each other.
class ObsTest : public ::testing::Test {
protected:
    void SetUp() override { reset_all(); }
    void TearDown() override { reset_all(); }

    static void reset_all() {
        obs::set_enabled(false);
        obs::MetricsRegistry::global().reset();
        obs::Tracer::global().reset();
    }
};

const obs::HistogramSnapshot* find_histogram(const obs::MetricsSnapshot& snapshot,
                                             const std::string& name) {
    for (const auto& h : snapshot.histograms)
        if (h.name == name) return &h;
    return nullptr;
}

const obs::TraceNode* find_child(const obs::TraceNode& node, const std::string& name) {
    for (const auto& child : node.children)
        if (child->name == name) return child.get();
    return nullptr;
}

}  // namespace

// ---------------------------------------------------------------- metrics

TEST_F(ObsTest, CounterAndGaugeBasics) {
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("c").add();
    registry.counter("c").add(41);
    EXPECT_EQ(registry.counter("c").value(), 42u);

    registry.gauge("g").set(2.5);
    registry.gauge("g").add(-1.0);
    EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 1.5);

    const auto snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.counters.size(), 1u);
    EXPECT_EQ(snapshot.counters[0].first, "c");
    EXPECT_EQ(snapshot.counters[0].second, 42u);
    ASSERT_EQ(snapshot.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(snapshot.gauges[0].second, 1.5);
}

TEST_F(ObsTest, HistogramBucketsAndQuantiles) {
    auto& hist = obs::MetricsRegistry::global().histogram(
        "h", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0});
    // 1000 observations uniform over (0, 10): 100 per bucket.
    for (int i = 0; i < 1000; ++i) hist.observe((i % 10) + 0.5);

    EXPECT_EQ(hist.count(), 1000u);
    EXPECT_DOUBLE_EQ(hist.min(), 0.5);
    EXPECT_DOUBLE_EQ(hist.max(), 9.5);
    EXPECT_NEAR(hist.sum(), 5000.0, 1e-9);
    const auto buckets = hist.bucket_counts();
    ASSERT_EQ(buckets.size(), 11u);  // 10 bounds + overflow
    for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(buckets[b], 100u) << "bucket " << b;
    EXPECT_EQ(buckets[10], 0u);

    obs::HistogramSnapshot snap = *find_histogram(obs::MetricsRegistry::global().snapshot(), "h");
    // Bucket interpolation on a uniform distribution: q-th quantile ~ 10 q.
    EXPECT_NEAR(snap.quantile(0.50), 5.0, 1.0);
    EXPECT_NEAR(snap.quantile(0.90), 9.0, 1.0);
    // Quantiles are clamped to the observed range.
    EXPECT_GE(snap.quantile(0.0), 0.5);
    EXPECT_LE(snap.quantile(1.0), 9.5);
}

TEST_F(ObsTest, HistogramOverflowBucketCatchesLargeValues) {
    auto& hist = obs::MetricsRegistry::global().histogram("h", {1.0, 2.0});
    hist.observe(100.0);
    const auto buckets = hist.bucket_counts();
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[2], 1u);
    EXPECT_DOUBLE_EQ(hist.max(), 100.0);
}

TEST_F(ObsTest, SingleSampleQuantilesClampToObservedValue) {
    // One observation: every percentile must collapse to that value —
    // bucket interpolation must not invent mass below min or above max.
    auto& hist = obs::MetricsRegistry::global().histogram("h", {1.0, 2.0, 4.0});
    hist.observe(1.5);
    const auto snap = *find_histogram(obs::MetricsRegistry::global().snapshot(), "h");
    ASSERT_EQ(snap.count, 1u);
    for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
        EXPECT_GE(snap.quantile(q), 1.5) << "q=" << q;
        EXPECT_LE(snap.quantile(q), 1.5) << "q=" << q;
    }
}

TEST_F(ObsTest, OverflowOnlyQuantilesClampToObservedRange) {
    // All mass in the overflow bucket, whose upper edge is +inf: quantiles
    // must stay inside [min, max] instead of interpolating to infinity.
    auto& hist = obs::MetricsRegistry::global().histogram("h", {1.0, 2.0});
    hist.observe(50.0);
    hist.observe(75.0);
    hist.observe(100.0);
    const auto snap = *find_histogram(obs::MetricsRegistry::global().snapshot(), "h");
    ASSERT_EQ(snap.bucket_counts.back(), 3u);
    for (const double q : {0.5, 0.9, 0.99}) {
        const double v = snap.quantile(q);
        EXPECT_TRUE(std::isfinite(v)) << "q=" << q;
        EXPECT_GE(v, 50.0) << "q=" << q;
        EXPECT_LE(v, 100.0) << "q=" << q;
    }
}

TEST_F(ObsTest, HistogramRejectsBadBounds) {
    EXPECT_THROW(obs::Histogram(std::vector<double>{}), std::invalid_argument);
    EXPECT_THROW(obs::Histogram((std::vector<double>{3.0, 1.0, 2.0})), std::invalid_argument);
}

TEST_F(ObsTest, EmptyHistogramQuantileIsZero) {
    obs::MetricsRegistry::global().histogram("h", {1.0});
    const auto snap = *find_histogram(obs::MetricsRegistry::global().snapshot(), "h");
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
}

TEST_F(ObsTest, SeriesKeepsInsertionOrder) {
    auto& series = obs::MetricsRegistry::global().series("s");
    for (int i = 0; i < 5; ++i) series.append(i * 0.5);
    const auto values = series.values();
    ASSERT_EQ(values.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(values[i], i * 0.5);
}

TEST_F(ObsTest, SiteHelpersAreNoopsWhenDisabled) {
    ASSERT_FALSE(obs::enabled());
    obs::add_counter("nope");
    obs::set_gauge("nope", 1.0);
    obs::observe("nope", 1.0);
    obs::append_series("nope", 1.0);
    EXPECT_TRUE(obs::MetricsRegistry::global().snapshot().empty());
}

TEST_F(ObsTest, RegistryIsThreadSafeUnderThePool) {
    obs::set_enabled(true);
    runtime::set_global_threads(8);
    auto& registry = obs::MetricsRegistry::global();
    // Hoisted handles updated lock-free from every worker, plus dynamic
    // name lookups racing the find-or-create path.
    auto& counter = registry.counter("pool.counter");
    auto& gauge = registry.gauge("pool.gauge");
    auto& hist = registry.histogram("pool.hist", {0.25, 0.5, 0.75, 1.0});
    constexpr std::size_t kN = 20000;
    runtime::parallel_for(kN, [&](std::size_t i) {
        counter.add();
        gauge.add(1.0);
        hist.observe(static_cast<double>(i % 4) * 0.25 + 0.1);
        registry.counter("pool.dynamic." + std::to_string(i % 7)).add();
    });
    runtime::set_global_threads(runtime::ThreadPool::default_thread_count());

    EXPECT_EQ(counter.value(), kN);
    EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kN));
    EXPECT_EQ(hist.count(), kN);
    std::uint64_t dynamic_total = 0;
    for (int k = 0; k < 7; ++k)
        dynamic_total += registry.counter("pool.dynamic." + std::to_string(k)).value();
    EXPECT_EQ(dynamic_total, kN);
}

TEST_F(ObsTest, RegistryResetDoesNotInvalidateLivePoolWorkers) {
    // Regression: the global pool's workers outlive MetricsRegistry::reset()
    // (every ObsTest TearDown does one); an observed task executed after the
    // reset must re-resolve its busy gauge, not reuse a destroyed one. The
    // chunks spin for ~1 ms so every worker takes a task in both phases —
    // with instant chunks one worker can drain a whole sweep, and the
    // stale-handle reuse this test exists to catch would need a worker that
    // ran tasks on both sides of the reset.
    const auto spin = [](std::size_t) {
        for (volatile int k = 0; k < 400000; ++k) {
        }
    };
    constexpr std::uint64_t kSweeps = 3;
    obs::set_enabled(true);
    runtime::set_global_threads(4);
    for (std::uint64_t s = 0; s < kSweeps; ++s) runtime::parallel_for(4, spin);
    obs::MetricsRegistry::global().reset();
    for (std::uint64_t s = 0; s < kSweeps; ++s) runtime::parallel_for(4, spin);
    // Joining the pool (replacement destroys it) makes every worker-side
    // metric update land before the assertions below read the counters.
    runtime::set_global_threads(runtime::ThreadPool::default_thread_count());

    auto& registry = obs::MetricsRegistry::global();
    // Only the post-reset sweeps are visible: kSweeps parallel_fors of 4
    // chunks each (chunk updates complete before parallel_for returns, so
    // the first phase's are all wiped by the reset). The per-task updates
    // run after the chunk's join handshake, so up to 3 stragglers from the
    // pre-reset phase may land on top of the second phase's 3 per sweep.
    EXPECT_EQ(registry.counter("pool.parallel_for_total").value(), kSweeps);
    EXPECT_EQ(registry.counter("pool.chunks_total").value(), 4 * kSweeps);
    EXPECT_GE(registry.counter("pool.tasks_total").value(), 3 * kSweeps);
    EXPECT_LE(registry.counter("pool.tasks_total").value(), 3 * kSweeps + 3);
}

TEST_F(ObsTest, PerWorkerGaugesDoNotMixAcrossPoolReplacements) {
    // Each pool generation namespaces its per-worker busy gauges, so a run
    // that resizes the pool keeps the two pools' busy time separate.
    obs::set_enabled(true);
    runtime::set_global_threads(4);
    runtime::parallel_for(64, [](std::size_t) {});
    runtime::set_global_threads(2);
    runtime::parallel_for(64, [](std::size_t) {});
    runtime::set_global_threads(runtime::ThreadPool::default_thread_count());

    std::vector<std::string> generations;
    for (const auto& [name, value] : obs::MetricsRegistry::global().snapshot().gauges) {
        const auto worker_pos = name.find(".worker.");
        if (name.rfind("pool.g", 0) == 0 && worker_pos != std::string::npos) {
            const std::string gen = name.substr(0, worker_pos);
            if (std::find(generations.begin(), generations.end(), gen) == generations.end())
                generations.push_back(gen);
        }
    }
    // Two observed pools ran worker tasks -> two distinct gauge families.
    EXPECT_GE(generations.size(), 2u);
}

// ------------------------------------------------------------------ traces

TEST_F(ObsTest, ScopedTimerNestsAndAggregates) {
    obs::set_enabled(true);
    {
        obs::ScopedTimer outer("outer");
        for (int i = 0; i < 3; ++i) obs::ScopedTimer inner("inner");
        obs::ScopedTimer other("other");
    }
    const auto root = obs::Tracer::global().snapshot();
    const auto* outer = find_child(*root, "outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->count, 1u);
    EXPECT_GE(outer->seconds, 0.0);
    const auto* inner = find_child(*outer, "inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->count, 3u);  // same-name spans aggregate into one node
    ASSERT_NE(find_child(*outer, "other"), nullptr);
    EXPECT_EQ(find_child(*root, "inner"), nullptr);  // nested, not top-level
}

TEST_F(ObsTest, RepeatedTopLevelSpansMergeByName) {
    obs::set_enabled(true);
    for (int i = 0; i < 2; ++i) {
        obs::ScopedTimer span("phase");
        obs::ScopedTimer child("step");
    }
    const auto root = obs::Tracer::global().snapshot();
    const auto* phase = find_child(*root, "phase");
    ASSERT_NE(phase, nullptr);
    EXPECT_EQ(phase->count, 2u);
    const auto* step = find_child(*phase, "step");
    ASSERT_NE(step, nullptr);
    EXPECT_EQ(step->count, 2u);
}

TEST_F(ObsTest, ScopedTimerIsInertWhenDisabled) {
    {
        obs::ScopedTimer span("ghost");
        obs::ScopedTimer child("ghost-child");
    }
    EXPECT_TRUE(obs::Tracer::global().snapshot()->children.empty());
}

// --------------------------------------------------------------- exporters

TEST_F(ObsTest, JsonDumpParseRoundTrip) {
    obs::json::Value doc = obs::json::Value::object();
    doc.set("str", obs::json::Value::string("a \"quoted\"\nline\twith\\escapes"));
    doc.set("num", obs::json::Value::number(-0.125));
    doc.set("yes", obs::json::Value::boolean(true));
    doc.set("nil", obs::json::Value::null());
    obs::json::Value arr = obs::json::Value::array();
    arr.push_back(obs::json::Value::number(1e-300));
    arr.push_back(obs::json::Value::string("x"));
    doc.set("arr", std::move(arr));

    const auto parsed = obs::json::Value::parse(doc.dump());
    EXPECT_EQ(parsed.find("str")->as_string(), "a \"quoted\"\nline\twith\\escapes");
    EXPECT_DOUBLE_EQ(parsed.find("num")->as_number(), -0.125);
    EXPECT_TRUE(parsed.find("yes")->as_bool());
    EXPECT_EQ(parsed.find("nil")->kind(), obs::json::Value::Kind::kNull);
    ASSERT_EQ(parsed.find("arr")->items().size(), 2u);
    EXPECT_DOUBLE_EQ(parsed.find("arr")->items()[0].as_number(), 1e-300);
}

TEST_F(ObsTest, JsonParseRejectsMalformedInput) {
    EXPECT_THROW(obs::json::Value::parse("{"), std::runtime_error);
    EXPECT_THROW(obs::json::Value::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(obs::json::Value::parse("{} trailing"), std::runtime_error);
    EXPECT_THROW(obs::json::Value::parse("\"unterminated"), std::runtime_error);
    EXPECT_THROW(obs::json::Value::parse("nul"), std::runtime_error);
}

TEST_F(ObsTest, JsonParsesUnicodeEscapes) {
    const auto value = obs::json::Value::parse("\"\\u00e9\\u0041\"");
    EXPECT_EQ(value.as_string(), "\xc3\xa9\x41");  // é + A as UTF-8
}

TEST_F(ObsTest, RunReportRoundTripsThroughJson) {
    obs::set_enabled(true);
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("events").add(7);
    registry.gauge("rate").set(123.5);
    auto& hist = registry.histogram("latency", {0.5, 1.0, 2.0});
    hist.observe(0.25);
    hist.observe(1.5);
    for (int i = 0; i < 3; ++i) registry.series("loss").append(1.0 / (i + 1));

    obs::RunMeta meta;
    meta.tool = "test_obs";
    meta.command = "round-trip";
    meta.extra.emplace_back("dataset", "blobs");

    namespace fs = std::filesystem;
    const auto path = (fs::temp_directory_path() / "pnc_obs_roundtrip.json").string();
    obs::write_run_report(path, meta);

    std::ifstream is(path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const auto doc = obs::json::Value::parse(buffer.str());
    fs::remove(path);

    EXPECT_EQ(obs::validate_run_report(doc), "");
    EXPECT_EQ(doc.find("meta")->find("tool")->as_string(), "test_obs");
    EXPECT_EQ(doc.find("meta")->find("dataset")->as_string(), "blobs");
    EXPECT_DOUBLE_EQ(doc.find("counters")->find("events")->as_number(), 7.0);
    EXPECT_DOUBLE_EQ(doc.find("gauges")->find("rate")->as_number(), 123.5);
    const auto* latency = doc.find("histograms")->find("latency");
    ASSERT_NE(latency, nullptr);
    EXPECT_DOUBLE_EQ(latency->find("count")->as_number(), 2.0);
    EXPECT_DOUBLE_EQ(latency->find("sum")->as_number(), 1.75);
    EXPECT_DOUBLE_EQ(latency->find("min")->as_number(), 0.25);
    EXPECT_DOUBLE_EQ(latency->find("max")->as_number(), 1.5);
    ASSERT_EQ(latency->find("bounds")->items().size(), 3u);
    ASSERT_EQ(latency->find("bucket_counts")->items().size(), 4u);
    const auto* loss = doc.find("series")->find("loss");
    ASSERT_NE(loss, nullptr);
    ASSERT_EQ(loss->items().size(), 3u);
    EXPECT_DOUBLE_EQ(loss->items()[2].as_number(), 1.0 / 3.0);
}

TEST_F(ObsTest, ValidateRejectsMalformedReports) {
    obs::RunMeta meta;
    meta.tool = "t";
    meta.command = "c";
    auto doc = obs::run_report_document(obs::MetricsRegistry::global().snapshot(), meta);
    ASSERT_EQ(obs::validate_run_report(doc), "");

    auto bad_schema = doc;
    bad_schema.set("schema", obs::json::Value::string("nope/9"));
    EXPECT_NE(obs::validate_run_report(bad_schema), "");

    auto bad_counter = doc;
    obs::json::Value counters = obs::json::Value::object();
    counters.set("oops", obs::json::Value::string("NaN"));
    bad_counter.set("counters", std::move(counters));
    EXPECT_NE(obs::validate_run_report(bad_counter), "");

    EXPECT_NE(obs::validate_run_report(obs::json::Value::array()), "");
}

TEST_F(ObsTest, NonFiniteValuesSerializeAsNullAndAreRejected) {
    // Satellite contract: a NaN/Inf gauge must not round-trip silently. The
    // JSON writer emits null (JSON has no NaN); the validator rejects the
    // re-parsed document with a message naming the metric.
    obs::set_enabled(true);
    obs::MetricsRegistry::global().gauge("bad.gauge").set(std::nan(""));
    obs::MetricsRegistry::global().gauge("worse.gauge").set(
        std::numeric_limits<double>::infinity());
    obs::RunMeta meta;
    meta.tool = "t";
    meta.command = "c";
    const auto doc =
        obs::run_report_document(obs::MetricsRegistry::global().snapshot(), meta);
    const std::string text = doc.dump();
    EXPECT_NE(text.find("null"), std::string::npos);

    const auto reparsed = obs::json::Value::parse(text);
    const std::string err = obs::validate_run_report(reparsed);
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("gauge"), std::string::npos) << err;
}

TEST_F(ObsTest, CsvExportFlattensEveryKind) {
    obs::set_enabled(true);
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("n").add(3);
    registry.gauge("g").set(0.5);
    registry.histogram("h", {1.0}).observe(0.5);
    registry.series("s").append(7.0);
    registry.series("s").append(8.0);

    const std::string csv = obs::metrics_csv(registry.snapshot());
    EXPECT_NE(csv.find("kind,name,field,value\n"), std::string::npos);
    EXPECT_NE(csv.find("counter,n,value,3\n"), std::string::npos);
    EXPECT_NE(csv.find("gauge,g,value,0.5\n"), std::string::npos);
    EXPECT_NE(csv.find("histogram,h,count,1\n"), std::string::npos);
    EXPECT_NE(csv.find("series,s,0,7\n"), std::string::npos);
    EXPECT_NE(csv.find("series,s,1,8\n"), std::string::npos);
}

TEST_F(ObsTest, CsvEscapesCommasAndQuotesInNames) {
    // RFC-4180 quoting keeps the kind,name,field,value contract intact for
    // arbitrary metric names: commas wrap the field in quotes, embedded
    // quotes double.
    obs::set_enabled(true);
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("weird,name").add(1);
    registry.gauge("say \"hi\"").set(2.0);
    registry.gauge("plain").set(3.0);

    const std::string csv = obs::metrics_csv(registry.snapshot());
    EXPECT_NE(csv.find("counter,\"weird,name\",value,1\n"), std::string::npos) << csv;
    EXPECT_NE(csv.find("gauge,\"say \"\"hi\"\"\",value,2\n"), std::string::npos) << csv;
    EXPECT_NE(csv.find("gauge,plain,value,3\n"), std::string::npos) << csv;

    // Every data row still splits into exactly four fields outside quotes.
    std::istringstream lines(csv);
    std::string line;
    while (std::getline(lines, line)) {
        int commas = 0;
        bool quoted = false;
        for (char c : line) {
            if (c == '"') quoted = !quoted;
            else if (c == ',' && !quoted) ++commas;
        }
        EXPECT_EQ(commas, 3) << line;
    }
}

TEST_F(ObsTest, ValidateTraceAcceptsRealTreeAndRejectsCorruption) {
    obs::set_enabled(true);
    {
        obs::ScopedTimer outer("outer");
        obs::ScopedTimer inner("inner");
    }
    const auto doc = obs::trace_document(*obs::Tracer::global().snapshot());
    EXPECT_EQ(obs::validate_trace(doc), "");
    EXPECT_EQ(obs::validate_trace(obs::json::Value::parse(doc.dump())), "");

    auto bad_schema = doc;
    bad_schema.set("schema", obs::json::Value::string("pnc-trace/9"));
    EXPECT_NE(obs::validate_trace(bad_schema), "");

    auto no_root = doc;
    no_root.set("root", obs::json::Value::null());
    EXPECT_NE(obs::validate_trace(no_root), "");

    // A node with negative seconds (or a NaN that serialized as null) fails.
    obs::json::Value node = obs::json::Value::object();
    node.set("name", obs::json::Value::string("root"));
    node.set("count", obs::json::Value::number(0));
    node.set("seconds", obs::json::Value::number(-1.0));
    node.set("children", obs::json::Value::array());
    auto negative = doc;
    negative.set("root", std::move(node));
    EXPECT_NE(obs::validate_trace(negative), "");
}

TEST_F(ObsTest, TraceDocumentMirrorsTheTree) {
    obs::set_enabled(true);
    {
        obs::ScopedTimer outer("outer");
        obs::ScopedTimer inner("inner");
    }
    const auto root = obs::Tracer::global().snapshot();
    const auto doc = obs::trace_document(*root);
    EXPECT_EQ(doc.find("schema")->as_string(), "pnc-trace/1");
    const auto* json_root = doc.find("root");
    ASSERT_NE(json_root, nullptr);
    EXPECT_EQ(json_root->find("name")->as_string(), "root");
    ASSERT_EQ(json_root->find("children")->items().size(), 1u);
    const auto& outer = json_root->find("children")->items()[0];
    EXPECT_EQ(outer.find("name")->as_string(), "outer");
    EXPECT_DOUBLE_EQ(outer.find("count")->as_number(), 1.0);
    // Round-trip the document too: dump -> parse -> same shape.
    const auto parsed = obs::json::Value::parse(doc.dump());
    EXPECT_EQ(parsed.find("root")->find("children")->items()[0].find("name")->as_string(),
              "outer");
}

// ----------------------------------------------------- the core invariant

namespace {

// Tiny surrogates (same recipe as test_mc_determinism) so the bit-identity
// test trains a real pNN through the real pipeline in well under a second.
const surrogate::SurrogateModel& obs_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 300;
        options.sweep_points = 17;
        const auto dataset =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 400;
        train.mlp.patience = 100;
        return surrogate::SurrogateModel::train(dataset, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

pnn::Pnn make_obs_net(std::uint64_t seed = 61) {
    math::Rng rng(seed);
    return pnn::Pnn({2, 3, 2}, &obs_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                    &obs_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                    surrogate::DesignSpace::table1(), rng);
}

data::SplitDataset obs_blob_split() {
    math::Rng rng(62);
    data::Dataset ds;
    ds.name = "blobs";
    ds.n_classes = 2;
    ds.features = math::Matrix(60, 2);
    for (int i = 0; i < 60; ++i) {
        const int label = i % 2;
        ds.labels.push_back(label);
        ds.features(i, 0) = rng.normal(label ? 0.8 : 0.2, 0.08);
        ds.features(i, 1) = rng.normal(label ? 0.2 : 0.8, 0.08);
    }
    return data::split_and_normalize(ds, 9);
}

struct TrainOutcome {
    pnn::TrainResult result;
    std::vector<math::Matrix> params;
    pnn::EvalResult eval;
};

TrainOutcome run_seeded_workload() {
    const auto split = obs_blob_split();
    auto net = make_obs_net();
    pnn::TrainOptions options;
    options.max_epochs = 12;
    options.patience = 12;
    options.epsilon = 0.1;
    options.n_mc_train = 4;
    options.n_mc_val = 2;
    options.seed = 63;
    const auto result = pnn::train_pnn(net, split, options);
    pnn::EvalOptions eval_options;
    eval_options.epsilon = 0.1;
    eval_options.n_mc = 16;
    const auto eval = pnn::evaluate_pnn(net, split.x_test, split.y_test, eval_options);
    return {result, net.snapshot(), eval};
}

}  // namespace

TEST_F(ObsTest, TelemetryDoesNotChangeTrainingBitForBit) {
    // The ISSUE acceptance criterion: train_pnn / evaluate_pnn with
    // observability enabled are bit-identical to a disabled run. Telemetry
    // only reads clocks and already-computed values, and the extra val
    // accuracy probe uses the RNG-free nominal predict, so the Rng streams
    // are untouched.
    obs::set_enabled(false);
    const auto plain = run_seeded_workload();

    obs::set_enabled(true);
    const auto observed = run_seeded_workload();

    // Telemetry actually fired during the observed run...
    const auto snapshot = obs::MetricsRegistry::global().snapshot();
    EXPECT_FALSE(snapshot.empty());
    bool has_epoch_series = false;
    for (const auto& [name, values] : snapshot.series)
        if (name == "train.epoch_train_loss") {
            has_epoch_series = true;
            EXPECT_EQ(values.size(),
                      static_cast<std::size_t>(observed.result.epochs_run));
        }
    EXPECT_TRUE(has_epoch_series);

    // ...and did not perturb a single bit of the numerical results.
    EXPECT_EQ(plain.result.best_val_loss, observed.result.best_val_loss);
    EXPECT_EQ(plain.result.final_train_loss, observed.result.final_train_loss);
    EXPECT_EQ(plain.result.best_epoch, observed.result.best_epoch);
    EXPECT_EQ(plain.result.epochs_run, observed.result.epochs_run);
    ASSERT_EQ(plain.params.size(), observed.params.size());
    for (std::size_t p = 0; p < plain.params.size(); ++p) {
        ASSERT_EQ(plain.params[p].size(), observed.params[p].size());
        for (std::size_t i = 0; i < plain.params[p].size(); ++i)
            ASSERT_EQ(plain.params[p][i], observed.params[p][i])
                << "parameter " << p << " element " << i;
    }
    EXPECT_EQ(plain.eval.mean_accuracy, observed.eval.mean_accuracy);
    EXPECT_EQ(plain.eval.std_accuracy, observed.eval.std_accuracy);
    ASSERT_EQ(plain.eval.per_sample_accuracy.size(), observed.eval.per_sample_accuracy.size());
    for (std::size_t s = 0; s < plain.eval.per_sample_accuracy.size(); ++s)
        EXPECT_EQ(plain.eval.per_sample_accuracy[s], observed.eval.per_sample_accuracy[s]);
}

TEST_F(ObsTest, TelemetryDoesNotChangeYieldOrCorners) {
    const auto split = obs_blob_split();
    const auto net = make_obs_net();

    obs::set_enabled(false);
    const auto plain_yield = pnn::estimate_yield(net, split.x_test, split.y_test, 0.6, 0.1, 16, 91);
    const double plain_corner =
        pnn::worst_corner_accuracy(net, split.x_test, split.y_test, 0.1, 12, 92);

    obs::set_enabled(true);
    const auto obs_yield = pnn::estimate_yield(net, split.x_test, split.y_test, 0.6, 0.1, 16, 91);
    const double obs_corner =
        pnn::worst_corner_accuracy(net, split.x_test, split.y_test, 0.1, 12, 92);

    EXPECT_EQ(plain_yield.yield, obs_yield.yield);
    EXPECT_EQ(plain_yield.worst_accuracy, obs_yield.worst_accuracy);
    EXPECT_EQ(plain_yield.median_accuracy, obs_yield.median_accuracy);
    EXPECT_EQ(plain_corner, obs_corner);
    EXPECT_EQ(obs::MetricsRegistry::global().counter("mc.yield.samples_total").value(), 16u);
    EXPECT_EQ(obs::MetricsRegistry::global().counter("mc.corner.samples_total").value(), 12u);
}
