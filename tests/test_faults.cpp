// Fault-injection suite: defect materialization semantics (open / short /
// stuck-at / dead rails / drift), the crossbar-level fault primitive against
// the MNA ground truth, campaign determinism at 1 / 2 / 8 threads, the
// zero-fault-rate == baseline bit-for-bit contract, and the
// pnc-fault-report/1 schema validator.
#include <gtest/gtest.h>

#include <vector>

#include "circuit/crossbar.hpp"
#include "circuit/dc_solver.hpp"
#include "data/dataset.hpp"
#include "faults/campaign.hpp"
#include "faults/fault_report.hpp"
#include "pnn/certification.hpp"
#include "pnn/robustness.hpp"
#include "pnn/training.hpp"
#include "runtime/thread_pool.hpp"
#include "surrogate/dataset_builder.hpp"

using namespace pnc;
using math::Matrix;

namespace {

const surrogate::SurrogateModel& fault_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 300;
        options.sweep_points = 17;
        const auto dataset =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 400;
        train.mlp.patience = 100;
        return surrogate::SurrogateModel::train(dataset, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

pnn::Pnn make_net(std::uint64_t seed = 61) {
    math::Rng rng(seed);
    return pnn::Pnn({2, 3, 2}, &fault_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                    &fault_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                    surrogate::DesignSpace::table1(), rng);
}

data::SplitDataset blob_split() {
    math::Rng rng(62);
    data::Dataset ds;
    ds.name = "blobs";
    ds.n_classes = 2;
    ds.features = Matrix(60, 2);
    for (int i = 0; i < 60; ++i) {
        const int label = i % 2;
        ds.labels.push_back(label);
        ds.features(i, 0) = rng.normal(label ? 0.8 : 0.2, 0.08);
        ds.features(i, 1) = rng.normal(label ? 0.2 : 0.8, 0.08);
    }
    return data::split_and_normalize(ds, 9);
}

/// Run fn under each thread count and return one result per count.
template <typename Fn>
auto sweep_threads(Fn&& fn) {
    std::vector<decltype(fn())> results;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        runtime::set_global_threads(threads);
        results.push_back(fn());
    }
    runtime::set_global_threads(runtime::ThreadPool::default_thread_count());
    return results;
}

const faults::NetworkShape kTinyShape = {{2, 3, true}, {3, 2, false}};

}  // namespace

// ---- overlay / materialization semantics -----------------------------------

TEST(FaultMaterialize, OpenShortStuckAtRewriteTheConductance) {
    const faults::FaultDomain domain{100.0, 1.0};
    const std::vector<faults::Fault> set = {
        {faults::FaultKind::kStuckOpen, faults::FaultSite::kThetaIn, 0, 1, 2, 0.0},
        {faults::FaultKind::kStuckShort, faults::FaultSite::kThetaBias, 0, 0, 0, 0.0},
        {faults::FaultKind::kStuckAtConductance, faults::FaultSite::kThetaDrain, 1, 0, 1, 7.5},
    };
    const auto overlay = faults::materialize(kTinyShape, set, domain);
    ASSERT_EQ(overlay.size(), 2u);
    EXPECT_TRUE(overlay[0].has_theta_faults);
    EXPECT_TRUE(overlay[1].has_theta_faults);

    const Matrix g_in(2, 3, 10.0);
    const Matrix faulted_in = overlay[0].theta_in.apply(g_in);
    EXPECT_EQ(faulted_in(1, 2), 0.0);     // open: the resistor vanishes
    EXPECT_EQ(faulted_in(0, 0), 10.0);    // untouched cells unchanged
    const Matrix g_bias(1, 3, 10.0);
    EXPECT_EQ(overlay[0].theta_bias.apply(g_bias)(0, 0), domain.g_max);  // short
    const Matrix g_drain(1, 2, 10.0);
    EXPECT_EQ(overlay[1].theta_drain.apply(g_drain)(0, 1), 7.5);  // stuck-at
}

TEST(FaultMaterialize, DeadNegationPinsTheNegatedRail) {
    const faults::FaultDomain domain{100.0, 1.0};
    const std::vector<faults::Fault> set = {
        {faults::FaultKind::kDeadNonlinear, faults::FaultSite::kNegation, 0, 0, 1, domain.vdd},
        {faults::FaultKind::kDeadNonlinear, faults::FaultSite::kActivation, 0, 0, 2, 0.0},
    };
    const auto overlay = faults::materialize(kTinyShape, set, domain);
    EXPECT_TRUE(overlay[0].has_neg_faults);
    EXPECT_TRUE(overlay[0].has_act_faults);
    EXPECT_FALSE(overlay[0].has_theta_faults);
    EXPECT_EQ(overlay[0].neg_alive(0, 1), 0.0);
    // Eq. 3 sign convention: physical rail vdd reads as -vdd model-side.
    EXPECT_EQ(overlay[0].neg_rail(0, 1), -domain.vdd);
    EXPECT_EQ(overlay[0].neg_alive(0, 0), 1.0);
    EXPECT_EQ(overlay[0].act_alive(0, 2), 0.0);
    EXPECT_EQ(overlay[0].act_rail(0, 2), 0.0);
}

TEST(FaultMaterialize, GlobalDriftScalesEveryKeep) {
    const std::vector<faults::Fault> set = {
        {faults::FaultKind::kDrift, faults::FaultSite::kGlobal, 0, 0, 0, 1.25},
    };
    const auto overlay = faults::materialize(kTinyShape, set, {});
    for (const auto& layer : overlay) {
        EXPECT_TRUE(layer.has_theta_faults);
        for (std::size_t i = 0; i < layer.theta_in.keep.size(); ++i)
            EXPECT_EQ(layer.theta_in.keep[i], 1.25);
        for (std::size_t i = 0; i < layer.theta_bias.keep.size(); ++i)
            EXPECT_EQ(layer.theta_bias.keep[i], 1.25);
    }
}

TEST(FaultMaterialize, RejectsOutOfRangeAndIllTypedSites) {
    EXPECT_THROW(faults::materialize(
                     kTinyShape, {{faults::FaultKind::kStuckOpen, faults::FaultSite::kThetaIn,
                                   0, 5, 0, 0.0}}),
                 std::invalid_argument);
    EXPECT_THROW(faults::materialize(
                     kTinyShape, {{faults::FaultKind::kStuckOpen, faults::FaultSite::kThetaIn,
                                   7, 0, 0, 0.0}}),
                 std::invalid_argument);
    // The readout layer prints no ptanh circuits.
    EXPECT_THROW(faults::materialize(kTinyShape, {{faults::FaultKind::kDeadNonlinear,
                                                   faults::FaultSite::kActivation, 1, 0, 0,
                                                   0.0}}),
                 std::invalid_argument);
    EXPECT_THROW(faults::materialize(kTinyShape, {{faults::FaultKind::kStuckOpen,
                                                   faults::FaultSite::kActivation, 0, 0, 0,
                                                   0.0}}),
                 std::invalid_argument);
}

TEST(FaultModels, ZeroRateDrawsNoRandomness) {
    // The determinism contract: a configuration that cannot fault must not
    // advance the stream, or the zero-rate campaign would diverge from the
    // baseline sweep.
    const faults::FaultDomain domain;
    for (const char* name : {"stuck_open", "stuck_short", "stuck_at", "dead_nonlinear",
                             "drift", "mixed"}) {
        const auto model = faults::make_fault_model(name, 0.0, domain);
        math::Rng rng(123);
        std::vector<faults::Fault> out;
        model->sample(kTinyShape, domain, rng, out);
        EXPECT_TRUE(out.empty()) << name;
        math::Rng untouched(123);
        EXPECT_EQ(rng.uniform(), untouched.uniform()) << name << " consumed randomness";
    }
}

TEST(FaultModels, RateOneFaultsEverySite) {
    const faults::FaultDomain domain;
    const auto model = faults::make_fault_model("stuck_open", 1.0, domain);
    math::Rng rng(5);
    std::vector<faults::Fault> out;
    model->sample(kTinyShape, domain, rng, out);
    // (2*3 + 3 + 3) + (3*2 + 2 + 2) resistor sites.
    EXPECT_EQ(out.size(), 22u);
}

TEST(FaultModels, UnknownNameThrows) {
    EXPECT_THROW(faults::make_fault_model("stuck_openn", 0.1), std::invalid_argument);
    EXPECT_THROW(faults::StuckOpen(1.5), std::invalid_argument);
    EXPECT_THROW(faults::DriftFault(1.0), std::invalid_argument);
}

TEST(FaultEnumeration, SingleFaultSweepCoversEverySiteOnce) {
    const auto opens =
        faults::enumerate_single_faults(kTinyShape, faults::FaultKind::kStuckOpen);
    EXPECT_EQ(opens.size(), 22u);
    for (const auto& set : opens) EXPECT_EQ(set.size(), 1u);
    // Dead sweep: (3 act + 2 neg) in layer 0, (0 act + 3 neg) in the
    // readout, each paired with both rails.
    const auto deads =
        faults::enumerate_single_faults(kTinyShape, faults::FaultKind::kDeadNonlinear);
    EXPECT_EQ(deads.size(), 16u);
    EXPECT_THROW(faults::enumerate_single_faults(kTinyShape, faults::FaultKind::kDrift),
                 std::invalid_argument);
}

// ---- crossbar-level fault primitive vs the analog ground truth -------------

TEST(CrossbarFaults, FaultedClosedFormMatchesFaultedNetlistSolve) {
    // The same defect applied at the conductance level and in the physical
    // netlist must agree: Eq. 1 on the faulted column vs the MNA solve of
    // its faulted netlist.
    circuit::CrossbarColumn column;
    column.input_conductances = {2e-6, 4e-6, 5e-6};
    column.bias_conductance = 3e-6;
    column.drain_conductance = 2e-6;
    apply_conductance_fault(column, 0, circuit::ConductanceFaultKind::kOpen);
    apply_conductance_fault(column, 1, circuit::ConductanceFaultKind::kShort, 100e-6);
    apply_conductance_fault(column, 3, circuit::ConductanceFaultKind::kStuckAt, 7e-6);
    apply_conductance_fault(column, 4, circuit::ConductanceFaultKind::kDrift, 1.3);
    EXPECT_EQ(column.input_conductances[0], 0.0);
    EXPECT_EQ(column.input_conductances[1], 100e-6);
    EXPECT_EQ(column.bias_conductance, 7e-6);
    EXPECT_NEAR(column.drain_conductance, 2.6e-6, 1e-18);

    const std::vector<double> inputs = {0.9, 0.4, 0.1};
    auto net = circuit::build_crossbar_netlist(column);
    for (std::size_t i = 0; i < inputs.size(); ++i)
        net.set_source_voltage(net.find_node("in" + std::to_string(i)), inputs[i]);
    const auto sol = circuit::DcSolver().solve(net);
    EXPECT_NEAR(sol.voltages[net.find_node("z")], column.output(inputs), 1e-7);
}

TEST(CrossbarFaults, RejectsBadIndexAndNegativeResult) {
    circuit::CrossbarColumn column;
    column.input_conductances = {2e-6};
    EXPECT_THROW(
        apply_conductance_fault(column, 3, circuit::ConductanceFaultKind::kOpen),
        std::invalid_argument);
    EXPECT_THROW(apply_conductance_fault(column, 0, circuit::ConductanceFaultKind::kStuckAt,
                                         -1e-6),
                 std::invalid_argument);
}

// ---- forward-pass semantics -------------------------------------------------

TEST(FaultForward, DeadActivationPinsTheNeuronOutput) {
    const auto net = make_net();
    const auto split = blob_split();
    const auto shape = net.fault_shape();
    ASSERT_EQ(shape.size(), 2u);
    EXPECT_TRUE(shape[0].has_activation);
    EXPECT_FALSE(shape[1].has_activation);

    // Kill hidden ptanh #1 at rail 0: layer-0 output column 1 must be
    // exactly 0 for every row, which the readout then mixes.
    const std::vector<faults::Fault> set = {
        {faults::FaultKind::kDeadNonlinear, faults::FaultSite::kActivation, 0, 0, 1, 0.0}};
    const auto overlay = faults::materialize(shape, set);
    const Matrix hidden =
        net.layer(0).forward(ad::constant(split.x_test), nullptr, true, &overlay[0]).value();
    for (std::size_t r = 0; r < hidden.rows(); ++r) EXPECT_EQ(hidden(r, 1), 0.0);

    const Matrix nominal = net.predict(split.x_test);
    const Matrix faulted = net.predict(split.x_test, nullptr, &overlay);
    bool any_difference = false;
    for (std::size_t i = 0; i < nominal.size(); ++i)
        any_difference |= nominal[i] != faulted[i];
    EXPECT_TRUE(any_difference);
}

TEST(FaultForward, EmptyOverlayIsBitIdenticalToNominal) {
    const auto net = make_net();
    const auto split = blob_split();
    const auto overlay = faults::materialize(net.fault_shape(), {});
    const Matrix nominal = net.predict(split.x_test);
    const Matrix with_identity = net.predict(split.x_test, nullptr, &overlay);
    ASSERT_EQ(nominal.size(), with_identity.size());
    // The has_* flags are all false, so the fault path is never entered.
    for (std::size_t i = 0; i < nominal.size(); ++i)
        EXPECT_EQ(nominal[i], with_identity[i]);
}

// ---- campaign driver --------------------------------------------------------

TEST(FaultCampaign, BitIdenticalAcrossThreadCounts) {
    const auto net = make_net();
    const auto split = blob_split();
    const auto model = faults::make_fault_model("mixed", 0.03);
    const auto results = sweep_threads([&] {
        return pnn::estimate_yield_under_faults(net, split.x_test, split.y_test, 0.6, 0.1,
                                                *model, 32, 91);
    });
    for (std::size_t t = 1; t < results.size(); ++t) {
        EXPECT_EQ(results[0].yield.yield, results[t].yield.yield);
        EXPECT_EQ(results[0].yield.worst_accuracy, results[t].yield.worst_accuracy);
        EXPECT_EQ(results[0].yield.p5_accuracy, results[t].yield.p5_accuracy);
        EXPECT_EQ(results[0].yield.median_accuracy, results[t].yield.median_accuracy);
        EXPECT_EQ(results[0].mean_accuracy, results[t].mean_accuracy);
        EXPECT_EQ(results[0].mean_fault_count, results[t].mean_fault_count);
        ASSERT_EQ(results[0].campaign.scores.size(), results[t].campaign.scores.size());
        for (std::size_t s = 0; s < results[0].campaign.scores.size(); ++s) {
            EXPECT_EQ(results[0].campaign.scores[s], results[t].campaign.scores[s])
                << "sample " << s;
            EXPECT_EQ(results[0].campaign.fault_counts[s], results[t].campaign.fault_counts[s]);
            EXPECT_EQ(results[0].campaign.kind_masks[s], results[t].campaign.kind_masks[s]);
        }
    }
}

TEST(FaultCampaign, ZeroRateReproducesBaselineYieldBitForBit) {
    // The acceptance criterion: a model that cannot fault must leave every
    // per-sample accuracy on estimate_yield's exact code path.
    const auto net = make_net();
    const auto split = blob_split();
    const double spec = 0.6, eps = 0.1;
    const int n_mc = 32;
    const std::uint64_t seed = 91;
    const auto baseline =
        pnn::estimate_yield(net, split.x_test, split.y_test, spec, eps, n_mc, seed);
    for (const char* name : {"stuck_open", "dead_nonlinear", "mixed", "drift"}) {
        const auto model = faults::make_fault_model(name, 0.0);
        const auto faulted = pnn::estimate_yield_under_faults(
            net, split.x_test, split.y_test, spec, eps, *model, n_mc, seed);
        EXPECT_EQ(faulted.yield.yield, baseline.yield) << name;
        EXPECT_EQ(faulted.yield.worst_accuracy, baseline.worst_accuracy) << name;
        EXPECT_EQ(faulted.yield.p5_accuracy, baseline.p5_accuracy) << name;
        EXPECT_EQ(faulted.yield.median_accuracy, baseline.median_accuracy) << name;
        EXPECT_EQ(faulted.mean_fault_count, 0.0) << name;
    }
}

TEST(FaultCampaign, EnumeratedSweepScoresEverySingleFault) {
    const auto net = make_net();
    const auto split = blob_split();
    const auto shape = net.fault_shape();
    const auto sets = faults::enumerate_single_faults(shape, faults::FaultKind::kStuckOpen);
    const auto result = faults::run_fault_campaign(
        sets, shape,
        [&](const faults::NetworkFaultOverlay* overlay, math::Rng&) {
            return ad::accuracy(net.predict(split.x_test, nullptr, overlay), split.y_test);
        });
    ASSERT_EQ(result.scores.size(), sets.size());
    for (std::size_t s = 0; s < result.scores.size(); ++s) {
        EXPECT_EQ(result.fault_counts[s], 1u);
        EXPECT_GE(result.scores[s], 0.0);
        EXPECT_LE(result.scores[s], 1.0);
    }
    EXPECT_EQ(result.mean_fault_count, 1.0);
}

TEST(FaultCampaign, HighRateInjectsFaultsAndDegradesOrChanges) {
    const auto net = make_net();
    const auto split = blob_split();
    const auto model = faults::make_fault_model("stuck_open", 0.5);
    const auto result = pnn::estimate_yield_under_faults(net, split.x_test, split.y_test,
                                                         0.6, 0.0, *model, 16, 7);
    EXPECT_GT(result.mean_fault_count, 1.0);
    // At eps = 0 the only variability is the fault sets themselves.
    bool any_faulted_sample = false;
    for (auto count : result.campaign.fault_counts) any_faulted_sample |= count > 0;
    EXPECT_TRUE(any_faulted_sample);
}

// ---- fault-aware certification ---------------------------------------------

TEST(FaultCertify, FaultedBoundsStaysSoundAndDeadRailIsTight) {
    const auto net = make_net();
    const std::vector<faults::Fault> set = {
        {faults::FaultKind::kDeadNonlinear, faults::FaultSite::kActivation, 0, 0, 0, 1.0},
        {faults::FaultKind::kStuckOpen, faults::FaultSite::kThetaIn, 1, 0, 0, 0.0}};
    const auto overlay = faults::materialize(net.fault_shape(), set);
    pnn::CertificationOptions options;
    options.epsilon = 0.05;
    const std::vector<double> input = {0.4, 0.7};
    const auto bounds = pnn::certified_output_bounds(net, input, options, &overlay);

    // The faulted forward at nominal variation must land inside the bounds.
    const Matrix out = net.predict(Matrix::row(input), nullptr, &overlay);
    ASSERT_EQ(bounds.size(), out.cols());
    for (std::size_t j = 0; j < bounds.size(); ++j) {
        EXPECT_GE(out(0, j), bounds[j].lo - 1e-9);
        EXPECT_LE(out(0, j), bounds[j].hi + 1e-9);
    }
}

TEST(FaultCertify, CertifiedAccuracyLowerBoundsTheFaultedCopy) {
    const auto net = make_net();
    const auto split = blob_split();
    const std::vector<faults::Fault> set = {
        {faults::FaultKind::kDeadNonlinear, faults::FaultSite::kNegation, 0, 0, 1, 0.0}};
    const auto overlay = faults::materialize(net.fault_shape(), set);
    pnn::CertificationOptions options;
    options.epsilon = 0.02;
    const auto cert = pnn::certify(net, split.x_test, split.y_test, options, overlay);
    const double faulted_accuracy =
        ad::accuracy(net.predict(split.x_test, nullptr, &overlay), split.y_test);
    EXPECT_LE(cert.certified_accuracy, faulted_accuracy + 1e-12);
    EXPECT_GE(cert.certified_fraction, cert.certified_accuracy);
}

// ---- report schema ----------------------------------------------------------

TEST(FaultReport, RoundTripValidates) {
    faults::FaultReport report;
    report.tool = "test";
    faults::FaultReportEntry entry;
    entry.dataset = "blobs";
    entry.model = "stuck_open";
    entry.fault_rate = 0.01;
    entry.samples = 32;
    entry.accuracy_spec = 0.6;
    entry.baseline_accuracy = 0.9;
    entry.yield = 0.8;
    entry.mean_accuracy = 0.7;
    entry.p5_accuracy = 0.5;
    entry.median_accuracy = 0.72;
    entry.worst_accuracy = 0.4;
    entry.mean_fault_count = 1.5;
    report.campaigns.push_back(entry);
    EXPECT_EQ(faults::validate_fault_report(faults::fault_report_document(report)), "");
}

TEST(FaultReport, ValidatorRejectsBrokenDocuments) {
    faults::FaultReport report;
    report.tool = "test";
    EXPECT_NE(faults::validate_fault_report(faults::fault_report_document(report)), "")
        << "empty campaign list must not validate";

    faults::FaultReportEntry entry;
    entry.dataset = "blobs";
    entry.model = "stuck_open";
    entry.samples = 0;  // invalid
    entry.yield = 0.5;
    report.campaigns.push_back(entry);
    EXPECT_NE(faults::validate_fault_report(faults::fault_report_document(report)), "");

    obs::json::Value not_a_report = obs::json::Value::object();
    not_a_report.set("schema", obs::json::Value::string("something-else/9"));
    EXPECT_NE(faults::validate_fault_report(not_a_report), "");
}
