// Determinism harness for the async serving runtime (src/serve).
//
// The serving layer's claim mirrors the compiled engine's: batching is an
// implementation detail that must not change a single bit. This suite
// proves it differentially — every dataset, 1 and 4 threads, arbitrary
// request interleavings — and locks in the surrounding contracts: replay
// determinism (batch boundaries are a pure function of the request
// sequence), LRU/hot-swap semantics of the model registry, the typed
// backpressure/shed policy, and the pnc-requests/1 round trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "data/registry.hpp"
#include "pnn/training.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/pipeline.hpp"
#include "serve/registry.hpp"
#include "serve/request_log.hpp"
#include "surrogate/dataset_builder.hpp"
#include "surrogate/design_space.hpp"

using namespace pnc;

namespace {

const surrogate::SurrogateModel& serve_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 250;
        options.sweep_points = 17;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 300;
        train.mlp.patience = 80;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

/// Untrained random net — the differential comparison only needs the
/// forward pass, not a good classifier.
pnn::Pnn make_net(const data::SplitDataset& split, std::uint64_t seed) {
    math::Rng rng(seed);
    return pnn::Pnn({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                    &serve_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                    &serve_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                    surrogate::DesignSpace::table1(), rng);
}

std::vector<double> row_of(const math::Matrix& x, std::size_t r) {
    std::vector<double> row(x.cols());
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] = x(r, c);
    return row;
}

/// RAII thread-count override (the global pool is process-wide state).
class ThreadGuard {
public:
    explicit ThreadGuard(std::size_t n) { runtime::set_global_threads(n); }
    ~ThreadGuard() {
        runtime::set_global_threads(runtime::ThreadPool::default_thread_count());
    }
};

int reference_argmax(const math::Matrix& out, std::size_t r) {
    int best = 0;
    for (std::size_t c = 1; c < out.cols(); ++c)
        if (out(r, c) > out(r, static_cast<std::size_t>(best))) best = static_cast<int>(c);
    return best;
}

}  // namespace

// ---- the headline claim: serving == reference, bit for bit ------------------

class ServeDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(ServeDifferential, ServedPredictionsMatchReferenceBitwise) {
    const std::string name = GetParam();
    const auto split = data::split_and_normalize(data::make_dataset(name), 66);
    const auto net = make_net(split, 91);
    const math::Matrix reference = net.predict(split.x_test);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadGuard guard(threads);
        // Prime-ish batch limit so the test rows split into ragged
        // micro-batches that never align with the engine's own chunking.
        serve::ModelRegistry registry;
        registry.install(name, net);
        serve::ServeOptions options;
        options.max_batch = 7;
        options.deterministic = true;
        serve::ServePipeline pipeline(registry, options);

        std::vector<std::future<serve::Prediction>> futures;
        for (std::size_t r = 0; r < split.x_test.rows(); ++r)
            futures.push_back(pipeline.submit_or_wait(name, row_of(split.x_test, r)));
        pipeline.drain();

        for (std::size_t r = 0; r < futures.size(); ++r) {
            const serve::Prediction p = futures[r].get();
            ASSERT_EQ(p.outputs.size(), reference.cols());
            for (std::size_t c = 0; c < reference.cols(); ++c)
                ASSERT_DOUBLE_EQ(p.outputs[c], reference(r, c))
                    << name << " threads=" << threads << " row " << r << " col " << c;
            EXPECT_EQ(p.predicted_class, reference_argmax(reference, r))
                << name << " threads=" << threads << " row " << r;
        }
    }
}

namespace {
std::vector<std::string> all_dataset_names() {
    std::vector<std::string> names;
    for (const auto& spec : data::benchmark_specs()) names.push_back(spec.name);
    return names;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(AllDatasets, ServeDifferential,
                         ::testing::ValuesIn(all_dataset_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                             return info.param;
                         });

// ---- interleaving invariance -------------------------------------------------

TEST(ServeInterleaving, BatchCompositionCannotChangeAnyBit) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
    const auto net_a = make_net(split, 91);
    const auto net_b = make_net(split, 137);
    const math::Matrix ref_a = net_a.predict(split.x_test);
    const math::Matrix ref_b = net_b.predict(split.x_test);

    // Two models, requests interleaved A,B,A,B,... at several batch limits:
    // every served row must still equal its own model's reference row.
    for (const std::size_t max_batch : {std::size_t{1}, std::size_t{3}, std::size_t{32}}) {
        serve::ModelRegistry registry;
        registry.install("a", net_a);
        registry.install("b", net_b);
        serve::ServeOptions options;
        options.max_batch = max_batch;
        options.deterministic = true;
        serve::ServePipeline pipeline(registry, options);

        std::vector<std::future<serve::Prediction>> futures;
        for (std::size_t r = 0; r < split.x_test.rows(); ++r)
            futures.push_back(pipeline.submit_or_wait(r % 2 == 0 ? "a" : "b",
                                                      row_of(split.x_test, r)));
        pipeline.drain();

        for (std::size_t r = 0; r < futures.size(); ++r) {
            const serve::Prediction p = futures[r].get();
            const math::Matrix& reference = r % 2 == 0 ? ref_a : ref_b;
            for (std::size_t c = 0; c < reference.cols(); ++c)
                ASSERT_DOUBLE_EQ(p.outputs[c], reference(r, c))
                    << "max_batch=" << max_batch << " row " << r << " col " << c;
        }
    }
}

TEST(ServeInterleaving, ReplayBatchBoundariesAreDeterministic) {
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), 66);
    const auto net = make_net(split, 91);

    // Same request sequence, two runs, both thread counts: identical
    // micro-batch assignment (seq and occupancy), not just identical bits.
    std::vector<std::pair<std::uint64_t, std::size_t>> first;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadGuard guard(threads);
        for (int repeat = 0; repeat < 2; ++repeat) {
            serve::ModelRegistry registry;
            registry.install("seeds", net);
            serve::ServeOptions options;
            options.max_batch = 5;
            options.deterministic = true;
            serve::ServePipeline pipeline(registry, options);

            std::vector<std::future<serve::Prediction>> futures;
            for (std::size_t r = 0; r < split.x_test.rows(); ++r)
                futures.push_back(pipeline.submit_or_wait("seeds", row_of(split.x_test, r)));
            pipeline.drain();

            std::vector<std::pair<std::uint64_t, std::size_t>> batches;
            for (auto& f : futures) {
                const serve::Prediction p = f.get();
                batches.emplace_back(p.batch_seq, p.batch_rows);
            }
            if (first.empty()) {
                first = batches;
                // A full submission burst must pack full batches: every
                // micro-batch except possibly the last is at max_batch.
                for (std::size_t i = 0; i + options.max_batch < batches.size(); ++i)
                    EXPECT_EQ(batches[i].second, options.max_batch) << "row " << i;
            } else {
                EXPECT_EQ(batches, first)
                    << "threads=" << threads << " repeat=" << repeat;
            }
        }
    }
}

// ---- model registry: LRU, content hash, hot-swap, eviction -------------------

TEST(ModelRegistry, LruEvictionAndContentHash) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
    const auto net_a = make_net(split, 1);
    const auto net_b = make_net(split, 2);
    const auto net_c = make_net(split, 3);
    EXPECT_NE(serve::ModelRegistry::content_hash(net_a),
              serve::ModelRegistry::content_hash(net_b));
    EXPECT_EQ(serve::ModelRegistry::content_hash(net_a),
              serve::ModelRegistry::content_hash(net_a));

    serve::ModelRegistry registry(2);
    const auto a = registry.install("a", net_a);
    registry.install("b", net_b);
    // Same content: the registry must hand back the already-compiled plan.
    EXPECT_EQ(registry.install("a", net_a).get(), a.get());

    // "b" is now least recently used; installing "c" evicts it.
    registry.install("c", net_c);
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_EQ(registry.try_get("b"), nullptr);
    EXPECT_THROW(registry.get("b"), serve::ServeError);
    try {
        registry.get("b");
    } catch (const serve::ServeError& e) {
        EXPECT_EQ(e.code(), serve::ServeErrorCode::kUnknownModel);
        EXPECT_STREQ(serve::serve_error_name(e.code()), "unknown_model");
    }
    EXPECT_EQ(registry.names(), (std::vector<std::string>{"c", "a"}));

    // Hot-swap: same name, different parameters, new plan — the pointer
    // handed out before the swap stays valid and keeps its old hash.
    const auto swapped = registry.install("a", net_b);
    EXPECT_NE(swapped.get(), a.get());
    EXPECT_NE(swapped->content_hash, a->content_hash);
    EXPECT_EQ(a->content_hash, serve::ModelRegistry::content_hash(net_a));
}

TEST(ModelRegistry, InFlightRequestsSurviveEvictionAndHotSwap) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
    const auto net_old = make_net(split, 91);
    const auto net_new = make_net(split, 92);
    const math::Matrix ref_old = net_old.predict(split.x_test);
    const math::Matrix ref_new = net_new.predict(split.x_test);
    const std::uint64_t hash_old = serve::ModelRegistry::content_hash(net_old);
    const std::uint64_t hash_new = serve::ModelRegistry::content_hash(net_new);

    serve::ModelRegistry registry;
    registry.install("m", net_old);
    serve::ServeOptions options;
    options.max_batch = 8;
    options.deterministic = true;
    serve::ServePipeline pipeline(registry, options);

    // Park three requests in the queue (deterministic mode holds a partial
    // batch until max_batch, a model change, or drain), then hot-swap the
    // registry entry underneath them.
    std::vector<std::future<serve::Prediction>> old_futures;
    pipeline.pause();
    for (std::size_t r = 0; r < 3; ++r)
        old_futures.push_back(pipeline.submit("m", row_of(split.x_test, r)));
    registry.install("m", net_new);
    pipeline.resume();

    // Post-swap submissions resolve the new plan.
    auto new_future = pipeline.submit("m", row_of(split.x_test, 3));
    pipeline.drain();

    for (std::size_t r = 0; r < old_futures.size(); ++r) {
        const serve::Prediction p = old_futures[r].get();
        EXPECT_EQ(p.model_hash, hash_old) << "in-flight row must use the old plan";
        for (std::size_t c = 0; c < ref_old.cols(); ++c)
            ASSERT_DOUBLE_EQ(p.outputs[c], ref_old(r, c)) << "row " << r;
    }
    const serve::Prediction p_new = new_future.get();
    EXPECT_EQ(p_new.model_hash, hash_new);
    for (std::size_t c = 0; c < ref_new.cols(); ++c)
        ASSERT_DOUBLE_EQ(p_new.outputs[c], ref_new(3, c));

    // Eviction: queued requests still complete on the plan they resolved;
    // later submissions get the typed unknown-model error.
    pipeline.pause();
    auto parked = pipeline.submit("m", row_of(split.x_test, 0));
    ASSERT_TRUE(registry.evict("m"));
    pipeline.resume();
    pipeline.drain();
    EXPECT_EQ(parked.get().model_hash, hash_new);
    EXPECT_THROW(pipeline.submit("m", row_of(split.x_test, 0)), serve::ServeError);
}

// ---- backpressure and typed errors -------------------------------------------

TEST(ServeBackpressure, QueueFullShedsWithTypedErrorAndNeverBlocks) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
    const auto net = make_net(split, 91);
    serve::ModelRegistry registry;
    registry.install("iris", net);

    serve::ServeOptions options;
    options.max_batch = 4;
    options.queue_capacity = 4;  // clamp keeps it at max_batch
    options.deterministic = true;
    serve::ServePipeline pipeline(registry, options);
    pipeline.pause();  // hold the batcher so the queue fills deterministically

    std::vector<std::future<serve::Prediction>> futures;
    for (std::size_t r = 0; r < 4; ++r)
        futures.push_back(pipeline.submit("iris", row_of(split.x_test, r)));
    EXPECT_EQ(pipeline.queue_depth(), 4u);
    try {
        pipeline.submit("iris", row_of(split.x_test, 4));
        FAIL() << "submit into a full queue must shed";
    } catch (const serve::ServeError& e) {
        EXPECT_EQ(e.code(), serve::ServeErrorCode::kQueueFull);
    }

    pipeline.resume();
    pipeline.drain();
    for (auto& f : futures) EXPECT_GE(f.get().predicted_class, 0);
}

TEST(ServeBackpressure, BadRequestAndShutdownAreTyped) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
    const auto net = make_net(split, 91);
    serve::ModelRegistry registry;
    registry.install("iris", net);
    serve::ServePipeline pipeline(registry);

    try {
        pipeline.submit("iris", std::vector<double>(split.n_features() + 1, 0.1));
        FAIL() << "feature-count mismatch must be rejected";
    } catch (const serve::ServeError& e) {
        EXPECT_EQ(e.code(), serve::ServeErrorCode::kBadRequest);
    }
    try {
        pipeline.submit("nope", row_of(split.x_test, 0));
        FAIL() << "unknown model must be rejected";
    } catch (const serve::ServeError& e) {
        EXPECT_EQ(e.code(), serve::ServeErrorCode::kUnknownModel);
    }

    // Shutdown fails parked requests with the typed error and rejects new
    // submissions; neither path hangs.
    pipeline.pause();
    auto parked = pipeline.submit("iris", row_of(split.x_test, 0));
    pipeline.stop();
    EXPECT_THROW(parked.get(), serve::ServeError);
    try {
        pipeline.submit("iris", row_of(split.x_test, 0));
        FAIL() << "submit after stop must be rejected";
    } catch (const serve::ServeError& e) {
        EXPECT_EQ(e.code(), serve::ServeErrorCode::kShutdown);
    }
}

// ---- pnc-requests/1 round trip and rejection ---------------------------------

TEST(RequestLog, RoundTripIsBitExact) {
    serve::RequestLog log;
    log.model = "iris";
    log.n_features = 3;
    log.requests = {{0.1, 0.25, 1.0 / 3.0}, {1e-17, 0.99999999999999989, 0.5}};

    std::stringstream ss;
    serve::write_request_log(ss, log);
    const serve::RequestLog parsed = serve::parse_request_log(ss);
    EXPECT_EQ(parsed.model, log.model);
    EXPECT_EQ(parsed.n_features, log.n_features);
    ASSERT_EQ(parsed.requests.size(), log.requests.size());
    for (std::size_t r = 0; r < log.requests.size(); ++r)
        for (std::size_t c = 0; c < log.n_features; ++c)
            EXPECT_DOUBLE_EQ(parsed.requests[r][c], log.requests[r][c]);

    std::stringstream ps;
    serve::write_prediction_log(ps, "iris",
                                {{0, 2, {0.1, 0.2, 0.70000000000000007}, 41}});
    // Version 2 carries the span id and round-trips it.
    EXPECT_NE(ps.str().find("pnc-predictions/2"), std::string::npos);
    EXPECT_EQ(serve::validate_predictions(ps.str()), "");
    const auto predictions = serve::parse_prediction_log(ps);
    ASSERT_EQ(predictions.size(), 1u);
    EXPECT_EQ(predictions[0].predicted_class, 2);
    EXPECT_EQ(predictions[0].span, 41u);
    EXPECT_DOUBLE_EQ(predictions[0].outputs[2], 0.70000000000000007);
    EXPECT_NE(serve::validate_predictions("not json"), "");

    // Legacy version-1 logs (no span field) still parse; span defaults to seq.
    const std::string v1 =
        "{\"schema\":\"pnc-predictions/1\",\"model\":\"iris\",\"count\":1}\n"
        "{\"seq\":0,\"class\":1,\"outputs\":[0.2,0.5]}\n";
    EXPECT_EQ(serve::validate_predictions(v1), "");
    std::stringstream legacy(v1);
    const auto legacy_rows = serve::parse_prediction_log(legacy);
    ASSERT_EQ(legacy_rows.size(), 1u);
    EXPECT_EQ(legacy_rows[0].span, 0u);
    // A version-2 row without its span is rejected.
    EXPECT_NE(
        serve::validate_predictions(
            "{\"schema\":\"pnc-predictions/2\",\"model\":\"iris\",\"count\":1}\n"
            "{\"seq\":0,\"class\":1,\"outputs\":[0.2,0.5]}\n"),
        "");
}

TEST(RequestLog, MalformedDocumentsAreRejectedWithReasons) {
    const auto expect_rejected = [](const std::string& doc, const std::string& why) {
        std::stringstream ss(doc);
        EXPECT_THROW(serve::parse_request_log(ss), std::runtime_error) << why;
        // The validator mirrors the parser with a line-tagged reason.
        EXPECT_NE(serve::validate_requests(doc).find("request log line"),
                  std::string::npos)
            << why;
    };
    expect_rejected("", "empty document");
    expect_rejected("{\"schema\":\"pnc-requests/2\",\"model\":\"m\",\"n_features\":1,"
                    "\"count\":0}\n",
                    "wrong schema version");
    expect_rejected("{\"schema\":\"pnc-requests/1\",\"model\":\"m\",\"count\":0}\n",
                    "missing n_features");
    expect_rejected("{\"schema\":\"pnc-requests/1\",\"model\":\"m\",\"n_features\":2,"
                    "\"count\":2}\n{\"seq\":0,\"features\":[0.1,0.2]}\n",
                    "header count mismatch");
    expect_rejected("{\"schema\":\"pnc-requests/1\",\"model\":\"m\",\"n_features\":2,"
                    "\"count\":1}\n{\"seq\":1,\"features\":[0.1,0.2]}\n",
                    "out-of-order seq");
    expect_rejected("{\"schema\":\"pnc-requests/1\",\"model\":\"m\",\"n_features\":2,"
                    "\"count\":1}\n{\"seq\":0,\"features\":[0.1]}\n",
                    "feature width disagrees with header");
    expect_rejected("{\"schema\":\"pnc-requests/1\",\"model\":\"m\",\"n_features\":1,"
                    "\"count\":1}\n{\"seq\":0,\"features\":[\"x\"]}\n",
                    "non-numeric feature");
}
