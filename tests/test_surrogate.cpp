// Surrogate pipeline tests: design space, ratio feature extension (plain
// and differentiable), dataset building, the MLP and the bundled surrogate
// model (training, serialization, differentiability).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "surrogate/surrogate_model.hpp"
#include "test_util.hpp"

using namespace pnc;
using circuit::NonlinearCircuitKind;
using circuit::Omega;
using math::Matrix;

// ---- design space ---------------------------------------------------------

TEST(DesignSpace, Table1Bounds) {
    const auto space = surrogate::DesignSpace::table1();
    EXPECT_DOUBLE_EQ(space.min(0), 10.0);
    EXPECT_DOUBLE_EQ(space.max(0), 500.0);
    EXPECT_DOUBLE_EQ(space.min(3), 8e3);
    EXPECT_DOUBLE_EQ(space.max(6), 70.0);
}

TEST(DesignSpace, SamplesSatisfyAllConstraints) {
    const auto space = surrogate::DesignSpace::table1();
    math::SobolSequence sobol(7);
    for (const auto& omega : space.sample_batch(sobol, 500)) {
        ASSERT_TRUE(space.contains(omega));
        ASSERT_GT(omega.r1, omega.r2);
        ASSERT_GT(omega.r3, omega.r4);
    }
}

TEST(DesignSpace, ContainsRejectsViolations) {
    const auto space = surrogate::DesignSpace::table1();
    Omega omega = circuit::kDefaultPtanhOmega;
    EXPECT_TRUE(space.contains(omega));
    omega.r2 = omega.r1 + 1.0;  // violates R1 > R2 (and the R2 box)
    EXPECT_FALSE(space.contains(omega));
    omega = circuit::kDefaultPtanhOmega;
    omega.w = 1000.0;
    EXPECT_FALSE(space.contains(omega));
}

TEST(DesignSpace, ClipProjectsIntoFeasibleSet) {
    const auto space = surrogate::DesignSpace::table1();
    Omega omega{600.0, 590.0, 5e3, 450e3, 900e3, 100.0, 100.0};
    const Omega clipped = space.clip(omega);
    EXPECT_TRUE(space.contains(clipped));
}

TEST(DesignSpace, RejectsBadBounds) {
    EXPECT_THROW(surrogate::DesignSpace({1, 1, 1, 1, 1, 1, 1}, {2, 2, 0.5, 2, 2, 2, 2}),
                 std::invalid_argument);
}

// ---- feature extension -------------------------------------------------------

TEST(FeatureExtension, AppendsRatios) {
    const Omega omega{100.0, 50.0, 200e3, 40e3, 300e3, 600.0, 30.0};
    const Matrix ext = surrogate::extend_features(omega);
    ASSERT_EQ(ext.cols(), 10u);
    EXPECT_DOUBLE_EQ(ext(0, 7), 0.5);   // k1
    EXPECT_DOUBLE_EQ(ext(0, 8), 0.2);   // k2
    EXPECT_DOUBLE_EQ(ext(0, 9), 20.0);  // k3
}

TEST(FeatureExtension, MatrixAndVarVersionsAgree) {
    math::Rng rng(3);
    Matrix omega_rows(4, 7);
    const auto space = surrogate::DesignSpace::table1();
    math::SobolSequence sobol(7);
    const auto omegas = space.sample_batch(sobol, 4);
    for (std::size_t r = 0; r < 4; ++r) {
        const auto a = omegas[r].to_array();
        for (std::size_t c = 0; c < 7; ++c) omega_rows(r, c) = a[c];
    }
    const Matrix plain = surrogate::extend_features(omega_rows);
    const Matrix via_var = surrogate::extend_features(ad::constant(omega_rows)).value();
    EXPECT_LT(math::max_abs_diff(plain, via_var), 1e-12);
}

TEST(FeatureExtension, DifferentiableThroughRatios) {
    // Gradient must flow into the raw parameters through the ratio columns.
    math::Rng rng(4);
    ad::Var omega = ad::parameter(rng.uniform_matrix(2, 7, 10.0, 100.0));
    pnc::testutil::expect_gradients_match(
        {omega}, [&] { return ad::sum(surrogate::extend_features(omega)); }, 1e-4, 1e-4);
}

// ---- dataset builder ------------------------------------------------------------

namespace {

const surrogate::SurrogateDataset& tiny_dataset(NonlinearCircuitKind kind) {
    static const auto build = [](NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 200;
        options.sweep_points = 17;
        return surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(),
                                                  options);
    };
    static const surrogate::SurrogateDataset ptanh = build(NonlinearCircuitKind::kPtanh);
    static const surrogate::SurrogateDataset neg =
        build(NonlinearCircuitKind::kNegativeWeight);
    return kind == NonlinearCircuitKind::kPtanh ? ptanh : neg;
}

}  // namespace

TEST(DatasetBuilder, ShapesAndResiduals) {
    const auto& ds = tiny_dataset(NonlinearCircuitKind::kPtanh);
    EXPECT_EQ(ds.size(), 200u);
    EXPECT_EQ(ds.omega.cols(), 7u);
    EXPECT_EQ(ds.eta.cols(), 4u);
    for (double rmse : ds.fit_rmse) EXPECT_LT(rmse, 0.05);
}

TEST(DatasetBuilder, TargetsAreConditioned) {
    const auto& ds = tiny_dataset(NonlinearCircuitKind::kPtanh);
    for (std::size_t i = 0; i < ds.size(); ++i) {
        EXPECT_GE(ds.eta(i, 2), -0.5);
        EXPECT_LE(ds.eta(i, 2), 1.5);
        EXPECT_GE(std::abs(ds.eta(i, 3)), 0.0);
        EXPECT_LE(ds.eta(i, 3), 80.0);
    }
}

TEST(DatasetBuilder, NegativeWeightEtaHasNegativeOffset) {
    // Eq. 3 fits of decreasing positive curves put eta1 < 0 (the leading
    // minus makes the physical output -(eta1 + ...)).
    const auto& ds = tiny_dataset(NonlinearCircuitKind::kNegativeWeight);
    int negative_eta1 = 0;
    for (std::size_t i = 0; i < ds.size(); ++i) negative_eta1 += ds.eta(i, 0) < 0.0;
    EXPECT_GT(negative_eta1, static_cast<int>(ds.size() * 0.9));
}

TEST(DatasetBuilder, SaveLoadRoundTrip) {
    const auto& ds = tiny_dataset(NonlinearCircuitKind::kPtanh);
    std::stringstream ss;
    ds.save(ss);
    const auto loaded = surrogate::SurrogateDataset::load(ss);
    EXPECT_EQ(loaded.kind, ds.kind);
    EXPECT_EQ(loaded.size(), ds.size());
    EXPECT_LT(math::max_abs_diff(loaded.omega, ds.omega), 1e-12);
    EXPECT_LT(math::max_abs_diff(loaded.eta, ds.eta), 1e-12);
}

// ---- MLP ----------------------------------------------------------------------------

TEST(Mlp, PaperArchitecture) {
    const auto layers = surrogate::paper_surrogate_layers();
    EXPECT_EQ(layers.size(), 14u);  // 13 weight layers
    EXPECT_EQ(layers.front(), 10u);
    EXPECT_EQ(layers.back(), 4u);
}

TEST(Mlp, ForwardShapeAndDeterminism) {
    math::Rng rng(5);
    const surrogate::Mlp mlp({3, 8, 2}, rng);
    const Matrix x = rng.uniform_matrix(5, 3, 0.0, 1.0);
    const Matrix y1 = mlp.predict(x);
    const Matrix y2 = mlp.predict(x);
    EXPECT_EQ(y1.rows(), 5u);
    EXPECT_EQ(y1.cols(), 2u);
    EXPECT_DOUBLE_EQ(math::max_abs_diff(y1, y2), 0.0);
    EXPECT_THROW(mlp.predict(Matrix(5, 4)), std::invalid_argument);
}

TEST(Mlp, LearnsSimpleFunction) {
    math::Rng rng(6);
    surrogate::Mlp mlp({1, 8, 8, 1}, rng);
    Matrix x(64, 1), y(64, 1);
    for (std::size_t i = 0; i < 64; ++i) {
        x(i, 0) = static_cast<double>(i) / 64.0;
        y(i, 0) = std::sin(3.0 * x(i, 0));
    }
    surrogate::MlpTrainOptions options;
    options.max_epochs = 1500;
    options.learning_rate = 1e-2;
    options.patience = 1500;
    const auto result = surrogate::train_regression(mlp, x, y, x, y, options);
    EXPECT_LT(result.validation_mse, 1e-3);
}

TEST(Mlp, EarlyStoppingRestoresBestWeights) {
    math::Rng rng(7);
    surrogate::Mlp mlp({1, 4, 1}, rng);
    const Matrix x(8, 1, 0.5);
    const Matrix y(8, 1, 1.0);
    surrogate::MlpTrainOptions options;
    options.max_epochs = 50;
    options.patience = 5;
    const auto result = surrogate::train_regression(mlp, x, y, x, y, options);
    // Validation of the restored model equals the reported best value.
    const Matrix pred = mlp.predict(x);
    double mse = 0.0;
    for (std::size_t i = 0; i < pred.size(); ++i) {
        const double d = pred[i] - y[i];
        mse += d * d;
    }
    mse /= static_cast<double>(pred.size());
    EXPECT_NEAR(mse, result.validation_mse, 1e-12);
}

TEST(Mlp, SaveLoadRoundTrip) {
    math::Rng rng(8);
    const surrogate::Mlp mlp({2, 5, 3}, rng);
    std::stringstream ss;
    mlp.save(ss);
    const auto loaded = surrogate::Mlp::load(ss);
    EXPECT_EQ(loaded.layer_sizes(), mlp.layer_sizes());
    const Matrix x = rng.uniform_matrix(4, 2, -1.0, 1.0);
    EXPECT_LT(math::max_abs_diff(loaded.predict(x), mlp.predict(x)), 1e-12);
}

TEST(Mlp, GradientFlowsToInput) {
    // The pNN relies on d(eta)/d(omega) through the frozen surrogate.
    math::Rng rng(9);
    const surrogate::Mlp mlp({3, 6, 2}, rng);
    ad::Var x = ad::parameter(rng.uniform_matrix(1, 3, 0.0, 1.0));
    pnc::testutil::expect_gradients_match({x}, [&] { return ad::sum(mlp.forward(x)); },
                                          1e-6, 1e-5);
}

TEST(Mlp, Validation) {
    math::Rng rng(10);
    EXPECT_THROW(surrogate::Mlp({5}, rng), std::invalid_argument);
    EXPECT_THROW(surrogate::Mlp({5, 0, 2}, rng), std::invalid_argument);
}

// ---- surrogate model -------------------------------------------------------------------

namespace {

const surrogate::SurrogateModel& tiny_model() {
    static const surrogate::SurrogateModel model = [] {
        surrogate::SurrogateTrainOptions options;
        options.mlp.max_epochs = 400;
        options.mlp.patience = 100;
        return surrogate::SurrogateModel::train(tiny_dataset(NonlinearCircuitKind::kPtanh),
                                                options);
    }();
    return model;
}

}  // namespace

TEST(SurrogateModel, TrainingReportsMetrics) {
    surrogate::SurrogateTrainOptions options;
    options.mlp.max_epochs = 300;
    options.mlp.patience = 100;
    surrogate::SurrogateMetrics metrics;
    const auto model = surrogate::SurrogateModel::train(
        tiny_dataset(NonlinearCircuitKind::kPtanh), options, &metrics);
    EXPECT_GT(metrics.epochs_run, 0);
    EXPECT_GT(metrics.test_mse, 0.0);
    EXPECT_LT(metrics.test_mse, 0.1);
    EXPECT_EQ(metrics.test_r2.size(), 4u);
}

TEST(SurrogateModel, PredictsNearFittedEta) {
    // On the default design the surrogate must be close to the direct fit.
    const auto& model = tiny_model();
    const Omega omega = circuit::kDefaultPtanhOmega;
    const auto predicted = model.predict(omega);
    const auto curve =
        circuit::simulate_characteristic(omega, NonlinearCircuitKind::kPtanh, 33);
    const auto fitted = fit::fit_ptanh(curve, NonlinearCircuitKind::kPtanh);
    EXPECT_NEAR(predicted.eta1, fitted.eta.eta1, 0.15);
    EXPECT_NEAR(predicted.eta2, fitted.eta.eta2, 0.15);
    EXPECT_NEAR(predicted.eta3, fitted.eta.eta3, 0.15);
}

TEST(SurrogateModel, ForwardRawMatchesPredict) {
    const auto& model = tiny_model();
    const Omega omega = circuit::kDefaultPtanhOmega;
    const auto via_predict = model.predict(omega);
    const Matrix ext = surrogate::extend_features(omega);
    const Matrix via_var = model.forward_raw(ad::constant(ext)).value();
    EXPECT_NEAR(via_var(0, 0), via_predict.eta1, 1e-12);
    EXPECT_NEAR(via_var(0, 3), via_predict.eta4, 1e-12);
}

TEST(SurrogateModel, DifferentiableEndToEnd) {
    const auto& model = tiny_model();
    const Matrix ext = surrogate::extend_features(circuit::kDefaultPtanhOmega);
    ad::Var omega_ext = ad::parameter(ext);
    pnc::testutil::expect_gradients_match(
        {omega_ext}, [&] { return ad::sum(model.forward_raw(omega_ext)); }, 1e-3, 1e-3);
}

TEST(SurrogateModel, SaveLoadRoundTrip) {
    const auto& model = tiny_model();
    std::stringstream ss;
    model.save(ss);
    const auto loaded = surrogate::SurrogateModel::load(ss);
    EXPECT_EQ(loaded.kind(), model.kind());
    const auto a = model.predict(circuit::kDefaultPtanhOmega);
    const auto b = loaded.predict(circuit::kDefaultPtanhOmega);
    EXPECT_DOUBLE_EQ(a.eta1, b.eta1);
    EXPECT_DOUBLE_EQ(a.eta4, b.eta4);
}

TEST(SurrogateModel, RejectsWrongArchitecture) {
    surrogate::SurrogateTrainOptions options;
    options.layers = {10, 5, 3};  // output must be 4
    EXPECT_THROW(surrogate::SurrogateModel::train(
                     tiny_dataset(NonlinearCircuitKind::kPtanh), options),
                 std::invalid_argument);
}
