// Tests of the numeric substrate: Matrix, LU/Cholesky, RNG, Sobol,
// statistics and the min-max normalizer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "math/linalg.hpp"
#include "math/matrix.hpp"
#include "math/normalizer.hpp"
#include "math/random.hpp"
#include "math/sobol.hpp"
#include "math/stats.hpp"

using namespace pnc::math;

// ---- Matrix -------------------------------------------------------------

TEST(Matrix, ConstructionAndAccess) {
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 1) = 2.0;
    EXPECT_DOUBLE_EQ(m[1], 2.0);  // row-major flat access
}

TEST(Matrix, InitializerListAndFactories) {
    const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
    EXPECT_THROW((Matrix{{1.0}, {2.0, 3.0}}), std::invalid_argument);
    const Matrix i = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(i(2, 2), 1.0);
    EXPECT_DOUBLE_EQ(i(0, 2), 0.0);
    const Matrix r = Matrix::row({1.0, 2.0, 3.0});
    EXPECT_EQ(r.rows(), 1u);
    const Matrix c = Matrix::col({1.0, 2.0});
    EXPECT_EQ(c.cols(), 1u);
    const Matrix g = Matrix::generate(2, 2, [](std::size_t r2, std::size_t c2) {
        return static_cast<double>(10 * r2 + c2);
    });
    EXPECT_DOUBLE_EQ(g(1, 1), 11.0);
}

TEST(Matrix, Arithmetic) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Matrix b{{4.0, 3.0}, {2.0, 1.0}};
    EXPECT_DOUBLE_EQ((a + b)(0, 0), 5.0);
    EXPECT_DOUBLE_EQ((a - b)(1, 1), 3.0);
    EXPECT_DOUBLE_EQ((a * 2.0)(0, 1), 4.0);
    EXPECT_DOUBLE_EQ((-a)(0, 0), -1.0);
    EXPECT_DOUBLE_EQ(hadamard(a, b)(1, 0), 6.0);
    EXPECT_DOUBLE_EQ(elementwise_div(a, b)(1, 1), 4.0);
    EXPECT_THROW(a + Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, MatmulAndTranspose) {
    const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    const Matrix b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
    const Matrix c = matmul(a, b);
    EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
    const Matrix at = transpose(a);
    EXPECT_EQ(at.rows(), 3u);
    EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
    EXPECT_THROW(matmul(a, a), std::invalid_argument);
}

TEST(Matrix, ReductionsAndBroadcast) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(a.sum(), 10.0);
    EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
    EXPECT_DOUBLE_EQ(sum_rows(a)(0, 1), 6.0);
    EXPECT_DOUBLE_EQ(sum_cols(a)(1, 0), 7.0);
    const Matrix br = broadcast_row(Matrix{{1.0, 2.0}}, 3);
    EXPECT_EQ(br.rows(), 3u);
    EXPECT_DOUBLE_EQ(br(2, 1), 2.0);
    EXPECT_THROW(broadcast_row(a, 2), std::invalid_argument);
    EXPECT_NEAR(frobenius_norm(Matrix{{3.0, 4.0}}), 5.0, 1e-12);
    EXPECT_DOUBLE_EQ(max_abs_diff(a, a), 0.0);
}

// ---- linear algebra -------------------------------------------------------

TEST(Linalg, LuSolvesKnownSystem) {
    const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
    const Matrix b = Matrix::col({5.0, 10.0});
    const Matrix x = lu_solve(a, b);
    EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(x(1, 0), 3.0, 1e-12);
}

TEST(Linalg, LuHandlesPivoting) {
    // Zero on the diagonal requires a row swap.
    const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
    const Matrix x = lu_solve(a, Matrix::col({2.0, 3.0}));
    EXPECT_NEAR(x(0, 0), 3.0, 1e-12);
    EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
}

TEST(Linalg, LuRandomRoundTrip) {
    Rng rng(5);
    const Matrix a = rng.uniform_matrix(8, 8, -1.0, 1.0) + Matrix::identity(8) * 4.0;
    const Matrix x_true = rng.uniform_matrix(8, 1, -1.0, 1.0);
    const Matrix x = lu_solve(a, matmul(a, x_true));
    EXPECT_LT(max_abs_diff(x, x_true), 1e-10);
}

TEST(Linalg, SingularMatrixThrows) {
    const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    EXPECT_THROW(LuFactorization{a}, std::runtime_error);
}

TEST(Linalg, Determinant) {
    const Matrix a{{2.0, 0.0}, {0.0, 3.0}};
    EXPECT_NEAR(LuFactorization(a).determinant(), 6.0, 1e-12);
    const Matrix swapped{{0.0, 1.0}, {1.0, 0.0}};
    EXPECT_NEAR(LuFactorization(swapped).determinant(), -1.0, 1e-12);
}

TEST(Linalg, CholeskySolvesSpd) {
    const Matrix a{{4.0, 1.0}, {1.0, 3.0}};
    const Matrix x = cholesky_solve(a, Matrix::col({1.0, 2.0}));
    // verify residual
    const Matrix r = matmul(a, x) - Matrix::col({1.0, 2.0});
    EXPECT_LT(r.max_abs(), 1e-12);
    EXPECT_THROW(cholesky_solve(Matrix{{1.0, 2.0}, {2.0, 1.0}}, Matrix::col({1.0, 1.0})),
                 std::runtime_error);  // indefinite
}

TEST(Linalg, InverseRoundTrip) {
    Rng rng(6);
    const Matrix a = rng.uniform_matrix(5, 5, -1.0, 1.0) + Matrix::identity(5) * 3.0;
    EXPECT_LT(max_abs_diff(matmul(a, inverse(a)), Matrix::identity(5)), 1e-10);
}

// ---- RNG ---------------------------------------------------------------------

TEST(Random, DeterministicAcrossInstances) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
    EXPECT_LT(equal, 2);
}

TEST(Random, UniformRangeAndMean) {
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform(2.0, 4.0);
        ASSERT_GE(u, 2.0);
        ASSERT_LT(u, 4.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 3.0, 0.02);
}

TEST(Random, NormalMoments) {
    Rng rng(8);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(1.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 1.0, 0.05);
    EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.05);
}

TEST(Random, ShuffleIsPermutation) {
    Rng rng(9);
    auto v = iota_indices(100);
    rng.shuffle(v);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, iota_indices(100));
    EXPECT_NE(v, iota_indices(100));  // astronomically unlikely to be identity
}

TEST(Random, SplitStreamsAreIndependentlySeeded) {
    Rng parent(10);
    Rng child1 = parent.split();
    Rng child2 = parent.split();
    EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(Random, SiblingSplitStreamsDoNotOverlap) {
    // The parallel Monte-Carlo engine hands each sample its own child
    // stream; sibling streams sharing values would correlate the samples.
    Rng parent(77);
    Rng child1 = parent.split();
    Rng child2 = parent.split();
    std::unordered_set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(child1.next_u64());
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(seen.count(child2.next_u64()), 0u) << "overlap at draw " << i;
}

TEST(Random, ChildStreamIndependentOfParentsLaterDraws) {
    // A child's output is fixed at split time: however much the parent
    // draws afterwards, the child replays the same stream. This is what
    // makes pre-split Monte-Carlo samples schedule-independent.
    Rng parent_a(78), parent_b(78);
    Rng child_a = parent_a.split();
    Rng child_b = parent_b.split();
    for (int i = 0; i < 500; ++i) parent_a.next_u64();  // parent_b draws nothing
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
}

TEST(Random, SplitNMatchesSequentialSplits) {
    Rng a(79), b(79);
    auto children = a.split_n(4);
    ASSERT_EQ(children.size(), 4u);
    for (auto& child : children) {
        Rng expected = b.split();
        for (int i = 0; i < 64; ++i) EXPECT_EQ(child.next_u64(), expected.next_u64());
    }
    // And the parents are left in identical states.
    EXPECT_EQ(a.next_u64(), b.next_u64());
}

// ---- Sobol ----------------------------------------------------------------------

TEST(Sobol, FirstPointsOfDimensionOne) {
    SobolSequence sobol(1);
    EXPECT_DOUBLE_EQ(sobol.next()[0], 0.0);
    EXPECT_DOUBLE_EQ(sobol.next()[0], 0.5);
    EXPECT_DOUBLE_EQ(sobol.next()[0], 0.75);
    EXPECT_DOUBLE_EQ(sobol.next()[0], 0.25);
}

TEST(Sobol, PointsInUnitCube) {
    SobolSequence sobol(7);
    for (int i = 0; i < 1000; ++i) {
        for (double x : sobol.next()) {
            ASSERT_GE(x, 0.0);
            ASSERT_LT(x, 1.0);
        }
    }
}

TEST(Sobol, BeatsPseudoRandomUniformity) {
    // Quasi Monte-Carlo should have clearly lower discrepancy than an
    // equally sized pseudo-random sample.
    SobolSequence sobol(2);
    sobol.skip(1);
    const Matrix qmc = sobol.sample_matrix(512);
    Rng rng(11);
    const Matrix mc = rng.uniform_matrix(512, 2, 0.0, 1.0);
    EXPECT_LT(uniformity_deviation(qmc), uniformity_deviation(mc));
}

TEST(Sobol, BalancedFirstDyadicBlock) {
    // The first 2^k Sobol points (origin included) place exactly half of
    // each coordinate in [0, 0.5).
    SobolSequence sobol(5);
    const Matrix pts = sobol.sample_matrix(64);
    for (std::size_t d = 0; d < 5; ++d) {
        int low = 0;
        for (std::size_t i = 0; i < 64; ++i) low += pts(i, d) < 0.5;
        EXPECT_EQ(low, 32) << "dimension " << d;
    }
}

TEST(Sobol, DimensionLimits) {
    EXPECT_THROW(SobolSequence(0), std::invalid_argument);
    EXPECT_THROW(SobolSequence(SobolSequence::kMaxDimension + 1), std::invalid_argument);
    EXPECT_NO_THROW(SobolSequence(SobolSequence::kMaxDimension));
}

// ---- stats ---------------------------------------------------------------------

TEST(Stats, Basics) {
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
    EXPECT_NEAR(stddev(v), std::sqrt(1.25), 1e-12);
    EXPECT_NEAR(sample_stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
    EXPECT_DOUBLE_EQ(minimum(v), 1.0);
    EXPECT_DOUBLE_EQ(maximum(v), 4.0);
    EXPECT_DOUBLE_EQ(median(v), 2.5);
    EXPECT_DOUBLE_EQ(median({1.0, 5.0, 3.0}), 3.0);
    EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Stats, CorrelationAndR2) {
    const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
    std::vector<double> anti(y.rbegin(), y.rend());
    EXPECT_NEAR(pearson_correlation(x, anti), -1.0, 1e-12);
    EXPECT_DOUBLE_EQ(pearson_correlation(x, {1.0, 1.0, 1.0, 1.0}), 0.0);
    EXPECT_NEAR(r_squared(y, y), 1.0, 1e-12);
    EXPECT_NEAR(rmse(x, y), std::sqrt((1.0 + 4.0 + 9.0 + 16.0) / 4.0), 1e-12);
}

// ---- normalizer ----------------------------------------------------------------

TEST(Normalizer, FitNormalizeDenormalizeRoundTrip) {
    const Matrix data{{1.0, 10.0}, {3.0, 30.0}, {2.0, 20.0}};
    const auto norm = MinMaxNormalizer::fit(data);
    const Matrix n = norm.normalize(data);
    EXPECT_DOUBLE_EQ(n(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(n(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(n(2, 0), 0.5);
    EXPECT_LT(max_abs_diff(norm.denormalize(n), data), 1e-12);
}

TEST(Normalizer, ConstantColumnMapsToHalf) {
    const Matrix data{{5.0}, {5.0}};
    const auto norm = MinMaxNormalizer::fit(data);
    EXPECT_DOUBLE_EQ(norm.normalize(data)(0, 0), 0.5);
    EXPECT_DOUBLE_EQ(norm.denormalize(Matrix(1, 1, 0.3))(0, 0), 5.0);
}

TEST(Normalizer, SaveLoadRoundTrip) {
    const auto norm = MinMaxNormalizer({1.0, 2.0}, {3.0, 8.0});
    std::stringstream ss;
    norm.save(ss);
    const auto loaded = MinMaxNormalizer::load(ss);
    EXPECT_EQ(loaded.mins(), norm.mins());
    EXPECT_EQ(loaded.maxs(), norm.maxs());
}

TEST(Normalizer, Validation) {
    EXPECT_THROW(MinMaxNormalizer({1.0}, {0.5}), std::invalid_argument);
    EXPECT_THROW(MinMaxNormalizer({1.0}, {2.0, 3.0}), std::invalid_argument);
    const auto norm = MinMaxNormalizer({0.0}, {1.0});
    EXPECT_THROW(norm.normalize(Matrix(1, 2)), std::invalid_argument);
}
