// ThreadPool unit tests: index coverage, inline fallback, exception
// propagation, env-var sizing, and pool reuse. The determinism of the
// Monte-Carlo call sites built on top is covered by test_mc_determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"

using pnc::runtime::ThreadPool;

TEST(ThreadPool, EmptyRangeNeverInvokes) {
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallel_for(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, EveryIndexExactlyOnce) {
    ThreadPool pool(4);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, RangeSmallerThanThreadCount) {
    ThreadPool pool(8);
    const std::size_t n = 3;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SingleThreadedPoolRunsInline) {
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::set<std::thread::id> ids;
    pool.parallel_for(16, [&](std::size_t) { ids.insert(std::this_thread::get_id()); });
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), caller);
}

TEST(ThreadPool, SingleElementRunsInlineEvenOnBigPool) {
    ThreadPool pool(8);
    const auto caller = std::this_thread::get_id();
    std::thread::id seen;
    pool.parallel_for(1, [&](std::size_t) { seen = std::this_thread::get_id(); });
    EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, MultiThreadedPoolActuallyUsesWorkers) {
    ThreadPool pool(4);
    std::mutex m;
    std::set<std::thread::id> ids;
    // Large-ish chunks so every chunk records its thread even under heavy
    // scheduling skew; with 4 contiguous chunks there must be > 1 id.
    pool.parallel_for(64, [&](std::size_t) {
        std::lock_guard<std::mutex> lock(m);
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_GT(ids.size(), 1u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(100,
                                   [&](std::size_t i) {
                                       if (i == 57) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, PoolStaysUsableAfterException) {
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallel_for(100, [&](std::size_t) { throw std::runtime_error("boom"); }),
        std::runtime_error);
    std::atomic<int> calls{0};
    pool.parallel_for(100, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 100);
}

TEST(ThreadPool, InlinePathPropagatesExceptionsToo) {
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallel_for(4,
                                   [&](std::size_t i) {
                                       if (i == 2) throw std::invalid_argument("inline");
                                   }),
                 std::invalid_argument);
}

TEST(ThreadPool, ReuseAcrossManyCalls) {
    ThreadPool pool(4);
    std::atomic<long> total{0};
    for (int round = 0; round < 200; ++round)
        pool.parallel_for(32, [&](std::size_t i) { total += static_cast<long>(i); });
    EXPECT_EQ(total.load(), 200l * (31l * 32l / 2l));
}

TEST(ThreadPool, NestedParallelForFallsBackToInline) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    pool.parallel_for(4, [&](std::size_t outer) {
        // A nested fan-out inside a worker must not deadlock waiting for
        // workers that are all busy with the outer loop.
        pool.parallel_for(16, [&](std::size_t inner) { ++hits[outer * 16 + inner]; });
    });
    for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ZeroThreadsTreatedAsOne) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.n_threads(), 1u);
}

// ---- lifetime churn -------------------------------------------------------

TEST(ThreadPoolChurn, ConstructSubmitDestroyUnderConcurrentMetricsReset) {
    // Regression lock for the PR 2/3 lifetime fixes: pool workers record
    // pool.* metrics through references that must stay valid while another
    // thread empties the registry (reset() retires metric objects instead
    // of destroying them). Construct/submit/destroy cycles racing a reset
    // loop is exactly the shape TSan/ASan flagged before the fix.
    const bool was_enabled = pnc::obs::enabled();
    pnc::obs::set_enabled(true);
    std::atomic<bool> stop{false};
    std::thread resetter([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            pnc::obs::MetricsRegistry::global().reset();
            std::this_thread::yield();
        }
    });
    for (int cycle = 0; cycle < 50; ++cycle) {
        ThreadPool pool(3);
        std::atomic<long> total{0};
        pool.parallel_for(64, [&](std::size_t i) { total += static_cast<long>(i); });
        EXPECT_EQ(total.load(), 63l * 64l / 2l) << "cycle " << cycle;
    }
    stop.store(true, std::memory_order_relaxed);
    resetter.join();
    pnc::obs::set_enabled(was_enabled);
}

// ---- PNC_NUM_THREADS sizing ----------------------------------------------

TEST(ThreadPoolEnv, EnvVariableSetsDefaultThreadCount) {
    ASSERT_EQ(setenv("PNC_NUM_THREADS", "5", 1), 0);
    EXPECT_EQ(ThreadPool::default_thread_count(), 5u);
    ASSERT_EQ(setenv("PNC_NUM_THREADS", "1", 1), 0);
    EXPECT_EQ(ThreadPool::default_thread_count(), 1u);
    unsetenv("PNC_NUM_THREADS");
}

TEST(ThreadPoolEnv, InvalidEnvFallsBackToHardware) {
    const std::size_t hw = std::thread::hardware_concurrency() == 0
                               ? 1
                               : std::thread::hardware_concurrency();
    for (const char* bad : {"0", "-3", "abc", ""}) {
        ASSERT_EQ(setenv("PNC_NUM_THREADS", bad, 1), 0);
        EXPECT_EQ(ThreadPool::default_thread_count(), hw) << "value: '" << bad << "'";
    }
    unsetenv("PNC_NUM_THREADS");
}

TEST(ThreadPoolEnv, ForcedSingleThreadRunsInline) {
    ASSERT_EQ(setenv("PNC_NUM_THREADS", "1", 1), 0);
    ThreadPool pool(ThreadPool::default_thread_count());
    const auto caller = std::this_thread::get_id();
    std::set<std::thread::id> ids;
    pool.parallel_for(32, [&](std::size_t) { ids.insert(std::this_thread::get_id()); });
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), caller);
    unsetenv("PNC_NUM_THREADS");
}

// ---- global pool ----------------------------------------------------------

TEST(GlobalPool, SetThreadsResizes) {
    pnc::runtime::set_global_threads(3);
    EXPECT_EQ(pnc::runtime::global_thread_count(), 3u);
    std::vector<std::atomic<int>> hits(10);
    pnc::runtime::parallel_for(10, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
    pnc::runtime::set_global_threads(ThreadPool::default_thread_count());
}

// ---- chunk partitioning ----------------------------------------------------
//
// chunk_bounds is the exact partition parallel_for executes, and the
// compiled inference engine reuses it to row-chunk batches. These tests pin
// the partition law: contiguous, ordered, exhaustive, balanced to within
// one element — for uneven splits and for ranges smaller than the worker
// count.

TEST(ChunkBounds, PartitionIsContiguousExhaustiveAndBalanced) {
    for (const std::size_t n : {0u, 1u, 3u, 7u, 16u, 100u, 101u, 1023u}) {
        for (const std::size_t chunks : {1u, 2u, 3u, 4u, 5u, 8u, 16u}) {
            std::size_t expected_lo = 0;
            std::size_t min_size = n + 1, max_size = 0;
            for (std::size_t c = 0; c < chunks; ++c) {
                const auto [lo, hi] = ThreadPool::chunk_bounds(n, chunks, c);
                EXPECT_EQ(lo, expected_lo) << "n=" << n << " chunks=" << chunks << " c=" << c;
                EXPECT_LE(lo, hi);
                min_size = std::min(min_size, hi - lo);
                max_size = std::max(max_size, hi - lo);
                expected_lo = hi;
            }
            EXPECT_EQ(expected_lo, n) << "n=" << n << " chunks=" << chunks;
            EXPECT_LE(max_size - min_size, 1u) << "n=" << n << " chunks=" << chunks;
        }
    }
}

TEST(ChunkBounds, DegenerateChunkCounts) {
    // chunks == 0 must still cover the whole range (inline fallback).
    const auto [lo, hi] = ThreadPool::chunk_bounds(17, 0, 0);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 17u);
    // More chunks than elements: every element still appears exactly once,
    // the surplus chunks are empty.
    std::size_t covered = 0;
    for (std::size_t c = 0; c < 8; ++c) {
        const auto [clo, chi] = ThreadPool::chunk_bounds(3, 8, c);
        covered += chi - clo;
    }
    EXPECT_EQ(covered, 3u);
}

namespace {

/// Index-keyed parallel reduction: each slot written once by its index.
std::vector<double> keyed_results(ThreadPool& pool, std::size_t n) {
    std::vector<double> out(n);
    pool.parallel_for(n, [&](std::size_t i) {
        out[i] = std::sin(static_cast<double>(i)) * 1e6 + static_cast<double>(i);
    });
    return out;
}

}  // namespace

TEST(ChunkBounds, UnevenSplitsReduceIdenticallyToInline) {
    // N not divisible by the worker count, and N < workers: the threaded
    // partition must produce bitwise the same ordered reduction as the
    // inline (single-thread) path.
    ThreadPool inline_pool(1);
    for (const std::size_t n : {3u, 5u, 10u, 37u}) {
        const auto expected = keyed_results(inline_pool, n);
        for (const std::size_t workers : {3u, 4u, 8u}) {
            ThreadPool pool(workers);
            const auto got = keyed_results(pool, n);
            ASSERT_EQ(got.size(), expected.size());
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(got[i], expected[i]) << "n=" << n << " workers=" << workers
                                               << " index=" << i;
        }
    }
}
