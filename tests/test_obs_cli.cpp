// End-to-end CLI telemetry: run the real `pnc` binary (path injected by
// CMake as PNC_CLI_PATH) with --metrics-out/--trace-out and validate the
// emitted documents against the schema in docs/OBSERVABILITY.md — the
// ISSUE acceptance criterion that a run report carries per-epoch loss,
// Monte-Carlo samples/sec and thread-pool busy time.
//
// Kept fast by shrinking the surrogate build via PNC_SURROGATE_SAMPLES /
// PNC_SURROGATE_EPOCHS and pointing PNC_ARTIFACTS at a scratch directory
// (the tiny surrogate cache is shared by the train and eval invocations).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "faults/fault_report.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/events.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

#ifndef PNC_CLI_PATH
#error "PNC_CLI_PATH must be defined to the pnc binary location"
#endif

namespace fs = std::filesystem;
using pnc::obs::json::Value;

namespace {

class ObsCliTest : public ::testing::Test {
protected:
    void SetUp() override {
        // Unique per test case: ctest runs the discovered cases as separate
        // processes, possibly concurrently, and they must not clobber each
        // other's artifacts or model files.
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::temp_directory_path() /
               (std::string("pnc_obs_cli_") + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        artifacts_ = (dir_ / "artifacts").string();
        ::setenv("PNC_ARTIFACTS", artifacts_.c_str(), 1);
        ::setenv("PNC_SURROGATE_SAMPLES", "120", 1);
        ::setenv("PNC_SURROGATE_EPOCHS", "150", 1);
    }

    void TearDown() override {
        ::unsetenv("PNC_ARTIFACTS");
        ::unsetenv("PNC_SURROGATE_SAMPLES");
        ::unsetenv("PNC_SURROGATE_EPOCHS");
        fs::remove_all(dir_);
    }

    /// Run `pnc <args>`, asserting a zero exit code; stdout+stderr land in
    /// a log file that is echoed into the failure message.
    void run_cli(const std::string& cli_args) {
        const std::string log = (dir_ / "cli.log").string();
        const std::string cmd =
            std::string(PNC_CLI_PATH) + " " + cli_args + " > " + log + " 2>&1";
        const int rc = std::system(cmd.c_str());
        ASSERT_EQ(rc, 0) << "command failed: " << cmd << "\n" << slurp(log);
    }

    /// Run `pnc <args>` and return its exit code; stdout+stderr are
    /// appended to `*output` when given.
    int run_cli_rc(const std::string& cli_args, std::string* output = nullptr) {
        const std::string log = (dir_ / "cli_rc.log").string();
        const std::string cmd =
            std::string(PNC_CLI_PATH) + " " + cli_args + " > " + log + " 2>&1";
        const int status = std::system(cmd.c_str());
        if (output) *output += slurp(log);
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    /// Run `pnc <args>` with stdout and stderr captured *separately*, so a
    /// test can assert which stream a diagnostic landed on.
    int run_cli_split(const std::string& cli_args, std::string* out, std::string* err) {
        const std::string out_log = (dir_ / "cli_out.log").string();
        const std::string err_log = (dir_ / "cli_err.log").string();
        const std::string cmd = std::string(PNC_CLI_PATH) + " " + cli_args + " > " +
                                out_log + " 2> " + err_log;
        const int status = std::system(cmd.c_str());
        if (out) *out = slurp(out_log);
        if (err) *err = slurp(err_log);
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    static std::string slurp(const std::string& path) {
        std::ifstream is(path);
        std::stringstream buffer;
        buffer << is.rdbuf();
        return buffer.str();
    }

    static Value parse_file(const std::string& path) {
        return Value::parse(slurp(path));
    }

    std::string path(const char* leaf) const { return (dir_ / leaf).string(); }

    fs::path dir_;
    std::string artifacts_;
};

}  // namespace

TEST_F(ObsCliTest, TrainEmitsSchemaValidReportWithCoreTelemetry) {
    run_cli("train --dataset iris --eps 0.1 --mc 2 --epochs 6 --patience 6 --hidden 2"
            " --seed 3 --out " + path("model.pnn") +
            " --metrics-out " + path("train_report.json") +
            " --trace-out " + path("train_trace.json"));

    const Value doc = parse_file(path("train_report.json"));
    ASSERT_EQ(pnc::obs::validate_run_report(doc), "");
    EXPECT_EQ(doc.find("meta")->find("tool")->as_string(), "pnc");
    EXPECT_EQ(doc.find("meta")->find("command")->as_string(), "train");

    // Per-epoch training telemetry: loss/accuracy series sized to the
    // number of epochs actually run.
    const Value* gauges = doc.find("gauges");
    ASSERT_NE(gauges, nullptr);
    const Value* epochs_run = gauges->find("train.epochs_run");
    ASSERT_NE(epochs_run, nullptr);
    const auto n_epochs = static_cast<std::size_t>(epochs_run->as_number());
    EXPECT_GE(n_epochs, 1u);
    const Value* series = doc.find("series");
    for (const char* name : {"train.epoch_train_loss", "train.epoch_val_loss",
                             "train.epoch_val_accuracy", "train.epoch_seconds"}) {
        const Value* s = series->find(name);
        ASSERT_NE(s, nullptr) << name;
        EXPECT_EQ(s->items().size(), n_epochs) << name;
    }

    // Monte-Carlo throughput and thread-pool busy time.
    const Value* samples_per_sec = gauges->find("mc.train.samples_per_sec");
    ASSERT_NE(samples_per_sec, nullptr);
    EXPECT_GT(samples_per_sec->as_number(), 0.0);
    const Value* busy = gauges->find("pool.busy_seconds");
    ASSERT_NE(busy, nullptr);
    EXPECT_GT(busy->as_number(), 0.0);
    const Value* counters = doc.find("counters");
    EXPECT_GT(counters->find("mc.train.samples_total")->as_number(), 0.0);
    EXPECT_GT(counters->find("pool.chunks_total")->as_number(), 0.0);
    const Value* hist = doc.find("histograms")->find("mc.train.sample_seconds");
    ASSERT_NE(hist, nullptr);
    EXPECT_GT(hist->find("count")->as_number(), 0.0);

    // The trace tree: train_pnn at the top level with one epoch node
    // aggregating all epochs.
    const Value trace = parse_file(path("train_trace.json"));
    EXPECT_EQ(trace.find("schema")->as_string(), "pnc-trace/1");
    const Value* root = trace.find("root");
    ASSERT_NE(root, nullptr);
    const Value* train_span = nullptr;
    for (const auto& child : root->find("children")->items())
        if (child.find("name")->as_string() == "train_pnn") train_span = &child;
    ASSERT_NE(train_span, nullptr);
    EXPECT_DOUBLE_EQ(train_span->find("count")->as_number(), 1.0);
    const Value* epoch_span = nullptr;
    for (const auto& child : train_span->find("children")->items())
        if (child.find("name")->as_string() == "epoch") epoch_span = &child;
    ASSERT_NE(epoch_span, nullptr);
    EXPECT_DOUBLE_EQ(epoch_span->find("count")->as_number(),
                     static_cast<double>(n_epochs));

    // Second invocation: eval the saved model and check the MC sweep
    // telemetry (exact sample count this time — --mc 20).
    run_cli("eval --model " + path("model.pnn") + " --dataset iris --eps 0.1 --mc 20"
            " --metrics-out " + path("eval_report.json"));
    const Value eval_doc = parse_file(path("eval_report.json"));
    ASSERT_EQ(pnc::obs::validate_run_report(eval_doc), "");
    EXPECT_EQ(eval_doc.find("meta")->find("command")->as_string(), "eval");
    EXPECT_DOUBLE_EQ(eval_doc.find("counters")->find("mc.eval.samples_total")->as_number(),
                     20.0);
    EXPECT_GT(eval_doc.find("gauges")->find("mc.eval.samples_per_sec")->as_number(), 0.0);
    EXPECT_DOUBLE_EQ(
        eval_doc.find("histograms")->find("mc.eval.sample_seconds")->find("count")->as_number(),
        20.0);
}

TEST_F(ObsCliTest, NoReportIsWrittenWithoutTheFlags) {
    run_cli("datasets");
    EXPECT_FALSE(fs::exists(path("train_report.json")));
    // And no stray report lands in the artifact or working directory.
    EXPECT_FALSE(fs::exists(fs::path(artifacts_) / "report.json"));
}

TEST_F(ObsCliTest, EvalFaultFlagsWriteSchemaValidFaultReport) {
    run_cli("train --dataset iris --eps 0.1 --mc 2 --epochs 4 --patience 4 --hidden 2"
            " --seed 5 --out " + path("model.pnn"));
    run_cli("eval --model " + path("model.pnn") + " --dataset iris --eps 0.1 --mc 8"
            " --fault-model mixed --fault-rate 0.05 --spec 0.6"
            " --fault-report " + path("faults.json") +
            " --metrics-out " + path("eval_report.json"));

    const Value doc = parse_file(path("faults.json"));
    ASSERT_EQ(pnc::faults::validate_fault_report(doc), "");
    EXPECT_EQ(doc.find("meta")->find("tool")->as_string(), "pnc");
    const auto& campaigns = doc.find("campaigns")->items();
    ASSERT_EQ(campaigns.size(), 1u);
    EXPECT_EQ(campaigns[0].find("dataset")->as_string(), "iris");
    EXPECT_EQ(campaigns[0].find("model")->as_string(), "mixed");
    EXPECT_DOUBLE_EQ(campaigns[0].find("fault_rate")->as_number(), 0.05);
    EXPECT_DOUBLE_EQ(campaigns[0].find("samples")->as_number(), 8.0);

    // The campaign's telemetry reaches the metrics report under the
    // faults.yield prefix.
    const Value metrics = parse_file(path("eval_report.json"));
    ASSERT_EQ(pnc::obs::validate_run_report(metrics), "");
    EXPECT_DOUBLE_EQ(
        metrics.find("counters")->find("faults.yield.samples_total")->as_number(), 8.0);
}

TEST_F(ObsCliTest, EventsOutWritesValidJsonlStream) {
    run_cli("train --dataset iris --eps 0.1 --mc 2 --epochs 4 --patience 4 --hidden 2"
            " --seed 7 --out " + path("model.pnn") +
            " --events-out " + path("run.jsonl"));

    const std::string text = slurp(path("run.jsonl"));
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(pnc::obs::validate_events(text), "") << text.substr(0, 400);

    // The stream brackets the run and carries the training milestones.
    EXPECT_NE(text.find("\"stream.open\""), std::string::npos);
    EXPECT_NE(text.find("\"run.start\""), std::string::npos);
    EXPECT_NE(text.find("\"train.start\""), std::string::npos);
    EXPECT_NE(text.find("\"train.epoch\""), std::string::npos);
    EXPECT_NE(text.find("\"train.finish\""), std::string::npos);
    EXPECT_NE(text.find("\"run.finish\""), std::string::npos);
    EXPECT_NE(text.find("\"stream.close\""), std::string::npos);

    // run.finish reports the process exit code.
    std::istringstream lines(text);
    std::string line;
    bool saw_finish = false;
    while (std::getline(lines, line)) {
        if (line.find("\"run.finish\"") == std::string::npos) continue;
        const Value event = Value::parse(line);
        EXPECT_DOUBLE_EQ(event.find("exit_code")->as_number(), 0.0);
        saw_finish = true;
    }
    EXPECT_TRUE(saw_finish);
}

TEST_F(ObsCliTest, ChromeTraceOutWritesValidDocument) {
    run_cli("train --dataset iris --eps 0.1 --mc 2 --epochs 4 --patience 4 --hidden 2"
            " --seed 9 --out " + path("model.pnn") +
            " --chrome-trace-out " + path("trace.json"));

    const Value doc = parse_file(path("trace.json"));
    ASSERT_EQ(pnc::obs::validate_chrome_trace(doc), "");
    // Beyond the metadata event, the training span made it into the export.
    bool saw_train = false;
    for (const auto& event : doc.find("traceEvents")->items())
        if (event.find("name")->as_string() == "train_pnn") saw_train = true;
    EXPECT_TRUE(saw_train);
}

TEST_F(ObsCliTest, InvalidInvocationsExitWithUsage) {
    // Unknown flag, unknown command, and fault flags without a fault model
    // must all fail fast with the usage text and exit code 2 — not run a
    // different experiment than the one asked for.
    for (const std::string& args :
         {std::string("eval --bogus-flag 1"), std::string("frobnicate"),
          std::string("eval --model m.pnn --dataset iris --fault-rate 0.1")}) {
        std::string output;
        EXPECT_EQ(run_cli_rc(args, &output), 2) << args;
        EXPECT_NE(output.find("error:"), std::string::npos) << output;
        EXPECT_NE(output.find("commands:"), std::string::npos) << output;
    }
    // Usage diagnostics (the error line AND the help text) belong on
    // stderr in full: a bad invocation must leave stdout byte-empty so
    // pipelines never ingest half a help screen as data. Swept across the
    // newer subcommands too, which used to leak the help text to stdout.
    for (const std::string& args :
         {std::string("frobnicate"), std::string("eval --bogus-flag 1"),
          std::string("serve --bogus 1"), std::string("serve"),
          std::string("report"), std::string("doctor"),
          std::string("yield merge"), std::string("curve --points")}) {
        std::string out, err;
        EXPECT_EQ(run_cli_split(args, &out, &err), 2) << args;
        EXPECT_TRUE(out.empty()) << args << " leaked to stdout: " << out;
        EXPECT_NE(err.find("error:"), std::string::npos) << args;
        EXPECT_NE(err.find("commands:"), std::string::npos) << args;
    }
    // `pnc help` itself is the answer, not a diagnostic: stdout.
    {
        std::string out, err;
        EXPECT_EQ(run_cli_split("help", &out, &err), 0);
        EXPECT_NE(out.find("commands:"), std::string::npos);
        EXPECT_TRUE(err.empty()) << err;
    }
    // And a bad invocation must not leave a partial report behind.
    EXPECT_EQ(run_cli_rc("eval --metrics-out " + path("bad_report.json")), 2);
    EXPECT_FALSE(fs::exists(path("bad_report.json")));
    // Same for the event stream: it opens before dispatch, so the usage
    // handler must remove the just-created file.
    EXPECT_EQ(run_cli_rc("frobnicate --events-out " + path("bad_events.jsonl")), 2);
    EXPECT_FALSE(fs::exists(path("bad_events.jsonl")));
}

TEST_F(ObsCliTest, HealthOutWritesValidDumpAndDoctorSaysHealthy) {
    run_cli("train --dataset iris --eps 0.1 --mc 2 --epochs 6 --patience 6 --hidden 2"
            " --seed 11 --out " + path("model.pnn") +
            " --health-out " + path("health.json"));

    const Value doc = parse_file(path("health.json"));
    ASSERT_EQ(pnc::obs::validate_health(doc), "");
    EXPECT_EQ(doc.find("meta")->find("tool")->as_string(), "pnc");
    EXPECT_EQ(doc.find("status")->find("verdict")->as_string(), "healthy");
    EXPECT_FALSE(doc.find("status")->find("diverged")->as_bool());
    // The flight recorder captured the run's tail.
    EXPECT_GE(doc.find("ring")->items().size(), 1u);

    std::string output;
    EXPECT_EQ(run_cli_rc("doctor " + path("health.json"), &output), 0);
    EXPECT_NE(output.find("healthy"), std::string::npos) << output;
}

TEST_F(ObsCliTest, DivergentRunIsClassifiedLossDivergenceByDoctor) {
    // An absurd learning rate on the cross-entropy loss under heavy
    // single-sample variation noise makes the seeded run's loss spike past
    // the trailing-median and best-so-far rules (margins of 60%+ over the
    // thresholds, so platform-level FP drift cannot flip the verdict); the
    // watchdog must flag it and `pnc doctor` must name the anomaly kind
    // with the dedicated divergence exit code.
    std::string train_out;
    run_cli_rc("train --dataset iris --eps 0.9 --mc 1 --epochs 30 --patience 30"
               " --hidden 2 --seed 3 --loss xent --lr-theta 50 --lr-omega 5"
               " --out " + path("model.pnn") +
               " --health-out " + path("health.json"),
               &train_out);
    ASSERT_TRUE(fs::exists(path("health.json"))) << train_out;

    const Value doc = parse_file(path("health.json"));
    ASSERT_EQ(pnc::obs::validate_health(doc), "");
    EXPECT_TRUE(doc.find("status")->find("diverged")->as_bool()) << train_out;

    std::string output;
    EXPECT_EQ(run_cli_rc("doctor " + path("health.json"), &output), 4) << output;
    EXPECT_NE(output.find("loss_divergence"), std::string::npos) << output;

    // Doctor usage errors: missing operand and an unreadable path exit 2.
    EXPECT_EQ(run_cli_rc("doctor"), 2);
    std::string missing;
    EXPECT_EQ(run_cli_rc("doctor " + path("nosuch.json"), &missing), 2);
    EXPECT_NE(missing.find("nosuch.json"), std::string::npos) << missing;
}

TEST_F(ObsCliTest, EvalCompiledBackendMatchesReferenceOutput) {
    run_cli("train --dataset iris --eps 0.1 --mc 2 --epochs 4 --patience 4 --hidden 2"
            " --seed 21 --out " + path("model.pnn"));

    // Same command, both backends: the accuracy lines must agree verbatim
    // (the compiled engine is bit-identical, so even the formatted digits
    // cannot differ).
    std::string ref_out, com_out, env_out;
    ASSERT_EQ(run_cli_rc("eval --model " + path("model.pnn") +
                             " --dataset iris --eps 0.1 --mc 4 --backend reference",
                         &ref_out), 0) << ref_out;
    ASSERT_EQ(run_cli_rc("eval --model " + path("model.pnn") +
                             " --dataset iris --eps 0.1 --mc 4 --backend compiled",
                         &com_out), 0) << com_out;
    EXPECT_NE(ref_out.find("test accuracy"), std::string::npos) << ref_out;
    EXPECT_EQ(ref_out, com_out);

    // PNC_INFER_BACKEND selects the backend when the flag is absent.
    ::setenv("PNC_INFER_BACKEND", "compiled", 1);
    ASSERT_EQ(run_cli_rc("eval --model " + path("model.pnn") +
                             " --dataset iris --eps 0.1 --mc 4",
                         &env_out), 0) << env_out;
    ::unsetenv("PNC_INFER_BACKEND");
    EXPECT_EQ(env_out, com_out);
}

TEST_F(ObsCliTest, CompiledBackendRejectsUnsupportedCombinations) {
    // A bad backend value, the unsupported --fault-report combination, and
    // --backend on a command whose allow-list does not know it must all
    // print usage and exit 2 — before any expensive work happens (no model
    // file exists, so reaching the loader would fail differently).
    const std::string eval_base =
        "eval --model " + path("model.pnn") + " --dataset iris";
    for (const std::string& args :
         {eval_base + " --backend turbo",
          eval_base + " --backend compiled --fault-model stuck_open --fault-report " +
              path("f.json"),
          std::string("certify --model m.pnn --dataset iris --backend compiled"),
          std::string("train --dataset iris --backend compiled")}) {
        std::string output;
        EXPECT_EQ(run_cli_rc(args, &output), 2) << args << "\n" << output;
        EXPECT_NE(output.find("error:"), std::string::npos) << output;
        EXPECT_NE(output.find("commands:"), std::string::npos) << output;
    }
    // PNC_INFER_BACKEND garbage is a usage error too, not a crash.
    ::setenv("PNC_INFER_BACKEND", "turbo", 1);
    std::string output;
    EXPECT_EQ(run_cli_rc(eval_base, &output), 2) << output;
    ::unsetenv("PNC_INFER_BACKEND");
    EXPECT_NE(output.find("PNC_INFER_BACKEND"), std::string::npos) << output;
}
