// End-to-end `pnc yield`: drive the real binary (path injected by CMake as
// PNC_CLI_PATH) through the sharded-certification workflow and assert the
// ISSUE acceptance criteria at the process boundary — a merged shard run is
// byte-identical to the single-process run, reports validate against
// pnc-yield-report/1, merged event streams validate against pnc-events/1,
// and the --min-yield certification gate uses its dedicated exit code.
//
// Kept fast the same way test_obs_cli is: a tiny surrogate cache shared by
// all invocations via PNC_ARTIFACTS / PNC_SURROGATE_*.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "obs/events.hpp"
#include "obs/json.hpp"
#include "yield/yield_report.hpp"

#ifndef PNC_CLI_PATH
#error "PNC_CLI_PATH must be defined to the pnc binary location"
#endif

namespace fs = std::filesystem;
using pnc::obs::json::Value;

namespace {

class YieldCliTest : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::temp_directory_path() /
               (std::string("pnc_yield_cli_") + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        ::setenv("PNC_ARTIFACTS", (dir_ / "artifacts").string().c_str(), 1);
        ::setenv("PNC_SURROGATE_SAMPLES", "120", 1);
        ::setenv("PNC_SURROGATE_EPOCHS", "150", 1);
    }

    void TearDown() override {
        ::unsetenv("PNC_ARTIFACTS");
        ::unsetenv("PNC_SURROGATE_SAMPLES");
        ::unsetenv("PNC_SURROGATE_EPOCHS");
        fs::remove_all(dir_);
    }

    int run_cli_rc(const std::string& cli_args, std::string* output = nullptr) {
        const std::string log = (dir_ / "cli.log").string();
        const std::string cmd =
            std::string(PNC_CLI_PATH) + " " + cli_args + " > " + log + " 2>&1";
        const int status = std::system(cmd.c_str());
        if (output) *output += slurp(log);
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    void run_cli(const std::string& cli_args) {
        std::string output;
        const int rc = run_cli_rc(cli_args, &output);
        ASSERT_EQ(rc, 0) << "pnc " << cli_args << "\n" << output;
    }

    /// Train the tiny iris model every yield invocation below shares.
    void train_model() {
        run_cli("train --dataset iris --eps 0.1 --mc 2 --epochs 6 --patience 6"
                " --hidden 2 --seed 3 --out " + path("model.pnn"));
    }

    static std::string slurp(const std::string& path) {
        std::ifstream is(path);
        std::stringstream buffer;
        buffer << is.rdbuf();
        return buffer.str();
    }

    std::string path(const char* leaf) const { return (dir_ / leaf).string(); }

    fs::path dir_;
};

}  // namespace

TEST_F(YieldCliTest, ShardedMergeIsByteIdenticalToSingleProcess) {
    train_model();
    // A stop target the campaign reaches mid-budget, so the merge also has
    // to replay the adaptive truncation to match.
    const std::string flags = " --model " + path("model.pnn") +
                              " --dataset iris --samples 2048 --round 256"
                              " --spec 0.4 --ci-width 0.08";

    run_cli("yield" + flags + " --report " + path("single.json"));
    run_cli("yield" + flags + " --shard 0/2 --report " + path("s0.json") +
            " --events-out " + path("e0.jsonl"));
    run_cli("yield" + flags + " --shard 1/2 --report " + path("s1.json") +
            " --events-out " + path("e1.jsonl"));
    run_cli("yield merge " + path("s0.json") + " " + path("s1.json") +
            " --out " + path("merged.json") +
            " --merge-events " + path("e0.jsonl") + "," + path("e1.jsonl") +
            " --merged-events " + path("events.jsonl"));

    const std::string single = slurp(path("single.json"));
    ASSERT_FALSE(single.empty());
    EXPECT_EQ(single, slurp(path("merged.json")));

    // All three reports validate against pnc-yield-report/1.
    for (const char* leaf : {"single.json", "s0.json", "s1.json", "merged.json"})
        EXPECT_EQ(pnc::yield::validate_yield_report(Value::parse(slurp(path(leaf)))), "")
            << leaf;

    // The merged event stream is a valid pnc-events/1 document carrying the
    // campaign milestones with per-line shard attribution.
    const std::string events = slurp(path("events.jsonl"));
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(pnc::obs::validate_events(events), "") << events.substr(0, 400);
    EXPECT_NE(events.find("\"yield.round\""), std::string::npos);
    EXPECT_NE(events.find("\"yield.finish\""), std::string::npos);
    EXPECT_NE(events.find("\"shard\":1"), std::string::npos);
}

TEST_F(YieldCliTest, MinYieldGateUsesExitCodeThree) {
    train_model();
    const std::string flags = " --model " + path("model.pnn") +
                              " --dataset iris --samples 256 --spec 0.4";
    // An unreachable bar fails certification (exit 3), a trivial bar passes.
    std::string output;
    EXPECT_EQ(run_cli_rc("yield" + flags + " --min-yield 0.999999", &output), 3);
    EXPECT_NE(output.find("NOT CERTIFIED"), std::string::npos) << output;
    output.clear();
    EXPECT_EQ(run_cli_rc("yield" + flags + " --min-yield 0.0", &output), 0);
    EXPECT_NE(output.find("CERTIFIED"), std::string::npos) << output;
}

TEST_F(YieldCliTest, FixedModeAgreesWithReferenceDigits) {
    train_model();
    // `pnc yield --mode fixed` prints the same yield/median/worst numbers
    // the pnn reference path computes; the library-level bit-identity test
    // covers the doubles, this covers the CLI wiring end to end.
    std::string out1, out4;
    ::setenv("PNC_NUM_THREADS", "1", 1);
    EXPECT_EQ(run_cli_rc("yield --model " + path("model.pnn") +
                             " --dataset iris --mode fixed --samples 100 --spec 0.4",
                         &out1), 0) << out1;
    ::setenv("PNC_NUM_THREADS", "4", 1);
    EXPECT_EQ(run_cli_rc("yield --model " + path("model.pnn") +
                             " --dataset iris --mode fixed --samples 100 --spec 0.4",
                         &out4), 0) << out4;
    ::unsetenv("PNC_NUM_THREADS");
    EXPECT_NE(out1.find("yield "), std::string::npos) << out1;
    EXPECT_EQ(out1, out4);
}

TEST_F(YieldCliTest, InvalidInvocationsExitWithUsage) {
    // Each of these is a bad invocation (usage + exit 2), rejected before
    // any expensive work: fixed mode with variance reduction, a malformed
    // shard spec, sharding without a report, certifying a partial shard,
    // comparison flags mixed with campaign-only flags, a bogus subcommand,
    // and merge without --out.
    const std::string base =
        "yield --model " + path("model.pnn") + " --dataset iris";
    for (const std::string& args :
         {base + " --mode fixed --antithetic 1",
          base + " --mode fixed --ci-width 0.01",
          base + " --shard 2of4 --report " + path("r.json"),
          base + " --shard 3/2 --report " + path("r.json"),
          base + " --shard 0/2",
          base + " --shard 0/2 --report " + path("r.json") + " --min-yield 0.5",
          base + " --baseline-model " + path("model.pnn") + " --shard 0/2",
          base + " --mode sometimes",
          std::string("yield frobnicate"),
          std::string("yield merge " + path("a.json"))}) {
        std::string output;
        EXPECT_EQ(run_cli_rc(args, &output), 2) << args << "\n" << output;
        EXPECT_NE(output.find("error:"), std::string::npos) << args << "\n" << output;
    }
}

TEST_F(YieldCliTest, UsageErrorsLandEntirelyOnStderr) {
    // Split-stream check for the yield subcommands: the error line and the
    // help screen both go to stderr, stdout stays byte-empty — a scripted
    // `pnc yield ... > report.json` must never capture half a help text.
    for (const std::string& args :
         {std::string("yield frobnicate"), std::string("yield merge"),
          std::string("yield --bogus 1")}) {
        const std::string out_log = path("usage_out.log");
        const std::string err_log = path("usage_err.log");
        const std::string cmd = std::string(PNC_CLI_PATH) + " " + args + " > " +
                                out_log + " 2> " + err_log;
        const int status = std::system(cmd.c_str());
        EXPECT_EQ(WIFEXITED(status) ? WEXITSTATUS(status) : -1, 2) << args;
        EXPECT_TRUE(slurp(out_log).empty())
            << args << " leaked to stdout: " << slurp(out_log);
        const std::string err = slurp(err_log);
        EXPECT_NE(err.find("error:"), std::string::npos) << args;
        EXPECT_NE(err.find("commands:"), std::string::npos) << args;
    }
}
