// Serial/parallel equivalence suite for the Monte-Carlo engine.
//
// The determinism contract (DESIGN.md, "Threading model"): every MC hot
// path pre-splits one child Rng per sample index from the parent stream
// and reduces results in sample-index order, so training, evaluation,
// yield estimation, corner analysis and certification are bit-identical —
// not merely statistically equivalent — at any thread count. These tests
// run the same seeded workload at 1, 2 and 8 threads and compare results
// to the last bit.
#include <gtest/gtest.h>

#include <vector>

#include "data/dataset.hpp"
#include "pnn/certification.hpp"
#include "pnn/robustness.hpp"
#include "pnn/training.hpp"
#include "runtime/thread_pool.hpp"
#include "surrogate/dataset_builder.hpp"

using namespace pnc;
using math::Matrix;

namespace {

const surrogate::SurrogateModel& det_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 300;
        options.sweep_points = 17;
        const auto dataset =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 400;
        train.mlp.patience = 100;
        return surrogate::SurrogateModel::train(dataset, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

pnn::Pnn make_net(std::uint64_t seed = 61) {
    math::Rng rng(seed);
    return pnn::Pnn({2, 3, 2}, &det_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                    &det_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                    surrogate::DesignSpace::table1(), rng);
}

data::SplitDataset blob_split() {
    math::Rng rng(62);
    data::Dataset ds;
    ds.name = "blobs";
    ds.n_classes = 2;
    ds.features = Matrix(60, 2);
    for (int i = 0; i < 60; ++i) {
        const int label = i % 2;
        ds.labels.push_back(label);
        ds.features(i, 0) = rng.normal(label ? 0.8 : 0.2, 0.08);
        ds.features(i, 1) = rng.normal(label ? 0.2 : 0.8, 0.08);
    }
    return data::split_and_normalize(ds, 9);
}

/// Run fn under each thread count and return one result per count. The
/// global pool is restored to its default size afterwards.
template <typename Fn>
auto sweep_threads(Fn&& fn) {
    std::vector<decltype(fn())> results;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        runtime::set_global_threads(threads);
        results.push_back(fn());
    }
    runtime::set_global_threads(runtime::ThreadPool::default_thread_count());
    return results;
}

void expect_bitwise_equal(const Matrix& a, const Matrix& b, const char* what) {
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << what << " element " << i;
}

}  // namespace

TEST(McDeterminism, EvaluationBitIdenticalAcrossThreadCounts) {
    const auto net = make_net();
    const auto split = blob_split();
    const auto results = sweep_threads([&] {
        pnn::EvalOptions options;
        options.epsilon = 0.1;
        options.n_mc = 24;
        return pnn::evaluate_pnn(net, split.x_test, split.y_test, options);
    });
    for (std::size_t t = 1; t < results.size(); ++t) {
        EXPECT_EQ(results[0].mean_accuracy, results[t].mean_accuracy);
        EXPECT_EQ(results[0].std_accuracy, results[t].std_accuracy);
        ASSERT_EQ(results[0].per_sample_accuracy.size(),
                  results[t].per_sample_accuracy.size());
        for (std::size_t s = 0; s < results[0].per_sample_accuracy.size(); ++s)
            EXPECT_EQ(results[0].per_sample_accuracy[s], results[t].per_sample_accuracy[s])
                << "sample " << s << " at thread count index " << t;
    }
}

TEST(McDeterminism, TrainingBitIdenticalAcrossThreadCounts) {
    const auto split = blob_split();
    struct Outcome {
        pnn::TrainResult result;
        std::vector<Matrix> params;
    };
    const auto outcomes = sweep_threads([&] {
        auto net = make_net();  // same seed -> same initialization every run
        pnn::TrainOptions options;
        options.max_epochs = 12;
        options.patience = 12;
        options.epsilon = 0.1;
        options.n_mc_train = 4;
        options.n_mc_val = 2;
        options.seed = 63;
        const auto result = pnn::train_pnn(net, split, options);
        return Outcome{result, net.snapshot()};
    });
    for (std::size_t t = 1; t < outcomes.size(); ++t) {
        EXPECT_EQ(outcomes[0].result.best_val_loss, outcomes[t].result.best_val_loss);
        EXPECT_EQ(outcomes[0].result.final_train_loss, outcomes[t].result.final_train_loss);
        EXPECT_EQ(outcomes[0].result.best_epoch, outcomes[t].result.best_epoch);
        EXPECT_EQ(outcomes[0].result.epochs_run, outcomes[t].result.epochs_run);
        ASSERT_EQ(outcomes[0].params.size(), outcomes[t].params.size());
        for (std::size_t p = 0; p < outcomes[0].params.size(); ++p)
            expect_bitwise_equal(outcomes[0].params[p], outcomes[t].params[p],
                                 "trained parameter");
    }
}

TEST(McDeterminism, MinibatchTrainingBitIdenticalAcrossThreadCounts) {
    const auto split = blob_split();
    const auto outcomes = sweep_threads([&] {
        auto net = make_net();
        pnn::TrainOptions options;
        options.max_epochs = 6;
        options.patience = 6;
        options.epsilon = 0.1;
        options.n_mc_train = 3;
        options.n_mc_val = 2;
        options.batch_size = 16;
        options.seed = 64;
        pnn::train_pnn(net, split, options);
        return net.snapshot();
    });
    for (std::size_t t = 1; t < outcomes.size(); ++t) {
        ASSERT_EQ(outcomes[0].size(), outcomes[t].size());
        for (std::size_t p = 0; p < outcomes[0].size(); ++p)
            expect_bitwise_equal(outcomes[0][p], outcomes[t][p], "minibatch parameter");
    }
}

TEST(McDeterminism, YieldBitIdenticalAcrossThreadCounts) {
    const auto net = make_net();
    const auto split = blob_split();
    const auto results = sweep_threads([&] {
        return pnn::estimate_yield(net, split.x_test, split.y_test, 0.6, 0.1, 32, 91);
    });
    for (std::size_t t = 1; t < results.size(); ++t) {
        EXPECT_EQ(results[0].yield, results[t].yield);
        EXPECT_EQ(results[0].worst_accuracy, results[t].worst_accuracy);
        EXPECT_EQ(results[0].p5_accuracy, results[t].p5_accuracy);
        EXPECT_EQ(results[0].median_accuracy, results[t].median_accuracy);
    }
}

TEST(McDeterminism, CornerAnalysisBitIdenticalAcrossThreadCounts) {
    const auto net = make_net();
    const auto split = blob_split();
    const auto results = sweep_threads([&] {
        return pnn::worst_corner_accuracy(net, split.x_test, split.y_test, 0.1, 24, 92);
    });
    for (std::size_t t = 1; t < results.size(); ++t) EXPECT_EQ(results[0], results[t]);
}

TEST(McDeterminism, CertificationBitIdenticalAcrossThreadCounts) {
    const auto net = make_net();
    const auto split = blob_split();
    const auto results = sweep_threads([&] {
        pnn::CertificationOptions options;
        options.epsilon = 0.02;
        return pnn::certify(net, split.x_test, split.y_test, options);
    });
    for (std::size_t t = 1; t < results.size(); ++t) {
        EXPECT_EQ(results[0].certified_accuracy, results[t].certified_accuracy);
        EXPECT_EQ(results[0].certified_fraction, results[t].certified_fraction);
        EXPECT_EQ(results[0].samples, results[t].samples);
    }
}

TEST(McDeterminism, SameSeedSameThreadCountIsRepeatable) {
    const auto net = make_net();
    const auto split = blob_split();
    runtime::set_global_threads(2);
    pnn::EvalOptions options;
    options.epsilon = 0.1;
    options.n_mc = 16;
    const auto first = pnn::evaluate_pnn(net, split.x_test, split.y_test, options);
    const auto second = pnn::evaluate_pnn(net, split.x_test, split.y_test, options);
    runtime::set_global_threads(runtime::ThreadPool::default_thread_count());
    ASSERT_EQ(first.per_sample_accuracy.size(), second.per_sample_accuracy.size());
    for (std::size_t s = 0; s < first.per_sample_accuracy.size(); ++s)
        EXPECT_EQ(first.per_sample_accuracy[s], second.per_sample_accuracy[s]);
    EXPECT_EQ(first.mean_accuracy, second.mean_accuracy);
    EXPECT_EQ(first.std_accuracy, second.std_accuracy);
}

TEST(McDeterminism, DifferentSeedsStillDiffer) {
    // Guard against the pre-split accidentally collapsing the stream: two
    // different evaluation seeds must not produce identical sample sets.
    const auto net = make_net();
    const auto split = blob_split();
    pnn::EvalOptions a;
    a.epsilon = 0.1;
    a.n_mc = 16;
    a.seed = 1;
    pnn::EvalOptions b = a;
    b.seed = 2;
    const auto ra = pnn::evaluate_pnn(net, split.x_test, split.y_test, a);
    const auto rb = pnn::evaluate_pnn(net, split.x_test, split.y_test, b);
    bool any_difference = false;
    for (std::size_t s = 0; s < ra.per_sample_accuracy.size(); ++s)
        any_difference |= ra.per_sample_accuracy[s] != rb.per_sample_accuracy[s];
    EXPECT_TRUE(any_difference);
}
