// Training-health observatory suite: watchdog rules on synthetic epoch
// series, flight-recorder bounds, pnc-health/1 validation/classification,
// dump-on-anomaly, and — the ISSUE acceptance criterion — that health
// monitoring keeps training bit-identical at 1 and 4 threads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "obs/config.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pnn/training.hpp"
#include "runtime/thread_pool.hpp"
#include "surrogate/dataset_builder.hpp"

using namespace pnc;
namespace fs = std::filesystem;

namespace {

/// Every test starts and ends with obs disabled, empty sinks, and no
/// flight-recorder output path, so suites compose in any order.
class HealthTest : public ::testing::Test {
protected:
    void SetUp() override { reset_all(); }
    void TearDown() override {
        reset_all();
        unsetenv("PNC_HEALTH_GRAD_LIMIT");
    }

    static void reset_all() {
        obs::set_enabled(false);
        obs::set_health_out("");
        obs::MetricsRegistry::global().reset();
        obs::Tracer::global().reset();
    }
};

/// Feed one synthetic epoch (losses + gradient norms; counter-derived
/// rates come from the registry, untouched unless a test bumps them).
void feed(obs::HealthMonitor& monitor, int epoch, double loss, double grad,
          std::uint64_t nonfinite_grads = 0) {
    obs::EpochHealth e;
    e.epoch = epoch;
    e.train_loss = loss;
    e.val_loss = loss;
    e.grad_norm_theta = grad;
    e.grad_norm_global = grad;
    e.nonfinite_grad_elements = nonfinite_grads;
    monitor.record_epoch(e);
}

bool has_anomaly(const obs::HealthMonitor& monitor, const std::string& kind,
                 const std::string& detail = "") {
    for (const auto& a : monitor.anomalies())
        if (a.kind == kind && (detail.empty() || a.detail == detail)) return true;
    return false;
}

// Small shared surrogates (built once per process) for the training tests.
const surrogate::SurrogateModel& health_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 300;
        options.sweep_points = 17;
        const auto dataset =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 400;
        train.mlp.patience = 100;
        return surrogate::SurrogateModel::train(dataset, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

data::SplitDataset health_blob_split() {
    math::Rng rng(62);
    data::Dataset ds;
    ds.name = "blobs";
    ds.n_classes = 2;
    ds.features = math::Matrix(60, 2);
    for (int i = 0; i < 60; ++i) {
        const int label = i % 2;
        ds.labels.push_back(label);
        ds.features(i, 0) = rng.normal(label ? 0.8 : 0.2, 0.08);
        ds.features(i, 1) = rng.normal(label ? 0.2 : 0.8, 0.08);
    }
    return data::split_and_normalize(ds, 9);
}

struct TrainOutcome {
    pnn::TrainResult result;
    std::vector<math::Matrix> params;
    pnn::EvalResult eval;
};

TrainOutcome run_seeded_workload() {
    const auto split = health_blob_split();
    math::Rng rng(61);
    pnn::Pnn net({2, 3, 2}, &health_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                 &health_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                 surrogate::DesignSpace::table1(), rng);
    pnn::TrainOptions options;
    options.max_epochs = 12;
    options.patience = 12;
    options.epsilon = 0.1;
    options.n_mc_train = 4;
    options.n_mc_val = 2;
    options.seed = 63;
    const auto result = pnn::train_pnn(net, split, options);
    pnn::EvalOptions eval_options;
    eval_options.epsilon = 0.1;
    eval_options.n_mc = 16;
    const auto eval = pnn::evaluate_pnn(net, split.x_test, split.y_test, eval_options);
    return {result, net.snapshot(), eval};
}

fs::path scratch_file(const std::string& name) {
    return fs::temp_directory_path() / ("pnc_health_" + name);
}

}  // namespace

// ------------------------------------------------------------- watchdog

TEST_F(HealthTest, WatchdogFlagsLossSpike) {
    obs::HealthMonitor monitor({}, {});
    for (int epoch = 0; epoch < 10; ++epoch) feed(monitor, epoch, 0.3, 0.5);
    EXPECT_EQ(monitor.anomalies_total(), 0u);
    feed(monitor, 10, 2.0, 0.5);  // > 2.5 x trailing median of 0.3
    EXPECT_TRUE(has_anomaly(monitor, "loss_divergence", "spike"));
    const auto summary = monitor.finish();
    EXPECT_TRUE(summary.diverged);
    EXPECT_EQ(summary.verdict, "loss_divergence");
}

TEST_F(HealthTest, WatchdogFlagsRunawayLoss) {
    obs::HealthMonitor monitor({}, {});
    // Slow creep: 1.15x per epoch stays under the 2.5x spike threshold of
    // the trailing 8-epoch median (1.15^4.5 ~ 1.9x), but climbs far above
    // 3x the best loss after warmup.
    double loss = 0.2;
    for (int epoch = 0; epoch < 20; ++epoch) {
        feed(monitor, epoch, loss, 0.5);
        loss *= 1.15;
    }
    EXPECT_TRUE(has_anomaly(monitor, "loss_divergence", "runaway"));
    EXPECT_FALSE(has_anomaly(monitor, "loss_divergence", "spike"));
}

TEST_F(HealthTest, WatchdogFlagsNonFiniteLoss) {
    obs::HealthMonitor monitor({}, {});
    for (int epoch = 0; epoch < 4; ++epoch) feed(monitor, epoch, 0.3, 0.5);
    feed(monitor, 4, std::numeric_limits<double>::quiet_NaN(), 0.5);
    EXPECT_TRUE(has_anomaly(monitor, "loss_divergence", "non_finite"));
    EXPECT_TRUE(monitor.finish().diverged);
}

TEST_F(HealthTest, WatchdogFlagsGradientExplosion) {
    obs::HealthMonitor monitor({}, {});
    for (int epoch = 0; epoch < 6; ++epoch) feed(monitor, epoch, 0.3, 0.5);
    feed(monitor, 6, 0.3, 1e5);  // over both the absolute limit and 20x median
    EXPECT_TRUE(has_anomaly(monitor, "gradient_explosion", "limit"));
    EXPECT_TRUE(has_anomaly(monitor, "gradient_explosion", "spike"));
    const auto summary = monitor.finish();
    EXPECT_TRUE(summary.diverged);
    EXPECT_EQ(summary.verdict, "gradient_explosion");
    EXPECT_DOUBLE_EQ(summary.max_grad_norm, 1e5);
}

TEST_F(HealthTest, WatchdogFlagsNonFiniteGradients) {
    obs::HealthMonitor monitor({}, {});
    feed(monitor, 0, 0.3, 0.5, /*nonfinite_grads=*/3);
    EXPECT_TRUE(has_anomaly(monitor, "gradient_explosion", "non_finite"));
}

TEST_F(HealthTest, WatchdogFlagsSustainedSaturationAsWarningOnly) {
    auto& registry = obs::MetricsRegistry::global();
    obs::HealthMonitor monitor({}, {});
    for (int epoch = 0; epoch < 10; ++epoch) {
        // Fake a fully saturated clamp_ste epoch via the real counters.
        registry.counter("ad.clamp_ste.elements_total").add(100);
        registry.counter("ad.clamp_ste.saturated_total").add(100);
        feed(monitor, epoch, 0.3, 0.5);
    }
    EXPECT_TRUE(has_anomaly(monitor, "sustained_saturation", "omega_clip"));
    const auto summary = monitor.finish();
    EXPECT_FALSE(summary.diverged) << "saturation is a warning, not divergence";
    EXPECT_EQ(summary.verdict, "sustained_saturation");
}

TEST_F(HealthTest, HealthyRunHasNoAnomalies) {
    obs::HealthMonitor monitor({}, {});
    double loss = 1.0;
    for (int epoch = 0; epoch < 30; ++epoch) {
        feed(monitor, epoch, loss, 0.4 + 0.01 * (epoch % 3));
        loss *= 0.95;
    }
    EXPECT_EQ(monitor.anomalies_total(), 0u);
    const auto summary = monitor.finish();
    EXPECT_FALSE(summary.diverged);
    EXPECT_EQ(summary.verdict, "healthy");
    EXPECT_EQ(summary.epochs, 30);
}

// ------------------------------------------------------- flight recorder

TEST_F(HealthTest, RingBufferIsBounded) {
    obs::HealthConfig config;
    config.ring_depth = 4;
    obs::HealthMonitor monitor(config, {});
    for (int epoch = 0; epoch < 10; ++epoch) feed(monitor, epoch, 0.3, 0.5);
    const auto doc = monitor.document();
    const auto* ring = doc.find("ring");
    ASSERT_NE(ring, nullptr);
    ASSERT_EQ(ring->items().size(), 4u);
    EXPECT_DOUBLE_EQ(ring->items().front().find("epoch")->as_number(), 6.0);
    EXPECT_DOUBLE_EQ(ring->items().back().find("epoch")->as_number(), 9.0);
}

TEST_F(HealthTest, RecordedAnomaliesAreCapped) {
    obs::HealthConfig config;
    config.max_anomalies = 5;
    obs::HealthMonitor monitor(config, {});
    for (int epoch = 0; epoch < 8; ++epoch)
        feed(monitor, epoch, 0.3, 0.5, /*nonfinite_grads=*/1);
    EXPECT_EQ(monitor.anomalies().size(), 5u);
    EXPECT_EQ(monitor.anomalies_total(), 8u);
    const std::string error = obs::validate_health(monitor.document());
    EXPECT_TRUE(error.empty()) << error;
}

TEST_F(HealthTest, DocumentValidatesAndClassifiesAfterDivergence) {
    obs::HealthMonitor monitor({}, {{"seed", "63"}, {"lr_theta", "0.1"}});
    for (int epoch = 0; epoch < 10; ++epoch) feed(monitor, epoch, 0.3, 0.5);
    feed(monitor, 10, 5.0, 0.5);
    monitor.finish();

    const auto doc = monitor.document();
    const std::string error = obs::validate_health(doc);
    ASSERT_TRUE(error.empty()) << error;

    // Round-trip through text, as `pnc doctor` consumes it.
    const auto parsed = obs::json::Value::parse(doc.dump());
    const auto reading = obs::classify_health(parsed);
    EXPECT_EQ(reading.verdict, "loss_divergence");
    EXPECT_TRUE(reading.diverged);
    EXPECT_EQ(reading.epochs_run, 11);
    ASSERT_FALSE(reading.kinds.empty());
    EXPECT_EQ(reading.kinds[0].first, "loss_divergence");
    EXPECT_EQ(parsed.find("meta")->find("seed")->as_string(), "63");
}

TEST_F(HealthTest, NonFiniteLossDumpsAsNullAndStillValidates) {
    obs::HealthMonitor monitor({}, {});
    feed(monitor, 0, std::numeric_limits<double>::quiet_NaN(), 0.5);
    const auto doc = obs::json::Value::parse(monitor.document().dump());
    const std::string error = obs::validate_health(doc);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(doc.find("ring")->items().front().find("train_loss")->kind(),
              obs::json::Value::Kind::kNull);
    EXPECT_TRUE(obs::classify_health(doc).diverged);
}

TEST_F(HealthTest, ValidateHealthRejectsMalformedDocuments) {
    using obs::json::Value;
    EXPECT_FALSE(obs::validate_health(Value::number(3.0)).empty());

    obs::HealthMonitor monitor({}, {});
    feed(monitor, 0, 0.3, 0.5);

    auto wrong_schema = monitor.document();
    wrong_schema.set("schema", Value::string("pnc-health/2"));
    EXPECT_FALSE(obs::validate_health(wrong_schema).empty());

    auto no_status = monitor.document();
    no_status.set("status", Value::null());
    EXPECT_FALSE(obs::validate_health(no_status).empty());

    auto bad_verdict = monitor.document();
    auto status = Value::object();
    status.set("epochs_run", Value::number(1));
    status.set("anomalies_total", Value::number(0));
    status.set("diverged", Value::boolean(false));
    status.set("verdict", Value::string("mystery"));
    bad_verdict.set("status", std::move(status));
    EXPECT_FALSE(obs::validate_health(bad_verdict).empty());

    auto bad_ring = monitor.document();
    bad_ring.set("ring", Value::number(0));
    EXPECT_FALSE(obs::validate_health(bad_ring).empty());

    EXPECT_THROW(obs::classify_health(wrong_schema), std::runtime_error);
}

TEST_F(HealthTest, DumpIsWrittenOnFirstAnomaly) {
    const fs::path dump = scratch_file("first_anomaly.json");
    fs::remove(dump);
    obs::set_health_out(dump.string(), "test_health");
    obs::HealthMonitor monitor({}, {});
    for (int epoch = 0; epoch < 6; ++epoch) feed(monitor, epoch, 0.3, 0.5);
    ASSERT_FALSE(fs::exists(dump)) << "no anomaly yet, no dump yet";
    feed(monitor, 6, 5.0, 0.5);  // spike -> immediate flush
    ASSERT_TRUE(fs::exists(dump));

    std::ifstream in(dump);
    std::stringstream ss;
    ss << in.rdbuf();
    const auto doc = obs::json::Value::parse(ss.str());
    EXPECT_TRUE(obs::validate_health(doc).empty());
    EXPECT_EQ(doc.find("meta")->find("tool")->as_string(), "test_health");
    EXPECT_TRUE(obs::classify_health(doc).diverged);
    fs::remove(dump);
}

// ------------------------------------------------- train_pnn integration

TEST_F(HealthTest, TrainingRecordsHealthSeriesAndSummary) {
    obs::set_enabled(true);
    const auto outcome = run_seeded_workload();
    EXPECT_TRUE(outcome.result.health.monitored);
    EXPECT_FALSE(outcome.result.health.diverged);
    EXPECT_GT(outcome.result.health.max_grad_norm, 0.0);

    const auto snapshot = obs::MetricsRegistry::global().snapshot();
    bool found = false;
    for (const auto& [name, values] : snapshot.series)
        if (name == "health.grad_norm_global") {
            found = true;
            EXPECT_EQ(values.size(),
                      static_cast<std::size_t>(outcome.result.epochs_run));
        }
    EXPECT_TRUE(found);
    // The instrumentation counters fired (clamp_ste runs per forward).
    EXPECT_GT(obs::MetricsRegistry::global()
                  .counter("ad.clamp_ste.elements_total")
                  .value(),
              0u);
    EXPECT_GT(obs::MetricsRegistry::global()
                  .counter("surrogate.ood.features_total")
                  .value(),
              0u);
}

TEST_F(HealthTest, UnmonitoredTrainingLeavesHealthEmpty) {
    const auto outcome = run_seeded_workload();
    EXPECT_FALSE(outcome.result.health.monitored);
    EXPECT_EQ(outcome.result.health.anomalies, 0u);
    EXPECT_EQ(outcome.result.health.verdict, "healthy");
}

TEST_F(HealthTest, MonitoredTrainingBitIdenticalAtOneAndFourThreads) {
    // The ISSUE acceptance criterion: health monitoring enabled vs disabled
    // is bit-identical for trained parameters and test accuracy at 1 and 4
    // threads. Gradient-norm extraction reads leaf adjoints after backward,
    // saturation rates read counters — no Rng stream is ever touched.
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        runtime::set_global_threads(threads);

        reset_all();
        const auto plain = run_seeded_workload();

        obs::set_enabled(true);
        const auto observed = run_seeded_workload();
        ASSERT_TRUE(observed.result.health.monitored);

        EXPECT_EQ(plain.result.best_val_loss, observed.result.best_val_loss)
            << threads << " threads";
        EXPECT_EQ(plain.result.final_train_loss, observed.result.final_train_loss);
        EXPECT_EQ(plain.result.epochs_run, observed.result.epochs_run);
        ASSERT_EQ(plain.params.size(), observed.params.size());
        for (std::size_t p = 0; p < plain.params.size(); ++p) {
            ASSERT_EQ(plain.params[p].size(), observed.params[p].size());
            for (std::size_t i = 0; i < plain.params[p].size(); ++i)
                ASSERT_EQ(plain.params[p][i], observed.params[p][i])
                    << threads << " threads, parameter " << p << " element " << i;
        }
        EXPECT_EQ(plain.eval.mean_accuracy, observed.eval.mean_accuracy);
        EXPECT_EQ(plain.eval.std_accuracy, observed.eval.std_accuracy);
        ASSERT_EQ(plain.eval.per_sample_accuracy.size(),
                  observed.eval.per_sample_accuracy.size());
        for (std::size_t s = 0; s < plain.eval.per_sample_accuracy.size(); ++s)
            EXPECT_EQ(plain.eval.per_sample_accuracy[s],
                      observed.eval.per_sample_accuracy[s]);
    }
    runtime::set_global_threads(runtime::ThreadPool::default_thread_count());
}

TEST_F(HealthTest, SensitizedTrainingWritesDivergentDump) {
    // PNC_HEALTH_GRAD_LIMIT makes any finite gradient an "explosion", so a
    // perfectly ordinary run must produce a divergent flight recorder —
    // exercising the train_pnn -> monitor -> dump path deterministically.
    setenv("PNC_HEALTH_GRAD_LIMIT", "1e-12", 1);
    const fs::path dump = scratch_file("sensitized.json");
    fs::remove(dump);
    obs::set_health_out(dump.string(), "test_health");
    obs::set_enabled(true);

    const auto outcome = run_seeded_workload();
    EXPECT_TRUE(outcome.result.health.diverged);
    EXPECT_EQ(outcome.result.health.verdict, "gradient_explosion");

    ASSERT_TRUE(fs::exists(dump));
    std::ifstream in(dump);
    std::stringstream ss;
    ss << in.rdbuf();
    const auto reading = obs::classify_health(obs::json::Value::parse(ss.str()));
    EXPECT_TRUE(reading.diverged);
    EXPECT_EQ(reading.verdict, "gradient_explosion");
    EXPECT_EQ(reading.epochs_run, outcome.result.epochs_run);
    fs::remove(dump);
}
