// Concurrent soak of the serving runtime — the TSan target.
//
// Many submitter threads hammer a ServePipeline in timed (deadline-flush)
// mode while a churn thread hot-swaps and evicts registry entries and
// periodically resets the global metrics registry. The assertions are
// lifetime invariants, not bit-level ones (test_serve.cpp owns those):
//
//   * every future either yields a Prediction carrying the content hash of
//     a plan that was installed at some point, or fails with a typed
//     ServeError — never a crash, never a mixed-plan row;
//   * shed (queue-full) and unknown-model rejections are typed and leave
//     the pipeline serviceable;
//   * the pipeline drains and shuts down cleanly with requests in flight.
//
// Run under TSan via the CI sanitize job (ctest -R ...|Serve).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/registry.hpp"
#include "obs/metrics.hpp"
#include "pnn/training.hpp"
#include "serve/pipeline.hpp"
#include "serve/registry.hpp"
#include "surrogate/dataset_builder.hpp"
#include "surrogate/design_space.hpp"

using namespace pnc;

namespace {

const surrogate::SurrogateModel& soak_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 250;
        options.sweep_points = 17;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 300;
        train.mlp.patience = 80;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

pnn::Pnn make_net(const data::SplitDataset& split, std::uint64_t seed) {
    math::Rng rng(seed);
    return pnn::Pnn({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                    &soak_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                    &soak_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                    surrogate::DesignSpace::table1(), rng);
}

}  // namespace

TEST(ServeSoak, SubmittersVersusHotSwapVersusEvictionVersusMetricsReset) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);

    // Three parameterizations of the same topology: distinct content hashes,
    // interchangeable request shapes.
    std::vector<pnn::Pnn> nets;
    std::set<std::uint64_t> known_hashes;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        nets.push_back(make_net(split, seed));
        known_hashes.insert(serve::ModelRegistry::content_hash(nets.back()));
    }
    const std::vector<std::string> names = {"m0", "m1"};
    const std::vector<double> features(split.n_features(), 0.25);

    obs::set_enabled(true);
    serve::ModelRegistry registry(/*capacity=*/2);
    registry.install("m0", nets[0]);
    registry.install("m1", nets[1]);

    serve::ServeOptions options;
    options.max_batch = 8;
    options.flush_deadline_ms = 0.05;  // tiny deadline: exercise timed flushes
    options.queue_capacity = 64;

    constexpr int kSubmitters = 6;
    constexpr int kRequestsPerSubmitter = 400;
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> unknown{0};
    std::atomic<bool> churn_stop{false};

    {
        serve::ServePipeline pipeline(registry, options);

        // Churn: hot-swap both names across the three nets, evict/reinstall,
        // and reset the metrics registry mid-flight.
        std::thread churn([&] {
            std::mt19937_64 rng(7);
            int round = 0;
            while (!churn_stop.load(std::memory_order_relaxed)) {
                const std::string& name = names[round % names.size()];
                switch (round % 4) {
                    case 0:
                    case 1: registry.install(name, nets[rng() % nets.size()]); break;
                    case 2: registry.evict(name); break;
                    case 3: obs::MetricsRegistry::global().reset(); break;
                }
                ++round;
                std::this_thread::yield();
            }
            // Leave both names present so late submitters can finish.
            registry.install("m0", nets[0]);
            registry.install("m1", nets[1]);
        });

        std::vector<std::thread> submitters;
        for (int t = 0; t < kSubmitters; ++t) {
            submitters.emplace_back([&, t] {
                std::vector<std::future<serve::Prediction>> futures;
                for (int i = 0; i < kRequestsPerSubmitter; ++i) {
                    const std::string& name = names[(t + i) % names.size()];
                    try {
                        futures.push_back(pipeline.submit(name, features));
                    } catch (const serve::ServeError& e) {
                        if (e.code() == serve::ServeErrorCode::kQueueFull)
                            shed.fetch_add(1, std::memory_order_relaxed);
                        else if (e.code() == serve::ServeErrorCode::kUnknownModel)
                            unknown.fetch_add(1, std::memory_order_relaxed);
                        else
                            ADD_FAILURE() << "unexpected ServeError "
                                          << serve::serve_error_name(e.code());
                    }
                }
                for (auto& f : futures) {
                    const serve::Prediction p = f.get();
                    EXPECT_EQ(p.outputs.size(), static_cast<std::size_t>(split.n_classes));
                    EXPECT_TRUE(known_hashes.count(p.model_hash))
                        << "served by a plan that was never installed";
                    EXPECT_GE(p.predicted_class, 0);
                    completed.fetch_add(1, std::memory_order_relaxed);
                }
            });
        }
        for (auto& thread : submitters) thread.join();
        churn_stop.store(true, std::memory_order_relaxed);
        churn.join();
        pipeline.drain();

        // The pipeline is still serviceable after the storm.
        auto last = pipeline.submit_or_wait("m0", features);
        pipeline.drain();
        EXPECT_TRUE(known_hashes.count(last.get().model_hash));
    }

    const std::uint64_t total =
        static_cast<std::uint64_t>(kSubmitters) * kRequestsPerSubmitter;
    EXPECT_EQ(completed.load() + shed.load() + unknown.load(), total);
    EXPECT_GT(completed.load(), 0u);
    obs::set_enabled(false);
}

TEST(ServeSoak, DestructionWithParkedRequestsIsClean) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
    const auto net = make_net(split, 5);
    serve::ModelRegistry registry;
    registry.install("m", net);
    const std::vector<double> features(split.n_features(), 0.5);

    // Destroy the pipeline with requests parked in the queue: they must all
    // fail with the typed shutdown error, and nothing may leak or hang.
    std::vector<std::future<serve::Prediction>> parked;
    {
        serve::ServeOptions options;
        options.max_batch = 64;
        options.deterministic = true;  // partial batch is held, never flushed
        serve::ServePipeline pipeline(registry, options);
        pipeline.pause();
        for (int i = 0; i < 5; ++i) parked.push_back(pipeline.submit("m", features));
    }
    for (auto& f : parked) {
        try {
            f.get();
            ADD_FAILURE() << "parked request survived pipeline destruction";
        } catch (const serve::ServeError& e) {
            EXPECT_EQ(e.code(), serve::ServeErrorCode::kShutdown);
        }
    }
}
