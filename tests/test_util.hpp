// Shared test helpers: finite-difference gradient checking against the
// autodiff engine.
#pragma once

#include <gtest/gtest.h>

#include <functional>

#include "autodiff/ops.hpp"

namespace pnc::testutil {

/// Builds a scalar expression from leaf parameters. The callable must
/// rebuild the graph from the *current* leaf values on every call.
using ScalarBuilder = std::function<ad::Var()>;

/// Verify d(expr)/d(leaf) for every element of every leaf against central
/// finite differences. The builder is re-invoked after each perturbation.
inline void expect_gradients_match(const std::vector<ad::Var>& leaves,
                                   const ScalarBuilder& build, double step = 1e-6,
                                   double tolerance = 1e-5) {
    // Analytic gradients.
    for (const auto& leaf : leaves) leaf.zero_grad();
    ad::Var root = build();
    ad::backward(root);
    std::vector<math::Matrix> analytic;
    for (const auto& leaf : leaves) analytic.push_back(leaf.grad());

    for (std::size_t p = 0; p < leaves.size(); ++p) {
        math::Matrix values = leaves[p].value();
        for (std::size_t i = 0; i < values.size(); ++i) {
            const double original = values[i];
            values[i] = original + step;
            leaves[p].set_value(values);
            const double f_plus = build().scalar();
            values[i] = original - step;
            leaves[p].set_value(values);
            const double f_minus = build().scalar();
            values[i] = original;
            leaves[p].set_value(values);
            const double numeric = (f_plus - f_minus) / (2.0 * step);
            EXPECT_NEAR(analytic[p][i], numeric, tolerance)
                << "leaf " << p << " element " << i;
        }
    }
}

}  // namespace pnc::testutil
