// Certified-robustness tests: soundness of the interval propagation
// (certified bounds must contain every sampled realization), Lipschitz
// machinery, and the relation between certified and empirical accuracy.
#include <gtest/gtest.h>

#include <cmath>

#include "data/registry.hpp"
#include "pnn/certification.hpp"
#include "pnn/training.hpp"

using namespace pnc;
using math::Matrix;
using pnn::CertificationOptions;
using pnn::CertifiedScope;
using pnn::Interval;

namespace {

const surrogate::SurrogateModel& cert_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 300;
        options.sweep_points = 17;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 400;
        train.mlp.patience = 100;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

struct Fixture {
    data::SplitDataset split;
    pnn::Pnn net;
};

Fixture& fixture() {
    static Fixture fx = [] {
        auto split = data::split_and_normalize(data::make_dataset("iris"), 44);
        math::Rng rng(91);
        pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                     &cert_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                     &cert_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                     surrogate::DesignSpace::table1(), rng);
        pnn::TrainOptions options;
        options.max_epochs = 300;
        options.patience = 120;
        pnn::train_pnn(net, split, options);
        return Fixture{std::move(split), std::move(net)};
    }();
    return fx;
}

}  // namespace

TEST(Lipschitz, SingleLayerMatchesColumnNorm) {
    math::Rng rng(1);
    surrogate::Mlp mlp({2, 2}, rng);  // single linear layer
    // Set W = [[1, -3], [2, 4]]: column abs sums 3 and 7 -> L = 7.
    mlp.weight(0).set_value(Matrix{{1.0, -3.0}, {2.0, 4.0}});
    EXPECT_DOUBLE_EQ(pnn::mlp_lipschitz_inf(mlp), 7.0);
}

TEST(Lipschitz, BoundsActualPerturbations) {
    math::Rng rng(2);
    const surrogate::Mlp mlp({3, 5, 4, 2}, rng);
    const double l = pnn::mlp_lipschitz_inf(mlp);
    for (int trial = 0; trial < 20; ++trial) {
        const Matrix x = rng.uniform_matrix(1, 3, 0.0, 1.0);
        Matrix x2 = x;
        const std::size_t c = rng.index(3);
        const double delta = rng.uniform(-0.1, 0.1);
        x2(0, c) += delta;
        const Matrix y1 = mlp.predict(x);
        const Matrix y2 = mlp.predict(x2);
        EXPECT_LE(math::max_abs_diff(y1, y2), l * std::abs(delta) + 1e-12);
    }
}

TEST(CertifiedEta, ZeroEpsIsPointInterval) {
    const auto& fx = fixture();
    const auto eta = pnn::certified_eta_interval(fx.net.layer(0).activation(), 0.0);
    const auto nominal = fx.net.layer(0).activation().eta_value().to_array();
    for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_DOUBLE_EQ(eta[c].lo, nominal[c]);
        EXPECT_DOUBLE_EQ(eta[c].hi, nominal[c]);
    }
}

TEST(CertifiedEta, ContainsSampledRealizations) {
    const auto& fx = fixture();
    const double eps = 0.05;
    const auto& param = fx.net.layer(0).activation();
    const auto bounds = pnn::certified_eta_interval(param, eps);
    const circuit::VariationModel model(eps);
    math::Rng rng(7);
    for (int s = 0; s < 30; ++s) {
        const Matrix factors = model.sample_factors(rng, 1, 7);
        const Matrix eta = param.eta(1, &factors).value();
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_TRUE(bounds[c].contains(eta(0, c)))
                << "component " << c << ": " << eta(0, c) << " outside [" << bounds[c].lo
                << ", " << bounds[c].hi << "]";
    }
}

TEST(CertifiedBounds, ZeroEpsEqualsNominalForward) {
    const auto& fx = fixture();
    CertificationOptions options;
    options.epsilon = 0.0;
    std::vector<double> input(fx.split.n_features(), 0.5);
    const auto bounds = pnn::certified_output_bounds(fx.net, input, options);
    const Matrix nominal = fx.net.predict(Matrix::row(input));
    ASSERT_EQ(bounds.size(), nominal.cols());
    for (std::size_t j = 0; j < bounds.size(); ++j) {
        EXPECT_NEAR(bounds[j].lo, nominal(0, j), 1e-9);
        EXPECT_NEAR(bounds[j].hi, nominal(0, j), 1e-9);
    }
}

TEST(CertifiedBounds, SoundnessAgainstSampledVariation) {
    // The central property: every Monte-Carlo realization of the crossbar
    // variation must land inside the certified output intervals.
    const auto& fx = fixture();
    const double eps = 0.08;
    CertificationOptions options;
    options.epsilon = eps;
    options.scope = CertifiedScope::kCrossbarOnly;

    math::Rng rng(17);
    const circuit::VariationModel model(eps);
    for (int sample = 0; sample < 5; ++sample) {
        std::vector<double> input(fx.split.n_features());
        for (auto& v : input) v = rng.uniform(0.0, 1.0);
        const auto bounds = pnn::certified_output_bounds(fx.net, input, options);

        for (int trial = 0; trial < 40; ++trial) {
            // Crossbar-only scope: keep the nonlinear circuits nominal.
            pnn::NetworkVariation factors = fx.net.sample_variation(model, rng);
            for (auto& layer : factors) {
                layer.omega_act = Matrix(layer.omega_act.rows(), 7, 1.0);
                layer.omega_neg = Matrix(layer.omega_neg.rows(), 7, 1.0);
            }
            const Matrix out = fx.net.predict(Matrix::row(input), &factors);
            for (std::size_t j = 0; j < bounds.size(); ++j) {
                EXPECT_GE(out(0, j), bounds[j].lo - 1e-9);
                EXPECT_LE(out(0, j), bounds[j].hi + 1e-9);
            }
        }
    }
}

TEST(Certify, CertifiedAccuracyIsLowerBound) {
    const auto& fx = fixture();
    CertificationOptions options;
    options.epsilon = 0.03;
    const auto cert = pnn::certify(fx.net, fx.split.x_test, fx.split.y_test, options);
    EXPECT_LE(cert.certified_accuracy, cert.certified_fraction);

    // Empirical accuracy under the same variation can only be higher.
    pnn::EvalOptions eval;
    eval.epsilon = 0.03;
    eval.n_mc = 50;
    const auto mc = pnn::evaluate_pnn(fx.net, fx.split.x_test, fx.split.y_test, eval);
    EXPECT_LE(cert.certified_accuracy, mc.mean_accuracy + 1e-9);
}

TEST(Certify, TightensAsEpsShrinks) {
    const auto& fx = fixture();
    CertificationOptions tight;
    tight.epsilon = 0.01;
    CertificationOptions loose;
    loose.epsilon = 0.10;
    const auto a = pnn::certify(fx.net, fx.split.x_test, fx.split.y_test, tight);
    const auto b = pnn::certify(fx.net, fx.split.x_test, fx.split.y_test, loose);
    EXPECT_GE(a.certified_fraction + 1e-12, b.certified_fraction);
    // At tiny eps, a trained network certifies a nontrivial share.
    EXPECT_GT(a.certified_fraction, 0.5);
}

TEST(Certify, FullLipschitzIsMoreConservative) {
    const auto& fx = fixture();
    CertificationOptions crossbar;
    crossbar.epsilon = 0.02;
    crossbar.scope = CertifiedScope::kCrossbarOnly;
    CertificationOptions full;
    full.epsilon = 0.02;
    full.scope = CertifiedScope::kFullLipschitz;
    const auto a = pnn::certify(fx.net, fx.split.x_test, fx.split.y_test, crossbar);
    const auto b = pnn::certify(fx.net, fx.split.x_test, fx.split.y_test, full);
    EXPECT_GE(a.certified_fraction + 1e-12, b.certified_fraction);
}

TEST(Certify, Validation) {
    const auto& fx = fixture();
    EXPECT_THROW(pnn::certify(fx.net, fx.split.x_test, {0}, {}), std::invalid_argument);
    EXPECT_THROW(pnn::certified_output_bounds(fx.net, {0.5}, {}), std::invalid_argument);
}
