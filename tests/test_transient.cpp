// Transient-analysis and power-analysis tests: backward-Euler integration
// against analytic RC responses, EGT gate-capacitance latency behaviour and
// static power accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/power.hpp"
#include "circuit/transient.hpp"

using namespace pnc;
using circuit::Netlist;
using circuit::NonlinearCircuitKind;

// ---- netlist capacitors --------------------------------------------------

TEST(Capacitors, Validation) {
    Netlist net;
    const auto a = net.node("a");
    EXPECT_THROW(net.add_capacitor(a, a, 1e-9), std::invalid_argument);
    EXPECT_THROW(net.add_capacitor(a, Netlist::kGround, 0.0), std::invalid_argument);
    net.add_capacitor(a, Netlist::kGround, 1e-9);
    EXPECT_EQ(net.capacitors().size(), 1u);
    EXPECT_NE(net.to_spice().find("C1 "), std::string::npos);
}

// ---- RC analytic checks -----------------------------------------------------

TEST(Transient, RcChargingMatchesAnalytic) {
    // R-C low-pass driven by a step: v(t) = V (1 - exp(-t / RC)).
    Netlist net;
    const auto in = net.node("in");
    const auto out = net.node("out");
    net.add_voltage_source(in, 0.0);
    const double r = 10e3, c = 1e-9;  // tau = 10 us
    net.add_resistor(in, out, r);
    net.add_capacitor(out, Netlist::kGround, c);

    circuit::TransientOptions options;
    options.time_step = 2e-7;
    options.duration = 50e-6;
    const circuit::TransientSolver solver(options);
    const auto result = solver.simulate(net, [&](double t, Netlist& n) {
        n.set_source_voltage(in, t > 0.0 ? 1.0 : 0.0);
    });

    const auto waveform = result.node_waveform(out);
    for (std::size_t i = 1; i < result.time.size(); i += 25) {
        const double expected = 1.0 - std::exp(-result.time[i] / (r * c));
        EXPECT_NEAR(waveform[i], expected, 0.02) << "t=" << result.time[i];
    }
    // After 5 tau the output has settled.
    EXPECT_NEAR(waveform.back(), 1.0, 0.01);
}

TEST(Transient, RcDischargeTimeConstant) {
    // Capacitor charged to 1 V through a divider settles at the divider
    // voltage with tau = (R1 || R2) C.
    Netlist net;
    const auto in = net.node("in");
    const auto out = net.node("out");
    net.add_voltage_source(in, 1.0);
    net.add_resistor(in, out, 20e3);
    net.add_resistor(out, Netlist::kGround, 20e3);
    net.add_capacitor(out, Netlist::kGround, 1e-9);

    circuit::TransientOptions options;
    options.time_step = 2e-7;
    options.duration = 60e-6;
    const auto result = circuit::TransientSolver(options).simulate(net);
    const auto waveform = result.node_waveform(out);
    // DC start: already at 0.5 V, stays there.
    for (double v : waveform) EXPECT_NEAR(v, 0.5, 1e-6);
}

TEST(Transient, Validation) {
    Netlist net;
    net.add_voltage_source(net.node("a"), 1.0);
    circuit::TransientOptions bad;
    bad.time_step = 0.0;
    EXPECT_THROW(circuit::TransientSolver(bad).simulate(net), std::invalid_argument);
}

// ---- EGT gate capacitance & latency --------------------------------------------

TEST(Transient, GateCapacitancesScaleWithArea) {
    auto net = circuit::build_nonlinear_circuit(
        circuit::default_omega(NonlinearCircuitKind::kPtanh), NonlinearCircuitKind::kPtanh);
    const auto before = net.capacitors().size();
    circuit::add_egt_gate_capacitances(net);
    EXPECT_EQ(net.capacitors().size(), before + net.transistors().size());
    for (const auto& cap : net.capacitors()) {
        EXPECT_GT(cap.capacitance, 0.0);
        EXPECT_LT(cap.capacitance, 1e-6);
    }
}

TEST(Transient, PtanhStepResponseSettlesInMilliseconds) {
    // Printed neuromorphic circuits are slow by silicon standards: the
    // settle time must be physical (micro- to milliseconds), not zero and
    // not beyond the simulation window.
    circuit::TransientOptions options;
    options.time_step = 20e-6;
    options.duration = 50e-3;
    const double latency = circuit::measure_step_response_latency(
        circuit::default_omega(NonlinearCircuitKind::kPtanh), NonlinearCircuitKind::kPtanh,
        0.02, options);
    EXPECT_GT(latency, options.time_step);
    EXPECT_LT(latency, options.duration);
}

TEST(Transient, LargerGateAreaIsSlower) {
    // The ptanh circuit's second gate is driven through the kOhm-range R3,
    // so its settle time is dominated by R3 * C_gate with C_gate ~ W * L:
    // a bigger transistor must be measurably slower.
    circuit::TransientOptions options;
    options.time_step = 5e-6;
    options.duration = 80e-3;
    circuit::Omega small = circuit::default_omega(NonlinearCircuitKind::kPtanh);
    small.w = 200.0;
    small.l = 10.0;
    circuit::Omega large = small;
    large.w = 800.0;
    large.l = 70.0;
    const double fast = circuit::measure_step_response_latency(
        small, NonlinearCircuitKind::kPtanh, 0.02, options);
    const double slow = circuit::measure_step_response_latency(
        large, NonlinearCircuitKind::kPtanh, 0.02, options);
    EXPECT_GT(slow, 2.0 * fast);
}

// ---- power ------------------------------------------------------------------------

TEST(Power, ResistorDividerAnalytic) {
    Netlist net;
    const auto in = net.node("in");
    const auto mid = net.node("mid");
    net.add_voltage_source(in, 1.0);
    net.add_resistor(in, mid, 1000.0);
    net.add_resistor(mid, Netlist::kGround, 1000.0);
    const auto report = circuit::analyze_power(net);
    // 1 V across 2 kOhm: P = 0.5 mW total, 0.25 mW per resistor.
    EXPECT_NEAR(report.resistor_watts, 0.5e-3, 1e-9);
    EXPECT_DOUBLE_EQ(report.transistor_watts, 0.0);
    ASSERT_EQ(report.source_currents.size(), 1u);
    EXPECT_NEAR(report.source_currents[0], 0.5e-3, 1e-9);
}

TEST(Power, EnergyConservation) {
    // Total dissipation equals the power delivered by the sources.
    auto net = circuit::build_nonlinear_circuit(
        circuit::default_omega(NonlinearCircuitKind::kPtanh), NonlinearCircuitKind::kPtanh);
    net.set_source_voltage(net.find_node("in"), 0.7);
    const auto solution = circuit::DcSolver().solve(net);
    const auto report = circuit::analyze_power(net, solution);
    double delivered = 0.0;
    for (std::size_t s = 0; s < net.sources().size(); ++s)
        delivered += net.sources()[s].voltage * report.source_currents[s];
    EXPECT_NEAR(report.total(), delivered, 1e-9 + 1e-6 * std::abs(delivered));
}

TEST(Power, InverterBurnsMoreWhenOn) {
    Netlist net;
    const auto vdd = net.node("vdd");
    const auto gate = net.node("g");
    const auto drain = net.node("d");
    net.add_voltage_source(vdd, 1.0);
    net.add_voltage_source(gate, 0.0);
    net.add_resistor(vdd, drain, 100e3);
    net.add_transistor(drain, gate, Netlist::kGround, circuit::Egt(600.0, 20.0));
    const double off_power = circuit::analyze_power(net).total();
    net.set_source_voltage(gate, 1.0);
    const double on_power = circuit::analyze_power(net).total();
    EXPECT_GT(on_power, 10.0 * off_power);
}

TEST(Power, RejectsMismatchedSolution) {
    Netlist net;
    net.add_voltage_source(net.node("a"), 1.0);
    circuit::DcSolution bogus;
    bogus.voltages = {0.0};
    EXPECT_THROW(circuit::analyze_power(net, bogus), std::invalid_argument);
}
