// Cross-cutting property suites: invariants that must hold over swept
// parameters — linear-circuit superposition, crossbar closed form vs MNA
// over random columns, EGT monotonicity over geometry, design-space
// projection idempotence, training determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "circuit/crossbar.hpp"
#include "circuit/nonlinear_circuit.hpp"
#include "data/registry.hpp"
#include "faults/fault_model.hpp"
#include "fit/ptanh_fit.hpp"
#include "infer/engine.hpp"
#include "math/sobol.hpp"
#include "pnn/serialize.hpp"
#include "pnn/training.hpp"
#include "surrogate/design_space.hpp"

using namespace pnc;
using circuit::Netlist;

// ---- DC solver: linear-circuit superposition --------------------------------

class SuperpositionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SuperpositionProperty, LinearNetworkIsAdditiveInSources) {
    // For resistor-only networks the node voltages are linear in the source
    // vector: v(a + b) = v(a) + v(b) - v(0).
    math::Rng rng(static_cast<std::uint64_t>(GetParam()));
    Netlist net;
    const auto s1 = net.node("s1");
    const auto s2 = net.node("s2");
    std::vector<circuit::NodeId> inner;
    for (int i = 0; i < 4; ++i) inner.push_back(net.node("n" + std::to_string(i)));
    net.add_voltage_source(s1, 0.0);
    net.add_voltage_source(s2, 0.0);
    // Random connected resistor mesh.
    for (std::size_t i = 0; i < inner.size(); ++i) {
        net.add_resistor(s1, inner[i], rng.uniform(1e3, 1e5));
        net.add_resistor(s2, inner[i], rng.uniform(1e3, 1e5));
        net.add_resistor(inner[i], Netlist::kGround, rng.uniform(1e3, 1e5));
        if (i > 0) net.add_resistor(inner[i - 1], inner[i], rng.uniform(1e3, 1e5));
    }
    const circuit::DcSolver solver;
    const auto solve_at = [&](double v1, double v2) {
        net.set_source_voltage(s1, v1);
        net.set_source_voltage(s2, v2);
        return solver.solve(net).voltages;
    };
    const auto va = solve_at(0.8, 0.0);
    const auto vb = solve_at(0.0, 0.6);
    const auto vab = solve_at(0.8, 0.6);
    for (const auto node : inner)
        EXPECT_NEAR(vab[node], va[node] + vb[node], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Meshes, SuperpositionProperty, ::testing::Values(1, 2, 3, 4, 5));

// ---- crossbar: closed form vs MNA over random columns ------------------------

class CrossbarProperty : public ::testing::TestWithParam<int> {};

TEST_P(CrossbarProperty, ClosedFormMatchesNetlist) {
    math::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
    circuit::CrossbarColumn column;
    const std::size_t n = 2 + rng.index(6);
    std::vector<double> inputs(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Mix of printed and absent conductances.
        column.input_conductances.push_back(rng.uniform() < 0.25
                                                ? 0.0
                                                : rng.uniform(1e-7, 1e-4));
        inputs[i] = rng.uniform(0.0, 1.0);
    }
    column.bias_conductance = rng.uniform(1e-7, 1e-4);
    column.drain_conductance = rng.uniform(0.0, 1e-4);
    auto net = circuit::build_crossbar_netlist(column);
    for (std::size_t i = 0; i < n; ++i)
        net.set_source_voltage(net.find_node("in" + std::to_string(i)), inputs[i]);
    const auto sol = circuit::DcSolver().solve(net);
    EXPECT_NEAR(sol.voltages[net.find_node("z")], column.output(inputs), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomColumns, CrossbarProperty,
                         ::testing::Range(0, 10));

// ---- EGT: monotone in geometry -----------------------------------------------

class EgtGeometryProperty : public ::testing::TestWithParam<double> {};

TEST_P(EgtGeometryProperty, CurrentMonotoneInWidthAndInverseInLength) {
    const double vg = GetParam();
    double previous = 0.0;
    for (double w : {200.0, 400.0, 600.0, 800.0}) {
        const double id = circuit::Egt(w, 40.0).drain_current(0.8, vg, 0.0);
        EXPECT_GE(id, previous);
        previous = id;
    }
    previous = 1e9;
    for (double l : {10.0, 30.0, 50.0, 70.0}) {
        const double id = circuit::Egt(400.0, l).drain_current(0.8, vg, 0.0);
        EXPECT_LE(id, previous);
        previous = id;
    }
}

INSTANTIATE_TEST_SUITE_P(GateVoltages, EgtGeometryProperty,
                         ::testing::Values(0.1, 0.3, 0.5, 0.8, 1.0));

// ---- design space: projection properties -----------------------------------

TEST(DesignSpaceProperty, ClipIsIdempotent) {
    const auto space = surrogate::DesignSpace::table1();
    math::Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        circuit::Omega wild{rng.uniform(1.0, 1000.0),  rng.uniform(1.0, 1000.0),
                            rng.uniform(1e3, 1e6),     rng.uniform(1e3, 1e6),
                            rng.uniform(1e3, 1e6),     rng.uniform(50.0, 2000.0),
                            rng.uniform(1.0, 200.0)};
        const auto once = space.clip(wild);
        const auto twice = space.clip(once);
        EXPECT_TRUE(space.contains(once));
        for (std::size_t c = 0; c < 7; ++c)
            EXPECT_DOUBLE_EQ(once.to_array()[c], twice.to_array()[c]);
    }
}

TEST(DesignSpaceProperty, ClipIsIdentityOnFeasiblePoints) {
    const auto space = surrogate::DesignSpace::table1();
    math::SobolSequence sobol(7);
    sobol.skip(1);
    for (const auto& omega : space.sample_batch(sobol, 50)) {
        const auto clipped = space.clip(omega);
        for (std::size_t c = 0; c < 7; ++c)
            EXPECT_NEAR(clipped.to_array()[c], omega.to_array()[c],
                        1e-9 * omega.to_array()[c]);
    }
}

// ---- training: determinism ---------------------------------------------------

namespace {

const surrogate::SurrogateModel& prop_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 250;
        options.sweep_points = 17;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 300;
        train.mlp.patience = 80;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

math::Matrix train_and_predict(std::uint64_t seed) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
    math::Rng rng(seed);
    pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                 &prop_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                 &prop_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                 surrogate::DesignSpace::table1(), rng);
    pnn::TrainOptions options;
    options.max_epochs = 80;
    options.patience = 80;
    options.epsilon = 0.05;
    options.n_mc_train = 3;
    options.seed = seed;
    pnn::train_pnn(net, split, options);
    return net.predict(split.x_test);
}

}  // namespace

TEST(TrainingProperty, FullyDeterministicPerSeed) {
    // Identical seeds must give bit-identical trained networks — the whole
    // experiment table depends on this.
    const auto a = train_and_predict(5);
    const auto b = train_and_predict(5);
    EXPECT_DOUBLE_EQ(math::max_abs_diff(a, b), 0.0);
}

TEST(TrainingProperty, DifferentSeedsDiffer) {
    const auto a = train_and_predict(5);
    const auto b = train_and_predict(6);
    EXPECT_GT(math::max_abs_diff(a, b), 1e-12);
}

// ---- ptanh fit: fit-then-evaluate round trips --------------------------------

class PtanhFitRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PtanhFitRoundTrip, RecoversSynthesizedEta) {
    // Curves synthesized exactly inside the model family: the multi-start
    // LM must recover the generating eta (the weak Tikhonov priors shift
    // well-saturated fits only negligibly).
    math::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);
    fit::Eta truth;
    truth.eta1 = rng.uniform(0.35, 0.65);
    truth.eta2 = rng.uniform(0.25, 0.45);
    truth.eta3 = rng.uniform(0.35, 0.65);
    truth.eta4 = rng.uniform(6.0, 14.0);  // saturates inside [0, 1]
    circuit::CharacteristicCurve curve;
    for (int i = 0; i < 48; ++i) {
        const double v = static_cast<double>(i) / 47.0;
        curve.vin.push_back(v);
        curve.vout.push_back(fit::ptanh(truth, v));
    }
    const auto result = fit::fit_ptanh(curve, circuit::NonlinearCircuitKind::kPtanh);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.rmse, 1e-3);
    EXPECT_NEAR(result.eta.eta1, truth.eta1, 0.02);
    EXPECT_NEAR(result.eta.eta2, truth.eta2, 0.04);
    EXPECT_NEAR(result.eta.eta3, truth.eta3, 0.02);
    EXPECT_NEAR(result.eta.eta4, truth.eta4, 0.06 * truth.eta4);
    // Fit-then-evaluate: the recovered eta reproduces the curve pointwise.
    for (std::size_t i = 0; i < curve.vin.size(); ++i)
        EXPECT_NEAR(fit::ptanh(result.eta, curve.vin[i]), curve.vout[i], 5e-3);
}

INSTANTIATE_TEST_SUITE_P(SynthesizedEtas, PtanhFitRoundTrip, ::testing::Range(0, 8));

TEST(PtanhFitProperty, SimulatedCurvesFitAcrossSobolSampledOmega) {
    // Simulated (not exactly-in-family) characteristics over Sobol-sampled
    // design points: the fit must converge and evaluate back onto the
    // simulated curve within a loose physical tolerance.
    const auto space = surrogate::DesignSpace::table1();
    math::SobolSequence sobol(7);
    sobol.skip(3);
    for (const auto& omega : space.sample_batch(sobol, 6)) {
        const auto curve = circuit::simulate_characteristic(
            omega, circuit::NonlinearCircuitKind::kPtanh, 33);
        const auto result = fit::fit_ptanh(curve, circuit::NonlinearCircuitKind::kPtanh);
        EXPECT_TRUE(result.converged);
        EXPECT_LT(result.rmse, 0.05);
        double worst = 0.0;
        for (std::size_t i = 0; i < curve.vin.size(); ++i)
            worst = std::max(worst,
                             std::abs(fit::ptanh(result.eta, curve.vin[i]) - curve.vout[i]));
        EXPECT_LT(worst, 0.15);
    }
}

// ---- serialization: save -> load -> save is byte-identical -------------------

TEST(SerializeProperty, SaveLoadSaveIsByteIdentical) {
    const auto& act = prop_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto& neg = prop_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto space = surrogate::DesignSpace::table1();
    math::Rng rng(1234);
    const pnn::Pnn original({4, 3, 3}, &act, &neg, space, rng);

    std::stringstream first;
    pnn::save_pnn(original, first);
    std::stringstream stored(first.str());
    const pnn::Pnn restored = pnn::load_pnn(stored, &act, &neg, space);
    std::stringstream second;
    pnn::save_pnn(restored, second);
    EXPECT_EQ(first.str(), second.str());

    // And the reloaded network is behaviorally bit-identical.
    math::Rng data_rng(77);
    const math::Matrix x = data_rng.uniform_matrix(9, 4, 0.0, 1.0);
    const math::Matrix a = original.predict(x);
    const math::Matrix b = restored.predict(x);
    EXPECT_DOUBLE_EQ(math::max_abs_diff(a, b), 0.0);
}

// ---- nonlinear parameter: clip honors printable bounds -----------------------

TEST(NonlinearParamProperty, ShuntResistorsStayPrintableUnderExtremeRatios) {
    const auto space = surrogate::DesignSpace::table1();
    pnn::NonlinearParam param(&prop_surrogate(circuit::NonlinearCircuitKind::kPtanh), space,
                              circuit::kDefaultPtanhOmega);
    // Drive k1, k2 to their sigmoid extremes.
    math::Matrix raw(1, 7);
    for (std::size_t c = 0; c < 7; ++c) raw(0, c) = 0.0;
    raw(0, 5) = -30.0;  // k1 -> 0: R2 = R1 k1 would underflow without the clip
    raw(0, 6) = 30.0;   // k2 -> 1
    param.raw().set_value(raw);
    const auto omega = param.printable_omega();
    EXPECT_GE(omega.r2, space.min(1));
    EXPECT_LE(omega.r2, space.max(1));
    EXPECT_GE(omega.r4, space.min(3));
    EXPECT_LE(omega.r4, space.max(3));
    EXPECT_TRUE(space.contains(omega));
}

// ---- compiled inference plan: edge cases -------------------------------------

namespace {

/// Reference vs compiled predict, element-for-element exact.
void expect_backends_agree(const pnn::Pnn& net, const infer::CompiledPnn& compiled,
                           const math::Matrix& x,
                           const pnn::NetworkVariation* variation = nullptr,
                           const faults::NetworkFaultOverlay* overlay = nullptr) {
    const auto ref = net.predict(x, variation, overlay);
    const auto com = compiled.predict(x, variation, overlay);
    ASSERT_EQ(ref.rows(), com.rows());
    ASSERT_EQ(ref.cols(), com.cols());
    for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_DOUBLE_EQ(ref[i], com[i]) << i;
}

pnn::Pnn plan_edge_net(std::size_t n_in, std::size_t hidden, std::size_t n_out,
                       std::uint64_t seed) {
    math::Rng rng(seed);
    return pnn::Pnn({n_in, hidden, n_out},
                    &prop_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                    &prop_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                    surrogate::DesignSpace::table1(), rng);
}

}  // namespace

TEST(InferPlanProperty, EmptyAndSingleRowBatchesMatchReference) {
    const auto net = plan_edge_net(4, 3, 3, 311);
    const infer::CompiledPnn compiled(net);
    math::Rng rng(7);
    expect_backends_agree(net, compiled, math::Matrix(0, 4));
    expect_backends_agree(net, compiled, rng.uniform_matrix(1, 4, 0.0, 1.0));
    // And perturbed single-row, where the per-sample tables dominate.
    const circuit::VariationModel model(0.1);
    math::Rng var_rng(8);
    const auto factors = net.sample_variation(model, var_rng);
    expect_backends_agree(net, compiled, rng.uniform_matrix(1, 4, 0.0, 1.0), &factors);
}

TEST(InferPlanProperty, SingleSampleMonteCarloMatchesReference) {
    // n_mc = 1 exercises the stddev guard (reference reports 0.0, not NaN).
    const auto net = plan_edge_net(4, 3, 2, 312);
    const infer::CompiledPnn compiled(net);
    math::Rng rng(9);
    const math::Matrix x = rng.uniform_matrix(12, 4, 0.0, 1.0);
    std::vector<int> y;
    for (int i = 0; i < 12; ++i) y.push_back(i % 2);

    pnn::EvalOptions options;
    options.epsilon = 0.1;
    options.n_mc = 1;
    const auto ref = pnn::evaluate_pnn(net, x, y, options);
    const auto com = compiled.evaluate(x, y, options);
    EXPECT_DOUBLE_EQ(ref.mean_accuracy, com.mean_accuracy);
    EXPECT_DOUBLE_EQ(ref.std_accuracy, com.std_accuracy);
    ASSERT_EQ(ref.per_sample_accuracy.size(), com.per_sample_accuracy.size());
    EXPECT_DOUBLE_EQ(ref.per_sample_accuracy[0], com.per_sample_accuracy[0]);
}

TEST(InferPlanProperty, SingleHiddenUnitNetworkMatchesReference) {
    // hidden = 1: every crossbar weight normalizes against a one-element
    // column sum, the narrowest shape the plan can compile.
    const auto net = plan_edge_net(5, 1, 2, 313);
    const infer::CompiledPnn compiled(net);
    ASSERT_EQ(compiled.plan().layers[0].n_out, 1u);
    math::Rng rng(10);
    const math::Matrix x = rng.uniform_matrix(7, 5, 0.0, 1.0);
    expect_backends_agree(net, compiled, x);
    const circuit::VariationModel model(0.15);
    math::Rng var_rng(11);
    const auto factors = net.sample_variation(model, var_rng);
    expect_backends_agree(net, compiled, x, &factors);
}

TEST(InferPlanProperty, DeadCircuitOverlayMatchesReference) {
    // Degenerate overlay: every nonlinear circuit of the hidden layer is
    // dead (outputs pinned to a rail). The compiled fault masks must follow
    // the reference path bit-for-bit even when nothing is alive.
    const auto net = plan_edge_net(4, 3, 3, 314);
    const infer::CompiledPnn compiled(net);
    const auto shape = net.fault_shape();
    const pnn::PnnOptions& options = net.layer(0).options();
    const faults::FaultDomain domain{options.g_max, options.bias_voltage};

    std::vector<faults::Fault> dead;
    for (std::size_t col = 0; col < shape[0].n_out; ++col)
        dead.push_back({faults::FaultKind::kDeadNonlinear, faults::FaultSite::kActivation, 0,
                        0, col, domain.vdd});
    for (std::size_t col = 0; col < shape[0].n_in; ++col)
        dead.push_back({faults::FaultKind::kDeadNonlinear, faults::FaultSite::kNegation, 0, 0,
                        col, 0.0});
    const auto overlay = faults::materialize(shape, dead, domain);

    math::Rng rng(12);
    const math::Matrix x = rng.uniform_matrix(9, 4, 0.0, 1.0);
    expect_backends_agree(net, compiled, x, nullptr, &overlay);
    const circuit::VariationModel model(0.1);
    math::Rng var_rng(13);
    const auto factors = net.sample_variation(model, var_rng);
    expect_backends_agree(net, compiled, x, &factors, &overlay);
}
