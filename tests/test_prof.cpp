// The sampling profiler + kernel cost-attribution plane (src/prof).
//
// Four contracts, each enforced here:
//  * mechanics — span-stack push/pop/overflow, interning stability, the
//    sampler surviving thread-pool churn (the CI sanitize job runs this
//    suite under TSan via its Prof filter);
//  * the artifact — pnc-profile/1 round-trips, the validator rejects
//    broken internal invariants, collapsed stacks are deterministic, and
//    `diff` attributes a synthetic slowdown to the injected hot frame;
//  * zero-cost claims — the compiled hot path (and its instrumentation)
//    performs no steady-state allocation, measured by the global
//    new/delete interposition, not asserted by comment;
//  * bit-identity — profiled train/eval/yield/serve runs are bitwise
//    identical to unprofiled ones at 1 and 4 threads.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "data/registry.hpp"
#include "infer/engine.hpp"
#include "obs/config.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/spanstack.hpp"
#include "obs/trace.hpp"
#include "pnn/robustness.hpp"
#include "pnn/training.hpp"
#include "prof/alloc_hooks.hpp"
#include "prof/counters.hpp"
#include "prof/profile.hpp"
#include "prof/profiler.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/pipeline.hpp"
#include "surrogate/dataset_builder.hpp"
#include "surrogate/design_space.hpp"
#include "yield/campaign.hpp"

#ifndef PNC_CLI_PATH
#error "PNC_CLI_PATH must be defined to the pnc binary location"
#endif

namespace fs = std::filesystem;
using namespace pnc;

namespace {

// ------------------------------------------------------------- fixtures

const surrogate::SurrogateModel& prof_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 250;
        options.sweep_points = 17;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 300;
        train.mlp.patience = 80;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

const data::SplitDataset& prof_split() {
    static const auto split = data::split_and_normalize(data::make_dataset("iris"), 99);
    return split;
}

pnn::Pnn make_net(std::uint64_t seed) {
    const auto& split = prof_split();
    math::Rng rng(seed);
    return pnn::Pnn({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                    &prof_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                    &prof_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                    surrogate::DesignSpace::table1(), rng);
}

/// RAII thread-count override (the global pool is process-wide state).
class ThreadGuard {
public:
    explicit ThreadGuard(std::size_t n) { runtime::set_global_threads(n); }
    ~ThreadGuard() {
        runtime::set_global_threads(runtime::ThreadPool::default_thread_count());
    }
};

/// RAII obs gate override, restoring the previous state.
class ObsGuard {
public:
    explicit ObsGuard(bool on) : previous_(obs::enabled()) { obs::set_enabled(on); }
    ~ObsGuard() { obs::set_enabled(previous_); }

private:
    bool previous_;
};

void expect_bitwise_equal(const std::vector<double>& a, const std::vector<double>& b,
                          const std::string& what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_DOUBLE_EQ(a[i], b[i]) << what << " element " << i;
}

/// Busy loop long enough for the sampler to take a few snapshots.
void spin_for_ms(double ms) {
    const auto start = std::chrono::steady_clock::now();
    volatile double sink = 0.0;
    while (std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start)
               .count() < ms)
        sink = sink + 1.0;
    (void)sink;
}

const prof::ProfileNode* find_root(const prof::Profile& profile, const std::string& name) {
    for (const auto& root : profile.roots)
        if (root->name == name) return root.get();
    return nullptr;
}

// ----------------------------------------------------------- span stack

TEST(ProfSpanStack, EnterIsNoopWhenNotCollecting) {
    ASSERT_FALSE(obs::spanstack::collecting());
    EXPECT_FALSE(obs::spanstack::enter("never.pushed"));
    obs::spanstack::exit();  // must be a safe no-op at depth 0
}

TEST(ProfSpanStack, InternReturnsStablePointers) {
    const char* a = obs::spanstack::intern("prof.test.frame");
    const char* b = obs::spanstack::intern(std::string("prof.test.") + "frame");
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "prof.test.frame");
    EXPECT_NE(a, obs::spanstack::intern("prof.test.other"));
}

TEST(ProfSpanStack, OverflowBeyondMaxDepthStaysBalanced) {
    obs::spanstack::set_collecting(true);
    const std::size_t deep = obs::spanstack::kMaxDepth + 8;
    std::size_t pushed = 0;
    for (std::size_t i = 0; i < deep; ++i)
        if (obs::spanstack::enter("deep.frame")) ++pushed;
    EXPECT_EQ(pushed, deep);  // depth bookkeeping continues past capacity
    bool seen = false;
    obs::spanstack::for_each_stack([&](const obs::spanstack::StackSample& sample) {
        if (sample.depth == obs::spanstack::kMaxDepth) seen = true;
    });
    EXPECT_TRUE(seen) << "sampler view must clamp at kMaxDepth";
    for (std::size_t i = 0; i < pushed; ++i) obs::spanstack::exit();
    obs::spanstack::set_collecting(false);
    obs::spanstack::for_each_stack([&](const obs::spanstack::StackSample& sample) {
        EXPECT_EQ(sample.depth, 0u);
    });
}

// ------------------------------------------------------------- sessions

TEST(ProfSession, FoldsNestedSpansIntoTree) {
    ObsGuard obs_on(true);
    ASSERT_TRUE(prof::Profiler::global().start(4000.0));
    EXPECT_TRUE(prof::Profiler::global().running());
    {
        obs::ScopedTimer outer("prof.outer");
        spin_for_ms(30.0);
        {
            obs::ScopedTimer inner("prof.inner");
            spin_for_ms(60.0);
        }
    }
    const prof::Profile profile = prof::Profiler::global().stop();
    EXPECT_FALSE(prof::Profiler::global().running());
    EXPECT_GT(profile.ticks, 0u);
    EXPECT_GT(profile.samples, 0u);
    EXPECT_GE(profile.threads_seen, 1u);
    EXPECT_DOUBLE_EQ(profile.hz, 4000.0);

    const prof::ProfileNode* outer = find_root(profile, "prof.outer");
    ASSERT_NE(outer, nullptr) << "outer span missing from the folded tree";
    EXPECT_GT(outer->total, 0u);
    const prof::ProfileNode* inner = nullptr;
    for (const auto& child : outer->children)
        if (child->name == "prof.inner") inner = child.get();
    ASSERT_NE(inner, nullptr) << "nested span must fold under its parent";
    EXPECT_EQ(outer->total, outer->self + inner->total);

    // The artifact the session serializes to must self-validate.
    EXPECT_EQ(prof::validate_profile(prof::profile_document(profile)), "");
}

TEST(ProfSession, SecondStartIsRejectedWhileRunning) {
    ASSERT_TRUE(prof::Profiler::global().start(1000.0));
    EXPECT_FALSE(prof::Profiler::global().start(1000.0));
    prof::Profiler::global().stop();
}

TEST(ProfSession, StopWhenIdleReturnsEmptyProfile) {
    const prof::Profile profile = prof::Profiler::global().stop();
    EXPECT_EQ(profile.samples, 0u);
    EXPECT_EQ(profile.ticks, 0u);
    EXPECT_TRUE(profile.roots.empty());
}

// The TSan target: worker threads register/deregister with the sampler
// while it walks the registry, across repeated global-pool resets.
TEST(ProfSession, SamplerSurvivesThreadPoolChurn) {
    ObsGuard obs_on(true);
    ASSERT_TRUE(prof::Profiler::global().start(4000.0));
    for (int round = 0; round < 8; ++round) {
        runtime::set_global_threads(4);
        runtime::parallel_for(64, [](std::size_t) {
            obs::ScopedTimer span("prof.churn.task");
            volatile double sink = 0.0;
            for (int i = 0; i < 500; ++i) sink = sink + static_cast<double>(i);
            (void)sink;
        });
        runtime::set_global_threads(1);
    }
    runtime::set_global_threads(runtime::ThreadPool::default_thread_count());
    const prof::Profile profile = prof::Profiler::global().stop();
    EXPECT_GT(profile.ticks, 0u);
    EXPECT_GE(profile.threads_seen, 1u);
    EXPECT_EQ(prof::validate_profile(prof::profile_document(profile)), "");
}

TEST(ProfSession, KernelCountersAttributeCompiledWork) {
    ObsGuard obs_on(true);
    const auto net = make_net(5);
    const infer::CompiledPnn engine(net);
    const auto& split = prof_split();

    ASSERT_TRUE(prof::Profiler::global().start(1000.0));
    pnn::EvalOptions eval;
    eval.epsilon = 0.1;
    eval.n_mc = 4;
    (void)engine.evaluate(split.x_test, split.y_test, eval);
    const prof::Profile profile = prof::Profiler::global().stop();

    const auto it = profile.kernels.find("infer.forward_rows");
    ASSERT_NE(it, profile.kernels.end()) << "compiled forward must tally its work";
    EXPECT_GT(it->second.invocations, 0u);
    EXPECT_GT(it->second.rows, 0u);
    EXPECT_GT(it->second.flops, 0u);
    EXPECT_GT(it->second.bytes, 0u);
    EXPECT_GE(it->second.seconds, 0.0);
    // The engine notes its bump-arena high-water marks under the profiler.
    EXPECT_GT(profile.arena_table_doubles_hwm, 0u);
    EXPECT_GT(profile.arena_batch_doubles_hwm, 0u);
}

TEST(ProfSession, SessionMetricsLandInTheCatalogue) {
    ObsGuard obs_on(true);
    obs::MetricsRegistry::global().reset();
    ASSERT_TRUE(prof::Profiler::global().start(2000.0));
    spin_for_ms(10.0);
    (void)prof::Profiler::global().stop();
    const auto snapshot = obs::MetricsRegistry::global().snapshot();
    bool sessions = false, samples = false;
    for (const auto& [name, value] : snapshot.counters) {
        if (name == "prof.sessions_total") sessions = value >= 1;
        if (name == "prof.ticks_total") samples = true;
    }
    EXPECT_TRUE(sessions);
    EXPECT_TRUE(samples);
    obs::MetricsRegistry::global().reset();
}

// ------------------------------------------------------------- artifact

prof::Profile synthetic_profile() {
    prof::Profile profile;
    profile.hz = 1000.0;
    profile.duration_seconds = 0.25;
    profile.ticks = 250;
    profile.missed_ticks = 2;
    profile.threads_seen = 2;
    auto inner = std::make_unique<prof::ProfileNode>();
    inner->name = "inner.kernel";
    inner->self = 80;
    inner->total = 80;
    auto outer = std::make_unique<prof::ProfileNode>();
    outer->name = "outer.span";
    outer->self = 20;
    outer->total = 100;
    outer->children.push_back(std::move(inner));
    auto other = std::make_unique<prof::ProfileNode>();
    other->name = "idle.loop";
    other->self = 50;
    other->total = 50;
    profile.roots.push_back(std::move(other));
    profile.roots.push_back(std::move(outer));
    profile.samples = 150;
    prof::KernelTotals totals;
    totals.invocations = 3;
    totals.rows = 300;
    totals.flops = 12000;
    totals.bytes = 48000;
    totals.seconds = 0.2;
    profile.kernels["infer.forward_rows"] = totals;
    profile.alloc.allocations = 7;
    profile.alloc.deallocations = 7;
    profile.alloc.bytes = 1024;
    profile.arena_table_doubles_hwm = 640;
    profile.arena_batch_doubles_hwm = 120;
    return profile;
}

TEST(ProfArtifact, DocumentRoundTrips) {
    const prof::Profile original = synthetic_profile();
    const auto doc = prof::profile_document(original);
    ASSERT_EQ(prof::validate_profile(doc), "");
    const prof::Profile parsed = prof::parse_profile(doc);
    EXPECT_DOUBLE_EQ(parsed.hz, original.hz);
    EXPECT_EQ(parsed.ticks, original.ticks);
    EXPECT_EQ(parsed.missed_ticks, original.missed_ticks);
    EXPECT_EQ(parsed.samples, original.samples);
    EXPECT_EQ(parsed.threads_seen, original.threads_seen);
    ASSERT_EQ(parsed.roots.size(), original.roots.size());
    EXPECT_EQ(parsed.roots[0]->name, "idle.loop");
    EXPECT_EQ(parsed.roots[1]->name, "outer.span");
    ASSERT_EQ(parsed.roots[1]->children.size(), 1u);
    EXPECT_EQ(parsed.roots[1]->children[0]->self, 80u);
    ASSERT_EQ(parsed.kernels.count("infer.forward_rows"), 1u);
    EXPECT_EQ(parsed.kernels.at("infer.forward_rows").flops, 12000u);
    EXPECT_EQ(parsed.alloc.allocations, 7u);
    EXPECT_EQ(parsed.arena_table_doubles_hwm, 640u);
    // Serialization is a pure function of the profile: dumping the parsed
    // copy reproduces the document byte for byte.
    EXPECT_EQ(prof::profile_document(parsed).dump(), doc.dump());
}

TEST(ProfArtifact, ValidatorEnforcesTreeInvariant) {
    auto doc = prof::profile_document(synthetic_profile());
    // Break total == self + sum(children.total) on the nested node.
    auto broken = doc.dump();
    const auto pos = broken.find("\"total\":100");
    ASSERT_NE(pos, std::string::npos);
    broken.replace(pos, 11, "\"total\":101");
    const auto reparsed = obs::json::Value::parse(broken);
    EXPECT_NE(prof::validate_profile(reparsed), "");
}

TEST(ProfArtifact, ValidatorEnforcesSampleSum) {
    prof::Profile profile = synthetic_profile();
    profile.samples = 151;  // != sum of root totals (150)
    EXPECT_NE(prof::validate_profile(prof::profile_document(profile)), "");
}

TEST(ProfArtifact, CollapsedStacksAreDeterministic) {
    const prof::Profile profile = synthetic_profile();
    const std::string collapsed = prof::collapsed_stacks(profile);
    EXPECT_EQ(collapsed, prof::collapsed_stacks(profile));
    EXPECT_EQ(collapsed,
              "idle.loop 50\n"
              "outer.span 20\n"
              "outer.span;inner.kernel 80\n");
}

TEST(ProfArtifact, DiffAttributesInjectedHotFrame) {
    const prof::Profile base = synthetic_profile();
    prof::Profile cand = synthetic_profile();
    // Inject a synthetic slowdown: one new frame burning 400 samples.
    auto hot = std::make_unique<prof::ProfileNode>();
    hot->name = "hot.injected";
    hot->self = 400;
    hot->total = 400;
    cand.roots.push_back(std::move(hot));
    cand.samples += 400;

    const prof::ProfileDiff diff = prof::diff_profiles(base, cand);
    EXPECT_DOUBLE_EQ(diff.base_seconds, 150.0 / 1000.0);
    EXPECT_DOUBLE_EQ(diff.cand_seconds, 550.0 / 1000.0);
    ASSERT_FALSE(diff.frames.empty());
    EXPECT_EQ(diff.frames[0].name, "hot.injected");
    EXPECT_DOUBLE_EQ(diff.frames[0].base_seconds, 0.0);
    EXPECT_DOUBLE_EQ(diff.frames[0].delta_seconds(), 0.4);
    const std::string table = prof::format_profile_diff(diff, 3);
    EXPECT_NE(table.find("hot.injected"), std::string::npos)
        << "attribution table must name the injected hot frame:\n" << table;
}

// ------------------------------------------------------------ zero-alloc

TEST(ProfZeroAlloc, SteadyStateCompiledHotPathAllocatesNothing) {
    ThreadGuard one_thread(1);
    const auto net = make_net(5);
    const infer::CompiledPnn engine(net);
    const auto& split = prof_split();

    math::Matrix scratch;
    // Warm-up: first call sizes the scratch matrix and the plan arenas.
    (void)engine.correct_count(split.x_test, split.y_test, nullptr, nullptr, scratch);

    prof::AllocGuard guard;
    for (int i = 0; i < 5; ++i)
        (void)engine.correct_count(split.x_test, split.y_test, nullptr, nullptr, scratch);
    const prof::AllocStats delta = guard.delta();
    EXPECT_EQ(delta.allocations, 0u)
        << "steady-state correct_count must not allocate (got " << delta.allocations
        << " allocations / " << delta.bytes << " bytes)";
}

TEST(ProfZeroAlloc, KernelInstrumentationAllocatesNothing) {
    ThreadGuard one_thread(1);
    const auto net = make_net(5);
    const infer::CompiledPnn engine(net);
    const auto& split = prof_split();
    math::Matrix scratch;

    prof::set_counting(true);
    // Warm-up with counting armed: interned kernel names, scratch, arenas.
    (void)engine.correct_count(split.x_test, split.y_test, nullptr, nullptr, scratch);
    {
        prof::AllocGuard guard;
        for (int i = 0; i < 5; ++i)
            (void)engine.correct_count(split.x_test, split.y_test, nullptr, nullptr,
                                       scratch);
        EXPECT_EQ(guard.delta().allocations, 0u)
            << "KernelScope tallies must stay allocation-free";
    }
    prof::set_counting(false);
    EXPECT_GT(prof::kernel_totals(prof::Kernel::kInferForward).rows, 0u);
    prof::reset_kernel_totals();
}

// ----------------------------------------------------------- bit-identity

class ProfBitIdentity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProfBitIdentity, EvalIsBitIdenticalUnderProfiler) {
    ThreadGuard threads(GetParam());
    const auto net = make_net(5);
    const infer::CompiledPnn engine(net);
    const auto& split = prof_split();
    pnn::EvalOptions eval;
    eval.epsilon = 0.1;
    eval.n_mc = 6;

    const auto plain = engine.evaluate(split.x_test, split.y_test, eval);
    ObsGuard obs_on(true);
    ASSERT_TRUE(prof::Profiler::global().start(2000.0));
    const auto profiled = engine.evaluate(split.x_test, split.y_test, eval);
    prof::Profiler::global().stop();

    expect_bitwise_equal(plain.per_sample_accuracy, profiled.per_sample_accuracy, "eval");
    EXPECT_DOUBLE_EQ(plain.mean_accuracy, profiled.mean_accuracy);
    EXPECT_DOUBLE_EQ(plain.std_accuracy, profiled.std_accuracy);
}

TEST_P(ProfBitIdentity, TrainIsBitIdenticalUnderProfiler) {
    ThreadGuard threads(GetParam());
    pnn::TrainOptions options;
    options.epsilon = 0.1;
    options.n_mc_train = 2;
    options.max_epochs = 6;
    options.patience = 6;
    options.seed = 1;

    auto plain_net = make_net(7);
    const auto plain = pnn::train_pnn(plain_net, prof_split(), options);

    ObsGuard obs_on(true);
    ASSERT_TRUE(prof::Profiler::global().start(2000.0));
    auto profiled_net = make_net(7);
    const auto profiled = pnn::train_pnn(profiled_net, prof_split(), options);
    prof::Profiler::global().stop();

    EXPECT_EQ(plain.epochs_run, profiled.epochs_run);
    EXPECT_DOUBLE_EQ(plain.best_val_loss, profiled.best_val_loss);
    const auto a = plain_net.predict(prof_split().x_test);
    const auto b = profiled_net.predict(prof_split().x_test);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_DOUBLE_EQ(a[i], b[i]) << "trained prediction element " << i;
}

TEST_P(ProfBitIdentity, YieldCampaignIsBitIdenticalUnderProfiler) {
    ThreadGuard threads(GetParam());
    const auto net = make_net(5);
    const infer::CompiledPnn engine(net);
    const auto& split = prof_split();
    yield::YieldCampaignOptions options;
    options.n_samples = 256;
    options.round_size = 64;
    options.mode = yield::CampaignMode::kFixed;
    options.epsilon = 0.1;
    options.accuracy_spec = 0.5;
    options.seed = 777;

    const auto plain =
        yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
    ObsGuard obs_on(true);
    ASSERT_TRUE(prof::Profiler::global().start(2000.0));
    const auto profiled =
        yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
    prof::Profiler::global().stop();

    EXPECT_EQ(plain.estimate.n_samples, profiled.estimate.n_samples);
    EXPECT_EQ(plain.estimate.n_passing, profiled.estimate.n_passing);
    EXPECT_DOUBLE_EQ(plain.estimate.yield, profiled.estimate.yield);
    EXPECT_DOUBLE_EQ(plain.estimate.ci_lo, profiled.estimate.ci_lo);
    EXPECT_DOUBLE_EQ(plain.estimate.ci_hi, profiled.estimate.ci_hi);
    EXPECT_DOUBLE_EQ(plain.estimate.worst_accuracy, profiled.estimate.worst_accuracy);
    EXPECT_DOUBLE_EQ(plain.estimate.median_accuracy, profiled.estimate.median_accuracy);
}

TEST_P(ProfBitIdentity, ServeReplayIsBitIdenticalUnderProfiler) {
    ThreadGuard threads(GetParam());
    const auto net = make_net(5);
    const auto& split = prof_split();
    std::vector<std::vector<double>> rows(20);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const std::size_t r = i % split.x_test.rows();
        rows[i].resize(split.x_test.cols());
        for (std::size_t c = 0; c < split.x_test.cols(); ++c)
            rows[i][c] = split.x_test(r, c);
    }
    const auto replay = [&] {
        serve::ModelRegistry registry;
        registry.install("iris", net);
        serve::ServeOptions options;
        options.max_batch = 8;
        options.deterministic = true;  // the replay contract
        serve::ServePipeline pipeline(registry, options);
        std::vector<std::future<serve::Prediction>> futures;
        for (const auto& row : rows) futures.push_back(pipeline.submit_or_wait("iris", row));
        pipeline.drain();
        std::vector<std::vector<double>> outputs;
        for (auto& f : futures) outputs.push_back(f.get().outputs);
        return outputs;
    };

    const auto plain = replay();
    ObsGuard obs_on(true);
    ASSERT_TRUE(prof::Profiler::global().start(2000.0));
    const auto profiled = replay();
    prof::Profiler::global().stop();

    ASSERT_EQ(plain.size(), profiled.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
        expect_bitwise_equal(plain[i], profiled[i],
                             "served row " + std::to_string(i));
}

INSTANTIATE_TEST_SUITE_P(Threads, ProfBitIdentity, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                             return "t" + std::to_string(info.param);
                         });

// ------------------------------------------------------------ CLI surface

class ProfCliTest : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::temp_directory_path() / (std::string("pnc_prof_cli_") + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    /// Run `pnc <args>` and return its exit code; stdout+stderr are
    /// appended to `*output` when given.
    int run_cli_rc(const std::string& cli_args, std::string* output = nullptr) {
        const std::string log = (dir_ / "cli.log").string();
        const std::string cmd =
            std::string(PNC_CLI_PATH) + " " + cli_args + " > " + log + " 2>&1";
        const int status = std::system(cmd.c_str());
        if (output) *output += slurp(log);
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    static std::string slurp(const std::string& path) {
        std::ifstream is(path);
        std::stringstream buffer;
        buffer << is.rdbuf();
        return buffer.str();
    }

    fs::path dir_;
};

TEST_F(ProfCliTest, CaptureSummaryAndFlameRoundTrip) {
    const std::string profile = (dir_ / "curve.profile.json").string();
    std::string out;
    ASSERT_EQ(run_cli_rc("curve --points 512 --profile-out " + profile, &out), 0) << out;
    ASSERT_TRUE(fs::exists(profile)) << "capture must write the artifact";
    // The written artifact must self-validate before any viewer touches it.
    EXPECT_EQ(prof::validate_profile(obs::json::Value::parse(slurp(profile))), "");

    out.clear();
    ASSERT_EQ(run_cli_rc("prof summary " + profile, &out), 0) << out;
    EXPECT_NE(out.find("pnc-profile/1"), std::string::npos) << out;

    out.clear();
    ASSERT_EQ(run_cli_rc("prof flame " + profile, &out), 0) << out;
    // Every collapsed line is "frame[;frame...] N" — spot-check the shape
    // (a near-instant capture may legitimately emit zero lines).
    std::stringstream lines(out);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty()) continue;
        const auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << "bad collapsed line: " << line;
        EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    }
}

TEST_F(ProfCliTest, DiffNamesInjectedHotFrame) {
    const std::string base_path = (dir_ / "base.json").string();
    const std::string cand_path = (dir_ / "cand.json").string();
    prof::Profile cand = synthetic_profile();
    auto hot = std::make_unique<prof::ProfileNode>();
    hot->name = "hot.injected";
    hot->self = 400;
    hot->total = 400;
    cand.roots.push_back(std::move(hot));
    cand.samples += 400;
    prof::write_profile(base_path, synthetic_profile());
    prof::write_profile(cand_path, cand);

    std::string out;
    ASSERT_EQ(run_cli_rc("prof diff " + base_path + " " + cand_path + " --top 3", &out), 0)
        << out;
    EXPECT_NE(out.find("hot.injected"), std::string::npos)
        << "diff must name the injected hot frame:\n" << out;
}

TEST_F(ProfCliTest, ExitCodesDistinguishUsageFromBadArtifacts) {
    EXPECT_EQ(run_cli_rc("prof"), 2);                       // missing subcommand
    EXPECT_EQ(run_cli_rc("prof bogus x.json"), 2);          // unknown subcommand
    EXPECT_EQ(run_cli_rc("prof summary"), 2);               // missing operand
    EXPECT_EQ(run_cli_rc("prof summary " + (dir_ / "absent.json").string()), 2);
    const std::string mangled = (dir_ / "mangled.json").string();
    std::ofstream(mangled) << "{\"schema\":\"pnc-profile/1\"";  // truncated JSON
    EXPECT_EQ(run_cli_rc("prof summary " + mangled), 1);
    EXPECT_EQ(run_cli_rc("curve --profile-hz 0 --profile-out "
                         + (dir_ / "p.json").string()), 2);  // bad rate
}

}  // namespace
