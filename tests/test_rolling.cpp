// Edge-case coverage for the rolling-window aggregators behind the live
// serving telemetry plane (src/obs/rolling.*): injected-time rotation across
// idle gaps, single-sample windows, windows shorter than the query period,
// backwards-time clamping, and a concurrent record/rotate hammer — the TSan
// target the CI sanitize job picks up via its Rolling filter.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/rolling.hpp"

using namespace pnc::obs;

namespace {

/// The serving default: 10 buckets of 0.5 s — a 5 s window.
RollingConfig serving_window() { return RollingConfig{0.5, 10}; }

}  // namespace

// ---- RollingCounter ---------------------------------------------------------

TEST(RollingWindow, CounterCountsWithinWindowAndExpiresBeyondIt) {
    RollingCounter counter(serving_window());
    counter.record(0.0, 3);
    counter.record(2.4, 2);

    EXPECT_EQ(counter.window_count(2.4), 5u);
    // 4.9 s still covers bucket 0 (window = indices 0..9).
    EXPECT_EQ(counter.window_count(4.9), 5u);
    // 5.2 s rotates bucket 0 out; the 2.4 s bucket (index 4) survives.
    EXPECT_EQ(counter.window_count(5.2), 2u);
    // Both gone once the window has fully passed the last record.
    EXPECT_EQ(counter.window_count(8.0), 0u);
}

TEST(RollingWindow, IdleGapLongerThanWindowClearsTheWholeRing) {
    RollingCounter counter(serving_window());
    counter.record(1.0, 7);
    EXPECT_EQ(counter.window_count(1.0), 7u);

    // The gap is much longer than the window: every slot must be cleared,
    // even though the ring indices alias (100/0.5 = 200 ≡ 0 mod 10).
    EXPECT_EQ(counter.window_count(100.0), 0u);
    counter.record(100.0);
    EXPECT_EQ(counter.window_count(100.0), 1u) << "stale slot leaked into a new epoch";
}

TEST(RollingWindow, CounterRateDividesByCoveredSecondsWithBucketFloor) {
    RollingCounter counter(serving_window());
    counter.record(0.0, 10);
    // A lone early sample covers less than one bucket: the denominator is
    // floored at bucket_seconds, never at ~0.
    EXPECT_DOUBLE_EQ(counter.window_rate(0.0), 10.0 / 0.5);
    // Two seconds in, the window has genuinely covered two seconds.
    EXPECT_DOUBLE_EQ(counter.window_rate(2.0), 10.0 / 2.0);
    // Fully expired: count 0 => rate 0.
    EXPECT_DOUBLE_EQ(counter.window_rate(50.0), 0.0);
}

TEST(RollingWindow, WindowShorterThanQueryPeriodSeesOnlyFreshData) {
    // A 0.3 s window polled once per second: every query happens after the
    // previous window fully rotated out, so each poll sees only its own data.
    RollingCounter counter(RollingConfig{0.1, 3});
    counter.record(0.0, 4);
    EXPECT_EQ(counter.window_count(1.0), 0u);
    counter.record(1.0, 2);
    EXPECT_EQ(counter.window_count(1.0), 2u);
    // A huge forward jump clamps the clear loop to one ring revolution.
    EXPECT_EQ(counter.window_count(1e9), 0u);
    counter.record(1e9, 1);
    EXPECT_EQ(counter.window_count(1e9), 1u);
}

TEST(RollingWindow, BackwardsTimeWithinTheWindowStillCounts) {
    // Monotonic sources never go backwards, but a slightly stale `now`
    // captured before a lock must not clear or misplace data.
    RollingCounter counter(serving_window());
    counter.record(5.0, 1);
    counter.record(4.8, 1);  // lands in its own (older, still live) bucket
    EXPECT_EQ(counter.window_count(5.0), 2u);
}

// ---- RollingGauge -----------------------------------------------------------

TEST(RollingWindow, GaugeStatsMergeAcrossBucketsAndExpireOldest) {
    RollingGauge gauge(serving_window());
    gauge.record(0.0, 5.0);
    gauge.record(0.6, 1.0);
    gauge.record(1.2, 3.0);

    RollingGaugeStats stats = gauge.window_stats(1.2);
    EXPECT_EQ(stats.samples, 3u);
    EXPECT_DOUBLE_EQ(stats.last, 3.0);
    EXPECT_DOUBLE_EQ(stats.min, 1.0);
    EXPECT_DOUBLE_EQ(stats.max, 5.0);
    EXPECT_DOUBLE_EQ(stats.mean, 3.0);

    // 5.2 s rotates out the t=0 bucket only.
    stats = gauge.window_stats(5.2);
    EXPECT_EQ(stats.samples, 2u);
    EXPECT_DOUBLE_EQ(stats.min, 1.0);
    EXPECT_DOUBLE_EQ(stats.max, 3.0);
    EXPECT_DOUBLE_EQ(stats.last, 3.0);
    EXPECT_DOUBLE_EQ(stats.mean, 2.0);

    // Idle gap: everything expires, stats return to zero.
    stats = gauge.window_stats(60.0);
    EXPECT_EQ(stats.samples, 0u);
    EXPECT_DOUBLE_EQ(stats.last, 0.0);
}

TEST(RollingWindow, GaugeLastComesFromTheNewestNonEmptyBucket) {
    RollingGauge gauge(serving_window());
    gauge.record(0.0, 9.0);
    gauge.record(1.2, 4.0);
    // Query later than the last record: the newest bucket is empty, `last`
    // must still be the most recent recorded value inside the window.
    const RollingGaugeStats stats = gauge.window_stats(3.0);
    EXPECT_EQ(stats.samples, 2u);
    EXPECT_DOUBLE_EQ(stats.last, 4.0);
}

// ---- RollingHistogram -------------------------------------------------------

TEST(RollingWindow, SingleSampleWindowQuantilesCollapseToTheValue) {
    RollingHistogram hist(serving_window(), RollingHistogram::default_ms_buckets());
    hist.record(0.0, 3.0);

    const HistogramSnapshot snapshot = hist.window_snapshot(0.0);
    EXPECT_EQ(snapshot.count, 1u);
    // Interpolated quantiles are clamped to [min, max]; with one sample both
    // ends are the value itself, so every quantile is exact.
    EXPECT_DOUBLE_EQ(snapshot.quantile(0.50), 3.0);
    EXPECT_DOUBLE_EQ(snapshot.quantile(0.99), 3.0);
    EXPECT_DOUBLE_EQ(snapshot.min, 3.0);
    EXPECT_DOUBLE_EQ(snapshot.max, 3.0);
}

TEST(RollingWindow, HistogramMergesLiveBucketsAndDropsExpiredOnes) {
    RollingHistogram hist(serving_window(), RollingHistogram::default_ms_buckets());
    for (int i = 0; i < 4; ++i) hist.record(0.0, 1.0);
    for (int i = 0; i < 4; ++i) hist.record(3.0, 1000.0);

    HistogramSnapshot snapshot = hist.window_snapshot(3.0);
    EXPECT_EQ(snapshot.count, 8u);
    EXPECT_DOUBLE_EQ(snapshot.min, 1.0);
    EXPECT_DOUBLE_EQ(snapshot.max, 1000.0);
    EXPECT_LT(snapshot.quantile(0.50), snapshot.quantile(0.99));

    // 5.2 s rotates the t=0 samples out; only the slow tail remains.
    snapshot = hist.window_snapshot(5.2);
    EXPECT_EQ(snapshot.count, 4u);
    EXPECT_DOUBLE_EQ(snapshot.min, 1000.0);
    EXPECT_DOUBLE_EQ(snapshot.quantile(0.50), snapshot.quantile(0.99));

    snapshot = hist.window_snapshot(30.0);
    EXPECT_EQ(snapshot.count, 0u);
    EXPECT_DOUBLE_EQ(snapshot.quantile(0.99), 0.0);
}

// ---- concurrency (TSan target) ----------------------------------------------

TEST(RollingWindow, ConcurrentRecordAndRotateIsRaceFree) {
    // Four writers and one rotating reader share each aggregator; the times
    // they pass deliberately interleave so records land while other threads
    // force rotation. TSan proves the per-aggregator lock covers everything;
    // the final counts bound-check that rotation never double-frees a slot.
    RollingCounter counter(RollingConfig{0.01, 8});
    RollingGauge gauge(RollingConfig{0.01, 8});
    RollingHistogram hist(RollingConfig{0.01, 8},
                          RollingHistogram::default_ms_buckets());

    constexpr int kWriters = 4;
    constexpr int kIterations = 2000;
    std::vector<std::thread> threads;
    threads.reserve(kWriters + 1);
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            for (int i = 0; i < kIterations; ++i) {
                // Writers advance at different rates => constant rotation.
                const double now = static_cast<double>(i) * 0.001 * (w + 1);
                counter.record(now);
                gauge.record(now, static_cast<double>(i % 11));
                hist.record(now, static_cast<double>(i % 7) + 0.5);
            }
        });
    }
    threads.emplace_back([&] {
        for (int i = 0; i < kIterations; ++i) {
            const double now = static_cast<double>(i) * 0.002;
            (void)counter.window_count(now);
            (void)counter.window_rate(now);
            (void)gauge.window_stats(now);
            (void)hist.window_snapshot(now);
        }
    });
    for (std::thread& t : threads) t.join();

    const double end = kIterations * 0.001 * kWriters;
    EXPECT_LE(counter.window_count(end),
              static_cast<std::uint64_t>(kWriters) * kIterations);
    const HistogramSnapshot snapshot = hist.window_snapshot(end);
    EXPECT_LE(snapshot.count, static_cast<std::uint64_t>(kWriters) * kIterations);
    // Far past everything: the ring must come back empty, not corrupted.
    EXPECT_EQ(counter.window_count(end + 10.0), 0u);
    EXPECT_EQ(gauge.window_stats(end + 10.0).samples, 0u);
}
