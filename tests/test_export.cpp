// Netlist-export and analog hardware-in-the-loop tests: design extraction,
// SPICE emission and the consistency between the pNN abstraction and the
// analog re-simulation of the printed design.
#include <gtest/gtest.h>

#include "autodiff/ops.hpp"
#include "data/registry.hpp"
#include "pnn/netlist_export.hpp"
#include "pnn/training.hpp"

using namespace pnc;
using math::Matrix;

namespace {

const surrogate::SurrogateModel& surrogate_for(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 500;
        options.sweep_points = 25;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 1200;
        train.mlp.patience = 250;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

pnn::Pnn trained_iris_net() {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 3);
    math::Rng rng(9);
    pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                 &surrogate_for(circuit::NonlinearCircuitKind::kPtanh),
                 &surrogate_for(circuit::NonlinearCircuitKind::kNegativeWeight),
                 surrogate::DesignSpace::table1(), rng);
    pnn::TrainOptions options;
    options.max_epochs = 400;
    options.patience = 150;
    pnn::train_pnn(net, split, options);
    return net;
}

}  // namespace

TEST(DesignExtraction, ShapesAndFeasibility) {
    const auto net = trained_iris_net();
    const auto design = pnn::extract_design(net);
    ASSERT_EQ(design.layers.size(), 2u);
    EXPECT_EQ(design.layer_sizes, (std::vector<std::size_t>{4, 3, 3}));
    EXPECT_TRUE(design.layers[0].has_activation);
    EXPECT_FALSE(design.layers[1].has_activation);  // readout layer
    const auto space = surrogate::DesignSpace::table1();
    for (const auto& layer : design.layers) {
        EXPECT_TRUE(space.contains(layer.activation_omega));
        EXPECT_TRUE(space.contains(layer.negation_omega));
        // All printed conductances inside the printable set.
        for (std::size_t i = 0; i < layer.input_conductances.size(); ++i) {
            const double g = layer.input_conductances[i];
            EXPECT_TRUE(g == 0.0 || (g >= 0.1 && g <= 100.0)) << g;
        }
    }
    EXPECT_GT(design.component_count(), 20u);
}

TEST(DesignExtraction, InversionFlagsMatchThetaSigns) {
    const auto net = trained_iris_net();
    const auto design = pnn::extract_design(net);
    const Matrix& theta = net.layer(0).theta_params()[0].value();
    for (std::size_t i = 0; i < theta.rows(); ++i)
        for (std::size_t j = 0; j < theta.cols(); ++j)
            EXPECT_EQ(design.layers[0].inverted[i][j], theta(i, j) < 0.0);
}

TEST(SpiceExport, ContainsAllStructuralElements) {
    const auto design = pnn::extract_design(trained_iris_net());
    const std::string spice = pnn::export_spice(design);
    EXPECT_NE(spice.find("VDD vdd 0 1"), std::string::npos);
    EXPECT_NE(spice.find("* ---- layer 0"), std::string::npos);
    EXPECT_NE(spice.find("* ---- layer 1"), std::string::npos);
    EXPECT_NE(spice.find("RXB_L0_"), std::string::npos);
    EXPECT_NE(spice.find("XACT_L0N0_"), std::string::npos);
    EXPECT_NE(spice.find(".end"), std::string::npos);
    // The readout layer carries no ptanh instance.
    EXPECT_EQ(spice.find("XACT_L1"), std::string::npos);
}

TEST(AnalogChecker, ForwardProducesVoltages) {
    const auto design = pnn::extract_design(trained_iris_net());
    const pnn::AnalogChecker checker(design, 33);
    const auto out = checker.forward({0.5, 0.5, 0.5, 0.5});
    ASSERT_EQ(out.size(), 3u);
    for (double v : out) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
    EXPECT_THROW(checker.forward({0.5}), std::invalid_argument);
}

TEST(AnalogChecker, AgreesWithAbstraction) {
    // The analog re-simulation must reproduce most pNN decisions — this
    // bounds the modelling error of the surrogate + ptanh fit end to end.
    const auto net = trained_iris_net();
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 3);
    const auto design = pnn::extract_design(net);
    const pnn::AnalogChecker checker(design);
    const auto reference = ad::argmax_rows(net.predict(split.x_test));
    EXPECT_GT(checker.agreement(split.x_test, reference), 0.8);
}

TEST(AnalogChecker, AgreementValidatesInput) {
    const auto design = pnn::extract_design(trained_iris_net());
    const pnn::AnalogChecker checker(design, 17);
    EXPECT_THROW(checker.agreement(Matrix(2, 4), {0}), std::invalid_argument);
}
