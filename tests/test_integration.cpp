// Cross-module integration tests: the paper's central claims at miniature
// scale — (a) the full pipeline from circuit simulation to a trained
// classifier, (b) variation-aware training improves robustness, (c) the
// learnable nonlinear circuit does not hurt and typically helps, and
// (d) abstraction vs analog consistency after the complete flow.
#include <gtest/gtest.h>

#include "autodiff/ops.hpp"
#include "data/registry.hpp"
#include "pnn/netlist_export.hpp"
#include "pnn/training.hpp"

using namespace pnc;

namespace {

struct Pipeline {
    surrogate::SurrogateModel act;
    surrogate::SurrogateModel neg;
};

const Pipeline& pipeline() {
    static const Pipeline p = [] {
        const auto build = [](circuit::NonlinearCircuitKind kind) {
            surrogate::DatasetBuildOptions options;
            options.samples = 600;
            options.sweep_points = 25;
            const auto ds = surrogate::build_surrogate_dataset(
                kind, surrogate::DesignSpace::table1(), options);
            surrogate::SurrogateTrainOptions train;
            train.mlp.max_epochs = 1500;
            train.mlp.patience = 300;
            return surrogate::SurrogateModel::train(ds, train);
        };
        return Pipeline{build(circuit::NonlinearCircuitKind::kPtanh),
                        build(circuit::NonlinearCircuitKind::kNegativeWeight)};
    }();
    return p;
}

pnn::EvalResult train_and_eval(const data::SplitDataset& split, bool learnable,
                               double train_eps, double test_eps, std::uint64_t seed) {
    math::Rng rng(seed);
    pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                 &pipeline().act, &pipeline().neg, surrogate::DesignSpace::table1(), rng);
    pnn::TrainOptions options;
    options.max_epochs = 800;
    options.patience = 200;
    options.learnable_nonlinear = learnable;
    options.epsilon = train_eps;
    options.n_mc_train = train_eps > 0 ? 8 : 1;
    options.seed = seed;
    pnn::train_pnn(net, split, options);
    pnn::EvalOptions eval;
    eval.epsilon = test_eps;
    eval.n_mc = 60;
    return pnn::evaluate_pnn(net, split.x_test, split.y_test, eval);
}

}  // namespace

TEST(Integration, FullPipelineReachesGoodAccuracy) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 21);
    const auto result = train_and_eval(split, true, 0.0, 0.0, 2);
    EXPECT_GT(result.mean_accuracy, 0.85);
}

TEST(Integration, VariationAwareTrainingImprovesRobustness) {
    // The paper's core robustness claim: at 10% test variation, the
    // variation-aware model shows higher mean accuracy and smaller spread
    // than the nominally trained one.
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), 22);
    const auto nominal = train_and_eval(split, false, 0.0, 0.10, 3);
    const auto aware = train_and_eval(split, false, 0.10, 0.10, 3);
    EXPECT_GE(aware.mean_accuracy, nominal.mean_accuracy - 0.02);
    EXPECT_LT(aware.std_accuracy, nominal.std_accuracy + 0.02);
    // At least one of the two improvements must be strict.
    EXPECT_TRUE(aware.mean_accuracy > nominal.mean_accuracy ||
                aware.std_accuracy < nominal.std_accuracy);
}

TEST(Integration, FullMethodBeatsBaseline) {
    // Learnable nonlinear circuit + variation-aware vs plain baseline
    // (Table III's top vs bottom row) on one dataset.
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), 23);
    const auto baseline = train_and_eval(split, false, 0.0, 0.10, 4);
    const auto full = train_and_eval(split, true, 0.10, 0.10, 4);
    EXPECT_GT(full.mean_accuracy + 1e-9, baseline.mean_accuracy);
    EXPECT_LT(full.std_accuracy, baseline.std_accuracy + 0.02);
}

TEST(Integration, TrainedDesignSurvivesAnalogResimulation) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 24);
    math::Rng rng(6);
    pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                 &pipeline().act, &pipeline().neg, surrogate::DesignSpace::table1(), rng);
    pnn::TrainOptions options;
    options.max_epochs = 600;
    options.patience = 200;
    pnn::train_pnn(net, split, options);

    const double model_acc = ad::accuracy(net.predict(split.x_test), split.y_test);
    const pnn::AnalogChecker checker(pnn::extract_design(net));
    const double analog_acc = checker.agreement(split.x_test, split.y_test);
    // The analog realization keeps most of the abstraction's accuracy.
    EXPECT_GT(analog_acc, model_acc - 0.15);
}
