// The regression observatory: suite/headline schemas, metric
// classification, tolerance configuration, baseline diffing and the Chrome
// trace exporter. Everything here is pure document manipulation — no
// benches run — so the verdict logic can be exercised exhaustively.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/baseline.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

using namespace pnc;
using obs::json::Value;

namespace {

obs::BenchSuite demo_suite() {
    obs::BenchSuite suite;
    suite.meta = {{"tool", "pnc-bench"}, {"tier", "smoke"}, {"git_sha", "abc123"}};
    obs::BenchResult bench;
    bench.name = "table2";
    bench.exit_code = 0;
    bench.wall_seconds = 12.5;
    bench.peak_rss_kb = 40960.0;
    bench.metrics = {{"accuracy.full.eps10.mean", 0.91}, {"experiment.seconds", 11.0}};
    suite.benches.push_back(bench);
    return suite;
}

/// Find the delta for `name`; fails the test when absent.
const obs::MetricDelta& delta_for(const obs::DiffResult& diff, const std::string& name) {
    for (const auto& delta : diff.deltas)
        if (delta.name == name) return delta;
    ADD_FAILURE() << "no delta named " << name;
    static obs::MetricDelta missing;
    return missing;
}

}  // namespace

// ------------------------------------------------------------ suite schema

TEST(BenchSuite, DocumentRoundTrips) {
    const obs::BenchSuite suite = demo_suite();
    const Value doc = obs::bench_suite_document(suite);
    EXPECT_EQ(obs::validate_bench_suite(doc), "");

    // Through text and back: what the driver writes, `pnc report` reads.
    const obs::BenchSuite back = obs::parse_bench_suite(Value::parse(doc.dump()));
    EXPECT_EQ(back.meta_value("tool"), "pnc-bench");
    EXPECT_EQ(back.meta_value("tier"), "smoke");
    EXPECT_EQ(back.meta_value("absent"), "");
    ASSERT_EQ(back.benches.size(), 1u);
    const obs::BenchResult* bench = back.find("table2");
    ASSERT_NE(bench, nullptr);
    EXPECT_EQ(bench->exit_code, 0);
    EXPECT_DOUBLE_EQ(bench->wall_seconds, 12.5);
    EXPECT_DOUBLE_EQ(bench->peak_rss_kb, 40960.0);
    ASSERT_EQ(bench->metrics.size(), 2u);
    EXPECT_EQ(bench->metrics[0].first, "accuracy.full.eps10.mean");
    EXPECT_DOUBLE_EQ(bench->metrics[0].second, 0.91);
    EXPECT_EQ(back.find("nope"), nullptr);
}

TEST(BenchSuite, ValidateRejectsViolations) {
    const obs::BenchSuite suite = demo_suite();

    Value doc = obs::bench_suite_document(suite);
    doc.set("schema", Value::string("pnc-bench-suite/2"));
    EXPECT_NE(obs::validate_bench_suite(doc), "");

    doc = obs::bench_suite_document(suite);
    Value meta = Value::object();
    meta.set("tool", Value::string("pnc-bench"));  // tier missing
    doc.set("meta", std::move(meta));
    EXPECT_NE(obs::validate_bench_suite(doc), "");

    doc = obs::bench_suite_document(suite);
    doc.set("benches", Value::object());  // no benches at all
    EXPECT_NE(obs::validate_bench_suite(doc), "");

    EXPECT_NE(obs::validate_bench_suite(Value::number(3.0)), "");
    EXPECT_THROW(obs::parse_bench_suite(Value::object()), std::runtime_error);
}

TEST(BenchSuite, NonFiniteMetricSerializesAsNullAndIsRejected) {
    // Satellite contract: NaN must not round-trip silently. The writer emits
    // null for non-finite doubles; the validator refuses the document.
    obs::BenchSuite suite = demo_suite();
    suite.benches[0].metrics.emplace_back("accuracy.broken", std::nan(""));
    const Value doc = obs::bench_suite_document(suite);
    const std::string text = doc.dump();
    EXPECT_NE(text.find("null"), std::string::npos);

    const std::string err = obs::validate_bench_suite(Value::parse(text));
    EXPECT_NE(err.find("accuracy.broken"), std::string::npos) << err;
    EXPECT_THROW(obs::parse_bench_suite(Value::parse(text)), std::runtime_error);
}

TEST(BenchSuite, NegativeWallSecondsRejected) {
    obs::BenchSuite suite = demo_suite();
    suite.benches[0].wall_seconds = -1.0;
    EXPECT_NE(obs::validate_bench_suite(obs::bench_suite_document(suite)), "");
}

TEST(BenchSuite, CpuSecondsAreOptionalAndRoundTrip) {
    // Satellite contract: the driver's wait4 rusage lands in the suite as
    // user_seconds / sys_seconds; suites recorded before the field existed
    // (sentinel -1) omit it and still validate.
    obs::BenchSuite suite = demo_suite();
    const Value without = obs::bench_suite_document(suite);
    EXPECT_EQ(obs::validate_bench_suite(without), "");
    EXPECT_EQ(without.dump().find("user_seconds"), std::string::npos);
    const obs::BenchSuite old = obs::parse_bench_suite(without);
    EXPECT_LT(old.benches[0].user_seconds, 0.0);
    EXPECT_LT(old.benches[0].sys_seconds, 0.0);

    suite.benches[0].user_seconds = 10.25;
    suite.benches[0].sys_seconds = 0.75;
    const Value doc = obs::bench_suite_document(suite);
    EXPECT_EQ(obs::validate_bench_suite(doc), "");
    const obs::BenchSuite back = obs::parse_bench_suite(Value::parse(doc.dump()));
    EXPECT_DOUBLE_EQ(back.benches[0].user_seconds, 10.25);
    EXPECT_DOUBLE_EQ(back.benches[0].sys_seconds, 0.75);
}

TEST(BenchSuite, NegativeCpuSecondsRejected) {
    // The sentinel never serializes; a document carrying a negative value
    // was hand-mangled and must be refused.
    obs::BenchSuite suite = demo_suite();
    suite.benches[0].user_seconds = 1.0;
    suite.benches[0].sys_seconds = 0.1;
    Value doc = obs::bench_suite_document(suite);
    Value benches = Value::object();
    for (const auto& [name, row] : doc.find("benches")->members()) {
        Value copy = row;
        copy.set("sys_seconds", Value::number(-0.5));
        benches.set(name, std::move(copy));
    }
    doc.set("benches", std::move(benches));
    EXPECT_NE(obs::validate_bench_suite(doc), "");
}

// --------------------------------------------------------------- headlines

TEST(Headline, DocumentValidates) {
    const Value doc = obs::headline_document("bench_fig2", true,
                                             {{"swing.ptanh_default", 0.8}});
    EXPECT_EQ(obs::validate_headline(doc), "");
    EXPECT_EQ(obs::validate_headline(Value::parse(doc.dump())), "");

    Value bad = obs::headline_document("bench_fig2", true, {});
    bad.set("tool", Value::string(""));
    EXPECT_NE(obs::validate_headline(bad), "");

    bad = obs::headline_document("bench_fig2", false,
                                 {{"x", std::numeric_limits<double>::infinity()}});
    EXPECT_NE(obs::validate_headline(Value::parse(bad.dump())), "");
    EXPECT_NE(obs::validate_headline(Value::string("nope")), "");
}

// ----------------------------------------------------------- classification

TEST(ClassifyMetric, BucketsByNameToken) {
    using K = obs::MetricKind;
    // Throughput wins even when a timing token is also present.
    EXPECT_EQ(obs::classify_metric("campaign.samples_per_sec"), K::kThroughput);
    EXPECT_EQ(obs::classify_metric("eval.t2.speedup"), K::kThroughput);

    EXPECT_EQ(obs::classify_metric("experiment.seconds"), K::kTiming);
    EXPECT_EQ(obs::classify_metric("eval.t1.ms"), K::kTiming);
    EXPECT_EQ(obs::classify_metric("kernel.real_ns"), K::kTiming);
    EXPECT_EQ(obs::classify_metric("cost.iris.latency_ms"), K::kTiming);
    EXPECT_EQ(obs::classify_metric("peak_rss_kb"), K::kTiming);
    EXPECT_EQ(obs::classify_metric("cost.iris.watts"), K::kTiming);
    EXPECT_EQ(obs::classify_metric("hidden3.components"), K::kTiming);

    EXPECT_EQ(obs::classify_metric("accuracy.full.eps10.mean"), K::kAccuracy);
    EXPECT_EQ(obs::classify_metric("yield.full"), K::kAccuracy);
    EXPECT_EQ(obs::classify_metric("certified.baseline.eps10"), K::kAccuracy);
    EXPECT_EQ(obs::classify_metric("surrogate.ptanh.test_r2"), K::kAccuracy);

    EXPECT_EQ(obs::classify_metric("fit.ptanh.rmse"), K::kQualityLoss);
    EXPECT_EQ(obs::classify_metric("train.best_val_loss"), K::kQualityLoss);

    // Deliberately neutral names never gate (table3 percent-scale gains).
    EXPECT_EQ(obs::classify_metric("gain.eps10.acc_pct"), K::kInfo);
    EXPECT_EQ(obs::classify_metric("campaigns.count"), K::kInfo);
}

// --------------------------------------------------------------- tolerance

TEST(ToleranceConfig, FromJsonAndOverrides) {
    const Value doc = Value::parse(
        R"({"rel_timing": 0.5, "abs_accuracy": 0.01,)"
        R"( "overrides": {"table2.accuracy.full.eps10.mean": 0.05}})");
    const obs::ToleranceConfig config = obs::ToleranceConfig::from_json(doc);
    EXPECT_DOUBLE_EQ(config.rel_timing, 0.5);
    EXPECT_DOUBLE_EQ(config.abs_accuracy, 0.01);
    EXPECT_DOUBLE_EQ(config.threshold_for("table2.accuracy.full.eps10.mean",
                                          obs::MetricKind::kAccuracy),
                     0.05);
    EXPECT_DOUBLE_EQ(config.threshold_for("other.accuracy", obs::MetricKind::kAccuracy),
                     0.01);
    EXPECT_DOUBLE_EQ(config.threshold_for("other.seconds", obs::MetricKind::kTiming), 0.5);
    EXPECT_DOUBLE_EQ(config.threshold_for("whatever", obs::MetricKind::kInfo), 0.0);
}

TEST(ToleranceConfig, RejectsUnknownKeysAndBadValues) {
    // A typo must not silently loosen a CI gate.
    EXPECT_THROW(obs::ToleranceConfig::from_json(Value::parse(R"({"rel_timming": 0.5})")),
                 std::runtime_error);
    EXPECT_THROW(obs::ToleranceConfig::from_json(Value::parse(R"({"rel_timing": -1})")),
                 std::runtime_error);
    EXPECT_THROW(obs::ToleranceConfig::from_json(Value::parse(R"({"overrides": 3})")),
                 std::runtime_error);
    EXPECT_THROW(
        obs::ToleranceConfig::from_json(Value::parse(R"({"overrides": {"a": "x"}})")),
        std::runtime_error);
    EXPECT_THROW(obs::ToleranceConfig::from_json(Value::number(1.0)), std::runtime_error);
}

// -------------------------------------------------------------------- diff

TEST(DiffSuites, IdenticalSuitesAreRegressionFree) {
    const obs::BenchSuite suite = demo_suite();
    const obs::DiffResult diff = obs::diff_suites(suite, suite, {});
    EXPECT_FALSE(diff.accuracy_regressed);
    EXPECT_FALSE(diff.timing_regressed);
    for (const auto& delta : diff.deltas) EXPECT_EQ(delta.verdict, obs::Verdict::kOk);
}

TEST(DiffSuites, AccuracyDropBeyondToleranceRegresses) {
    const obs::BenchSuite baseline = demo_suite();
    obs::BenchSuite candidate = baseline;
    candidate.benches[0].metrics[0].second = 0.91 - 0.05;  // > abs_accuracy 0.02
    const obs::DiffResult diff = obs::diff_suites(baseline, candidate, {});
    EXPECT_TRUE(diff.accuracy_regressed);
    EXPECT_FALSE(diff.timing_regressed);
    EXPECT_EQ(delta_for(diff, "table2.accuracy.full.eps10.mean").verdict,
              obs::Verdict::kRegressed);

    // Within tolerance: fine.
    candidate.benches[0].metrics[0].second = 0.91 - 0.01;
    EXPECT_FALSE(obs::diff_suites(baseline, candidate, {}).accuracy_regressed);

    // Improvement beyond tolerance is flagged as improved, never regressed.
    candidate.benches[0].metrics[0].second = 0.91 + 0.05;
    const obs::DiffResult better = obs::diff_suites(baseline, candidate, {});
    EXPECT_FALSE(better.accuracy_regressed);
    EXPECT_EQ(delta_for(better, "table2.accuracy.full.eps10.mean").verdict,
              obs::Verdict::kImproved);
}

TEST(DiffSuites, TimingUsesRelativeThreshold) {
    const obs::BenchSuite baseline = demo_suite();
    obs::BenchSuite candidate = baseline;
    candidate.benches[0].wall_seconds = 12.5 * 1.5;  // +50% > rel_timing 25%
    obs::DiffResult diff = obs::diff_suites(baseline, candidate, {});
    EXPECT_TRUE(diff.timing_regressed);
    EXPECT_FALSE(diff.accuracy_regressed);
    EXPECT_EQ(delta_for(diff, "table2.wall_seconds").verdict, obs::Verdict::kRegressed);

    candidate.benches[0].wall_seconds = 12.5 * 1.2;  // +20% — inside tolerance
    EXPECT_FALSE(obs::diff_suites(baseline, candidate, {}).timing_regressed);

    // A loosened per-metric override rescues the +50% case.
    obs::ToleranceConfig loose;
    loose.overrides.emplace_back("table2.wall_seconds", 0.6);
    candidate.benches[0].wall_seconds = 12.5 * 1.5;
    EXPECT_FALSE(obs::diff_suites(baseline, candidate, loose).timing_regressed);
}

TEST(DiffSuites, CpuSecondsCompareWhenBothSidesRecordThem) {
    obs::BenchSuite baseline = demo_suite();
    baseline.benches[0].user_seconds = 10.0;
    baseline.benches[0].sys_seconds = 1.0;
    obs::BenchSuite candidate = baseline;
    candidate.benches[0].user_seconds = 10.0 * 1.5;  // +50% > rel_timing 25%

    const obs::DiffResult diff = obs::diff_suites(baseline, candidate, {});
    EXPECT_TRUE(diff.timing_regressed);
    const obs::MetricDelta& user = delta_for(diff, "table2.user_seconds");
    EXPECT_EQ(user.verdict, obs::Verdict::kRegressed);
    EXPECT_EQ(user.kind, obs::MetricKind::kTiming);
    EXPECT_EQ(delta_for(diff, "table2.sys_seconds").verdict, obs::Verdict::kOk);
}

TEST(DiffSuites, CpuSecondsOnOneSideOnlyAreInformational) {
    // Baseline predates the rusage field (or vice versa): surface the
    // asymmetry as new/missing without gating — the wall-clock comparison
    // still carries the regression signal.
    const obs::BenchSuite bare = demo_suite();
    obs::BenchSuite measured = bare;
    measured.benches[0].user_seconds = 5.0;
    measured.benches[0].sys_seconds = 0.5;

    const obs::DiffResult gained = obs::diff_suites(bare, measured, {});
    EXPECT_FALSE(gained.accuracy_regressed);
    EXPECT_FALSE(gained.timing_regressed);
    EXPECT_EQ(delta_for(gained, "table2.user_seconds").verdict, obs::Verdict::kNew);

    const obs::DiffResult lost = obs::diff_suites(measured, bare, {});
    EXPECT_FALSE(lost.accuracy_regressed);
    EXPECT_FALSE(lost.timing_regressed);
    EXPECT_EQ(delta_for(lost, "table2.sys_seconds").verdict, obs::Verdict::kMissing);
}

TEST(DiffSuites, ThroughputDropSetsItsOwnFlag) {
    // per_sec / speedup metrics gate separately from wall-clock timings:
    // a throughput collapse must raise throughput_regressed (exit 3 in
    // `pnc report`, immune to --timing-warn-only), never timing_regressed.
    obs::BenchSuite baseline = demo_suite();
    baseline.benches[0].metrics = {{"infer.batch.compiled.samples_per_sec", 1000.0},
                                   {"infer.batch.speedup", 10.0}};
    obs::BenchSuite candidate = baseline;
    candidate.benches[0].metrics = {{"infer.batch.compiled.samples_per_sec", 400.0},
                                    {"infer.batch.speedup", 10.0}};

    const obs::DiffResult diff = obs::diff_suites(baseline, candidate, {});
    EXPECT_TRUE(diff.throughput_regressed);
    EXPECT_FALSE(diff.timing_regressed);
    EXPECT_FALSE(diff.accuracy_regressed);
    EXPECT_EQ(delta_for(diff, "table2.infer.batch.compiled.samples_per_sec").verdict,
              obs::Verdict::kRegressed);
    EXPECT_EQ(delta_for(diff, "table2.infer.batch.compiled.samples_per_sec").kind,
              obs::MetricKind::kThroughput);

    // Inside the relative tolerance (and faster-than-baseline) → clean.
    candidate.benches[0].metrics[0].second = 900.0;
    EXPECT_FALSE(obs::diff_suites(baseline, candidate, {}).throughput_regressed);
    candidate.benches[0].metrics[0].second = 2000.0;
    EXPECT_FALSE(obs::diff_suites(baseline, candidate, {}).throughput_regressed);

    // A per-metric override rescues the drop, mirroring the timing gate.
    obs::ToleranceConfig loose;
    loose.overrides.emplace_back("table2.infer.batch.compiled.samples_per_sec", 0.7);
    candidate.benches[0].metrics[0].second = 400.0;
    EXPECT_FALSE(obs::diff_suites(baseline, candidate, loose).throughput_regressed);
}

TEST(DiffSuites, MissingBenchIsAccuracyGradeRegression) {
    const obs::BenchSuite baseline = demo_suite();
    obs::BenchSuite candidate = baseline;
    candidate.benches.clear();
    obs::BenchResult other;
    other.name = "other_bench";
    candidate.benches.push_back(other);

    const obs::DiffResult diff = obs::diff_suites(baseline, candidate, {});
    EXPECT_TRUE(diff.accuracy_regressed);
    EXPECT_EQ(delta_for(diff, "table2").verdict, obs::Verdict::kMissing);
    // The candidate-only bench is informational.
    EXPECT_EQ(delta_for(diff, "other_bench").verdict, obs::Verdict::kNew);
}

TEST(DiffSuites, FailingCandidateBenchCountsAsMissing) {
    const obs::BenchSuite baseline = demo_suite();
    obs::BenchSuite candidate = baseline;
    candidate.benches[0].exit_code = 1;
    const obs::DiffResult diff = obs::diff_suites(baseline, candidate, {});
    EXPECT_TRUE(diff.accuracy_regressed);
    EXPECT_EQ(delta_for(diff, "table2").verdict, obs::Verdict::kMissing);
}

TEST(DiffSuites, MissingAndNewMetricsWithinABench) {
    const obs::BenchSuite baseline = demo_suite();
    obs::BenchSuite candidate = baseline;
    candidate.benches[0].metrics = {{"accuracy.full.eps10.mean", 0.91},
                                    {"accuracy.extra", 0.5}};  // seconds dropped

    const obs::DiffResult diff = obs::diff_suites(baseline, candidate, {});
    EXPECT_TRUE(diff.accuracy_regressed);  // a dropped metric is a coverage loss
    EXPECT_EQ(delta_for(diff, "table2.experiment.seconds").verdict,
              obs::Verdict::kMissing);
    EXPECT_EQ(delta_for(diff, "table2.accuracy.extra").verdict, obs::Verdict::kNew);
}

TEST(DiffSuites, InfoMetricsNeverGate) {
    obs::BenchSuite baseline = demo_suite();
    baseline.benches[0].metrics = {{"gain.eps10.acc_pct", 5.0}};
    obs::BenchSuite candidate = baseline;
    candidate.benches[0].metrics = {{"gain.eps10.acc_pct", -40.0}};
    const obs::DiffResult diff = obs::diff_suites(baseline, candidate, {});
    EXPECT_FALSE(diff.accuracy_regressed);
    EXPECT_FALSE(diff.timing_regressed);
    EXPECT_EQ(delta_for(diff, "table2.gain.eps10.acc_pct").verdict, obs::Verdict::kOk);
}

TEST(FormatDiff, WorstVerdictsSortFirst) {
    const obs::BenchSuite baseline = demo_suite();
    obs::BenchSuite candidate = baseline;
    candidate.benches[0].metrics[0].second = 0.5;  // hard accuracy regression
    const std::string table = obs::format_diff(obs::diff_suites(baseline, candidate, {}));

    const auto regressed = table.find("REGRESSED");
    const auto ok = table.find(" ok");
    ASSERT_NE(regressed, std::string::npos) << table;
    ASSERT_NE(ok, std::string::npos) << table;
    EXPECT_LT(regressed, ok) << table;
    EXPECT_NE(table.find("table2.accuracy.full.eps10.mean"), std::string::npos);
}

// ------------------------------------------------------------ chrome trace

TEST(ChromeTrace, DocumentFromTreeValidates) {
    obs::TraceNode root("root");
    obs::TraceNode& experiment = root.child("experiment");
    experiment.count = 1;
    experiment.seconds = 2.0;
    obs::TraceNode& train = experiment.child("train_pnn");
    train.count = 3;
    train.seconds = 1.5;
    obs::TraceNode& eval = experiment.child("evaluate_pnn");
    eval.count = 3;
    eval.seconds = 0.25;

    const Value doc = obs::chrome_trace_document(root);
    EXPECT_EQ(obs::validate_chrome_trace(doc), "");
    EXPECT_EQ(obs::validate_chrome_trace(Value::parse(doc.dump())), "");

    // One metadata event plus one "X" per tree node.
    const Value* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    EXPECT_EQ(events->items().size(), 1u + 3u);
    EXPECT_EQ(events->items()[0].find("ph")->as_string(), "M");
    bool found_train = false;
    for (const Value& event : events->items()) {
        if (event.find("name") && event.find("name")->as_string() == "train_pnn") {
            found_train = true;
            EXPECT_EQ(event.find("ph")->as_string(), "X");
            // Aggregate seconds → microseconds of synthesized duration.
            EXPECT_NEAR(event.find("dur")->as_number(), 1.5e6, 1.0);
        }
    }
    EXPECT_TRUE(found_train);

    // Children are laid out inside their parent's span.
    const Value& parent = events->items()[1];
    const Value& child = events->items()[2];
    EXPECT_GE(child.find("ts")->as_number(), parent.find("ts")->as_number());
}

TEST(ChromeTrace, SelfTimeArgAttributesExclusiveSeconds) {
    // Satellite contract: every X event carries args.self_seconds — the
    // node's own seconds minus its children's, clamped at zero so timer
    // jitter (children summing past the parent) never emits a negative.
    obs::TraceNode root("root");
    obs::TraceNode& parent = root.child("experiment");
    parent.count = 1;
    parent.seconds = 2.0;
    obs::TraceNode& child = parent.child("train_pnn");
    child.count = 2;
    child.seconds = 1.5;
    obs::TraceNode& jitter = root.child("jittered");
    jitter.count = 1;
    jitter.seconds = 1.0;
    jitter.child("overlong").seconds = 1.25;  // child measured past parent

    const Value doc = obs::chrome_trace_document(root);
    ASSERT_EQ(obs::validate_chrome_trace(doc), "");
    double parent_self = -1.0, child_self = -1.0, jitter_self = -1.0;
    for (const Value& event : doc.find("traceEvents")->items()) {
        if (!event.find("ph") || event.find("ph")->as_string() != "X") continue;
        ASSERT_NE(event.find("args"), nullptr);
        const Value* self = event.find("args")->find("self_seconds");
        ASSERT_NE(self, nullptr) << "X event without args.self_seconds";
        const std::string name = event.find("name")->as_string();
        if (name == "experiment") parent_self = self->as_number();
        if (name == "train_pnn") child_self = self->as_number();
        if (name == "jittered") jitter_self = self->as_number();
    }
    EXPECT_DOUBLE_EQ(parent_self, 0.5);   // 2.0 - 1.5
    EXPECT_DOUBLE_EQ(child_self, 1.5);    // leaf: all time is self time
    EXPECT_DOUBLE_EQ(jitter_self, 0.0);   // clamped, not -0.25

    // The validator rejects a negative self_seconds outright.
    Value tampered = Value::parse(doc.dump());
    Value events = Value::array();
    for (const Value& event : tampered.find("traceEvents")->items()) {
        Value copy = event;
        if (copy.find("args") && copy.find("args")->find("self_seconds")) {
            Value args = *copy.find("args");
            args.set("self_seconds", Value::number(-0.1));
            copy.set("args", std::move(args));
        }
        events.push_back(std::move(copy));
    }
    tampered.set("traceEvents", std::move(events));
    EXPECT_NE(obs::validate_chrome_trace(tampered), "");
}

TEST(ChromeTrace, ValidatorRejectsViolations) {
    EXPECT_NE(obs::validate_chrome_trace(Value::number(1.0)), "");
    EXPECT_NE(obs::validate_chrome_trace(Value::object()), "");

    obs::TraceNode root("root");
    root.child("span").count = 1;
    Value doc = obs::chrome_trace_document(root);
    // Corrupt an event's phase.
    const std::string text = doc.dump();
    Value tampered = Value::parse(text);
    // Rebuild traceEvents with a bogus phase on the last event.
    Value events = Value::array();
    const auto& items = tampered.find("traceEvents")->items();
    for (std::size_t i = 0; i < items.size(); ++i) {
        Value event = items[i];
        if (i + 1 == items.size()) event.set("ph", Value::string("Q"));
        events.push_back(std::move(event));
    }
    tampered.set("traceEvents", std::move(events));
    EXPECT_NE(obs::validate_chrome_trace(tampered), "");
}

// ---------------------------------------------------- report CLI errors

#ifdef PNC_CLI_PATH
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace {

struct CliResult {
    int exit_code = -1;
    std::string output;  ///< stdout + stderr
};

CliResult run_cli(const std::string& arguments) {
    const auto capture = std::filesystem::temp_directory_path() /
                         ("pnc_observatory_cli_" + std::to_string(getpid()));
    const int status = std::system((std::string(PNC_CLI_PATH) + " " + arguments + " > " +
                                    capture.string() + " 2>&1")
                                       .c_str());
    CliResult result;
    if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
    std::ifstream in(capture);
    std::ostringstream os;
    os << in.rdbuf();
    result.output = os.str();
    std::filesystem::remove(capture);
    return result;
}

}  // namespace

TEST(ReportCli, MissingBaselineFileIsUsageErrorNamingThePath) {
    // `report diff` against a file that does not exist is a bad invocation
    // (exit 2) whose message names the offending path — not a generic JSON
    // parse failure (exit 1).
    const std::string missing = "/nonexistent/pnc_no_such_baseline.json";
    const auto diff = run_cli("report diff " + missing + " " + missing);
    EXPECT_EQ(diff.exit_code, 2) << diff.output;
    EXPECT_NE(diff.output.find(missing), std::string::npos) << diff.output;

    const auto check = run_cli("report check --baseline " + missing);
    EXPECT_EQ(check.exit_code, 2) << check.output;
    EXPECT_NE(check.output.find(missing), std::string::npos) << check.output;

    // A present-but-malformed artifact stays a runtime error (exit 1).
    const auto garbled = std::filesystem::temp_directory_path() /
                         ("pnc_observatory_garbled_" + std::to_string(getpid()) + ".json");
    std::ofstream(garbled) << "{not json";
    const auto parse = run_cli("report diff " + garbled.string() + " " + garbled.string());
    EXPECT_EQ(parse.exit_code, 1) << parse.output;
    std::filesystem::remove(garbled);
}

TEST(ReportCli, ThroughputRegressionExitsThreeEvenWithTimingWarnOnly) {
    // This is the bench-smoke contract for the inference baselines: a
    // samples/sec collapse must fail the job (exit 3) even though the job
    // passes --timing-warn-only 1 for wall-clock jitter.
    obs::BenchSuite baseline = demo_suite();
    baseline.benches[0].metrics = {{"infer.batch.compiled.samples_per_sec", 1000.0}};
    obs::BenchSuite candidate = baseline;
    candidate.benches[0].metrics = {{"infer.batch.compiled.samples_per_sec", 300.0}};

    const auto dir = std::filesystem::temp_directory_path();
    const auto base_path =
        dir / ("pnc_observatory_tp_base_" + std::to_string(getpid()) + ".json");
    const auto cand_path =
        dir / ("pnc_observatory_tp_cand_" + std::to_string(getpid()) + ".json");
    std::ofstream(base_path) << obs::bench_suite_document(baseline).dump();
    std::ofstream(cand_path) << obs::bench_suite_document(candidate).dump();

    const auto check = run_cli("report check " + cand_path.string() + " --baseline " +
                               base_path.string() + " --timing-warn-only 1");
    EXPECT_EQ(check.exit_code, 3) << check.output;
    EXPECT_NE(check.output.find("THROUGHPUT REGRESSION"), std::string::npos)
        << check.output;

    // The same pair inside tolerance is clean.
    candidate.benches[0].metrics[0].second = 990.0;
    std::ofstream(cand_path) << obs::bench_suite_document(candidate).dump();
    const auto ok = run_cli("report check " + cand_path.string() + " --baseline " +
                            base_path.string() + " --timing-warn-only 1");
    EXPECT_EQ(ok.exit_code, 0) << ok.output;

    std::filesystem::remove(base_path);
    std::filesystem::remove(cand_path);
}
#endif  // PNC_CLI_PATH
