// Dataset generator and registry tests, including exactness properties of
// the closed-form datasets and split/normalization behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/generators.hpp"
#include "data/registry.hpp"

using namespace pnc;
using data::Dataset;

// ---- parameterized spec conformance ------------------------------------

class DatasetSpecTest : public ::testing::TestWithParam<data::DatasetSpec> {};

TEST_P(DatasetSpecTest, MatchesSpec) {
    const auto& spec = GetParam();
    const Dataset ds = data::make_dataset(spec.name);
    EXPECT_EQ(ds.size(), spec.samples);
    EXPECT_EQ(ds.n_features(), spec.features);
    EXPECT_EQ(ds.n_classes, spec.classes);
    EXPECT_NO_THROW(ds.validate());
}

TEST_P(DatasetSpecTest, Deterministic) {
    const auto& spec = GetParam();
    const Dataset a = data::make_dataset(spec.name);
    const Dataset b = data::make_dataset(spec.name);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_DOUBLE_EQ(math::max_abs_diff(a.features, b.features), 0.0);
}

TEST_P(DatasetSpecTest, EveryClassHasReasonableSupport) {
    const auto& spec = GetParam();
    const Dataset ds = data::make_dataset(spec.name);
    std::vector<std::size_t> counts(static_cast<std::size_t>(ds.n_classes), 0);
    for (int y : ds.labels) ++counts[static_cast<std::size_t>(y)];
    for (std::size_t c = 0; c < counts.size(); ++c)
        EXPECT_GE(counts[c], ds.size() / 50) << "class " << c << " nearly empty";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, DatasetSpecTest,
                         ::testing::ValuesIn(data::benchmark_specs()),
                         [](const auto& info) { return info.param.name; });

// ---- exact datasets ------------------------------------------------------

TEST(BalanceScale, ExactLabelRule) {
    const Dataset ds = data::make_balance_scale();
    for (std::size_t i = 0; i < ds.size(); ++i) {
        const double torque = ds.features(i, 0) * ds.features(i, 1) -
                              ds.features(i, 2) * ds.features(i, 3);
        const int expected = torque > 0 ? 0 : (torque == 0 ? 1 : 2);
        ASSERT_EQ(ds.labels[i], expected) << "row " << i;
    }
}

TEST(BalanceScale, ExactClassCounts) {
    const Dataset ds = data::make_balance_scale();
    std::vector<int> counts(3, 0);
    for (int y : ds.labels) ++counts[static_cast<std::size_t>(y)];
    EXPECT_EQ(counts[0], 288);  // left heavier (UCI: L)
    EXPECT_EQ(counts[1], 49);   // balanced (UCI: B)
    EXPECT_EQ(counts[2], 288);  // right heavier (UCI: R)
}

TEST(TicTacToe, ExactUciCounts) {
    const Dataset ds = data::make_tictactoe_endgame();
    EXPECT_EQ(ds.size(), 958u);  // the UCI dataset size
    int positive = 0;
    for (int y : ds.labels) positive += y == 1;
    EXPECT_EQ(positive, 626);  // "x wins" boards in the UCI dataset
}

TEST(TicTacToe, AllBoardsAreUniqueAndLegal) {
    const Dataset ds = data::make_tictactoe_endgame();
    std::set<std::vector<double>> seen;
    for (std::size_t i = 0; i < ds.size(); ++i) {
        std::vector<double> row(9);
        int x_count = 0, o_count = 0;
        for (std::size_t c = 0; c < 9; ++c) {
            row[c] = ds.features(i, c);
            x_count += row[c] == 1.0;
            o_count += row[c] == 0.0;
        }
        EXPECT_TRUE(seen.insert(row).second) << "duplicate board at row " << i;
        // x moves first: x count equals o count or one more.
        EXPECT_TRUE(x_count == o_count || x_count == o_count + 1);
    }
}

TEST(AcuteInflammation, LabelFollowsDiagnosisRule) {
    const Dataset ds = data::make_acute_inflammation(101);
    for (std::size_t i = 0; i < ds.size(); ++i) {
        const bool urine_pushing = ds.features(i, 3) > 0.5;
        const bool micturition = ds.features(i, 4) > 0.5;
        const bool burning = ds.features(i, 5) > 0.5;
        const int expected = (urine_pushing && (micturition || burning)) ? 1 : 0;
        ASSERT_EQ(ds.labels[i], expected);
    }
}

// ---- synthetic dataset sanity ----------------------------------------------

TEST(BreastCancer, ScoresAreIntegerGradesInRange) {
    const Dataset ds = data::make_breast_cancer(103);
    for (std::size_t i = 0; i < ds.size(); ++i) {
        for (std::size_t c = 0; c < ds.n_features(); ++c) {
            const double v = ds.features(i, c);
            ASSERT_GE(v, 1.0);
            ASSERT_LE(v, 10.0);
            ASSERT_DOUBLE_EQ(v, std::round(v));
        }
    }
}

TEST(BreastCancer, ClassesAreLinearlySeparableish) {
    // Mean malignant score must clearly exceed mean benign score.
    const Dataset ds = data::make_breast_cancer(103);
    double benign = 0.0, malignant = 0.0;
    std::size_t nb = 0, nm = 0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
        double row_mean = 0.0;
        for (std::size_t c = 0; c < ds.n_features(); ++c) row_mean += ds.features(i, c);
        row_mean /= static_cast<double>(ds.n_features());
        if (ds.labels[i] == 1) {
            malignant += row_mean;
            ++nm;
        } else {
            benign += row_mean;
            ++nb;
        }
    }
    EXPECT_GT(malignant / static_cast<double>(nm), benign / static_cast<double>(nb) + 2.0);
}

TEST(Pendigits, CoordinatesInTabletRange) {
    const Dataset ds = data::make_pendigits(109);
    for (std::size_t i = 0; i < ds.size(); i += 97) {  // stride: dataset is large
        for (std::size_t c = 0; c < 16; ++c) {
            ASSERT_GE(ds.features(i, c), 0.0);
            ASSERT_LE(ds.features(i, c), 100.0);
        }
    }
}

TEST(EnergyDatasets, ShareFeaturesButDifferInLabels) {
    const Dataset y1 = data::make_energy_y1(105);
    const Dataset y2 = data::make_energy_y2(106);
    ASSERT_EQ(y1.size(), y2.size());
    // Heating and cooling loads are correlated but not identical: some rows
    // must differ in class.
    int differing = 0;
    for (std::size_t i = 0; i < y1.size(); ++i) differing += y1.labels[i] != y2.labels[i];
    EXPECT_GT(differing, 20);
}

TEST(Registry, UnknownNameThrows) {
    EXPECT_THROW(data::make_dataset("no_such_dataset"), std::invalid_argument);
}

TEST(Registry, MakeAllProducesThirteen) {
    const auto all = data::make_all_datasets();
    EXPECT_EQ(all.size(), 13u);
}

// ---- split / normalization -----------------------------------------------------

TEST(Split, FractionsRespected) {
    const Dataset ds = data::make_dataset("iris");
    const auto split = data::split_and_normalize(ds, 1);
    EXPECT_EQ(split.x_train.rows(), 90u);
    EXPECT_EQ(split.x_val.rows(), 30u);
    EXPECT_EQ(split.x_test.rows(), 30u);
    EXPECT_EQ(split.y_train.size(), 90u);
    EXPECT_EQ(split.n_classes, 3);
}

TEST(Split, FeaturesAreVoltages) {
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), 2);
    const auto check = [](const math::Matrix& x) {
        for (std::size_t i = 0; i < x.size(); ++i) {
            ASSERT_GE(x[i], 0.0);
            ASSERT_LE(x[i], 1.0);
        }
    };
    check(split.x_train);
    check(split.x_val);
    check(split.x_test);
    // The training split spans the full range per feature (min-max fit).
    for (std::size_t c = 0; c < split.n_features(); ++c) {
        double lo = 1.0, hi = 0.0;
        for (std::size_t r = 0; r < split.x_train.rows(); ++r) {
            lo = std::min(lo, split.x_train(r, c));
            hi = std::max(hi, split.x_train(r, c));
        }
        EXPECT_DOUBLE_EQ(lo, 0.0);
        EXPECT_DOUBLE_EQ(hi, 1.0);
    }
}

TEST(Split, SeedChangesPartitionButNotSizes) {
    const Dataset ds = data::make_dataset("iris");
    const auto a = data::split_and_normalize(ds, 1);
    const auto b = data::split_and_normalize(ds, 2);
    EXPECT_EQ(a.x_train.rows(), b.x_train.rows());
    EXPECT_NE(a.y_train, b.y_train);
    const auto a2 = data::split_and_normalize(ds, 1);
    EXPECT_EQ(a.y_train, a2.y_train);  // deterministic per seed
}

TEST(Split, BadFractionsThrow) {
    const Dataset ds = data::make_dataset("iris");
    EXPECT_THROW(data::split_and_normalize(ds, 1, {0.9, 0.2}), std::invalid_argument);
    EXPECT_THROW(data::split_and_normalize(ds, 1, {0.0, 0.2}), std::invalid_argument);
}

TEST(DatasetValidate, CatchesCorruption) {
    Dataset ds = data::make_dataset("iris");
    ds.labels[0] = 7;
    EXPECT_THROW(ds.validate(), std::logic_error);
    ds = data::make_dataset("iris");
    ds.labels.pop_back();
    EXPECT_THROW(ds.validate(), std::logic_error);
    ds = data::make_dataset("iris");
    ds.n_classes = 4;  // class 3 has no samples
    EXPECT_THROW(ds.validate(), std::logic_error);
}
