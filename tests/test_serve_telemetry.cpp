// The live serving telemetry plane (src/serve/telemetry.*): the headline
// claim is that arming the full plane — spans, livestats, watchdog — changes
// ZERO bits of what the pipeline serves, proven differentially at 1 and 4
// threads. Around it: span-stream completeness (accepted and shed), the
// finish() partial-window flush, the ServeWatchdog sustain/reset semantics,
// the deterministic canary, and the CLI surface end-to-end through the real
// binary (`pnc serve --replay/--self-load` with telemetry flags, `pnc top`,
// and the exit-4 watchdog contract).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "data/registry.hpp"
#include "obs/json.hpp"
#include "pnn/training.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/pipeline.hpp"
#include "serve/registry.hpp"
#include "serve/request_log.hpp"
#include "serve/telemetry.hpp"
#include "surrogate/dataset_builder.hpp"
#include "surrogate/design_space.hpp"

#ifndef PNC_CLI_PATH
#error "PNC_CLI_PATH must be defined to the pnc binary location"
#endif

namespace fs = std::filesystem;
using namespace pnc;
using obs::json::Value;

namespace {

const surrogate::SurrogateModel& serve_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 250;
        options.sweep_points = 17;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 300;
        train.mlp.patience = 80;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

/// Untrained random net — the differential comparison only needs the
/// forward pass, not a good classifier.
pnn::Pnn make_net(const data::SplitDataset& split, std::uint64_t seed) {
    math::Rng rng(seed);
    return pnn::Pnn({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                    &serve_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                    &serve_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                    surrogate::DesignSpace::table1(), rng);
}

std::vector<double> row_of(const math::Matrix& x, std::size_t r) {
    std::vector<double> row(x.cols());
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] = x(r, c);
    return row;
}

/// RAII thread-count override (the global pool is process-wide state).
class ThreadGuard {
public:
    explicit ThreadGuard(std::size_t n) { runtime::set_global_threads(n); }
    ~ThreadGuard() {
        runtime::set_global_threads(runtime::ThreadPool::default_thread_count());
    }
};

std::string slurp(const std::string& path) {
    std::ifstream is(path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
}

/// Scratch directory unique to the running test case.
fs::path test_scratch() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    const fs::path dir = fs::temp_directory_path() /
                         (std::string("pnc_serve_telemetry_") + info->name());
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/// Parse a JSONL stream and return the lines whose "event" matches.
std::vector<Value> event_lines(const std::string& text, const std::string& event) {
    std::vector<Value> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        Value v = Value::parse(line);
        if (const Value* e = v.find("event"); e && e->as_string() == event)
            lines.push_back(std::move(v));
    }
    return lines;
}

/// Fully armed plane writing into `dir` (watchdog SLO generous enough to
/// never trip on real traffic).
serve::TelemetryOptions full_plane(const fs::path& dir) {
    serve::TelemetryOptions telemetry;
    telemetry.collect = true;
    telemetry.spans_out = (dir / "spans.jsonl").string();
    telemetry.live_stats_out = (dir / "live.jsonl").string();
    telemetry.live_stats_period_ms = 20.0;
    telemetry.watchdog = true;
    telemetry.slo_p99_ms = 1e6;
    telemetry.serve_health_out = (dir / "health.json").string();
    return telemetry;
}

serve::WindowStats saturated_window(std::uint64_t index, double depth) {
    serve::WindowStats w;
    w.index = index;
    w.queue_depth = w.queue_depth_max = depth;
    w.requests = 10;
    return w;
}

}  // namespace

// ---- the headline claim: telemetry observes, never perturbs -----------------

TEST(ServeTelemetryDifferential, MonitoredServingIsBitIdenticalToUnmonitored) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
    const auto net = make_net(split, 91);
    const fs::path dir = test_scratch();

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadGuard guard(threads);
        // One serve pass, monitored or not: same submissions, same batch=7.
        const auto run = [&](const serve::TelemetryOptions& telemetry) {
            serve::ModelRegistry registry;
            registry.install("iris", net);
            serve::ServeOptions options;
            options.max_batch = 7;
            options.deterministic = true;
            options.telemetry = telemetry;
            serve::ServePipeline pipeline(registry, options);
            std::vector<std::future<serve::Prediction>> futures;
            for (std::size_t r = 0; r < split.x_test.rows(); ++r)
                futures.push_back(pipeline.submit_or_wait("iris", row_of(split.x_test, r)));
            pipeline.drain();
            std::vector<serve::Prediction> served;
            for (auto& f : futures) served.push_back(f.get());
            return served;
        };

        const auto plain = run(serve::TelemetryOptions{});
        const auto monitored = run(full_plane(dir));

        ASSERT_EQ(plain.size(), monitored.size());
        for (std::size_t r = 0; r < plain.size(); ++r) {
            EXPECT_EQ(plain[r].predicted_class, monitored[r].predicted_class)
                << "threads=" << threads << " row " << r;
            EXPECT_EQ(plain[r].batch_seq, monitored[r].batch_seq)
                << "threads=" << threads << " row " << r;
            EXPECT_EQ(plain[r].batch_rows, monitored[r].batch_rows)
                << "threads=" << threads << " row " << r;
            ASSERT_EQ(plain[r].outputs.size(), monitored[r].outputs.size());
            for (std::size_t c = 0; c < plain[r].outputs.size(); ++c)
                // Exact ==, not near: the claim is bitwise identity.
                ASSERT_EQ(plain[r].outputs[c], monitored[r].outputs[c])
                    << "threads=" << threads << " row " << r << " col " << c;
        }

        // The artifacts the monitored pass wrote must self-validate.
        EXPECT_EQ(serve::validate_spans(slurp((dir / "spans.jsonl").string())), "");
        EXPECT_EQ(serve::validate_livestats(slurp((dir / "live.jsonl").string())), "");
    }
    fs::remove_all(dir);
}

// ---- span stream -------------------------------------------------------------

TEST(ServeTelemetrySpans, StreamCoversEverySubmissionWithUniqueIds) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
    const auto net = make_net(split, 91);
    const fs::path dir = test_scratch();
    const std::string spans_path = (dir / "spans.jsonl").string();

    std::vector<std::uint64_t> submitted_spans;
    {
        serve::ModelRegistry registry;
        registry.install("iris", net);
        serve::ServeOptions options;
        options.max_batch = 7;
        options.deterministic = true;
        options.telemetry.spans_out = spans_path;
        serve::ServePipeline pipeline(registry, options);
        std::vector<std::future<serve::Prediction>> futures;
        for (std::size_t r = 0; r < split.x_test.rows(); ++r)
            futures.push_back(pipeline.submit_or_wait("iris", row_of(split.x_test, r)));
        pipeline.drain();
        for (auto& f : futures) submitted_spans.push_back(f.get().span);
    }  // ~ServePipeline closes the stream

    const std::string text = slurp(spans_path);
    ASSERT_EQ(serve::validate_spans(text), "");
    const std::vector<Value> spans = event_lines(text, "span");
    ASSERT_EQ(spans.size(), split.x_test.rows());

    std::set<double> ids;
    for (const Value& line : spans) {
        EXPECT_EQ(line.find("model")->as_string(), "iris");
        EXPECT_EQ(line.find("outcome")->as_string(), "ok");
        EXPECT_GE(line.find("queue_ms")->as_number(), 0.0);
        EXPECT_GE(line.find("exec_ms")->as_number(), 0.0);
        ids.insert(line.find("span")->as_number());
    }
    EXPECT_EQ(ids.size(), spans.size()) << "span ids must be unique";
    // Every prediction joins back to a span line; 0 is reserved for
    // unmonitored serving and must never appear here.
    for (const std::uint64_t span : submitted_spans) {
        ASSERT_NE(span, 0u);
        EXPECT_TRUE(ids.count(static_cast<double>(span))) << "span " << span;
    }
    fs::remove_all(dir);
}

TEST(ServeTelemetrySpans, ShedSubmissionsGetShedOutcomeLines) {
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
    const auto net = make_net(split, 91);
    const fs::path dir = test_scratch();
    const std::string spans_path = (dir / "spans.jsonl").string();

    std::size_t sheds = 0;
    {
        serve::ModelRegistry registry;
        registry.install("iris", net);
        serve::ServeOptions options;
        options.max_batch = 2;
        options.queue_capacity = 2;
        options.deterministic = true;
        options.telemetry.spans_out = spans_path;
        serve::ServePipeline pipeline(registry, options);
        // Hold the batcher so the queue fills deterministically; the 3
        // submissions past capacity must shed with their own span lines.
        pipeline.pause();
        std::vector<std::future<serve::Prediction>> futures;
        for (std::size_t r = 0; r < 5; ++r) {
            try {
                futures.push_back(pipeline.submit("iris", row_of(split.x_test, r)));
            } catch (const serve::ServeError& e) {
                ASSERT_EQ(e.code(), serve::ServeErrorCode::kQueueFull);
                ++sheds;
            }
        }
        pipeline.resume();
        pipeline.drain();
        for (auto& f : futures) f.get();
    }
    ASSERT_EQ(sheds, 3u);

    const std::string text = slurp(spans_path);
    ASSERT_EQ(serve::validate_spans(text), "");
    EXPECT_EQ(event_lines(text, "span").size(), 5u);
    std::size_t shed_lines = 0;
    for (const Value& line : event_lines(text, "span"))
        if (line.find("outcome")->as_string() == "shed") ++shed_lines;
    EXPECT_EQ(shed_lines, sheds);
    fs::remove_all(dir);
}

// ---- livestats / finish() flush ---------------------------------------------

namespace {
double g_fake_now = 0.0;
double fake_clock() { return g_fake_now; }
}  // namespace

TEST(ServeTelemetryLivestats, FinishFlushesTheFinalPartialWindow) {
    const fs::path dir = test_scratch();
    const std::string live_path = (dir / "live.jsonl").string();

    serve::TelemetryOptions options;
    options.collect = true;
    options.live_stats_out = live_path;
    // Period far beyond the test: the only window line must come from the
    // finish() flush, not a timer tick.
    options.live_stats_period_ms = 60000.0;

    g_fake_now = 0.0;
    serve::ServeTelemetry telemetry(options, 16, &fake_clock);
    const std::uint64_t a = telemetry.mint_span();
    const std::uint64_t b = telemetry.mint_span();
    telemetry.on_enqueue(1);
    telemetry.on_enqueue(2);
    telemetry.on_dequeue(0);
    telemetry.on_batch("iris", 0, {{a, 0.5, 0.1, 2.0}, {b, 0.4, 0.1, 2.0}});
    g_fake_now = 1.0;
    telemetry.finish();

    const serve::WindowStats last = telemetry.last_window();
    EXPECT_EQ(last.requests, 2u);
    EXPECT_EQ(last.samples, 2u);
    EXPECT_DOUBLE_EQ(last.batch_rows_mean, 2.0);
    ASSERT_EQ(last.models.size(), 1u);
    EXPECT_EQ(last.models[0].first, "iris");
    EXPECT_EQ(last.models[0].second.first, 2u);

    const std::string text = slurp(live_path);
    ASSERT_EQ(serve::validate_livestats(text), "");
    EXPECT_EQ(event_lines(text, "window").size(), 1u)
        << "exactly the finish() flush, no timer windows";
    const std::vector<Value> closes = event_lines(text, "stream.close");
    ASSERT_EQ(closes.size(), 1u);
    EXPECT_EQ(closes[0].find("windows")->as_number(), 1.0);

    // finish() is idempotent: a second call (and the destructor after it)
    // must not write a second trailer.
    telemetry.finish();
    EXPECT_EQ(slurp(live_path), text);
    fs::remove_all(dir);
}

// ---- watchdog rules ----------------------------------------------------------

TEST(ServeWatchdogRules, TripsOnlyAfterSustainedConsecutiveWindows) {
    serve::TelemetryOptions options;
    options.watchdog = true;
    options.sustain_windows = 3;
    serve::ServeWatchdog watchdog(options, /*queue_capacity=*/10);

    // Two saturated windows, then a healthy one: the streak resets.
    watchdog.observe(saturated_window(0, 10));
    watchdog.observe(saturated_window(1, 10));
    EXPECT_FALSE(watchdog.tripped());
    watchdog.observe(saturated_window(2, 1));
    EXPECT_FALSE(watchdog.tripped());
    EXPECT_EQ(watchdog.verdict(), "healthy");

    // Three in a row trip exactly once (once-per-streak semantics).
    watchdog.observe(saturated_window(3, 10));
    watchdog.observe(saturated_window(4, 10));
    watchdog.observe(saturated_window(5, 10));
    EXPECT_TRUE(watchdog.tripped());
    EXPECT_EQ(watchdog.verdict(), "queue_saturation");
    EXPECT_EQ(watchdog.anomalies_total(), 1u);
    watchdog.observe(saturated_window(6, 10));
    EXPECT_EQ(watchdog.anomalies_total(), 1u) << "a streak fires once";

    // A reset then a fresh sustained streak fires again.
    watchdog.observe(saturated_window(7, 0));
    watchdog.observe(saturated_window(8, 10));
    watchdog.observe(saturated_window(9, 10));
    watchdog.observe(saturated_window(10, 10));
    EXPECT_EQ(watchdog.anomalies_total(), 2u);
    EXPECT_EQ(watchdog.windows_observed(), 11u);
    ASSERT_EQ(watchdog.anomalies().size(), 2u);
    EXPECT_EQ(watchdog.anomalies()[0].kind, "queue_saturation");
    EXPECT_EQ(watchdog.anomalies()[0].window, 5u);
}

TEST(ServeWatchdogRules, LatencySloNeedsSamplesAndShedSpikeNeedsSheds) {
    serve::TelemetryOptions options;
    options.watchdog = true;
    options.sustain_windows = 2;
    options.slo_p99_ms = 10.0;
    serve::ServeWatchdog watchdog(options, 10);

    // Empty windows with a stale p99 carry no evidence: the SLO rule must
    // not trip on them no matter how long they persist.
    for (std::uint64_t i = 0; i < 5; ++i) {
        serve::WindowStats w;
        w.index = i;
        w.p99_ms = 100.0;
        w.samples = 0;
        watchdog.observe(w);
    }
    EXPECT_FALSE(watchdog.tripped());

    for (std::uint64_t i = 5; i < 7; ++i) {
        serve::WindowStats w;
        w.index = i;
        w.p99_ms = 100.0;
        w.samples = 50;
        watchdog.observe(w);
    }
    EXPECT_TRUE(watchdog.tripped());
    EXPECT_EQ(watchdog.verdict(), "latency_slo");

    // Shed rule: rate over attempts, fires only when sheds happened.
    serve::ServeWatchdog shed_dog(options, 10);
    for (std::uint64_t i = 0; i < 2; ++i) {
        serve::WindowStats w;
        w.index = i;
        w.requests = 10;
        w.sheds = 90;
        shed_dog.observe(w);
    }
    EXPECT_TRUE(shed_dog.tripped());
    EXPECT_EQ(shed_dog.verdict(), "shed_spike");
}

TEST(ServeWatchdogRules, DocumentRoundTripsThroughTheValidator) {
    serve::TelemetryOptions options;
    options.watchdog = true;
    options.sustain_windows = 1;
    serve::ServeWatchdog watchdog(options, 8);
    EXPECT_EQ(serve::validate_serve_health(watchdog.document()), "")
        << "healthy document must validate";

    watchdog.observe(saturated_window(0, 8));
    const Value doc = watchdog.document();
    ASSERT_EQ(serve::validate_serve_health(doc), "");
    EXPECT_EQ(doc.find("verdict")->as_string(), "queue_saturation");
    const Value* status = doc.find("status");
    ASSERT_NE(status, nullptr);
    EXPECT_TRUE(status->find("tripped")->as_bool());
    EXPECT_EQ(status->find("anomalies_total")->as_number(), 1.0);
}

// ---- deterministic canary ----------------------------------------------------

TEST(ServeTelemetryCanary, InjectedWindowsTripThroughTheRealRulePath) {
    const fs::path dir = test_scratch();
    serve::TelemetryOptions options;
    options.watchdog = true;
    options.sustain_windows = 3;
    options.canary = "queue_saturation:3";
    options.serve_health_out = (dir / "health.json").string();

    {
        serve::ServeTelemetry telemetry(options, 64);
        EXPECT_TRUE(telemetry.watchdog_tripped());
        EXPECT_EQ(telemetry.watchdog_verdict(), "queue_saturation");
        // Injected windows feed the watchdog only — livestats history stays
        // clean of synthetic traffic.
        for (const serve::WindowStats& w : telemetry.window_history())
            EXPECT_FALSE(w.injected);
        telemetry.finish();
    }
    const Value doc = Value::parse(slurp((dir / "health.json").string()));
    ASSERT_EQ(serve::validate_serve_health(doc), "");
    EXPECT_TRUE(doc.find("status")->find("tripped")->as_bool());

    // One window short of sustain: deterministically NOT tripped.
    serve::TelemetryOptions shy = options;
    shy.canary = "queue_saturation:2";
    shy.serve_health_out.clear();
    serve::ServeTelemetry not_tripped(shy, 64);
    EXPECT_FALSE(not_tripped.watchdog_tripped());
    EXPECT_EQ(not_tripped.watchdog_verdict(), "healthy");

    // Unknown kinds are a hard configuration error, not a silent no-op.
    serve::TelemetryOptions bogus = options;
    bogus.canary = "warp_core_breach:3";
    EXPECT_THROW(serve::ServeTelemetry(bogus, 64), std::runtime_error);
    fs::remove_all(dir);
}

// ---- CLI end-to-end ----------------------------------------------------------

namespace {

/// Drives the real `pnc` binary (test_obs_cli idiom): scratch artifacts dir
/// plus a shrunken surrogate build so train runs in seconds.
class ServeCliTest : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::temp_directory_path() /
               (std::string("pnc_serve_cli_") + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        artifacts_ = (dir_ / "artifacts").string();
        ::setenv("PNC_ARTIFACTS", artifacts_.c_str(), 1);
        ::setenv("PNC_SURROGATE_SAMPLES", "120", 1);
        ::setenv("PNC_SURROGATE_EPOCHS", "150", 1);
    }

    void TearDown() override {
        ::unsetenv("PNC_ARTIFACTS");
        ::unsetenv("PNC_SURROGATE_SAMPLES");
        ::unsetenv("PNC_SURROGATE_EPOCHS");
        ::unsetenv("PNC_NUM_THREADS");
        fs::remove_all(dir_);
    }

    void run_cli(const std::string& cli_args) {
        std::string output;
        const int rc = run_cli_rc(cli_args, &output);
        ASSERT_EQ(rc, 0) << "pnc " << cli_args << "\n" << output;
    }

    int run_cli_rc(const std::string& cli_args, std::string* output = nullptr) {
        const std::string log = (dir_ / "cli_rc.log").string();
        const std::string cmd =
            std::string(PNC_CLI_PATH) + " " + cli_args + " > " + log + " 2>&1";
        const int status = std::system(cmd.c_str());
        if (output) *output += slurp(log);
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    void train_model() {
        run_cli("train --dataset iris --eps 0.1 --mc 2 --epochs 6 --patience 6"
                " --hidden 2 --seed 3 --out " + path("model.pnn"));
    }

    std::string path(const char* leaf) const { return (dir_ / leaf).string(); }

    fs::path dir_;
    std::string artifacts_;
};

}  // namespace

TEST_F(ServeCliTest, ReplayWithTelemetryStaysBitIdenticalAtOneAndFourThreads) {
    train_model();
    run_cli("serve --dataset iris --emit-requests " + path("requests.jsonl") +
            " --requests 24 --seed 5");

    for (const char* threads : {"1", "4"}) {
        ::setenv("PNC_NUM_THREADS", threads, 1);
        std::string output;
        const int rc = run_cli_rc(
            "serve --model " + path("model.pnn") + " --replay " + path("requests.jsonl") +
                " --batch 5 --spans-out " + path("spans.jsonl") +
                " --live-stats-out " + path("live.jsonl") +
                " --live-stats-period-ms 50 --predictions-out " + path("pred.jsonl"),
            &output);
        ASSERT_EQ(rc, 0) << output;
        EXPECT_NE(output.find("bit-identity vs reference: OK"), std::string::npos)
            << output;

        EXPECT_EQ(serve::validate_spans(slurp(path("spans.jsonl"))), "")
            << "threads=" << threads;
        EXPECT_EQ(serve::validate_livestats(slurp(path("live.jsonl"))), "")
            << "threads=" << threads;

        // Predictions carry the minted span ids (pnc-predictions/2).
        const std::string predictions = slurp(path("pred.jsonl"));
        EXPECT_EQ(serve::validate_predictions(predictions), "");
        EXPECT_NE(predictions.find("pnc-predictions/2"), std::string::npos);
        std::istringstream is(predictions);
        for (const serve::PredictionRecord& record : serve::parse_prediction_log(is))
            EXPECT_NE(record.span, 0u) << "row " << record.seq;
    }
}

TEST_F(ServeCliTest, SelfLoadWatchdogCanaryExitsFourWithValidFlightRecorder) {
    train_model();
    std::string output;
    const int rc = run_cli_rc(
        "serve --model " + path("model.pnn") +
            " --dataset iris --self-load 64 --batch 8 --submitters 2" +
            " --watchdog-canary queue_saturation:3 --serve-health-out " +
            path("health.json") + " --live-stats-period-ms 25",
        &output);
    EXPECT_EQ(rc, 4) << output;
    EXPECT_NE(output.find("watchdog: queue_saturation"), std::string::npos) << output;
    EXPECT_NE(output.find("final window:"), std::string::npos) << output;

    const Value doc = Value::parse(slurp(path("health.json")));
    ASSERT_EQ(serve::validate_serve_health(doc), "");
    EXPECT_TRUE(doc.find("status")->find("tripped")->as_bool());
    EXPECT_EQ(doc.find("verdict")->as_string(), "queue_saturation");
}

TEST_F(ServeCliTest, TopRendersValidStreamsAndRejectsBadInvocations) {
    // Build a small closed livestats stream without training: drive the
    // telemetry plane directly, then point the dashboard at the file.
    {
        serve::TelemetryOptions options;
        options.collect = true;
        options.live_stats_out = path("live.jsonl");
        options.live_stats_period_ms = 60000.0;
        g_fake_now = 0.0;
        serve::ServeTelemetry telemetry(options, 32, &fake_clock);
        telemetry.on_enqueue(3);
        telemetry.on_batch("iris", 0, {{telemetry.mint_span(), 0.2, 0.1, 1.5}});
        g_fake_now = 0.5;
        telemetry.finish();
    }

    std::string output;
    ASSERT_EQ(run_cli_rc("top " + path("live.jsonl"), &output), 0) << output;
    EXPECT_NE(output.find("pnc top"), std::string::npos);
    EXPECT_NE(output.find("[closed]"), std::string::npos);
    EXPECT_NE(output.find("model iris"), std::string::npos);

    // Follow mode terminates on the stream.close trailer (CI-safe).
    output.clear();
    ASSERT_EQ(run_cli_rc("top " + path("live.jsonl") + " --follow 1", &output), 0)
        << output;

    // Corrupt stream: strict validation fails with exit 1.
    {
        std::ofstream os(path("truncated.jsonl"));
        os << slurp(path("live.jsonl")).substr(0, 40) << "\n";
    }
    EXPECT_EQ(run_cli_rc("top " + path("truncated.jsonl")), 1);
    // Usage errors: missing file and unknown flags both exit 2.
    EXPECT_EQ(run_cli_rc("top " + path("missing.jsonl")), 2);
    EXPECT_EQ(run_cli_rc("top " + path("live.jsonl") + " --bogus 1"), 2);
}
