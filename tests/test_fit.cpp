// Levenberg-Marquardt and ptanh eta-extraction tests.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/nonlinear_circuit.hpp"
#include "fit/ptanh_fit.hpp"
#include "math/random.hpp"

using namespace pnc;
using fit::Eta;

// ---- generic LM ------------------------------------------------------------

TEST(LevenbergMarquardt, SolvesLinearLeastSquares) {
    // Residuals r_i = a * x_i + b - y_i with exact solution a=2, b=-1.
    const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
    const std::vector<double> ys = {-1.0, 1.0, 3.0, 5.0};
    const auto fn = [&](const std::vector<double>& p, std::vector<double>& r,
                        math::Matrix* jac) {
        for (std::size_t i = 0; i < xs.size(); ++i) {
            r[i] = p[0] * xs[i] + p[1] - ys[i];
            if (jac) {
                (*jac)(i, 0) = xs[i];
                (*jac)(i, 1) = 1.0;
            }
        }
    };
    const auto result = fit::levenberg_marquardt(fn, {0.0, 0.0}, xs.size());
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.params[0], 2.0, 1e-8);
    EXPECT_NEAR(result.params[1], -1.0, 1e-8);
    EXPECT_NEAR(result.rmse, 0.0, 1e-8);
}

TEST(LevenbergMarquardt, SolvesNonlinearExponentialFit) {
    // y = 3 exp(-1.7 x), recover (3, 1.7) from samples.
    std::vector<double> xs, ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(0.1 * i);
        ys.push_back(3.0 * std::exp(-1.7 * 0.1 * i));
    }
    const auto fn = [&](const std::vector<double>& p, std::vector<double>& r,
                        math::Matrix* jac) {
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const double e = std::exp(-p[1] * xs[i]);
            r[i] = p[0] * e - ys[i];
            if (jac) {
                (*jac)(i, 0) = e;
                (*jac)(i, 1) = -p[0] * xs[i] * e;
            }
        }
    };
    const auto result = fit::levenberg_marquardt(fn, {1.0, 0.5}, xs.size());
    EXPECT_NEAR(result.params[0], 3.0, 1e-6);
    EXPECT_NEAR(result.params[1], 1.7, 1e-6);
}

TEST(LevenbergMarquardt, HandlesOverparameterizedFlatResidual) {
    // Constant residuals independent of parameters: should stop gracefully.
    const auto fn = [](const std::vector<double>&, std::vector<double>& r, math::Matrix* jac) {
        r[0] = 1.0;
        if (jac) (*jac)(0, 0) = 0.0;
    };
    const auto result = fit::levenberg_marquardt(fn, {5.0}, 1);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.params[0], 5.0, 1e-12);
}

TEST(LevenbergMarquardt, InputValidation) {
    const auto fn = [](const std::vector<double>&, std::vector<double>&, math::Matrix*) {};
    EXPECT_THROW(fit::levenberg_marquardt(fn, {}, 3), std::invalid_argument);
    EXPECT_THROW(fit::levenberg_marquardt(fn, {1.0}, 0), std::invalid_argument);
}

// ---- ptanh evaluation ---------------------------------------------------------

TEST(Ptanh, EvaluatesEq2AndEq3) {
    const Eta eta{0.5, 0.4, 0.5, 10.0};
    EXPECT_NEAR(fit::ptanh(eta, 0.5), 0.5, 1e-12);  // center
    EXPECT_NEAR(fit::ptanh(eta, 10.0), 0.9, 1e-6);  // saturated high
    EXPECT_NEAR(fit::ptanh(eta, -10.0), 0.1, 1e-6);
    EXPECT_NEAR(fit::ptanh_negated(eta, 0.5), -0.5, 1e-12);
    EXPECT_DOUBLE_EQ(
        fit::evaluate_characteristic(eta, 0.3, circuit::NonlinearCircuitKind::kPtanh),
        fit::ptanh(eta, 0.3));
    EXPECT_DOUBLE_EQ(
        fit::evaluate_characteristic(eta, 0.3, circuit::NonlinearCircuitKind::kNegativeWeight),
        fit::ptanh_negated(eta, 0.3));
}

// ---- ptanh fitting ---------------------------------------------------------------

TEST(PtanhFit, RecoversSyntheticGroundTruth) {
    const Eta truth{0.45, 0.38, 0.52, 9.0};
    circuit::CharacteristicCurve curve;
    for (int i = 0; i <= 32; ++i) {
        const double v = i / 32.0;
        curve.vin.push_back(v);
        curve.vout.push_back(fit::ptanh(truth, v));
    }
    const auto result = fit::fit_ptanh(curve, circuit::NonlinearCircuitKind::kPtanh);
    EXPECT_LT(result.rmse, 1e-4);
    EXPECT_NEAR(result.eta.eta1, truth.eta1, 0.02);
    EXPECT_NEAR(result.eta.eta2, truth.eta2, 0.02);
    EXPECT_NEAR(result.eta.eta3, truth.eta3, 0.02);
    EXPECT_NEAR(result.eta.eta4, truth.eta4, 0.5);
}

TEST(PtanhFit, RecoversNegatedGroundTruth) {
    const Eta truth{-0.5, 0.3, 0.4, 12.0};
    circuit::CharacteristicCurve curve;
    for (int i = 0; i <= 32; ++i) {
        const double v = i / 32.0;
        curve.vin.push_back(v);
        curve.vout.push_back(fit::ptanh_negated(truth, v));
    }
    const auto result = fit::fit_ptanh(curve, circuit::NonlinearCircuitKind::kNegativeWeight);
    EXPECT_LT(result.rmse, 1e-3);
    EXPECT_NEAR(result.eta.eta1, truth.eta1, 0.02);
    EXPECT_NEAR(result.eta.eta2, truth.eta2, 0.02);
}

TEST(PtanhFit, RobustToNoise) {
    const Eta truth{0.5, 0.4, 0.5, 8.0};
    math::Rng rng(17);
    circuit::CharacteristicCurve curve;
    for (int i = 0; i <= 48; ++i) {
        const double v = i / 48.0;
        curve.vin.push_back(v);
        curve.vout.push_back(fit::ptanh(truth, v) + rng.normal(0.0, 0.01));
    }
    const auto result = fit::fit_ptanh(curve, circuit::NonlinearCircuitKind::kPtanh);
    EXPECT_LT(result.rmse, 0.02);
    EXPECT_NEAR(result.eta.eta3, truth.eta3, 0.05);
}

TEST(PtanhFit, CanonicalFormHasPositiveSlope) {
    // Whatever the LM start, the returned eta4 is positive (tanh oddness
    // resolved), keeping the surrogate targets single-valued.
    const auto curve = circuit::simulate_characteristic(
        circuit::default_omega(circuit::NonlinearCircuitKind::kPtanh),
        circuit::NonlinearCircuitKind::kPtanh, 33);
    const auto result = fit::fit_ptanh(curve, circuit::NonlinearCircuitKind::kPtanh);
    EXPECT_GT(result.eta.eta4, 0.0);
    EXPECT_GT(result.eta.eta2, 0.0);  // increasing curve
}

TEST(PtanhFit, FlatCurveIsConditionedByPriors) {
    // A perfectly flat curve leaves eta3/eta4 unidentified; the priors keep
    // them near their nominal values instead of exploding.
    circuit::CharacteristicCurve curve;
    for (int i = 0; i <= 16; ++i) {
        curve.vin.push_back(i / 16.0);
        curve.vout.push_back(0.42);
    }
    const auto result = fit::fit_ptanh(curve, circuit::NonlinearCircuitKind::kPtanh);
    EXPECT_LT(result.rmse, 1e-3);  // priors induce a tiny residual slope
    EXPECT_LT(std::abs(result.eta.eta2), 0.2);
    EXPECT_LT(std::abs(result.eta.eta4), 60.0);
}

TEST(PtanhFit, FitsSimulatedCircuitsAccurately) {
    // End-to-end: both default circuits fit to low RMSE (Fig. 4 left).
    for (auto kind : {circuit::NonlinearCircuitKind::kPtanh,
                      circuit::NonlinearCircuitKind::kNegativeWeight}) {
        const auto curve =
            circuit::simulate_characteristic(circuit::default_omega(kind), kind, 48);
        const auto result = fit::fit_ptanh(curve, kind);
        EXPECT_LT(result.rmse, 0.02) << "kind " << static_cast<int>(kind);
    }
}

TEST(PtanhFit, RejectsTooFewPoints) {
    circuit::CharacteristicCurve curve;
    curve.vin = {0.0, 1.0};
    curve.vout = {0.0, 1.0};
    EXPECT_THROW(fit::fit_ptanh(curve, circuit::NonlinearCircuitKind::kPtanh),
                 std::invalid_argument);
}
