// The yield engine's statistical-accuracy contract (docs/YIELD.md):
//  * interval estimators reproduce tabulated Wilson / Clopper-Pearson
//    values;
//  * fixed-N campaigns are bit-identical to pnn::estimate_yield at any
//    thread count (the same contract the compiled engine carries);
//  * antithetic mirrors preserve the pair mean, CRN comparisons are
//    thread-invariant, and a self-comparison has zero discordant pairs;
//  * sharded campaigns merge to the byte-identical single-process report,
//    including when the adaptive stop rule truncates the round list;
//  * merged pnc-events/1 streams stay schema-valid.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "data/registry.hpp"
#include "infer/engine.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "pnn/robustness.hpp"
#include "runtime/thread_pool.hpp"
#include "surrogate/dataset_builder.hpp"
#include "surrogate/design_space.hpp"
#include "yield/campaign.hpp"
#include "yield/estimators.hpp"
#include "yield/yield_report.hpp"

using namespace pnc;

namespace {

const surrogate::SurrogateModel& test_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 250;
        options.sweep_points = 17;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 300;
        train.mlp.patience = 80;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

pnn::Pnn make_net(const data::SplitDataset& split, std::uint64_t seed) {
    math::Rng rng(seed);
    return pnn::Pnn({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                    &test_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                    &test_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                    surrogate::DesignSpace::table1(), rng);
}

const data::SplitDataset& iris_split() {
    static const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
    return split;
}

/// RAII thread-count override (the global pool is process-wide state).
class ThreadGuard {
public:
    explicit ThreadGuard(std::size_t n) { runtime::set_global_threads(n); }
    ~ThreadGuard() {
        runtime::set_global_threads(runtime::ThreadPool::default_thread_count());
    }
};

void expect_equal_estimates(const yield::YieldEstimate& a, const yield::YieldEstimate& b,
                            const std::string& what) {
    EXPECT_EQ(a.n_samples, b.n_samples) << what;
    EXPECT_EQ(a.n_passing, b.n_passing) << what;
    EXPECT_DOUBLE_EQ(a.yield, b.yield) << what;
    EXPECT_DOUBLE_EQ(a.ci_lo, b.ci_lo) << what;
    EXPECT_DOUBLE_EQ(a.ci_hi, b.ci_hi) << what;
    EXPECT_DOUBLE_EQ(a.mean_accuracy, b.mean_accuracy) << what;
    EXPECT_DOUBLE_EQ(a.worst_accuracy, b.worst_accuracy) << what;
    EXPECT_DOUBLE_EQ(a.p5_accuracy, b.p5_accuracy) << what;
    EXPECT_DOUBLE_EQ(a.median_accuracy, b.median_accuracy) << what;
    EXPECT_EQ(a.rounds_used, b.rounds_used) << what;
    EXPECT_EQ(a.target_reached, b.target_reached) << what;
}

}  // namespace

// ---- interval estimators vs tabulated values --------------------------------

TEST(YieldEstimators, NormalQuantileMatchesTabulatedValues) {
    EXPECT_NEAR(yield::normal_quantile(0.975), 1.959963984540054, 1e-12);
    EXPECT_NEAR(yield::normal_quantile(0.995), 2.575829303548901, 1e-12);
    EXPECT_NEAR(yield::normal_quantile(0.5), 0.0, 1e-14);
    EXPECT_NEAR(yield::normal_quantile(0.025), -1.959963984540054, 1e-12);
}

TEST(YieldEstimators, WilsonMatchesTabulatedValues) {
    // k = 5 of n = 10 at 95%: the textbook Wilson interval.
    const auto ci = yield::wilson_interval(5, 10, 0.95);
    EXPECT_NEAR(ci.lo, 0.236593, 1e-5);
    EXPECT_NEAR(ci.hi, 0.763407, 1e-5);
    // Degenerate ends stay in [0, 1] and the k = 0 lower bound is exact 0.
    EXPECT_DOUBLE_EQ(yield::wilson_interval(0, 10, 0.95).lo, 0.0);
    EXPECT_DOUBLE_EQ(yield::wilson_interval(10, 10, 0.95).hi, 1.0);
}

TEST(YieldEstimators, ClopperPearsonMatchesTabulatedValues) {
    // k = 5 of n = 10 at 95%: the exact interval (0.1871, 0.8129).
    const auto ci = yield::clopper_pearson_interval(5, 10, 0.95);
    EXPECT_NEAR(ci.lo, 0.18709, 1e-4);
    EXPECT_NEAR(ci.hi, 0.81291, 1e-4);
    // k = 0: lo = 0 and hi = 1 - alpha/2 ^ (1/n) ("rule of three" shape).
    const auto zero = yield::clopper_pearson_interval(0, 10, 0.95);
    EXPECT_DOUBLE_EQ(zero.lo, 0.0);
    EXPECT_NEAR(zero.hi, 0.30850, 1e-4);
    const auto full = yield::clopper_pearson_interval(10, 10, 0.95);
    EXPECT_NEAR(full.lo, 0.69150, 1e-4);
    EXPECT_DOUBLE_EQ(full.hi, 1.0);
    // Away from the boundary CP is conservative: it contains the Wilson
    // interval. (At k = 0 / k = n the comparison inverts — Wilson's score
    // bound dips below CP's exact tail — so only interior k qualifies.)
    for (std::uint64_t k : {3ull, 50ull, 97ull}) {
        const auto w = yield::wilson_interval(k, 100, 0.95);
        const auto cp = yield::clopper_pearson_interval(k, 100, 0.95);
        EXPECT_LE(cp.lo, w.lo + 1e-12) << "k=" << k;
        EXPECT_GE(cp.hi, w.hi - 1e-12) << "k=" << k;
    }
}

TEST(YieldEstimators, IncompleteBetaMatchesClosedForms) {
    // I_x(1, 1) = x and I_x(2, 2) = 3x^2 - 2x^3.
    for (double x : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        EXPECT_NEAR(yield::regularized_incomplete_beta(1, 1, x), x, 1e-12);
        EXPECT_NEAR(yield::regularized_incomplete_beta(2, 2, x), 3 * x * x - 2 * x * x * x,
                    1e-12);
    }
    // The quantile inverts the CDF.
    for (double p : {0.025, 0.3, 0.5, 0.7, 0.975}) {
        const double x = yield::beta_quantile(5, 7, p);
        EXPECT_NEAR(yield::regularized_incomplete_beta(5, 7, x), p, 1e-10);
    }
}

TEST(YieldEstimators, PairedDeltaIntervalCoversTheDelta) {
    // 30 discordant one way, 10 the other, of 1000 pairs: delta = 0.02.
    const auto ci = yield::paired_delta_interval(30, 10, 1000, 0.95);
    EXPECT_LT(ci.lo, 0.02);
    EXPECT_GT(ci.hi, 0.02);
    EXPECT_GT(ci.lo, 0.0);  // clearly discordant at this count
    // Zero discordance collapses to a zero-width interval at 0.
    const auto zero = yield::paired_delta_interval(0, 0, 1000, 0.95);
    EXPECT_DOUBLE_EQ(zero.lo, 0.0);
    EXPECT_DOUBLE_EQ(zero.hi, 0.0);
}

// ---- fixed-N bit-identity ---------------------------------------------------

TEST(YieldCampaign, FixedModeIsBitIdenticalToReferenceAtAnyThreadCount) {
    const auto& split = iris_split();
    const auto net = make_net(split, 91);
    const infer::CompiledPnn engine(net);

    yield::YieldCampaignOptions options;
    options.mode = yield::CampaignMode::kFixed;
    options.accuracy_spec = 0.5;
    options.epsilon = 0.1;
    options.n_samples = 200;
    options.round_size = 64;  // multiple rounds on purpose

    const auto reference =
        pnn::estimate_yield(net, split.x_test, split.y_test, options.accuracy_spec,
                            options.epsilon, 200, options.seed);
    const auto compiled_ref = engine.estimate_yield(
        split.x_test, split.y_test, options.accuracy_spec, options.epsilon, 200,
        options.seed);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadGuard guard(threads);
        const std::string ctx = "threads=" + std::to_string(threads);
        const auto result =
            yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
        EXPECT_EQ(result.estimate.n_samples, 200u) << ctx;
        EXPECT_DOUBLE_EQ(result.estimate.yield, reference.yield) << ctx;
        EXPECT_EQ(result.estimate.n_passing,
                  static_cast<std::uint64_t>(reference.n_passing))
            << ctx;
        EXPECT_DOUBLE_EQ(result.estimate.worst_accuracy, reference.worst_accuracy) << ctx;
        EXPECT_DOUBLE_EQ(result.estimate.p5_accuracy, reference.p5_accuracy) << ctx;
        EXPECT_DOUBLE_EQ(result.estimate.median_accuracy, reference.median_accuracy)
            << ctx;
        // ... and the compiled reference estimator agrees too (it is itself
        // bit-identical to the autodiff path, test_infer_differential).
        EXPECT_DOUBLE_EQ(result.estimate.yield, compiled_ref.yield) << ctx;
        EXPECT_DOUBLE_EQ(result.estimate.median_accuracy, compiled_ref.median_accuracy)
            << ctx;
    }
}

TEST(YieldCampaign, StatisticalModeWithoutVarianceReductionMatchesFixed) {
    const auto& split = iris_split();
    const auto net = make_net(split, 92);
    const infer::CompiledPnn engine(net);

    yield::YieldCampaignOptions options;
    options.accuracy_spec = 0.5;
    options.n_samples = 128;
    options.round_size = 32;
    options.mode = yield::CampaignMode::kFixed;
    const auto fixed = yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
    options.mode = yield::CampaignMode::kStatistical;  // ci_width = 0: full budget
    const auto statistical =
        yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
    expect_equal_estimates(fixed.estimate, statistical.estimate, "statistical == fixed");
}

TEST(YieldCampaign, FixedModeRejectsVarianceReductionAndEarlyStopping) {
    const auto& split = iris_split();
    const auto net = make_net(split, 93);
    const infer::CompiledPnn engine(net);
    yield::YieldCampaignOptions options;
    options.mode = yield::CampaignMode::kFixed;
    options.n_samples = 16;
    options.antithetic = true;
    EXPECT_THROW(yield::run_yield_campaign(engine, split.x_test, split.y_test, options),
                 std::invalid_argument);
    options.antithetic = false;
    options.strata = 4;
    EXPECT_THROW(yield::run_yield_campaign(engine, split.x_test, split.y_test, options),
                 std::invalid_argument);
    options.strata = 1;
    options.ci_width = 0.01;
    EXPECT_THROW(yield::run_yield_campaign(engine, split.x_test, split.y_test, options),
                 std::invalid_argument);
}

// ---- variance reduction -----------------------------------------------------

TEST(YieldCampaign, AntitheticMirrorPreservesThePairMean) {
    const auto& split = iris_split();
    const auto net = make_net(split, 94);
    const infer::CompiledPnn engine(net);

    const circuit::VariationModel variation(0.1);
    math::Rng rng(123);
    const auto draw = engine.sample_variation(variation, rng);
    const auto mirror = yield::mirror_variation(draw);
    ASSERT_EQ(draw.size(), mirror.size());
    for (std::size_t l = 0; l < draw.size(); ++l) {
        const auto check = [&](const math::Matrix& a, const math::Matrix& b,
                               const char* what) {
            ASSERT_EQ(a.size(), b.size()) << what;
            for (std::size_t i = 0; i < a.size(); ++i)
                EXPECT_NEAR(0.5 * (a[i] + b[i]), 1.0, 1e-15)
                    << what << " layer " << l << " element " << i;
        };
        check(draw[l].theta_in, mirror[l].theta_in, "theta_in");
        check(draw[l].theta_bias, mirror[l].theta_bias, "theta_bias");
        check(draw[l].theta_drain, mirror[l].theta_drain, "theta_drain");
        check(draw[l].omega_act, mirror[l].omega_act, "omega_act");
        check(draw[l].omega_neg, mirror[l].omega_neg, "omega_neg");
    }
}

TEST(YieldCampaign, AntitheticAndStratifiedCampaignsConsumeTheBudgetDeterministically) {
    const auto& split = iris_split();
    const auto net = make_net(split, 95);
    const infer::CompiledPnn engine(net);

    yield::YieldCampaignOptions options;
    options.accuracy_spec = 0.5;
    options.n_samples = 96;  // divisible by 2 (pairs) and 4 strata x 2
    options.round_size = 32;
    options.antithetic = true;
    options.strata = 4;

    yield::YieldCampaignResult first, second;
    {
        ThreadGuard guard(1);
        first = yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
    }
    {
        ThreadGuard guard(4);
        second = yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
    }
    EXPECT_EQ(first.estimate.n_samples, 96u);
    expect_equal_estimates(first.estimate, second.estimate, "antithetic+strata threads");
    // The statistical-mode estimate remains in the plausible-yield range.
    EXPECT_GE(first.estimate.yield, 0.0);
    EXPECT_LE(first.estimate.yield, 1.0);
}

// ---- common random numbers --------------------------------------------------

TEST(YieldCompare, SelfComparisonHasZeroDiscordantPairs) {
    const auto& split = iris_split();
    const auto net = make_net(split, 96);
    const infer::CompiledPnn engine(net);

    yield::YieldCampaignOptions options;
    options.accuracy_spec = 0.5;
    options.n_samples = 64;
    const auto paired =
        yield::compare_yield(engine, engine, split.x_test, split.y_test, options);
    EXPECT_EQ(paired.n10, 0u);
    EXPECT_EQ(paired.n01, 0u);
    EXPECT_DOUBLE_EQ(paired.delta, 0.0);
    EXPECT_DOUBLE_EQ(paired.delta_ci.lo, 0.0);
    EXPECT_DOUBLE_EQ(paired.delta_ci.hi, 0.0);
    EXPECT_EQ(paired.a.n_passing, paired.b.n_passing);
}

TEST(YieldCompare, CrnComparisonIsThreadInvariant) {
    const auto& split = iris_split();
    const auto net_a = make_net(split, 97);
    const auto net_b = make_net(split, 98);
    const infer::CompiledPnn a(net_a), b(net_b);

    yield::YieldCampaignOptions options;
    options.accuracy_spec = 0.5;
    options.n_samples = 64;

    yield::PairedYieldResult first, second;
    {
        ThreadGuard guard(1);
        first = yield::compare_yield(a, b, split.x_test, split.y_test, options);
    }
    {
        ThreadGuard guard(4);
        second = yield::compare_yield(a, b, split.x_test, split.y_test, options);
    }
    EXPECT_EQ(first.n10, second.n10);
    EXPECT_EQ(first.n01, second.n01);
    EXPECT_DOUBLE_EQ(first.delta, second.delta);
    EXPECT_DOUBLE_EQ(first.delta_ci.lo, second.delta_ci.lo);
    EXPECT_DOUBLE_EQ(first.delta_ci.hi, second.delta_ci.hi);
    expect_equal_estimates(first.a, second.a, "CRN design A");
    expect_equal_estimates(first.b, second.b, "CRN design B");
    // The discordant decomposition is consistent with the two estimates.
    EXPECT_DOUBLE_EQ(first.delta, first.a.yield - first.b.yield);
}

// ---- shard / merge ----------------------------------------------------------

namespace {

yield::YieldReport make_report(const yield::YieldCampaignOptions& options,
                               const yield::YieldCampaignResult& result) {
    yield::YieldReport report;
    report.meta.dataset = "iris";
    report.meta.model_file = "model.pnn";
    report.meta.mode = options.mode;
    report.meta.method = options.method;
    report.meta.accuracy_spec = options.accuracy_spec;
    report.meta.epsilon = options.epsilon;
    report.meta.confidence = options.confidence;
    report.meta.ci_width = options.ci_width;
    report.meta.n_samples = options.n_samples;
    report.meta.round_size = options.round_size;
    report.meta.seed = options.seed;
    report.meta.antithetic = options.antithetic;
    report.meta.strata = options.strata;
    report.meta.test_rows = result.test_rows;
    report.shard = options.shard;
    report.rounds = result.rounds;
    report.result = result.estimate;
    return report;
}

}  // namespace

TEST(YieldShard, MergedShardsAreByteIdenticalToSingleProcess) {
    const auto& split = iris_split();
    const auto net = make_net(split, 99);
    const infer::CompiledPnn engine(net);

    yield::YieldCampaignOptions options;
    options.accuracy_spec = 0.5;
    options.n_samples = 160;
    options.round_size = 32;
    // A stop target the campaign reaches mid-budget, so the merge must also
    // replay the adaptive truncation to agree.
    options.ci_width = 0.25;

    const auto single = yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
    EXPECT_TRUE(single.estimate.target_reached);
    EXPECT_LT(single.estimate.n_samples, 160u);
    const std::string single_doc =
        yield::yield_report_document(make_report(options, single)).dump();

    std::vector<yield::YieldReport> shards;
    for (std::size_t i = 0; i < 3; ++i) {
        auto opt = options;
        opt.shard = {i, 3};
        const auto part = yield::run_yield_campaign(engine, split.x_test, split.y_test, opt);
        // Shards never stop early: every one carries the full round list.
        EXPECT_EQ(part.rounds.size(), 5u) << "shard " << i;
        shards.push_back(make_report(opt, part));
    }
    const auto merged = yield::merge_yield_reports(shards);
    EXPECT_EQ(yield::yield_report_document(merged).dump(), single_doc);

    // Thread count cannot change the merged bytes either.
    ThreadGuard guard(4);
    const auto single4 = yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
    EXPECT_EQ(yield::yield_report_document(make_report(options, single4)).dump(),
              single_doc);
}

TEST(YieldShard, ReportsRoundTripThroughValidateAndParse) {
    const auto& split = iris_split();
    const auto net = make_net(split, 100);
    const infer::CompiledPnn engine(net);

    yield::YieldCampaignOptions options;
    options.accuracy_spec = 0.5;
    options.n_samples = 64;
    options.round_size = 32;
    const auto result = yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
    const auto report = make_report(options, result);
    const auto doc = yield::yield_report_document(report);
    ASSERT_EQ(yield::validate_yield_report(doc), "");

    const auto parsed = yield::parse_yield_report(doc);
    EXPECT_EQ(yield::yield_report_document(parsed).dump(), doc.dump());

    // Corrupting a histogram count breaks the round/result consistency and
    // the validator names the first violation.
    auto broken = doc;
    obs::json::Value new_rounds = obs::json::Value::array();
    const auto& rounds = doc.find("rounds")->items();
    for (std::size_t r = 0; r < rounds.size(); ++r) {
        if (r != 0) {
            new_rounds.push_back(rounds[r]);
            continue;
        }
        obs::json::Value row = obs::json::Value::object();
        row.set("n", *rounds[r].find("n"));
        obs::json::Value histogram = obs::json::Value::array();
        const auto& bins = rounds[r].find("histogram")->items();
        for (std::size_t i = 0; i < bins.size(); ++i)
            histogram.push_back(i == 0 ? obs::json::Value::number(bins[i].as_number() + 1)
                                       : bins[i]);
        row.set("histogram", std::move(histogram));
        new_rounds.push_back(std::move(row));
    }
    broken.set("rounds", std::move(new_rounds));
    EXPECT_NE(yield::validate_yield_report(broken), "");

    // Merging a single {0, 1} report is the identity (merge idempotence).
    const auto remerged = yield::merge_yield_reports({report});
    EXPECT_EQ(yield::yield_report_document(remerged).dump(), doc.dump());
}

TEST(YieldShard, MergeRejectsInconsistentShards) {
    const auto& split = iris_split();
    const auto net = make_net(split, 101);
    const infer::CompiledPnn engine(net);

    yield::YieldCampaignOptions options;
    options.accuracy_spec = 0.5;
    options.n_samples = 64;
    options.round_size = 32;
    options.shard = {0, 2};
    const auto part0 = yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
    const auto report0 = make_report(options, part0);

    // Missing shard 1.
    EXPECT_THROW(yield::merge_yield_reports({report0}), std::invalid_argument);
    // Duplicate shard index.
    EXPECT_THROW(yield::merge_yield_reports({report0, report0}), std::invalid_argument);
    // Mismatched meta (different seed on the second shard).
    options.shard = {1, 2};
    options.seed = 1234;
    const auto part1 = yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
    EXPECT_THROW(yield::merge_yield_reports({report0, make_report(options, part1)}),
                 std::invalid_argument);
}

// ---- event-stream merging ---------------------------------------------------

TEST(YieldEvents, MergedStreamsStayValidAndDeterministic) {
    const auto make_stream = [](double wall, double base_t, const char* event) {
        std::string s;
        s += "{\"schema\":\"pnc-events/1\",\"seq\":0,\"t\":0,\"event\":\"stream.open\","
             "\"tool\":\"pnc\",\"wall_unix\":" + std::to_string(wall) + "}\n";
        s += "{\"schema\":\"pnc-events/1\",\"seq\":1,\"t\":" + std::to_string(base_t) +
             ",\"event\":\"" + std::string(event) + "\",\"n\":64}\n";
        s += "{\"schema\":\"pnc-events/1\",\"seq\":2,\"t\":" + std::to_string(base_t + 1) +
             ",\"event\":\"stream.close\"}\n";
        return s;
    };
    const std::string a = make_stream(1000, 0.5, "yield.round");
    const std::string b = make_stream(2000, 0.25, "yield.finish");

    const std::string merged = obs::merge_event_streams({a, b}, "pnc");
    ASSERT_EQ(obs::validate_events(merged), "") << merged;
    // Deterministic: merging the same inputs yields the same bytes.
    EXPECT_EQ(obs::merge_event_streams({a, b}, "pnc"), merged);
    // Each body line is tagged with its source shard; the per-stream
    // open/close envelopes are dropped in favor of one merged pair.
    EXPECT_NE(merged.find("\"event\":\"yield.round\""), std::string::npos);
    EXPECT_NE(merged.find("\"shard\":0"), std::string::npos);
    EXPECT_NE(merged.find("\"shard\":1"), std::string::npos);
    EXPECT_EQ(merged.find("\"wall_unix\":2000"), std::string::npos);

    // Garbage inputs are rejected, not silently merged.
    EXPECT_THROW(obs::merge_event_streams({a, "not json\n"}, "pnc"),
                 std::invalid_argument);
    EXPECT_THROW(obs::merge_event_streams({}, "pnc"), std::invalid_argument);
}
