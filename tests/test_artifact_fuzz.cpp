// Property/fuzz sweep over the artifact parsers.
//
// Contract under test: feeding a truncated or mutated artifact document to
// a validator/parser must end in a *clean typed rejection* — a non-empty
// violation string (validate_*) or a std::runtime_error (parse_*) — and
// never a crash, and never silent acceptance of a structurally broken
// document. Six formats are swept: pnc-yield-report/1, pnc-health/1,
// pnc-requests/1, the live serving telemetry plane's pnc-spans/1,
// pnc-livestats/1 and pnc-serve-health/1, and the sampling profiler's
// pnc-profile/1 — each seeded from a real, valid document so the mutations
// start one byte away from the accept path.
//
// Random byte flips only assert no-crash/self-consistency: a flipped digit
// inside a free field (a seed, a loss value) legitimately yields a
// *different valid* document, so "must reject" is asserted only for
// truncations and targeted structural damage (deleted keys, wrong-typed
// values, broken counts).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "data/registry.hpp"
#include "infer/engine.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "pnn/training.hpp"
#include "prof/profile.hpp"
#include "prof/profiler.hpp"
#include "serve/request_log.hpp"
#include "serve/telemetry.hpp"
#include "surrogate/dataset_builder.hpp"
#include "surrogate/design_space.hpp"
#include "yield/yield_report.hpp"

using namespace pnc;
using obs::json::Value;

namespace {

const surrogate::SurrogateModel& fuzz_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 250;
        options.sweep_points = 17;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 300;
        train.mlp.patience = 80;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

/// A real, validator-approved pnc-yield-report/1 from a tiny campaign.
std::string valid_yield_report_text() {
    static const std::string text = [] {
        const auto split = data::split_and_normalize(data::make_dataset("iris"), 66);
        math::Rng rng(91);
        pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                     &fuzz_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                     &fuzz_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                     surrogate::DesignSpace::table1(), rng);
        const infer::CompiledPnn engine(net);
        yield::YieldCampaignOptions options;
        options.accuracy_spec = 0.5;
        options.n_samples = 64;
        options.round_size = 32;
        const auto result =
            yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
        yield::YieldReport report;
        report.meta.dataset = "iris";
        report.meta.model_file = "model.pnn";
        report.meta.mode = options.mode;
        report.meta.method = options.method;
        report.meta.accuracy_spec = options.accuracy_spec;
        report.meta.epsilon = options.epsilon;
        report.meta.confidence = options.confidence;
        report.meta.ci_width = options.ci_width;
        report.meta.n_samples = options.n_samples;
        report.meta.round_size = options.round_size;
        report.meta.seed = options.seed;
        report.meta.antithetic = options.antithetic;
        report.meta.strata = options.strata;
        report.meta.test_rows = result.test_rows;
        report.shard = options.shard;
        report.rounds = result.rounds;
        report.result = result.estimate;
        return yield::yield_report_document(report).dump();
    }();
    return text;
}

/// A real, validator-approved pnc-health/1 flight-recorder dump.
std::string valid_health_text() {
    static const std::string text = [] {
        obs::HealthMonitor monitor({}, {{"seed", "63"}, {"lr_theta", "0.1"}});
        for (int epoch = 0; epoch < 10; ++epoch) {
            obs::EpochHealth e;
            e.epoch = epoch;
            e.train_loss = 0.3;
            e.val_loss = 0.3;
            e.grad_norm_theta = 0.5;
            e.grad_norm_global = 0.5;
            monitor.record_epoch(e);
        }
        monitor.finish();
        return monitor.document().dump();
    }();
    return text;
}

std::string valid_request_log_text() {
    serve::RequestLog log;
    log.model = "iris";
    log.n_features = 3;
    log.requests = {{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}, {0.7, 0.8, 0.9}};
    std::stringstream ss;
    serve::write_request_log(ss, log);
    return ss.str();
}

// ---- live serving telemetry seeds -------------------------------------------

double g_fuzz_now = 0.0;
double fuzz_clock() { return g_fuzz_now; }

std::string slurp_file(const std::string& path) {
    std::ifstream is(path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
}

/// Real pnc-spans/1 + pnc-livestats/1 streams from a directly-driven
/// telemetry plane (injected clock — no pipeline, no surrogate build). The
/// period is far beyond the synthetic run, so the single window line is the
/// finish() flush and the streams are byte-deterministic.
const std::pair<std::string, std::string>& valid_telemetry_streams() {
    static const auto streams = [] {
        namespace fs = std::filesystem;
        const fs::path dir = fs::temp_directory_path() / "pnc_fuzz_telemetry";
        fs::remove_all(dir);
        fs::create_directories(dir);
        const std::string spans_path = (dir / "spans.jsonl").string();
        const std::string live_path = (dir / "live.jsonl").string();
        serve::TelemetryOptions options;
        options.collect = true;
        options.spans_out = spans_path;
        options.live_stats_out = live_path;
        options.live_stats_period_ms = 60000.0;
        g_fuzz_now = 0.0;
        {
            serve::ServeTelemetry telemetry(options, 8, &fuzz_clock);
            const auto a = telemetry.mint_span();
            const auto b = telemetry.mint_span();
            const auto c = telemetry.mint_span();
            telemetry.on_enqueue(1);
            telemetry.on_enqueue(2);
            telemetry.on_shed(c, "iris");
            telemetry.on_dequeue(0);
            telemetry.on_batch("iris", 0, {{a, 0.5, 0.1, 2.0}, {b, 0.4, 0.1, 2.0}});
            g_fuzz_now = 1.0;
            telemetry.finish();
        }
        auto pair = std::make_pair(slurp_file(spans_path), slurp_file(live_path));
        fs::remove_all(dir);
        return pair;
    }();
    return streams;
}

std::string valid_spans_text() { return valid_telemetry_streams().first; }
std::string valid_livestats_text() { return valid_telemetry_streams().second; }

/// A real, validator-approved pnc-serve-health/1 flight recorder: a
/// watchdog with one sustained saturation streak behind it.
std::string valid_serve_health_text() {
    static const std::string text = [] {
        serve::TelemetryOptions options;
        options.watchdog = true;
        options.sustain_windows = 2;
        serve::ServeWatchdog watchdog(options, 8);
        for (std::uint64_t i = 0; i < 3; ++i) {
            serve::WindowStats w;
            w.index = i;
            w.t = static_cast<double>(i);
            w.queue_depth = w.queue_depth_max = 8.0;
            w.requests = 16;
            watchdog.observe(w);
        }
        return watchdog.document().dump();
    }();
    return text;
}

/// A real, validator-approved pnc-profile/1: a synthetic two-root folded
/// session (no sampler run needed — the document is a pure function of the
/// Profile value, which is the point of the timestamp-free design).
std::string valid_profile_text() {
    prof::Profile profile;
    profile.hz = 997.0;
    profile.duration_seconds = 0.5;
    profile.ticks = 498;
    profile.missed_ticks = 3;
    profile.threads_seen = 2;
    auto leaf = std::make_unique<prof::ProfileNode>();
    leaf->name = "infer.forward_rows";
    leaf->self = 120;
    leaf->total = 120;
    auto root = std::make_unique<prof::ProfileNode>();
    root->name = "eval";
    root->self = 30;
    root->total = 150;
    root->children.push_back(std::move(leaf));
    profile.roots.push_back(std::move(root));
    auto idle = std::make_unique<prof::ProfileNode>();
    idle->name = "pool.idle";
    idle->self = 40;
    idle->total = 40;
    profile.roots.push_back(std::move(idle));
    profile.samples = 190;
    prof::KernelTotals totals;
    totals.invocations = 5;
    totals.rows = 525;
    totals.flops = 42000;
    totals.bytes = 168000;
    totals.seconds = 0.12;
    profile.kernels["infer.forward_rows"] = totals;
    profile.alloc.allocations = 11;
    profile.alloc.deallocations = 11;
    profile.alloc.bytes = 4096;
    profile.arena_table_doubles_hwm = 512;
    profile.arena_batch_doubles_hwm = 96;
    return prof::profile_document(profile).dump();
}

enum class Verdict { kRejected, kAccepted };

/// Run one candidate through parse + validate + full parse. The only
/// forbidden outcomes are a crash (anything escaping that is not the typed
/// rejection) and an accepted-but-unparsable document.
Verdict probe_yield(const std::string& text) {
    Value doc;
    try {
        doc = Value::parse(text);
    } catch (const std::runtime_error&) {
        return Verdict::kRejected;
    }
    const std::string error = yield::validate_yield_report(doc);
    if (!error.empty()) return Verdict::kRejected;
    // Validator said yes: the full parser must agree without throwing.
    // (No re-dump equality here — a mutated-but-valid document may carry
    // derived fields the parser legitimately normalizes.)
    EXPECT_NO_THROW(yield::parse_yield_report(doc));
    return Verdict::kAccepted;
}

Verdict probe_health(const std::string& text) {
    Value doc;
    try {
        doc = Value::parse(text);
    } catch (const std::runtime_error&) {
        return Verdict::kRejected;
    }
    const std::string error = obs::validate_health(doc);
    if (!error.empty()) return Verdict::kRejected;
    EXPECT_NO_THROW(obs::classify_health(doc));
    return Verdict::kAccepted;
}

Verdict probe_request_log(const std::string& text) {
    // The non-throwing validator and the parser must agree on every input.
    const std::string error = serve::validate_requests(text);
    std::stringstream ss(text);
    try {
        const serve::RequestLog log = serve::parse_request_log(ss);
        (void)log;
    } catch (const std::runtime_error&) {
        EXPECT_FALSE(error.empty()) << "parser threw but validate_requests accepted";
        return Verdict::kRejected;
    }
    EXPECT_TRUE(error.empty()) << "parser accepted but validate_requests said: " << error;
    return Verdict::kAccepted;
}

Verdict probe_spans(const std::string& text) {
    // validate_spans is the single accept/reject gate (non-throwing by
    // contract — an escape here is exactly the crash this sweep hunts).
    return serve::validate_spans(text).empty() ? Verdict::kAccepted : Verdict::kRejected;
}

Verdict probe_livestats(const std::string& text) {
    return serve::validate_livestats(text).empty() ? Verdict::kAccepted
                                                   : Verdict::kRejected;
}

Verdict probe_serve_health(const std::string& text) {
    Value doc;
    try {
        doc = Value::parse(text);
    } catch (const std::runtime_error&) {
        return Verdict::kRejected;
    }
    return serve::validate_serve_health(doc).empty() ? Verdict::kAccepted
                                                     : Verdict::kRejected;
}

Verdict probe_profile(const std::string& text) {
    Value doc;
    try {
        doc = Value::parse(text);
    } catch (const std::runtime_error&) {
        return Verdict::kRejected;
    }
    const std::string error = prof::validate_profile(doc);
    if (!error.empty()) return Verdict::kRejected;
    EXPECT_NO_THROW(prof::parse_profile(doc));
    return Verdict::kAccepted;
}

using Probe = Verdict (*)(const std::string&);

/// Every strict prefix must be rejected — except prefixes that are still a
/// complete document (a JSONL file minus its trailing newline), which must
/// then round-trip identically; they may never crash either way.
void sweep_truncations(const std::string& text, Probe probe, bool jsonl) {
    for (std::size_t keep = 0; keep + 1 < text.size();
         keep += std::max<std::size_t>(1, text.size() / 97)) {
        const std::string candidate = text.substr(0, keep);
        const Verdict verdict = probe(candidate);
        const bool complete_line = jsonl && keep == text.size() - 1;
        if (!complete_line) {
            EXPECT_EQ(verdict, Verdict::kRejected)
                << "truncation to " << keep << " bytes was accepted";
        }
    }
}

/// Deterministic byte-flip storm: no assertion on accept/reject (a flipped
/// digit in a free field is a different valid document) — the probes
/// themselves assert no crash and accepted => parseable.
void sweep_byte_flips(const std::string& text, Probe probe, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::size_t> pos(0, text.size() - 1);
    std::uniform_int_distribution<int> byte(32, 126);
    for (int i = 0; i < 400; ++i) {
        std::string candidate = text;
        candidate[pos(rng)] = static_cast<char>(byte(rng));
        probe(candidate);
    }
    // Multi-byte damage: splice a random window out of the middle.
    for (int i = 0; i < 100; ++i) {
        std::string candidate = text;
        const std::size_t at = pos(rng);
        candidate.erase(at, std::min<std::size_t>(1 + at % 23, candidate.size() - at));
        probe(candidate);
    }
}

/// Structural damage to a JSON object document: every top-level key
/// deleted, then every top-level key retyped to a bare number. All are
/// schema violations and must be rejected.
void sweep_structural(const std::string& text, Probe probe) {
    const Value doc = Value::parse(text);
    ASSERT_TRUE(doc.is_object());
    for (const auto& [key, value] : doc.members()) {
        (void)value;
        Value without = Value::object();
        for (const auto& [k, v] : doc.members())
            if (k != key) without.set(k, v);
        EXPECT_EQ(probe(without.dump()), Verdict::kRejected)
            << "deleting key '" << key << "' was accepted";

        Value retyped = doc;
        retyped.set(key, Value::number(3.0));
        EXPECT_EQ(probe(retyped.dump()), Verdict::kRejected)
            << "retyping key '" << key << "' to a number was accepted";
    }
}

}  // namespace

TEST(ArtifactFuzz, SeedDocumentsAreAccepted) {
    EXPECT_EQ(probe_yield(valid_yield_report_text()), Verdict::kAccepted);
    EXPECT_EQ(probe_health(valid_health_text()), Verdict::kAccepted);
    EXPECT_EQ(probe_request_log(valid_request_log_text()), Verdict::kAccepted);
    EXPECT_EQ(probe_profile(valid_profile_text()), Verdict::kAccepted);
}

TEST(ArtifactFuzz, ProfileTruncationsAreRejected) {
    sweep_truncations(valid_profile_text(), probe_profile, /*jsonl=*/false);
}

TEST(ArtifactFuzz, ProfileStructuralDamageIsRejected) {
    sweep_structural(valid_profile_text(), probe_profile);
}

TEST(ArtifactFuzz, ProfileByteFlipsNeverCrash) {
    sweep_byte_flips(valid_profile_text(), probe_profile, 0xfadeULL);
}

TEST(ArtifactFuzz, YieldReportTruncationsAreRejected) {
    sweep_truncations(valid_yield_report_text(), probe_yield, /*jsonl=*/false);
}

TEST(ArtifactFuzz, YieldReportStructuralDamageIsRejected) {
    sweep_structural(valid_yield_report_text(), probe_yield);
}

TEST(ArtifactFuzz, YieldReportByteFlipsNeverCrash) {
    sweep_byte_flips(valid_yield_report_text(), probe_yield, 0xfeedULL);
}

TEST(ArtifactFuzz, HealthTruncationsAreRejected) {
    sweep_truncations(valid_health_text(), probe_health, /*jsonl=*/false);
}

TEST(ArtifactFuzz, HealthStructuralDamageIsRejected) {
    sweep_structural(valid_health_text(), probe_health);
}

TEST(ArtifactFuzz, HealthByteFlipsNeverCrash) {
    sweep_byte_flips(valid_health_text(), probe_health, 0xbeefULL);
}

TEST(ArtifactFuzz, RequestLogTruncationsAreRejected) {
    sweep_truncations(valid_request_log_text(), probe_request_log, /*jsonl=*/true);
}

TEST(ArtifactFuzz, RequestLogByteFlipsNeverCrash) {
    sweep_byte_flips(valid_request_log_text(), probe_request_log, 0xcafeULL);
}

// ---- live serving telemetry formats -----------------------------------------

TEST(ArtifactFuzz, ServeTelemetrySeedsAreAccepted) {
    EXPECT_EQ(probe_spans(valid_spans_text()), Verdict::kAccepted);
    EXPECT_EQ(probe_livestats(valid_livestats_text()), Verdict::kAccepted);
    EXPECT_EQ(probe_serve_health(valid_serve_health_text()), Verdict::kAccepted);
}

TEST(ArtifactFuzz, ServeSpansTruncationsAreRejected) {
    sweep_truncations(valid_spans_text(), probe_spans, /*jsonl=*/true);
}

TEST(ArtifactFuzz, ServeSpansByteFlipsNeverCrash) {
    sweep_byte_flips(valid_spans_text(), probe_spans, 0xabadULL);
}

TEST(ArtifactFuzz, ServeLivestatsTruncationsAreRejected) {
    sweep_truncations(valid_livestats_text(), probe_livestats, /*jsonl=*/true);
}

TEST(ArtifactFuzz, ServeLivestatsByteFlipsNeverCrash) {
    sweep_byte_flips(valid_livestats_text(), probe_livestats, 0xd00dULL);
}

TEST(ArtifactFuzz, ServeHealthTruncationsAreRejected) {
    sweep_truncations(valid_serve_health_text(), probe_serve_health, /*jsonl=*/false);
}

TEST(ArtifactFuzz, ServeHealthStructuralDamageIsRejected) {
    sweep_structural(valid_serve_health_text(), probe_serve_health);
}

TEST(ArtifactFuzz, ServeHealthByteFlipsNeverCrash) {
    sweep_byte_flips(valid_serve_health_text(), probe_serve_health, 0xf00dULL);
}
