// Aging-extension tests: drift model properties, composition with printing
// variation, aging-aware training behaviour.
#include <gtest/gtest.h>

#include "data/registry.hpp"
#include "pnn/aging.hpp"

using namespace pnc;
using math::Matrix;

namespace {

const surrogate::SurrogateModel& aging_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 300;
        options.sweep_points = 17;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 400;
        train.mlp.patience = 100;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

pnn::Pnn aging_net(std::uint64_t seed = 51) {
    math::Rng rng(seed);
    return pnn::Pnn({2, 3, 2}, &aging_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                    &aging_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                    surrogate::DesignSpace::table1(), rng);
}

}  // namespace

TEST(AgingModel, FreshDeviceIsUnchanged) {
    const pnn::AgingModel model;
    math::Rng rng(1);
    EXPECT_DOUBLE_EQ(model.sample_factor(rng, 0.0), 1.0);
}

TEST(AgingModel, ConductanceOnlyDecays) {
    const pnn::AgingModel model;
    math::Rng rng(2);
    for (double age : {1.0, 10.0, 1000.0, 1e5}) {
        for (int i = 0; i < 50; ++i) {
            const double f = model.sample_factor(rng, age);
            EXPECT_LE(f, 1.0);
            EXPECT_GE(f, 0.05);  // physical floor
        }
    }
}

TEST(AgingModel, DriftGrowsLogarithmically) {
    const pnn::AgingModel model{.drift_per_decade = 0.1, .device_spread = 0.0};
    math::Rng rng(3);
    const double f10 = model.sample_factor(rng, 9.0);      // ~1 decade
    const double f100 = model.sample_factor(rng, 99.0);    // ~2 decades
    const double f1000 = model.sample_factor(rng, 999.0);  // ~3 decades
    EXPECT_NEAR(f10, 0.9, 1e-9);
    EXPECT_NEAR(f100, 0.8, 1e-9);
    EXPECT_NEAR(f1000, 0.7, 1e-9);
}

TEST(AgingModel, RejectsNegativeAge) {
    const pnn::AgingModel model;
    math::Rng rng(4);
    EXPECT_THROW(model.sample_factor(rng, -1.0), std::invalid_argument);
}

TEST(AgedNetwork, FactorsDecayThetaAndGrowResistors) {
    const auto net = aging_net();
    const pnn::AgingModel model{.drift_per_decade = 0.1, .device_spread = 0.1};
    math::Rng rng(5);
    const auto aged = pnn::sample_aged_network(net, model, 1000.0, 0.0, rng);
    ASSERT_EQ(aged.size(), 2u);
    for (const auto& layer : aged) {
        for (std::size_t i = 0; i < layer.theta_in.size(); ++i)
            EXPECT_LT(layer.theta_in[i], 1.0);  // conductances decay
        for (std::size_t r = 0; r < layer.omega_act.rows(); ++r) {
            for (std::size_t c = 0; c < 5; ++c)
                EXPECT_GT(layer.omega_act(r, c), 1.0);  // resistances grow
            // Transistor geometry is frozen at print time.
            EXPECT_DOUBLE_EQ(layer.omega_act(r, 5), 1.0);
            EXPECT_DOUBLE_EQ(layer.omega_act(r, 6), 1.0);
        }
    }
}

TEST(AgedNetwork, ComposesWithPrintingVariation) {
    const auto net = aging_net();
    const pnn::AgingModel model{.drift_per_decade = 0.0, .device_spread = 0.0};
    math::Rng rng(6);
    // Zero drift: factors reduce to pure printing variation.
    const auto aged = pnn::sample_aged_network(net, model, 100.0, 0.1, rng);
    for (const auto& layer : aged)
        for (std::size_t i = 0; i < layer.theta_in.size(); ++i) {
            EXPECT_GE(layer.theta_in[i], 0.9);
            EXPECT_LE(layer.theta_in[i], 1.1);
        }
}

TEST(AgingTraining, RunsAndImprovesAgedAccuracy) {
    // Aging-aware training should beat nominal training when evaluated on
    // an old circuit.
    math::Rng data_rng(61);
    data::Dataset ds;
    ds.name = "blobs";
    ds.n_classes = 2;
    ds.features = Matrix(80, 2);
    for (int i = 0; i < 80; ++i) {
        const int label = i % 2;
        ds.labels.push_back(label);
        ds.features(i, 0) = data_rng.normal(label ? 0.75 : 0.25, 0.1);
        ds.features(i, 1) = data_rng.normal(label ? 0.25 : 0.75, 0.1);
    }
    const auto split = data::split_and_normalize(ds, 9);
    const pnn::AgingModel model{.drift_per_decade = 0.15, .device_spread = 0.4};

    auto nominal = aging_net(52);
    pnn::TrainOptions base;
    base.max_epochs = 200;
    base.patience = 200;
    pnn::train_pnn(nominal, split, base);

    auto aware = aging_net(52);
    pnn::AgingTrainOptions options;
    options.base = base;
    options.model = model;
    options.n_mc_ages = 6;
    options.lifetime_hours = 10000.0;
    const auto trained = pnn::train_pnn_aging_aware(aware, split, options);
    EXPECT_GT(trained.epochs_run, 0);

    const auto old_nominal =
        pnn::evaluate_pnn_aged(nominal, split.x_test, split.y_test, model, 10000.0, 0.0,
                               40, 7);
    const auto old_aware =
        pnn::evaluate_pnn_aged(aware, split.x_test, split.y_test, model, 10000.0, 0.0,
                               40, 7);
    EXPECT_GE(old_aware.mean_accuracy, old_nominal.mean_accuracy - 0.03);
}

TEST(AgingEvaluation, Validation) {
    const auto net = aging_net(53);
    const pnn::AgingModel model;
    EXPECT_THROW(pnn::evaluate_pnn_aged(net, Matrix(2, 2), {0, 1}, model, 1.0, 0.0, 0, 1),
                 std::invalid_argument);
}
