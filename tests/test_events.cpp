// The structured event stream: JSONL round-trip through the global
// EventStream, the pnc-events/1 validator's violation catalogue, and the
// observatory's core invariant — an enabled stream changes no training or
// evaluation result bit-for-bit, at any thread count.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "math/random.hpp"
#include "obs/config.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pnn/training.hpp"
#include "runtime/thread_pool.hpp"
#include "surrogate/dataset_builder.hpp"

using namespace pnc;

namespace {

/// Every test starts and ends with the stream closed and obs disabled.
class EventsTest : public ::testing::Test {
protected:
    void SetUp() override { reset_all(); }
    void TearDown() override {
        reset_all();
        std::remove(stream_path().c_str());
    }

    static void reset_all() {
        obs::EventStream::global().close();
        obs::set_enabled(false);
        obs::MetricsRegistry::global().reset();
        obs::Tracer::global().reset();
    }

    static std::string stream_path() {
        return (std::filesystem::temp_directory_path() /
                ("pnc_events_test_" + std::to_string(::getpid()) + ".jsonl"))
            .string();
    }

    static std::string slurp(const std::string& path) {
        std::ifstream in(path);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    }

    static std::vector<obs::json::Value> parse_lines(const std::string& text) {
        std::vector<obs::json::Value> lines;
        std::istringstream in(text);
        std::string line;
        while (std::getline(in, line))
            if (!line.empty()) lines.push_back(obs::json::Value::parse(line));
        return lines;
    }
};

}  // namespace

// ----------------------------------------------------------- stream basics

TEST_F(EventsTest, OpenEmitCloseProducesValidStream) {
    auto& stream = obs::EventStream::global();
    EXPECT_FALSE(stream.active());
    EXPECT_FALSE(obs::events_active());

    stream.open(stream_path(), "test_events");
    EXPECT_TRUE(obs::events_active());
    stream.emit("demo.step", {obs::EventField::num("value", 1.5),
                              obs::EventField::str("phase", "warmup")});
    obs::emit_event("demo.done");
    stream.close();
    EXPECT_FALSE(obs::events_active());

    const std::string text = slurp(stream_path());
    EXPECT_EQ(obs::validate_events(text), "");

    const auto lines = parse_lines(text);
    ASSERT_EQ(lines.size(), 4u);  // open, step, done, close

    // Header: tool + wall-clock anchor, seq 0.
    EXPECT_EQ(lines[0].find("event")->as_string(), "stream.open");
    EXPECT_EQ(lines[0].find("tool")->as_string(), "test_events");
    EXPECT_GT(lines[0].find("wall_unix")->as_number(), 0.0);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        EXPECT_EQ(lines[i].find("schema")->as_string(), "pnc-events/1");
        EXPECT_DOUBLE_EQ(lines[i].find("seq")->as_number(), static_cast<double>(i));
        EXPECT_GE(lines[i].find("t")->as_number(),
                  i ? lines[i - 1].find("t")->as_number() : 0.0);
    }
    EXPECT_EQ(lines[1].find("event")->as_string(), "demo.step");
    EXPECT_DOUBLE_EQ(lines[1].find("value")->as_number(), 1.5);
    EXPECT_EQ(lines[1].find("phase")->as_string(), "warmup");
    EXPECT_EQ(lines.back().find("event")->as_string(), "stream.close");
}

TEST_F(EventsTest, EmitWithoutOpenIsANoOp) {
    obs::emit_event("orphan", {obs::EventField::num("x", 1.0)});
    obs::EventStream::global().emit("orphan.direct");
    EXPECT_FALSE(std::filesystem::exists(stream_path()));
}

TEST_F(EventsTest, ReservedKeysCannotBeShadowed) {
    auto& stream = obs::EventStream::global();
    stream.open(stream_path(), "test_events");
    // A field named "seq" (or any reserved key) must not corrupt the envelope.
    stream.emit("demo", {obs::EventField::num("seq", 999.0),
                         obs::EventField::str("event", "forged"),
                         obs::EventField::num("payload", 7.0)});
    stream.close();

    const std::string text = slurp(stream_path());
    EXPECT_EQ(obs::validate_events(text), "");
    const auto lines = parse_lines(text);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_DOUBLE_EQ(lines[1].find("seq")->as_number(), 1.0);
    EXPECT_EQ(lines[1].find("event")->as_string(), "demo");
    EXPECT_DOUBLE_EQ(lines[1].find("payload")->as_number(), 7.0);
}

TEST_F(EventsTest, ReopenTruncatesAndRestartsSeq) {
    auto& stream = obs::EventStream::global();
    stream.open(stream_path(), "first");
    stream.emit("a");
    stream.close();
    stream.open(stream_path(), "second");
    stream.close();

    const auto lines = parse_lines(slurp(stream_path()));
    ASSERT_EQ(lines.size(), 2u);  // truncated: only the second run
    EXPECT_EQ(lines[0].find("tool")->as_string(), "second");
    EXPECT_DOUBLE_EQ(lines[0].find("seq")->as_number(), 0.0);
    EXPECT_EQ(obs::validate_events(slurp(stream_path())), "");
}

// -------------------------------------------------------------- validation

namespace {

std::string header_line(double t = 0.0) {
    return R"({"schema":"pnc-events/1","seq":0,"t":)" + std::to_string(t) +
           R"(,"event":"stream.open","tool":"x","wall_unix":1})" "\n";
}

}  // namespace

TEST_F(EventsTest, ValidatorCatalogueOfViolations) {
    // Well-formed two-line stream passes.
    const std::string good =
        header_line() +
        R"({"schema":"pnc-events/1","seq":1,"t":0.5,"event":"done"})" "\n";
    EXPECT_EQ(obs::validate_events(good), "");

    // Empty stream: no header.
    EXPECT_NE(obs::validate_events(""), "");
    EXPECT_NE(obs::validate_events("\n\n"), "");

    // First event must be stream.open.
    EXPECT_NE(obs::validate_events(
                  R"({"schema":"pnc-events/1","seq":0,"t":0,"event":"other"})" "\n"),
              "");

    // Malformed JSON line.
    EXPECT_NE(obs::validate_events(header_line() + "{not json\n"), "");

    // Wrong schema tag.
    EXPECT_NE(obs::validate_events(
                  R"({"schema":"pnc-events/2","seq":0,"t":0,"event":"stream.open"})" "\n"),
              "");

    // Sequence gap (seq 2 after 0).
    EXPECT_NE(obs::validate_events(
                  header_line() +
                  R"({"schema":"pnc-events/1","seq":2,"t":0.5,"event":"gap"})" "\n"),
              "");

    // Time going backwards.
    EXPECT_NE(obs::validate_events(
                  header_line(5.0) +
                  R"({"schema":"pnc-events/1","seq":1,"t":1.0,"event":"rewind"})" "\n"),
              "");

    // Non-finite t (serialized null).
    EXPECT_NE(obs::validate_events(
                  header_line() +
                  R"({"schema":"pnc-events/1","seq":1,"t":null,"event":"nan"})" "\n"),
              "");

    // Missing reserved key (no event).
    EXPECT_NE(obs::validate_events(header_line() +
                                   R"({"schema":"pnc-events/1","seq":1,"t":0.5})" "\n"),
              "");
}

// ----------------------------------------------------- the core invariant

namespace {

// Tiny surrogates (same recipe as test_obs) so the bit-identity test trains
// a real pNN through the real pipeline in well under a second.
const surrogate::SurrogateModel& events_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 300;
        options.sweep_points = 17;
        const auto dataset =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 400;
        train.mlp.patience = 100;
        return surrogate::SurrogateModel::train(dataset, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

data::SplitDataset events_blob_split() {
    math::Rng rng(71);
    data::Dataset ds;
    ds.name = "blobs";
    ds.n_classes = 2;
    ds.features = math::Matrix(60, 2);
    for (int i = 0; i < 60; ++i) {
        const int label = i % 2;
        ds.labels.push_back(label);
        ds.features(i, 0) = rng.normal(label ? 0.8 : 0.2, 0.08);
        ds.features(i, 1) = rng.normal(label ? 0.2 : 0.8, 0.08);
    }
    return data::split_and_normalize(ds, 9);
}

struct WorkloadOutcome {
    pnn::TrainResult result;
    std::vector<math::Matrix> params;
    pnn::EvalResult eval;
};

WorkloadOutcome run_seeded_workload() {
    const auto split = events_blob_split();
    math::Rng rng(72);
    pnn::Pnn net({2, 3, 2}, &events_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                 &events_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                 surrogate::DesignSpace::table1(), rng);
    pnn::TrainOptions options;
    options.max_epochs = 10;
    options.patience = 10;
    options.epsilon = 0.1;
    options.n_mc_train = 4;
    options.n_mc_val = 2;
    options.seed = 73;
    const auto result = pnn::train_pnn(net, split, options);
    pnn::EvalOptions eval_options;
    eval_options.epsilon = 0.1;
    eval_options.n_mc = 16;
    const auto eval = pnn::evaluate_pnn(net, split.x_test, split.y_test, eval_options);
    return {result, net.snapshot(), eval};
}

void expect_identical(const WorkloadOutcome& a, const WorkloadOutcome& b) {
    EXPECT_EQ(a.result.best_val_loss, b.result.best_val_loss);
    EXPECT_EQ(a.result.final_train_loss, b.result.final_train_loss);
    EXPECT_EQ(a.result.best_epoch, b.result.best_epoch);
    EXPECT_EQ(a.result.epochs_run, b.result.epochs_run);
    ASSERT_EQ(a.params.size(), b.params.size());
    for (std::size_t p = 0; p < a.params.size(); ++p) {
        ASSERT_EQ(a.params[p].size(), b.params[p].size());
        for (std::size_t i = 0; i < a.params[p].size(); ++i)
            ASSERT_EQ(a.params[p][i], b.params[p][i])
                << "parameter " << p << " element " << i;
    }
    EXPECT_EQ(a.eval.mean_accuracy, b.eval.mean_accuracy);
    EXPECT_EQ(a.eval.std_accuracy, b.eval.std_accuracy);
}

}  // namespace

TEST_F(EventsTest, EventStreamDoesNotChangeResultsBitForBit) {
    // The ISSUE acceptance criterion for --events-out: enabling the stream
    // changes no numerical result. Event emission reads already-computed
    // values and a steady clock — never an Rng stream — and the guarded
    // emit sites are exercised at one and several threads.
    const std::size_t restore_threads = runtime::global_thread_count();
    WorkloadOutcome plain;
    {
        runtime::set_global_threads(1);
        plain = run_seeded_workload();
    }

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        runtime::set_global_threads(threads);
        obs::EventStream::global().open(stream_path(), "test_events");
        const auto observed = run_seeded_workload();
        obs::EventStream::global().close();

        expect_identical(plain, observed);

        // The stream actually recorded the run and is well-formed.
        const std::string text = slurp(stream_path());
        EXPECT_EQ(obs::validate_events(text), "") << "threads=" << threads;
        EXPECT_NE(text.find("\"train.start\""), std::string::npos);
        EXPECT_NE(text.find("\"train.epoch\""), std::string::npos);
        EXPECT_NE(text.find("\"train.finish\""), std::string::npos);
        EXPECT_NE(text.find("\"eval.finish\""), std::string::npos);
    }
    runtime::set_global_threads(restore_threads);
}
