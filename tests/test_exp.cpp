// Experiment-harness tests: environment configuration, result aggregation
// and serialization, and a miniature end-to-end Table II cell run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "exp/artifacts.hpp"
#include "exp/experiment.hpp"

using namespace pnc;

namespace {

struct EnvGuard {
    explicit EnvGuard(std::vector<const char*> names) : names_(std::move(names)) {}
    ~EnvGuard() {
        for (const char* name : names_) unsetenv(name);
    }
    std::vector<const char*> names_;
};

const surrogate::SurrogateModel& mini_surrogate(circuit::NonlinearCircuitKind kind) {
    static const auto build = [](circuit::NonlinearCircuitKind k) {
        surrogate::DatasetBuildOptions options;
        options.samples = 300;
        options.sweep_points = 17;
        const auto ds =
            surrogate::build_surrogate_dataset(k, surrogate::DesignSpace::table1(), options);
        surrogate::SurrogateTrainOptions train;
        train.mlp.max_epochs = 500;
        train.mlp.patience = 120;
        return surrogate::SurrogateModel::train(ds, train);
    };
    static const auto act = build(circuit::NonlinearCircuitKind::kPtanh);
    static const auto neg = build(circuit::NonlinearCircuitKind::kNegativeWeight);
    return kind == circuit::NonlinearCircuitKind::kPtanh ? act : neg;
}

}  // namespace

TEST(ExperimentConfig, DefaultsAreReduced) {
    EnvGuard guard({"PNC_FULL", "PNC_SEEDS", "PNC_EPOCHS", "PNC_DATASETS"});
    const auto config = exp::ExperimentConfig::from_env();
    EXPECT_EQ(config.seeds.size(), 3u);
    EXPECT_LT(config.patience, 5000);
    EXPECT_TRUE(config.datasets.empty());  // = all 13
}

TEST(ExperimentConfig, FullProtocolMatchesPaper) {
    EnvGuard guard({"PNC_FULL"});
    setenv("PNC_FULL", "1", 1);
    const auto config = exp::ExperimentConfig::from_env();
    EXPECT_EQ(config.seeds.size(), 10u);   // seeds 1..10
    EXPECT_EQ(config.patience, 5000);      // early-stop patience
    EXPECT_EQ(config.n_mc_train, 20);      // N_train
    EXPECT_EQ(config.n_mc_test, 100);      // N_test
    EXPECT_EQ(config.max_train_samples, 0u);
}

TEST(ExperimentConfig, EnvOverrides) {
    EnvGuard guard({"PNC_SEEDS", "PNC_EPOCHS", "PNC_DATASETS"});
    setenv("PNC_SEEDS", "5", 1);
    setenv("PNC_EPOCHS", "123", 1);
    setenv("PNC_DATASETS", "iris,seeds", 1);
    const auto config = exp::ExperimentConfig::from_env();
    EXPECT_EQ(config.seeds.size(), 5u);
    EXPECT_EQ(config.max_epochs, 123);
    ASSERT_EQ(config.datasets.size(), 2u);
    EXPECT_EQ(config.datasets[0], "iris");
    EXPECT_EQ(config.datasets[1], "seeds");
}

TEST(EnvHelpers, ParseAndFallback) {
    EnvGuard guard({"PNC_TEST_INT", "PNC_TEST_DOUBLE", "PNC_TEST_STR"});
    EXPECT_EQ(exp::env_int("PNC_TEST_INT", 7), 7);
    setenv("PNC_TEST_INT", "42", 1);
    EXPECT_EQ(exp::env_int("PNC_TEST_INT", 7), 42);
    setenv("PNC_TEST_DOUBLE", "2.5", 1);
    EXPECT_DOUBLE_EQ(exp::env_double("PNC_TEST_DOUBLE", 0.0), 2.5);
    EXPECT_EQ(exp::env_string("PNC_TEST_STR", "dflt"), "dflt");
}

TEST(TableResults, SaveLoadRoundTrip) {
    exp::TableResults table;
    exp::DatasetResults ds;
    ds.display_name = "Iris Flower Set";
    for (int l = 0; l < 2; ++l)
        for (int v = 0; v < 2; ++v)
            for (int e = 0; e < 2; ++e) ds.cells[l][v][e] = {0.5 + 0.01 * (l + v + e), 0.02};
    table.datasets.push_back(ds);
    for (int l = 0; l < 2; ++l)
        for (int v = 0; v < 2; ++v)
            for (int e = 0; e < 2; ++e) table.average[l][v][e] = {0.7, 0.01};

    std::stringstream ss;
    table.save(ss);
    const auto loaded = exp::TableResults::load(ss);
    ASSERT_EQ(loaded.datasets.size(), 1u);
    EXPECT_EQ(loaded.datasets[0].display_name, "Iris Flower Set");
    EXPECT_DOUBLE_EQ(loaded.datasets[0].cells[1][1][1].mean, 0.53);
    EXPECT_DOUBLE_EQ(loaded.average[0][0][0].mean, 0.7);
}

TEST(TableResults, MultiDatasetRoundTrip) {
    // Regression: names are full lines and cell rows end with a trailing
    // space, so the loader must skip to end-of-line between records.
    exp::TableResults table;
    for (const char* name : {"Acute Inflammation", "Balance Scale", "Iris"}) {
        exp::DatasetResults ds;
        ds.display_name = name;
        ds.cells[1][0][1] = {0.42, 0.05};
        table.datasets.push_back(ds);
    }
    std::stringstream ss;
    table.save(ss);
    const auto loaded = exp::TableResults::load(ss);
    ASSERT_EQ(loaded.datasets.size(), 3u);
    EXPECT_EQ(loaded.datasets[1].display_name, "Balance Scale");
    EXPECT_DOUBLE_EQ(loaded.datasets[2].cells[1][0][1].mean, 0.42);
}

TEST(ExperimentRunner, MiniIrisGridHasSaneCells) {
    exp::ExperimentConfig config;
    config.datasets = {"iris"};
    config.seeds = {1};
    config.max_epochs = 150;
    config.patience = 60;
    config.n_mc_train = 3;
    config.n_mc_val = 2;
    config.n_mc_test = 20;
    exp::ExperimentRunner runner(&mini_surrogate(circuit::NonlinearCircuitKind::kPtanh),
                                 &mini_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight),
                                 config);
    const auto results = runner.run_all();
    ASSERT_EQ(results.datasets.size(), 1u);
    EXPECT_EQ(results.datasets[0].display_name, "Iris");
    for (int l = 0; l < 2; ++l)
        for (int v = 0; v < 2; ++v)
            for (int e = 0; e < 2; ++e) {
                const auto& cell = results.datasets[0].cells[l][v][e];
                EXPECT_GT(cell.mean, 0.3) << l << v << e;  // far above random (1/3)
                EXPECT_LE(cell.mean, 1.0);
                EXPECT_GE(cell.stddev, 0.0);
                // Averages over one dataset equal the dataset cells.
                EXPECT_DOUBLE_EQ(results.average[l][v][e].mean, cell.mean);
            }
}

TEST(ExperimentRunner, PrintersProduceTables) {
    exp::TableResults table;
    exp::DatasetResults ds;
    ds.display_name = "Iris";
    table.datasets.push_back(ds);
    exp::ExperimentConfig config;
    std::ostringstream os2, os3;
    exp::print_table2(os2, table, config);
    exp::print_table3(os3, table);
    EXPECT_NE(os2.str().find("TABLE II"), std::string::npos);
    EXPECT_NE(os2.str().find("Iris"), std::string::npos);
    EXPECT_NE(os2.str().find("Average"), std::string::npos);
    EXPECT_NE(os3.str().find("TABLE III"), std::string::npos);
}

TEST(Artifacts, DirectoryIsCreated) {
    EnvGuard guard({"PNC_ARTIFACTS"});
    setenv("PNC_ARTIFACTS", "/tmp/pnc_test_artifacts", 1);
    const auto dir = exp::artifact_dir();
    EXPECT_EQ(dir, "/tmp/pnc_test_artifacts");
    EXPECT_TRUE(std::filesystem::exists(dir));
    std::filesystem::remove_all(dir);
}
