// Shared main() body of the google-benchmark micro benches: BenchRun flag
// parsing (--smoke / --headline-out) layered under benchmark's own flags,
// plus a reporter that mirrors every benchmark's real time into the
// pnc-headline/1 side file so the suite driver can diff micro timings too.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "exp/bench_support.hpp"

namespace pnc::bench {

class HeadlineReporter : public benchmark::ConsoleReporter {
public:
    explicit HeadlineReporter(exp::BenchRun* run) : run_(run) {}

    void ReportRuns(const std::vector<Run>& runs) override {
        for (const auto& r : runs) {
            if (r.error_occurred) continue;
            // "BM_CrossbarClosedForm/64" -> "BM_CrossbarClosedForm.64.real_ns"
            std::string name = r.benchmark_name();
            for (char& c : name)
                if (c == '/' || c == ':') c = '.';
            run_->headline(name + ".real_ns", r.GetAdjustedRealTime());
        }
        ConsoleReporter::ReportRuns(runs);
    }

private:
    exp::BenchRun* run_;
};

/// The whole micro-bench main: parse BenchRun flags (unknowns pass through
/// to benchmark::Initialize), shrink --smoke runs via benchmark_min_time,
/// run everything, write the headline file.
inline int run_micro_benchmarks(const char* tool, int argc, char** argv) {
    auto run = exp::BenchRun::init(tool, argc, argv, /*allow_passthrough=*/true);
    std::vector<std::string> args = {tool};
    // v1.7 flag syntax (plain seconds); placed first so an explicit
    // passthrough --benchmark_min_time still wins.
    if (run.smoke()) args.emplace_back("--benchmark_min_time=0.01");
    for (const auto& arg : run.passthrough()) args.push_back(arg);

    std::vector<char*> cargv;
    cargv.reserve(args.size());
    for (auto& arg : args) cargv.push_back(arg.data());
    int cargc = static_cast<int>(cargv.size());
    benchmark::Initialize(&cargc, cargv.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 2;

    HeadlineReporter reporter(&run);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return run.finish();
}

}  // namespace pnc::bench
