// Certified robustness of the four Table III setups (extension): fraction
// of test samples whose classification is *provably* invariant under all
// crossbar variation within +-eps (sound interval propagation), swept over
// eps. Complements the Monte-Carlo view: certified accuracy is a formal
// lower bound, not a sample statistic.
#include <cstdio>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "pnn/certification.hpp"
#include "pnn/training.hpp"

using namespace pnc;

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_certified", argc, argv);
    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 37);
    const auto space = surrogate::DesignSpace::table1();

    struct Setup {
        const char* name;
        bool learnable;
        double train_eps;
    };
    const Setup setups[] = {
        {"baseline (fixed NL, nominal)", false, 0.0},
        {"variation-aware only", false, 0.10},
        {"learnable NL only", true, 0.0},
        {"learnable NL + variation-aware", true, 0.10},
    };
    const double eps_levels[] = {0.01, 0.02, 0.05, 0.10};

    std::printf("CERTIFIED accuracy (provable lower bound, crossbar variation scope), "
                "iris\n\n");
    std::printf("%-34s", "setup \\ eps");
    for (double eps : eps_levels) std::printf("  %5.0f%%  ", eps * 100);
    std::printf("\n");

    for (const auto& setup : setups) {
        math::Rng rng(14);
        pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                     &act, &neg, space, rng);
        pnn::TrainOptions options;
        options.learnable_nonlinear = setup.learnable;
        options.epsilon = setup.train_eps;
        options.n_mc_train = setup.train_eps > 0 ? 8 : 1;
        options.max_epochs = exp::env_int("PNC_EPOCHS", 800);
        options.patience = exp::env_int("PNC_PATIENCE", 200);
        options.seed = 14;
        pnn::train_pnn(net, split, options);

        std::printf("%-34s", setup.name);
        for (double eps : eps_levels) {
            pnn::CertificationOptions cert_options;
            cert_options.epsilon = eps;
            const auto cert = pnn::certify(net, split.x_test, split.y_test, cert_options);
            std::printf("  %.3f  ", cert.certified_accuracy);
            if (eps == 0.10) {
                if (&setup == &setups[0])
                    run.headline("certified.baseline.eps10", cert.certified_accuracy);
                if (&setup == &setups[3])
                    run.headline("certified.full.eps10", cert.certified_accuracy);
            }
        }
        std::printf("\n");
    }
    std::printf("\n(variation-aware training should certify more at every eps — its\n"
                " decision margins are wider by construction)\n");
    return run.finish();
}
