// Context for Table II (extension): per dataset, how the full pNN method
// compares against an unconstrained software NN of the same topology (the
// accuracy ceiling) and the majority-class floor. Quantifies what the
// printed-hardware constraints cost — and where the bespoke circuits close
// most of that gap.
#include <cstdio>

#include <vector>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "exp/baselines.hpp"
#include "exp/bench_support.hpp"
#include "pnn/training.hpp"

using namespace pnc;

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_reference", argc, argv);
    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto space = surrogate::DesignSpace::table1();

    std::printf("REFERENCE baselines vs the full pNN method (nominal test accuracy)\n\n");
    std::printf("%-26s %10s %12s %14s\n", "dataset", "majority", "float NN", "pNN (full)");

    std::vector<const char*> datasets = {"iris",          "seeds",
                                         "breast_cancer", "vertebral_3c",
                                         "tictactoe_endgame", "balance_scale"};
    if (run.smoke()) datasets = {"iris", "seeds"};
    for (const char* name : datasets) {
        auto split = data::split_and_normalize(data::make_dataset(name), 47);
        const auto baseline = exp::run_baselines(split);

        math::Rng rng(21);
        pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                     &act, &neg, space, rng);
        pnn::TrainOptions options;
        options.epsilon = 0.05;
        options.n_mc_train = 5;
        options.learnable_nonlinear = true;
        options.max_epochs = exp::env_int("PNC_EPOCHS", 800);
        options.patience = exp::env_int("PNC_PATIENCE", 200);
        options.seed = 21;
        pnn::train_pnn(net, split, options);
        pnn::EvalOptions eval;  // nominal
        const auto result = pnn::evaluate_pnn(net, split.x_test, split.y_test, eval);

        std::printf("%-26s %10.3f %12.3f %14.3f\n", name, baseline.majority_accuracy,
                    baseline.float_nn_accuracy, result.mean_accuracy);
        const std::string prefix = std::string("accuracy.") + name;
        run.headline(prefix + ".pnn", result.mean_accuracy);
        run.headline(prefix + ".float_nn", baseline.float_nn_accuracy);
    }
    std::printf("\n(the bespoke analog circuit should sit close to the float ceiling on\n"
                " these small tasks despite conductance range limits, convex-combination\n"
                " weights and circuit nonlinearities)\n");
    return run.finish();
}
