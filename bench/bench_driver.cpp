// pnc-bench: the unified suite driver of the regression observatory.
//
// Runs the declarative registry of bench binaries below (all of them, or a
// --filter subset) as child processes, measures wall-clock and peak RSS per
// bench (wait4 rusage), collects each bench's pnc-headline/1 side file, and
// writes ONE consolidated pnc-bench-suite/1 artifact:
//
//   pnc-bench --smoke                 # cheap tier, BENCH_<utc>.json in artifacts/
//   pnc report check --baseline baselines/ci.json   # gate on it (exit 3)
//
// Child stdout/stderr land in per-bench log files next to the artifact so a
// regression can be chased without re-running the suite. Build/machine meta
// (git sha, compiler, flags, threads) is baked in via compile definitions so
// two artifacts can always be traced back to what produced them.
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/utsname.h>
#include <sys/wait.h>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "obs/baseline.hpp"

#ifndef PNC_GIT_SHA
#define PNC_GIT_SHA "unknown"
#endif
#ifndef PNC_COMPILER
#define PNC_COMPILER "unknown"
#endif
#ifndef PNC_CXX_FLAGS
#define PNC_CXX_FLAGS ""
#endif

using namespace pnc;

namespace {

struct BenchSpec {
    const char* name;        ///< short name used in --filter and the suite doc
    const char* binary;      ///< executable next to the driver
    bool needs_surrogate;    ///< gets the in-process cache pre-warm
};

// Declarative suite registry. table2 runs before table3 on purpose: table3
// reuses table2's result cache and would otherwise re-run the whole grid.
const BenchSpec kBenches[] = {
    {"fig2", "bench_fig2", false},
    {"fig4", "bench_fig4", false},
    {"micro_circuit", "bench_micro_circuit", false},
    {"micro_training", "bench_micro_training", false},
    {"table2", "bench_table2", true},
    {"table3", "bench_table3", true},
    {"ablation_mc", "bench_ablation_mc", true},
    {"ablation_topology", "bench_ablation_topology", true},
    {"ablation_aging", "bench_ablation_aging", true},
    {"cost", "bench_cost", true},
    {"reference", "bench_reference", true},
    {"yield", "bench_yield", true},
    {"certified", "bench_certified", true},
    {"fault_yield", "bench_fault_yield", true},
    {"parallel_scaling", "bench_parallel_scaling", true},
    {"inference", "bench_inference", true},
    {"yield_scale", "bench_yield_scale", true},
    {"serving", "bench_serving", true},
};

[[noreturn]] void usage(int rc) {
    std::fprintf(
        rc == 0 ? stdout : stderr,
        "usage: pnc-bench [--smoke | --full] [--filter SUBSTR] [--list]\n"
        "                 [--out FILE] [--bench-dir DIR] [--profile]\n"
        "\n"
        "Runs the bench suite and writes one pnc-bench-suite/1 artifact\n"
        "(default: $PNC_ARTIFACTS/BENCH_<utc>.json) plus per-bench logs.\n"
        "  --smoke       cheap tier: PNC_SMOKE=1 for every bench\n"
        "  --full        full tier (default)\n"
        "  --filter S    only benches whose name contains S\n"
        "  --list        print the registry and exit\n"
        "  --out FILE    artifact path\n"
        "  --bench-dir D directory holding the bench binaries\n"
        "                (default: the driver's own directory)\n"
        "  --profile     capture a pnc-profile/1 sampling profile per bench\n"
        "                (<name>.profile.json next to the logs; inspect with\n"
        "                `pnc prof summary|flame`)\n");
    std::exit(rc);
}

std::string dirname_of(const std::string& path) {
    const auto slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string utc_stamp() {
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y%m%d-%H%M%S", &tm);
    return buf;
}

struct ChildResult {
    int exit_code = 0;
    double wall_seconds = 0.0;
    double peak_rss_kb = 0.0;
    double user_seconds = 0.0;
    double sys_seconds = 0.0;
};

double timeval_seconds(const struct timeval& tv) {
    return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
}

/// fork/exec one bench with stdout+stderr redirected to `log_path` and the
/// headline side file requested via PNC_HEADLINE_OUT. wait4 gives peak RSS
/// plus user/sys CPU time. `profile_path` non-empty requests an in-process
/// pnc-profile/1 capture via PNC_PROF_OUT (see exp::BenchRun).
ChildResult run_child(const std::string& binary, const std::string& log_path,
                      const std::string& headline_path, bool smoke,
                      const std::string& profile_path) {
    const auto start = std::chrono::steady_clock::now();
    const pid_t pid = fork();
    if (pid < 0) {
        std::perror("pnc-bench: fork");
        return {127, 0.0, 0.0};
    }
    if (pid == 0) {
        const int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            ::dup2(fd, STDOUT_FILENO);
            ::dup2(fd, STDERR_FILENO);
            if (fd > STDERR_FILENO) ::close(fd);
        }
        ::setenv("PNC_HEADLINE_OUT", headline_path.c_str(), 1);
        if (!profile_path.empty()) ::setenv("PNC_PROF_OUT", profile_path.c_str(), 1);
        if (smoke) ::setenv("PNC_SMOKE", "1", 1);
        ::execl(binary.c_str(), binary.c_str(), static_cast<char*>(nullptr));
        std::fprintf(stderr, "pnc-bench: cannot exec %s: %s\n", binary.c_str(),
                     std::strerror(errno));
        ::_exit(127);
    }
    struct rusage ru {};
    int status = 0;
    ::wait4(pid, &status, 0, &ru);
    ChildResult result;
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    result.peak_rss_kb = static_cast<double>(ru.ru_maxrss);  // Linux: kilobytes
    result.user_seconds = timeval_seconds(ru.ru_utime);
    result.sys_seconds = timeval_seconds(ru.ru_stime);
    if (WIFEXITED(status))
        result.exit_code = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        result.exit_code = 128 + WTERMSIG(status);
    else
        result.exit_code = 126;
    return result;
}

/// Read a bench's pnc-headline/1 side file into `bench.metrics`.
/// Returns "" on success, else the reason the headline was unusable.
std::string read_headline(const std::string& path, obs::BenchResult& bench) {
    std::ifstream is(path);
    if (!is) return "bench wrote no headline file";
    std::stringstream ss;
    ss << is.rdbuf();
    try {
        const auto doc = obs::json::Value::parse(ss.str());
        if (const std::string err = obs::validate_headline(doc); !err.empty())
            return "invalid headline: " + err;
        for (const auto& [name, value] : doc.find("metrics")->members())
            bench.metrics.emplace_back(name, value.as_number());
    } catch (const std::exception& e) {
        return std::string("unparseable headline: ") + e.what();
    }
    return "";
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    bool list = false;
    bool profile = false;
    std::string filter, out_path;
    std::string bench_dir = dirname_of(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "pnc-bench: %s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--smoke") smoke = true;
        else if (arg == "--full") smoke = false;
        else if (arg == "--filter") filter = value();
        else if (arg == "--list") list = true;
        else if (arg == "--out") out_path = value();
        else if (arg == "--bench-dir") bench_dir = value();
        else if (arg == "--profile") profile = true;
        else if (arg == "--help" || arg == "-h") usage(0);
        else {
            std::fprintf(stderr, "pnc-bench: unknown argument '%s'\n", arg.c_str());
            usage(2);
        }
    }

    std::vector<const BenchSpec*> selected;
    for (const auto& spec : kBenches)
        if (filter.empty() || std::string(spec.name).find(filter) != std::string::npos)
            selected.push_back(&spec);
    if (list) {
        for (const auto* spec : selected)
            std::printf("%-20s %s%s\n", spec->name, spec->binary,
                        spec->needs_surrogate ? "  (surrogate)" : "");
        return 0;
    }
    if (selected.empty()) {
        // A pattern that selects nothing is a bad invocation (usage-class
        // exit 2), not a failed run: writing an empty suite artifact would
        // let a typo'd CI filter pass silently.
        std::fprintf(stderr, "pnc-bench: --filter '%s' matches nothing\n", filter.c_str());
        return 2;
    }

    const std::string stamp = utc_stamp();
    const std::string art_dir = exp::artifact_dir();
    if (out_path.empty()) out_path = art_dir + "/BENCH_" + stamp + ".json";
    const std::string log_dir = art_dir + "/bench_logs";
    ::mkdir(log_dir.c_str(), 0755);

    // Pre-warm the surrogate cache in-process so the first surrogate-using
    // bench is not charged the one-off build cost (minutes at full scale).
    if (smoke) exp::apply_smoke_env_defaults();
    double prewarm_seconds = 0.0;
    for (const auto* spec : selected) {
        if (!spec->needs_surrogate) continue;
        std::printf("pnc-bench: pre-warming surrogate cache...\n");
        std::fflush(stdout);
        const auto t0 = std::chrono::steady_clock::now();
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
        prewarm_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        break;
    }

    obs::BenchSuite suite;
    struct utsname uts {};
    ::uname(&uts);
    const char* threads_env = std::getenv("PNC_NUM_THREADS");
    char buf[64];
    suite.meta.emplace_back("tool", "pnc-bench");
    suite.meta.emplace_back("tier", smoke ? "smoke" : "full");
    suite.meta.emplace_back("created_utc", stamp);
    suite.meta.emplace_back("git_sha", PNC_GIT_SHA);
    suite.meta.emplace_back("compiler", PNC_COMPILER);
    suite.meta.emplace_back("cxx_flags", PNC_CXX_FLAGS);
    suite.meta.emplace_back("threads", threads_env && *threads_env ? threads_env : "default");
    suite.meta.emplace_back("machine", std::string(uts.sysname) + " " + uts.machine);
    std::snprintf(buf, sizeof buf, "%.3f", prewarm_seconds);
    suite.meta.emplace_back("prewarm_seconds", buf);

    int failures = 0;
    std::printf("pnc-bench: %zu benches, %s tier\n%-20s %10s %12s %10s  %s\n",
                selected.size(), smoke ? "smoke" : "full", "bench", "exit",
                "wall (s)", "rss (MB)", "headline");
    for (const auto* spec : selected) {
        std::fflush(stdout);
        const std::string binary = bench_dir + "/" + spec->binary;
        const std::string log_path = log_dir + "/" + spec->name + ".log";
        const std::string headline_path = log_dir + "/" + spec->name + ".headline.json";
        const std::string profile_path =
            profile ? log_dir + "/" + spec->name + ".profile.json" : std::string();
        ::unlink(headline_path.c_str());
        if (!profile_path.empty()) ::unlink(profile_path.c_str());
        const ChildResult child =
            run_child(binary, log_path, headline_path, smoke, profile_path);

        obs::BenchResult bench;
        bench.name = spec->name;
        bench.exit_code = child.exit_code;
        bench.wall_seconds = child.wall_seconds;
        bench.peak_rss_kb = child.peak_rss_kb;
        bench.user_seconds = child.user_seconds;
        bench.sys_seconds = child.sys_seconds;
        std::string note;
        if (child.exit_code == 0)
            note = read_headline(headline_path, bench);
        else
            note = "failed, see " + log_path;
        if (child.exit_code != 0 || (note.empty() && bench.metrics.empty()))
            ++failures;  // a bench with zero headlines cannot be gated
        if (!note.empty() && child.exit_code == 0) ++failures;
        std::printf("%-20s %10d %12.2f %10.1f  %s\n", spec->name, bench.exit_code,
                    bench.wall_seconds, bench.peak_rss_kb / 1024.0,
                    note.empty() ? std::to_string(bench.metrics.size()).append(" metrics")
                                       .c_str()
                                 : note.c_str());
        suite.benches.push_back(std::move(bench));
    }

    const auto doc = obs::bench_suite_document(suite);
    if (const std::string err = obs::validate_bench_suite(doc); !err.empty()) {
        std::fprintf(stderr, "pnc-bench: artifact failed self-validation: %s\n",
                     err.c_str());
        return 1;
    }
    std::ofstream os(out_path);
    os << doc.dump() << "\n";
    if (!os) {
        std::fprintf(stderr, "pnc-bench: cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("pnc-bench: wrote %s (schema pnc-bench-suite/1, logs in %s)\n",
                out_path.c_str(), log_dir.c_str());
    if (failures) {
        std::fprintf(stderr, "pnc-bench: %d bench(es) failed or had no headline\n",
                     failures);
        return 1;
    }
    return 0;
}
