// Regenerates Fig. 4.
//
// Left: eta-extraction quality — simulated (Vin, Vout) points of one
// sampled circuit against the fitted tanh-like curve (the paper's green
// points / red curve), reported as per-sample fit RMSE over the dataset.
//
// Right: surrogate-model quality — true vs predicted normalized eta on the
// train / validation / test splits (the paper's scatter plot), reported as
// correlation and R^2 per split.
#include <cstdio>

#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "math/stats.hpp"
#include "surrogate/surrogate_model.hpp"

using namespace pnc;

namespace {

double fit_demo(circuit::NonlinearCircuitKind kind, const char* name) {
    const auto space = surrogate::DesignSpace::table1();
    math::SobolSequence sobol(surrogate::DesignSpace::kDimension);
    sobol.skip(33);
    // Pick the first sample with a healthy swing for the visual demo.
    circuit::Omega omega = space.sample_batch(sobol, 64).front();
    for (const auto& candidate : space.sample_batch(sobol, 64)) {
        if (circuit::simulate_characteristic(candidate, kind, 17).swing() > 0.4) {
            omega = candidate;
            break;
        }
    }
    const auto curve = circuit::simulate_characteristic(omega, kind, 17);
    const auto fit = fit::fit_ptanh(curve, kind);
    std::printf("FIG 4 left (%s): simulated points vs fitted ptanh\n", name);
    std::printf("%-6s %10s %10s\n", "Vin", "simulated", "fitted");
    for (std::size_t i = 0; i < curve.vin.size(); ++i)
        std::printf("%-6.2f %10.4f %10.4f\n", curve.vin[i], curve.vout[i],
                    fit::evaluate_characteristic(fit.eta, curve.vin[i], kind));
    std::printf("fitted eta = [%.4f %.4f %.4f %.4f], RMSE = %.5f\n\n", fit.eta.eta1,
                fit.eta.eta2, fit.eta.eta3, fit.eta.eta4, fit.rmse);
    return fit.rmse;
}

void surrogate_scatter(circuit::NonlinearCircuitKind kind, const char* name,
                       const char* key, exp::BenchRun& run) {
    // Rebuild a dataset at bench scale and retrain a surrogate while keeping
    // the train/val/test partition visible (the cached artifact hides it).
    const int samples = exp::env_int("PNC_FIG4_SAMPLES", run.smoke() ? 250 : 2000);
    surrogate::DatasetBuildOptions build;
    build.samples = static_cast<std::size_t>(samples);
    build.sweep_points = 32;
    const auto dataset =
        surrogate::build_surrogate_dataset(kind, surrogate::DesignSpace::table1(), build);

    double rmse_sum = 0.0;
    for (double r : dataset.fit_rmse) rmse_sum += r;
    const double mean_rmse = rmse_sum / static_cast<double>(dataset.size());
    std::printf("FIG 4 left (%s) aggregate: mean fit RMSE over %zu sampled circuits = %.5f\n",
                name, dataset.size(), mean_rmse);
    run.headline(std::string("fit.") + key + ".rmse", mean_rmse);

    surrogate::SurrogateTrainOptions train;
    train.mlp.max_epochs = exp::env_int("PNC_FIG4_EPOCHS", run.smoke() ? 400 : 2500);
    train.mlp.patience = 400;
    surrogate::SurrogateMetrics metrics;
    const auto model = surrogate::SurrogateModel::train(dataset, train, &metrics);

    // Reconstruct the splits exactly as SurrogateModel::train does (same
    // seed / shuffle) to report per-split true-vs-predicted agreement.
    const auto extended = surrogate::extend_features(dataset.omega);
    const auto x = model.omega_normalizer().normalize(extended);
    const auto y = model.eta_normalizer().normalize(dataset.eta);
    math::Rng rng(train.seed);
    auto idx = math::iota_indices(dataset.size());
    rng.shuffle(idx);
    const auto n_train = static_cast<std::size_t>(0.7 * static_cast<double>(dataset.size()));
    const auto n_val = static_cast<std::size_t>(0.2 * static_cast<double>(dataset.size()));

    std::printf("FIG 4 right (%s): true vs predicted normalized eta\n", name);
    std::printf("%-12s %8s %10s %10s\n", "split", "points", "pearson_r", "R^2");
    const auto report = [&](const char* split, std::size_t begin, std::size_t end) {
        std::vector<double> truth, prediction;
        for (std::size_t r = begin; r < end; ++r) {
            math::Matrix row(1, x.cols());
            for (std::size_t c = 0; c < x.cols(); ++c) row(0, c) = x(idx[r], c);
            const auto pred = model.mlp().predict(row);
            for (std::size_t c = 0; c < pred.cols(); ++c) {
                truth.push_back(y(idx[r], c));
                prediction.push_back(pred(0, c));
            }
        }
        const double r2 = math::r_squared(truth, prediction);
        std::printf("%-12s %8zu %10.4f %10.4f\n", split, (end - begin),
                    math::pearson_correlation(truth, prediction), r2);
        return r2;
    };
    report("train", 0, n_train);
    report("validation", n_train, n_train + n_val);
    const double test_r2 = report("test", n_train + n_val, dataset.size());
    run.headline(std::string("surrogate.") + key + ".test_r2", test_r2);
    std::printf("surrogate training: %d epochs, val MSE %.5f, test MSE %.5f\n\n",
                metrics.epochs_run, metrics.validation_mse, metrics.test_mse);
}

}  // namespace

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_fig4", argc, argv);
    run.headline("fit.ptanh.demo_rmse",
                 fit_demo(circuit::NonlinearCircuitKind::kPtanh, "ptanh"));
    run.headline("fit.neg.demo_rmse",
                 fit_demo(circuit::NonlinearCircuitKind::kNegativeWeight, "negative weight"));
    surrogate_scatter(circuit::NonlinearCircuitKind::kPtanh, "ptanh", "ptanh", run);
    surrogate_scatter(circuit::NonlinearCircuitKind::kNegativeWeight, "negative weight",
                      "neg", run);
    return run.finish();
}
