// Microbenchmarks of the analog substrate: DC operating point, full
// characteristic sweep, crossbar evaluation and eta extraction. These are
// the inner loops of the surrogate dataset build (10 000 simulate+fit
// iterations in the paper's pipeline).
#include <benchmark/benchmark.h>

#include "circuit/crossbar.hpp"
#include "circuit/nonlinear_circuit.hpp"
#include "fit/ptanh_fit.hpp"
#include "micro_support.hpp"

using namespace pnc;

namespace {

void BM_DcOperatingPoint(benchmark::State& state) {
    auto net = circuit::build_nonlinear_circuit(
        circuit::default_omega(circuit::NonlinearCircuitKind::kPtanh),
        circuit::NonlinearCircuitKind::kPtanh);
    net.set_source_voltage(net.find_node("in"), 0.5);
    const circuit::DcSolver solver;
    for (auto _ : state) benchmark::DoNotOptimize(solver.solve(net));
}
BENCHMARK(BM_DcOperatingPoint);

void BM_CharacteristicSweep(benchmark::State& state) {
    const auto omega = circuit::default_omega(circuit::NonlinearCircuitKind::kPtanh);
    const auto points = static_cast<std::size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(circuit::simulate_characteristic(
            omega, circuit::NonlinearCircuitKind::kPtanh, points));
    state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(points));
}
BENCHMARK(BM_CharacteristicSweep)->Arg(16)->Arg(48);

void BM_CrossbarClosedForm(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    circuit::CrossbarColumn column;
    column.bias_conductance = 1e-6;
    column.drain_conductance = 2e-6;
    std::vector<double> inputs(n);
    for (std::size_t i = 0; i < n; ++i) {
        column.input_conductances.push_back(1e-6 * static_cast<double>(i % 7 + 1));
        inputs[i] = 0.1 * static_cast<double>(i % 10);
    }
    for (auto _ : state) benchmark::DoNotOptimize(column.output(inputs));
}
BENCHMARK(BM_CrossbarClosedForm)->Arg(4)->Arg(16)->Arg(64);

void BM_PtanhFit(benchmark::State& state) {
    const auto curve = circuit::simulate_characteristic(
        circuit::default_omega(circuit::NonlinearCircuitKind::kPtanh),
        circuit::NonlinearCircuitKind::kPtanh, 48);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            fit::fit_ptanh(curve, circuit::NonlinearCircuitKind::kPtanh));
}
BENCHMARK(BM_PtanhFit);

void BM_SimulateAndFit(benchmark::State& state) {
    // One full sample of the surrogate dataset pipeline.
    const auto omega = circuit::default_omega(circuit::NonlinearCircuitKind::kNegativeWeight);
    for (auto _ : state) {
        const auto curve = circuit::simulate_characteristic(
            omega, circuit::NonlinearCircuitKind::kNegativeWeight, 48);
        benchmark::DoNotOptimize(
            fit::fit_ptanh(curve, circuit::NonlinearCircuitKind::kNegativeWeight));
    }
}
BENCHMARK(BM_SimulateAndFit);

}  // namespace

int main(int argc, char** argv) {
    return pnc::bench::run_micro_benchmarks("bench_micro_circuit", argc, argv);
}
