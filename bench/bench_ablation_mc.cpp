// Ablation of the Monte-Carlo approximation (Sec. III-C): how many epsilon
// samples per epoch (N_train) does variation-aware training need? The paper
// fixes N_train = 20; this sweep shows the accuracy/robustness saturation
// and the wall-clock cost per choice.
#include <chrono>
#include <cstdio>
#include <vector>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "pnn/training.hpp"

using namespace pnc;

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_ablation_mc", argc, argv);
    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto split = data::split_and_normalize(data::make_dataset("iris"), 17);
    const auto space = surrogate::DesignSpace::table1();

    std::printf("ABLATION: Monte-Carlo samples per epoch (N_train) in variation-aware "
                "training, 10%% variation, iris\n\n");
    std::printf("%8s  %18s  %12s  %10s\n", "N_train", "test acc (mean+-std)", "train time",
                "epochs");

    std::vector<int> sweep = {1, 2, 5, 10, 20};
    if (run.smoke()) sweep = {1, 5};
    for (int n_mc : sweep) {
        math::Rng rng(4);
        pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                     &act, &neg, space, rng);
        pnn::TrainOptions options;
        options.epsilon = 0.10;
        options.n_mc_train = n_mc;
        options.learnable_nonlinear = true;
        options.max_epochs = exp::env_int("PNC_EPOCHS", 600);
        options.patience = exp::env_int("PNC_PATIENCE", 150);
        options.seed = 4;
        const auto start = std::chrono::steady_clock::now();
        const auto trained = pnn::train_pnn(net, split, options);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

        pnn::EvalOptions eval;
        eval.epsilon = 0.10;
        eval.n_mc = run.smoke() ? 20 : 100;
        const auto result = pnn::evaluate_pnn(net, split.x_test, split.y_test, eval);
        std::printf("%8d  %9.3f +- %.3f  %10.1fs  %10d\n", n_mc, result.mean_accuracy,
                    result.std_accuracy, seconds, trained.epochs_run);
        const std::string prefix = "nmc" + std::to_string(n_mc);
        run.headline("accuracy." + prefix + ".mean", result.mean_accuracy);
        run.headline("train." + prefix + ".seconds", seconds);
    }
    std::printf("\n(the paper's N_train = 20 sits on the flat part of this curve;\n"
                " small N already buys most of the robustness)\n");
    return run.finish();
}
