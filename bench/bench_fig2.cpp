// Regenerates Fig. 2: characteristic curves of the ptanh circuit (left) and
// the negative-weight circuit (right) for several physical parameter
// vectors omega, plus an echo of the Table I design space the samples are
// drawn from.
#include <cstdio>

#include "circuit/nonlinear_circuit.hpp"
#include "exp/bench_support.hpp"
#include "surrogate/design_space.hpp"

using namespace pnc;

namespace {

void print_design_space(const surrogate::DesignSpace& space) {
    static const char* names[] = {"R1 (Ohm)", "R2 (Ohm)", "R3 (Ohm)", "R4 (Ohm)",
                                  "R5 (Ohm)", "W (um)",   "L (um)"};
    std::printf("TABLE I: feasible design space of the nonlinear circuit\n");
    std::printf("%-10s %12s %12s\n", "param", "minimal", "maximal");
    for (std::size_t i = 0; i < surrogate::DesignSpace::kDimension; ++i)
        std::printf("%-10s %12.0f %12.0f\n", names[i], space.min(i), space.max(i));
    std::printf("inequalities: R1 > R2, R3 > R4\n\n");
}

void print_family(circuit::NonlinearCircuitKind kind, const char* title,
                  const std::vector<circuit::Omega>& omegas) {
    std::printf("FIG 2 (%s): Vout vs Vin for %zu parameterizations\n", title, omegas.size());
    std::printf("%-6s", "Vin");
    for (std::size_t c = 0; c < omegas.size(); ++c) std::printf("  curve%zu ", c + 1);
    std::printf("\n");
    std::vector<circuit::CharacteristicCurve> curves;
    for (const auto& omega : omegas)
        curves.push_back(circuit::simulate_characteristic(omega, kind, 21));
    for (std::size_t i = 0; i < curves.front().vin.size(); ++i) {
        std::printf("%-6.2f", curves.front().vin[i]);
        for (const auto& curve : curves) std::printf("  %7.4f", curve.vout[i]);
        std::printf("\n");
    }
    std::printf("omegas [R1 R2 R3 R4 R5 W L]:\n");
    for (std::size_t c = 0; c < omegas.size(); ++c) {
        const auto a = omegas[c].to_array();
        std::printf("  curve%zu: [%.0f %.0f %.0f %.0f %.0f %.0f %.0f]\n", c + 1, a[0], a[1],
                    a[2], a[3], a[4], a[5], a[6]);
    }
    std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_fig2", argc, argv);
    const auto space = surrogate::DesignSpace::table1();
    print_design_space(space);

    // A spread of designs: the learnable-circuit defaults plus Sobol samples
    // filtered to visibly distinct curves (mirroring the paper's legend of
    // several omega settings).
    math::SobolSequence sobol(surrogate::DesignSpace::kDimension);
    sobol.skip(17);
    std::vector<circuit::Omega> ptanh_family = {
        circuit::default_omega(circuit::NonlinearCircuitKind::kPtanh)};
    std::vector<circuit::Omega> neg_family = {
        circuit::default_omega(circuit::NonlinearCircuitKind::kNegativeWeight)};
    const int budget = run.smoke() ? 16 : 64;
    for (const auto& omega : space.sample_batch(sobol, budget)) {
        const auto curve =
            circuit::simulate_characteristic(omega, circuit::NonlinearCircuitKind::kPtanh, 21);
        if (curve.swing() > 0.4 && ptanh_family.size() < 5) ptanh_family.push_back(omega);
        const auto neg_curve = circuit::simulate_characteristic(
            omega, circuit::NonlinearCircuitKind::kNegativeWeight, 21);
        if (neg_curve.swing() > 0.3 && neg_family.size() < 5) neg_family.push_back(omega);
        if (ptanh_family.size() >= 5 && neg_family.size() >= 5) break;
    }

    print_family(circuit::NonlinearCircuitKind::kPtanh, "left: ptanh circuit", ptanh_family);
    print_family(circuit::NonlinearCircuitKind::kNegativeWeight,
                 "right: negative weight circuit", neg_family);

    // Headlines: output swing of the default designs — a deterministic probe
    // of the DC solver + netlist (drift here means the circuit model moved).
    const auto ptanh_curve = circuit::simulate_characteristic(
        circuit::default_omega(circuit::NonlinearCircuitKind::kPtanh),
        circuit::NonlinearCircuitKind::kPtanh, 21);
    const auto neg_curve = circuit::simulate_characteristic(
        circuit::default_omega(circuit::NonlinearCircuitKind::kNegativeWeight),
        circuit::NonlinearCircuitKind::kNegativeWeight, 21);
    run.headline("swing.ptanh_default", ptanh_curve.swing());
    run.headline("swing.neg_default", neg_curve.swing());
    run.headline("family.ptanh_curves", static_cast<double>(ptanh_family.size()));
    run.headline("family.neg_curves", static_cast<double>(neg_family.size()));
    return run.finish();
}
