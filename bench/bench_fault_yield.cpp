// Yield under discrete defects (extension beyond the paper's Sec. IV):
// for each dataset, train one variation-aware design, then Monte-Carlo a
// fault campaign per defect class — stuck-open / stuck-short resistors,
// dead nonlinear circuits, the mixed model — on top of 10% printing
// variation. Writes the machine-readable pnc-fault-report/1 document to
// $PNC_ARTIFACTS/fault_yield_report.json next to the human-readable table.
//
// Knobs: PNC_EPOCHS, PNC_MC_TEST (campaign copies), PNC_FAULT_RATE,
// PNC_YIELD_SPEC, PNC_FAULT_DATASETS (comma list).
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "autodiff/ops.hpp"
#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "faults/fault_report.hpp"
#include "pnn/robustness.hpp"
#include "pnn/training.hpp"

using namespace pnc;

namespace {

std::vector<std::string> parse_list(const std::string& spec) {
    std::vector<std::string> out;
    std::stringstream ss(spec);
    std::string cell;
    while (std::getline(ss, cell, ','))
        if (!cell.empty()) out.push_back(cell);
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_fault_yield", argc, argv);
    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto space = surrogate::DesignSpace::table1();

    const double eps = 0.10;
    const double spec = exp::env_double("PNC_YIELD_SPEC", 0.80);
    const double rate = exp::env_double("PNC_FAULT_RATE", 0.01);
    const int n_mc = exp::env_int("PNC_MC_TEST", 200);
    const auto datasets =
        parse_list(exp::env_string("PNC_FAULT_DATASETS", "iris,seeds,balance_scale"));
    const char* model_names[] = {"stuck_open", "stuck_short", "dead_nonlinear", "mixed"};

    std::printf("FAULT YIELD at %.0f%% variation + defect rate %.4g, spec: accuracy >= %.2f\n",
                eps * 100, rate, spec);
    std::printf("campaign: %d defective copies per (dataset, fault model) cell\n\n", n_mc);
    std::printf("%-14s %-14s %8s %8s %8s %8s %8s %10s\n", "dataset", "fault model", "base",
                "yield", "mean", "p5", "worst", "defects");

    faults::FaultReport report;
    report.tool = "bench_fault_yield";

    for (const auto& name : datasets) {
        const auto split = data::split_and_normalize(data::make_dataset(name), 29);
        math::Rng rng(23);
        pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                     &act, &neg, space, rng);
        pnn::TrainOptions options;
        options.learnable_nonlinear = true;
        options.epsilon = eps;
        options.n_mc_train = 8;
        options.max_epochs = exp::env_int("PNC_EPOCHS", 800);
        options.patience = exp::env_int("PNC_PATIENCE", 200);
        options.seed = 23;
        pnn::train_pnn(net, split, options);
        const double baseline = ad::accuracy(net.predict(split.x_test), split.y_test);

        const pnn::PnnOptions& pnn_opts = net.layer(0).options();
        const faults::FaultDomain domain{pnn_opts.g_max, pnn_opts.bias_voltage};
        for (const char* model_name : model_names) {
            const auto model = faults::make_fault_model(model_name, rate, domain);
            const auto result = pnn::estimate_yield_under_faults(
                net, split.x_test, split.y_test, spec, eps, *model, n_mc);
            std::printf("%-14s %-14s %8.3f %7.1f%% %8.3f %8.3f %8.3f %10.2f\n",
                        name.c_str(), model_name, baseline, result.yield.yield * 100.0,
                        result.mean_accuracy, result.yield.p5_accuracy,
                        result.yield.worst_accuracy, result.mean_fault_count);

            faults::FaultReportEntry entry;
            entry.dataset = name;
            entry.model = model_name;
            entry.fault_rate = rate;
            entry.samples = n_mc;
            entry.accuracy_spec = spec;
            entry.baseline_accuracy = baseline;
            entry.yield = result.yield.yield;
            entry.mean_accuracy = result.mean_accuracy;
            entry.p5_accuracy = result.yield.p5_accuracy;
            entry.median_accuracy = result.yield.median_accuracy;
            entry.worst_accuracy = result.yield.worst_accuracy;
            entry.mean_fault_count = result.mean_fault_count;
            report.campaigns.push_back(entry);
        }
    }

    const std::string out = exp::artifact_dir() + "/fault_yield_report.json";
    faults::write_fault_report(out, report);
    const std::string violation =
        faults::validate_fault_report(faults::fault_report_document(report));
    if (!violation.empty()) {
        std::fprintf(stderr, "fault report failed validation: %s\n", violation.c_str());
        return 1;
    }
    std::printf("\nreport written to %s (schema pnc-fault-report/1)\n", out.c_str());

    double yield_sum = 0.0, worst_yield = 1.0;
    for (const auto& entry : report.campaigns) {
        yield_sum += entry.yield;
        worst_yield = std::min(worst_yield, entry.yield);
    }
    if (!report.campaigns.empty()) {
        run.headline("yield.mean", yield_sum / static_cast<double>(report.campaigns.size()));
        run.headline("yield.worst", worst_yield);
        run.headline("campaigns.count", static_cast<double>(report.campaigns.size()));
    }
    return run.finish();
}
