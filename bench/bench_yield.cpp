// Manufacturing-yield view of the Table III ablation (extension): for each
// of the four training setups, the fraction of printed copies that would
// meet an accuracy spec at 10% variation, plus distribution quantiles and
// a corner-analysis worst case. Mean +- std understates what a fab sees;
// yield is the decision metric.
#include <cstdio>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "pnn/robustness.hpp"

using namespace pnc;

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_yield", argc, argv);
    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), 29);
    const auto space = surrogate::DesignSpace::table1();
    const double eps = 0.10;
    const double spec = exp::env_double("PNC_YIELD_SPEC", 0.85);

    std::printf("YIELD at %.0f%% variation, spec: accuracy >= %.2f (seeds dataset)\n\n",
                eps * 100, spec);
    std::printf("%-34s %8s %8s %8s %8s %12s\n", "setup", "yield", "p5", "median", "worst",
                "corner-worst");

    struct Setup {
        const char* name;
        bool learnable;
        double train_eps;
    };
    const Setup setups[] = {
        {"baseline (fixed NL, nominal)", false, 0.0},
        {"variation-aware only", false, eps},
        {"learnable NL only", true, 0.0},
        {"learnable NL + variation-aware", true, eps},
    };

    for (const auto& setup : setups) {
        math::Rng rng(23);
        pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                     &act, &neg, space, rng);
        pnn::TrainOptions options;
        options.learnable_nonlinear = setup.learnable;
        options.epsilon = setup.train_eps;
        options.n_mc_train = setup.train_eps > 0 ? 8 : 1;
        options.max_epochs = exp::env_int("PNC_EPOCHS", 800);
        options.patience = exp::env_int("PNC_PATIENCE", 200);
        options.seed = 23;
        pnn::train_pnn(net, split, options);

        const auto result = pnn::estimate_yield(net, split.x_test, split.y_test, spec, eps,
                                                exp::env_int("PNC_MC_TEST", 200));
        const double corner =
            pnn::worst_corner_accuracy(net, split.x_test, split.y_test, eps, 48);
        std::printf("%-34s %7.1f%% %8.3f %8.3f %8.3f %12.3f\n", setup.name,
                    result.yield * 100.0, result.p5_accuracy, result.median_accuracy,
                    result.worst_accuracy, corner);
        if (&setup == &setups[0]) run.headline("yield.baseline", result.yield);
        if (&setup == &setups[3]) {
            run.headline("yield.full", result.yield);
            run.headline("yield.full.p5_accuracy", result.p5_accuracy);
            run.headline("yield.full.corner_accuracy", corner);
        }
    }
    return run.finish();
}
