// Serving-runtime throughput: the src/serve async pipeline (registry +
// micro-batcher) driving the Table II compiled plan under a multi-submitter
// storm, reporting end-to-end samples/sec and request-latency p50/p99.
// Before the storm, a deterministic replay probe checks every served
// prediction stays bitwise identical to the reference forward pass — the
// throughput numbers are only worth reporting if micro-batching cannot
// change a single bit. Results append to artifacts/serving.csv; headlines
// gate in CI via baselines/ci.json.
//
// Knobs: PNC_SERVE_REQUESTS (storm size; default 2e5, smoke 2e4),
// PNC_SERVE_SUBMITTERS (default 4), PNC_SERVE_BATCH (default 32).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "pnn/pnn.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/pipeline.hpp"
#include "serve/registry.hpp"

using namespace pnc;
using Clock = std::chrono::steady_clock;

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_serving", argc, argv);

    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), 17);

    // The paper's Table II topology, same seed as bench_inference so the
    // serving pipeline runs the exact plan the engine bench measures.
    math::Rng rng(5);
    pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                 &act, &neg, surrogate::DesignSpace::table1(), rng);

    std::vector<std::vector<double>> rows;
    for (std::size_t r = 0; r < split.x_test.rows(); ++r) {
        std::vector<double> row(split.x_test.cols());
        for (std::size_t c = 0; c < row.size(); ++c) row[c] = split.x_test(r, c);
        rows.push_back(std::move(row));
    }

    const auto total = static_cast<std::size_t>(
        exp::env_int("PNC_SERVE_REQUESTS", run.smoke() ? 20'000 : 200'000));
    const auto submitters = static_cast<std::size_t>(exp::env_int("PNC_SERVE_SUBMITTERS", 4));
    const auto max_batch = static_cast<std::size_t>(exp::env_int("PNC_SERVE_BATCH", 32));

    serve::ModelRegistry registry;
    registry.install("seeds", net);

    // Bit-identity probe: deterministic replay of the full test split, every
    // output double compared against the reference forward pass. Cheap, and
    // gates the whole bench — run.finish() cannot bless drifting bits.
    const math::Matrix reference = net.predict(split.x_test);
    bool bit_identical = true;
    {
        serve::ServeOptions probe;
        probe.max_batch = 7;  // deliberately misaligned with the row count
        probe.deterministic = true;
        serve::ServePipeline pipeline(registry, probe);
        std::vector<std::future<serve::Prediction>> futures;
        for (const auto& row : rows) futures.push_back(pipeline.submit_or_wait("seeds", row));
        pipeline.drain();
        for (std::size_t r = 0; r < futures.size(); ++r) {
            const auto prediction = futures[r].get();
            for (std::size_t c = 0; c < reference.cols(); ++c)
                bit_identical &= prediction.outputs[c] == reference(r, c);
        }
    }
    std::printf("replay probe vs reference forward pass (%zu rows, batch 7): %s\n",
                rows.size(), bit_identical ? "bit-identical" : "MISMATCH");

    // The storm: timed-mode pipeline, shed-first submission falling back to
    // the lossless path, latency histograms on (they are part of the serving
    // runtime being measured, not optional telemetry).
    obs::set_enabled(true);
    obs::MetricsRegistry::global().reset();

    serve::ServeOptions options;
    options.max_batch = max_batch;
    options.flush_deadline_ms = 0.5;
    options.queue_capacity = 1024;
    // Arm the rolling aggregators (no file output): the storm reports its
    // worst per-window p99, the live-dashboard view of tail latency.
    options.telemetry.collect = true;
    options.telemetry.window_seconds = 1.0;
    options.telemetry.live_stats_period_ms = 100.0;

    std::printf("self-load storm: %zu requests, %zu submitters, batch %zu, %zu threads\n",
                total, submitters, max_batch, runtime::global_thread_count());

    std::atomic<std::size_t> sheds{0};
    double window_p99_ms = 0.0;
    const auto start = Clock::now();
    {
        serve::ServePipeline pipeline(registry, options);
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < submitters; ++t) {
            threads.emplace_back([&, t] {
                std::vector<std::future<serve::Prediction>> futures;
                for (std::size_t i = t; i < total; i += submitters) {
                    try {
                        futures.push_back(pipeline.submit("seeds", rows[i % rows.size()]));
                    } catch (const serve::ServeError& e) {
                        if (e.code() != serve::ServeErrorCode::kQueueFull) throw;
                        sheds.fetch_add(1, std::memory_order_relaxed);
                        futures.push_back(
                            pipeline.submit_or_wait("seeds", rows[i % rows.size()]));
                    }
                }
                for (auto& f : futures) f.get();
            });
        }
        for (auto& thread : threads) thread.join();
        pipeline.drain();
        // Stop flushes the final telemetry window; the headline is the worst
        // rolling-window p99 the storm produced (tail latency as the live
        // dashboard would have seen it, not the whole-run aggregate).
        pipeline.stop();
        if (const serve::ServeTelemetry* telemetry = pipeline.telemetry())
            for (const serve::WindowStats& w : telemetry->window_history())
                if (w.samples > 0) window_p99_ms = std::max(window_p99_ms, w.p99_ms);
    }
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
    const double samples_per_sec = seconds > 0 ? static_cast<double>(total) / seconds : 0.0;

    double p50_ms = 0, p99_ms = 0, batches = 0;
    const auto snapshot = obs::MetricsRegistry::global().snapshot();
    for (const auto& h : snapshot.histograms)
        if (h.name == "serve.request.latency_seconds") {
            p50_ms = h.quantile(0.50) * 1e3;
            p99_ms = h.quantile(0.99) * 1e3;
        }
    for (const auto& [name, value] : snapshot.counters)
        if (name == "serve.batches_total") batches = static_cast<double>(value);
    const double mean_batch_rows = batches > 0 ? static_cast<double>(total) / batches : 0.0;

    std::printf("%12s %16s %12s %12s %14s %10s\n", "requests", "samples/s", "p50 ms",
                "p99 ms", "mean batch", "shed");
    std::printf("%12zu %16.1f %12.3f %12.3f %14.1f %10zu\n", total, samples_per_sec,
                p50_ms, p99_ms, mean_batch_rows, sheds.load());
    std::printf("worst rolling-window p99: %.3f ms (%.0fs windows)\n", window_p99_ms,
                options.telemetry.window_seconds);

    const std::string csv_path = exp::artifact_dir() + "/serving.csv";
    std::ofstream csv(csv_path);
    csv << "requests,submitters,max_batch,samples_per_sec,p50_ms,p99_ms,"
           "window_p99_ms,mean_batch_rows,sheds,bit_identical\n";
    csv << total << ',' << submitters << ',' << max_batch << ',' << samples_per_sec << ','
        << p50_ms << ',' << p99_ms << ',' << window_p99_ms << ',' << mean_batch_rows << ','
        << sheds.load() << ',' << (bit_identical ? 1 : 0) << '\n';
    std::printf("wrote %s\n", csv_path.c_str());

    // samples_per_sec gates as a throughput metric, the latency quantiles
    // carry the ".ms" timing suffix (warn-only on shared runners), and the
    // bit-identity probe gates hard via the accuracy prefix.
    run.headline("serve.samples_per_sec", samples_per_sec);
    run.headline("serve.request.p50.ms", p50_ms);
    run.headline("serve.request.p99.ms", p99_ms);
    run.headline("serve.window.p99_ms", window_p99_ms);
    run.headline("serve.batch.mean_rows", mean_batch_rows);
    run.headline("accuracy.serve.bit_identical", bit_identical ? 1.0 : 0.0);

    const int headline_rc = run.finish();
    return bit_identical ? headline_rc : 1;
}
