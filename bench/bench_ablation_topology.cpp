// Ablation of the pNN topology: the paper fixes #input-3-#output "as in
// [5]". This sweep varies the hidden width under the full method (learnable
// nonlinear circuit + variation-aware training) and reports accuracy,
// robustness and printed component count — the accuracy/area trade-off a
// designer would actually consult.
#include <cstdio>
#include <vector>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "pnn/netlist_export.hpp"
#include "pnn/training.hpp"

using namespace pnc;

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_ablation_topology", argc, argv);
    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), 19);
    const auto space = surrogate::DesignSpace::table1();

    std::printf("ABLATION: hidden-layer width (paper: 3), seeds dataset, learnable NL + "
                "variation-aware @10%%\n\n");
    std::printf("%8s  %20s  %12s\n", "hidden", "test acc (mean+-std)", "components");

    std::vector<std::size_t> widths = {2, 3, 4, 6, 8};
    if (run.smoke()) widths = {2, 3};
    for (std::size_t hidden : widths) {
        math::Rng rng(12);
        pnn::Pnn net({split.n_features(), hidden, static_cast<std::size_t>(split.n_classes)},
                     &act, &neg, space, rng);
        pnn::TrainOptions options;
        options.epsilon = 0.10;
        options.n_mc_train = 5;
        options.learnable_nonlinear = true;
        options.max_epochs = exp::env_int("PNC_EPOCHS", 600);
        options.patience = exp::env_int("PNC_PATIENCE", 150);
        options.seed = 12;
        pnn::train_pnn(net, split, options);

        pnn::EvalOptions eval;
        eval.epsilon = 0.10;
        eval.n_mc = run.smoke() ? 20 : 100;
        const auto result = pnn::evaluate_pnn(net, split.x_test, split.y_test, eval);
        const auto design = pnn::extract_design(net);
        std::printf("%8zu  %11.3f +- %.3f  %12zu\n", hidden, result.mean_accuracy,
                    result.std_accuracy, design.component_count());
        const std::string prefix = "hidden" + std::to_string(hidden);
        run.headline("accuracy." + prefix + ".mean", result.mean_accuracy);
        run.headline(prefix + ".components",
                     static_cast<double>(design.component_count()));
    }
    return run.finish();
}
