// Microbenchmarks of the learning substrate: surrogate MLP forward /
// backward and pNN training epochs (nominal and variation-aware) — the
// inner loops behind every Table II cell.
#include <benchmark/benchmark.h>

#include "data/registry.hpp"
#include "micro_support.hpp"
#include "obs/config.hpp"
#include "obs/health.hpp"
#include "pnn/training.hpp"
#include "surrogate/surrogate_model.hpp"

using namespace pnc;

namespace {

surrogate::SurrogateModel make_small_surrogate(circuit::NonlinearCircuitKind kind) {
    surrogate::DatasetBuildOptions build;
    build.samples = 300;
    build.sweep_points = 17;
    const auto dataset =
        surrogate::build_surrogate_dataset(kind, surrogate::DesignSpace::table1(), build);
    surrogate::SurrogateTrainOptions train;
    train.mlp.max_epochs = 200;
    train.mlp.patience = 50;
    return surrogate::SurrogateModel::train(dataset, train);
}

const surrogate::SurrogateModel& act_surrogate() {
    static const auto model = make_small_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    return model;
}
const surrogate::SurrogateModel& neg_surrogate() {
    static const auto model =
        make_small_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    return model;
}

void BM_MlpForward(benchmark::State& state) {
    math::Rng rng(3);
    const surrogate::Mlp mlp(surrogate::paper_surrogate_layers(), rng);
    const auto batch = static_cast<std::size_t>(state.range(0));
    const auto x = rng.uniform_matrix(batch, 10, 0.0, 1.0);
    for (auto _ : state) benchmark::DoNotOptimize(mlp.predict(x));
    state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(64)->Arg(1024);

void BM_MlpForwardBackward(benchmark::State& state) {
    math::Rng rng(3);
    surrogate::Mlp mlp(surrogate::paper_surrogate_layers(), rng);
    const auto batch = static_cast<std::size_t>(state.range(0));
    const auto x = ad::constant(rng.uniform_matrix(batch, 10, 0.0, 1.0));
    const auto y = rng.uniform_matrix(batch, 4, 0.0, 1.0);
    for (auto _ : state) {
        const auto loss = ad::mse(mlp.forward(x), y);
        ad::backward(loss);
        benchmark::DoNotOptimize(loss.scalar());
    }
}
BENCHMARK(BM_MlpForwardBackward)->Arg(64)->Arg(1024);

void BM_PnnEpoch(benchmark::State& state) {
    const bool variation_aware = state.range(0) != 0;
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), 5);
    const auto space = surrogate::DesignSpace::table1();
    math::Rng rng(11);
    pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                 &act_surrogate(), &neg_surrogate(), space, rng);
    ad::Adam optimizer({{net.theta_params(), 0.1}, {net.omega_params(), 0.005}});
    const circuit::VariationModel variation(variation_aware ? 0.1 : 0.0);
    const auto x = ad::constant(split.x_train);
    math::Rng noise(17);
    for (auto _ : state) {
        optimizer.zero_grad();
        ad::Var total;
        const int n_mc = variation_aware ? 5 : 1;
        for (int s = 0; s < n_mc; ++s) {
            pnn::NetworkVariation factors;
            const pnn::NetworkVariation* ptr = nullptr;
            if (variation_aware) {
                factors = net.sample_variation(variation, noise);
                ptr = &factors;
            }
            const auto loss = pnn::classification_loss(
                net.forward(x, ptr), split.y_train, pnn::LossKind::kMargin, 0.3);
            total = total.valid() ? ad::add(total, loss) : loss;
        }
        ad::backward(total);
        optimizer.step();
        benchmark::DoNotOptimize(total.scalar());
    }
}
BENCHMARK(BM_PnnEpoch)->Arg(0)->Arg(1);

// Cost of one health-monitor epoch record (series appends + counter-delta
// rates + watchdog rules) — the per-epoch overhead `pnc train --health-out`
// adds on top of an instrumented run.
void BM_HealthRecordEpoch(benchmark::State& state) {
    const bool was_enabled = obs::enabled();
    obs::set_enabled(true);
    obs::HealthMonitor monitor(obs::HealthConfig{},
                               {{"tool", "bench_micro_training"}});
    int epoch = 0;
    for (auto _ : state) {
        obs::EpochHealth snapshot;
        snapshot.epoch = epoch;
        snapshot.train_loss = 0.3 + 0.001 * (epoch % 7);
        snapshot.val_loss = 0.35 + 0.001 * (epoch % 5);
        snapshot.grad_norm_theta = 0.5;
        snapshot.grad_norm_omega = 0.1;
        snapshot.grad_norm_global = 0.51;
        monitor.record_epoch(snapshot);
        ++epoch;
    }
    obs::set_enabled(was_enabled);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HealthRecordEpoch);

}  // namespace

int main(int argc, char** argv) {
    return pnc::bench::run_micro_benchmarks("bench_micro_training", argc, argv);
}
