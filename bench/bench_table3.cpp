// Regenerates Table III: the ablation summary (averages over all datasets
// of the 2 x 2 setups). Reuses the result cache written by bench_table2
// when present; otherwise runs the experiment grid itself.
#include <filesystem>
#include <iostream>
#include <string>

#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "exp/experiment.hpp"
#include "obs/report.hpp"

using namespace pnc;

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_table3", argc, argv);
    // Telemetry is opt-in (PNC_OBS=1) so timings stay instrumentation-free.
    const bool observed = exp::env_int("PNC_OBS", 0) != 0;
    obs::set_enabled(observed);

    const std::string cache = exp::artifact_dir() + "/table_results.txt";
    const bool from_cache = std::filesystem::exists(cache);
    exp::TableResults results;
    if (from_cache) {
        std::cout << "(using experiment results cached by bench_table2: " << cache << ")\n\n";
        results = exp::TableResults::load_file(cache);
    } else {
        const auto config = exp::ExperimentConfig::from_env();
        const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
        const auto neg =
            exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
        results = exp::ExperimentRunner(&act, &neg, config).run_all();
        results.save_file(cache);
    }

    exp::print_table3(std::cout, results);

    // The paper's headline numbers, derived the same way it derives them.
    const auto& base = results.average[0][0];
    const auto& full = results.average[1][1];
    for (int e = 0; e < 2; ++e) {
        const double acc_gain = (full[e].mean - base[e].mean) / base[e].mean * 100.0;
        const double robustness_gain =
            base[e].stddev > 0.0 ? (base[e].stddev - full[e].stddev) / base[e].stddev * 100.0
                                 : 0.0;
        std::cout << "\nAt " << (e == 0 ? 5 : 10) << "% variation: accuracy improved by "
                  << acc_gain << "% and robustness (std reduction) by " << robustness_gain
                  << "% vs the baseline (paper: " << (e == 0 ? "19% / 73%" : "26% / 75%")
                  << ")\n";
        const std::string eps = e == 0 ? "eps5" : "eps10";
        // "gain" names avoid the accuracy classifier on purpose: percent-scale
        // deltas are too noisy for the absolute accuracy gate.
        run.headline("gain." + eps + ".acc_pct", acc_gain);
        run.headline("gain." + eps + ".robust_pct", robustness_gain);
        run.headline("accuracy.full." + eps + ".mean", full[e].mean);
    }
    if (observed) {
        obs::RunMeta meta;
        meta.tool = "bench_table3";
        meta.command = "table3";
        meta.extra.emplace_back("from_cache", from_cache ? "true" : "false");
        const std::string report = exp::artifact_dir() + "/table3_report.json";
        const std::string trace = exp::artifact_dir() + "/table3_trace.json";
        obs::write_run_report(report, meta);
        obs::write_trace_json(trace);
        std::cout << "\ntelemetry: " << report << " + " << trace << "\n";
    } else {
        std::cout << "\n(set PNC_OBS=1 to capture a telemetry run report)\n";
    }
    return run.finish();
}
