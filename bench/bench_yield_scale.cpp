// Million-sample yield-campaign throughput: the src/yield engine driving
// the compiled inference plan through a statistical-mode Monte-Carlo
// campaign at certification scale, reporting samples/sec and the reached
// confidence interval. Before the scale run, a fixed-N probe checks the
// campaign engine stays bit-identical to pnn::estimate_yield — the scale
// numbers are only worth reporting if the bit-identity contract holds.
// Results append to artifacts/yield_scale.csv; headlines gate in CI via
// baselines/ci.json.
//
// Knobs: PNC_YIELD_SAMPLES (campaign budget; default 1e6, smoke 1e4),
// PNC_YIELD_CI_WIDTH (early-stop target; default 0 = run the full budget),
// PNC_YIELD_SPEC (accuracy spec; default 0.4 so the untrained Table II
// topology lands mid-range and the CI has something to resolve).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "infer/engine.hpp"
#include "pnn/robustness.hpp"
#include "runtime/thread_pool.hpp"
#include "yield/campaign.hpp"

using namespace pnc;
using Clock = std::chrono::steady_clock;

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_yield_scale", argc, argv);

    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), 17);

    // The paper's Table II topology, same seed as bench_inference so the two
    // benches exercise the same compiled plan.
    math::Rng rng(5);
    pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                 &act, &neg, surrogate::DesignSpace::table1(), rng);
    const infer::CompiledPnn engine(net);

    const double spec = exp::env_double("PNC_YIELD_SPEC", 0.4);
    const std::uint64_t budget = static_cast<std::uint64_t>(
        exp::env_int("PNC_YIELD_SAMPLES", run.smoke() ? 10'000 : 1'000'000));
    const double ci_width = exp::env_double("PNC_YIELD_CI_WIDTH", 0.0);

    // Bit-identity probe: fixed-N campaign vs the reference estimator at the
    // reference's scale. Cheap, and gates the whole bench.
    yield::YieldCampaignOptions probe;
    probe.mode = yield::CampaignMode::kFixed;
    probe.accuracy_spec = spec;
    probe.epsilon = 0.10;
    probe.n_samples = 200;
    const auto fixed =
        yield::run_yield_campaign(engine, split.x_test, split.y_test, probe);
    const auto reference = pnn::estimate_yield(net, split.x_test, split.y_test, spec,
                                               probe.epsilon, 200, probe.seed);
    const bool bit_identical =
        fixed.estimate.yield == reference.yield &&
        fixed.estimate.n_passing == static_cast<std::uint64_t>(reference.n_passing) &&
        fixed.estimate.worst_accuracy == reference.worst_accuracy &&
        fixed.estimate.p5_accuracy == reference.p5_accuracy &&
        fixed.estimate.median_accuracy == reference.median_accuracy;
    std::printf("fixed-N probe vs pnn::estimate_yield (200 samples): %s\n",
                bit_identical ? "bit-identical" : "MISMATCH");

    // The scale run: statistical mode at certification scale.
    yield::YieldCampaignOptions options;
    options.mode = yield::CampaignMode::kStatistical;
    options.accuracy_spec = spec;
    options.epsilon = 0.10;
    options.n_samples = budget;
    options.ci_width = ci_width;
    std::printf("statistical campaign: budget %llu samples, %zu test rows, %zu threads\n",
                static_cast<unsigned long long>(budget), split.x_test.rows(),
                runtime::global_thread_count());

    const auto start = Clock::now();
    const auto result =
        yield::run_yield_campaign(engine, split.x_test, split.y_test, options);
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
    const auto& est = result.estimate;
    const double samples_per_sec = static_cast<double>(est.n_samples) / seconds;

    std::printf("yield %.6f @ spec %.2f, %.0f%% CI [%.6f, %.6f] width %.2e\n", est.yield,
                spec, est.confidence * 100, est.ci_lo, est.ci_hi, est.ci_width());
    std::printf("%llu samples in %.2f s (%zu rounds): %.0f samples/s\n",
                static_cast<unsigned long long>(est.n_samples), seconds, est.rounds_used,
                samples_per_sec);

    const std::string csv_path = exp::artifact_dir() + "/yield_scale.csv";
    std::ofstream csv(csv_path);
    csv << "samples,seconds,samples_per_sec,yield,ci_lo,ci_hi,ci_width\n";
    csv << est.n_samples << ',' << seconds << ',' << samples_per_sec << ',' << est.yield
        << ',' << est.ci_lo << ',' << est.ci_hi << ',' << est.ci_width() << '\n';
    std::printf("wrote %s\n", csv_path.c_str());

    run.headline("yield_scale.samples_per_sec", samples_per_sec);
    run.headline("yield_scale.samples", static_cast<double>(est.n_samples));
    run.headline("yield_scale.ci_width", est.ci_width());
    run.headline("accuracy.yield_scale.estimate", est.yield);
    const int headline_rc = run.finish();
    return bit_identical ? headline_rc : 1;
}
