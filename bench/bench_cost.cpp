// Hardware cost of the designed circuits (extension: the PE constraints the
// paper's introduction motivates — low device count, high latency — made
// quantitative). For a few benchmark tasks, train the full method and
// report printed component count, static power and critical-path latency
// of the resulting bespoke design.
#include <cstdio>

#include <vector>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "pnn/cost_analysis.hpp"
#include "pnn/training.hpp"

using namespace pnc;

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_cost", argc, argv);
    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto space = surrogate::DesignSpace::table1();

    std::printf("HARDWARE COST of bespoke designs (learnable NL + variation-aware @10%%)\n\n");
    std::printf("%-26s %10s %12s %12s %14s\n", "dataset", "topology", "components",
                "power (uW)", "latency (ms)");

    std::vector<const char*> datasets = {"iris", "seeds", "vertebral_2c",
                                         "tictactoe_endgame"};
    if (run.smoke()) datasets = {"iris", "seeds"};
    for (const char* name : datasets) {
        const auto split = data::split_and_normalize(data::make_dataset(name), 13);
        math::Rng rng(6);
        pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                     &act, &neg, space, rng);
        pnn::TrainOptions options;
        options.epsilon = 0.10;
        options.n_mc_train = 5;
        options.learnable_nonlinear = true;
        options.max_epochs = exp::env_int("PNC_EPOCHS", 600);
        options.patience = exp::env_int("PNC_PATIENCE", 150);
        options.seed = 6;
        pnn::train_pnn(net, split, options);

        const auto design = pnn::extract_design(net);
        pnn::CostAnalysisOptions cost_options;
        cost_options.transient.time_step = 20e-6;
        cost_options.transient.duration = 40e-3;
        const auto cost = pnn::analyze_design_cost(design, cost_options);

        char topology[32];
        std::snprintf(topology, sizeof topology, "%zu-3-%d", split.n_features(),
                      split.n_classes);
        std::printf("%-26s %10s %12zu %12.1f %14.2f\n", name, topology, cost.components,
                    cost.total_watts * 1e6, cost.latency_seconds * 1e3);
        const std::string prefix = std::string("cost.") + name;
        run.headline(prefix + ".components", static_cast<double>(cost.components));
        run.headline(prefix + ".watts", cost.total_watts);
        run.headline(prefix + ".latency_ms", cost.latency_seconds * 1e3);
    }
    std::printf("\n(dozens of printed components per classifier; power is dominated by the\n"
                " Ohm-range gate dividers of the nonlinear circuits, latency by the\n"
                " electrolyte gate capacitances — both direct consequences of Table I)\n");
    return run.finish();
}
