// Ablation (extension beyond the paper's body, following its ref. [5]):
// accuracy over the circuit lifetime for nominal, variation-aware and
// aging-aware training. Prints an accuracy-vs-age profile per setup —
// aging-aware training should hold its accuracy to end of life where the
// others decay.
#include <cstdio>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "pnn/aging.hpp"

using namespace pnc;

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_ablation_aging", argc, argv);
    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), 31);
    const auto space = surrogate::DesignSpace::table1();
    const std::vector<std::size_t> topology = {split.n_features(), 3,
                                               static_cast<std::size_t>(split.n_classes)};

    const pnn::AgingModel aging{.drift_per_decade = 0.08, .device_spread = 0.3};
    const double printing_eps = 0.05;
    const int epochs = exp::env_int("PNC_EPOCHS", 800);
    const int patience = exp::env_int("PNC_PATIENCE", 200);

    enum class Mode { kNominal, kVariationAware, kAgingAware };
    struct Setup {
        const char* name;
        Mode mode;
    };
    const Setup setups[] = {
        {"nominal training", Mode::kNominal},
        {"variation-aware training", Mode::kVariationAware},
        {"aging-aware training (ext.)", Mode::kAgingAware},
    };
    const double ages[] = {0.0, 10.0, 100.0, 1000.0, 10000.0};

    std::printf("ABLATION: accuracy over circuit lifetime (aging model: %.0f%%/decade "
                "drift, %.0f%% device spread, %.0f%% printing variation at test)\n\n",
                aging.drift_per_decade * 100, aging.device_spread * 100,
                printing_eps * 100);
    std::printf("%-30s", "setup \\ age (hours)");
    for (double age : ages) std::printf("  %7.0f       ", age);
    std::printf("\n");

    for (const auto& setup : setups) {
        math::Rng rng(8);
        pnn::Pnn net(topology, &act, &neg, space, rng);
        pnn::TrainOptions base;
        base.max_epochs = epochs;
        base.patience = patience;
        base.learnable_nonlinear = true;
        base.seed = 8;
        switch (setup.mode) {
            case Mode::kNominal:
                pnn::train_pnn(net, split, base);
                break;
            case Mode::kVariationAware:
                base.epsilon = printing_eps;
                base.n_mc_train = 8;
                pnn::train_pnn(net, split, base);
                break;
            case Mode::kAgingAware: {
                pnn::AgingTrainOptions options;
                base.epsilon = printing_eps;
                options.base = base;
                options.model = aging;
                options.n_mc_ages = 8;
                pnn::train_pnn_aging_aware(net, split, options);
                break;
            }
        }
        std::printf("%-30s", setup.name);
        for (double age : ages) {
            const auto result = pnn::evaluate_pnn_aged(net, split.x_test, split.y_test,
                                                       aging, age, printing_eps,
                                                       exp::env_int("PNC_MC_TEST", 60), 99);
            std::printf("  %.3f+-%.3f", result.mean_accuracy, result.std_accuracy);
            const bool end_of_life = age == ages[std::size(ages) - 1];
            if (end_of_life && setup.mode == Mode::kNominal)
                run.headline("accuracy.nominal.end_of_life", result.mean_accuracy);
            if (end_of_life && setup.mode == Mode::kAgingAware)
                run.headline("accuracy.aging_aware.end_of_life", result.mean_accuracy);
        }
        std::printf("\n");
    }
    return run.finish();
}
