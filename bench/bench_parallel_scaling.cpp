// Parallel Monte-Carlo scaling: wall-clock of the N_test=100 evaluation
// sweep and the yield sweep vs thread count on a 3-layer pNN, plus a
// bit-identity check across thread counts (the determinism contract of
// src/runtime/). Results are appended to artifacts/parallel_scaling.csv.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "obs/report.hpp"
#include "pnn/robustness.hpp"
#include "runtime/thread_pool.hpp"

using namespace pnc;
using Clock = std::chrono::steady_clock;

namespace {

double best_of_ms(int reps, const std::function<void()>& fn) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        fn();
        const std::chrono::duration<double, std::milli> elapsed = Clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_parallel_scaling", argc, argv);
    // Telemetry is opt-in (PNC_OBS=1): this bench exists to measure the MC
    // hot loops, and the per-sample clock reads would skew the timings.
    const bool observed = exp::env_int("PNC_OBS", 0) != 0;
    obs::set_enabled(observed);
    if (observed)
        std::printf("(PNC_OBS=1: timings below include telemetry overhead)\n");

    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), 17);
    const auto space = surrogate::DesignSpace::table1();

    // A 3-layer (two hidden) pNN: a heavier forward pass than the paper's
    // #in-3-#out topology, so per-sample work dominates the fan-out cost.
    math::Rng rng(5);
    pnn::Pnn net({split.n_features(), 6, 4, static_cast<std::size_t>(split.n_classes)},
                 &act, &neg, space, rng);

    pnn::EvalOptions eval;
    eval.epsilon = 0.10;
    eval.n_mc = exp::env_int("PNC_MC_TEST", 100);
    const int yield_mc = exp::env_int("PNC_MC_YIELD", 100);
    const int reps = exp::env_int("PNC_BENCH_REPS", 3);

    std::printf("parallel Monte-Carlo scaling (N_test=%d eval, %d-sample yield, "
                "hardware threads: %zu)\n\n",
                eval.n_mc, yield_mc, runtime::ThreadPool::default_thread_count());
    std::printf("%8s %12s %10s %12s %10s %14s\n", "threads", "eval ms", "speedup",
                "yield ms", "speedup", "mean acc");

    const std::string csv_path = exp::artifact_dir() + "/parallel_scaling.csv";
    std::ofstream csv(csv_path);
    csv << "threads,eval_ms,eval_speedup,yield_ms,yield_speedup,mean_accuracy\n";

    double eval_baseline_ms = 0.0, yield_baseline_ms = 0.0;
    double reference_mean = 0.0;
    bool bit_identical = true;
    std::vector<std::size_t> thread_sweep = {1, 2, 4, 8};
    if (run.smoke()) thread_sweep = {1, 2};
    for (std::size_t threads : thread_sweep) {
        runtime::set_global_threads(threads);

        pnn::EvalResult result;  // warmup + correctness probe
        result = pnn::evaluate_pnn(net, split.x_test, split.y_test, eval);
        if (threads == 1)
            reference_mean = result.mean_accuracy;
        else
            bit_identical &= result.mean_accuracy == reference_mean;

        const double eval_ms = best_of_ms(reps, [&] {
            result = pnn::evaluate_pnn(net, split.x_test, split.y_test, eval);
        });
        const double yield_ms = best_of_ms(reps, [&] {
            pnn::estimate_yield(net, split.x_test, split.y_test, 0.8, 0.10, yield_mc);
        });
        if (threads == 1) {
            eval_baseline_ms = eval_ms;
            yield_baseline_ms = yield_ms;
        }

        const double eval_speedup = eval_baseline_ms / eval_ms;
        const double yield_speedup = yield_baseline_ms / yield_ms;
        std::printf("%8zu %12.2f %9.2fx %12.2f %9.2fx %14.4f\n", threads, eval_ms,
                    eval_speedup, yield_ms, yield_speedup, result.mean_accuracy);
        csv << threads << ',' << eval_ms << ',' << eval_speedup << ',' << yield_ms << ','
            << yield_speedup << ',' << result.mean_accuracy << '\n';
        const std::string t = "t" + std::to_string(threads);
        run.headline("eval." + t + ".ms", eval_ms);
        run.headline("eval." + t + ".speedup", eval_speedup);
        if (threads == 1) run.headline("accuracy.eval.mean", result.mean_accuracy);
    }
    runtime::set_global_threads(runtime::ThreadPool::default_thread_count());

    std::printf("\nbit-identical across thread counts: %s\n", bit_identical ? "yes" : "NO");
    std::printf("wrote %s\n", csv_path.c_str());
    if (observed) {
        obs::RunMeta meta;
        meta.tool = "bench_parallel_scaling";
        meta.command = "parallel_scaling";
        meta.extra.emplace_back("n_mc_eval", std::to_string(eval.n_mc));
        meta.extra.emplace_back("n_mc_yield", std::to_string(yield_mc));
        meta.extra.emplace_back("bit_identical", bit_identical ? "true" : "false");
        const std::string report = exp::artifact_dir() + "/parallel_scaling_report.json";
        const std::string trace = exp::artifact_dir() + "/parallel_scaling_trace.json";
        obs::write_run_report(report, meta);
        obs::write_trace_json(trace);
        std::printf("telemetry: %s + %s\n", report.c_str(), trace.c_str());
    } else {
        std::printf("(set PNC_OBS=1 to capture a telemetry run report)\n");
    }
    const int headline_rc = run.finish();
    return bit_identical ? headline_rc : 1;
}
