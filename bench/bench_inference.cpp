// Compiled-engine throughput: the Table II evaluation workload (paper
// topology #in-3-#out, eps = 10% Monte-Carlo sweep) run through the
// autodiff reference path and the compiled inference engine, reporting
// samples/sec for both plus the speedup — and checking the two backends
// stay bit-identical while racing. Results append to
// artifacts/inference.csv; headlines gate in CI via baselines/ci.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "infer/backend.hpp"
#include "infer/engine.hpp"
#include "obs/report.hpp"
#include "pnn/robustness.hpp"
#include "pnn/training.hpp"
#include "prof/profiler.hpp"
#include "runtime/thread_pool.hpp"

using namespace pnc;
using Clock = std::chrono::steady_clock;

namespace {

double best_of_ms(int reps, const std::function<void()>& fn) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        fn();
        const std::chrono::duration<double, std::milli> elapsed = Clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i]) return false;
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_inference", argc, argv);
    // Telemetry off by default: this bench measures the MC hot loops and the
    // per-sample clock reads would skew the race. PNC_PROF_OUT (the driver's
    // --profile) keeps the gate on so the capture sees the spans.
    const bool profiled = !exp::env_string("PNC_PROF_OUT", "").empty();
    const bool observed = exp::env_int("PNC_OBS", 0) != 0 || profiled;
    obs::set_enabled(observed);
    if (observed)
        std::printf("(PNC_OBS=1: timings below include telemetry overhead)\n");

    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), 17);
    const auto space = surrogate::DesignSpace::table1();

    // The paper's Table II topology: #in - 3 - #classes.
    math::Rng rng(5);
    pnn::Pnn net({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                 &act, &neg, space, rng);
    const infer::CompiledPnn compiled(net);

    pnn::EvalOptions eval;
    eval.epsilon = 0.10;
    eval.n_mc = exp::env_int("PNC_MC_TEST", 100);
    const int yield_mc = exp::env_int("PNC_MC_YIELD", eval.n_mc);
    const int reps = exp::env_int("PNC_BENCH_REPS", 3);

    std::printf("compiled inference engine vs autodiff reference "
                "(N_test=%d eval, %d-sample yield, %zu rows, %zu threads)\n\n",
                eval.n_mc, yield_mc, split.x_test.rows(), runtime::global_thread_count());

    // Correctness probe before the race: the speedup headlines are only
    // worth reporting if both backends agree bit-for-bit.
    math::Matrix ref_out = net.predict(split.x_test);
    math::Matrix com_out = compiled.predict(split.x_test);
    bool batch_identical = ref_out.size() == com_out.size();
    for (std::size_t i = 0; batch_identical && i < ref_out.size(); ++i)
        batch_identical = ref_out[i] == com_out[i];

    // Stage 1 — the serving path: nominal batched classification. The
    // compiled plan answers from precompiled weight/eta tables; the
    // reference rebuilds the autodiff graph (surrogate MLP included) on
    // every call. This is where the engine earns its keep.
    const double ref_batch_ms = best_of_ms(reps, [&] { ref_out = net.predict(split.x_test); });
    const double com_batch_ms =
        best_of_ms(reps, [&] { com_out = compiled.predict(split.x_test); });

    // Stage 2/3 — the Monte-Carlo drivers, where per-sample perturbed eta
    // tables must be recomputed (tanh-bound on both backends).
    pnn::EvalResult ref_result = pnn::evaluate_pnn(net, split.x_test, split.y_test, eval);
    pnn::EvalResult com_result = compiled.evaluate(split.x_test, split.y_test, eval);
    bool bit_identical =
        bitwise_equal(ref_result.per_sample_accuracy, com_result.per_sample_accuracy);

    const double ref_eval_ms = best_of_ms(reps, [&] {
        ref_result = pnn::evaluate_pnn(net, split.x_test, split.y_test, eval);
    });
    const double com_eval_ms = best_of_ms(reps, [&] {
        com_result = compiled.evaluate(split.x_test, split.y_test, eval);
    });
    bit_identical &=
        bitwise_equal(ref_result.per_sample_accuracy, com_result.per_sample_accuracy);

    pnn::YieldResult ref_yield, com_yield;
    const double ref_yield_ms = best_of_ms(reps, [&] {
        ref_yield = pnn::estimate_yield(net, split.x_test, split.y_test, 0.8, 0.10, yield_mc);
    });
    const double com_yield_ms = best_of_ms(reps, [&] {
        com_yield = compiled.estimate_yield(split.x_test, split.y_test, 0.8, 0.10, yield_mc);
    });
    bit_identical &= ref_yield.yield == com_yield.yield &&
                     ref_yield.worst_accuracy == com_yield.worst_accuracy &&
                     ref_yield.median_accuracy == com_yield.median_accuracy;

    bit_identical &= batch_identical;

    const auto per_sec = [](double samples, double ms) { return samples / (ms / 1000.0); };
    const double rows = static_cast<double>(split.x_test.rows());
    const double ref_batch_ps = per_sec(rows, ref_batch_ms);
    const double com_batch_ps = per_sec(rows, com_batch_ms);
    const double ref_eval_ps = per_sec(eval.n_mc, ref_eval_ms);
    const double com_eval_ps = per_sec(eval.n_mc, com_eval_ms);
    const double ref_yield_ps = per_sec(yield_mc, ref_yield_ms);
    const double com_yield_ps = per_sec(yield_mc, com_yield_ms);
    const double batch_speedup = ref_batch_ms / com_batch_ms;
    const double eval_speedup = ref_eval_ms / com_eval_ms;
    const double yield_speedup = ref_yield_ms / com_yield_ms;

    std::printf("%12s %12s %16s %12s %16s %12s %16s\n", "backend", "batch ms", "rows/s",
                "eval ms", "eval samples/s", "yield ms", "yield samples/s");
    std::printf("%12s %12.3f %16.1f %12.2f %16.1f %12.2f %16.1f\n", "reference",
                ref_batch_ms, ref_batch_ps, ref_eval_ms, ref_eval_ps, ref_yield_ms,
                ref_yield_ps);
    std::printf("%12s %12.3f %16.1f %12.2f %16.1f %12.2f %16.1f\n", "compiled", com_batch_ms,
                com_batch_ps, com_eval_ms, com_eval_ps, com_yield_ms, com_yield_ps);
    std::printf("\nspeedup: batch %.2fx, eval %.2fx, yield %.2fx\n", batch_speedup,
                eval_speedup, yield_speedup);
    std::printf("bit-identical across backends: %s\n", bit_identical ? "yes" : "NO");

    const std::string csv_path = exp::artifact_dir() + "/inference.csv";
    std::ofstream csv(csv_path);
    csv << "backend,batch_ms,rows_per_sec,eval_ms,eval_samples_per_sec,"
           "yield_ms,yield_samples_per_sec\n";
    csv << "reference," << ref_batch_ms << ',' << ref_batch_ps << ',' << ref_eval_ms << ','
        << ref_eval_ps << ',' << ref_yield_ms << ',' << ref_yield_ps << '\n';
    csv << "compiled," << com_batch_ms << ',' << com_batch_ps << ',' << com_eval_ms << ','
        << com_eval_ps << ',' << com_yield_ms << ',' << com_yield_ps << '\n';
    std::printf("wrote %s\n", csv_path.c_str());

    // Profiler overhead probe — the headline bound for the sampling
    // profiler (docs/OBSERVABILITY.md "Profiling"): the compiled MC eval
    // with the profiler armed (obs gate + span stacks + 997 Hz sampler +
    // kernel counters) must cost at most 5% more wall-clock than the bare
    // run measured above. One re-measure absorbs a scheduler hiccup; when
    // the whole bench is already under an outer capture (PNC_PROF_OUT)
    // both sides run profiled and the probe degenerates to ~0 overhead.
    pnn::EvalResult prof_result;
    const auto measure_profiled = [&] {
        const bool obs_was = obs::enabled();
        obs::set_enabled(true);
        const bool owns = prof::Profiler::global().start();
        const double ms = best_of_ms(reps, [&] {
            prof_result = compiled.evaluate(split.x_test, split.y_test, eval);
        });
        if (owns) prof::Profiler::global().stop();
        obs::set_enabled(obs_was);
        return ms;
    };
    double prof_eval_ms = measure_profiled();
    double overhead_frac = prof_eval_ms / com_eval_ms - 1.0;
    if (overhead_frac > 0.05) {
        prof_eval_ms = measure_profiled();
        overhead_frac = std::min(overhead_frac, prof_eval_ms / com_eval_ms - 1.0);
    }
    bit_identical &=
        bitwise_equal(prof_result.per_sample_accuracy, com_result.per_sample_accuracy);
    std::printf("profiler overhead: %.2f%% (profiled eval %.2f ms vs %.2f ms) -> %s\n",
                overhead_frac * 100.0, prof_eval_ms, com_eval_ms,
                overhead_frac <= 0.05 ? "within the 5%% budget" : "OVER BUDGET");

    // The primary claim: serving-path throughput. The MC drivers improve
    // less — the per-sample perturbed eta recomputation (std::tanh, which
    // the bit-identity contract pins) is common cost both backends pay.
    run.headline("infer.batch.speedup", batch_speedup);
    run.headline("infer.batch.compiled.samples_per_sec", com_batch_ps);
    run.headline("infer.batch.reference.samples_per_sec", ref_batch_ps);
    run.headline("infer.eval.speedup", eval_speedup);
    run.headline("infer.eval.compiled.samples_per_sec", com_eval_ps);
    run.headline("infer.eval.reference.samples_per_sec", ref_eval_ps);
    run.headline("infer.yield.speedup", yield_speedup);
    run.headline("infer.yield.compiled.samples_per_sec", com_yield_ps);
    run.headline("accuracy.eval.mean", com_result.mean_accuracy);
    // prof.overhead_frac is informational (it jitters); the binary ok
    // metric gates as an accuracy-class headline (absolute tolerance 0).
    run.headline("prof.overhead_frac", overhead_frac);
    run.headline("accuracy.prof.overhead_ok", overhead_frac <= 0.05 ? 1.0 : 0.0);

    if (observed) {
        obs::RunMeta meta;
        meta.tool = "bench_inference";
        meta.command = "inference";
        meta.extra.emplace_back("n_mc_eval", std::to_string(eval.n_mc));
        meta.extra.emplace_back("n_mc_yield", std::to_string(yield_mc));
        meta.extra.emplace_back("bit_identical", bit_identical ? "true" : "false");
        const std::string report = exp::artifact_dir() + "/inference_report.json";
        obs::write_run_report(report, meta);
        std::printf("telemetry: %s\n", report.c_str());
    }
    const int headline_rc = run.finish();
    return bit_identical ? headline_rc : 1;
}
