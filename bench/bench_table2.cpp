// Regenerates Table II: per-dataset accuracy (mean +- std under printing
// variation) for the 2 x 2 grid {non-learnable, learnable nonlinear
// circuit} x {nominal, variation-aware training} at eps_test in {5%, 10%}.
//
// Defaults are scaled down for bench runtime; set PNC_FULL=1 for the paper
// protocol (10 seeds, patience 5000, N_train = 20) and see DESIGN.md for
// the full list of PNC_* knobs. Results are cached in the artifact
// directory for bench_table3.
#include <chrono>
#include <iostream>
#include <string>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "exp/bench_support.hpp"
#include "exp/experiment.hpp"
#include "obs/report.hpp"
#include "pnn/training.hpp"

using namespace pnc;

int main(int argc, char** argv) {
    auto run = exp::BenchRun::init("bench_table2", argc, argv);
    // Telemetry is opt-in (PNC_OBS=1): the per-sample clock reads would
    // otherwise sit inside the very loops whose wall-clock this bench
    // reports. The run report lands next to the result cache.
    const bool observed = exp::env_int("PNC_OBS", 0) != 0;
    obs::set_enabled(observed);
    if (observed)
        std::cout << "(PNC_OBS=1: timings below include telemetry overhead)\n";

    const auto config = exp::ExperimentConfig::from_env();
    std::cout << "Table II reproduction (" << config.seeds.size() << " seeds, max "
              << config.max_epochs << " epochs, patience " << config.patience
              << ", N_train=" << config.n_mc_train << ", N_test=" << config.n_mc_test
              << ")\n";
    if (exp::env_int("PNC_FULL", 0) != 1)
        std::cout << "(reduced protocol; set PNC_FULL=1 for the paper's full budget)\n";
    std::cout << std::endl;

    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);

    const auto start = std::chrono::steady_clock::now();
    exp::ExperimentRunner runner(&act, &neg, config);
    const auto results = runner.run_all();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    exp::print_table2(std::cout, results, config);
    std::cout << "\n(total experiment time " << elapsed << "s)\n";

    // Headlines: the Table III corner cells (baseline vs full method) at
    // both test variation levels, plus the experiment wall-clock.
    for (int e = 0; e < 2; ++e) {
        const std::string eps = e == 0 ? "eps5" : "eps10";
        run.headline("accuracy.baseline." + eps + ".mean", results.average[0][0][e].mean);
        run.headline("accuracy.full." + eps + ".mean", results.average[1][1][e].mean);
        run.headline("std.full." + eps, results.average[1][1][e].stddev);
    }
    run.headline("experiment.seconds", elapsed);

    // Training-health probe: one tiny seeded variation-aware training with
    // the health monitor live (after the timed grid, so it cannot perturb
    // the wall-clock headlines). The health.* headlines are informational —
    // a healthy tree must report verdict 0 anomalies / no divergence.
    {
        const bool was_enabled = obs::enabled();
        obs::set_enabled(true);
        const auto split = data::split_and_normalize(data::make_dataset("iris"), 99);
        math::Rng probe_rng(7);
        pnn::Pnn probe_net({split.n_features(), 3,
                            static_cast<std::size_t>(split.n_classes)},
                           &act, &neg, surrogate::DesignSpace::table1(), probe_rng);
        pnn::TrainOptions probe_options;
        probe_options.max_epochs = 25;
        probe_options.patience = 25;
        probe_options.epsilon = 0.1;
        probe_options.n_mc_train = 3;
        probe_options.n_mc_val = 2;
        probe_options.seed = 7;
        const auto probe = pnn::train_pnn(probe_net, split, probe_options);
        obs::set_enabled(was_enabled);
        run.headline("health.probe.anomalies",
                     static_cast<double>(probe.health.anomalies));
        run.headline("health.probe.diverged", probe.health.diverged ? 1.0 : 0.0);
        run.headline("health.probe.max_grad_norm", probe.health.max_grad_norm);
    }

    results.save_file(exp::artifact_dir() + "/table_results.txt");
    if (observed) {
        obs::RunMeta meta;
        meta.tool = "bench_table2";
        meta.command = "table2";
        meta.extra.emplace_back("seeds", std::to_string(config.seeds.size()));
        meta.extra.emplace_back("n_mc_train", std::to_string(config.n_mc_train));
        meta.extra.emplace_back("n_mc_test", std::to_string(config.n_mc_test));
        const std::string report = exp::artifact_dir() + "/table2_report.json";
        const std::string trace = exp::artifact_dir() + "/table2_trace.json";
        obs::write_run_report(report, meta);
        obs::write_trace_json(trace);
        std::cout << "telemetry: " << report << " + " << trace << "\n";
    } else {
        std::cout << "(set PNC_OBS=1 to capture a telemetry run report)\n";
    }
    return run.finish();
}
