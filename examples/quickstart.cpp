// Quickstart: design a bespoke printed neuromorphic classifier in ~40 lines.
//
//   1. load (or build + cache) the surrogate models of the nonlinear circuits,
//   2. pick a benchmark dataset and split it,
//   3. train a #in-3-#out pNN with learnable nonlinear circuits and
//      variation-aware training at 10% printing variation,
//   4. evaluate accuracy and robustness under Monte-Carlo variation.
#include <cstdio>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "pnn/training.hpp"

using namespace pnc;

int main() {
    // Surrogates eta_hat(omega) for the ptanh and negative-weight circuits.
    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);

    // Benchmark data, split 60/20/20 and scaled to the 0..1 V input range.
    const auto split = data::split_and_normalize(data::make_dataset("seeds"), /*seed=*/42);
    std::printf("dataset: %s (%zu features, %d classes)\n", split.name.c_str(),
                split.n_features(), split.n_classes);

    // A printed neural network with the paper's topology #in-3-#out.
    math::Rng rng(1);
    pnn::Pnn network({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                     &act, &neg, surrogate::DesignSpace::table1(), rng);

    // Variation-aware training with learnable nonlinear circuits.
    pnn::TrainOptions options;
    options.epsilon = 0.10;           // expected printing variation
    options.n_mc_train = 10;          // Monte-Carlo samples per epoch
    options.learnable_nonlinear = true;
    options.max_epochs = 1500;
    options.patience = 300;
    const auto trained = pnn::train_pnn(network, split, options);
    std::printf("training: %d epochs, best validation loss %.4f\n", trained.epochs_run,
                trained.best_val_loss);

    // Robustness evaluation: 100 perturbed copies of the printed circuit.
    pnn::EvalOptions eval;
    eval.epsilon = 0.10;
    eval.n_mc = 100;
    const auto result = pnn::evaluate_pnn(network, split.x_test, split.y_test, eval);
    std::printf("test accuracy under 10%% variation: %.3f +- %.3f\n", result.mean_accuracy,
                result.std_accuracy);

    // The learned bespoke nonlinear circuit.
    const auto omega = network.layer(0).activation().printable_omega();
    std::printf("learned ptanh circuit: R1=%.0f R2=%.0f R3=%.0f R4=%.0f R5=%.0f Ohm, "
                "W=%.0f L=%.0f um\n",
                omega.r1, omega.r2, omega.r3, omega.r4, omega.r5, omega.w, omega.l);
    return 0;
}
