// The full bespoke design flow of the paper, end to end and from scratch —
// no cached artifacts. This is Fig. 3 followed by Sec. III-B/C as one
// program:
//
//   design space -> QMC sampling -> analog simulation -> eta extraction
//   -> surrogate training -> joint (theta, omega) variation-aware training
//   -> printable design summary.
//
// Runs at a reduced scale by default (PNC_FLOW_SAMPLES / PNC_FLOW_EPOCHS to
// scale up).
#include <cstdio>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "pnn/netlist_export.hpp"
#include "pnn/training.hpp"

using namespace pnc;

namespace {

surrogate::SurrogateModel build_surrogate_from_scratch(circuit::NonlinearCircuitKind kind,
                                                       std::size_t samples) {
    const char* name = kind == circuit::NonlinearCircuitKind::kPtanh ? "ptanh" : "inv";
    std::printf("[1] sampling %zu designs of the %s circuit (Sobol QMC)...\n", samples, name);
    surrogate::DatasetBuildOptions build;
    build.samples = samples;
    build.sweep_points = 32;
    const auto dataset =
        surrogate::build_surrogate_dataset(kind, surrogate::DesignSpace::table1(), build);
    double rmse = 0.0;
    for (double r : dataset.fit_rmse) rmse += r;
    std::printf("    mean curve-fit RMSE %.4f V over %zu simulated circuits\n",
                rmse / static_cast<double>(dataset.size()), dataset.size());

    std::printf("[2] training the 13-layer surrogate MLP for %s...\n", name);
    surrogate::SurrogateTrainOptions train;
    train.mlp.max_epochs = exp::env_int("PNC_FLOW_EPOCHS", 1500);
    train.mlp.patience = 300;
    surrogate::SurrogateMetrics metrics;
    auto model = surrogate::SurrogateModel::train(dataset, train, &metrics);
    std::printf("    validation MSE %.5f, test MSE %.5f (normalized eta)\n",
                metrics.validation_mse, metrics.test_mse);
    return model;
}

}  // namespace

int main() {
    const auto samples =
        static_cast<std::size_t>(exp::env_int("PNC_FLOW_SAMPLES", 1500));
    const auto act =
        build_surrogate_from_scratch(circuit::NonlinearCircuitKind::kPtanh, samples);
    const auto neg =
        build_surrogate_from_scratch(circuit::NonlinearCircuitKind::kNegativeWeight, samples);

    std::printf("[3] joint variation-aware training on Breast Cancer Wisconsin...\n");
    const auto split =
        data::split_and_normalize(data::make_dataset("breast_cancer"), /*seed=*/7);
    math::Rng rng(3);
    pnn::Pnn network({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                     &act, &neg, surrogate::DesignSpace::table1(), rng);

    const auto omega_before = network.layer(0).activation().printable_omega();
    pnn::TrainOptions options;
    options.epsilon = 0.05;
    options.n_mc_train = 8;
    options.learnable_nonlinear = true;
    options.max_epochs = 1000;
    options.patience = 250;
    const auto trained = pnn::train_pnn(network, split, options);
    std::printf("    %d epochs, best validation loss %.4f\n", trained.epochs_run,
                trained.best_val_loss);

    pnn::EvalOptions eval;
    eval.epsilon = 0.05;
    eval.n_mc = 100;
    const auto result = pnn::evaluate_pnn(network, split.x_test, split.y_test, eval);
    std::printf("    test accuracy @5%% variation: %.3f +- %.3f\n", result.mean_accuracy,
                result.std_accuracy);

    std::printf("[4] bespoke nonlinear circuit (before -> after learning):\n");
    const auto omega_after = network.layer(0).activation().printable_omega();
    const auto before = omega_before.to_array();
    const auto after = omega_after.to_array();
    static const char* names[] = {"R1", "R2", "R3", "R4", "R5", "W", "L"};
    for (std::size_t i = 0; i < before.size(); ++i)
        std::printf("    %-3s %12.1f -> %12.1f\n", names[i], before[i], after[i]);

    const auto design = pnn::extract_design(network);
    std::printf("[5] printable design: %zu components across %zu layers\n",
                design.component_count(), design.layers.size());
    return 0;
}
