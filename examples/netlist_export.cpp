// From training to manufacturing data: train a pNN, extract the printable
// design, emit the SPICE netlist, and validate the whole abstraction by
// re-simulating the design with the analog DC substrate (crossbar Kirchhoff
// solve + MNA Newton sweeps of the nonlinear circuits) — the
// hardware-in-the-loop consistency check.
#include <cstdio>
#include <fstream>

#include "autodiff/ops.hpp"
#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "pnn/netlist_export.hpp"
#include "pnn/training.hpp"

using namespace pnc;

int main() {
    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto split = data::split_and_normalize(data::make_dataset("iris"), /*seed=*/3);

    math::Rng rng(9);
    pnn::Pnn network({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                     &act, &neg, surrogate::DesignSpace::table1(), rng);
    pnn::TrainOptions options;
    options.max_epochs = 1200;
    options.patience = 250;
    options.learnable_nonlinear = true;
    pnn::train_pnn(network, split, options);

    const double model_accuracy = ad::accuracy(network.predict(split.x_test), split.y_test);
    std::printf("pNN (abstraction) test accuracy: %.3f\n", model_accuracy);

    // Extract the bill of printable values and write the netlist.
    const auto design = pnn::extract_design(network);
    std::printf("printable design: %zu components, topology", design.component_count());
    for (std::size_t s : design.layer_sizes) std::printf(" %zu", s);
    std::printf("\n");
    const std::string spice = pnn::export_spice(design);
    const std::string path = exp::artifact_dir() + "/iris_pnn.sp";
    std::ofstream(path) << spice;
    std::printf("netlist written to %s (%zu bytes)\n", path.c_str(), spice.size());

    // Hardware-in-the-loop: analog re-simulation of the printed design.
    const pnn::AnalogChecker checker(design);
    const auto model_predictions = ad::argmax_rows(network.predict(split.x_test));
    const double consistency = checker.agreement(split.x_test, model_predictions);
    const double analog_accuracy = checker.agreement(split.x_test, split.y_test);
    std::printf("analog re-simulation: %.1f%% decision agreement with the pNN, "
                "%.3f test accuracy\n",
                consistency * 100.0, analog_accuracy);
    std::printf("(disagreements bound the surrogate + ptanh-fit modelling error)\n");
    return 0;
}
