// Robustness deep-dive: how does accuracy degrade with printing variation,
// and how much of the protection comes from variation-aware training vs the
// learnable nonlinear circuit?
//
// Trains the four Table III setups on one dataset and sweeps the *test*
// variation from 0% to 15%, printing an accuracy-vs-variation profile for
// each setup (the analysis behind the paper's robustness claims).
#include <cstdio>

#include "data/registry.hpp"
#include "exp/artifacts.hpp"
#include "pnn/training.hpp"

using namespace pnc;

int main() {
    const auto act = exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kPtanh);
    const auto neg =
        exp::load_or_build_surrogate(circuit::NonlinearCircuitKind::kNegativeWeight);
    const auto split = data::split_and_normalize(data::make_dataset("iris"), /*seed=*/11);
    const auto space = surrogate::DesignSpace::table1();

    struct Setup {
        const char* name;
        bool learnable;
        double train_eps;
    };
    const Setup setups[] = {
        {"baseline (fixed NL, nominal)", false, 0.0},
        {"variation-aware only", false, 0.10},
        {"learnable NL only", true, 0.0},
        {"learnable NL + variation-aware", true, 0.10},
    };

    const double test_eps[] = {0.0, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15};

    std::printf("%-34s", "setup \\ test variation");
    for (double eps : test_eps) std::printf("  %5.1f%%        ", eps * 100);
    std::printf("\n");

    for (const auto& setup : setups) {
        math::Rng rng(5);
        pnn::Pnn network({split.n_features(), 3, static_cast<std::size_t>(split.n_classes)},
                         &act, &neg, space, rng);
        pnn::TrainOptions options;
        options.learnable_nonlinear = setup.learnable;
        options.epsilon = setup.train_eps;
        options.n_mc_train = setup.train_eps > 0 ? 10 : 1;
        options.max_epochs = 1200;
        options.patience = 250;
        options.seed = 5;
        pnn::train_pnn(network, split, options);

        std::printf("%-34s", setup.name);
        for (double eps : test_eps) {
            pnn::EvalOptions eval;
            eval.epsilon = eps;
            eval.n_mc = eps > 0 ? 60 : 1;
            const auto result = pnn::evaluate_pnn(network, split.x_test, split.y_test, eval);
            std::printf("  %.3f+-%.3f", result.mean_accuracy, result.std_accuracy);
        }
        std::printf("\n");
    }

    std::printf("\nReading: down a column, later rows should dominate earlier ones —\n"
                "variation-aware training buys robustness (smaller +-), the learnable\n"
                "nonlinear circuit buys accuracy, and their combination buys both\n"
                "(the paper's Table III ablation).\n");
    return 0;
}
