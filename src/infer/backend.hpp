// Backend selection between the autodiff reference path and the compiled
// engine.
//
// Both backends produce bitwise-identical results (the differential harness
// enforces it), so the choice is purely a performance knob: the reference
// path stays available as the oracle, the compiled path is the serving
// default candidate. Selection precedence: explicit argument (CLI flag) >
// PNC_INFER_BACKEND environment variable > reference.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "infer/engine.hpp"

namespace pnc::infer {

enum class Backend {
    kReference,  ///< autodiff graph forward (pnn::evaluate_pnn et al.)
    kCompiled,   ///< flat-plan engine (CompiledPnn)
};

/// "reference" / "compiled" -> Backend; anything else -> nullopt.
std::optional<Backend> parse_backend(std::string_view name);

/// Stable name for logs and reports.
const char* backend_name(Backend backend);

/// PNC_INFER_BACKEND, or `fallback` when unset. An unparsable value throws
/// std::invalid_argument (a silently wrong backend would invalidate a
/// benchmark run).
Backend backend_from_env(Backend fallback = Backend::kReference);

/// evaluate_pnn through the selected backend. Results are bit-identical
/// across backends; compiled emits `infer.*` telemetry instead of the
/// reference path's `mc.eval` spans.
pnn::EvalResult evaluate_pnn(Backend backend, const pnn::Pnn& net, const math::Matrix& x,
                             const std::vector<int>& y, const pnn::EvalOptions& options);

/// estimate_yield through the selected backend.
pnn::YieldResult estimate_yield(Backend backend, const pnn::Pnn& net, const math::Matrix& x,
                                const std::vector<int>& y, double accuracy_spec, double eps,
                                int n_mc = 200, std::uint64_t seed = 777);

/// estimate_yield_under_faults through the selected backend.
pnn::FaultYieldResult estimate_yield_under_faults(Backend backend, const pnn::Pnn& net,
                                                  const math::Matrix& x,
                                                  const std::vector<int>& y,
                                                  double accuracy_spec, double eps,
                                                  const faults::FaultModel& fault_model,
                                                  int n_mc = 200, std::uint64_t seed = 777);

}  // namespace pnc::infer
