// Compiled batched inference over an InferencePlan.
//
// CompiledPnn is the serving-path counterpart of Pnn + the pnn:: Monte-
// Carlo drivers: same results, no autodiff. The determinism contract is
// inherited twice over:
//
//  * per forward pass, the engine's flat loops replicate the reference
//    graph's exact sequence of individually rounded double operations
//    (docs/ARCHITECTURE.md, "The compiled inference plan"), so predict()
//    is bitwise equal to Pnn::predict for any variation / fault overlay;
//  * per sweep, the drivers replicate the reference control flow — same
//    Rng seeding and split order, same per-sample draw order, same
//    index-keyed reductions — so evaluate / estimate_yield /
//    estimate_yield_under_faults are bitwise equal to their pnn::
//    counterparts at any PNC_NUM_THREADS.
//
// Both halves are enforced by tests/test_infer_differential.cpp.
#pragma once

#include "faults/campaign.hpp"
#include "infer/plan.hpp"
#include "pnn/robustness.hpp"
#include "pnn/training.hpp"

namespace pnc::infer {

class CompiledPnn {
public:
    /// Compile `net`'s current parameter values. The engine keeps no
    /// reference to the network afterwards.
    explicit CompiledPnn(const pnn::Pnn& net) : plan_(compile(net)) {}
    explicit CompiledPnn(InferencePlan plan) : plan_(std::move(plan)) {}

    const InferencePlan& plan() const { return plan_; }

    /// Output voltages, bit-identical to Pnn::predict(x, variation,
    /// faults). Large batches are row-chunked over the global ThreadPool
    /// (rows are independent, so the split cannot change any bit).
    math::Matrix predict(const math::Matrix& x,
                         const pnn::NetworkVariation* variation = nullptr,
                         const faults::NetworkFaultOverlay* faults = nullptr) const;

    /// ad::accuracy(predict(...), y).
    double accuracy(const math::Matrix& x, const std::vector<int>& y,
                    const pnn::NetworkVariation* variation = nullptr,
                    const faults::NetworkFaultOverlay* faults = nullptr) const;

    /// ad::accuracy's numerator: how many rows of `x` the perturbed
    /// forward pass classifies correctly (argmax replication, first
    /// maximum wins). The batch perturbation entry point for the yield
    /// campaign engine (src/yield): single-threaded by contract — callers
    /// run it from inside their own chunked fan-out — and it forwards into
    /// the caller's reusable `scratch` matrix (resized on mismatch) so a
    /// million-sample sweep performs no per-sample allocation.
    std::size_t correct_count(const math::Matrix& x, const std::vector<int>& y,
                              const pnn::NetworkVariation* variation,
                              const faults::NetworkFaultOverlay* faults,
                              math::Matrix& scratch) const;

    /// Same draws in the same order as Pnn::sample_variation, reproduced
    /// from the plan's shapes alone.
    pnn::NetworkVariation sample_variation(const circuit::VariationModel& model,
                                           math::Rng& rng) const;

    /// Network dimensions for the fault layer (matches Pnn::fault_shape).
    faults::NetworkShape fault_shape() const;

    /// Compiled evaluate_pnn: same results, `infer.*` telemetry.
    pnn::EvalResult evaluate(const math::Matrix& x, const std::vector<int>& y,
                             const pnn::EvalOptions& options) const;

    /// Compiled estimate_yield.
    pnn::YieldResult estimate_yield(const math::Matrix& x, const std::vector<int>& y,
                                    double accuracy_spec, double eps, int n_mc = 200,
                                    std::uint64_t seed = 777) const;

    /// Compiled estimate_yield_under_faults (the campaign driver itself is
    /// shared with the reference path — only the evaluator is compiled).
    pnn::FaultYieldResult estimate_yield_under_faults(const math::Matrix& x,
                                                      const std::vector<int>& y,
                                                      double accuracy_spec, double eps,
                                                      const faults::FaultModel& fault_model,
                                                      int n_mc = 200,
                                                      std::uint64_t seed = 777) const;

private:
    /// Single-thread forward of rows [row_lo, row_hi) into `out` (used by
    /// the chunked predict and, whole-batch, by the MC drivers).
    void forward_rows(const math::Matrix& x, std::size_t row_lo, std::size_t row_hi,
                      const pnn::NetworkVariation* variation,
                      const faults::NetworkFaultOverlay* faults, math::Matrix& out) const;

    InferencePlan plan_;
};

}  // namespace pnc::infer
