// The compiled forward pass and its Monte-Carlo drivers.
//
// Every loop here replicates the exact per-element double-operation
// sequence of the autodiff reference path (each reference op rounds once;
// fused source expressions below keep those roundings because the build
// sets -ffp-contract=off). Comments of the form "ref: ..." name the
// reference op chain a loop mirrors. Do not "simplify" arithmetic in this
// file — reassociating or fusing a single operation breaks the bitwise
// contract enforced by tests/test_infer_differential.cpp.
#include "infer/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "autodiff/ops.hpp"
#include "circuit/nonlinear_circuit.hpp"
#include "math/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/counters.hpp"
#include "runtime/thread_pool.hpp"

namespace pnc::infer {

using math::Matrix;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Pointer-stable bump allocator over a reusable per-thread store. The
/// caller sizes it exactly (plan.table_doubles / batch_doubles) before the
/// first alloc, so pointers never move mid-evaluation.
class Bump {
public:
    Bump(std::vector<double>& store, std::size_t need) : store_(store) {
        if (store_.size() < need) store_.resize(need);
    }
    double* alloc(std::size_t n) {
        double* p = store_.data() + used_;
        used_ += n;
        return p;
    }
    std::size_t mark() const { return used_; }
    void reset(std::size_t mark) { used_ = mark; }

private:
    std::vector<double>& store_;
    std::size_t used_ = 0;
};

// Separate stores for the two phases: tables live on the calling thread
// while batch chunks (possibly including the caller as chunk 0) bump their
// own store, so the two never alias.
thread_local std::vector<double> t_table_store;
thread_local std::vector<double> t_batch_store;

/// Materialized per-perturbation tables of one layer: pointers either into
/// the plan (nominal fast path) or into the table arena. Held in a
/// thread_local scratch (grown once, reused) so steady-state forward_rows
/// calls stay allocation-free.
struct LayerTables {
    const double* w_pos = nullptr;      // n_in x n_out
    const double* w_neg = nullptr;      // n_in x n_out
    const double* bias_term = nullptr;  // n_out
    const double* eta_act = nullptr;    // n_out x 4 (null when no activation)
    const double* eta_neg = nullptr;    // n_in x 4
};

thread_local std::vector<LayerTables> t_layer_tables;

/// Run the surrogate eta pipeline for `inst` perturbed circuit copies.
/// ref: NonlinearParam::eta = printable (replicate, hadamard) ->
/// extend_features -> normalize -> Mlp::forward -> denormalize.
const double* compute_eta(Bump& bump, const SurrogatePlan& sp, const Matrix& var,
                          std::size_t inst) {
    double* eta = bump.alloc(inst * 4);
    double* ping = bump.alloc(inst * sp.max_width);
    double* pong = bump.alloc(inst * sp.max_width);

    // ref: replicate (exact copy) -> mul with variation factors ->
    // extend_features (three elementwise divisions) -> normalize
    // (mul_rowvec then add_rowvec).
    const std::size_t ext = 10;  // surrogate::kExtendedDimension
    const double* base = sp.omega_base.data();
    for (std::size_t r = 0; r < inst; ++r) {
        double* e = ping + r * ext;
        for (std::size_t c = 0; c < 7; ++c) e[c] = base[c] * var(r, c);
        e[7] = e[1] / e[0];
        e[8] = e[3] / e[2];
        e[9] = e[5] / e[6];
        for (std::size_t c = 0; c < ext; ++c) {
            const double scaled = e[c] * sp.norm_scale[c];
            e[c] = scaled + sp.norm_shift[c];
        }
    }

    // ref: Mlp::forward — per layer add_rowvec(matmul(h, W), b), tanh on
    // hidden layers. The matmul keeps math::matmul's exact k-serial
    // accumulation with the aik == 0 skip.
    double* cur = ping;
    double* nxt = pong;
    std::size_t width = ext;
    const std::size_t n_layers = sp.weights.size();
    for (std::size_t l = 0; l < n_layers; ++l) {
        const Matrix& w = sp.weights[l];
        const Matrix& b = sp.biases[l];
        const std::size_t w_out = w.cols();
        std::fill(nxt, nxt + inst * w_out, 0.0);
        for (std::size_t r = 0; r < inst; ++r) {
            const double* h = cur + r * width;
            double* o = nxt + r * w_out;
            for (std::size_t k = 0; k < width; ++k) {
                const double aik = h[k];
                if (aik == 0.0) continue;
                for (std::size_t j = 0; j < w_out; ++j) o[j] += aik * w(k, j);
            }
        }
        const bool is_output = l + 1 == n_layers;
        for (std::size_t r = 0; r < inst; ++r) {
            double* o = nxt + r * w_out;
            for (std::size_t j = 0; j < w_out; ++j) {
                const double z = o[j] + b(0, j);
                o[j] = is_output ? z : std::tanh(z);
            }
        }
        std::swap(cur, nxt);
        width = w_out;
    }

    // ref: denormalize_var — mul_rowvec then add_rowvec.
    for (std::size_t r = 0; r < inst; ++r)
        for (std::size_t c = 0; c < 4; ++c) {
            const double scaled = cur[r * 4 + c] * sp.denorm_scale[c];
            eta[r * 4 + c] = scaled + sp.denorm_shift[c];
        }
    return eta;
}

/// Materialize one block's |conductance| values.
/// ref: project_conductance_ste -> mul(factors) -> mul(keep) + add -> abs.
void materialize_abs(const Matrix& proj, const Matrix* factors,
                     const circuit::ConductanceOverlay* overlay, double* out) {
    const std::size_t n = proj.size();
    for (std::size_t i = 0; i < n; ++i) {
        double g = proj[i];
        if (factors) g = g * (*factors)[i];
        if (overlay) {
            g = g * overlay->keep[i];
            g = g + overlay->add[i];
        }
        out[i] = std::abs(g);
    }
}

LayerTables materialize_tables(Bump& bump, const LayerPlan& layer,
                               const pnn::LayerVariation* variation,
                               const faults::LayerFaultOverlay* faults) {
    LayerTables tables;
    const bool theta_faults = faults && faults->has_theta_faults;
    const std::size_t n_in = layer.n_in;
    const std::size_t n_out = layer.n_out;

    if (!variation && !theta_faults) {
        tables.w_pos = layer.w_pos_nom.data();
        tables.w_neg = layer.w_neg_nom.data();
        tables.bias_term = layer.bias_term_nom.data();
    } else {
        double* a_in = bump.alloc(n_in * n_out);
        double* a_bias = bump.alloc(n_out);
        double* a_drain = bump.alloc(n_out);
        double* total = bump.alloc(n_out);
        materialize_abs(layer.proj_in, variation ? &variation->theta_in : nullptr,
                        theta_faults ? &faults->theta_in : nullptr, a_in);
        materialize_abs(layer.proj_bias, variation ? &variation->theta_bias : nullptr,
                        theta_faults ? &faults->theta_bias : nullptr, a_bias);
        materialize_abs(layer.proj_drain, variation ? &variation->theta_drain : nullptr,
                        theta_faults ? &faults->theta_drain : nullptr, a_drain);

        // ref: total = add(add(sum_rows(a_in), a_bias), a_drain).
        std::fill(total, total + n_out, 0.0);
        for (std::size_t i = 0; i < n_in; ++i)
            for (std::size_t j = 0; j < n_out; ++j) total[j] += a_in[i * n_out + j];
        for (std::size_t j = 0; j < n_out; ++j) {
            total[j] = total[j] + a_bias[j];
            total[j] = total[j] + a_drain[j];
        }

        // ref: w_in = div_rowvec(a_in, total); w_pos/w_neg = mul with the
        // routing masks; bias_term = mul_scalar(div_rowvec(a_bias, total), Vb).
        double* w_pos = bump.alloc(n_in * n_out);
        double* w_neg = bump.alloc(n_in * n_out);
        double* bias_term = bump.alloc(n_out);
        for (std::size_t i = 0; i < n_in; ++i)
            for (std::size_t j = 0; j < n_out; ++j) {
                const std::size_t idx = i * n_out + j;
                const double w_in = a_in[idx] / total[j];
                w_pos[idx] = w_in * layer.positive_mask[idx];
                w_neg[idx] = w_in * layer.negative_mask[idx];
            }
        for (std::size_t j = 0; j < n_out; ++j) {
            const double w_bias = a_bias[j] / total[j];
            bias_term[j] = w_bias * layer.bias_voltage;
        }
        tables.w_pos = w_pos;
        tables.w_neg = w_neg;
        tables.bias_term = bias_term;
    }

    tables.eta_neg = variation ? compute_eta(bump, layer.neg, variation->omega_neg, n_in)
                               : layer.eta_neg_nom.data();
    if (layer.apply_activation)
        tables.eta_act = variation ? compute_eta(bump, layer.act, variation->omega_act, n_out)
                                   : layer.eta_act_nom.data();
    return tables;
}

/// ref: apply_ptanh — add_rowvec(x, neg(e3)), mul_rowvec(e4), tanh,
/// mul_rowvec(e2), add_rowvec(e1). `eta` points at this instance's row.
inline double ptanh(const double* eta, double x) {
    const double shifted = x + (-eta[2]);
    const double activated = std::tanh(shifted * eta[3]);
    const double scaled = activated * eta[1];
    return scaled + eta[0];
}

}  // namespace

void CompiledPnn::forward_rows(const Matrix& x, std::size_t row_lo, std::size_t row_hi,
                               const pnn::NetworkVariation* variation,
                               const faults::NetworkFaultOverlay* faults, Matrix& out) const {
    const std::size_t rows = row_hi - row_lo;
    const std::size_t n_layers = plan_.layers.size();

    // Kernel cost attribution (src/prof): tallies and arena marks only —
    // armed by a profiling session, off by default, and by construction
    // unable to touch the arithmetic below.
    prof::KernelScope kernel(prof::Kernel::kInferForward);
    if (prof::counting()) {
        std::uint64_t flops_per_row = 0;
        std::uint64_t bytes_per_row = 0;
        for (const LayerPlan& layer : plan_.layers) {
            const auto n_in = static_cast<std::uint64_t>(layer.n_in);
            const auto n_out = static_cast<std::uint64_t>(layer.n_out);
            // ptanh = 5 flops (+1 negation on the inverted input path); the
            // two matmuls are mul+add each; bias add is sum + bias.
            flops_per_row += 6 * n_in + 4 * n_in * n_out + 2 * n_out +
                             (layer.apply_activation ? 5 * n_out : 0);
            // Weight tables, input/output rows and both eta tables, in
            // doubles; an attribution estimate, not a cache-line count.
            bytes_per_row +=
                8 * (2 * n_in * n_out + n_in + n_out + 4 * n_in + 4 * n_out);
        }
        const auto n_rows = static_cast<std::uint64_t>(rows);
        kernel.add(n_rows, flops_per_row * n_rows, bytes_per_row * n_rows);
        prof::note_arena_table_doubles(plan_.table_doubles());
        prof::note_arena_batch_doubles(plan_.batch_doubles(rows));
    }

    Bump table_bump(t_table_store, plan_.table_doubles());
    if (t_layer_tables.size() < n_layers) t_layer_tables.resize(n_layers);
    LayerTables* const tables = t_layer_tables.data();
    for (std::size_t l = 0; l < n_layers; ++l)
        tables[l] = materialize_tables(table_bump, plan_.layers[l],
                                       variation ? &(*variation)[l] : nullptr,
                                       faults ? &(*faults)[l] : nullptr);

    Bump bump(t_batch_store, plan_.batch_doubles(rows));
    std::size_t max_width = 0;
    for (std::size_t s : plan_.layer_sizes) max_width = std::max(max_width, s);
    double* ping = bump.alloc(rows * max_width);
    double* pong = bump.alloc(rows * max_width);
    const std::size_t layer_mark = bump.mark();

    const double* h = x.data() + row_lo * x.cols();
    for (std::size_t l = 0; l < n_layers; ++l) {
        bump.reset(layer_mark);
        const LayerPlan& layer = plan_.layers[l];
        const LayerTables& t = tables[l];
        const faults::LayerFaultOverlay* lf = faults ? &(*faults)[l] : nullptr;
        const std::size_t n_in = layer.n_in;
        const std::size_t n_out = layer.n_out;
        const bool is_last = l + 1 == n_layers;
        double* v_z = is_last ? out.data() + row_lo * n_out : (l % 2 == 0 ? ping : pong);

        // ref: x_inverted = apply_negated_ptanh(eta_neg, x), then the dead-
        // circuit masks (mul_rowvec(alive), add_rowvec(rail)).
        double* x_inv = bump.alloc(rows * n_in);
        const bool neg_faults = lf && lf->has_neg_faults;
        for (std::size_t i = 0; i < rows; ++i)
            for (std::size_t k = 0; k < n_in; ++k) {
                double v = -ptanh(t.eta_neg + k * 4, h[i * n_in + k]);
                if (neg_faults) {
                    v = v * lf->neg_alive[k];
                    v = v + lf->neg_rail[k];
                }
                x_inv[i * n_in + k] = v;
            }

        // ref: v_z = add(matmul(x, w_pos), matmul(x_inv, w_neg)) then
        // add_rowvec(mul_scalar(w_bias, Vb)). Both matmuls keep
        // math::matmul's k-serial accumulation and aik == 0 skip.
        double* v2 = bump.alloc(rows * n_out);
        std::fill(v_z, v_z + rows * n_out, 0.0);
        std::fill(v2, v2 + rows * n_out, 0.0);
        for (std::size_t i = 0; i < rows; ++i) {
            const double* hi_row = h + i * n_in;
            double* o1 = v_z + i * n_out;
            double* o2 = v2 + i * n_out;
            for (std::size_t k = 0; k < n_in; ++k) {
                const double aik = hi_row[k];
                if (aik == 0.0) continue;
                const double* w = t.w_pos + k * n_out;
                for (std::size_t j = 0; j < n_out; ++j) o1[j] += aik * w[j];
            }
            for (std::size_t k = 0; k < n_in; ++k) {
                const double aik = x_inv[i * n_in + k];
                if (aik == 0.0) continue;
                const double* w = t.w_neg + k * n_out;
                for (std::size_t j = 0; j < n_out; ++j) o2[j] += aik * w[j];
            }
            for (std::size_t j = 0; j < n_out; ++j) {
                const double summed = o1[j] + o2[j];
                o1[j] = summed + t.bias_term[j];
            }
        }

        // ref: apply_ptanh(eta_act, v_z) + dead-circuit masks; skipped on
        // the readout layer.
        if (layer.apply_activation) {
            const bool act_faults = lf && lf->has_act_faults;
            for (std::size_t i = 0; i < rows; ++i)
                for (std::size_t j = 0; j < n_out; ++j) {
                    double v = ptanh(t.eta_act + j * 4, v_z[i * n_out + j]);
                    if (act_faults) {
                        v = v * lf->act_alive[j];
                        v = v + lf->act_rail[j];
                    }
                    v_z[i * n_out + j] = v;
                }
        }
        h = v_z;
    }
}

Matrix CompiledPnn::predict(const Matrix& x, const pnn::NetworkVariation* variation,
                            const faults::NetworkFaultOverlay* faults) const {
    if (x.cols() != plan_.n_inputs())
        throw std::invalid_argument("CompiledPnn::predict: expected " +
                                    std::to_string(plan_.n_inputs()) + " inputs, got " +
                                    std::to_string(x.cols()));
    if (variation && variation->size() != plan_.layers.size())
        throw std::invalid_argument("CompiledPnn::predict: variation entry count mismatch");
    if (faults && faults->size() != plan_.layers.size())
        throw std::invalid_argument("CompiledPnn::predict: fault overlay entry count mismatch");

    obs::Histogram* batch_hist =
        obs::enabled() ? &obs::MetricsRegistry::global().histogram("infer.batch_seconds")
                       : nullptr;
    const auto start = batch_hist ? Clock::now() : Clock::time_point{};

    Matrix out(x.rows(), plan_.n_outputs());
    const std::size_t n = x.rows();
    const std::size_t chunks = std::min(runtime::global_thread_count(), n);
    if (chunks <= 1) {
        forward_rows(x, 0, n, variation, faults, out);
    } else {
        // Rows are independent, so the chunk split cannot change any bit;
        // each chunk re-derives the (deterministic) tables on its thread.
        runtime::parallel_for(chunks, [&](std::size_t chunk) {
            const auto [lo, hi] = runtime::ThreadPool::chunk_bounds(n, chunks, chunk);
            forward_rows(x, lo, hi, variation, faults, out);
        });
    }
    if (batch_hist) batch_hist->observe(seconds_since(start));
    return out;
}

double CompiledPnn::accuracy(const Matrix& x, const std::vector<int>& y,
                             const pnn::NetworkVariation* variation,
                             const faults::NetworkFaultOverlay* faults) const {
    return ad::accuracy(predict(x, variation, faults), y);
}

std::size_t CompiledPnn::correct_count(const Matrix& x, const std::vector<int>& y,
                                       const pnn::NetworkVariation* variation,
                                       const faults::NetworkFaultOverlay* faults,
                                       Matrix& scratch) const {
    if (y.size() != x.rows())
        throw std::invalid_argument("CompiledPnn::correct_count: labels/rows mismatch");
    if (scratch.rows() != x.rows() || scratch.cols() != plan_.n_outputs())
        scratch = Matrix(x.rows(), plan_.n_outputs());
    forward_rows(x, 0, x.rows(), variation, faults, scratch);
    // ref: ad::accuracy = argmax_rows (strict >, first maximum wins) then
    // the match count — everything except the final division.
    std::size_t correct = 0;
    for (std::size_t i = 0; i < scratch.rows(); ++i) {
        std::size_t best = 0;
        for (std::size_t j = 1; j < scratch.cols(); ++j)
            if (scratch(i, j) > scratch(i, best)) best = j;
        correct += static_cast<int>(best) == y[i];
    }
    return correct;
}

pnn::NetworkVariation CompiledPnn::sample_variation(const circuit::VariationModel& model,
                                                    math::Rng& rng) const {
    // Same draw order as PrintedLayer::sample_variation, per layer.
    pnn::NetworkVariation variation;
    variation.reserve(plan_.layers.size());
    for (const LayerPlan& layer : plan_.layers) {
        pnn::LayerVariation v;
        v.theta_in = model.sample_factors(rng, layer.n_in, layer.n_out);
        v.theta_bias = model.sample_factors(rng, 1, layer.n_out);
        v.theta_drain = model.sample_factors(rng, 1, layer.n_out);
        v.omega_act = model.sample_factors(rng, layer.n_out, circuit::Omega::kDimension);
        v.omega_neg = model.sample_factors(rng, layer.n_in, circuit::Omega::kDimension);
        variation.push_back(std::move(v));
    }
    return variation;
}

faults::NetworkShape CompiledPnn::fault_shape() const {
    faults::NetworkShape shape;
    shape.reserve(plan_.layers.size());
    for (const LayerPlan& layer : plan_.layers)
        shape.push_back({layer.n_in, layer.n_out, layer.apply_activation});
    return shape;
}

namespace {

/// Same shape as robustness.cpp's SweepTelemetry, under an infer.* prefix.
class SweepTelemetry {
public:
    explicit SweepTelemetry(const std::string& prefix) {
        if (!obs::enabled()) return;
        prefix_ = prefix;
        hist_ = &obs::MetricsRegistry::global().histogram(prefix + ".sample_seconds");
        start_ = Clock::now();
    }
    obs::Histogram* histogram() const { return hist_; }
    void finish(std::size_t n_samples) {
        if (!hist_) return;
        auto& registry = obs::MetricsRegistry::global();
        registry.counter(prefix_ + ".samples_total").add(n_samples);
        const double wall = seconds_since(start_);
        if (wall > 0.0)
            registry.gauge(prefix_ + ".samples_per_sec")
                .set(static_cast<double>(n_samples) / wall);
    }

private:
    std::string prefix_;
    obs::Histogram* hist_ = nullptr;
    Clock::time_point start_;
};

}  // namespace

pnn::EvalResult CompiledPnn::evaluate(const Matrix& x, const std::vector<int>& y,
                                      const pnn::EvalOptions& options) const {
    // Mirrors evaluate_pnn: same Rng seeding/splitting, same reductions.
    if (options.n_mc < 1) throw std::invalid_argument("evaluate_pnn: n_mc must be >= 1");
    obs::ScopedTimer eval_span("infer.evaluate");
    SweepTelemetry telemetry("infer.eval");
    obs::Histogram* sample_hist = telemetry.histogram();
    const circuit::VariationModel variation(options.epsilon);
    math::Rng rng(options.seed);

    pnn::EvalResult result;
    if (variation.is_nominal()) {
        result.per_sample_accuracy.push_back(accuracy(x, y));
        telemetry.finish(1);
    } else {
        const auto n_mc = static_cast<std::size_t>(options.n_mc);
        std::vector<math::Rng> streams = rng.split_n(n_mc);
        result.per_sample_accuracy.resize(n_mc);
        runtime::parallel_for(n_mc, [&](std::size_t s) {
            const auto sample_start = sample_hist ? Clock::now() : Clock::time_point{};
            const pnn::NetworkVariation factors = sample_variation(variation, streams[s]);
            Matrix out(x.rows(), plan_.n_outputs());
            forward_rows(x, 0, x.rows(), &factors, nullptr, out);
            result.per_sample_accuracy[s] = ad::accuracy(out, y);
            if (sample_hist) sample_hist->observe(seconds_since(sample_start));
        });
        telemetry.finish(n_mc);
    }
    result.mean_accuracy = math::mean(result.per_sample_accuracy);
    result.std_accuracy = result.per_sample_accuracy.size() > 1
                              ? math::stddev(result.per_sample_accuracy)
                              : 0.0;
    if (obs::enabled()) {
        auto& registry = obs::MetricsRegistry::global();
        registry.gauge("eval.mean_accuracy").set(result.mean_accuracy);
        registry.gauge("eval.std_accuracy").set(result.std_accuracy);
    }
    return result;
}

pnn::YieldResult CompiledPnn::estimate_yield(const Matrix& x, const std::vector<int>& y,
                                             double accuracy_spec, double eps, int n_mc,
                                             std::uint64_t seed) const {
    // Mirrors pnn::estimate_yield's control flow exactly.
    if (n_mc < 2) throw std::invalid_argument("estimate_yield: n_mc must be >= 2");
    obs::ScopedTimer yield_span("infer.estimate_yield");
    SweepTelemetry telemetry("infer.yield");
    obs::Histogram* sample_hist = telemetry.histogram();
    const circuit::VariationModel model(eps);
    math::Rng rng(seed);

    const auto n_samples = static_cast<std::size_t>(n_mc);
    std::vector<math::Rng> streams = rng.split_n(n_samples);
    std::vector<double> accuracies(n_samples);
    runtime::parallel_for(n_samples, [&](std::size_t s) {
        const auto sample_start = sample_hist ? Clock::now() : Clock::time_point{};
        const pnn::NetworkVariation factors = sample_variation(model, streams[s]);
        Matrix out(x.rows(), plan_.n_outputs());
        forward_rows(x, 0, x.rows(), &factors, nullptr, out);
        accuracies[s] = ad::accuracy(out, y);
        if (sample_hist) sample_hist->observe(seconds_since(sample_start));
    });
    telemetry.finish(n_samples);
    std::size_t passing = 0;
    for (double acc : accuracies) passing += acc >= accuracy_spec;
    std::sort(accuracies.begin(), accuracies.end());

    pnn::YieldResult result;
    result.n_samples = n_mc;
    result.n_passing = static_cast<int>(passing);
    result.yield = static_cast<double>(passing) / static_cast<double>(n_mc);
    result.worst_accuracy = accuracies.front();
    result.p5_accuracy = accuracies[static_cast<std::size_t>(0.05 * (n_mc - 1))];
    result.median_accuracy = math::median(accuracies);
    return result;
}

pnn::FaultYieldResult CompiledPnn::estimate_yield_under_faults(
    const Matrix& x, const std::vector<int>& y, double accuracy_spec, double eps,
    const faults::FaultModel& fault_model, int n_mc, std::uint64_t seed) const {
    // The campaign driver (fault sampling, materialization, reductions) is
    // shared with the reference path; only the evaluator is compiled.
    if (n_mc < 2) throw std::invalid_argument("estimate_yield_under_faults: n_mc must be >= 2");
    obs::ScopedTimer yield_span("infer.estimate_yield_under_faults");
    const circuit::VariationModel model(eps);
    const faults::FaultDomain domain{plan_.g_max, plan_.bias_voltage};

    faults::FaultCampaignOptions options;
    options.n_samples = n_mc;
    options.seed = seed;
    options.metric_prefix = "faults.yield";
    const auto campaign = faults::run_fault_campaign(
        fault_model, fault_shape(),
        [&](const faults::NetworkFaultOverlay* overlay, math::Rng& stream) {
            const pnn::NetworkVariation factors = sample_variation(model, stream);
            Matrix out(x.rows(), plan_.n_outputs());
            forward_rows(x, 0, x.rows(), &factors, overlay, out);
            return ad::accuracy(out, y);
        },
        options, domain);

    pnn::FaultYieldResult result;
    result.yield.n_samples = n_mc;
    for (double score : campaign.scores) result.yield.n_passing += score >= accuracy_spec;
    result.yield.yield = campaign.fraction_at_least(accuracy_spec);
    result.yield.worst_accuracy = campaign.worst_score;
    result.yield.p5_accuracy = campaign.score_quantile(0.05);
    result.yield.median_accuracy = campaign.median_score;
    result.mean_accuracy = campaign.mean_score;
    result.mean_fault_count = campaign.mean_fault_count;
    result.campaign = campaign;
    return result;
}

}  // namespace pnc::infer
