// Flat execution plan compiled from a trained pNN (the inference IR).
//
// `compile` walks the network once and freezes everything the forward pass
// needs that does not depend on the per-sample perturbation: projected
// signed conductances, the positive/negative routing masks, the printable
// base design of every nonlinear circuit, the surrogate normalizer rows and
// MLP weights, and — for the fully nominal fast path — the crossbar weight
// matrices and eta tables themselves. The engine (engine.hpp) then
// evaluates batches against this plan with plain double loops in SoA
// layout: no autodiff::Var graph, no per-op allocation.
//
// Determinism contract: every run-time loop in the engine replicates the
// reference path's exact sequence of individually rounded double
// operations (see docs/ARCHITECTURE.md, "The compiled inference plan"), so
// plan evaluation is bitwise equal to Pnn::forward / predict for any input,
// variation factor set, and fault overlay. Compile-time constants are
// produced by the *reference implementation itself* (projection map,
// NonlinearParam::printable, surrogate eta), which makes them exact by
// construction.
#pragma once

#include <cstddef>
#include <vector>

#include "math/matrix.hpp"
#include "pnn/pnn.hpp"

namespace pnc::infer {

/// Compiled copy of one NonlinearParam + SurrogateModel eta pipeline.
/// Everything up to the per-instance replication is perturbation-free, so
/// it collapses into `omega_base`; the rest (ratio extension, min-max
/// affine maps, MLP) is stored as flat matrices the engine re-executes only
/// when variation factors are present.
struct SurrogatePlan {
    math::Matrix omega_base;     ///< 1 x 7 printable base design
    math::Matrix norm_scale;     ///< 1 x 10 feature normalizer (v*scale + shift)
    math::Matrix norm_shift;     ///< 1 x 10
    math::Matrix denorm_scale;   ///< 1 x 4 eta denormalizer
    math::Matrix denorm_shift;   ///< 1 x 4
    std::vector<math::Matrix> weights;  ///< MLP weight matrices, input to output
    std::vector<math::Matrix> biases;   ///< matching 1 x fan_out bias rows
    std::size_t max_width = 0;          ///< widest MLP layer (scratch sizing)
};

/// One layer of the plan. `proj_*` are the signed projected conductances
/// ({0} u [g_min, g_max] with sign); the nominal fast-path members are the
/// crossbar weights / eta tables of the unperturbed, defect-free forward.
struct LayerPlan {
    std::size_t n_in = 0;
    std::size_t n_out = 0;
    bool apply_activation = true;  ///< false for the readout layer
    double bias_voltage = 1.0;

    math::Matrix proj_in;        ///< n_in x n_out, signed
    math::Matrix proj_bias;      ///< 1 x n_out
    math::Matrix proj_drain;     ///< 1 x n_out
    math::Matrix positive_mask;  ///< n_in x n_out, 1.0 where theta >= 0
    math::Matrix negative_mask;  ///< 1 - positive_mask

    // Nominal fast path (no variation factors, no theta faults).
    math::Matrix w_pos_nom;     ///< n_in x n_out
    math::Matrix w_neg_nom;     ///< n_in x n_out
    math::Matrix bias_term_nom; ///< 1 x n_out (w_bias * Vb)
    math::Matrix eta_act_nom;   ///< n_out x 4 (empty when !apply_activation)
    math::Matrix eta_neg_nom;   ///< n_in x 4

    SurrogatePlan act;  ///< unused (empty) when !apply_activation
    SurrogatePlan neg;
};

struct InferencePlan {
    std::vector<std::size_t> layer_sizes;  ///< [n_in, hidden..., n_out]
    std::vector<LayerPlan> layers;
    double g_max = 100.0;        ///< FaultDomain ingredients for campaigns
    double bias_voltage = 1.0;

    std::size_t n_inputs() const { return layer_sizes.front(); }
    std::size_t n_outputs() const { return layer_sizes.back(); }

    /// Arena requirement (in doubles) for materializing one perturbation's
    /// weight/eta tables (engine phase 1).
    std::size_t table_doubles() const;
    /// Arena requirement for streaming `rows` input rows through the plan
    /// against materialized tables (engine phase 2).
    std::size_t batch_doubles(std::size_t rows) const;
    /// Total requirement for one evaluation of `rows` rows, perturbed path
    /// included. The engine reserves up front so no buffer ever reallocates
    /// mid-batch.
    std::size_t scratch_doubles(std::size_t rows) const;
};

/// Freeze the current parameter values of `net` into a plan. The plan is a
/// value type: it stays valid after the network is mutated or destroyed.
InferencePlan compile(const pnn::Pnn& net);

}  // namespace pnc::infer
