#include "infer/plan.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "math/normalizer.hpp"
#include "obs/metrics.hpp"
#include "surrogate/surrogate_model.hpp"

namespace pnc::infer {

using math::Matrix;

namespace {

/// The exact projection map of ad::project_conductance_ste (sign kept).
Matrix project_signed(const Matrix& theta, double g_min, double g_max) {
    return theta.map([g_min, g_max](double v) {
        const double mag = std::abs(v);
        if (mag < 0.5 * g_min) return 0.0;
        const double sign = v >= 0.0 ? 1.0 : -1.0;
        return sign * std::clamp(mag, g_min, g_max);
    });
}

SurrogatePlan compile_surrogate(const pnn::NonlinearParam& param) {
    SurrogatePlan plan;
    // Everything before the per-instance replication (sigmoid, Table I
    // denormalization, shunt reassembly, STE clips) is perturbation-free:
    // freeze it by running the reference chain once.
    plan.omega_base = param.printable(1, nullptr).value();

    const surrogate::SurrogateModel& model = param.surrogate_model();
    const math::MinMaxNormalizer& omega_norm = model.omega_normalizer();
    plan.norm_scale = Matrix(1, omega_norm.dimension());
    plan.norm_shift = Matrix(1, omega_norm.dimension());
    for (std::size_t c = 0; c < omega_norm.dimension(); ++c) {
        // Same expressions as surrogate_model.cpp's normalize_var, so the
        // precomputed rows are bitwise identical to the reference ones.
        const double range = omega_norm.maxs()[c] - omega_norm.mins()[c];
        plan.norm_scale(0, c) = range == 0.0 ? 0.0 : 1.0 / range;
        plan.norm_shift(0, c) = range == 0.0 ? 0.5 : -omega_norm.mins()[c] / range;
    }
    const math::MinMaxNormalizer& eta_norm = model.eta_normalizer();
    plan.denorm_scale = Matrix(1, eta_norm.dimension());
    plan.denorm_shift = Matrix(1, eta_norm.dimension());
    for (std::size_t c = 0; c < eta_norm.dimension(); ++c) {
        plan.denorm_scale(0, c) = eta_norm.maxs()[c] - eta_norm.mins()[c];
        plan.denorm_shift(0, c) = eta_norm.mins()[c];
    }

    // Mlp::parameters() lists all weights, then all biases.
    const auto params = model.mlp().parameters();
    const std::size_t n_weight_layers = params.size() / 2;
    plan.weights.reserve(n_weight_layers);
    plan.biases.reserve(n_weight_layers);
    for (std::size_t l = 0; l < n_weight_layers; ++l) {
        plan.weights.push_back(params[l].value());
        plan.biases.push_back(params[n_weight_layers + l].value());
    }
    plan.max_width = surrogate::kExtendedDimension;
    for (std::size_t s : model.mlp().layer_sizes()) plan.max_width = std::max(plan.max_width, s);
    return plan;
}

LayerPlan compile_layer(const pnn::PrintedLayer& layer, bool apply_activation) {
    LayerPlan plan;
    plan.n_in = layer.n_in();
    plan.n_out = layer.n_out();
    plan.apply_activation = apply_activation;
    const pnn::PnnOptions& options = layer.options();
    plan.bias_voltage = options.bias_voltage;

    // theta_params() = {theta_in, theta_bias, theta_drain}.
    const auto thetas = layer.theta_params();
    const Matrix& theta_in = thetas[0].value();
    plan.proj_in = project_signed(theta_in, options.g_min, options.g_max);
    plan.proj_bias = project_signed(thetas[1].value(), options.g_min, options.g_max);
    plan.proj_drain = project_signed(thetas[2].value(), options.g_min, options.g_max);

    plan.positive_mask = Matrix(plan.n_in, plan.n_out);
    for (std::size_t i = 0; i < plan.positive_mask.size(); ++i)
        plan.positive_mask[i] = theta_in[i] >= 0.0 ? 1.0 : 0.0;
    plan.negative_mask = plan.positive_mask.map([](double v) { return 1.0 - v; });

    // Nominal fast path: with no variation factors and no theta faults the
    // crossbar weights are batch-invariant. Replicate the reference op
    // sequence once (abs -> ((sum + bias) + drain) -> div -> mask mul).
    const Matrix a_in = plan.proj_in.map([](double v) { return std::abs(v); });
    const Matrix a_bias = plan.proj_bias.map([](double v) { return std::abs(v); });
    const Matrix a_drain = plan.proj_drain.map([](double v) { return std::abs(v); });
    const Matrix total = (math::sum_rows(a_in) + a_bias) + a_drain;
    Matrix w_in(plan.n_in, plan.n_out);
    for (std::size_t i = 0; i < plan.n_in; ++i)
        for (std::size_t j = 0; j < plan.n_out; ++j) w_in(i, j) = a_in(i, j) / total(0, j);
    plan.w_pos_nom = math::hadamard(w_in, plan.positive_mask);
    plan.w_neg_nom = math::hadamard(w_in, plan.negative_mask);
    plan.bias_term_nom = Matrix(1, plan.n_out);
    for (std::size_t j = 0; j < plan.n_out; ++j) {
        const double w_bias = a_bias(0, j) / total(0, j);
        plan.bias_term_nom(0, j) = w_bias * options.bias_voltage;
    }

    // Nominal eta tables straight from the reference surrogate chain.
    plan.eta_neg_nom = layer.negation().eta(plan.n_in, nullptr).value();
    plan.neg = compile_surrogate(layer.negation());
    if (apply_activation) {
        plan.eta_act_nom = layer.activation().eta(plan.n_out, nullptr).value();
        plan.act = compile_surrogate(layer.activation());
    }
    return plan;
}

}  // namespace

std::size_t InferencePlan::table_doubles() const {
    std::size_t tables = 0;
    for (const LayerPlan& layer : layers) {
        const std::size_t crossbar = layer.n_in * layer.n_out;
        std::size_t need = crossbar;                 // a_in
        need += 3 * layer.n_out;                     // a_bias, a_drain, total
        need += 2 * crossbar + layer.n_out;          // w_pos, w_neg, bias_term
        need += layer.n_in * 4 + 2 * layer.n_in * layer.neg.max_width;  // eta_neg + MLP scratch
        if (layer.apply_activation)
            need += layer.n_out * 4 + 2 * layer.n_out * layer.act.max_width;
        tables += need;
    }
    return tables;
}

std::size_t InferencePlan::batch_doubles(std::size_t rows) const {
    std::size_t batch_layer = 0;
    std::size_t max_width = 0;
    for (const LayerPlan& layer : layers)
        batch_layer = std::max(batch_layer, rows * (layer.n_in + layer.n_out));
    for (std::size_t s : layer_sizes) max_width = std::max(max_width, s);
    return 2 * rows * max_width + batch_layer;
}

std::size_t InferencePlan::scratch_doubles(std::size_t rows) const {
    // Phase 1 (per-sample tables) + phase 2 (batch buffers); the engine
    // carves both from bump allocators that never grow mid-evaluation.
    return table_doubles() + batch_doubles(rows);
}

InferencePlan compile(const pnn::Pnn& net) {
    const auto start = std::chrono::steady_clock::now();
    InferencePlan plan;
    plan.layer_sizes = net.layer_sizes();
    plan.layers.reserve(net.n_layers());
    for (std::size_t l = 0; l < net.n_layers(); ++l)
        plan.layers.push_back(compile_layer(net.layer(l), l + 1 != net.n_layers()));
    const pnn::PnnOptions& options = net.layer(0).options();
    plan.g_max = options.g_max;
    plan.bias_voltage = options.bias_voltage;
    if (obs::enabled()) {
        auto& registry = obs::MetricsRegistry::global();
        registry.counter("infer.compiles_total").add(1);
        registry.histogram("infer.compile_seconds")
            .observe(std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                         .count());
    }
    return plan;
}

}  // namespace pnc::infer
