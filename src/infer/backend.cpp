#include "infer/backend.hpp"

#include <cstdlib>
#include <stdexcept>

namespace pnc::infer {

std::optional<Backend> parse_backend(std::string_view name) {
    if (name == "reference") return Backend::kReference;
    if (name == "compiled") return Backend::kCompiled;
    return std::nullopt;
}

const char* backend_name(Backend backend) {
    return backend == Backend::kCompiled ? "compiled" : "reference";
}

Backend backend_from_env(Backend fallback) {
    const char* env = std::getenv("PNC_INFER_BACKEND");
    if (!env || *env == '\0') return fallback;
    const auto parsed = parse_backend(env);
    if (!parsed)
        throw std::invalid_argument(
            "PNC_INFER_BACKEND must be 'reference' or 'compiled', got '" + std::string(env) +
            "'");
    return *parsed;
}

pnn::EvalResult evaluate_pnn(Backend backend, const pnn::Pnn& net, const math::Matrix& x,
                             const std::vector<int>& y, const pnn::EvalOptions& options) {
    if (backend == Backend::kCompiled) return CompiledPnn(net).evaluate(x, y, options);
    return pnn::evaluate_pnn(net, x, y, options);
}

pnn::YieldResult estimate_yield(Backend backend, const pnn::Pnn& net, const math::Matrix& x,
                                const std::vector<int>& y, double accuracy_spec, double eps,
                                int n_mc, std::uint64_t seed) {
    if (backend == Backend::kCompiled)
        return CompiledPnn(net).estimate_yield(x, y, accuracy_spec, eps, n_mc, seed);
    return pnn::estimate_yield(net, x, y, accuracy_spec, eps, n_mc, seed);
}

pnn::FaultYieldResult estimate_yield_under_faults(Backend backend, const pnn::Pnn& net,
                                                  const math::Matrix& x,
                                                  const std::vector<int>& y,
                                                  double accuracy_spec, double eps,
                                                  const faults::FaultModel& fault_model,
                                                  int n_mc, std::uint64_t seed) {
    if (backend == Backend::kCompiled)
        return CompiledPnn(net).estimate_yield_under_faults(x, y, accuracy_spec, eps,
                                                            fault_model, n_mc, seed);
    return pnn::estimate_yield_under_faults(net, x, y, accuracy_spec, eps, fault_model, n_mc,
                                            seed);
}

}  // namespace pnc::infer
