// Deterministic random number generation.
//
// All stochastic pieces of the library (weight init, Monte-Carlo variation
// sampling, dataset generators) draw from this engine so experiments are
// reproducible from a single integer seed, independent of the platform's
// std::random implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "math/matrix.hpp"

namespace pnc::math {

/// xoshiro256++ PRNG (Blackman & Vigna). Fast, 256-bit state, and — unlike
/// std::mt19937 distributions — gives bit-identical streams on every
/// platform, which keeps experiment tables reproducible.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /// Raw 64 random bits.
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double uniform();
    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);
    /// Standard normal via Box-Muller.
    double normal();
    /// Normal with the given mean / stddev.
    double normal(double mean, double stddev);
    /// Uniform integer in [0, n).
    std::size_t index(std::size_t n);

    /// Matrix of i.i.d. uniforms in [lo, hi).
    Matrix uniform_matrix(std::size_t rows, std::size_t cols, double lo, double hi);
    /// Matrix of i.i.d. normals.
    Matrix normal_matrix(std::size_t rows, std::size_t cols, double mean, double stddev);

    /// In-place Fisher-Yates shuffle of an index vector.
    void shuffle(std::vector<std::size_t>& v);

    /// A fresh, statistically independent child generator; used to hand each
    /// subsystem its own stream without coupling their consumption order.
    Rng split();

    /// n children split in index order. The Monte-Carlo hot paths pre-split
    /// one stream per sample before fanning out, so which randomness sample
    /// i consumes is fixed by (seed, i) alone — never by the execution
    /// schedule — and parallel results are bit-identical to serial ones.
    std::vector<Rng> split_n(std::size_t n);

private:
    std::uint64_t state_[4];
    bool have_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

/// Identity permutation of length n.
std::vector<std::size_t> iota_indices(std::size_t n);

}  // namespace pnc::math
