#include "math/normalizer.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace pnc::math {

MinMaxNormalizer MinMaxNormalizer::fit(const Matrix& data) {
    if (data.rows() == 0 || data.cols() == 0)
        throw std::invalid_argument("MinMaxNormalizer::fit: empty data");
    std::vector<double> mins(data.cols(), std::numeric_limits<double>::infinity());
    std::vector<double> maxs(data.cols(), -std::numeric_limits<double>::infinity());
    for (std::size_t r = 0; r < data.rows(); ++r) {
        for (std::size_t c = 0; c < data.cols(); ++c) {
            mins[c] = std::min(mins[c], data(r, c));
            maxs[c] = std::max(maxs[c], data(r, c));
        }
    }
    return MinMaxNormalizer(std::move(mins), std::move(maxs));
}

MinMaxNormalizer::MinMaxNormalizer(std::vector<double> mins, std::vector<double> maxs)
    : mins_(std::move(mins)), maxs_(std::move(maxs)) {
    if (mins_.size() != maxs_.size())
        throw std::invalid_argument("MinMaxNormalizer: min/max size mismatch");
    for (std::size_t i = 0; i < mins_.size(); ++i)
        if (maxs_[i] < mins_[i])
            throw std::invalid_argument("MinMaxNormalizer: max < min in column " +
                                        std::to_string(i));
}

void MinMaxNormalizer::check_dimension(const Matrix& data) const {
    if (data.cols() != mins_.size())
        throw std::invalid_argument("MinMaxNormalizer: expected " +
                                    std::to_string(mins_.size()) + " columns, got " +
                                    std::to_string(data.cols()));
}

double MinMaxNormalizer::normalize_value(double v, std::size_t column) const {
    const double range = maxs_[column] - mins_[column];
    if (range == 0.0) return 0.5;
    return (v - mins_[column]) / range;
}

double MinMaxNormalizer::denormalize_value(double v, std::size_t column) const {
    const double range = maxs_[column] - mins_[column];
    if (range == 0.0) return mins_[column];
    return mins_[column] + v * range;
}

Matrix MinMaxNormalizer::normalize(const Matrix& data) const {
    check_dimension(data);
    Matrix out(data.rows(), data.cols());
    for (std::size_t r = 0; r < data.rows(); ++r)
        for (std::size_t c = 0; c < data.cols(); ++c)
            out(r, c) = normalize_value(data(r, c), c);
    return out;
}

Matrix MinMaxNormalizer::denormalize(const Matrix& data) const {
    check_dimension(data);
    Matrix out(data.rows(), data.cols());
    for (std::size_t r = 0; r < data.rows(); ++r)
        for (std::size_t c = 0; c < data.cols(); ++c)
            out(r, c) = denormalize_value(data(r, c), c);
    return out;
}

void MinMaxNormalizer::save(std::ostream& os) const {
    os << mins_.size() << "\n";
    os.precision(17);
    for (std::size_t i = 0; i < mins_.size(); ++i) os << mins_[i] << " " << maxs_[i] << "\n";
}

MinMaxNormalizer MinMaxNormalizer::load(std::istream& is) {
    std::size_t n = 0;
    is >> n;
    std::vector<double> mins(n), maxs(n);
    for (std::size_t i = 0; i < n; ++i) is >> mins[i] >> maxs[i];
    if (!is) throw std::runtime_error("MinMaxNormalizer::load: malformed stream");
    return MinMaxNormalizer(std::move(mins), std::move(maxs));
}

}  // namespace pnc::math
