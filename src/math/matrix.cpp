#include "math/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace pnc::math {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
        if (row.size() != cols_)
            throw std::invalid_argument("Matrix initializer rows have unequal lengths");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix Matrix::row(const std::vector<double>& v) {
    Matrix m(1, v.size());
    std::copy(v.begin(), v.end(), m.data_.begin());
    return m;
}

Matrix Matrix::col(const std::vector<double>& v) {
    Matrix m(v.size(), 1);
    std::copy(v.begin(), v.end(), m.data_.begin());
    return m;
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::generate(std::size_t rows, std::size_t cols,
                        const std::function<double(std::size_t, std::size_t)>& gen) {
    Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c) m(r, c) = gen(r, c);
    return m;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
    require_same_shape(*this, rhs, "operator+=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
    require_same_shape(*this, rhs, "operator-=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
}

Matrix& Matrix::operator*=(double s) {
    for (double& v : data_) v *= s;
    return *this;
}

Matrix Matrix::map(const std::function<double(double)>& f) const {
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = f(data_[i]);
    return out;
}

double Matrix::sum() const {
    double s = 0.0;
    for (double v : data_) s += v;
    return s;
}

double Matrix::max_abs() const {
    double m = 0.0;
    for (double v : data_) m = std::max(m, std::abs(v));
    return m;
}

std::string Matrix::shape_string() const {
    return "[" + std::to_string(rows_) + "x" + std::to_string(cols_) + "]";
}

void require_same_shape(const Matrix& a, const Matrix& b, const char* what) {
    if (!a.same_shape(b))
        throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                    a.shape_string() + " vs " + b.shape_string());
}

Matrix operator+(const Matrix& a, const Matrix& b) {
    Matrix out = a;
    out += b;
    return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
    Matrix out = a;
    out -= b;
    return out;
}

Matrix operator*(const Matrix& a, double s) {
    Matrix out = a;
    out *= s;
    return out;
}

Matrix operator*(double s, const Matrix& a) { return a * s; }

Matrix operator-(const Matrix& a) { return a * -1.0; }

Matrix hadamard(const Matrix& a, const Matrix& b) {
    require_same_shape(a, b, "hadamard");
    Matrix out(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
    return out;
}

Matrix elementwise_div(const Matrix& a, const Matrix& b) {
    require_same_shape(a, b, "elementwise_div");
    Matrix out(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] / b[i];
    return out;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
    if (a.cols() != b.rows())
        throw std::invalid_argument("matmul: inner dimensions " + a.shape_string() +
                                    " vs " + b.shape_string());
    Matrix out(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const double aik = a(i, k);
            if (aik == 0.0) continue;
            for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
        }
    }
    return out;
}

Matrix transpose(const Matrix& a) {
    Matrix out(a.cols(), a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c) out(c, r) = a(r, c);
    return out;
}

Matrix sum_rows(const Matrix& a) {
    Matrix out(1, a.cols());
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c) out(0, c) += a(r, c);
    return out;
}

Matrix sum_cols(const Matrix& a) {
    Matrix out(a.rows(), 1);
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c) out(r, 0) += a(r, c);
    return out;
}

Matrix broadcast_row(const Matrix& row, std::size_t rows) {
    if (row.rows() != 1)
        throw std::invalid_argument("broadcast_row expects a 1xN matrix, got " +
                                    row.shape_string());
    Matrix out(rows, row.cols());
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < row.cols(); ++c) out(r, c) = row(0, c);
    return out;
}

Matrix broadcast_col(const Matrix& col, std::size_t cols) {
    if (col.cols() != 1)
        throw std::invalid_argument("broadcast_col expects an Nx1 matrix, got " +
                                    col.shape_string());
    Matrix out(col.rows(), cols);
    for (std::size_t r = 0; r < col.rows(); ++r)
        for (std::size_t c = 0; c < cols; ++c) out(r, c) = col(r, 0);
    return out;
}

double frobenius_norm(const Matrix& a) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * a[i];
    return std::sqrt(s);
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
    require_same_shape(a, b, "max_abs_diff");
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

}  // namespace pnc::math
