// Sobol' low-discrepancy sequence (quasi Monte-Carlo).
//
// The paper draws the 10 000 nonlinear-circuit design points with QMC
// sampling [Sobol 1990]; this is the matching generator. Direction numbers
// follow the Joe-Kuo construction; dimensions up to kMaxDimension are
// supported, comfortably above the 7-dimensional design space.
#pragma once

#include <cstdint>
#include <vector>

#include "math/matrix.hpp"

namespace pnc::math {

class SobolSequence {
public:
    static constexpr std::size_t kMaxDimension = 19;

    /// Sequence over the unit hypercube [0,1)^dimension.
    /// Throws std::invalid_argument for dimension 0 or > kMaxDimension.
    explicit SobolSequence(std::size_t dimension);

    std::size_t dimension() const { return dimension_; }

    /// The next point of the sequence (Gray-code order, starting at 0).
    std::vector<double> next();

    /// Skip the first `n` points (common practice: skip the origin).
    void skip(std::size_t n);

    /// Generate `n` points as an n x dimension matrix.
    Matrix sample_matrix(std::size_t n);

private:
    std::size_t dimension_;
    std::uint64_t index_ = 0;
    std::vector<std::uint32_t> state_;                  // current integer point per dim
    std::vector<std::vector<std::uint32_t>> direction_; // [dim][bit]
};

/// Star-discrepancy-style proxy: max deviation of the empirical CDF from
/// uniform over axis-aligned boxes anchored at the origin, estimated on a
/// grid. Used by tests to verify QMC beats plain Monte-Carlo.
double uniformity_deviation(const Matrix& points);

}  // namespace pnc::math
