// Dense row-major matrix of doubles.
//
// This is the numeric workhorse shared by the autodiff engine, the circuit
// solver and the surrogate models. It deliberately stays small: value
// semantics, bounds-checked element access in debug builds, and the handful
// of BLAS-like free functions the rest of the library needs.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace pnc::math {

class Matrix {
public:
    Matrix() = default;

    /// Zero-initialized rows x cols matrix.
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

    /// rows x cols matrix filled with `fill`.
    Matrix(std::size_t rows, std::size_t cols, double fill)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    /// Build from nested initializer list: Matrix{{1,2},{3,4}}.
    Matrix(std::initializer_list<std::initializer_list<double>> init);

    /// Build a 1 x n row vector from a flat vector.
    static Matrix row(const std::vector<double>& v);
    /// Build an n x 1 column vector from a flat vector.
    static Matrix col(const std::vector<double>& v);
    /// n x n identity.
    static Matrix identity(std::size_t n);
    /// rows x cols with every element produced by gen(r, c).
    static Matrix generate(std::size_t rows, std::size_t cols,
                           const std::function<double(std::size_t, std::size_t)>& gen);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    double& operator()(std::size_t r, std::size_t c) {
        check(r, c);
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const {
        check(r, c);
        return data_[r * cols_ + c];
    }
    /// Flat (row-major) element access.
    double& operator[](std::size_t i) { return data_[i]; }
    double operator[](std::size_t i) const { return data_[i]; }

    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }
    const std::vector<double>& storage() const { return data_; }

    bool same_shape(const Matrix& other) const {
        return rows_ == other.rows_ && cols_ == other.cols_;
    }

    Matrix& operator+=(const Matrix& rhs);
    Matrix& operator-=(const Matrix& rhs);
    Matrix& operator*=(double s);

    /// Elementwise map.
    Matrix map(const std::function<double(double)>& f) const;

    /// Sum of all elements.
    double sum() const;
    /// Maximum absolute element (0 for empty matrices).
    double max_abs() const;

    std::string shape_string() const;

private:
    void check(std::size_t r, std::size_t c) const {
#ifndef NDEBUG
        if (r >= rows_ || c >= cols_)
            throw std::out_of_range("Matrix index (" + std::to_string(r) + "," +
                                    std::to_string(c) + ") out of " + shape_string());
#else
        (void)r;
        (void)c;
#endif
    }

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

// ---- shape helpers ----------------------------------------------------

/// Throws std::invalid_argument unless a and b have identical shape.
void require_same_shape(const Matrix& a, const Matrix& b, const char* what);

// ---- arithmetic --------------------------------------------------------

Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);
Matrix operator*(const Matrix& a, double s);
Matrix operator*(double s, const Matrix& a);
Matrix operator-(const Matrix& a);

/// Elementwise (Hadamard) product.
Matrix hadamard(const Matrix& a, const Matrix& b);
/// Elementwise division.
Matrix elementwise_div(const Matrix& a, const Matrix& b);
/// Classic matrix product (a.rows x b.cols).
Matrix matmul(const Matrix& a, const Matrix& b);
Matrix transpose(const Matrix& a);

/// Column sums as a 1 x cols row vector.
Matrix sum_rows(const Matrix& a);
/// Row sums as a rows x 1 column vector.
Matrix sum_cols(const Matrix& a);
/// Repeat a 1 x cols row vector `rows` times.
Matrix broadcast_row(const Matrix& row, std::size_t rows);
/// Repeat a rows x 1 column vector `cols` times.
Matrix broadcast_col(const Matrix& col, std::size_t cols);

/// Frobenius norm.
double frobenius_norm(const Matrix& a);
/// Max elementwise |a - b|; throws on shape mismatch.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace pnc::math
