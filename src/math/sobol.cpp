#include "math/sobol.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace pnc::math {

namespace {

constexpr int kBits = 32;

struct JoeKuoRow {
    unsigned degree;                 // degree s of the primitive polynomial
    unsigned poly;                   // inner coefficients a (Joe-Kuo encoding)
    std::vector<std::uint32_t> m;    // initial odd direction integers
};

// First rows of the Joe-Kuo "new-joe-kuo-6" table (dimension 1 is the
// van der Corput sequence and needs no row).
const std::vector<JoeKuoRow>& joe_kuo_table() {
    static const std::vector<JoeKuoRow> table = {
        {1, 0, {1}},
        {2, 1, {1, 3}},
        {3, 1, {1, 3, 1}},
        {3, 2, {1, 1, 1}},
        {4, 1, {1, 1, 3, 3}},
        {4, 4, {1, 3, 5, 13}},
        {5, 2, {1, 1, 5, 5, 17}},
        {5, 4, {1, 1, 5, 5, 5}},
        {5, 7, {1, 1, 7, 11, 19}},
        {5, 11, {1, 1, 5, 1, 1}},
        {5, 13, {1, 1, 1, 3, 11}},
        {5, 14, {1, 3, 5, 5, 31}},
        {6, 1, {1, 3, 3, 9, 7, 49}},
        {6, 13, {1, 1, 1, 15, 21, 21}},
        {6, 16, {1, 3, 1, 13, 27, 49}},
        {6, 19, {1, 1, 1, 15, 7, 5}},
        {6, 22, {1, 3, 1, 3, 25, 61}},
        {6, 25, {1, 1, 5, 9, 11, 61}},
    };
    return table;
}

std::vector<std::uint32_t> direction_numbers_dim1() {
    std::vector<std::uint32_t> v(kBits);
    for (int i = 0; i < kBits; ++i) v[i] = 1u << (kBits - 1 - i);
    return v;
}

std::vector<std::uint32_t> direction_numbers(const JoeKuoRow& row) {
    const unsigned s = row.degree;
    std::vector<std::uint32_t> m(kBits);
    for (unsigned i = 0; i < s; ++i) m[i] = row.m[i];
    for (unsigned i = s; i < kBits; ++i) {
        // m_i = 2^s m_{i-s} ^ m_{i-s} ^ XOR_j 2^j a_j m_{i-j}
        std::uint32_t value = m[i - s] ^ (m[i - s] << s);
        for (unsigned j = 1; j < s; ++j) {
            if ((row.poly >> (s - 1 - j)) & 1u) value ^= m[i - j] << j;
        }
        m[i] = value;
    }
    std::vector<std::uint32_t> v(kBits);
    for (int i = 0; i < kBits; ++i) v[i] = m[i] << (kBits - 1 - i);
    return v;
}

}  // namespace

SobolSequence::SobolSequence(std::size_t dimension) : dimension_(dimension) {
    if (dimension == 0 || dimension > kMaxDimension)
        throw std::invalid_argument("SobolSequence: dimension must be in [1, " +
                                    std::to_string(kMaxDimension) + "]");
    state_.assign(dimension, 0);
    direction_.reserve(dimension);
    direction_.push_back(direction_numbers_dim1());
    for (std::size_t d = 1; d < dimension; ++d)
        direction_.push_back(direction_numbers(joe_kuo_table()[d - 1]));
}

std::vector<double> SobolSequence::next() {
    std::vector<double> point(dimension_);
    if (index_ == 0) {
        // First point is the origin by convention.
        ++index_;
        return point;
    }
    // Gray-code update: flip the direction number of the lowest zero bit
    // of (index - 1).
    const int bit = std::countr_one(index_ - 1);
    for (std::size_t d = 0; d < dimension_; ++d) {
        state_[d] ^= direction_[d][static_cast<std::size_t>(bit)];
        point[d] = static_cast<double>(state_[d]) * 0x1.0p-32;
    }
    ++index_;
    return point;
}

void SobolSequence::skip(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) (void)next();
}

Matrix SobolSequence::sample_matrix(std::size_t n) {
    Matrix out(n, dimension_);
    for (std::size_t r = 0; r < n; ++r) {
        const auto p = next();
        for (std::size_t c = 0; c < dimension_; ++c) out(r, c) = p[c];
    }
    return out;
}

double uniformity_deviation(const Matrix& points) {
    // Estimate sup |F_n(box) - vol(box)| over origin-anchored boxes whose
    // corners lie on a coarse grid. Exact star discrepancy is exponential;
    // this proxy is enough to compare generators in tests.
    const std::size_t n = points.rows();
    const std::size_t d = points.cols();
    if (n == 0 || d == 0) return 0.0;
    const int grid = d <= 2 ? 16 : 8;
    std::vector<int> corner(d, 1);
    double worst = 0.0;
    while (true) {
        double vol = 1.0;
        for (std::size_t k = 0; k < d; ++k) vol *= static_cast<double>(corner[k]) / grid;
        std::size_t inside = 0;
        for (std::size_t r = 0; r < n; ++r) {
            bool in = true;
            for (std::size_t k = 0; k < d && in; ++k)
                in = points(r, k) < static_cast<double>(corner[k]) / grid;
            inside += in;
        }
        worst = std::max(worst, std::abs(static_cast<double>(inside) / n - vol));
        // advance odometer
        std::size_t k = 0;
        while (k < d && corner[k] == grid) corner[k++] = 1;
        if (k == d) break;
        ++corner[k];
    }
    return worst;
}

}  // namespace pnc::math
