// Direct dense solvers used by the circuit (MNA Newton) and the
// Levenberg-Marquardt fitter. Dimensions here are tiny (circuit node counts,
// 4-parameter fits), so an LU / Cholesky with partial pivoting is plenty.
#pragma once

#include "math/matrix.hpp"

namespace pnc::math {

/// LU factorization with partial pivoting of a square matrix.
/// Throws std::runtime_error when the matrix is (numerically) singular.
class LuFactorization {
public:
    explicit LuFactorization(Matrix a);

    /// Solve A x = b for one right-hand side (b is n x 1).
    Matrix solve(const Matrix& b) const;

    /// Determinant of the factored matrix.
    double determinant() const;

    std::size_t dimension() const { return lu_.rows(); }

private:
    Matrix lu_;
    std::vector<std::size_t> perm_;
    int perm_sign_ = 1;
};

/// One-shot convenience: solve A x = b.
Matrix lu_solve(const Matrix& a, const Matrix& b);

/// Solve the symmetric positive definite system A x = b via Cholesky.
/// Throws std::runtime_error if A is not positive definite.
Matrix cholesky_solve(const Matrix& a, const Matrix& b);

/// Matrix inverse through LU (square matrices only).
Matrix inverse(const Matrix& a);

}  // namespace pnc::math
