// Column-wise min-max normalization.
//
// The surrogate-model pipeline normalizes both the (ratio-extended) design
// parameters omega and the fitted curve parameters eta before training
// (Sec. III-A of the paper) and denormalizes at inference; the saved
// min/max vectors are part of the surrogate artifact.
#pragma once

#include <iosfwd>
#include <vector>

#include "math/matrix.hpp"

namespace pnc::math {

class MinMaxNormalizer {
public:
    MinMaxNormalizer() = default;

    /// Learn per-column min/max from data (rows = samples).
    static MinMaxNormalizer fit(const Matrix& data);
    /// Construct from explicit bounds (e.g. a design-space definition).
    MinMaxNormalizer(std::vector<double> mins, std::vector<double> maxs);

    std::size_t dimension() const { return mins_.size(); }
    const std::vector<double>& mins() const { return mins_; }
    const std::vector<double>& maxs() const { return maxs_; }

    /// Map data into [0, 1] per column. Constant columns map to 0.5.
    Matrix normalize(const Matrix& data) const;
    /// Inverse of normalize().
    Matrix denormalize(const Matrix& data) const;

    double normalize_value(double v, std::size_t column) const;
    double denormalize_value(double v, std::size_t column) const;

    void save(std::ostream& os) const;
    static MinMaxNormalizer load(std::istream& is);

private:
    void check_dimension(const Matrix& data) const;

    std::vector<double> mins_;
    std::vector<double> maxs_;
};

}  // namespace pnc::math
