#include "math/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pnc::math {

namespace {
void require_nonempty(const std::vector<double>& v, const char* what) {
    if (v.empty()) throw std::invalid_argument(std::string(what) + ": empty input");
}
}  // namespace

double mean(const std::vector<double>& v) {
    require_nonempty(v, "mean");
    double s = 0.0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
    require_nonempty(v, "stddev");
    const double m = mean(v);
    double s = 0.0;
    for (double x : v) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size()));
}

double sample_stddev(const std::vector<double>& v) {
    if (v.size() < 2) throw std::invalid_argument("sample_stddev: need >= 2 values");
    const double m = mean(v);
    double s = 0.0;
    for (double x : v) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double minimum(const std::vector<double>& v) {
    require_nonempty(v, "minimum");
    return *std::min_element(v.begin(), v.end());
}

double maximum(const std::vector<double>& v) {
    require_nonempty(v, "maximum");
    return *std::max_element(v.begin(), v.end());
}

double median(std::vector<double> v) {
    require_nonempty(v, "median");
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double pearson_correlation(const std::vector<double>& x, const std::vector<double>& y) {
    if (x.size() != y.size()) throw std::invalid_argument("pearson: size mismatch");
    require_nonempty(x, "pearson");
    const double mx = mean(x);
    const double my = mean(y);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    if (sxx == 0.0 || syy == 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double rmse(const std::vector<double>& a, const std::vector<double>& b) {
    if (a.size() != b.size()) throw std::invalid_argument("rmse: size mismatch");
    require_nonempty(a, "rmse");
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(s / static_cast<double>(a.size()));
}

double r_squared(const std::vector<double>& target, const std::vector<double>& prediction) {
    if (target.size() != prediction.size()) throw std::invalid_argument("r_squared: size mismatch");
    require_nonempty(target, "r_squared");
    const double m = mean(target);
    double ss_res = 0.0, ss_tot = 0.0;
    for (std::size_t i = 0; i < target.size(); ++i) {
        ss_res += (target[i] - prediction[i]) * (target[i] - prediction[i]);
        ss_tot += (target[i] - m) * (target[i] - m);
    }
    if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

}  // namespace pnc::math
