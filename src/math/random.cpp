#include "math/random.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

namespace pnc::math {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: expands one seed into well-mixed state words.
std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

std::size_t Rng::index(std::size_t n) {
    // Rejection-free for our purposes; modulo bias is negligible for n << 2^64.
    return static_cast<std::size_t>(next_u64() % n);
}

Matrix Rng::uniform_matrix(std::size_t rows, std::size_t cols, double lo, double hi) {
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i) m[i] = uniform(lo, hi);
    return m;
}

Matrix Rng::normal_matrix(std::size_t rows, std::size_t cols, double mean, double stddev) {
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i) m[i] = normal(mean, stddev);
    return m;
}

void Rng::shuffle(std::vector<std::size_t>& v) {
    for (std::size_t i = v.size(); i > 1; --i) std::swap(v[i - 1], v[index(i)]);
}

Rng Rng::split() { return Rng(next_u64()); }

std::vector<Rng> Rng::split_n(std::size_t n) {
    std::vector<Rng> children;
    children.reserve(n);
    for (std::size_t i = 0; i < n; ++i) children.push_back(split());
    return children;
}

std::vector<std::size_t> iota_indices(std::size_t n) {
    std::vector<std::size_t> v(n);
    std::iota(v.begin(), v.end(), std::size_t{0});
    return v;
}

}  // namespace pnc::math
