#include "math/linalg.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pnc::math {

namespace {
constexpr double kSingularTol = 1e-14;
}

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
    if (lu_.rows() != lu_.cols())
        throw std::invalid_argument("LuFactorization requires a square matrix, got " +
                                    lu_.shape_string());
    const std::size_t n = lu_.rows();
    perm_.resize(n);
    std::iota(perm_.begin(), perm_.end(), std::size_t{0});

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting: pick the largest magnitude in column k.
        std::size_t pivot = k;
        double best = std::abs(lu_(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            const double v = std::abs(lu_(r, k));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < kSingularTol)
            throw std::runtime_error("LuFactorization: matrix is singular at pivot " +
                                     std::to_string(k));
        if (pivot != k) {
            for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
            std::swap(perm_[k], perm_[pivot]);
            perm_sign_ = -perm_sign_;
        }
        for (std::size_t r = k + 1; r < n; ++r) {
            lu_(r, k) /= lu_(k, k);
            const double factor = lu_(r, k);
            for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
        }
    }
}

Matrix LuFactorization::solve(const Matrix& b) const {
    const std::size_t n = lu_.rows();
    if (b.rows() != n || b.cols() != 1)
        throw std::invalid_argument("LuFactorization::solve expects an n x 1 rhs");
    Matrix x(n, 1);
    // Forward substitution with permutation (L has unit diagonal).
    for (std::size_t i = 0; i < n; ++i) {
        double s = b(perm_[i], 0);
        for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x(j, 0);
        x(i, 0) = s;
    }
    // Back substitution.
    for (std::size_t ii = n; ii-- > 0;) {
        double s = x(ii, 0);
        for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x(j, 0);
        x(ii, 0) = s / lu_(ii, ii);
    }
    return x;
}

double LuFactorization::determinant() const {
    double det = perm_sign_;
    for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
    return det;
}

Matrix lu_solve(const Matrix& a, const Matrix& b) { return LuFactorization(a).solve(b); }

Matrix cholesky_solve(const Matrix& a, const Matrix& b) {
    if (a.rows() != a.cols())
        throw std::invalid_argument("cholesky_solve requires a square matrix");
    const std::size_t n = a.rows();
    if (b.rows() != n || b.cols() != 1)
        throw std::invalid_argument("cholesky_solve expects an n x 1 rhs");

    Matrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double s = a(i, j);
            for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
            if (i == j) {
                if (s <= 0.0)
                    throw std::runtime_error("cholesky_solve: matrix not positive definite");
                l(i, i) = std::sqrt(s);
            } else {
                l(i, j) = s / l(j, j);
            }
        }
    }
    // L y = b
    Matrix y(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b(i, 0);
        for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y(k, 0);
        y(i, 0) = s / l(i, i);
    }
    // L^T x = y
    Matrix x(n, 1);
    for (std::size_t ii = n; ii-- > 0;) {
        double s = y(ii, 0);
        for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x(k, 0);
        x(ii, 0) = s / l(ii, ii);
    }
    return x;
}

Matrix inverse(const Matrix& a) {
    LuFactorization lu(a);
    const std::size_t n = a.rows();
    Matrix inv(n, n);
    for (std::size_t c = 0; c < n; ++c) {
        Matrix e(n, 1);
        e(c, 0) = 1.0;
        const Matrix x = lu.solve(e);
        for (std::size_t r = 0; r < n; ++r) inv(r, c) = x(r, 0);
    }
    return inv;
}

}  // namespace pnc::math
