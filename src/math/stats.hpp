// Small descriptive-statistics helpers used when aggregating Monte-Carlo
// evaluation results into the paper's "mean +/- std" table entries.
#pragma once

#include <vector>

namespace pnc::math {

double mean(const std::vector<double>& v);
/// Population standard deviation (the paper reports spread over a fixed set
/// of Monte-Carlo samples, not an estimate of a larger population).
double stddev(const std::vector<double>& v);
/// Sample standard deviation (n - 1 denominator).
double sample_stddev(const std::vector<double>& v);
double minimum(const std::vector<double>& v);
double maximum(const std::vector<double>& v);
/// Median (averages the two central elements for even sizes).
double median(std::vector<double> v);
/// Pearson correlation coefficient; returns 0 when either input is constant.
double pearson_correlation(const std::vector<double>& x, const std::vector<double>& y);
/// Root mean squared error between two equally sized vectors.
double rmse(const std::vector<double>& a, const std::vector<double>& b);
/// Coefficient of determination R^2 of predictions vs targets.
double r_squared(const std::vector<double>& target, const std::vector<double>& prediction);

}  // namespace pnc::math
