// Global new/delete interposition counters.
//
// Linking this translation unit replaces the global operator new/delete
// family with thin wrappers over malloc/free that bump three process-wide
// counters — allocations, deallocations, bytes requested — when tracking
// is armed (one relaxed atomic load per allocation when it is not, which
// is the permanent state unless a profiling session or an AllocGuard is
// active). Counting never changes allocation behaviour: the wrappers
// allocate exactly what the default ones would.
//
// This is what turns "zero steady-state allocation on the hot path" from a
// comment into an enforced test: wrap the steady-state loop in an
// AllocGuard and assert delta().allocations == 0 (tests/test_prof.cpp).
//
// The replacement operators only link into a binary when something in it
// references this header's symbols (they live in the same translation
// unit), so binaries that never profile keep the toolchain's operators.
#pragma once

#include <cstdint>

namespace pnc::prof {

struct AllocStats {
    std::uint64_t allocations = 0;    ///< operator new calls while tracking
    std::uint64_t deallocations = 0;  ///< operator delete calls while tracking
    std::uint64_t bytes = 0;          ///< bytes requested while tracking
};

bool alloc_tracking();
void set_alloc_tracking(bool on);

/// Monotonic totals since process start (only grown while tracking is on).
AllocStats alloc_snapshot();

/// RAII window: arms tracking for its lifetime (restoring the previous
/// state) and reports the delta observed since construction.
class AllocGuard {
public:
    AllocGuard();
    ~AllocGuard();

    AllocGuard(const AllocGuard&) = delete;
    AllocGuard& operator=(const AllocGuard&) = delete;

    AllocStats delta() const;

private:
    AllocStats begin_;
    bool previous_ = false;
};

}  // namespace pnc::prof
