#include "prof/counters.hpp"

#include "obs/spanstack.hpp"

namespace pnc::prof {

namespace detail {
std::atomic<bool> g_counting{false};
}  // namespace detail

void set_counting(bool on) { detail::g_counting.store(on, std::memory_order_relaxed); }

const char* kernel_name(Kernel kernel) {
    switch (kernel) {
        case Kernel::kInferForward: return "infer.forward_rows";
        case Kernel::kTrainEpoch: return "train.epoch_kernel";
        case Kernel::kYieldRound: return "yield.round_kernel";
        case Kernel::kCount: break;
    }
    return "?";
}

namespace {

struct KernelAtomics {
    std::atomic<std::uint64_t> invocations{0};
    std::atomic<std::uint64_t> rows{0};
    std::atomic<std::uint64_t> flops{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> nanos{0};
};

KernelAtomics g_kernels[kKernelCount];

std::atomic<std::uint64_t> g_table_hwm{0};
std::atomic<std::uint64_t> g_batch_hwm{0};

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (cur < value &&
           !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
}

/// Interned span-stack frames for the kernel labels, resolved once.
const char* interned_kernel_name(Kernel kernel) {
    static const char* names[kKernelCount] = {
        obs::spanstack::intern(kernel_name(Kernel::kInferForward)),
        obs::spanstack::intern(kernel_name(Kernel::kTrainEpoch)),
        obs::spanstack::intern(kernel_name(Kernel::kYieldRound)),
    };
    return names[static_cast<int>(kernel)];
}

}  // namespace

KernelTotals kernel_totals(Kernel kernel) {
    const KernelAtomics& a = g_kernels[static_cast<int>(kernel)];
    KernelTotals totals;
    totals.invocations = a.invocations.load(std::memory_order_relaxed);
    totals.rows = a.rows.load(std::memory_order_relaxed);
    totals.flops = a.flops.load(std::memory_order_relaxed);
    totals.bytes = a.bytes.load(std::memory_order_relaxed);
    totals.seconds = static_cast<double>(a.nanos.load(std::memory_order_relaxed)) * 1e-9;
    return totals;
}

void reset_kernel_totals() {
    for (KernelAtomics& a : g_kernels) {
        a.invocations.store(0, std::memory_order_relaxed);
        a.rows.store(0, std::memory_order_relaxed);
        a.flops.store(0, std::memory_order_relaxed);
        a.bytes.store(0, std::memory_order_relaxed);
        a.nanos.store(0, std::memory_order_relaxed);
    }
}

KernelScope::KernelScope(Kernel kernel) {
    if (!counting()) return;
    active_ = true;
    kernel_ = kernel;
    pushed_ = obs::spanstack::enter_interned(interned_kernel_name(kernel));
    start_ = std::chrono::steady_clock::now();
}

KernelScope::~KernelScope() {
    if (!active_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    if (pushed_) obs::spanstack::exit();
    KernelAtomics& a = g_kernels[static_cast<int>(kernel_)];
    a.invocations.fetch_add(1, std::memory_order_relaxed);
    a.rows.fetch_add(rows_, std::memory_order_relaxed);
    a.flops.fetch_add(flops_, std::memory_order_relaxed);
    a.bytes.fetch_add(bytes_, std::memory_order_relaxed);
    a.nanos.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()),
        std::memory_order_relaxed);
}

void note_arena_table_doubles(std::size_t doubles) {
    atomic_max(g_table_hwm, static_cast<std::uint64_t>(doubles));
}

void note_arena_batch_doubles(std::size_t doubles) {
    atomic_max(g_batch_hwm, static_cast<std::uint64_t>(doubles));
}

std::uint64_t arena_table_doubles_hwm() {
    return g_table_hwm.load(std::memory_order_relaxed);
}

std::uint64_t arena_batch_doubles_hwm() {
    return g_batch_hwm.load(std::memory_order_relaxed);
}

void reset_arena_hwm() {
    g_table_hwm.store(0, std::memory_order_relaxed);
    g_batch_hwm.store(0, std::memory_order_relaxed);
}

}  // namespace pnc::prof
