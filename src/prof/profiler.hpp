// In-process sampling profiler.
//
// Profiler::start arms the obs span stacks (obs/spanstack.hpp), the kernel
// cost counters and the allocation interposition, then spawns one sampler
// thread that snapshots every registered thread's span stack at a fixed
// rate (PNC_PROF_HZ, default 997 Hz — prime, so it cannot phase-lock with
// millisecond-periodic work). Worker threads pay nothing beyond the
// lock-free push/pop of their own spans; all map-building happens on the
// sampler thread. Profiler::stop joins the sampler and folds the
// per-thread sample buffers into a weighted call tree with self vs. total
// samples per span, plus the kernel tallies, the allocation delta and the
// arena high-water marks of the session.
//
// Contract: profiling changes no numerical result (it reads clocks and
// stacks, never an Rng stream) — profiled runs are bitwise identical to
// unprofiled ones at any thread count, enforced by tests/test_prof.cpp.
// Sampling is statistical, so sample *counts* are not deterministic; every
// derived artifact (pnc-profile/1, collapsed stacks) is a pure function of
// the folded counts and contains no timestamps.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "prof/alloc_hooks.hpp"
#include "prof/counters.hpp"

namespace pnc::prof {

/// One span in the folded call tree. `self` counts samples whose innermost
/// frame was this span; `total` = self + all descendants.
struct ProfileNode {
    std::string name;
    std::uint64_t self = 0;
    std::uint64_t total = 0;
    std::vector<std::unique_ptr<ProfileNode>> children;  ///< sorted by name
};

/// Folded result of one profiling session.
struct Profile {
    double hz = 0.0;
    double duration_seconds = 0.0;
    std::uint64_t ticks = 0;         ///< sampler wakeups that took a snapshot
    std::uint64_t missed_ticks = 0;  ///< deadlines skipped (sampler fell behind)
    std::uint64_t samples = 0;       ///< stack samples attributed to frames
    std::uint64_t threads_seen = 0;  ///< distinct registered threads observed
    std::vector<std::unique_ptr<ProfileNode>> roots;  ///< forest, sorted by name
    /// Kernel label -> merged work tallies (only kernels that ran).
    std::map<std::string, KernelTotals> kernels;
    AllocStats alloc;  ///< allocation delta over the session
    std::uint64_t arena_table_doubles_hwm = 0;
    std::uint64_t arena_batch_doubles_hwm = 0;
};

/// PNC_PROF_HZ when set to a finite number in [1, 100000], else 997.
double default_hz();

class Profiler {
public:
    static Profiler& global();

    /// Begin a session at `hz` samples/sec (hz <= 0 resolves via
    /// default_hz()). Returns false when a session is already running.
    /// Span visibility requires obs::set_enabled(true) — ScopedTimer
    /// early-outs before the span stack when obs is off.
    bool start(double hz = 0.0);

    bool running() const;

    /// End the session: joins the sampler, disarms all gates and folds the
    /// sample buffers. Returns an empty Profile when not running.
    Profile stop();
};

}  // namespace pnc::prof
