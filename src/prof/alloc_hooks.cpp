#include "prof/alloc_hooks.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace pnc::prof {

namespace {

// constinit-style zero-initialized atomics: safe to touch from allocations
// that happen before any static constructor runs.
std::atomic<bool> g_tracking{false};
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_deallocations{0};
std::atomic<std::uint64_t> g_bytes{0};

inline void note_alloc(std::size_t size) {
    if (!g_tracking.load(std::memory_order_relaxed)) return;
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(static_cast<std::uint64_t>(size), std::memory_order_relaxed);
}

inline void note_dealloc() {
    if (!g_tracking.load(std::memory_order_relaxed)) return;
    g_deallocations.fetch_add(1, std::memory_order_relaxed);
}

inline void* checked_alloc(std::size_t size) {
    void* p = std::malloc(size ? size : 1);
    if (!p) throw std::bad_alloc();
    note_alloc(size);
    return p;
}

inline void* aligned_alloc_raw(std::size_t size, std::size_t alignment) {
    if (alignment < sizeof(void*)) alignment = sizeof(void*);
    void* p = nullptr;
    if (::posix_memalign(&p, alignment, size ? size : alignment) != 0) return nullptr;
    return p;
}

inline void* checked_aligned_alloc(std::size_t size, std::size_t alignment) {
    void* p = aligned_alloc_raw(size, alignment);
    if (!p) throw std::bad_alloc();
    note_alloc(size);
    return p;
}

}  // namespace

bool alloc_tracking() { return g_tracking.load(std::memory_order_relaxed); }

void set_alloc_tracking(bool on) { g_tracking.store(on, std::memory_order_relaxed); }

AllocStats alloc_snapshot() {
    AllocStats stats;
    stats.allocations = g_allocations.load(std::memory_order_relaxed);
    stats.deallocations = g_deallocations.load(std::memory_order_relaxed);
    stats.bytes = g_bytes.load(std::memory_order_relaxed);
    return stats;
}

AllocGuard::AllocGuard() : begin_(alloc_snapshot()), previous_(alloc_tracking()) {
    set_alloc_tracking(true);
}

AllocGuard::~AllocGuard() { set_alloc_tracking(previous_); }

AllocStats AllocGuard::delta() const {
    const AllocStats now = alloc_snapshot();
    AllocStats delta;
    delta.allocations = now.allocations - begin_.allocations;
    delta.deallocations = now.deallocations - begin_.deallocations;
    delta.bytes = now.bytes - begin_.bytes;
    return delta;
}

}  // namespace pnc::prof

// ------------------------------------------------------------------------
// Replacement global operators. malloc/free-backed (posix_memalign for the
// aligned forms, whose memory is free()-compatible), so mixing with memory
// allocated before these linked in — there is none; replacement is
// per-binary and total — or with sanitizer interceptors is safe.

void* operator new(std::size_t size) { return pnc::prof::checked_alloc(size); }

void* operator new[](std::size_t size) { return pnc::prof::checked_alloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    void* p = std::malloc(size ? size : 1);
    if (p) pnc::prof::note_alloc(size);
    return p;
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    void* p = std::malloc(size ? size : 1);
    if (p) pnc::prof::note_alloc(size);
    return p;
}

void* operator new(std::size_t size, std::align_val_t alignment) {
    return pnc::prof::checked_aligned_alloc(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
    return pnc::prof::checked_aligned_alloc(size, static_cast<std::size_t>(alignment));
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
    void* p = pnc::prof::aligned_alloc_raw(size, static_cast<std::size_t>(alignment));
    if (p) pnc::prof::note_alloc(size);
    return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
    void* p = pnc::prof::aligned_alloc_raw(size, static_cast<std::size_t>(alignment));
    if (p) pnc::prof::note_alloc(size);
    return p;
}

void operator delete(void* p) noexcept {
    if (p) pnc::prof::note_dealloc();
    std::free(p);
}

void operator delete[](void* p) noexcept {
    if (p) pnc::prof::note_dealloc();
    std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }

void operator delete[](void* p, std::size_t) noexcept { operator delete[](p); }

void operator delete(void* p, const std::nothrow_t&) noexcept { operator delete(p); }

void operator delete[](void* p, const std::nothrow_t&) noexcept { operator delete[](p); }

void operator delete(void* p, std::align_val_t) noexcept {
    if (p) pnc::prof::note_dealloc();
    std::free(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
    if (p) pnc::prof::note_dealloc();
    std::free(p);
}

void operator delete(void* p, std::size_t, std::align_val_t alignment) noexcept {
    operator delete(p, alignment);
}

void operator delete[](void* p, std::size_t, std::align_val_t alignment) noexcept {
    operator delete[](p, alignment);
}

void operator delete(void* p, std::align_val_t alignment, const std::nothrow_t&) noexcept {
    operator delete(p, alignment);
}

void operator delete[](void* p, std::align_val_t alignment,
                       const std::nothrow_t&) noexcept {
    operator delete[](p, alignment);
}
