// The pnc-profile/1 artifact: serialize, validate, parse, export, diff.
//
// A profile document is timestamp-free and a pure function of the folded
// session (docs/OBSERVABILITY.md, "Profiling"): meta (rate, duration,
// tick/sample accounting), the self/total call-tree forest, per-kernel
// work tallies with derived GFLOP/s + arithmetic intensity + rows/sec, the
// allocation delta and the arena high-water marks. Like every other pnc
// artifact it is self-validated: validate_profile() enforces the full
// structural contract — including the internal invariants total ==
// self + sum(children.total) per node and sum(roots.total) == meta.samples
// — so a truncated or hand-mangled file fails loudly (fuzzed by
// tests/test_artifact_fuzz.cpp).
//
// collapsed_stacks() emits the folded tree in the semicolon-separated
// "frame;frame;frame count" format consumed by flamegraph.pl and
// speedscope; diff_profiles() attributes the wall-clock delta between two
// profiles to the frames whose self-time moved most.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "prof/profiler.hpp"

namespace pnc::prof {

obs::json::Value profile_document(const Profile& profile);

/// "" when `doc` is a well-formed pnc-profile/1, else a one-line
/// description of the first violation.
std::string validate_profile(const obs::json::Value& doc);

/// Validates first; throws std::runtime_error on any violation. Derived
/// kernel fields (gflops_per_sec, ...) are checked but not stored — they
/// are recomputed from the raw tallies.
Profile parse_profile(const obs::json::Value& doc);

/// Collapsed-stack export: one "a;b;c N" line per tree node with self
/// samples, lexicographically sorted — deterministic for a given Profile.
std::string collapsed_stacks(const Profile& profile);

/// Human-readable session summary: top frames by self time, the kernel
/// table, allocation and arena lines.
std::string format_summary(const Profile& profile);

/// Write profile_document() to `path` (throws std::runtime_error on I/O
/// failure).
void write_profile(const std::string& path, const Profile& profile);

// ------------------------------------------------------------------ diff

/// Self-time of one frame name (aggregated across the whole tree) in both
/// profiles, in seconds (samples / hz).
struct FrameDelta {
    std::string name;
    double base_seconds = 0.0;
    double cand_seconds = 0.0;
    double delta_seconds() const { return cand_seconds - base_seconds; }
};

struct ProfileDiff {
    double base_seconds = 0.0;  ///< total sampled seconds in the baseline
    double cand_seconds = 0.0;  ///< total sampled seconds in the candidate
    /// Union of frame names, sorted by |delta| descending (ties by name).
    std::vector<FrameDelta> frames;
};

ProfileDiff diff_profiles(const Profile& base, const Profile& cand);

/// Attribution table: the total delta plus the top `top_n` contributing
/// frames, one line each.
std::string format_profile_diff(const ProfileDiff& diff, std::size_t top_n = 10);

}  // namespace pnc::prof
