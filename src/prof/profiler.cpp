#include "prof/profiler.hpp"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>

#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "obs/spanstack.hpp"

namespace pnc::prof {

namespace {

using Clock = std::chrono::steady_clock;

/// All session state. Buffers are written only by the sampler thread;
/// start/stop serialize on the mutex, and stop joins the sampler before
/// reading them.
struct Session {
    std::mutex mutex;
    bool running = false;
    double hz = 997.0;
    std::atomic<bool> stop_flag{false};
    std::thread sampler;
    Clock::time_point start_time;
    AllocStats alloc_begin;

    // Sampler-thread-owned between start and join:
    std::uint64_t ticks = 0;
    std::uint64_t missed_ticks = 0;
    std::uint64_t samples = 0;
    std::set<std::uint64_t> threads_seen;
    /// thread id -> (frame path -> sample count). Keyed by registration id
    /// so samples survive the thread itself exiting mid-session.
    std::map<std::uint64_t, std::map<std::vector<const char*>, std::uint64_t>> buffers;
};

Session& session() {
    static Session* s = new Session();
    return *s;
}

/// Absolute-deadline sleep on the monotonic clock; keeps the tick grid
/// fixed instead of accumulating per-iteration drift.
void sleep_until_abs(const struct timespec& deadline) {
#if defined(CLOCK_MONOTONIC) && defined(TIMER_ABSTIME)
    while (clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &deadline, nullptr) != 0) {
    }
#else
    struct timespec now;
    clock_gettime(CLOCK_REALTIME, &now);
    const long long remain_ns = (deadline.tv_sec - now.tv_sec) * 1000000000LL +
                                (deadline.tv_nsec - now.tv_nsec);
    if (remain_ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(remain_ns));
#endif
}

struct timespec monotonic_now() {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return ts;
}

void advance(struct timespec& ts, long long nanos) {
    ts.tv_nsec += nanos;
    while (ts.tv_nsec >= 1000000000L) {
        ts.tv_nsec -= 1000000000L;
        ++ts.tv_sec;
    }
}

bool before(const struct timespec& a, const struct timespec& b) {
    return a.tv_sec < b.tv_sec || (a.tv_sec == b.tv_sec && a.tv_nsec < b.tv_nsec);
}

void sampler_loop(Session& s) {
    const auto period_ns = static_cast<long long>(1e9 / s.hz);
    struct timespec deadline = monotonic_now();
    std::vector<const char*> path;
    path.reserve(obs::spanstack::kMaxDepth);
    while (!s.stop_flag.load(std::memory_order_acquire)) {
        advance(deadline, period_ns);
        // Skip (and count) deadlines we already blew through, so a slow
        // snapshot degrades the rate instead of queueing a catch-up burst.
        const struct timespec now = monotonic_now();
        while (before(deadline, now)) {
            advance(deadline, period_ns);
            ++s.missed_ticks;
        }
        sleep_until_abs(deadline);
        if (s.stop_flag.load(std::memory_order_acquire)) break;
        ++s.ticks;
        obs::spanstack::for_each_stack([&](const obs::spanstack::StackSample& sample) {
            s.threads_seen.insert(sample.thread_id);
            if (sample.depth == 0) return;
            path.assign(sample.frames, sample.frames + sample.depth);
            ++s.buffers[sample.thread_id][path];
            ++s.samples;
        });
    }
}

ProfileNode& find_or_add(std::vector<std::unique_ptr<ProfileNode>>& nodes,
                         const char* name) {
    for (auto& node : nodes)
        if (node->name == name) return *node;
    nodes.push_back(std::make_unique<ProfileNode>());
    nodes.back()->name = name;
    return *nodes.back();
}

std::uint64_t finalize(std::vector<std::unique_ptr<ProfileNode>>& nodes) {
    std::sort(nodes.begin(), nodes.end(),
              [](const auto& a, const auto& b) { return a->name < b->name; });
    std::uint64_t total = 0;
    for (auto& node : nodes) {
        node->total = node->self + finalize(node->children);
        total += node->total;
    }
    return total;
}

void register_session_metrics(const Profile& profile) {
    if (!obs::enabled()) return;
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("prof.sessions_total").add(1);
    registry.counter("prof.samples_total").add(profile.samples);
    registry.counter("prof.ticks_total").add(profile.ticks);
    registry.counter("prof.missed_ticks_total").add(profile.missed_ticks);
    registry.gauge("prof.threads_seen").set(static_cast<double>(profile.threads_seen));
    registry.gauge("prof.alloc.allocations")
        .set(static_cast<double>(profile.alloc.allocations));
    registry.gauge("prof.alloc.bytes").set(static_cast<double>(profile.alloc.bytes));
    registry.gauge("prof.arena.table_doubles_hwm")
        .set(static_cast<double>(profile.arena_table_doubles_hwm));
    registry.gauge("prof.arena.batch_doubles_hwm")
        .set(static_cast<double>(profile.arena_batch_doubles_hwm));
}

}  // namespace

double default_hz() {
    if (const char* v = std::getenv("PNC_PROF_HZ"); v && *v) {
        const double hz = std::atof(v);
        if (hz >= 1.0 && hz <= 100000.0) return hz;
    }
    return 997.0;
}

Profiler& Profiler::global() {
    static Profiler profiler;
    return profiler;
}

bool Profiler::running() const {
    Session& s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.running;
}

bool Profiler::start(double hz) {
    Session& s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.running) return false;
    s.hz = hz > 0.0 ? std::min(hz, 100000.0) : default_hz();
    s.stop_flag.store(false, std::memory_order_release);
    s.ticks = 0;
    s.missed_ticks = 0;
    s.samples = 0;
    s.threads_seen.clear();
    s.buffers.clear();
    reset_kernel_totals();
    reset_arena_hwm();
    s.alloc_begin = alloc_snapshot();
    s.start_time = Clock::now();
    obs::spanstack::ensure_registered();  // the starting thread counts too
    set_counting(true);
    set_alloc_tracking(true);
    obs::spanstack::set_collecting(true);
    s.sampler = std::thread([&s] { sampler_loop(s); });
    s.running = true;
    return true;
}

Profile Profiler::stop() {
    Session& s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.running) return Profile{};
    obs::spanstack::set_collecting(false);
    set_counting(false);
    set_alloc_tracking(false);
    s.stop_flag.store(true, std::memory_order_release);
    s.sampler.join();
    s.running = false;

    Profile profile;
    profile.hz = s.hz;
    profile.duration_seconds =
        std::chrono::duration<double>(Clock::now() - s.start_time).count();
    profile.ticks = s.ticks;
    profile.missed_ticks = s.missed_ticks;
    profile.samples = s.samples;
    profile.threads_seen = s.threads_seen.size();

    for (const auto& [thread_id, paths] : s.buffers) {
        (void)thread_id;
        for (const auto& [path, count] : paths) {
            std::vector<std::unique_ptr<ProfileNode>>* level = &profile.roots;
            ProfileNode* node = nullptr;
            for (const char* frame : path) {
                node = &find_or_add(*level, frame);
                level = &node->children;
            }
            node->self += count;
        }
    }
    finalize(profile.roots);

    for (int k = 0; k < kKernelCount; ++k) {
        const auto kernel = static_cast<Kernel>(k);
        const KernelTotals totals = kernel_totals(kernel);
        if (totals.invocations > 0) profile.kernels[kernel_name(kernel)] = totals;
    }

    const AllocStats now = alloc_snapshot();
    profile.alloc.allocations = now.allocations - s.alloc_begin.allocations;
    profile.alloc.deallocations = now.deallocations - s.alloc_begin.deallocations;
    profile.alloc.bytes = now.bytes - s.alloc_begin.bytes;
    profile.arena_table_doubles_hwm = arena_table_doubles_hwm();
    profile.arena_batch_doubles_hwm = arena_batch_doubles_hwm();

    s.buffers.clear();
    register_session_metrics(profile);
    return profile;
}

}  // namespace pnc::prof
