// Kernel cost counters and arena high-water marks.
//
// The hot kernels (the compiled forward pass, the yield-campaign round
// loop, the training epoch loop) tally how much work they actually did —
// rows processed, floating-point operations, bytes touched — into
// thread-local accumulators that merge into global atomics when the scope
// closes. A profile (src/prof/profiler.hpp) then reports GFLOP/s,
// arithmetic intensity and rows/sec per kernel alongside sampled time.
//
// Everything is gated on one relaxed atomic (`counting()`, armed only by
// prof::Profiler::start): when off, a KernelScope is a single load and the
// arena notes are dead branches. Counting reads clocks and sizes, never an
// Rng stream, so arming it cannot change any numerical result — the same
// bit-identity contract as the rest of the obs stack.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace pnc::prof {

/// The instrumented kernels. Names (kernel_name) double as span-stack
/// frames so sampled time and counted work attribute to the same label.
enum class Kernel : int {
    kInferForward = 0,  ///< CompiledPnn::forward_rows (predict/eval/yield/serve)
    kTrainEpoch,        ///< pnn::train_pnn epoch inner loop
    kYieldRound,        ///< yield::run_yield_campaign round loop
    kCount,
};

inline constexpr int kKernelCount = static_cast<int>(Kernel::kCount);

/// Stable label, e.g. "infer.forward_rows".
const char* kernel_name(Kernel kernel);

/// Merged totals for one kernel since the last reset.
struct KernelTotals {
    std::uint64_t invocations = 0;
    std::uint64_t rows = 0;
    std::uint64_t flops = 0;
    std::uint64_t bytes = 0;
    double seconds = 0.0;  ///< summed wall time inside the kernel scopes
};

namespace detail {
extern std::atomic<bool> g_counting;
}  // namespace detail

/// True while a profiling session wants kernel tallies. One relaxed load.
inline bool counting() { return detail::g_counting.load(std::memory_order_relaxed); }

/// Flipped by prof::Profiler::start/stop (tests may arm it directly).
void set_counting(bool on);

KernelTotals kernel_totals(Kernel kernel);
void reset_kernel_totals();

/// RAII tally for one kernel invocation. Checks the gate once at
/// construction; add() calls accumulate into plain members and the
/// destructor merges them into the global atomics (and pops the span-stack
/// frame the constructor pushed, when a sampler session is collecting).
class KernelScope {
public:
    explicit KernelScope(Kernel kernel);
    ~KernelScope();

    KernelScope(const KernelScope&) = delete;
    KernelScope& operator=(const KernelScope&) = delete;

    void add(std::uint64_t rows, std::uint64_t flops, std::uint64_t bytes) {
        if (!active_) return;
        rows_ += rows;
        flops_ += flops;
        bytes_ += bytes;
    }

private:
    bool active_ = false;
    bool pushed_ = false;
    Kernel kernel_ = Kernel::kInferForward;
    std::uint64_t rows_ = 0;
    std::uint64_t flops_ = 0;
    std::uint64_t bytes_ = 0;
    std::chrono::steady_clock::time_point start_;
};

// ------------------------------------------------------------- arenas
// High-water marks of the compiled engine's per-thread bump arenas (in
// doubles), noted by the engine when counting is armed. Atomic max, so the
// mark is the largest arena any thread ever asked for in the session.

void note_arena_table_doubles(std::size_t doubles);
void note_arena_batch_doubles(std::size_t doubles);
std::uint64_t arena_table_doubles_hwm();
std::uint64_t arena_batch_doubles_hwm();
void reset_arena_hwm();

}  // namespace pnc::prof
