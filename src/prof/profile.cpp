#include "prof/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace pnc::prof {

using obs::json::Value;

namespace {

constexpr const char* kSchema = "pnc-profile/1";

Value node_document(const ProfileNode& node) {
    Value doc = Value::object();
    doc.set("name", Value::string(node.name));
    doc.set("self", Value::number(static_cast<double>(node.self)));
    doc.set("total", Value::number(static_cast<double>(node.total)));
    Value children = Value::array();
    for (const auto& child : node.children) children.push_back(node_document(*child));
    doc.set("children", std::move(children));
    return doc;
}

Value kernel_document(const KernelTotals& totals) {
    Value doc = Value::object();
    doc.set("invocations", Value::number(static_cast<double>(totals.invocations)));
    doc.set("rows", Value::number(static_cast<double>(totals.rows)));
    doc.set("flops", Value::number(static_cast<double>(totals.flops)));
    doc.set("bytes", Value::number(static_cast<double>(totals.bytes)));
    doc.set("seconds", Value::number(totals.seconds));
    const double seconds = totals.seconds > 0.0 ? totals.seconds : 0.0;
    const double gflops =
        seconds > 0.0 ? static_cast<double>(totals.flops) / seconds * 1e-9 : 0.0;
    const double rows_per_sec =
        seconds > 0.0 ? static_cast<double>(totals.rows) / seconds : 0.0;
    const double intensity = totals.bytes > 0
                                 ? static_cast<double>(totals.flops) /
                                       static_cast<double>(totals.bytes)
                                 : 0.0;
    doc.set("gflops_per_sec", Value::number(gflops));
    doc.set("rows_per_sec", Value::number(rows_per_sec));
    doc.set("arithmetic_intensity", Value::number(intensity));
    return doc;
}

bool nonneg_number(const Value* v) {
    return v && v->is_number() && std::isfinite(v->as_number()) && v->as_number() >= 0.0;
}

bool nonneg_integer(const Value* v) {
    return nonneg_number(v) && v->as_number() == std::floor(v->as_number());
}

/// Validate one tree node; on success adds its total to `sum` and returns "".
std::string validate_node(const Value& node, const std::string& where, double& sum) {
    if (!node.is_object()) return where + " is not an object";
    const Value* name = node.find("name");
    if (!name || !name->is_string() || name->as_string().empty())
        return where + ".name must be a non-empty string";
    const Value* self = node.find("self");
    if (!nonneg_integer(self)) return where + ".self must be a non-negative integer";
    const Value* total = node.find("total");
    if (!nonneg_integer(total)) return where + ".total must be a non-negative integer";
    const Value* children = node.find("children");
    if (!children || !children->is_array()) return where + ".children array missing";
    double child_sum = 0.0;
    for (std::size_t i = 0; i < children->items().size(); ++i) {
        const std::string err =
            validate_node(children->items()[i],
                          where + ".children[" + std::to_string(i) + "]", child_sum);
        if (!err.empty()) return err;
    }
    if (total->as_number() != self->as_number() + child_sum)
        return where + ".total != self + sum(children.total)";
    sum += total->as_number();
    return "";
}

std::unique_ptr<ProfileNode> parse_node(const Value& node) {
    auto out = std::make_unique<ProfileNode>();
    out->name = node.find("name")->as_string();
    out->self = static_cast<std::uint64_t>(node.find("self")->as_number());
    out->total = static_cast<std::uint64_t>(node.find("total")->as_number());
    for (const Value& child : node.find("children")->items())
        out->children.push_back(parse_node(child));
    return out;
}

void collect_collapsed(const ProfileNode& node, std::string& prefix,
                       std::vector<std::string>& lines) {
    const std::size_t mark = prefix.size();
    if (!prefix.empty()) prefix += ';';
    prefix += node.name;
    if (node.self > 0) lines.push_back(prefix + " " + std::to_string(node.self));
    for (const auto& child : node.children) collect_collapsed(*child, prefix, lines);
    prefix.resize(mark);
}

void accumulate_self(const ProfileNode& node, std::map<std::string, std::uint64_t>& by_name) {
    by_name[node.name] += node.self;
    for (const auto& child : node.children) accumulate_self(*child, by_name);
}

}  // namespace

Value profile_document(const Profile& profile) {
    Value doc = Value::object();
    doc.set("schema", Value::string(kSchema));

    Value meta = Value::object();
    meta.set("hz", Value::number(profile.hz));
    meta.set("duration_seconds", Value::number(profile.duration_seconds));
    meta.set("ticks", Value::number(static_cast<double>(profile.ticks)));
    meta.set("missed_ticks", Value::number(static_cast<double>(profile.missed_ticks)));
    meta.set("samples", Value::number(static_cast<double>(profile.samples)));
    meta.set("threads_seen", Value::number(static_cast<double>(profile.threads_seen)));
    doc.set("meta", std::move(meta));

    Value tree = Value::array();
    for (const auto& root : profile.roots) tree.push_back(node_document(*root));
    doc.set("tree", std::move(tree));

    Value kernels = Value::object();
    for (const auto& [name, totals] : profile.kernels)
        kernels.set(name, kernel_document(totals));
    doc.set("kernels", std::move(kernels));

    Value alloc = Value::object();
    alloc.set("allocations", Value::number(static_cast<double>(profile.alloc.allocations)));
    alloc.set("deallocations",
              Value::number(static_cast<double>(profile.alloc.deallocations)));
    alloc.set("bytes", Value::number(static_cast<double>(profile.alloc.bytes)));
    doc.set("alloc", std::move(alloc));

    Value arena = Value::object();
    arena.set("table_doubles_hwm",
              Value::number(static_cast<double>(profile.arena_table_doubles_hwm)));
    arena.set("batch_doubles_hwm",
              Value::number(static_cast<double>(profile.arena_batch_doubles_hwm)));
    doc.set("arena", std::move(arena));
    return doc;
}

std::string validate_profile(const Value& doc) {
    if (!doc.is_object()) return "document is not an object";
    const Value* schema = doc.find("schema");
    if (!schema || !schema->is_string() || schema->as_string() != kSchema)
        return std::string("schema is not \"") + kSchema + "\"";

    const Value* meta = doc.find("meta");
    if (!meta || !meta->is_object()) return "meta object missing";
    const Value* hz = meta->find("hz");
    if (!hz || !hz->is_number() || !std::isfinite(hz->as_number()) ||
        hz->as_number() <= 0.0)
        return "meta.hz must be a finite number > 0";
    if (!nonneg_number(meta->find("duration_seconds")))
        return "meta.duration_seconds must be a finite number >= 0";
    for (const char* key : {"ticks", "missed_ticks", "samples", "threads_seen"})
        if (!nonneg_integer(meta->find(key)))
            return std::string("meta.") + key + " must be a non-negative integer";

    const Value* tree = doc.find("tree");
    if (!tree || !tree->is_array()) return "tree array missing";
    double total_samples = 0.0;
    for (std::size_t i = 0; i < tree->items().size(); ++i) {
        const std::string err = validate_node(
            tree->items()[i], "tree[" + std::to_string(i) + "]", total_samples);
        if (!err.empty()) return err;
    }
    if (total_samples != meta->find("samples")->as_number())
        return "meta.samples != sum of tree root totals";

    const Value* kernels = doc.find("kernels");
    if (!kernels || !kernels->is_object()) return "kernels object missing";
    for (const auto& [name, row] : kernels->members()) {
        const std::string where = "kernels." + name;
        if (name.empty()) return "kernels has an empty kernel name";
        if (!row.is_object()) return where + " is not an object";
        for (const char* key : {"invocations", "rows", "flops", "bytes"})
            if (!nonneg_integer(row.find(key)))
                return where + "." + key + " must be a non-negative integer";
        for (const char* key :
             {"seconds", "gflops_per_sec", "rows_per_sec", "arithmetic_intensity"})
            if (!nonneg_number(row.find(key)))
                return where + "." + key + " must be a finite number >= 0";
    }

    const Value* alloc = doc.find("alloc");
    if (!alloc || !alloc->is_object()) return "alloc object missing";
    for (const char* key : {"allocations", "deallocations", "bytes"})
        if (!nonneg_integer(alloc->find(key)))
            return std::string("alloc.") + key + " must be a non-negative integer";

    const Value* arena = doc.find("arena");
    if (!arena || !arena->is_object()) return "arena object missing";
    for (const char* key : {"table_doubles_hwm", "batch_doubles_hwm"})
        if (!nonneg_integer(arena->find(key)))
            return std::string("arena.") + key + " must be a non-negative integer";
    return "";
}

Profile parse_profile(const Value& doc) {
    if (const std::string err = validate_profile(doc); !err.empty())
        throw std::runtime_error("profile: " + err);
    Profile profile;
    const Value* meta = doc.find("meta");
    profile.hz = meta->find("hz")->as_number();
    profile.duration_seconds = meta->find("duration_seconds")->as_number();
    profile.ticks = static_cast<std::uint64_t>(meta->find("ticks")->as_number());
    profile.missed_ticks =
        static_cast<std::uint64_t>(meta->find("missed_ticks")->as_number());
    profile.samples = static_cast<std::uint64_t>(meta->find("samples")->as_number());
    profile.threads_seen =
        static_cast<std::uint64_t>(meta->find("threads_seen")->as_number());
    for (const Value& node : doc.find("tree")->items())
        profile.roots.push_back(parse_node(node));
    for (const auto& [name, row] : doc.find("kernels")->members()) {
        KernelTotals totals;
        totals.invocations = static_cast<std::uint64_t>(row.find("invocations")->as_number());
        totals.rows = static_cast<std::uint64_t>(row.find("rows")->as_number());
        totals.flops = static_cast<std::uint64_t>(row.find("flops")->as_number());
        totals.bytes = static_cast<std::uint64_t>(row.find("bytes")->as_number());
        totals.seconds = row.find("seconds")->as_number();
        profile.kernels[name] = totals;
    }
    const Value* alloc = doc.find("alloc");
    profile.alloc.allocations =
        static_cast<std::uint64_t>(alloc->find("allocations")->as_number());
    profile.alloc.deallocations =
        static_cast<std::uint64_t>(alloc->find("deallocations")->as_number());
    profile.alloc.bytes = static_cast<std::uint64_t>(alloc->find("bytes")->as_number());
    const Value* arena = doc.find("arena");
    profile.arena_table_doubles_hwm =
        static_cast<std::uint64_t>(arena->find("table_doubles_hwm")->as_number());
    profile.arena_batch_doubles_hwm =
        static_cast<std::uint64_t>(arena->find("batch_doubles_hwm")->as_number());
    return profile;
}

std::string collapsed_stacks(const Profile& profile) {
    std::vector<std::string> lines;
    std::string prefix;
    for (const auto& root : profile.roots) collect_collapsed(*root, prefix, lines);
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const std::string& line : lines) {
        out += line;
        out += '\n';
    }
    return out;
}

std::string format_summary(const Profile& profile) {
    std::ostringstream os;
    char line[256];
    std::snprintf(line, sizeof line,
                  "pnc-profile/1: %llu samples @ %.0f Hz over %.3f s on %llu thread(s), "
                  "%llu ticks (%llu missed)\n",
                  static_cast<unsigned long long>(profile.samples), profile.hz,
                  profile.duration_seconds,
                  static_cast<unsigned long long>(profile.threads_seen),
                  static_cast<unsigned long long>(profile.ticks),
                  static_cast<unsigned long long>(profile.missed_ticks));
    os << line;

    std::map<std::string, std::uint64_t> by_name;
    for (const auto& root : profile.roots) accumulate_self(*root, by_name);
    std::vector<std::pair<std::string, std::uint64_t>> frames(by_name.begin(),
                                                              by_name.end());
    std::stable_sort(frames.begin(), frames.end(),
                     [](const auto& a, const auto& b) { return a.second > b.second; });
    os << "\ntop frames by self time:\n";
    std::snprintf(line, sizeof line, "  %10s %7s  %s\n", "seconds", "self%", "frame");
    os << line;
    const double denom = profile.samples > 0 ? static_cast<double>(profile.samples) : 1.0;
    std::size_t shown = 0;
    for (const auto& [name, self] : frames) {
        if (self == 0 || shown >= 15) continue;
        std::snprintf(line, sizeof line, "  %10.4f %6.1f%%  %s\n",
                      static_cast<double>(self) / profile.hz,
                      100.0 * static_cast<double>(self) / denom, name.c_str());
        os << line;
        ++shown;
    }
    if (shown == 0) os << "  (no samples attributed to spans)\n";

    if (!profile.kernels.empty()) {
        os << "\nkernels:\n";
        std::snprintf(line, sizeof line, "  %-22s %10s %12s %10s %12s %10s\n", "kernel",
                      "calls", "rows", "gflop/s", "rows/s", "flop/byte");
        os << line;
        for (const auto& [name, k] : profile.kernels) {
            const double sec = k.seconds > 0.0 ? k.seconds : 0.0;
            const double gflops =
                sec > 0.0 ? static_cast<double>(k.flops) / sec * 1e-9 : 0.0;
            const double rps = sec > 0.0 ? static_cast<double>(k.rows) / sec : 0.0;
            const double ai =
                k.bytes > 0
                    ? static_cast<double>(k.flops) / static_cast<double>(k.bytes)
                    : 0.0;
            std::snprintf(line, sizeof line,
                          "  %-22s %10llu %12llu %10.3f %12.0f %10.3f\n", name.c_str(),
                          static_cast<unsigned long long>(k.invocations),
                          static_cast<unsigned long long>(k.rows), gflops, rps, ai);
            os << line;
        }
    }

    std::snprintf(line, sizeof line,
                  "\nalloc: %llu allocations / %llu deallocations, %llu bytes requested\n",
                  static_cast<unsigned long long>(profile.alloc.allocations),
                  static_cast<unsigned long long>(profile.alloc.deallocations),
                  static_cast<unsigned long long>(profile.alloc.bytes));
    os << line;
    std::snprintf(line, sizeof line,
                  "arena: table hwm %llu doubles, batch hwm %llu doubles\n",
                  static_cast<unsigned long long>(profile.arena_table_doubles_hwm),
                  static_cast<unsigned long long>(profile.arena_batch_doubles_hwm));
    os << line;
    return os.str();
}

void write_profile(const std::string& path, const Profile& profile) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("prof: cannot write " + path);
    os << profile_document(profile).dump() << "\n";
    if (!os) throw std::runtime_error("prof: failed writing " + path);
}

ProfileDiff diff_profiles(const Profile& base, const Profile& cand) {
    ProfileDiff diff;
    diff.base_seconds = base.hz > 0.0 ? static_cast<double>(base.samples) / base.hz : 0.0;
    diff.cand_seconds = cand.hz > 0.0 ? static_cast<double>(cand.samples) / cand.hz : 0.0;
    std::map<std::string, std::uint64_t> base_self;
    std::map<std::string, std::uint64_t> cand_self;
    for (const auto& root : base.roots) accumulate_self(*root, base_self);
    for (const auto& root : cand.roots) accumulate_self(*root, cand_self);
    std::map<std::string, FrameDelta> merged;
    for (const auto& [name, self] : base_self) {
        merged[name].name = name;
        merged[name].base_seconds =
            base.hz > 0.0 ? static_cast<double>(self) / base.hz : 0.0;
    }
    for (const auto& [name, self] : cand_self) {
        merged[name].name = name;
        merged[name].cand_seconds =
            cand.hz > 0.0 ? static_cast<double>(self) / cand.hz : 0.0;
    }
    for (auto& [name, frame] : merged) diff.frames.push_back(frame);
    std::sort(diff.frames.begin(), diff.frames.end(),
              [](const FrameDelta& a, const FrameDelta& b) {
                  const double da = std::abs(a.delta_seconds());
                  const double db = std::abs(b.delta_seconds());
                  if (da != db) return da > db;
                  return a.name < b.name;
              });
    return diff;
}

std::string format_profile_diff(const ProfileDiff& diff, std::size_t top_n) {
    std::ostringstream os;
    char line[256];
    std::snprintf(line, sizeof line,
                  "sampled time: %.4f s -> %.4f s (%+.4f s)\n", diff.base_seconds,
                  diff.cand_seconds, diff.cand_seconds - diff.base_seconds);
    os << line;
    std::snprintf(line, sizeof line, "  %10s %10s %10s  %s\n", "baseline", "candidate",
                  "delta", "frame");
    os << line;
    std::size_t shown = 0;
    for (const FrameDelta& frame : diff.frames) {
        if (shown >= top_n) break;
        std::snprintf(line, sizeof line, "  %10.4f %10.4f %+10.4f  %s\n",
                      frame.base_seconds, frame.cand_seconds, frame.delta_seconds(),
                      frame.name.c_str());
        os << line;
        ++shown;
    }
    if (shown == 0) os << "  (no frames in either profile)\n";
    return os.str();
}

}  // namespace pnc::prof
