#include "yield/yield_report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace pnc::yield {

using obs::json::Value;

namespace {

constexpr const char* kSchema = "pnc-yield-report/1";

bool is_count(double x) { return std::isfinite(x) && x >= 0.0 && x == std::floor(x); }

Value meta_document(const YieldReportMeta& meta) {
    Value doc = Value::object();
    doc.set("tool", Value::string(meta.tool));
    doc.set("dataset", Value::string(meta.dataset));
    doc.set("model", Value::string(meta.model_file));
    doc.set("mode", Value::string(campaign_mode_name(meta.mode)));
    doc.set("method", Value::string(ci_method_name(meta.method)));
    doc.set("accuracy_spec", Value::number(meta.accuracy_spec));
    doc.set("epsilon", Value::number(meta.epsilon));
    doc.set("confidence", Value::number(meta.confidence));
    doc.set("ci_width", Value::number(meta.ci_width));
    doc.set("n_samples", Value::number(static_cast<double>(meta.n_samples)));
    doc.set("round_size", Value::number(static_cast<double>(meta.round_size)));
    doc.set("seed", Value::number(static_cast<double>(meta.seed)));
    doc.set("antithetic", Value::boolean(meta.antithetic));
    doc.set("strata", Value::number(static_cast<double>(meta.strata)));
    doc.set("test_rows", Value::number(static_cast<double>(meta.test_rows)));
    return doc;
}

Value result_document(const YieldEstimate& estimate) {
    Value doc = Value::object();
    doc.set("n_samples", Value::number(static_cast<double>(estimate.n_samples)));
    doc.set("n_passing", Value::number(static_cast<double>(estimate.n_passing)));
    doc.set("yield", Value::number(estimate.yield));
    doc.set("ci_lo", Value::number(estimate.ci_lo));
    doc.set("ci_hi", Value::number(estimate.ci_hi));
    doc.set("ci_width", Value::number(estimate.ci_width()));
    doc.set("confidence", Value::number(estimate.confidence));
    doc.set("method", Value::string(ci_method_name(estimate.method)));
    doc.set("target_reached", Value::boolean(estimate.target_reached));
    doc.set("rounds_used", Value::number(static_cast<double>(estimate.rounds_used)));
    doc.set("mean_accuracy", Value::number(estimate.mean_accuracy));
    doc.set("worst_accuracy", Value::number(estimate.worst_accuracy));
    doc.set("p5_accuracy", Value::number(estimate.p5_accuracy));
    doc.set("median_accuracy", Value::number(estimate.median_accuracy));
    return doc;
}

const Value* require(const Value& parent, const char* key, const char* where,
                     std::string& error) {
    const Value* v = parent.find(key);
    if (!v) error = std::string(where) + key + " is missing";
    return v;
}

/// Fetch a non-negative integer-valued number; writes `error` on failure.
bool get_count(const Value& parent, const char* key, const char* where,
               std::uint64_t& out, std::string& error) {
    const Value* v = require(parent, key, where, error);
    if (!v) return false;
    if (!v->is_number() || !is_count(v->as_number())) {
        error = std::string(where) + key + " must be a non-negative integer";
        return false;
    }
    out = static_cast<std::uint64_t>(v->as_number());
    return true;
}

bool get_number(const Value& parent, const char* key, const char* where, double& out,
                std::string& error) {
    const Value* v = require(parent, key, where, error);
    if (!v) return false;
    if (!v->is_number() || !std::isfinite(v->as_number())) {
        error = std::string(where) + key + " must be a finite number";
        return false;
    }
    out = v->as_number();
    return true;
}

bool get_string(const Value& parent, const char* key, const char* where, std::string& out,
                std::string& error) {
    const Value* v = require(parent, key, where, error);
    if (!v) return false;
    if (!v->is_string() || v->as_string().empty()) {
        error = std::string(where) + key + " must be a non-empty string";
        return false;
    }
    out = v->as_string();
    return true;
}

}  // namespace

CampaignMode parse_campaign_mode(const std::string& name) {
    if (name == "fixed") return CampaignMode::kFixed;
    if (name == "statistical") return CampaignMode::kStatistical;
    throw std::invalid_argument("unknown campaign mode \"" + name +
                                "\" (expected fixed|statistical)");
}

CiMethod parse_ci_method(const std::string& name) {
    if (name == "wilson") return CiMethod::kWilson;
    if (name == "cp" || name == "clopper-pearson") return CiMethod::kClopperPearson;
    throw std::invalid_argument("unknown CI method \"" + name +
                                "\" (expected wilson|cp|clopper-pearson)");
}

YieldCampaignOptions options_from_meta(const YieldReportMeta& meta) {
    YieldCampaignOptions options;
    options.accuracy_spec = meta.accuracy_spec;
    options.epsilon = meta.epsilon;
    options.n_samples = meta.n_samples;
    options.mode = meta.mode;
    options.method = meta.method;
    options.confidence = meta.confidence;
    options.ci_width = meta.ci_width;
    options.round_size = meta.round_size;
    options.antithetic = meta.antithetic;
    options.strata = meta.strata;
    options.seed = meta.seed;
    options.shard = {0, 1};
    return options;
}

Value yield_report_document(const YieldReport& report) {
    Value doc = Value::object();
    doc.set("schema", Value::string(kSchema));
    doc.set("meta", meta_document(report.meta));

    Value shard = Value::object();
    shard.set("index", Value::number(static_cast<double>(report.shard.index)));
    shard.set("count", Value::number(static_cast<double>(report.shard.count)));
    doc.set("shard", std::move(shard));

    Value rounds = Value::array();
    for (const YieldRound& round : report.rounds) {
        Value row = Value::object();
        row.set("n", Value::number(static_cast<double>(round.n)));
        Value histogram = Value::array();
        for (std::uint64_t count : round.histogram)
            histogram.push_back(Value::number(static_cast<double>(count)));
        row.set("histogram", std::move(histogram));
        rounds.push_back(std::move(row));
    }
    doc.set("rounds", std::move(rounds));
    doc.set("result", result_document(report.result));
    return doc;
}

void write_yield_report(const std::string& path, const YieldReport& report) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("write_yield_report: cannot write " + path);
    os << yield_report_document(report).dump() << "\n";
    if (!os) throw std::runtime_error("write_yield_report: write failed for " + path);
}

std::string validate_yield_report(const Value& doc) {
    std::string error;
    if (!doc.is_object()) return "document is not an object";
    const Value* schema = doc.find("schema");
    if (!schema || !schema->is_string() || schema->as_string() != kSchema)
        return std::string("schema must be \"") + kSchema + "\"";

    const Value* meta = doc.find("meta");
    if (!meta || !meta->is_object()) return "missing meta object";
    std::string text;
    for (const char* key : {"tool", "dataset", "model"})
        if (!get_string(*meta, key, "meta.", text, error)) return error;
    if (!get_string(*meta, "mode", "meta.", text, error)) return error;
    try {
        parse_campaign_mode(text);
    } catch (const std::exception&) {
        return "meta.mode must be fixed|statistical";
    }
    if (!get_string(*meta, "method", "meta.", text, error)) return error;
    try {
        parse_ci_method(text);
    } catch (const std::exception&) {
        return "meta.method must be wilson|clopper-pearson";
    }
    double number = 0.0;
    for (const char* key : {"accuracy_spec", "epsilon", "confidence", "ci_width"}) {
        if (!get_number(*meta, key, "meta.", number, error)) return error;
        if (number < 0.0) return std::string("meta.") + key + " must be >= 0";
    }
    if (meta->find("confidence")->as_number() >= 1.0) return "meta.confidence must be < 1";
    std::uint64_t count = 0;
    for (const char* key : {"n_samples", "round_size", "seed", "strata", "test_rows"})
        if (!get_count(*meta, key, "meta.", count, error)) return error;
    const Value* antithetic = meta->find("antithetic");
    if (!antithetic || !antithetic->is_bool()) return "meta.antithetic must be a boolean";
    if (meta->find("n_samples")->as_number() < 2) return "meta.n_samples must be >= 2";
    if (meta->find("round_size")->as_number() < 1) return "meta.round_size must be >= 1";
    if (meta->find("strata")->as_number() < 1) return "meta.strata must be >= 1";
    if (meta->find("test_rows")->as_number() < 1) return "meta.test_rows must be >= 1";
    const auto test_rows =
        static_cast<std::size_t>(meta->find("test_rows")->as_number());

    const Value* shard = doc.find("shard");
    if (!shard || !shard->is_object()) return "missing shard object";
    std::uint64_t shard_index = 0;
    std::uint64_t shard_count = 0;
    if (!get_count(*shard, "index", "shard.", shard_index, error)) return error;
    if (!get_count(*shard, "count", "shard.", shard_count, error)) return error;
    if (shard_count < 1 || shard_index >= shard_count)
        return "shard.index must be < shard.count";

    const Value* rounds = doc.find("rounds");
    if (!rounds || !rounds->is_array()) return "missing rounds array";
    if (rounds->items().empty()) return "rounds array is empty";
    std::uint64_t total_n = 0;
    for (std::size_t r = 0; r < rounds->items().size(); ++r) {
        const Value& row = rounds->items()[r];
        const std::string where = "rounds[" + std::to_string(r) + "].";
        if (!row.is_object()) return where + " is not an object";
        std::uint64_t round_n = 0;
        if (!get_count(row, "n", where.c_str(), round_n, error)) return error;
        const Value* histogram = row.find("histogram");
        if (!histogram || !histogram->is_array())
            return where + "histogram must be an array";
        if (histogram->items().size() != test_rows + 1)
            return where + "histogram must have test_rows + 1 bins";
        std::uint64_t histogram_sum = 0;
        for (const Value& bin : histogram->items()) {
            if (!bin.is_number() || !is_count(bin.as_number()))
                return where + "histogram bins must be non-negative integers";
            histogram_sum += static_cast<std::uint64_t>(bin.as_number());
        }
        if (histogram_sum != round_n)
            return where + "histogram sums to " + std::to_string(histogram_sum) +
                   ", expected n = " + std::to_string(round_n);
        total_n += round_n;
    }

    const Value* result = doc.find("result");
    if (!result || !result->is_object()) return "missing result object";
    std::uint64_t result_n = 0;
    std::uint64_t result_passing = 0;
    if (!get_count(*result, "n_samples", "result.", result_n, error)) return error;
    if (!get_count(*result, "n_passing", "result.", result_passing, error)) return error;
    if (result_n != total_n)
        return "result.n_samples is " + std::to_string(result_n) +
               ", expected the rounds total " + std::to_string(total_n);
    if (result_passing > result_n) return "result.n_passing exceeds result.n_samples";
    for (const char* key : {"yield", "ci_lo", "ci_hi", "ci_width", "confidence",
                            "mean_accuracy", "worst_accuracy", "p5_accuracy",
                            "median_accuracy"}) {
        if (!get_number(*result, key, "result.", number, error)) return error;
        if (number < 0.0 || number > 1.0)
            return std::string("result.") + key + " must be in [0, 1]";
    }
    if (result_n > 0 &&
        std::abs(result->find("yield")->as_number() -
                 static_cast<double>(result_passing) / static_cast<double>(result_n)) >
            1e-12)
        return "result.yield does not equal n_passing / n_samples";
    if (result->find("ci_lo")->as_number() > result->find("ci_hi")->as_number())
        return "result.ci_lo exceeds result.ci_hi";
    if (result->find("worst_accuracy")->as_number() >
        result->find("p5_accuracy")->as_number() + 1e-12)
        return "result.worst_accuracy exceeds result.p5_accuracy";
    if (!get_string(*result, "method", "result.", text, error)) return error;
    try {
        parse_ci_method(text);
    } catch (const std::exception&) {
        return "result.method must be wilson|clopper-pearson";
    }
    const Value* target = result->find("target_reached");
    if (!target || !target->is_bool()) return "result.target_reached must be a boolean";
    std::uint64_t rounds_used = 0;
    if (!get_count(*result, "rounds_used", "result.", rounds_used, error)) return error;
    if (rounds_used != rounds->items().size())
        return "result.rounds_used must equal the number of recorded rounds";
    return "";
}

YieldReport parse_yield_report(const Value& doc) {
    const std::string violation = validate_yield_report(doc);
    if (!violation.empty())
        throw std::runtime_error("parse_yield_report: " + violation);

    YieldReport report;
    const Value& meta = *doc.find("meta");
    report.meta.tool = meta.find("tool")->as_string();
    report.meta.dataset = meta.find("dataset")->as_string();
    report.meta.model_file = meta.find("model")->as_string();
    report.meta.mode = parse_campaign_mode(meta.find("mode")->as_string());
    report.meta.method = parse_ci_method(meta.find("method")->as_string());
    report.meta.accuracy_spec = meta.find("accuracy_spec")->as_number();
    report.meta.epsilon = meta.find("epsilon")->as_number();
    report.meta.confidence = meta.find("confidence")->as_number();
    report.meta.ci_width = meta.find("ci_width")->as_number();
    report.meta.n_samples = static_cast<std::uint64_t>(meta.find("n_samples")->as_number());
    report.meta.round_size =
        static_cast<std::uint64_t>(meta.find("round_size")->as_number());
    report.meta.seed = static_cast<std::uint64_t>(meta.find("seed")->as_number());
    report.meta.antithetic = meta.find("antithetic")->as_bool();
    report.meta.strata = static_cast<std::uint64_t>(meta.find("strata")->as_number());
    report.meta.test_rows = static_cast<std::size_t>(meta.find("test_rows")->as_number());

    const Value& shard = *doc.find("shard");
    report.shard.index = static_cast<std::size_t>(shard.find("index")->as_number());
    report.shard.count = static_cast<std::size_t>(shard.find("count")->as_number());

    for (const Value& row : doc.find("rounds")->items()) {
        YieldRound round;
        round.n = static_cast<std::uint64_t>(row.find("n")->as_number());
        for (const Value& bin : row.find("histogram")->items())
            round.histogram.push_back(static_cast<std::uint64_t>(bin.as_number()));
        report.rounds.push_back(std::move(round));
    }

    const Value& result = *doc.find("result");
    report.result.n_samples =
        static_cast<std::uint64_t>(result.find("n_samples")->as_number());
    report.result.n_passing =
        static_cast<std::uint64_t>(result.find("n_passing")->as_number());
    report.result.yield = result.find("yield")->as_number();
    report.result.ci_lo = result.find("ci_lo")->as_number();
    report.result.ci_hi = result.find("ci_hi")->as_number();
    report.result.confidence = result.find("confidence")->as_number();
    report.result.method = parse_ci_method(result.find("method")->as_string());
    report.result.target_reached = result.find("target_reached")->as_bool();
    report.result.rounds_used =
        static_cast<std::size_t>(result.find("rounds_used")->as_number());
    report.result.mean_accuracy = result.find("mean_accuracy")->as_number();
    report.result.worst_accuracy = result.find("worst_accuracy")->as_number();
    report.result.p5_accuracy = result.find("p5_accuracy")->as_number();
    report.result.median_accuracy = result.find("median_accuracy")->as_number();
    return report;
}

YieldReport merge_yield_reports(const std::vector<YieldReport>& shards) {
    if (shards.empty())
        throw std::invalid_argument("merge_yield_reports: no shard reports");
    const std::string reference_meta = meta_document(shards.front().meta).dump();
    const std::size_t count = shards.front().shard.count;
    if (count != shards.size())
        throw std::invalid_argument("merge_yield_reports: expected " +
                                    std::to_string(count) + " shards, got " +
                                    std::to_string(shards.size()));
    std::vector<const YieldReport*> by_index(count, nullptr);
    for (const YieldReport& shard : shards) {
        if (meta_document(shard.meta).dump() != reference_meta)
            throw std::invalid_argument(
                "merge_yield_reports: shard metas disagree (different campaigns?)");
        if (shard.shard.count != count || shard.shard.index >= count)
            throw std::invalid_argument("merge_yield_reports: inconsistent shard spec");
        if (by_index[shard.shard.index])
            throw std::invalid_argument("merge_yield_reports: duplicate shard index " +
                                        std::to_string(shard.shard.index));
        if (shard.rounds.size() != shards.front().rounds.size())
            throw std::invalid_argument(
                "merge_yield_reports: shards disagree on the round count");
        by_index[shard.shard.index] = &shard;
    }

    YieldReport merged;
    merged.meta = shards.front().meta;
    merged.shard = {0, 1};
    const std::size_t bins = merged.meta.test_rows + 1;
    merged.rounds.resize(shards.front().rounds.size());
    for (YieldRound& round : merged.rounds) round.histogram.assign(bins, 0);
    // Ordered reduction: shards are folded in index order, rounds in round
    // order. The sums are integer, so this is exact — not merely
    // deterministic.
    for (std::size_t i = 0; i < count; ++i)
        for (std::size_t r = 0; r < merged.rounds.size(); ++r) {
            const YieldRound& part = by_index[i]->rounds[r];
            if (part.histogram.size() != bins)
                throw std::invalid_argument(
                    "merge_yield_reports: round histogram size mismatch");
            merged.rounds[r].n += part.n;
            for (std::size_t k = 0; k < bins; ++k)
                merged.rounds[r].histogram[k] += part.histogram[k];
        }

    const YieldCampaignOptions options = options_from_meta(merged.meta);
    merged.result = finalize_rounds(merged.rounds, merged.meta.test_rows, options);
    return merged;
}

}  // namespace pnc::yield
