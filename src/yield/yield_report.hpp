// The "pnc-yield-report/1" JSON document: one yield campaign (or one shard
// of one) with its full per-round correct-count histograms, written by
// `pnc yield` and consumed by `pnc yield merge`. Schema documented in
// docs/YIELD.md and enforced by validate_yield_report.
//
// The document is deliberately lossless: the rounds section carries enough
// integer state to recompute the result from scratch, which is what makes
// shard merging exact — `merge_yield_reports` sums the round histograms and
// replays the adaptive stop rule through the same finalize_rounds the
// online engine used, so the merged document is byte-identical to the one
// the equivalent single-process run writes (test-enforced).
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "yield/campaign.hpp"

namespace pnc::yield {

/// Inverse of campaign_mode_name ("fixed" / "statistical"); throws
/// std::invalid_argument on anything else.
CampaignMode parse_campaign_mode(const std::string& name);

/// Inverse of ci_method_name; also accepts the short form "cp".
CiMethod parse_ci_method(const std::string& name);

/// Campaign identity: every field that must match across shards for a
/// merge to be meaningful. n_samples is the requested budget (the result
/// section carries the samples actually consumed).
struct YieldReportMeta {
    std::string tool = "pnc";
    std::string dataset;
    std::string model_file;
    CampaignMode mode = CampaignMode::kStatistical;
    CiMethod method = CiMethod::kWilson;
    double accuracy_spec = 0.8;
    double epsilon = 0.1;
    double confidence = 0.95;
    double ci_width = 0.0;
    std::uint64_t n_samples = 0;
    std::uint64_t round_size = 4096;
    std::uint64_t seed = 777;
    bool antithetic = false;
    std::uint64_t strata = 1;
    std::size_t test_rows = 0;
};

struct YieldReport {
    YieldReportMeta meta;
    ShardSpec shard;                 ///< {0, 1} for single-process / merged
    std::vector<YieldRound> rounds;  ///< lossless per-round reductions
    YieldEstimate result;
};

/// The campaign options a report's meta describes (shard reset to {0, 1});
/// merge_yield_reports feeds this back into finalize_rounds.
YieldCampaignOptions options_from_meta(const YieldReportMeta& meta);

/// Serialize to the pnc-yield-report/1 document. Pure function of the
/// report fields — no timestamps — so equal reports dump byte-identically.
obs::json::Value yield_report_document(const YieldReport& report);

/// Write the document (one line + newline); throws std::runtime_error on
/// I/O failure.
void write_yield_report(const std::string& path, const YieldReport& report);

/// Parse a validated document back into a YieldReport; throws
/// std::runtime_error quoting the first validation violation.
YieldReport parse_yield_report(const obs::json::Value& doc);

/// "" when `doc` is a well-formed pnc-yield-report/1 (schema tag, complete
/// meta, shard bounds, per-round histogram/count consistency, result
/// consistent with the rounds), else a one-line description of the first
/// violation.
std::string validate_yield_report(const obs::json::Value& doc);

/// Merge shard reports into the single-process-equivalent report: metas
/// must agree exactly, shard indices must cover 0..count-1, and every
/// shard must carry the same global round structure. Round histograms are
/// summed in round order and the adaptive stop rule is replayed via
/// finalize_rounds. Throws std::invalid_argument on inconsistent shards.
YieldReport merge_yield_reports(const std::vector<YieldReport>& shards);

}  // namespace pnc::yield
