// Binomial-proportion interval estimators for the yield engine.
//
// A yield estimate is a binomial proportion: k of n printed copies clear
// the accuracy spec. At the paper's N_test = 100 the sampling noise on that
// proportion (~±10% at 95% confidence) swamps the effects being compared,
// which is why the campaign engine (src/yield/campaign.hpp) drives sample
// counts to 10^6+ and reports a *confidence interval* instead of a bare
// point estimate. Two interval constructions are offered:
//
//  * Wilson score — the score-test inversion. Good coverage at every k
//    (including k = 0 and k = n), narrow, and cheap; the default.
//  * Clopper-Pearson — the "exact" tail inversion of the binomial CDF via
//    the regularized incomplete beta function. Guaranteed >= nominal
//    coverage, strictly conservative (wider than Wilson); the choice when
//    a certificate must never under-cover.
//
// All functions are deterministic, std-only, and documented with their
// exact formulas in docs/YIELD.md (the statistical contract).
#pragma once

#include <cstdint>

namespace pnc::yield {

/// Two-sided confidence interval on a binomial proportion.
struct BinomialInterval {
    double lo = 0.0;
    double hi = 1.0;

    double width() const { return hi - lo; }
};

enum class CiMethod {
    kWilson,          ///< Wilson score interval (default)
    kClopperPearson,  ///< exact beta-quantile tail inversion
};

/// "wilson" / "clopper-pearson" (or "cp") for CLI flags and reports.
const char* ci_method_name(CiMethod method);

/// Inverse standard-normal CDF. p in (0, 1); accurate to ~1e-13 (Acklam's
/// rational approximation refined with one Halley step on std::erfc).
double normal_quantile(double p);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0, x in
/// [0, 1] (Lentz continued fraction, NR-style symmetry split).
double regularized_incomplete_beta(double a, double b, double x);

/// Inverse of I_x(a, b) in x: smallest x with I_x(a, b) >= p, resolved by
/// bisection to ~1e-14 (deterministic iteration count, no tolerance races).
double beta_quantile(double a, double b, double p);

/// Wilson score interval for k successes of n at the given two-sided
/// confidence (e.g. 0.95). n >= 1; throws std::invalid_argument otherwise.
BinomialInterval wilson_interval(std::uint64_t k, std::uint64_t n, double confidence);

/// Clopper-Pearson interval: lo = B^{-1}(alpha/2; k, n-k+1) (0 when k = 0),
/// hi = B^{-1}(1 - alpha/2; k+1, n-k) (1 when k = n).
BinomialInterval clopper_pearson_interval(std::uint64_t k, std::uint64_t n,
                                          double confidence);

/// Dispatch on `method`.
BinomialInterval binomial_interval(CiMethod method, std::uint64_t k, std::uint64_t n,
                                   double confidence);

/// Wald-type interval on the *difference* of two paired proportions
/// (common-random-number comparisons): delta = (n10 - n01) / n with
/// n10/n01 the discordant pair counts. Clamped to [-1, 1].
BinomialInterval paired_delta_interval(std::uint64_t n10, std::uint64_t n01,
                                       std::uint64_t n, double confidence);

}  // namespace pnc::yield
