#include "yield/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "circuit/variation.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/counters.hpp"
#include "runtime/thread_pool.hpp"

namespace pnc::yield {

using math::Matrix;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Accuracy of a sample that classified k of `test_rows` rows correctly.
/// This is the reference reduction's exact expression
/// (static_cast<double>(correct) / static_cast<double>(labels.size()) in
/// ad::accuracy) — the bridge between histograms and the bit-identity
/// contract, so it must never be "simplified".
double accuracy_value(std::uint64_t k, std::size_t test_rows) {
    return static_cast<double>(k) / static_cast<double>(test_rows);
}

std::uint64_t histogram_passing(const std::vector<std::uint64_t>& histogram,
                                std::size_t test_rows, double accuracy_spec) {
    std::uint64_t passing = 0;
    for (std::size_t k = 0; k < histogram.size(); ++k)
        if (accuracy_value(k, test_rows) >= accuracy_spec) passing += histogram[k];
    return passing;
}

/// The `idx`-th smallest sample accuracy (0-based order statistic) of a
/// correct-count histogram. Equivalent to sorted_accuracies[idx] in the
/// reference path: k / R is strictly increasing in k, so sorting the
/// accuracy vector is sorting by k.
double order_statistic(const std::vector<std::uint64_t>& histogram, std::size_t test_rows,
                       std::uint64_t idx) {
    std::uint64_t seen = 0;
    for (std::size_t k = 0; k < histogram.size(); ++k) {
        seen += histogram[k];
        if (seen > idx) return accuracy_value(k, test_rows);
    }
    throw std::logic_error("yield: order statistic beyond histogram population");
}

/// All estimate fields from one lossless histogram. Every accuracy
/// statistic replicates the reference reduction formulas exactly
/// (pnn::estimate_yield over a sorted accuracy vector + math::median).
YieldEstimate estimate_from_histogram(const std::vector<std::uint64_t>& histogram,
                                      std::size_t test_rows,
                                      const YieldCampaignOptions& options) {
    std::uint64_t n = 0;
    std::uint64_t total_correct = 0;
    for (std::size_t k = 0; k < histogram.size(); ++k) {
        n += histogram[k];
        total_correct += histogram[k] * static_cast<std::uint64_t>(k);
    }
    if (n == 0) throw std::invalid_argument("yield: estimate over zero samples");

    YieldEstimate estimate;
    estimate.n_samples = n;
    estimate.n_passing = histogram_passing(histogram, test_rows, options.accuracy_spec);
    // ref: static_cast<double>(passing) / static_cast<double>(n_mc)
    estimate.yield =
        static_cast<double>(estimate.n_passing) / static_cast<double>(n);
    estimate.method = options.method;
    estimate.confidence = options.confidence;
    const BinomialInterval interval =
        binomial_interval(options.method, estimate.n_passing, n, options.confidence);
    estimate.ci_lo = interval.lo;
    estimate.ci_hi = interval.hi;

    estimate.mean_accuracy = static_cast<double>(total_correct) /
                             static_cast<double>(n * static_cast<std::uint64_t>(test_rows));
    // ref: accuracies.front() after the sort.
    estimate.worst_accuracy = order_statistic(histogram, test_rows, 0);
    // ref: accuracies[static_cast<std::size_t>(0.05 * (n_mc - 1))].
    estimate.p5_accuracy = order_statistic(
        histogram, test_rows,
        static_cast<std::uint64_t>(0.05 * static_cast<double>(n - 1)));
    // ref: math::median — v[n/2] for odd n, else 0.5 * (v[n/2 - 1] + v[n/2]).
    estimate.median_accuracy =
        n % 2 ? order_statistic(histogram, test_rows, n / 2)
              : 0.5 * (order_statistic(histogram, test_rows, n / 2 - 1) +
                       order_statistic(histogram, test_rows, n / 2));
    return estimate;
}

bool stop_rule_active(const YieldCampaignOptions& options) {
    return options.mode == CampaignMode::kStatistical && options.ci_width > 0.0;
}

void apply_stratum(pnn::NetworkVariation& variation, std::uint64_t stratum,
                   std::uint64_t strata, double eps) {
    if (eps == 0.0 || variation.empty() || variation.front().theta_in.size() == 0) return;
    // Recover the underlying uniform of the first crossbar factor of layer
    // 0 and remap it into the stratum's equal-width sub-interval of
    // [1 - eps, 1 + eps]. With equal allocation across strata the union of
    // the remapped draws has the original U[1 - eps, 1 + eps] law, so the
    // estimator stays unbiased; the CI ignores the variance gain, which
    // only makes the reported interval conservative.
    double& factor = variation.front().theta_in[0];
    const double lo = 1.0 - eps;
    const double u = (factor - lo) / (2.0 * eps);
    factor = lo + 2.0 * eps *
                      ((static_cast<double>(stratum) + u) / static_cast<double>(strata));
}

Matrix reflect_factors(const Matrix& factors) {
    Matrix mirrored(factors.rows(), factors.cols());
    for (std::size_t i = 0; i < factors.size(); ++i) mirrored[i] = 2.0 - factors[i];
    return mirrored;
}

void validate_common(const Matrix& x, const std::vector<int>& y,
                     const YieldCampaignOptions& options, const char* what) {
    const std::string where(what);
    if (y.size() != x.rows())
        throw std::invalid_argument(where + ": labels/rows mismatch");
    if (x.rows() == 0) throw std::invalid_argument(where + ": needs at least one test row");
    if (options.n_samples < 2)
        throw std::invalid_argument(where + ": n_samples must be >= 2");
    if (options.round_size == 0)
        throw std::invalid_argument(where + ": round_size must be >= 1");
    if (options.strata == 0)
        throw std::invalid_argument(where + ": strata must be >= 1");
    if (options.shard.count == 0 || options.shard.index >= options.shard.count)
        throw std::invalid_argument(where + ": shard index must be < shard count");
}

/// Sum per-chunk partial histograms in chunk order. Integer addition, so
/// the result is independent of which thread produced which partial.
void accumulate_histograms(const std::vector<std::vector<std::uint64_t>>& partials,
                           std::vector<std::uint64_t>& total) {
    for (const auto& partial : partials)
        for (std::size_t k = 0; k < total.size(); ++k) total[k] += partial[k];
}

}  // namespace

const char* campaign_mode_name(CampaignMode mode) {
    return mode == CampaignMode::kFixed ? "fixed" : "statistical";
}

pnn::NetworkVariation mirror_variation(const pnn::NetworkVariation& variation) {
    pnn::NetworkVariation mirrored;
    mirrored.reserve(variation.size());
    for (const pnn::LayerVariation& layer : variation) {
        pnn::LayerVariation m;
        m.theta_in = reflect_factors(layer.theta_in);
        m.theta_bias = reflect_factors(layer.theta_bias);
        m.theta_drain = reflect_factors(layer.theta_drain);
        m.omega_act = reflect_factors(layer.omega_act);
        m.omega_neg = reflect_factors(layer.omega_neg);
        mirrored.push_back(std::move(m));
    }
    return mirrored;
}

YieldEstimate finalize_rounds(std::vector<YieldRound>& rounds, std::size_t test_rows,
                              const YieldCampaignOptions& options) {
    if (rounds.empty()) throw std::invalid_argument("yield: no rounds to finalize");
    std::vector<std::uint64_t> cumulative(test_rows + 1, 0);
    std::uint64_t cum_n = 0;
    std::uint64_t cum_passing = 0;
    std::size_t used = rounds.size();
    bool target_reached = false;
    for (std::size_t r = 0; r < rounds.size(); ++r) {
        const YieldRound& round = rounds[r];
        if (round.histogram.size() != test_rows + 1)
            throw std::invalid_argument("yield: round histogram size mismatch");
        for (std::size_t k = 0; k <= test_rows; ++k) cumulative[k] += round.histogram[k];
        cum_n += round.n;
        cum_passing += histogram_passing(round.histogram, test_rows, options.accuracy_spec);
        if (stop_rule_active(options) && cum_n > 0) {
            const BinomialInterval interval =
                binomial_interval(options.method, cum_passing, cum_n, options.confidence);
            if (interval.width() <= options.ci_width) {
                used = r + 1;
                target_reached = true;
                break;
            }
        }
    }
    // `cumulative` holds exactly rounds [0, used): the break fires before
    // any later round is folded in.
    rounds.resize(used);
    YieldEstimate estimate = estimate_from_histogram(cumulative, test_rows, options);
    estimate.rounds_used = used;
    estimate.target_reached = target_reached;
    return estimate;
}

YieldCampaignResult run_yield_campaign(const infer::CompiledPnn& engine, const Matrix& x,
                                       const std::vector<int>& y,
                                       const YieldCampaignOptions& options) {
    validate_common(x, y, options, "run_yield_campaign");
    if (options.mode == CampaignMode::kFixed) {
        if (options.antithetic || options.strata > 1)
            throw std::invalid_argument(
                "run_yield_campaign: antithetic/stratified sampling changes the sampled "
                "points and requires statistical mode (fixed mode is the bit-identity "
                "contract)");
        if (options.ci_width > 0.0)
            throw std::invalid_argument(
                "run_yield_campaign: adaptive stopping (ci_width) requires statistical mode");
    }
    if (options.antithetic && options.n_samples % 2 != 0)
        throw std::invalid_argument(
            "run_yield_campaign: antithetic pairs need an even sample budget");
    const std::uint64_t per_unit = options.antithetic ? 2 : 1;
    const std::uint64_t total_units = options.n_samples / per_unit;
    if (options.strata > 1 && total_units % options.strata != 0)
        throw std::invalid_argument(
            "run_yield_campaign: sample budget must split evenly across strata");

    obs::ScopedTimer campaign_span("yield.campaign");
    const bool instrumented = obs::enabled() && !options.metric_prefix.empty();
    obs::Histogram* round_hist = nullptr;
    obs::Counter* samples_total = nullptr;
    obs::Counter* rounds_total = nullptr;
    if (instrumented) {
        auto& registry = obs::MetricsRegistry::global();
        round_hist = &registry.histogram(options.metric_prefix + ".round_seconds");
        samples_total = &registry.counter(options.metric_prefix + ".samples_total");
        rounds_total = &registry.counter(options.metric_prefix + ".rounds_total");
    }
    const auto campaign_start = Clock::now();

    const circuit::VariationModel model(options.epsilon);
    const std::size_t test_rows = x.rows();
    const std::uint64_t units_per_round =
        std::max<std::uint64_t>(1, options.round_size / per_unit);
    const std::uint64_t n_rounds = (total_units + units_per_round - 1) / units_per_round;
    math::Rng parent(options.seed);

    YieldCampaignResult result;
    result.test_rows = test_rows;
    std::uint64_t cum_n = 0;
    std::uint64_t cum_passing = 0;

    for (std::uint64_t r = 0; r < n_rounds; ++r) {
        const auto round_start = Clock::now();
        // Kernel cost attribution (src/prof): one tally per campaign round,
        // rows = realizations evaluated x test rows (the per-forward FLOP
        // detail is attributed by the engine's own infer.forward_rows
        // kernel). Armed only by a profiling session.
        prof::KernelScope round_kernel(prof::Kernel::kYieldRound);
        const std::uint64_t unit_lo = r * units_per_round;
        const std::uint64_t unit_hi = std::min(total_units, unit_lo + units_per_round);
        const auto round_units = static_cast<std::size_t>(unit_hi - unit_lo);
        const auto [slice_lo, slice_hi] = runtime::ThreadPool::chunk_bounds(
            round_units, options.shard.count, options.shard.index);

        // Materialize only this round's owned streams. The parent is
        // advanced past every unit of the round — owned or not — with one
        // split() each, so stream u is the same Rng the reference path's
        // split_n would have produced for global sample index u, at O(round)
        // instead of O(campaign) memory.
        std::vector<math::Rng> streams;
        streams.reserve(slice_hi - slice_lo);
        for (std::size_t u = 0; u < round_units; ++u) {
            math::Rng stream = parent.split();
            if (u >= slice_lo && u < slice_hi) streams.push_back(stream);
        }

        YieldRound round;
        round.histogram.assign(test_rows + 1, 0);
        const std::size_t owned = streams.size();
        if (owned > 0) {
            const std::size_t chunks = runtime::global_chunk_count(owned);
            std::vector<std::vector<std::uint64_t>> partials(
                chunks, std::vector<std::uint64_t>(test_rows + 1, 0));
            const std::uint64_t first_unit = unit_lo + slice_lo;
            runtime::parallel_ranges(owned, [&](std::size_t chunk, std::size_t lo,
                                                std::size_t hi) {
                Matrix scratch(x.rows(), engine.plan().n_outputs());
                std::vector<std::uint64_t>& hist = partials[chunk];
                for (std::size_t i = lo; i < hi; ++i) {
                    pnn::NetworkVariation variation =
                        engine.sample_variation(model, streams[i]);
                    if (options.strata > 1)
                        apply_stratum(variation, (first_unit + i) % options.strata,
                                      options.strata, options.epsilon);
                    ++hist[engine.correct_count(x, y, &variation, nullptr, scratch)];
                    if (options.antithetic) {
                        const pnn::NetworkVariation mirrored = mirror_variation(variation);
                        ++hist[engine.correct_count(x, y, &mirrored, nullptr, scratch)];
                    }
                }
            });
            accumulate_histograms(partials, round.histogram);
        }
        round.n = static_cast<std::uint64_t>(owned) * per_unit;
        round_kernel.add(round.n * static_cast<std::uint64_t>(test_rows), 0, 0);
        cum_n += round.n;
        cum_passing +=
            histogram_passing(round.histogram, test_rows, options.accuracy_spec);
        result.rounds.push_back(std::move(round));

        // The online stop decision below evaluates the same cumulative
        // interval finalize_rounds replays, so the executed prefix is
        // exactly the finalized prefix. Sharded runs never stop early: no
        // shard sees the campaign-wide counts, so the rule moves to
        // `pnc yield merge`.
        bool stop = false;
        double width = 0.0;
        const bool check_stop =
            !options.shard.is_sharded() && stop_rule_active(options) && cum_n > 0;
        if (check_stop) {
            const BinomialInterval interval = binomial_interval(
                options.method, cum_passing, cum_n, options.confidence);
            width = interval.width();
            stop = width <= options.ci_width;
        }

        if (round_hist) round_hist->observe(seconds_since(round_start));
        if (samples_total) samples_total->add(result.rounds.back().n);
        if (rounds_total) rounds_total->add(1);
        if (obs::events_active()) {
            std::vector<obs::EventField> fields = {
                obs::EventField::num("round", static_cast<double>(r)),
                obs::EventField::num("round_n",
                                     static_cast<double>(result.rounds.back().n)),
                obs::EventField::num("n", static_cast<double>(cum_n)),
                obs::EventField::num("passing", static_cast<double>(cum_passing)),
            };
            if (check_stop) fields.push_back(obs::EventField::num("ci_width", width));
            obs::emit_event("yield.round", fields);
        }
        if (stop) break;
    }

    {
        // Shards report their partial estimate with the stop rule disabled
        // (they executed every round); the single-process path replays the
        // rule, which truncates nothing beyond what the loop already ran.
        YieldCampaignOptions finalize_options = options;
        if (options.shard.is_sharded()) finalize_options.ci_width = 0.0;
        result.estimate = finalize_rounds(result.rounds, test_rows, finalize_options);
    }

    if (instrumented) {
        auto& registry = obs::MetricsRegistry::global();
        registry.gauge(options.metric_prefix + ".estimate").set(result.estimate.yield);
        registry.gauge(options.metric_prefix + ".ci_width")
            .set(result.estimate.ci_width());
        const double wall = seconds_since(campaign_start);
        if (wall > 0.0)
            registry.gauge(options.metric_prefix + ".samples_per_sec")
                .set(static_cast<double>(cum_n) / wall);
    }
    if (obs::events_active())
        obs::emit_event(
            "yield.finish",
            {obs::EventField::num("n", static_cast<double>(result.estimate.n_samples)),
             obs::EventField::num("passing",
                                  static_cast<double>(result.estimate.n_passing)),
             obs::EventField::num("yield", result.estimate.yield),
             obs::EventField::num("ci_lo", result.estimate.ci_lo),
             obs::EventField::num("ci_hi", result.estimate.ci_hi),
             obs::EventField::str("mode", campaign_mode_name(options.mode))});
    return result;
}

PairedYieldResult compare_yield(const infer::CompiledPnn& a, const infer::CompiledPnn& b,
                                const Matrix& x, const std::vector<int>& y,
                                const YieldCampaignOptions& options) {
    validate_common(x, y, options, "compare_yield");
    if (options.antithetic || options.strata > 1)
        throw std::invalid_argument(
            "compare_yield: CRN pairing is the variance reduction here; antithetic/strata "
            "are not supported");
    if (options.shard.is_sharded())
        throw std::invalid_argument("compare_yield: sharding is not supported");
    const faults::NetworkShape shape_a = a.fault_shape();
    const faults::NetworkShape shape_b = b.fault_shape();
    bool same_shape = shape_a.size() == shape_b.size();
    for (std::size_t l = 0; same_shape && l < shape_a.size(); ++l)
        same_shape = shape_a[l].n_in == shape_b[l].n_in &&
                     shape_a[l].n_out == shape_b[l].n_out &&
                     shape_a[l].has_activation == shape_b[l].has_activation;
    if (!same_shape)
        throw std::invalid_argument(
            "compare_yield: common random numbers need matching layer geometry");

    obs::ScopedTimer compare_span("yield.compare");
    const auto start = Clock::now();
    const circuit::VariationModel model(options.epsilon);
    const std::size_t test_rows = x.rows();
    const auto n = static_cast<std::size_t>(options.n_samples);

    // One pre-split stream per sample, one variation draw per stream,
    // evaluated by *both* designs: the common-random-numbers coupling.
    math::Rng parent(options.seed);
    std::vector<math::Rng> streams = parent.split_n(n);

    struct Partial {
        std::vector<std::uint64_t> hist_a;
        std::vector<std::uint64_t> hist_b;
        std::uint64_t n10 = 0;
        std::uint64_t n01 = 0;
    };
    const std::size_t chunks = runtime::global_chunk_count(n);
    std::vector<Partial> partials(chunks);
    for (Partial& partial : partials) {
        partial.hist_a.assign(test_rows + 1, 0);
        partial.hist_b.assign(test_rows + 1, 0);
    }
    runtime::parallel_ranges(n, [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        Partial& partial = partials[chunk];
        Matrix scratch_a(x.rows(), a.plan().n_outputs());
        Matrix scratch_b(x.rows(), b.plan().n_outputs());
        for (std::size_t i = lo; i < hi; ++i) {
            const pnn::NetworkVariation variation = a.sample_variation(model, streams[i]);
            const std::uint64_t ka = a.correct_count(x, y, &variation, nullptr, scratch_a);
            const std::uint64_t kb = b.correct_count(x, y, &variation, nullptr, scratch_b);
            ++partial.hist_a[ka];
            ++partial.hist_b[kb];
            const bool pass_a = accuracy_value(ka, test_rows) >= options.accuracy_spec;
            const bool pass_b = accuracy_value(kb, test_rows) >= options.accuracy_spec;
            partial.n10 += pass_a && !pass_b;
            partial.n01 += !pass_a && pass_b;
        }
    });

    std::vector<std::uint64_t> hist_a(test_rows + 1, 0);
    std::vector<std::uint64_t> hist_b(test_rows + 1, 0);
    PairedYieldResult result;
    for (const Partial& partial : partials) {
        for (std::size_t k = 0; k <= test_rows; ++k) {
            hist_a[k] += partial.hist_a[k];
            hist_b[k] += partial.hist_b[k];
        }
        result.n10 += partial.n10;
        result.n01 += partial.n01;
    }
    result.n_samples = options.n_samples;
    result.a = estimate_from_histogram(hist_a, test_rows, options);
    result.b = estimate_from_histogram(hist_b, test_rows, options);
    result.delta = (static_cast<double>(result.n10) - static_cast<double>(result.n01)) /
                   static_cast<double>(options.n_samples);
    result.delta_ci = paired_delta_interval(result.n10, result.n01, options.n_samples,
                                            options.confidence);

    if (obs::enabled() && !options.metric_prefix.empty()) {
        auto& registry = obs::MetricsRegistry::global();
        registry.counter(options.metric_prefix + ".samples_total").add(2 * n);
        registry.gauge(options.metric_prefix + ".delta").set(result.delta);
        const double wall = seconds_since(start);
        if (wall > 0.0)
            registry.gauge(options.metric_prefix + ".samples_per_sec")
                .set(static_cast<double>(2 * n) / wall);
    }
    if (obs::events_active())
        obs::emit_event("yield.compare",
                        {obs::EventField::num("n", static_cast<double>(options.n_samples)),
                         obs::EventField::num("delta", result.delta),
                         obs::EventField::num("n10", static_cast<double>(result.n10)),
                         obs::EventField::num("n01", static_cast<double>(result.n01))});
    return result;
}

}  // namespace pnc::yield
