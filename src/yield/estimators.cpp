#include "yield/estimators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace pnc::yield {

namespace {

void require_confidence(double confidence) {
    if (!(confidence > 0.0) || !(confidence < 1.0))
        throw std::invalid_argument("confidence must be in (0, 1), got " +
                                    std::to_string(confidence));
}

void require_counts(std::uint64_t k, std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("binomial interval needs n >= 1");
    if (k > n)
        throw std::invalid_argument("binomial interval needs k <= n, got k = " +
                                    std::to_string(k) + ", n = " + std::to_string(n));
}

/// Continued fraction for the incomplete beta function (Numerical-Recipes
/// style modified Lentz). Converges quickly for x < (a + 1) / (a + b + 2).
double beta_continued_fraction(double a, double b, double x) {
    constexpr int kMaxIter = 300;
    constexpr double kTiny = 1e-300;
    constexpr double kEps = 1e-16;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::abs(d) < kTiny) d = kTiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIter; ++m) {
        const double m2 = 2.0 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < kTiny) d = kTiny;
        c = 1.0 + aa / c;
        if (std::abs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < kTiny) d = kTiny;
        c = 1.0 + aa / c;
        if (std::abs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < kEps) break;
    }
    return h;
}

}  // namespace

const char* ci_method_name(CiMethod method) {
    return method == CiMethod::kClopperPearson ? "clopper-pearson" : "wilson";
}

double normal_quantile(double p) {
    if (!(p > 0.0) || !(p < 1.0))
        throw std::invalid_argument("normal_quantile needs p in (0, 1), got " +
                                    std::to_string(p));
    // Acklam's rational approximation (relative error < 1.15e-9)...
    static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                   -2.759285104469687e+02, 1.383577518672690e+02,
                                   -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                   -1.556989798598866e+02, 6.680131188771972e+01,
                                   -1.328068155288572e+01};
    static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                   -2.400758277161838e+00, -2.549732539343734e+00,
                                   4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                   2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double p_low = 0.02425;
    double x;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    // ...then one Halley step against the exact CDF (erfc), pushing the
    // error to the order of double rounding.
    const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
    const double u = e * std::sqrt(2.0 * std::acos(-1.0)) * std::exp(x * x / 2.0);
    x = x - u / (1.0 + x * u / 2.0);
    return x;
}

double regularized_incomplete_beta(double a, double b, double x) {
    if (!(a > 0.0) || !(b > 0.0))
        throw std::invalid_argument("regularized_incomplete_beta needs a, b > 0");
    if (!(x >= 0.0) || !(x <= 1.0))
        throw std::invalid_argument("regularized_incomplete_beta needs x in [0, 1]");
    if (x == 0.0) return 0.0;
    if (x == 1.0) return 1.0;
    const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                            a * std::log(x) + b * std::log1p(-x);
    const double front = std::exp(ln_front);
    // Use the continued fraction on whichever side converges fast; the
    // other side follows from I_x(a, b) = 1 - I_{1-x}(b, a).
    if (x < (a + 1.0) / (a + b + 2.0)) return front * beta_continued_fraction(a, b, x) / a;
    return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double beta_quantile(double a, double b, double p) {
    if (!(p >= 0.0) || !(p <= 1.0))
        throw std::invalid_argument("beta_quantile needs p in [0, 1]");
    if (p == 0.0) return 0.0;
    if (p == 1.0) return 1.0;
    // Plain bisection with a fixed iteration count: deterministic, immune
    // to the continued fraction's flat spots, and 200 halvings put the
    // bracket far below double resolution.
    double lo = 0.0, hi = 1.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (mid == lo || mid == hi) break;
        if (regularized_incomplete_beta(a, b, mid) < p)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

BinomialInterval wilson_interval(std::uint64_t k, std::uint64_t n, double confidence) {
    require_counts(k, n);
    require_confidence(confidence);
    const double z = normal_quantile(0.5 + confidence / 2.0);
    const double z2 = z * z;
    const double nd = static_cast<double>(n);
    const double p_hat = static_cast<double>(k) / nd;
    const double denom = 1.0 + z2 / nd;
    const double center = (p_hat + z2 / (2.0 * nd)) / denom;
    const double half =
        z / denom * std::sqrt(p_hat * (1.0 - p_hat) / nd + z2 / (4.0 * nd * nd));
    BinomialInterval interval;
    // At the degenerate ends the score bound touches 0 (or 1) exactly; pin
    // it there rather than leaving the FP residue of center - half.
    interval.lo = k == 0 ? 0.0 : std::max(0.0, center - half);
    interval.hi = k == n ? 1.0 : std::min(1.0, center + half);
    return interval;
}

BinomialInterval clopper_pearson_interval(std::uint64_t k, std::uint64_t n,
                                          double confidence) {
    require_counts(k, n);
    require_confidence(confidence);
    const double alpha = 1.0 - confidence;
    const double kd = static_cast<double>(k);
    const double nd = static_cast<double>(n);
    BinomialInterval interval;
    interval.lo = k == 0 ? 0.0 : beta_quantile(kd, nd - kd + 1.0, alpha / 2.0);
    interval.hi = k == n ? 1.0 : beta_quantile(kd + 1.0, nd - kd, 1.0 - alpha / 2.0);
    return interval;
}

BinomialInterval binomial_interval(CiMethod method, std::uint64_t k, std::uint64_t n,
                                   double confidence) {
    return method == CiMethod::kClopperPearson
               ? clopper_pearson_interval(k, n, confidence)
               : wilson_interval(k, n, confidence);
}

BinomialInterval paired_delta_interval(std::uint64_t n10, std::uint64_t n01,
                                       std::uint64_t n, double confidence) {
    if (n == 0) throw std::invalid_argument("paired_delta_interval needs n >= 1");
    if (n10 + n01 > n)
        throw std::invalid_argument("paired_delta_interval: discordant count exceeds n");
    require_confidence(confidence);
    const double z = normal_quantile(0.5 + confidence / 2.0);
    const double nd = static_cast<double>(n);
    const double delta = (static_cast<double>(n10) - static_cast<double>(n01)) / nd;
    // Paired (matched) variance: only discordant pairs move the difference.
    const double var =
        ((static_cast<double>(n10) + static_cast<double>(n01)) / nd - delta * delta) / nd;
    const double half = z * std::sqrt(std::max(0.0, var));
    BinomialInterval interval;
    interval.lo = std::max(-1.0, delta - half);
    interval.hi = std::min(1.0, delta + half);
    return interval;
}

}  // namespace pnc::yield
