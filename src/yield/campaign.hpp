// Large-scale Monte-Carlo yield campaigns on the compiled engine.
//
// pnn::estimate_yield answers "what fraction of printed copies clear the
// spec?" with a few hundred samples; this module scales the same question
// to 10^6-10^7 samples and attaches a statistical contract to the answer.
// Two modes (docs/YIELD.md is the authoritative contract):
//
//  * fixed-N — bit-identical to pnn::estimate_yield at the same
//    (spec, eps, n, seed): same stream split order, same per-sample draw
//    order, same reduction formulas. Test-enforced by tests/test_yield.cpp
//    via the PR-6 differential-harness pattern. Variance reduction is
//    rejected in this mode (it changes the sampled points by design).
//  * statistical — guarantees only the *reported confidence interval*:
//    the campaign runs in rounds and may stop early once the CI on yield
//    is narrower than --ci-width, and may reshape sampling with antithetic
//    pairs or stratification.
//
// The memory story is what lets fixed-N reach 10^7 where the reference
// path cannot: instead of materializing one Rng and one accuracy per
// sample, the campaign materializes one *round* of streams at a time and
// reduces each round into a correct-count histogram. Accuracy over R test
// rows takes only the R + 1 values k / R, so the histogram is a lossless
// representation of the sample distribution — every statistic the
// reference path computes from its sorted accuracy vector is recomputed
// from the histogram with the reference's exact formulas, and histograms
// from different shards merge by integer addition without losing a bit.
//
// Sharding: a campaign may be split across processes with --shard i/N.
// Every shard walks the *same* global round structure and takes its
// chunk_bounds slice of every round (advancing the parent stream past
// units it does not own), so summing shard round histograms reproduces the
// single-process round histograms exactly; `pnc yield merge` then replays
// the adaptive stop rule on the merged rounds via the same finalize_rounds
// used online, making the merged report byte-identical to the equivalent
// single-process run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "infer/engine.hpp"
#include "yield/estimators.hpp"

namespace pnc::yield {

/// Which slice of each global round this process evaluates. {0, 1} is the
/// unsharded whole-campaign default.
struct ShardSpec {
    std::size_t index = 0;
    std::size_t count = 1;

    bool is_sharded() const { return count > 1; }
};

enum class CampaignMode {
    kFixed,        ///< full budget, bit-identical to pnn::estimate_yield
    kStatistical,  ///< CI-driven: adaptive stopping + variance reduction
};

/// "fixed" / "statistical" for CLI flags and reports.
const char* campaign_mode_name(CampaignMode mode);

struct YieldCampaignOptions {
    double accuracy_spec = 0.8;  ///< a copy passes iff accuracy >= spec
    double epsilon = 0.1;        ///< variation half-width (VariationModel)
    std::uint64_t n_samples = 200;  ///< sample budget (exact count in fixed mode)
    CampaignMode mode = CampaignMode::kStatistical;
    CiMethod method = CiMethod::kWilson;
    double confidence = 0.95;
    /// Statistical mode stops once the CI width drops to this value
    /// (0 disables early stopping and the full budget runs).
    double ci_width = 0.0;
    std::uint64_t round_size = 4096;  ///< samples per adaptive round
    /// Antithetic pairs: each stream draws one variation V and also
    /// evaluates its mirror (every factor f -> 2 - f), so a "unit" costs
    /// two samples and the pair's factor means are exactly nominal.
    bool antithetic = false;
    /// Stratified epsilon-corner sampling: unit u belongs to stratum
    /// u % strata, which remaps the first crossbar factor of layer 0 into
    /// the stratum's equal-width sub-interval of [1 - eps, 1 + eps].
    /// Equal allocation (n units divisible by strata) keeps the estimator
    /// unbiased; 1 disables.
    std::uint64_t strata = 1;
    std::uint64_t seed = 777;
    ShardSpec shard;
    /// Metric prefix for obs instrumentation ("" disables the campaign's
    /// own telemetry even when obs is enabled).
    std::string metric_prefix = "yield";
};

/// One adaptive round's lossless reduction: `histogram[k]` counts samples
/// that classified exactly k of the R test rows correctly (size R + 1).
/// In a sharded run the counts cover only this shard's slice of the round.
struct YieldRound {
    std::uint64_t n = 0;
    std::vector<std::uint64_t> histogram;
};

/// The certified answer. Accuracy statistics replicate the exact
/// reduction formulas of pnn::YieldResult (bit-identity contract).
struct YieldEstimate {
    std::uint64_t n_samples = 0;  ///< samples actually consumed
    std::uint64_t n_passing = 0;
    double yield = 0.0;
    double ci_lo = 0.0;
    double ci_hi = 1.0;
    double confidence = 0.95;
    CiMethod method = CiMethod::kWilson;
    /// True when an early-stop target was set and the CI met it.
    bool target_reached = false;
    std::size_t rounds_used = 0;
    double mean_accuracy = 0.0;
    double worst_accuracy = 1.0;
    double p5_accuracy = 0.0;
    double median_accuracy = 0.0;

    double ci_width() const { return ci_hi - ci_lo; }
};

struct YieldCampaignResult {
    /// For sharded runs this is the shard's own partial estimate (no stop
    /// rule applied); the campaign-level answer comes from `pnc yield
    /// merge` over all shard reports.
    YieldEstimate estimate;
    std::vector<YieldRound> rounds;  ///< executed rounds in global order
    std::size_t test_rows = 0;       ///< R; histograms have R + 1 bins
};

/// The antithetic mirror of a variation draw: every multiplicative factor
/// f in [1 - eps, 1 + eps] reflects about nominal to 2 - f, so each
/// (V, mirror(V)) pair averages to exactly the nominal design
/// (test-enforced mean preservation).
pnn::NetworkVariation mirror_variation(const pnn::NetworkVariation& variation);

/// Replay the adaptive stop rule over `rounds` in order, truncate the
/// vector to the rounds actually used, and compute the estimate over that
/// prefix. Shared by the online engine and `pnc yield merge` — the single
/// source of truth that makes a merged report byte-identical to the
/// equivalent single-process run.
YieldEstimate finalize_rounds(std::vector<YieldRound>& rounds, std::size_t test_rows,
                              const YieldCampaignOptions& options);

/// Run a yield campaign on the compiled engine. Deterministic: the result
/// is a pure function of (plan, x, y, options) at any PNC_NUM_THREADS.
YieldCampaignResult run_yield_campaign(const infer::CompiledPnn& engine,
                                       const math::Matrix& x, const std::vector<int>& y,
                                       const YieldCampaignOptions& options);

/// Paired comparison of two designs under common random numbers.
struct PairedYieldResult {
    YieldEstimate a;
    YieldEstimate b;
    double delta = 0.0;  ///< yield(a) - yield(b) = (n10 - n01) / n
    BinomialInterval delta_ci;
    std::uint64_t n10 = 0;  ///< a passes, b fails
    std::uint64_t n01 = 0;  ///< a fails, b passes
    std::uint64_t n_samples = 0;
};

/// Evaluate both compiled designs on the *same* variation draw per stream
/// (common random numbers), so the yield difference is estimated from the
/// discordant pairs alone — orders of magnitude tighter than differencing
/// two independent campaigns. Requires matching layer geometry; always
/// fixed-N (uses options.n_samples, seed, epsilon, spec, confidence,
/// method; rejects antithetic / strata / sharding).
PairedYieldResult compare_yield(const infer::CompiledPnn& a, const infer::CompiledPnn& b,
                                const math::Matrix& x, const std::vector<int>& y,
                                const YieldCampaignOptions& options);

}  // namespace pnc::yield
