// Tabular classification datasets for the pNN benchmarks.
//
// The paper evaluates on 13 small UCI datasets (Table II). Two of them are
// closed-form and reproduced exactly (Balance Scale, Tic-Tac-Toe Endgame);
// the others are deterministic synthetic equivalents matched in feature
// count, class count, sample count and approximate difficulty — see
// DESIGN.md for the substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "math/random.hpp"

namespace pnc::data {

struct Dataset {
    std::string name;
    math::Matrix features;   ///< n x d raw feature values
    std::vector<int> labels; ///< class index per row
    int n_classes = 0;

    std::size_t size() const { return features.rows(); }
    std::size_t n_features() const { return features.cols(); }

    /// Throws std::logic_error when labels/rows mismatch or a label is out
    /// of range — used by tests and the registry self-check.
    void validate() const;
};

/// A 60/20/20 split with features min-max scaled to the input voltage range
/// [0, 1] using training-set statistics (val/test clipped into the range).
struct SplitDataset {
    std::string name;
    int n_classes = 0;
    math::Matrix x_train, x_val, x_test;
    std::vector<int> y_train, y_val, y_test;

    std::size_t n_features() const { return x_train.cols(); }
};

struct SplitFractions {
    double train = 0.6;
    double val = 0.2;  // remainder is test
};

/// Shuffle with `seed`, split, then voltage-normalize.
SplitDataset split_and_normalize(const Dataset& dataset, std::uint64_t seed,
                                 const SplitFractions& fractions = {});

}  // namespace pnc::data
