// Registry of the 13 Table II benchmark datasets.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace pnc::data {

struct DatasetSpec {
    std::string name;          ///< registry key (snake_case)
    std::string display_name;  ///< as printed in Table II
    std::size_t samples;
    std::size_t features;
    int classes;
    bool exact;  ///< bit-exact reproduction of the original dataset
};

/// Specs of all 13 datasets in Table II row order.
const std::vector<DatasetSpec>& benchmark_specs();

/// Instantiate a dataset by registry key. Generators are deterministic:
/// the same key always produces the same data (seeded per dataset).
/// Throws std::invalid_argument for unknown keys.
Dataset make_dataset(const std::string& name);

/// All 13 datasets, Table II order.
std::vector<Dataset> make_all_datasets();

}  // namespace pnc::data
