#include "data/dataset.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace pnc::data {

using math::Matrix;

void Dataset::validate() const {
    if (labels.size() != features.rows())
        throw std::logic_error(name + ": labels/rows mismatch");
    if (n_classes < 2) throw std::logic_error(name + ": need >= 2 classes");
    std::vector<bool> seen(static_cast<std::size_t>(n_classes), false);
    for (int y : labels) {
        if (y < 0 || y >= n_classes) throw std::logic_error(name + ": label out of range");
        seen[static_cast<std::size_t>(y)] = true;
    }
    for (int c = 0; c < n_classes; ++c)
        if (!seen[static_cast<std::size_t>(c)])
            throw std::logic_error(name + ": class " + std::to_string(c) + " has no samples");
}

SplitDataset split_and_normalize(const Dataset& dataset, std::uint64_t seed,
                                 const SplitFractions& fractions) {
    dataset.validate();
    if (fractions.train <= 0.0 || fractions.val < 0.0 ||
        fractions.train + fractions.val >= 1.0)
        throw std::invalid_argument("split_and_normalize: bad fractions");

    math::Rng rng(seed);
    auto idx = math::iota_indices(dataset.size());
    rng.shuffle(idx);

    const auto n = dataset.size();
    const auto n_train = std::max<std::size_t>(
        1, static_cast<std::size_t>(fractions.train * static_cast<double>(n)));
    const auto n_val = std::max<std::size_t>(
        1, static_cast<std::size_t>(fractions.val * static_cast<double>(n)));
    if (n_train + n_val >= n)
        throw std::invalid_argument("split_and_normalize: dataset too small for split");

    const auto take = [&](std::size_t begin, std::size_t end, Matrix& x,
                          std::vector<int>& y) {
        x = Matrix(end - begin, dataset.n_features());
        y.resize(end - begin);
        for (std::size_t r = begin; r < end; ++r) {
            for (std::size_t c = 0; c < dataset.n_features(); ++c)
                x(r - begin, c) = dataset.features(idx[r], c);
            y[r - begin] = dataset.labels[idx[r]];
        }
    };

    SplitDataset split;
    split.name = dataset.name;
    split.n_classes = dataset.n_classes;
    take(0, n_train, split.x_train, split.y_train);
    take(n_train, n_train + n_val, split.x_val, split.y_val);
    take(n_train + n_val, n, split.x_test, split.y_test);

    // Voltage scaling: per-feature min-max from the training split only.
    const std::size_t d = dataset.n_features();
    std::vector<double> lo(d, std::numeric_limits<double>::infinity());
    std::vector<double> hi(d, -std::numeric_limits<double>::infinity());
    for (std::size_t r = 0; r < split.x_train.rows(); ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            lo[c] = std::min(lo[c], split.x_train(r, c));
            hi[c] = std::max(hi[c], split.x_train(r, c));
        }
    }
    const auto scale = [&](Matrix& x) {
        for (std::size_t r = 0; r < x.rows(); ++r) {
            for (std::size_t c = 0; c < d; ++c) {
                const double range = hi[c] - lo[c];
                const double v = range == 0.0 ? 0.5 : (x(r, c) - lo[c]) / range;
                // Inputs are physical voltages: clip into the rail range.
                x(r, c) = std::clamp(v, 0.0, 1.0);
            }
        }
    };
    scale(split.x_train);
    scale(split.x_val);
    scale(split.x_test);
    return split;
}

}  // namespace pnc::data
