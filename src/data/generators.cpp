#include "data/generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace pnc::data {

using math::Matrix;
using math::Rng;

namespace {

/// Gaussian class blob helper: appends `count` rows drawn from
/// N(mean, diag(std^2)) with label `label`.
void append_gaussian_class(std::vector<std::vector<double>>& rows, std::vector<int>& labels,
                           Rng& rng, int label, std::size_t count,
                           const std::vector<double>& mean, const std::vector<double>& std) {
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<double> row(mean.size());
        for (std::size_t c = 0; c < mean.size(); ++c)
            row[c] = rng.normal(mean[c], std[c]);
        rows.push_back(std::move(row));
        labels.push_back(label);
    }
}

Dataset assemble(std::string name, const std::vector<std::vector<double>>& rows,
                 std::vector<int> labels, int n_classes) {
    if (rows.empty()) throw std::logic_error(name + ": no rows generated");
    Dataset ds;
    ds.name = std::move(name);
    ds.features = Matrix(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r)
        for (std::size_t c = 0; c < rows[r].size(); ++c) ds.features(r, c) = rows[r][c];
    ds.labels = std::move(labels);
    ds.n_classes = n_classes;
    ds.validate();
    return ds;
}

}  // namespace

// ---------------------------------------------------------------- acute ----

Dataset make_acute_inflammation(std::uint64_t seed) {
    // 120 patients, 6 features: body temperature plus 5 yes/no symptoms.
    // Diagnosis (inflammation of urinary bladder) follows the published
    // rule structure: urine pushing combined with either micturition pain
    // or urethral burning.
    Rng rng(seed);
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    for (int i = 0; i < 120; ++i) {
        const double nausea = (i / 16) % 2;
        const double lumbar = (i / 8) % 2;
        const double urine_pushing = (i / 4) % 2;
        const double micturition = (i / 2) % 2;
        const double burning = i % 2;
        const double temperature = 35.5 + 6.0 * rng.uniform();
        const bool bladder = urine_pushing > 0.5 && (micturition > 0.5 || burning > 0.5);
        rows.push_back({temperature, nausea, lumbar, urine_pushing, micturition, burning});
        labels.push_back(bladder ? 1 : 0);
    }
    return assemble("acute_inflammation", rows, std::move(labels), 2);
}

// -------------------------------------------------------------- balance ----

Dataset make_balance_scale() {
    // Exact UCI dataset: 5^4 = 625 lever configurations,
    // class = sign(left_weight * left_distance - right_weight * right_distance).
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    for (int lw = 1; lw <= 5; ++lw)
        for (int ld = 1; ld <= 5; ++ld)
            for (int rw = 1; rw <= 5; ++rw)
                for (int rd = 1; rd <= 5; ++rd) {
                    const int torque = lw * ld - rw * rd;
                    const int label = torque > 0 ? 0 : (torque == 0 ? 1 : 2);  // L, B, R
                    rows.push_back({double(lw), double(ld), double(rw), double(rd)});
                    labels.push_back(label);
                }
    return assemble("balance_scale", rows, std::move(labels), 3);
}

// --------------------------------------------------------- breast cancer ----

Dataset make_breast_cancer(std::uint64_t seed) {
    // Wisconsin original (683 complete cases): nine 1..10 cytology scores;
    // benign cases cluster at low scores, malignant spread high.
    Rng rng(seed);
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    const auto draw_case = [&](bool malignant) {
        std::vector<double> row(9);
        for (auto& v : row) {
            const double raw = malignant ? rng.normal(6.8, 2.4) : rng.normal(2.6, 1.3);
            v = std::clamp(std::round(raw), 1.0, 10.0);
        }
        rows.push_back(std::move(row));
        labels.push_back(malignant ? 1 : 0);
    };
    for (int i = 0; i < 444; ++i) draw_case(false);
    for (int i = 0; i < 239; ++i) draw_case(true);
    return assemble("breast_cancer", rows, std::move(labels), 2);
}

// ------------------------------------------------------ cardiotocography ----

Dataset make_cardiotocography(std::uint64_t seed) {
    // 2126 fetal heart traces, 21 features, imbalanced NSP classes
    // (normal 1655 / suspect 295 / pathologic 176). Correlated features via
    // a shared 5-factor loading matrix.
    Rng rng(seed);
    constexpr std::size_t kFeatures = 21;
    constexpr std::size_t kFactors = 5;
    Matrix loading = rng.normal_matrix(kFactors, kFeatures, 0.0, 1.0);
    std::array<std::array<double, kFactors>, 3> class_centers{};
    for (auto& center : class_centers)
        for (auto& v : center) v = rng.normal(0.0, 1.0);
    // Stretch the suspect / pathologic centers away from normal.
    for (std::size_t f = 0; f < kFactors; ++f) {
        class_centers[1][f] = class_centers[0][f] + 1.1 * (class_centers[1][f] - class_centers[0][f]);
        class_centers[2][f] = class_centers[0][f] + 1.9 * (class_centers[2][f] - class_centers[0][f]);
    }
    const std::array<std::size_t, 3> counts = {1655, 295, 176};
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    for (int cls = 0; cls < 3; ++cls) {
        for (std::size_t i = 0; i < counts[static_cast<std::size_t>(cls)]; ++i) {
            std::array<double, kFactors> z{};
            for (std::size_t f = 0; f < kFactors; ++f)
                z[f] = class_centers[static_cast<std::size_t>(cls)][f] + rng.normal(0.0, 0.9);
            std::vector<double> row(kFeatures);
            for (std::size_t c = 0; c < kFeatures; ++c) {
                double v = rng.normal(0.0, 0.4);
                for (std::size_t f = 0; f < kFactors; ++f) v += loading(f, c) * z[f];
                row[c] = v;
            }
            rows.push_back(std::move(row));
            labels.push_back(cls);
        }
    }
    return assemble("cardiotocography", rows, std::move(labels), 3);
}

// ----------------------------------------------------------------- energy ----

namespace {

Dataset make_energy(std::uint64_t seed, bool cooling, const char* name) {
    // 768 = 12 building shapes x 4 orientations x 4 glazing areas x 4
    // glazing distributions (distribution collapsed to 4 to keep 768).
    // Features mirror the UCI grid; the load is a smooth physics-flavoured
    // response binned into tertiles.
    Rng rng(seed);
    const std::array<double, 12> compactness = {0.98, 0.90, 0.86, 0.82, 0.79, 0.76,
                                                0.74, 0.71, 0.69, 0.66, 0.64, 0.62};
    std::vector<std::vector<double>> rows;
    std::vector<double> load;
    for (double c : compactness) {
        const double surface = 500.0 + (0.98 - c) * 850.0;
        const double roof = 110.0 + (0.98 - c) * 310.0;
        const double wall = surface - 2.0 * roof;
        const double height = c >= 0.75 ? 7.0 : 3.5;
        for (int orientation = 2; orientation <= 5; ++orientation) {
            for (double glazing : {0.0, 0.10, 0.25, 0.40}) {
                for (int distribution = 1; distribution <= 4; ++distribution) {
                    rows.push_back({c, surface, wall, roof, height, double(orientation),
                                    glazing, double(distribution)});
                    const double base = cooling
                                            ? 12.0 + 20.0 * (1.0 - c) + 28.0 * glazing +
                                                  0.010 * wall + 1.1 * (height > 5.0)
                                            : 8.0 + 34.0 * (1.0 - c) + 21.0 * glazing +
                                                  0.016 * wall + 2.4 * (height > 5.0);
                    const double orient_effect =
                        (cooling ? 0.5 : 0.3) * std::sin(orientation * 1.3 + distribution);
                    load.push_back(base + orient_effect + rng.normal(0.0, 0.4));
                }
            }
        }
    }
    // Tertile binning into low/medium/high load classes.
    std::vector<double> sorted = load;
    std::sort(sorted.begin(), sorted.end());
    const double t1 = sorted[sorted.size() / 3];
    const double t2 = sorted[2 * sorted.size() / 3];
    std::vector<int> labels;
    labels.reserve(load.size());
    for (double v : load) labels.push_back(v < t1 ? 0 : (v < t2 ? 1 : 2));
    return assemble(name, rows, std::move(labels), 3);
}

}  // namespace

Dataset make_energy_y1(std::uint64_t seed) { return make_energy(seed, false, "energy_y1"); }
Dataset make_energy_y2(std::uint64_t seed) { return make_energy(seed, true, "energy_y2"); }

// -------------------------------------------------------------------- iris ----

Dataset make_iris(std::uint64_t seed) {
    // Gaussian reconstruction with the species statistics of the classic
    // dataset (sepal length/width, petal length/width).
    Rng rng(seed);
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    append_gaussian_class(rows, labels, rng, 0, 50, {5.01, 3.43, 1.46, 0.25},
                          {0.35, 0.38, 0.17, 0.11});
    append_gaussian_class(rows, labels, rng, 1, 50, {5.94, 2.77, 4.26, 1.33},
                          {0.52, 0.31, 0.47, 0.20});
    append_gaussian_class(rows, labels, rng, 2, 50, {6.59, 2.97, 5.55, 2.03},
                          {0.64, 0.32, 0.55, 0.27});
    return assemble("iris", rows, std::move(labels), 3);
}

// ------------------------------------------------------ mammographic mass ----

Dataset make_mammographic_mass(std::uint64_t seed) {
    // 961 screening cases, 5 features (BI-RADS, age, shape, margin,
    // density), 516 benign / 445 malignant with heavy overlap — the paper's
    // accuracies on this set are among the lowest.
    Rng rng(seed);
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    const auto draw_case = [&](bool malignant) {
        const double birads = std::clamp(
            std::round(rng.normal(malignant ? 4.7 : 3.9, 0.8)), 0.0, 6.0);
        const double age = std::clamp(rng.normal(malignant ? 63.0 : 52.0, 14.0), 18.0, 96.0);
        const double shape =
            std::clamp(std::round(rng.normal(malignant ? 3.4 : 2.0, 1.1)), 1.0, 4.0);
        const double margin =
            std::clamp(std::round(rng.normal(malignant ? 3.9 : 1.9, 1.3)), 1.0, 5.0);
        const double density =
            std::clamp(std::round(rng.normal(3.0, 0.45)), 1.0, 4.0);
        rows.push_back({birads, age, shape, margin, density});
        labels.push_back(malignant ? 1 : 0);
    };
    for (int i = 0; i < 516; ++i) draw_case(false);
    for (int i = 0; i < 445; ++i) draw_case(true);
    return assemble("mammographic_mass", rows, std::move(labels), 2);
}

// --------------------------------------------------------------- pendigits ----

Dataset make_pendigits(std::uint64_t seed) {
    // 10992 handwritten digits as 8 resampled (x, y) pen points in a
    // 0..100 box. Prototype polylines per digit plus affine jitter and
    // point noise. Ten classes with three hidden neurons is the paper's
    // hardest setting (baseline accuracy ~0.3).
    Rng rng(seed);
    using Stroke = std::array<std::array<double, 2>, 8>;
    const std::array<Stroke, 10> prototypes = {{
        // 0: oval
        {{{50, 95}, {15, 75}, {10, 40}, {30, 8}, {65, 5}, {90, 35}, {85, 75}, {52, 93}}},
        // 1: vertical stroke
        {{{35, 75}, {50, 95}, {50, 80}, {50, 60}, {50, 45}, {50, 30}, {50, 15}, {50, 2}}},
        // 2: arc then base line
        {{{15, 75}, {40, 95}, {75, 85}, {80, 60}, {50, 40}, {20, 15}, {50, 8}, {90, 6}}},
        // 3: double bump
        {{{20, 90}, {60, 95}, {80, 75}, {50, 55}, {80, 40}, {70, 12}, {35, 4}, {12, 15}}},
        // 4: down, across, tall stroke
        {{{30, 95}, {22, 60}, {20, 45}, {55, 45}, {80, 48}, {65, 75}, {62, 30}, {60, 2}}},
        // 5: top bar, belly
        {{{80, 95}, {30, 93}, {25, 60}, {55, 58}, {82, 40}, {75, 12}, {40, 4}, {15, 12}}},
        // 6: sweep down into loop
        {{{70, 95}, {35, 75}, {18, 45}, {20, 18}, {50, 5}, {75, 18}, {70, 42}, {30, 40}}},
        // 7: bar then diagonal
        {{{12, 90}, {45, 93}, {88, 92}, {70, 65}, {55, 45}, {45, 30}, {38, 15}, {32, 2}}},
        // 8: two loops
        {{{50, 95}, {22, 75}, {48, 55}, {78, 72}, {50, 92}, {20, 25}, {50, 3}, {80, 28}}},
        // 9: loop then tail
        {{{75, 70}, {45, 92}, {22, 70}, {45, 50}, {75, 68}, {72, 40}, {68, 20}, {62, 2}}},
    }};
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    const std::size_t per_class = 10992 / 10;  // 1099, remainder spread below
    for (int digit = 0; digit < 10; ++digit) {
        const std::size_t count = per_class + (digit < 2 ? 1 : 0);  // 10992 total
        for (std::size_t i = 0; i < count; ++i) {
            const double scale = rng.uniform(0.85, 1.1);
            const double dx = rng.uniform(-6.0, 6.0);
            const double dy = rng.uniform(-6.0, 6.0);
            const double shear = rng.uniform(-0.12, 0.12);
            std::vector<double> row(16);
            for (int p = 0; p < 8; ++p) {
                const double px = prototypes[static_cast<std::size_t>(digit)][static_cast<std::size_t>(p)][0];
                const double py = prototypes[static_cast<std::size_t>(digit)][static_cast<std::size_t>(p)][1];
                double x = 50.0 + scale * (px - 50.0) + shear * (py - 50.0) + dx;
                double y = 50.0 + scale * (py - 50.0) + dy;
                x += rng.normal(0.0, 5.0);
                y += rng.normal(0.0, 5.0);
                row[static_cast<std::size_t>(2 * p)] = std::clamp(x, 0.0, 100.0);
                row[static_cast<std::size_t>(2 * p + 1)] = std::clamp(y, 0.0, 100.0);
            }
            rows.push_back(std::move(row));
            labels.push_back(digit);
        }
    }
    return assemble("pendigits", rows, std::move(labels), 10);
}

// ------------------------------------------------------------------- seeds ----

Dataset make_seeds(std::uint64_t seed) {
    // 210 wheat kernels, 7 geometric features, 3 varieties x 70.
    Rng rng(seed);
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    append_gaussian_class(rows, labels, rng, 0, 70,
                          {14.33, 14.29, 0.880, 5.51, 3.24, 2.67, 5.09},
                          {1.22, 0.58, 0.016, 0.23, 0.18, 1.17, 0.26});
    append_gaussian_class(rows, labels, rng, 1, 70,
                          {18.33, 16.14, 0.884, 6.15, 3.68, 3.64, 6.02},
                          {1.44, 0.62, 0.016, 0.27, 0.19, 1.18, 0.25});
    append_gaussian_class(rows, labels, rng, 2, 70,
                          {11.87, 13.25, 0.849, 5.23, 2.85, 4.79, 5.12},
                          {0.72, 0.34, 0.022, 0.14, 0.15, 1.33, 0.16});
    return assemble("seeds", rows, std::move(labels), 3);
}

// -------------------------------------------------------- tic-tac-toe ----

namespace {

/// 0 = blank, 1 = x, 2 = o; returns whether `player` holds a line.
bool has_win(const std::array<int, 9>& board, int player) {
    static constexpr int lines[8][3] = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {0, 3, 6},
                                        {1, 4, 7}, {2, 5, 8}, {0, 4, 8}, {2, 4, 6}};
    for (const auto& line : lines)
        if (board[static_cast<std::size_t>(line[0])] == player &&
            board[static_cast<std::size_t>(line[1])] == player &&
            board[static_cast<std::size_t>(line[2])] == player)
            return true;
    return false;
}

}  // namespace

Dataset make_tictactoe_endgame() {
    // Exact UCI dataset: every legal final board (x moves first); positive
    // class = x has a winning line. Encoding x=1, o=0, blank=0.5.
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    std::array<int, 9> board{};
    for (int code = 0; code < 19683; ++code) {  // 3^9
        int c = code;
        int nx = 0, no = 0;
        for (auto& cell : board) {
            cell = c % 3;
            c /= 3;
            nx += cell == 1;
            no += cell == 2;
        }
        const bool x_wins = has_win(board, 1);
        const bool o_wins = has_win(board, 2);
        if (x_wins && o_wins) continue;
        const bool game_over = x_wins || o_wins || (nx + no == 9);
        if (!game_over) continue;
        if (x_wins && nx != no + 1) continue;  // x just moved
        if (o_wins && nx != no) continue;      // o just moved
        if (!x_wins && !o_wins && !(nx == 5 && no == 4)) continue;  // draw: full board
        std::vector<double> row(9);
        for (std::size_t i = 0; i < 9; ++i)
            row[i] = board[i] == 1 ? 1.0 : (board[i] == 2 ? 0.0 : 0.5);
        rows.push_back(std::move(row));
        labels.push_back(x_wins ? 1 : 0);
    }
    return assemble("tictactoe_endgame", rows, std::move(labels), 2);
}

// ------------------------------------------------------------- vertebral ----

namespace {

void append_vertebral_classes(std::vector<std::vector<double>>& rows,
                              std::vector<int>& labels, Rng& rng, int label_normal,
                              int label_hernia, int label_listhesis) {
    // Biomechanical attributes: pelvic incidence, pelvic tilt, lumbar
    // lordosis, sacral slope, pelvic radius, spondylolisthesis grade.
    append_gaussian_class(rows, labels, rng, label_normal, 100,
                          {51.7, 12.8, 43.5, 38.9, 123.9, 2.2},
                          {12.4, 6.7, 12.3, 9.6, 9.0, 6.3});
    append_gaussian_class(rows, labels, rng, label_hernia, 60,
                          {47.6, 17.4, 35.5, 30.2, 116.5, 2.5},
                          {10.7, 7.0, 9.7, 7.6, 9.3, 5.4});
    append_gaussian_class(rows, labels, rng, label_listhesis, 150,
                          {71.5, 20.7, 64.1, 50.8, 114.5, 51.9},
                          {15.1, 11.5, 16.4, 12.3, 15.6, 40.0});
}

}  // namespace

Dataset make_vertebral_2c(std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    append_vertebral_classes(rows, labels, rng, 0, 1, 1);  // normal vs abnormal
    auto ds = assemble("vertebral_2c", rows, std::move(labels), 2);
    return ds;
}

Dataset make_vertebral_3c(std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;
    append_vertebral_classes(rows, labels, rng, 0, 1, 2);
    return assemble("vertebral_3c", rows, std::move(labels), 3);
}

}  // namespace pnc::data
