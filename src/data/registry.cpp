#include "data/registry.hpp"

#include <stdexcept>

#include "data/generators.hpp"

namespace pnc::data {

const std::vector<DatasetSpec>& benchmark_specs() {
    static const std::vector<DatasetSpec> specs = {
        {"acute_inflammation", "Acute Inflammation", 120, 6, 2, false},
        {"balance_scale", "Balance Scale", 625, 4, 3, true},
        {"breast_cancer", "Breast Cancer Wisconsin", 683, 9, 2, false},
        {"cardiotocography", "Cardiotocography", 2126, 21, 3, false},
        {"energy_y1", "Energy Efficiency (y1)", 768, 8, 3, false},
        {"energy_y2", "Energy Efficiency (y2)", 768, 8, 3, false},
        {"iris", "Iris", 150, 4, 3, false},
        {"mammographic_mass", "Mammographic Mass", 961, 5, 2, false},
        {"pendigits", "Pendigits", 10992, 16, 10, false},
        {"seeds", "Seeds", 210, 7, 3, false},
        {"tictactoe_endgame", "Tic-Tac-Toe Endgame", 958, 9, 2, true},
        {"vertebral_2c", "Vertebral Column (2 cl.)", 310, 6, 2, false},
        {"vertebral_3c", "Vertebral Column (3 cl.)", 310, 6, 3, false},
    };
    return specs;
}

Dataset make_dataset(const std::string& name) {
    // Per-dataset fixed seeds keep every generator deterministic while
    // decorrelating the synthetic datasets from each other.
    if (name == "acute_inflammation") return make_acute_inflammation(101);
    if (name == "balance_scale") return make_balance_scale();
    if (name == "breast_cancer") return make_breast_cancer(103);
    if (name == "cardiotocography") return make_cardiotocography(104);
    if (name == "energy_y1") return make_energy_y1(105);
    if (name == "energy_y2") return make_energy_y2(106);
    if (name == "iris") return make_iris(107);
    if (name == "mammographic_mass") return make_mammographic_mass(108);
    if (name == "pendigits") return make_pendigits(109);
    if (name == "seeds") return make_seeds(110);
    if (name == "tictactoe_endgame") return make_tictactoe_endgame();
    if (name == "vertebral_2c") return make_vertebral_2c(112);
    if (name == "vertebral_3c") return make_vertebral_3c(113);
    throw std::invalid_argument("make_dataset: unknown dataset '" + name + "'");
}

std::vector<Dataset> make_all_datasets() {
    std::vector<Dataset> out;
    out.reserve(benchmark_specs().size());
    for (const auto& spec : benchmark_specs()) out.push_back(make_dataset(spec.name));
    return out;
}

}  // namespace pnc::data
