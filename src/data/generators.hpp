// Generators for the 13 Table II benchmark datasets.
//
// Exact reproductions (closed-form UCI datasets):
//   * balance_scale      — all 625 lever configurations, label by torque
//   * tictactoe_endgame  — exhaustive enumeration of legal final boards
//
// Rule-based reconstruction:
//   * acute_inflammation — the published diagnosis rules over the symptom grid
//
// Deterministic synthetic equivalents (matched n / d / #classes and
// approximate separability):
//   * breast_cancer, cardiotocography, energy_y1, energy_y2, iris,
//     mammographic_mass, pendigits, seeds, vertebral_2c, vertebral_3c
#pragma once

#include "data/dataset.hpp"

namespace pnc::data {

Dataset make_acute_inflammation(std::uint64_t seed);
Dataset make_balance_scale();
Dataset make_breast_cancer(std::uint64_t seed);
Dataset make_cardiotocography(std::uint64_t seed);
Dataset make_energy_y1(std::uint64_t seed);
Dataset make_energy_y2(std::uint64_t seed);
Dataset make_iris(std::uint64_t seed);
Dataset make_mammographic_mass(std::uint64_t seed);
Dataset make_pendigits(std::uint64_t seed);
Dataset make_seeds(std::uint64_t seed);
Dataset make_tictactoe_endgame();
Dataset make_vertebral_2c(std::uint64_t seed);
Dataset make_vertebral_3c(std::uint64_t seed);

}  // namespace pnc::data
