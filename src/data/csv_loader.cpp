#include "data/csv_loader.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace pnc::data {

namespace {

std::vector<std::string> split_line(const std::string& line, char delimiter) {
    std::vector<std::string> cells;
    std::string cell;
    std::stringstream ss(line);
    while (std::getline(ss, cell, delimiter)) {
        // Trim surrounding whitespace.
        const auto begin = cell.find_first_not_of(" \t\r");
        const auto end = cell.find_last_not_of(" \t\r");
        cells.push_back(begin == std::string::npos ? ""
                                                   : cell.substr(begin, end - begin + 1));
    }
    if (!line.empty() && line.back() == delimiter) cells.push_back("");
    return cells;
}

bool parse_double(const std::string& s, double& out) {
    try {
        std::size_t consumed = 0;
        out = std::stod(s, &consumed);
        return consumed == s.size();
    } catch (...) {
        return false;
    }
}

}  // namespace

Dataset load_csv(std::istream& is, const std::string& name, const CsvOptions& options) {
    std::vector<std::vector<double>> rows;
    std::vector<std::string> raw_labels;
    std::string line;
    std::size_t line_number = 0;
    std::size_t expected_cells = 0;

    while (std::getline(is, line)) {
        ++line_number;
        if (line_number == 1 && options.has_header) continue;
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

        const auto cells = split_line(line, options.delimiter);
        if (expected_cells == 0) {
            expected_cells = cells.size();
            if (expected_cells < 2)
                throw std::runtime_error(name + ": need at least one feature and a label");
        } else if (cells.size() != expected_cells) {
            throw std::runtime_error(name + ": ragged row at line " +
                                     std::to_string(line_number));
        }

        const std::size_t label_index =
            options.label_column >= 0
                ? static_cast<std::size_t>(options.label_column)
                : cells.size() - static_cast<std::size_t>(-options.label_column);
        if (label_index >= cells.size())
            throw std::runtime_error(name + ": label column out of range");

        bool missing = false;
        std::vector<double> features;
        features.reserve(cells.size() - 1);
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c == label_index) continue;
            if (cells[c].empty() || cells[c] == options.missing_token) {
                missing = true;
                break;
            }
            double value = 0.0;
            if (!parse_double(cells[c], value))
                throw std::runtime_error(name + ": non-numeric feature '" + cells[c] +
                                         "' at line " + std::to_string(line_number));
            features.push_back(value);
        }
        if (missing) {
            if (options.skip_missing_rows) continue;
            throw std::runtime_error(name + ": missing value at line " +
                                     std::to_string(line_number));
        }
        rows.push_back(std::move(features));
        raw_labels.push_back(cells[label_index]);
    }

    if (rows.empty()) throw std::runtime_error(name + ": no usable rows");

    // Dense class indices in first-appearance order.
    std::map<std::string, int> class_index;
    std::vector<int> labels;
    labels.reserve(raw_labels.size());
    for (const auto& raw : raw_labels) {
        const auto [it, inserted] =
            class_index.try_emplace(raw, static_cast<int>(class_index.size()));
        labels.push_back(it->second);
    }

    Dataset ds;
    ds.name = name;
    ds.features = math::Matrix(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r)
        for (std::size_t c = 0; c < rows[r].size(); ++c) ds.features(r, c) = rows[r][c];
    ds.labels = std::move(labels);
    ds.n_classes = static_cast<int>(class_index.size());
    ds.validate();
    return ds;
}

Dataset load_csv_file(const std::string& path, const std::string& name,
                      const CsvOptions& options) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("load_csv_file: cannot read " + path);
    return load_csv(is, name, options);
}

}  // namespace pnc::data
