// CSV ingestion for user-supplied datasets.
//
// The built-in generators reproduce the Table II benchmarks synthetically;
// when the real UCI files are available, this loader brings them in
// instead. Format: one sample per line, numeric feature columns, the label
// in a configurable column (default: last). Labels may be arbitrary strings
// or numbers — they are mapped to dense class indices in first-appearance
// order. Missing values ('?' or empty cells) either drop the row or abort.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace pnc::data {

struct CsvOptions {
    char delimiter = ',';
    bool has_header = false;
    int label_column = -1;        ///< negative = counted from the end (-1 = last)
    bool skip_missing_rows = true;///< false: throw on '?' / empty cells
    std::string missing_token = "?";
};

/// Parse a CSV stream into a Dataset. Throws std::runtime_error on
/// malformed input (ragged rows, non-numeric features, no usable rows).
Dataset load_csv(std::istream& is, const std::string& name, const CsvOptions& options = {});

/// Convenience: load from a file path.
Dataset load_csv_file(const std::string& path, const std::string& name,
                      const CsvOptions& options = {});

}  // namespace pnc::data
