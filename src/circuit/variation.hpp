// Printing-variation model (Sec. III-C).
//
// Printing variation is driven by the limited printing resolution, so every
// printed value is perturbed by an independent multiplicative factor
// epsilon' ~ U[1 - eps, 1 + eps]. The same model is used for crossbar
// conductances and the physical parameters of the nonlinear circuits.
#pragma once

#include "circuit/nonlinear_circuit.hpp"
#include "math/matrix.hpp"
#include "math/random.hpp"

namespace pnc::circuit {

/// Affine per-component overlay applied at conductance-materialization
/// time: g' = keep .* g + add (elementwise, microsiemens). The identity is
/// all-ones `keep`, all-zeros `add`. Discrete defects compose into this
/// form — open (keep 0, add 0), short (keep 0, add G_max), stuck-at (keep
/// 0, add g), drift (keep 1 + delta, add 0) — so one overlay per theta
/// block captures an arbitrary fault set; the fault layer (src/faults)
/// builds overlays and the pNN forward pass applies them after projection
/// and printing variation.
struct ConductanceOverlay {
    math::Matrix keep;  ///< multiplicative part
    math::Matrix add;   ///< additive part (microsiemens)

    static ConductanceOverlay identity(std::size_t rows, std::size_t cols);

    bool is_identity() const;

    /// Materialized conductances: keep .* g + add.
    math::Matrix apply(const math::Matrix& g) const;
};

class VariationModel {
public:
    /// eps is the half-width of the relative variation (0.05 = 5%).
    explicit VariationModel(double eps);

    double epsilon() const { return eps_; }
    bool is_nominal() const { return eps_ == 0.0; }

    /// One multiplicative factor from U[1 - eps, 1 + eps].
    double sample_factor(math::Rng& rng) const;

    /// A matrix of i.i.d. factors (used to perturb a whole theta matrix).
    math::Matrix sample_factors(math::Rng& rng, std::size_t rows, std::size_t cols) const;

    /// Perturb every physical component value of a nonlinear circuit.
    Omega perturb(const Omega& omega, math::Rng& rng) const;

private:
    double eps_;
};

}  // namespace pnc::circuit
