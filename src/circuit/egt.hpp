// Compact model of a printed inorganic electrolyte-gated transistor (EGT).
//
// The paper simulates its nonlinear subcircuits with a proprietary printed
// PDK [Rasheed et al. 2018] inside Cadence. We substitute an EKV-style
// smooth compact model: low operating voltage (0..1 V), steep electrolyte
// gating, n-type enhancement behaviour, drain current scaling with W/L.
// The model is C-infinity, which keeps the Newton DC solver and the
// downstream curve fitting well-behaved.
//
//   Id = I0 * (W/L) * [ sp((Vgs - Vth)/a)^2 - sp((Vgd - Vth)/a)^2 ]
//
// with sp = softplus and a the gating slope. The two-term form handles
// saturation and triode continuously and is antisymmetric under drain/source
// exchange, which the nodal solver relies on.
#pragma once

namespace pnc::circuit {

struct EgtParams {
    double i0 = 2.0e-6;    ///< A; current prefactor per square (W/L = 1)
    double vth = 0.15;     ///< V; threshold voltage (low-voltage electrolyte gating)
    double slope = 0.05;   ///< V; gating slope a = n * kT/q equivalent
    /// Electrolyte gate leakage: ionic conduction to the grounded source,
    /// modelled as rho / (W * L) Ohm. Makes absolute resistor values (not
    /// just divider ratios) matter, as the paper's Table I discussion notes.
    double gate_leak_rho = 2.0e10;  ///< Ohm * um^2
    double w_min = 200.0;  ///< um; printable channel width range (Table I)
    double w_max = 800.0;
    double l_min = 10.0;   ///< um; printable channel length range (Table I)
    double l_max = 70.0;
};

/// Drain current and its partial derivatives at a bias point.
struct EgtOperatingPoint {
    double id;      ///< A, positive = current flowing drain -> source
    double did_dvd; ///< dId/dVd
    double did_dvg; ///< dId/dVg
    double did_dvs; ///< dId/dVs
};

class Egt {
public:
    /// W and L in micrometers. Throws std::invalid_argument outside the
    /// printable geometry range.
    Egt(double w_um, double l_um, const EgtParams& params = {});

    double width() const { return w_; }
    double length() const { return l_; }
    const EgtParams& params() const { return params_; }

    /// Current for given terminal voltages (any ordering of Vd vs Vs).
    double drain_current(double vd, double vg, double vs) const;

    /// Current plus analytic derivatives (used to assemble the Jacobian).
    EgtOperatingPoint evaluate(double vd, double vg, double vs) const;

private:
    double w_, l_;
    EgtParams params_;
};

}  // namespace pnc::circuit
