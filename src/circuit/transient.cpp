#include "circuit/transient.hpp"

#include <cmath>
#include <stdexcept>

namespace pnc::circuit {

std::vector<double> TransientResult::node_waveform(NodeId node) const {
    std::vector<double> out;
    out.reserve(voltages.size());
    for (const auto& step : voltages) out.push_back(step.at(node));
    return out;
}

TransientResult TransientSolver::simulate(
    Netlist& netlist, const std::function<void(double, Netlist&)>& stimulus) const {
    if (!(options_.time_step > 0.0) || !(options_.duration > 0.0))
        throw std::invalid_argument("TransientSolver: time step and duration must be > 0");

    const DcSolver dc(options_.newton);
    TransientResult result;

    // t = 0: DC operating point with the initial stimulus applied.
    if (stimulus) stimulus(0.0, netlist);
    DcSolution state = dc.solve(netlist);
    result.time.push_back(0.0);
    result.voltages.push_back(state.voltages);

    const double dt = options_.time_step;
    const auto steps = static_cast<std::size_t>(std::ceil(options_.duration / dt));
    for (std::size_t k = 1; k <= steps; ++k) {
        const double t = static_cast<double>(k) * dt;
        if (stimulus) stimulus(t, netlist);

        // Backward-Euler companion model: i_C = (C/dt) (v - v_prev), i.e. a
        // conductance C/dt plus a history current injecting (C/dt) v_prev
        // into n1 and drawing it from n2.
        LinearStamps stamps;
        for (const auto& cap : netlist.capacitors()) {
            const double g_eq = cap.capacitance / dt;
            const double i_hist =
                g_eq * (state.voltages[cap.n1] - state.voltages[cap.n2]);
            stamps.conductances.push_back({cap.n1, cap.n2, g_eq});
            stamps.currents.push_back({cap.n1, i_hist});
            stamps.currents.push_back({cap.n2, -i_hist});
        }

        state = dc.solve(netlist, state.voltages, &stamps);
        result.time.push_back(t);
        result.voltages.push_back(state.voltages);
    }
    return result;
}

void add_egt_gate_capacitances(Netlist& netlist) {
    // Copy first: adding while iterating would invalidate the span.
    const auto transistors = netlist.transistors();
    for (const auto& t : transistors) {
        const double area = t.device.width() * t.device.length();
        netlist.add_capacitor(t.gate, t.source, kEgtGateCapacitancePerArea * area);
    }
}

double measure_step_response_latency(const Omega& omega, NonlinearCircuitKind kind,
                                     double settle_band, const TransientOptions& options) {
    Netlist net = build_nonlinear_circuit(omega, kind);
    add_egt_gate_capacitances(net);
    const NodeId in = net.find_node("in");
    const NodeId out = net.find_node("out");

    // Full-swing input step at t = 0+ (operating point settles at Vin = 0).
    const TransientSolver solver(options);
    const auto result = solver.simulate(net, [&](double t, Netlist& n) {
        n.set_source_voltage(in, t > 0.0 ? kVdd : 0.0);
    });

    const auto waveform = result.node_waveform(out);
    const double final_value = waveform.back();
    // Last time the output was *outside* the settle band.
    double latency = 0.0;
    for (std::size_t i = 0; i < waveform.size(); ++i)
        if (std::abs(waveform[i] - final_value) > settle_band) latency = result.time[i];
    // The output crosses into the band one step after the last violation.
    return std::min(latency + options.time_step, options.duration);
}

}  // namespace pnc::circuit
