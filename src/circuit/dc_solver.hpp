// DC operating-point solver (modified nodal analysis + damped Newton).
//
// This is the stand-in for the SPICE engine the paper drives through
// Cadence: it computes node voltages satisfying Kirchhoff's current law
// with the EGT compact model linearized at each Newton iteration. Voltage
// sources are ideal node-to-ground rails, so they are eliminated from the
// unknown vector rather than stamped with branch currents.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "math/matrix.hpp"

namespace pnc::circuit {

struct DcSolverOptions {
    int max_iterations = 200;
    double tolerance = 1e-10;   ///< max |KCL residual| in A
    double max_step = 0.25;     ///< Newton step clamp per node, V
    double gmin = 1e-12;        ///< diagonal conductance for robustness, S
};

struct DcSolution {
    std::vector<double> voltages;  // indexed by NodeId
    int iterations = 0;
    bool converged = false;
    double residual = 0.0;
};

/// Extra linear elements stamped on top of a netlist for one solve — the
/// backward-Euler companion models of the transient engine.
struct LinearStamps {
    struct Conductance {
        NodeId n1;
        NodeId n2;
        double siemens;
    };
    struct CurrentInjection {
        NodeId node;
        double amps;  ///< flowing *into* the node
    };
    std::vector<Conductance> conductances;
    std::vector<CurrentInjection> currents;
};

class DcSolver {
public:
    explicit DcSolver(DcSolverOptions options = {}) : options_(options) {}

    /// Solve for the DC operating point. `initial_guess` (indexed by NodeId,
    /// may be empty) warm-starts Newton — a DC sweep passes the previous
    /// point for continuation. Throws std::runtime_error if Newton fails to
    /// converge.
    DcSolution solve(const Netlist& netlist, const std::vector<double>& initial_guess = {},
                     const LinearStamps* extra = nullptr) const;

    /// Sweep the source at `swept_node` through `values`, returning the
    /// voltage at `observed_node` for each value. Mutates the netlist's
    /// source value (restored to the last sweep entry on return).
    std::vector<double> sweep(Netlist& netlist, NodeId swept_node, NodeId observed_node,
                              const std::vector<double>& values) const;

private:
    DcSolverOptions options_;
};

}  // namespace pnc::circuit
