// Static power analysis of printed circuits.
//
// Printed neuromorphic circuits burn static power in every resistor and in
// the conducting EGT channels (there is no complementary pull-up). Given a
// DC solution, this module reports the dissipation per element class and
// the supply current drawn from each source — the numbers behind the
// "printed NNs are low-power but not free" trade-off.
#pragma once

#include "circuit/dc_solver.hpp"

namespace pnc::circuit {

struct PowerReport {
    double resistor_watts = 0.0;
    double transistor_watts = 0.0;
    double total() const { return resistor_watts + transistor_watts; }
    /// Current delivered by each voltage source (A, positive = sourcing),
    /// aligned with Netlist::sources().
    std::vector<double> source_currents;
};

/// Compute dissipation from a netlist and its DC solution.
PowerReport analyze_power(const Netlist& netlist, const DcSolution& solution);

/// Convenience: solve the operating point, then analyze.
PowerReport analyze_power(const Netlist& netlist);

}  // namespace pnc::circuit
