// Transient analysis (backward Euler) for the printed circuit substrate.
//
// Printed electronics pays for its cheapness with latency: electrolyte
// gate capacitances are enormous (double-layer gating, ~30 fF/um^2 of
// channel area), so printed inverters settle in micro- to milliseconds.
// The transient engine quantifies that: each step replaces every capacitor
// by its backward-Euler companion model (conductance C/dt in parallel with
// a history current) and solves the resulting nonlinear DC problem with
// the same Newton kernel as the operating-point analysis.
#pragma once

#include <functional>

#include "circuit/dc_solver.hpp"
#include "circuit/nonlinear_circuit.hpp"

namespace pnc::circuit {

/// Electrolyte double-layer capacitance per channel area, F/um^2.
inline constexpr double kEgtGateCapacitancePerArea = 3.0e-14;

struct TransientOptions {
    double time_step = 1e-6;       ///< s
    double duration = 20e-3;       ///< s
    DcSolverOptions newton{};      ///< per-step Newton settings
};

struct TransientResult {
    std::vector<double> time;                   ///< s
    std::vector<std::vector<double>> voltages;  ///< per step, indexed by NodeId

    /// Waveform of one node.
    std::vector<double> node_waveform(NodeId node) const;
};

class TransientSolver {
public:
    explicit TransientSolver(TransientOptions options = {}) : options_(options) {}

    /// Integrate from the DC operating point at t = 0. `stimulus` (optional)
    /// is called before every step to update source voltages, e.g. a step
    /// or pulse on the input rail.
    TransientResult simulate(
        Netlist& netlist,
        const std::function<void(double time, Netlist&)>& stimulus = nullptr) const;

private:
    TransientOptions options_;
};

/// Add the gate-source double-layer capacitor of every EGT in the netlist
/// (C = kEgtGateCapacitancePerArea * W * L). Idempotent only if called once.
void add_egt_gate_capacitances(Netlist& netlist);

/// 10%-to-90% style settling latency of a nonlinear circuit: apply a full-
/// swing input step and report the time until the output stays within
/// `settle_band` of its final value. Returns the duration bound if the
/// output never settles.
double measure_step_response_latency(const Omega& omega, NonlinearCircuitKind kind,
                                     double settle_band = 0.02,
                                     const TransientOptions& options = {});

}  // namespace pnc::circuit
