#include "circuit/power.hpp"

#include <stdexcept>

namespace pnc::circuit {

PowerReport analyze_power(const Netlist& netlist, const DcSolution& solution) {
    if (solution.voltages.size() != netlist.node_count())
        throw std::invalid_argument("analyze_power: solution/netlist mismatch");
    const auto& v = solution.voltages;

    PowerReport report;
    for (const auto& r : netlist.resistors()) {
        const double dv = v[r.n1] - v[r.n2];
        report.resistor_watts += dv * dv / r.resistance;
    }
    for (const auto& t : netlist.transistors()) {
        const double id = t.device.drain_current(v[t.drain], v[t.gate], v[t.source]);
        report.transistor_watts += id * (v[t.drain] - v[t.source]);
    }

    // Source current = sum of element currents leaving the driven node.
    report.source_currents.reserve(netlist.sources().size());
    for (const auto& src : netlist.sources()) {
        double current = 0.0;
        for (const auto& r : netlist.resistors()) {
            if (r.n1 == src.node) current += (v[r.n1] - v[r.n2]) / r.resistance;
            if (r.n2 == src.node) current += (v[r.n2] - v[r.n1]) / r.resistance;
        }
        for (const auto& t : netlist.transistors()) {
            const double id = t.device.drain_current(v[t.drain], v[t.gate], v[t.source]);
            if (t.drain == src.node) current += id;
            if (t.source == src.node) current -= id;
        }
        report.source_currents.push_back(current);
    }
    return report;
}

PowerReport analyze_power(const Netlist& netlist) {
    return analyze_power(netlist, DcSolver().solve(netlist));
}

}  // namespace pnc::circuit
