#include "circuit/variation.hpp"

#include <stdexcept>

namespace pnc::circuit {

VariationModel::VariationModel(double eps) : eps_(eps) {
    if (eps < 0.0 || eps >= 1.0)
        throw std::invalid_argument("VariationModel: eps must be in [0, 1)");
}

double VariationModel::sample_factor(math::Rng& rng) const {
    if (eps_ == 0.0) return 1.0;
    return rng.uniform(1.0 - eps_, 1.0 + eps_);
}

math::Matrix VariationModel::sample_factors(math::Rng& rng, std::size_t rows,
                                            std::size_t cols) const {
    if (eps_ == 0.0) return math::Matrix(rows, cols, 1.0);
    return rng.uniform_matrix(rows, cols, 1.0 - eps_, 1.0 + eps_);
}

Omega VariationModel::perturb(const Omega& omega, math::Rng& rng) const {
    auto a = omega.to_array();
    for (double& v : a) v *= sample_factor(rng);
    return Omega::from_array(a);
}

}  // namespace pnc::circuit
