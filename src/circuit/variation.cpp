#include "circuit/variation.hpp"

#include <stdexcept>

namespace pnc::circuit {

ConductanceOverlay ConductanceOverlay::identity(std::size_t rows, std::size_t cols) {
    return {math::Matrix(rows, cols, 1.0), math::Matrix(rows, cols, 0.0)};
}

bool ConductanceOverlay::is_identity() const {
    for (std::size_t i = 0; i < keep.size(); ++i)
        if (keep[i] != 1.0) return false;
    for (std::size_t i = 0; i < add.size(); ++i)
        if (add[i] != 0.0) return false;
    return true;
}

math::Matrix ConductanceOverlay::apply(const math::Matrix& g) const {
    if (g.rows() != keep.rows() || g.cols() != keep.cols())
        throw std::invalid_argument("ConductanceOverlay::apply: shape mismatch");
    math::Matrix out(g.rows(), g.cols());
    for (std::size_t i = 0; i < g.size(); ++i) out[i] = keep[i] * g[i] + add[i];
    return out;
}

VariationModel::VariationModel(double eps) : eps_(eps) {
    if (eps < 0.0 || eps >= 1.0)
        throw std::invalid_argument("VariationModel: eps must be in [0, 1)");
}

double VariationModel::sample_factor(math::Rng& rng) const {
    if (eps_ == 0.0) return 1.0;
    return rng.uniform(1.0 - eps_, 1.0 + eps_);
}

math::Matrix VariationModel::sample_factors(math::Rng& rng, std::size_t rows,
                                            std::size_t cols) const {
    if (eps_ == 0.0) return math::Matrix(rows, cols, 1.0);
    return rng.uniform_matrix(rows, cols, 1.0 - eps_, 1.0 + eps_);
}

Omega VariationModel::perturb(const Omega& omega, math::Rng& rng) const {
    auto a = omega.to_array();
    for (double& v : a) v *= sample_factor(rng);
    return Omega::from_array(a);
}

}  // namespace pnc::circuit
