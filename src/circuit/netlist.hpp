// Netlist representation for the analog DC substrate.
//
// Supports exactly what printed neuromorphic circuits need: resistors,
// electrolyte-gated transistors, and ideal voltage sources to ground
// (VDD, bias and input rails). Node 0 is always ground.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/egt.hpp"

namespace pnc::circuit {

using NodeId = std::size_t;

struct Resistor {
    NodeId n1;
    NodeId n2;
    double resistance;  // Ohm
};

struct Capacitor {
    NodeId n1;
    NodeId n2;
    double capacitance;  // Farad
};

struct Transistor {
    NodeId drain;
    NodeId gate;
    NodeId source;
    Egt device;
};

struct VoltageSource {
    NodeId node;     // driven node (referenced to ground)
    double voltage;  // V
};

class Netlist {
public:
    static constexpr NodeId kGround = 0;

    Netlist();

    /// Create (or look up) a named node.
    NodeId node(const std::string& name);
    /// Look up an existing node; throws if unknown.
    NodeId find_node(const std::string& name) const;
    bool has_node(const std::string& name) const;
    std::size_t node_count() const { return node_names_.size(); }
    const std::string& node_name(NodeId id) const { return node_names_.at(id); }

    void add_resistor(NodeId n1, NodeId n2, double resistance);
    void add_capacitor(NodeId n1, NodeId n2, double capacitance);
    void add_transistor(NodeId drain, NodeId gate, NodeId source, const Egt& device);
    /// Ideal source from `node` to ground. Each node may carry one source;
    /// re-adding replaces the value (used by DC sweeps).
    void add_voltage_source(NodeId node, double voltage);
    void set_source_voltage(NodeId node, double voltage);

    const std::vector<Resistor>& resistors() const { return resistors_; }
    const std::vector<Capacitor>& capacitors() const { return capacitors_; }
    const std::vector<Transistor>& transistors() const { return transistors_; }
    const std::vector<VoltageSource>& sources() const { return sources_; }

    /// Voltage of the source driving `node`, if any.
    std::optional<double> source_voltage(NodeId node) const;

    /// Human-readable SPICE-flavoured listing (used by the exporter example).
    std::string to_spice() const;

private:
    void check_node(NodeId id, const char* what) const;

    std::vector<std::string> node_names_;
    std::unordered_map<std::string, NodeId> node_index_;
    std::vector<Resistor> resistors_;
    std::vector<Capacitor> capacitors_;
    std::vector<Transistor> transistors_;
    std::vector<VoltageSource> sources_;
};

}  // namespace pnc::circuit
