#include "circuit/crossbar.hpp"

#include <stdexcept>
#include <string>

namespace pnc::circuit {

double CrossbarColumn::output(const std::vector<double>& input_voltages) const {
    if (input_voltages.size() != input_conductances.size())
        throw std::invalid_argument("CrossbarColumn: expected " +
                                    std::to_string(input_conductances.size()) +
                                    " inputs, got " + std::to_string(input_voltages.size()));
    double numerator = bias_conductance * bias_voltage;
    double total = bias_conductance + drain_conductance;
    for (std::size_t i = 0; i < input_conductances.size(); ++i) {
        if (input_conductances[i] < 0.0)
            throw std::invalid_argument("CrossbarColumn: negative conductance");
        numerator += input_conductances[i] * input_voltages[i];
        total += input_conductances[i];
    }
    if (total <= 0.0)
        throw std::invalid_argument("CrossbarColumn: floating output (total conductance 0)");
    return numerator / total;
}

std::vector<double> Crossbar::outputs(const std::vector<double>& input_voltages) const {
    std::vector<double> out;
    out.reserve(columns.size());
    for (const auto& column : columns) out.push_back(column.output(input_voltages));
    return out;
}

void apply_conductance_fault(CrossbarColumn& column, std::size_t resistor_index,
                             ConductanceFaultKind kind, double value) {
    const std::size_t n_in = column.input_conductances.size();
    double* g = nullptr;
    if (resistor_index < n_in)
        g = &column.input_conductances[resistor_index];
    else if (resistor_index == n_in)
        g = &column.bias_conductance;
    else if (resistor_index == n_in + 1)
        g = &column.drain_conductance;
    else
        throw std::invalid_argument("apply_conductance_fault: resistor index " +
                                    std::to_string(resistor_index) + " out of range");
    switch (kind) {
        case ConductanceFaultKind::kOpen: *g = 0.0; break;
        case ConductanceFaultKind::kShort:
        case ConductanceFaultKind::kStuckAt: *g = value; break;
        case ConductanceFaultKind::kDrift: *g *= value; break;
    }
    if (*g < 0.0)
        throw std::invalid_argument("apply_conductance_fault: negative conductance");
}

Netlist build_crossbar_netlist(const CrossbarColumn& column) {
    Netlist net;
    const NodeId z = net.node("z");
    for (std::size_t i = 0; i < column.input_conductances.size(); ++i) {
        const NodeId in = net.node("in" + std::to_string(i));
        net.add_voltage_source(in, 0.0);
        if (column.input_conductances[i] > 0.0)
            net.add_resistor(in, z, 1.0 / column.input_conductances[i]);
    }
    const NodeId bias = net.node("bias");
    net.add_voltage_source(bias, column.bias_voltage);
    if (column.bias_conductance > 0.0)
        net.add_resistor(bias, z, 1.0 / column.bias_conductance);
    if (column.drain_conductance > 0.0)
        net.add_resistor(z, Netlist::kGround, 1.0 / column.drain_conductance);
    return net;
}

}  // namespace pnc::circuit
