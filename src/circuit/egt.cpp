#include "circuit/egt.hpp"

#include <cmath>
#include <stdexcept>

namespace pnc::circuit {

namespace {

double softplus(double x) { return std::max(x, 0.0) + std::log1p(std::exp(-std::abs(x))); }
double logistic(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

Egt::Egt(double w_um, double l_um, const EgtParams& params)
    : w_(w_um), l_(l_um), params_(params) {
    // Printing variation may push the drawn geometry slightly outside the
    // Table I design window, so only physical validity is enforced here;
    // design-space membership is checked by surrogate::DesignSpace.
    if (!(w_um > 0.0) || !(l_um > 0.0))
        throw std::invalid_argument("Egt: W and L must be positive");
}

double Egt::drain_current(double vd, double vg, double vs) const {
    return evaluate(vd, vg, vs).id;
}

EgtOperatingPoint Egt::evaluate(double vd, double vg, double vs) const {
    const double a = params_.slope;
    const double beta = params_.i0 * (w_ / l_);
    const double xs = (vg - vs - params_.vth) / a;
    const double xd = (vg - vd - params_.vth) / a;
    const double fs = softplus(xs);
    const double fd = softplus(xd);
    // d(sp(x)^2)/dx = 2 sp(x) sigma(x)
    const double dfs = 2.0 * fs * logistic(xs) / a;
    const double dfd = 2.0 * fd * logistic(xd) / a;

    EgtOperatingPoint op;
    op.id = beta * (fs * fs - fd * fd);
    op.did_dvg = beta * (dfs - dfd);
    op.did_dvd = beta * dfd;
    op.did_dvs = -beta * dfs;
    return op;
}

}  // namespace pnc::circuit
