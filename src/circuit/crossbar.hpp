// Printed resistor crossbar (Eq. 1 of the paper).
//
// One crossbar column computes a normalized weighted sum of its input
// voltages plus a bias rail:
//
//   Vz = ( sum_i g_i V_i + g_b Vb ) / ( sum_i g_i + g_b + g_d )
//
// The closed form is what the pNN training abstraction uses; the netlist
// builder realizes the same column with discrete resistors so tests and the
// hardware-in-the-loop checker can confirm the abstraction against the
// analog solver.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/nonlinear_circuit.hpp"

namespace pnc::circuit {

struct CrossbarColumn {
    std::vector<double> input_conductances;  ///< g_i, Siemens (>= 0; 0 = not printed)
    double bias_conductance = 0.0;           ///< g_b
    double drain_conductance = 0.0;          ///< g_d (to ground)
    double bias_voltage = kVdd;              ///< Vb

    /// Closed-form output voltage (Eq. 1). Throws if input count mismatches
    /// or the total conductance is zero (floating output).
    double output(const std::vector<double>& input_voltages) const;
};

/// Multi-column crossbar: column j weights the shared inputs independently.
struct Crossbar {
    std::vector<CrossbarColumn> columns;

    std::vector<double> outputs(const std::vector<double>& input_voltages) const;
};

/// Build one crossbar column as a resistor netlist. Nodes "in<i>", "bias"
/// and "z" exist afterwards; inputs and bias carry voltage sources.
/// Zero conductances are skipped (component not printed).
Netlist build_crossbar_netlist(const CrossbarColumn& column);

}  // namespace pnc::circuit
