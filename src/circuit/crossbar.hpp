// Printed resistor crossbar (Eq. 1 of the paper).
//
// One crossbar column computes a normalized weighted sum of its input
// voltages plus a bias rail:
//
//   Vz = ( sum_i g_i V_i + g_b Vb ) / ( sum_i g_i + g_b + g_d )
//
// The closed form is what the pNN training abstraction uses; the netlist
// builder realizes the same column with discrete resistors so tests and the
// hardware-in-the-loop checker can confirm the abstraction against the
// analog solver.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/nonlinear_circuit.hpp"

namespace pnc::circuit {

struct CrossbarColumn {
    std::vector<double> input_conductances;  ///< g_i, Siemens (>= 0; 0 = not printed)
    double bias_conductance = 0.0;           ///< g_b
    double drain_conductance = 0.0;          ///< g_d (to ground)
    double bias_voltage = kVdd;              ///< Vb

    /// Closed-form output voltage (Eq. 1). Throws if input count mismatches
    /// or the total conductance is zero (floating output).
    double output(const std::vector<double>& input_voltages) const;
};

/// Multi-column crossbar: column j weights the shared inputs independently.
struct Crossbar {
    std::vector<CrossbarColumn> columns;

    std::vector<double> outputs(const std::vector<double>& input_voltages) const;
};

/// Build one crossbar column as a resistor netlist. Nodes "in<i>", "bias"
/// and "z" exist afterwards; inputs and bias carry voltage sources.
/// Zero conductances are skipped (component not printed).
Netlist build_crossbar_netlist(const CrossbarColumn& column);

/// Discrete defect of one printed resistor.
enum class ConductanceFaultKind {
    kOpen,     ///< broken print: g = 0 (the resistor vanishes from the netlist)
    kShort,    ///< short to the rail pair: g = value (the technology G_max)
    kStuckAt,  ///< conductance frozen at `value`
    kDrift,    ///< systematic shift: g *= value
};

/// Apply a defect to one resistor of a column in place. `resistor_index`
/// addresses the inputs first, then the bias resistor, then the drain
/// resistor. The closed-form `output` of the faulted column matches the MNA
/// solve of its faulted netlist (test-enforced), so the pNN-level fault
/// abstraction and the analog ground truth agree.
void apply_conductance_fault(CrossbarColumn& column, std::size_t resistor_index,
                             ConductanceFaultKind kind, double value = 0.0);

}  // namespace pnc::circuit
