#include "circuit/nonlinear_circuit.hpp"

#include <algorithm>
#include <stdexcept>

namespace pnc::circuit {

Omega Omega::from_array(const std::array<double, kDimension>& a) {
    Omega o;
    o.r1 = a[0];
    o.r2 = a[1];
    o.r3 = a[2];
    o.r4 = a[3];
    o.r5 = a[4];
    o.w = a[5];
    o.l = a[6];
    return o;
}

namespace {

void require_positive(const Omega& omega) {
    const auto a = omega.to_array();
    for (double v : a)
        if (!(v > 0.0))
            throw std::invalid_argument("nonlinear circuit: all omega entries must be > 0");
}

}  // namespace

Netlist build_nonlinear_circuit(const Omega& omega, NonlinearCircuitKind kind,
                                const EgtParams& egt) {
    require_positive(omega);
    Netlist net;
    const NodeId in = net.node("in");
    const NodeId vdd = net.node("vdd");
    net.add_voltage_source(vdd, kVdd);
    net.add_voltage_source(in, 0.0);

    const Egt transistor(omega.w, omega.l, egt);
    const double gate_leak = egt.gate_leak_rho / (omega.w * omega.l);

    if (kind == NonlinearCircuitKind::kPtanh) {
        // Stage 1: attenuating divider (R1 series, R2 shunt to ground) into
        // an EGT inverter loaded by R5.
        const NodeId g1 = net.node("g1");
        const NodeId d1 = net.node("d1");
        net.add_resistor(in, g1, omega.r1);
        net.add_resistor(g1, Netlist::kGround, omega.r2);
        net.add_resistor(g1, Netlist::kGround, gate_leak);
        net.add_resistor(vdd, d1, omega.r5);
        net.add_transistor(d1, g1, Netlist::kGround, transistor);

        // Stage 2: divider (R3 series from d1, R4 shunt to ground) into a
        // second inverter with the fixed representative load; two inversions
        // make the overall transfer increasing.
        const NodeId g2 = net.node("g2");
        const NodeId out = net.node("out");
        net.add_resistor(d1, g2, omega.r3);
        net.add_resistor(g2, Netlist::kGround, omega.r4);
        net.add_resistor(g2, Netlist::kGround, gate_leak);
        net.add_resistor(vdd, out, kPtanhStage2Load);
        net.add_transistor(out, g2, Netlist::kGround, transistor);
    } else {
        // Negative-weight circuit: one inverter stage (decreasing transfer).
        // Divider R1/R2 shifts the gate, R3 is the stage load and R4/R5
        // divide the drain swing down to the output.
        const NodeId g1 = net.node("g1");
        const NodeId d1 = net.node("d1");
        const NodeId out = net.node("out");
        net.add_resistor(in, g1, omega.r1);
        net.add_resistor(g1, Netlist::kGround, omega.r2);
        net.add_resistor(g1, Netlist::kGround, gate_leak);
        net.add_resistor(vdd, d1, omega.r3);
        net.add_transistor(d1, g1, Netlist::kGround, transistor);
        net.add_resistor(d1, out, omega.r4);
        net.add_resistor(out, Netlist::kGround, omega.r5);
    }
    return net;
}

double CharacteristicCurve::swing() const {
    if (vout.empty()) return 0.0;
    const auto [lo, hi] = std::minmax_element(vout.begin(), vout.end());
    return *hi - *lo;
}

bool CharacteristicCurve::is_monotone(bool increasing) const {
    const double tol = 1e-9;
    for (std::size_t i = 1; i < vout.size(); ++i) {
        const double step = vout[i] - vout[i - 1];
        if (increasing ? step < -tol : step > tol) return false;
    }
    return true;
}

CharacteristicCurve simulate_characteristic(const Omega& omega, NonlinearCircuitKind kind,
                                            std::size_t points, const EgtParams& egt,
                                            const DcSolverOptions& solver_options) {
    if (points < 2) throw std::invalid_argument("simulate_characteristic: points < 2");
    Netlist net = build_nonlinear_circuit(omega, kind, egt);
    const NodeId in = net.find_node("in");
    const NodeId out = net.find_node("out");

    CharacteristicCurve curve;
    curve.vin.resize(points);
    for (std::size_t i = 0; i < points; ++i)
        curve.vin[i] = kVdd * static_cast<double>(i) / static_cast<double>(points - 1);

    DcSolver solver(solver_options);
    curve.vout = solver.sweep(net, in, out, curve.vin);
    return curve;
}

}  // namespace pnc::circuit
