#include "circuit/dc_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/linalg.hpp"

namespace pnc::circuit {

using math::Matrix;

DcSolution DcSolver::solve(const Netlist& netlist, const std::vector<double>& initial_guess,
                           const LinearStamps* extra) const {
    const std::size_t n_nodes = netlist.node_count();

    // Partition nodes into fixed (ground / source-driven) and unknown.
    std::vector<double> fixed_voltage(n_nodes, 0.0);
    std::vector<bool> is_fixed(n_nodes, false);
    is_fixed[Netlist::kGround] = true;
    for (const auto& src : netlist.sources()) {
        is_fixed[src.node] = true;
        fixed_voltage[src.node] = src.voltage;
    }
    std::vector<std::size_t> unknown_index(n_nodes, SIZE_MAX);
    std::vector<NodeId> unknown_nodes;
    for (NodeId i = 0; i < n_nodes; ++i) {
        if (!is_fixed[i]) {
            unknown_index[i] = unknown_nodes.size();
            unknown_nodes.push_back(i);
        }
    }
    const std::size_t n = unknown_nodes.size();

    std::vector<double> v(n_nodes, 0.5);  // mid-rail initial guess
    for (NodeId i = 0; i < n_nodes; ++i)
        if (is_fixed[i]) v[i] = fixed_voltage[i];
    if (!initial_guess.empty()) {
        if (initial_guess.size() != n_nodes)
            throw std::invalid_argument("DcSolver: initial guess size mismatch");
        for (NodeId i = 0; i < n_nodes; ++i)
            if (!is_fixed[i]) v[i] = initial_guess[i];
    }

    DcSolution solution;
    solution.voltages = v;
    if (n == 0) {
        solution.converged = true;
        return solution;
    }

    for (int iter = 0; iter < options_.max_iterations; ++iter) {
        // Assemble KCL residual F (current leaving each unknown node) and
        // Jacobian J = dF/dV restricted to unknown nodes.
        Matrix jac(n, n);
        Matrix residual(n, 1);
        for (std::size_t k = 0; k < n; ++k) jac(k, k) = options_.gmin;

        auto stamp_conductance_pair = [&](NodeId a, NodeId b, double current_ab,
                                          double di_dva, double di_dvb) {
            // current_ab flows out of a into b.
            if (!is_fixed[a]) {
                const std::size_t ia = unknown_index[a];
                residual(ia, 0) += current_ab;
                jac(ia, unknown_index[a]) += di_dva;
                if (!is_fixed[b]) jac(ia, unknown_index[b]) += di_dvb;
            }
            if (!is_fixed[b]) {
                const std::size_t ib = unknown_index[b];
                residual(ib, 0) -= current_ab;
                jac(ib, unknown_index[b]) -= di_dvb;
                if (!is_fixed[a]) jac(ib, unknown_index[a]) -= di_dva;
            }
        };

        for (const auto& r : netlist.resistors()) {
            const double g = 1.0 / r.resistance;
            const double i_ab = g * (v[r.n1] - v[r.n2]);
            stamp_conductance_pair(r.n1, r.n2, i_ab, g, -g);
        }

        if (extra) {
            for (const auto& c : extra->conductances) {
                const double i_ab = c.siemens * (v[c.n1] - v[c.n2]);
                stamp_conductance_pair(c.n1, c.n2, i_ab, c.siemens, -c.siemens);
            }
            for (const auto& inj : extra->currents) {
                if (!is_fixed[inj.node])
                    residual(unknown_index[inj.node], 0) -= inj.amps;
            }
        }

        for (const auto& t : netlist.transistors()) {
            const auto op = t.device.evaluate(v[t.drain], v[t.gate], v[t.source]);
            // Drain current op.id flows drain -> source through the channel.
            if (!is_fixed[t.drain]) {
                const std::size_t id = unknown_index[t.drain];
                residual(id, 0) += op.id;
                jac(id, unknown_index[t.drain]) += op.did_dvd;
                if (!is_fixed[t.gate]) jac(id, unknown_index[t.gate]) += op.did_dvg;
                if (!is_fixed[t.source]) jac(id, unknown_index[t.source]) += op.did_dvs;
            }
            if (!is_fixed[t.source]) {
                const std::size_t is = unknown_index[t.source];
                residual(is, 0) -= op.id;
                if (!is_fixed[t.drain]) jac(is, unknown_index[t.drain]) -= op.did_dvd;
                if (!is_fixed[t.gate]) jac(is, unknown_index[t.gate]) -= op.did_dvg;
                jac(is, unknown_index[t.source]) -= op.did_dvs;
            }
            // The EGT gate is capacitively coupled: no DC gate current. Gate
            // leakage, where modelled, is an explicit resistor in the netlist.
        }

        double max_residual = residual.max_abs();
        solution.residual = max_residual;
        solution.iterations = iter;
        if (max_residual < options_.tolerance) {
            solution.converged = true;
            solution.voltages = v;
            return solution;
        }

        Matrix delta = math::lu_solve(jac, residual);
        for (std::size_t k = 0; k < n; ++k) {
            const double step = std::clamp(-delta(k, 0), -options_.max_step, options_.max_step);
            v[unknown_nodes[k]] += step;
        }
    }

    throw std::runtime_error("DcSolver: Newton failed to converge (residual " +
                             std::to_string(solution.residual) + " A)");
}

std::vector<double> DcSolver::sweep(Netlist& netlist, NodeId swept_node,
                                    NodeId observed_node,
                                    const std::vector<double>& values) const {
    std::vector<double> out;
    out.reserve(values.size());
    std::vector<double> guess;  // warm start: continuation along the sweep
    for (double value : values) {
        netlist.set_source_voltage(swept_node, value);
        const DcSolution sol = solve(netlist, guess);
        guess = sol.voltages;
        out.push_back(sol.voltages[observed_node]);
    }
    return out;
}

}  // namespace pnc::circuit
