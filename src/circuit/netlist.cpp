#include "circuit/netlist.hpp"

#include <sstream>
#include <stdexcept>

namespace pnc::circuit {

Netlist::Netlist() {
    node_names_.push_back("0");
    node_index_.emplace("0", kGround);
}

NodeId Netlist::node(const std::string& name) {
    auto [it, inserted] = node_index_.try_emplace(name, node_names_.size());
    if (inserted) node_names_.push_back(name);
    return it->second;
}

NodeId Netlist::find_node(const std::string& name) const {
    auto it = node_index_.find(name);
    if (it == node_index_.end())
        throw std::invalid_argument("Netlist: unknown node '" + name + "'");
    return it->second;
}

bool Netlist::has_node(const std::string& name) const {
    return node_index_.count(name) != 0;
}

void Netlist::check_node(NodeId id, const char* what) const {
    if (id >= node_names_.size())
        throw std::invalid_argument(std::string(what) + ": node id " + std::to_string(id) +
                                    " does not exist");
}

void Netlist::add_resistor(NodeId n1, NodeId n2, double resistance) {
    check_node(n1, "add_resistor");
    check_node(n2, "add_resistor");
    if (!(resistance > 0.0))
        throw std::invalid_argument("add_resistor: resistance must be positive");
    if (n1 == n2) throw std::invalid_argument("add_resistor: both terminals on one node");
    resistors_.push_back({n1, n2, resistance});
}

void Netlist::add_capacitor(NodeId n1, NodeId n2, double capacitance) {
    check_node(n1, "add_capacitor");
    check_node(n2, "add_capacitor");
    if (!(capacitance > 0.0))
        throw std::invalid_argument("add_capacitor: capacitance must be positive");
    if (n1 == n2) throw std::invalid_argument("add_capacitor: both terminals on one node");
    capacitors_.push_back({n1, n2, capacitance});
}

void Netlist::add_transistor(NodeId drain, NodeId gate, NodeId source, const Egt& device) {
    check_node(drain, "add_transistor");
    check_node(gate, "add_transistor");
    check_node(source, "add_transistor");
    transistors_.push_back({drain, gate, source, device});
}

void Netlist::add_voltage_source(NodeId node, double voltage) {
    check_node(node, "add_voltage_source");
    if (node == kGround)
        throw std::invalid_argument("add_voltage_source: cannot drive ground");
    set_source_voltage(node, voltage);
}

void Netlist::set_source_voltage(NodeId node, double voltage) {
    check_node(node, "set_source_voltage");
    for (auto& src : sources_) {
        if (src.node == node) {
            src.voltage = voltage;
            return;
        }
    }
    sources_.push_back({node, voltage});
}

std::optional<double> Netlist::source_voltage(NodeId node) const {
    for (const auto& src : sources_)
        if (src.node == node) return src.voltage;
    return std::nullopt;
}

std::string Netlist::to_spice() const {
    std::ostringstream os;
    os << "* printed neuromorphic netlist (" << node_names_.size() - 1
       << " nodes, " << resistors_.size() << " resistors, " << transistors_.size()
       << " EGTs)\n";
    std::size_t idx = 1;
    for (const auto& r : resistors_)
        os << "R" << idx++ << " " << node_names_[r.n1] << " " << node_names_[r.n2] << " "
           << r.resistance << "\n";
    idx = 1;
    for (const auto& c : capacitors_)
        os << "C" << idx++ << " " << node_names_[c.n1] << " " << node_names_[c.n2] << " "
           << c.capacitance << "\n";
    idx = 1;
    for (const auto& t : transistors_)
        os << "XT" << idx++ << " " << node_names_[t.drain] << " " << node_names_[t.gate]
           << " " << node_names_[t.source] << " egt W=" << t.device.width() << "u L="
           << t.device.length() << "u\n";
    idx = 1;
    for (const auto& s : sources_)
        os << "V" << idx++ << " " << node_names_[s.node] << " 0 " << s.voltage << "\n";
    os << ".end\n";
    return os.str();
}

}  // namespace pnc::circuit
