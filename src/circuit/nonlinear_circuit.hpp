// The paper's two nonlinear subcircuits, built from physical parameters.
//
// omega = [R1, R2, R3, R4, R5, W, L] parameterizes:
//
//  * the ptanh circuit — two cascaded resistor-loaded EGT inverter stages
//    with attenuating gate dividers (series R from the signal, shunt R to
//    ground), giving a monotonically *increasing* tanh-like transfer (Eq. 2),
//    and
//  * the negative-weight circuit — a single inverter stage with an output
//    divider, giving a monotonically *decreasing* transfer fitted by the
//    negated tanh form (Eq. 3).
//
// The exact printed-PDK schematic is proprietary; these topologies are our
// documented substitute (DESIGN.md): they use the same component inventory
// and Table I value ranges, they are ratio-sensitive in k1 = R2/R1,
// k2 = R4/R3 and k3 = W/L, and they produce curve families with varying
// amplitude, center and steepness — the properties the surrogate-model
// pipeline actually consumes.
#pragma once

#include <array>
#include <vector>

#include "circuit/dc_solver.hpp"
#include "circuit/netlist.hpp"

namespace pnc::circuit {

/// Physical design parameters of a nonlinear subcircuit.
/// Resistances in Ohm, transistor geometry in micrometers.
struct Omega {
    double r1 = 100.0;
    double r2 = 50.0;
    double r3 = 100e3;
    double r4 = 50e3;
    double r5 = 100e3;
    double w = 400.0;
    double l = 40.0;

    static constexpr std::size_t kDimension = 7;

    std::array<double, kDimension> to_array() const { return {r1, r2, r3, r4, r5, w, l}; }
    static Omega from_array(const std::array<double, kDimension>& a);

    double k1() const { return r2 / r1; }  ///< divider ratio R2/R1
    double k2() const { return r4 / r3; }  ///< divider ratio R4/R3
    double k3() const { return w / l; }    ///< aspect ratio W/L
};

enum class NonlinearCircuitKind { kPtanh, kNegativeWeight };

/// Supply rail used throughout the printed system.
inline constexpr double kVdd = 1.0;
/// Fixed pull-up load of the ptanh output stage (models the following
/// crossbar input impedance lumped with the printed load).
inline constexpr double kPtanhStage2Load = 150e3;

/// Reference designs used when the nonlinear circuits are *not* learnable
/// (the prior-work baseline): mid-of-space parameterizations whose fitted
/// curves are centered near Vdd/2 with healthy swing.
inline constexpr Omega kDefaultPtanhOmega{435.0, 95.0, 458e3, 103e3, 98e3, 373.0, 33.0};
inline constexpr Omega kDefaultNegativeWeightOmega{500.0, 150.0, 120e3, 50e3, 450e3,
                                                   500.0, 35.0};

/// Default omega for a circuit kind.
constexpr const Omega& default_omega(NonlinearCircuitKind kind) {
    return kind == NonlinearCircuitKind::kPtanh ? kDefaultPtanhOmega
                                                : kDefaultNegativeWeightOmega;
}

/// Build the netlist. Nodes "in", "out" and "vdd" are guaranteed to exist;
/// "in" and "vdd" carry voltage sources (vdd = kVdd, in initialized to 0).
Netlist build_nonlinear_circuit(const Omega& omega, NonlinearCircuitKind kind,
                                const EgtParams& egt = {});

/// A DC sweep result of a nonlinear circuit.
struct CharacteristicCurve {
    std::vector<double> vin;
    std::vector<double> vout;

    /// Total output swing max - min.
    double swing() const;
    /// True if vout is monotone (non-strictly) in the given direction.
    bool is_monotone(bool increasing) const;
};

/// Sweep Vin over [0, kVdd] with `points` samples and record Vout.
CharacteristicCurve simulate_characteristic(const Omega& omega, NonlinearCircuitKind kind,
                                            std::size_t points = 64,
                                            const EgtParams& egt = {},
                                            const DcSolverOptions& solver = {});

}  // namespace pnc::circuit
