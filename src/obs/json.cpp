#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pnc::obs::json {

Value Value::boolean(bool b) {
    Value v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
}

Value Value::number(double n) {
    Value v;
    v.kind_ = Kind::kNumber;
    v.number_ = n;
    return v;
}

Value Value::string(std::string s) {
    Value v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
}

Value Value::array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
}

Value Value::object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
}

bool Value::as_bool() const {
    if (kind_ != Kind::kBool) throw std::runtime_error("json: not a bool");
    return bool_;
}

double Value::as_number() const {
    if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
    return number_;
}

const std::string& Value::as_string() const {
    if (kind_ != Kind::kString) throw std::runtime_error("json: not a string");
    return string_;
}

const std::vector<Value>& Value::items() const {
    if (kind_ != Kind::kArray) throw std::runtime_error("json: not an array");
    return items_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
    if (kind_ != Kind::kObject) throw std::runtime_error("json: not an object");
    return members_;
}

const Value* Value::find(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    const Value* found = nullptr;
    for (const auto& [k, v] : members_)
        if (k == key) found = &v;
    return found;
}

void Value::push_back(Value v) {
    if (kind_ != Kind::kArray) throw std::runtime_error("json: push_back on non-array");
    items_.push_back(std::move(v));
}

void Value::set(const std::string& key, Value v) {
    if (kind_ != Kind::kObject) throw std::runtime_error("json: set on non-object");
    for (auto& [k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += static_cast<char>(c);
                }
        }
    }
    return out;
}

namespace {

void dump_number(std::string& out, double n) {
    if (!std::isfinite(n)) {
        // JSON has no inf/nan; null is the conventional stand-in.
        out += "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", n);
    out += buf;
}

void dump_value(std::string& out, const Value& v) {
    switch (v.kind()) {
        case Value::Kind::kNull: out += "null"; break;
        case Value::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
        case Value::Kind::kNumber: dump_number(out, v.as_number()); break;
        case Value::Kind::kString:
            out += '"';
            out += escape(v.as_string());
            out += '"';
            break;
        case Value::Kind::kArray: {
            out += '[';
            bool first = true;
            for (const auto& item : v.items()) {
                if (!first) out += ',';
                first = false;
                dump_value(out, item);
            }
            out += ']';
            break;
        }
        case Value::Kind::kObject: {
            out += '{';
            bool first = true;
            for (const auto& [key, member] : v.members()) {
                if (!first) out += ',';
                first = false;
                out += '"';
                out += escape(key);
                out += "\":";
                dump_value(out, member);
            }
            out += '}';
            break;
        }
    }
}

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    Value parse_document() {
        Value v = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) fail("trailing characters");
        return v;
    }

private:
    const std::string& text_;
    std::size_t pos_ = 0;

    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("json parse error at offset " + std::to_string(pos_) + ": " +
                                 what);
    }

    void skip_whitespace() {
        while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                       text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* literal) {
        std::size_t len = 0;
        while (literal[len]) ++len;
        if (text_.compare(pos_, len, literal) != 0) return false;
        pos_ += len;
        return true;
    }

    Value parse_value() {
        skip_whitespace();
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Value::string(parse_string());
            case 't':
                if (consume_literal("true")) return Value::boolean(true);
                fail("bad literal");
            case 'f':
                if (consume_literal("false")) return Value::boolean(false);
                fail("bad literal");
            case 'n':
                if (consume_literal("null")) return Value::null();
                fail("bad literal");
            default: return parse_number();
        }
    }

    Value parse_object() {
        expect('{');
        Value obj = Value::object();
        skip_whitespace();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skip_whitespace();
            std::string key = parse_string();
            skip_whitespace();
            expect(':');
            obj.set(key, parse_value());
            skip_whitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Value parse_array() {
        expect('[');
        Value arr = Value::array();
        skip_whitespace();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            arr.push_back(parse_value());
            skip_whitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("bad \\u escape");
                    }
                    // UTF-8 encode the basic-plane code point (surrogate
                    // pairs are not emitted by our own writer).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: fail("bad escape character");
            }
        }
    }

    Value parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            pos_ = start;
            fail("malformed number '" + token + "'");
        }
        return Value::number(parsed);
    }
};

}  // namespace

Value Value::parse(const std::string& text) { return Parser(text).parse_document(); }

std::string Value::dump() const {
    std::string out;
    dump_value(out, *this);
    return out;
}

}  // namespace pnc::obs::json
