#include "obs/spanstack.hpp"

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pnc::obs::spanstack {

namespace detail {
std::atomic<bool> g_collecting{false};
}  // namespace detail

void set_collecting(bool on) {
    detail::g_collecting.store(on, std::memory_order_relaxed);
}

namespace {

/// One thread's stack. Lives in thread_local storage; a raw pointer to it
/// sits in the registry from first use until thread exit.
struct Slot {
    std::uint64_t id = 0;
    std::atomic<std::uint32_t> depth{0};
    std::atomic<const char*> frames[kMaxDepth] = {};
};

struct Registry {
    std::mutex mutex;
    std::vector<Slot*> slots;
    std::uint64_t next_id = 1;
};

/// Leaked on purpose: thread_local destructors (deregistration) and the
/// sampler can both outlive any static-destruction order.
Registry& registry() {
    static Registry* r = new Registry();
    return *r;
}

struct TlsRegistration {
    Slot slot;
    TlsRegistration() {
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        slot.id = r.next_id++;
        r.slots.push_back(&slot);
    }
    ~TlsRegistration() {
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        for (std::size_t i = 0; i < r.slots.size(); ++i)
            if (r.slots[i] == &slot) {
                r.slots.erase(r.slots.begin() + i);
                break;
            }
    }
};

Slot& tls_slot() {
    thread_local TlsRegistration registration;
    return registration.slot;
}

void push(const char* interned_name) {
    Slot& slot = tls_slot();
    const std::uint32_t d = slot.depth.load(std::memory_order_relaxed);
    if (d < kMaxDepth) slot.frames[d].store(interned_name, std::memory_order_relaxed);
    // Release so a sampler that acquires the new depth sees the frame store.
    slot.depth.store(d + 1, std::memory_order_release);
}

}  // namespace

const char* intern(std::string_view name) {
    // Keys are immortal: the map node owns the std::string whose c_str()
    // we hand out, and the map itself is leaked.
    static auto* table = new std::map<std::string, bool>();
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    const auto [it, inserted] = table->emplace(std::string(name), true);
    return it->first.c_str();
}

bool enter(std::string_view name) {
    if (!collecting()) return false;
    push(intern(name));
    return true;
}

bool enter_interned(const char* interned_name) {
    if (!collecting()) return false;
    push(interned_name);
    return true;
}

void exit() noexcept {
    Slot& slot = tls_slot();
    const std::uint32_t d = slot.depth.load(std::memory_order_relaxed);
    if (d > 0) slot.depth.store(d - 1, std::memory_order_release);
}

void ensure_registered() { (void)tls_slot(); }

void for_each_stack(const std::function<void(const StackSample&)>& fn) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    StackSample sample;
    for (Slot* slot : r.slots) {
        sample.thread_id = slot->id;
        const std::uint32_t d = slot->depth.load(std::memory_order_acquire);
        sample.depth = d < kMaxDepth ? d : kMaxDepth;
        for (std::size_t i = 0; i < sample.depth; ++i)
            sample.frames[i] = slot->frames[i].load(std::memory_order_relaxed);
        fn(sample);
    }
}

std::size_t registered_threads() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.slots.size();
}

}  // namespace pnc::obs::spanstack
