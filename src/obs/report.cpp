#include "obs/report.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pnc::obs {

namespace {

constexpr const char* kReportSchema = "pnc-run-report/1";
constexpr const char* kTraceSchema = "pnc-trace/1";

json::Value number_array(const std::vector<double>& values) {
    json::Value arr = json::Value::array();
    for (double v : values) arr.push_back(json::Value::number(v));
    return arr;
}

void write_text_file(const std::string& path, const std::string& text) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("obs: cannot write " + path);
    os << text;
    if (!os) throw std::runtime_error("obs: failed writing " + path);
}

json::Value trace_node_document(const TraceNode& node) {
    json::Value doc = json::Value::object();
    doc.set("name", json::Value::string(node.name));
    doc.set("count", json::Value::number(static_cast<double>(node.count)));
    doc.set("seconds", json::Value::number(node.seconds));
    json::Value children = json::Value::array();
    for (const auto& child : node.children) children.push_back(trace_node_document(*child));
    doc.set("children", std::move(children));
    return doc;
}

}  // namespace

json::Value run_report_document(const MetricsSnapshot& snapshot, const RunMeta& meta) {
    json::Value doc = json::Value::object();
    doc.set("schema", json::Value::string(kReportSchema));

    json::Value meta_obj = json::Value::object();
    meta_obj.set("tool", json::Value::string(meta.tool));
    meta_obj.set("command", json::Value::string(meta.command));
    for (const auto& [key, value] : meta.extra) meta_obj.set(key, json::Value::string(value));
    doc.set("meta", std::move(meta_obj));

    json::Value counters = json::Value::object();
    for (const auto& [name, value] : snapshot.counters)
        counters.set(name, json::Value::number(static_cast<double>(value)));
    doc.set("counters", std::move(counters));

    json::Value gauges = json::Value::object();
    for (const auto& [name, value] : snapshot.gauges)
        gauges.set(name, json::Value::number(value));
    doc.set("gauges", std::move(gauges));

    json::Value histograms = json::Value::object();
    for (const auto& h : snapshot.histograms) {
        json::Value entry = json::Value::object();
        entry.set("count", json::Value::number(static_cast<double>(h.count)));
        entry.set("sum", json::Value::number(h.sum));
        entry.set("min", json::Value::number(h.min));
        entry.set("max", json::Value::number(h.max));
        entry.set("p50", json::Value::number(h.quantile(0.50)));
        entry.set("p90", json::Value::number(h.quantile(0.90)));
        entry.set("p99", json::Value::number(h.quantile(0.99)));
        entry.set("bounds", number_array(h.bounds));
        json::Value counts = json::Value::array();
        for (std::uint64_t c : h.bucket_counts)
            counts.push_back(json::Value::number(static_cast<double>(c)));
        entry.set("bucket_counts", std::move(counts));
        histograms.set(h.name, std::move(entry));
    }
    doc.set("histograms", std::move(histograms));

    json::Value series = json::Value::object();
    for (const auto& [name, values] : snapshot.series) series.set(name, number_array(values));
    doc.set("series", std::move(series));

    return doc;
}

void write_run_report(const std::string& path, const RunMeta& meta) {
    const auto doc = run_report_document(MetricsRegistry::global().snapshot(), meta);
    write_text_file(path, doc.dump() + "\n");
}

namespace {

/// RFC-4180 field quoting: a name containing a comma, quote or newline is
/// wrapped in quotes with inner quotes doubled, so the `kind,name,field,
/// value` contract survives arbitrary metric names.
std::string csv_field(const std::string& s) {
    if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

}  // namespace

std::string metrics_csv(const MetricsSnapshot& snapshot) {
    std::ostringstream os;
    os.precision(17);
    os << "kind,name,field,value\n";
    for (const auto& [name, value] : snapshot.counters)
        os << "counter," << csv_field(name) << ",value," << value << "\n";
    for (const auto& [name, value] : snapshot.gauges)
        os << "gauge," << csv_field(name) << ",value," << value << "\n";
    for (const auto& h : snapshot.histograms) {
        const std::string name = csv_field(h.name);
        os << "histogram," << name << ",count," << h.count << "\n";
        os << "histogram," << name << ",sum," << h.sum << "\n";
        os << "histogram," << name << ",min," << h.min << "\n";
        os << "histogram," << name << ",max," << h.max << "\n";
        os << "histogram," << name << ",p50," << h.quantile(0.50) << "\n";
        os << "histogram," << name << ",p90," << h.quantile(0.90) << "\n";
        os << "histogram," << name << ",p99," << h.quantile(0.99) << "\n";
    }
    for (const auto& [name, values] : snapshot.series)
        for (std::size_t i = 0; i < values.size(); ++i)
            os << "series," << csv_field(name) << "," << i << "," << values[i] << "\n";
    return os.str();
}

void write_metrics_csv(const std::string& path) {
    write_text_file(path, metrics_csv(MetricsRegistry::global().snapshot()));
}

json::Value trace_document(const TraceNode& root) {
    json::Value doc = json::Value::object();
    doc.set("schema", json::Value::string(kTraceSchema));
    doc.set("root", trace_node_document(root));
    return doc;
}

void write_trace_json(const std::string& path) {
    const auto root = Tracer::global().snapshot();
    write_text_file(path, trace_document(*root).dump() + "\n");
}

namespace {

/// Rejects non-numbers *and* non-finite numbers. A NaN/Inf value is dumped
/// as `null` (JSON has neither), so after a round trip it shows up here as
/// a non-number — name that case explicitly in the error.
std::string check_finite(const json::Value& value, const std::string& where) {
    if (!value.is_number())
        return where + " is not a finite number (NaN/Inf serializes as null)";
    if (!std::isfinite(value.as_number())) return where + " is not finite";
    return "";
}

std::string check_numeric_object(const json::Value& doc, const char* key) {
    const json::Value* section = doc.find(key);
    if (!section || !section->is_object()) return std::string(key) + " object missing";
    for (const auto& [name, value] : section->members())
        if (auto err = check_finite(value, std::string(key) + "." + name); !err.empty())
            return err;
    return "";
}

}  // namespace

std::string validate_run_report(const json::Value& doc) {
    if (!doc.is_object()) return "document is not an object";
    const json::Value* schema = doc.find("schema");
    if (!schema || !schema->is_string() || schema->as_string() != kReportSchema)
        return std::string("schema is not \"") + kReportSchema + "\"";

    const json::Value* meta = doc.find("meta");
    if (!meta || !meta->is_object()) return "meta object missing";
    for (const char* key : {"tool", "command"}) {
        const json::Value* field = meta->find(key);
        if (!field || !field->is_string()) return std::string("meta.") + key + " string missing";
    }

    if (auto err = check_numeric_object(doc, "counters"); !err.empty()) return err;
    if (auto err = check_numeric_object(doc, "gauges"); !err.empty()) return err;

    const json::Value* histograms = doc.find("histograms");
    if (!histograms || !histograms->is_object()) return "histograms object missing";
    for (const auto& [name, h] : histograms->members()) {
        if (!h.is_object()) return "histograms." + name + " is not an object";
        for (const char* key : {"count", "sum", "min", "max", "p50", "p90", "p99"}) {
            const json::Value* field = h.find(key);
            if (!field) return "histograms." + name + "." + key + " number missing";
            if (auto err = check_finite(*field, "histograms." + name + "." + key);
                !err.empty())
                return err;
        }
        const json::Value* bounds = h.find("bounds");
        const json::Value* counts = h.find("bucket_counts");
        if (!bounds || !bounds->is_array())
            return "histograms." + name + ".bounds array missing";
        for (const auto& b : bounds->items())
            if (auto err = check_finite(b, "histograms." + name + ".bounds entry");
                !err.empty())
                return err;
        if (!counts || !counts->is_array())
            return "histograms." + name + ".bucket_counts array missing";
        if (counts->items().size() != bounds->items().size() + 1)
            return "histograms." + name + ": bucket_counts must have bounds+1 entries";
    }

    const json::Value* series = doc.find("series");
    if (!series || !series->is_object()) return "series object missing";
    for (const auto& [name, values] : series->members()) {
        if (!values.is_array()) return "series." + name + " is not an array";
        for (const auto& v : values.items())
            if (auto err = check_finite(v, "series." + name + " entry"); !err.empty())
                return err;
    }
    return "";
}

namespace {

std::string validate_trace_node(const json::Value& node, const std::string& where) {
    if (!node.is_object()) return where + " is not an object";
    const json::Value* name = node.find("name");
    if (!name || !name->is_string() || name->as_string().empty())
        return where + ".name must be a non-empty string";
    for (const char* key : {"count", "seconds"}) {
        const json::Value* v = node.find(key);
        if (!v) return where + "." + key + " number missing";
        if (auto err = check_finite(*v, where + "." + key); !err.empty()) return err;
        if (v->as_number() < 0.0) return where + "." + key + " must be >= 0";
    }
    const json::Value* children = node.find("children");
    if (!children || !children->is_array()) return where + ".children array missing";
    for (std::size_t i = 0; i < children->items().size(); ++i) {
        const std::string child_where = where + ".children[" + std::to_string(i) + "]";
        if (auto err = validate_trace_node(children->items()[i], child_where); !err.empty())
            return err;
    }
    return "";
}

}  // namespace

std::string validate_trace(const json::Value& doc) {
    if (!doc.is_object()) return "document is not an object";
    const json::Value* schema = doc.find("schema");
    if (!schema || !schema->is_string() || schema->as_string() != kTraceSchema)
        return std::string("schema is not \"") + kTraceSchema + "\"";
    const json::Value* root = doc.find("root");
    if (!root) return "root node missing";
    return validate_trace_node(*root, "root");
}

}  // namespace pnc::obs
