// Run-report and trace exporters.
//
// A run report is one JSON document ("pnc-run-report/1") with the full
// metrics snapshot plus free-form meta; the trace tree is a separate
// document ("pnc-trace/1"). The exact schema is documented in
// docs/OBSERVABILITY.md and enforced by validate_run_report (used by the
// tests and available to downstream tooling). CSV export flattens the same
// snapshot for spreadsheet consumption.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pnc::obs {

/// Free-form report header: which tool produced the run and with what
/// parameters. All values land under the "meta" object as strings.
struct RunMeta {
    std::string tool;     ///< e.g. "pnc" or "bench_table2"
    std::string command;  ///< subcommand or protocol summary
    std::vector<std::pair<std::string, std::string>> extra;
};

/// The report document for a snapshot (pure function; no I/O).
json::Value run_report_document(const MetricsSnapshot& snapshot, const RunMeta& meta);

/// Snapshot the global registry and write the report JSON to `path`.
/// Throws std::runtime_error if the file cannot be written.
void write_run_report(const std::string& path, const RunMeta& meta);

/// Flattened CSV of the global registry: `kind,name,field,value` rows
/// (series emit one row per step with the step index in `field`).
std::string metrics_csv(const MetricsSnapshot& snapshot);
void write_metrics_csv(const std::string& path);

/// The trace document ("pnc-trace/1") for a tree / the global Tracer.
json::Value trace_document(const TraceNode& root);
void write_trace_json(const std::string& path);

/// "" when `doc` is a well-formed pnc-run-report/1, else a one-line
/// description of the first violation. Every counter/gauge/histogram value
/// must be a *finite* number: a NaN/Inf serializes as `null` (see
/// json::Value::dump) and is rejected here so it cannot slip into a
/// baseline unnoticed.
std::string validate_run_report(const json::Value& doc);

/// "" when `doc` is a well-formed pnc-trace/1 tree (schema tag plus a root
/// node of finite, non-negative counts/seconds all the way down).
std::string validate_trace(const json::Value& doc);

}  // namespace pnc::obs
