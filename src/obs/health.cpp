#include "obs/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace pnc::obs {

namespace {

double env_double(const char* name, double fallback) {
    const char* raw = std::getenv(name);
    if (!raw || !*raw) return fallback;
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end == raw || *end != '\0' || !std::isfinite(v) || v <= 0.0) return fallback;
    return v;
}

/// Median of the last `window` entries of `history` (empty -> 0).
double trailing_median(const std::vector<double>& history, int window) {
    if (history.empty()) return 0.0;
    const std::size_t n = std::min<std::size_t>(history.size(),
                                                static_cast<std::size_t>(std::max(window, 1)));
    std::vector<double> tail(history.end() - static_cast<std::ptrdiff_t>(n), history.end());
    const std::size_t mid = tail.size() / 2;
    std::nth_element(tail.begin(), tail.begin() + static_cast<std::ptrdiff_t>(mid), tail.end());
    if (tail.size() % 2 == 1) return tail[mid];
    const double upper = tail[mid];
    std::nth_element(tail.begin(), tail.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                     tail.begin() + static_cast<std::ptrdiff_t>(mid));
    return 0.5 * (tail[mid - 1] + upper);
}

/// Severity order for verdicts; higher wins.
int verdict_rank(const std::string& kind) {
    if (kind == "loss_divergence") return 3;
    if (kind == "gradient_explosion") return 2;
    if (kind == "sustained_saturation") return 1;
    return 0;
}

bool is_divergence_kind(const std::string& kind) {
    return kind == "loss_divergence" || kind == "gradient_explosion";
}

std::mutex g_health_out_mutex;
std::string g_health_out_path;
std::string g_health_out_tool = "pnc";

struct CounterProbe {
    Counter* elements = nullptr;
    Counter* hits = nullptr;
};

/// Rate of `hits` per `elements` accumulated since the last probe.
double delta_rate(const CounterProbe& probe, std::uint64_t& elems_seen,
                  std::uint64_t& hits_seen) {
    const std::uint64_t elems = probe.elements->value();
    const std::uint64_t hits = probe.hits->value();
    const std::uint64_t d_elems = elems >= elems_seen ? elems - elems_seen : elems;
    const std::uint64_t d_hits = hits >= hits_seen ? hits - hits_seen : hits;
    elems_seen = elems;
    hits_seen = hits;
    if (d_elems == 0) return 0.0;
    return static_cast<double>(d_hits) / static_cast<double>(d_elems);
}

}  // namespace

HealthConfig HealthConfig::from_env() {
    HealthConfig config;
    config.loss_spike_factor = env_double("PNC_HEALTH_SPIKE_FACTOR", config.loss_spike_factor);
    config.grad_norm_limit = env_double("PNC_HEALTH_GRAD_LIMIT", config.grad_norm_limit);
    config.ring_depth = static_cast<std::size_t>(
        env_double("PNC_HEALTH_RING", static_cast<double>(config.ring_depth)));
    return config;
}

void set_health_out(const std::string& path, const std::string& tool) {
    std::lock_guard<std::mutex> lock(g_health_out_mutex);
    g_health_out_path = path;
    g_health_out_tool = tool;
}

std::string health_out_path() {
    std::lock_guard<std::mutex> lock(g_health_out_mutex);
    return g_health_out_path;
}

std::string health_out_tool() {
    std::lock_guard<std::mutex> lock(g_health_out_mutex);
    return g_health_out_tool;
}

HealthMonitor::HealthMonitor(HealthConfig config,
                             std::vector<std::pair<std::string, std::string>> meta)
    : config_(std::move(config)), meta_(std::move(meta)) {
    if (config_.ring_depth == 0) config_.ring_depth = 1;
    // Baseline the instrumentation counters so rates cover only this run.
    auto& registry = MetricsRegistry::global();
    clamp_elems_seen_ = registry.counter("ad.clamp_ste.elements_total").value();
    clamp_sat_seen_ = registry.counter("ad.clamp_ste.saturated_total").value();
    proj_elems_seen_ = registry.counter("ad.project_g.elements_total").value();
    proj_sat_seen_ = registry.counter("ad.project_g.saturated_total").value();
    ood_elems_seen_ = registry.counter("surrogate.ood.features_total").value();
    ood_out_seen_ = registry.counter("surrogate.ood.out_of_domain_total").value();
}

void HealthMonitor::record_epoch(EpochHealth epoch) {
    if (finished_) return;
    auto& registry = MetricsRegistry::global();
    const CounterProbe clamp{&registry.counter("ad.clamp_ste.elements_total"),
                             &registry.counter("ad.clamp_ste.saturated_total")};
    const CounterProbe proj{&registry.counter("ad.project_g.elements_total"),
                            &registry.counter("ad.project_g.saturated_total")};
    const CounterProbe ood{&registry.counter("surrogate.ood.features_total"),
                           &registry.counter("surrogate.ood.out_of_domain_total")};
    epoch.omega_sat_rate = delta_rate(clamp, clamp_elems_seen_, clamp_sat_seen_);
    epoch.theta_sat_rate = delta_rate(proj, proj_elems_seen_, proj_sat_seen_);
    epoch.surrogate_ood_fraction = delta_rate(ood, ood_elems_seen_, ood_out_seen_);

    registry.series("health.grad_norm_global").append(epoch.grad_norm_global);
    registry.series("health.grad_norm_theta").append(epoch.grad_norm_theta);
    registry.series("health.grad_norm_omega").append(epoch.grad_norm_omega);
    registry.series("health.theta_sat_rate").append(epoch.theta_sat_rate);
    registry.series("health.omega_sat_rate").append(epoch.omega_sat_rate);
    registry.series("health.surrogate_ood_fraction").append(epoch.surrogate_ood_fraction);

    ++epochs_;
    if (std::isfinite(epoch.grad_norm_global))
        max_grad_norm_ = std::max(max_grad_norm_, epoch.grad_norm_global);

    const std::uint64_t before = anomalies_total_;
    run_watchdog(epoch);

    ring_.push_back(epoch);
    while (ring_.size() > config_.ring_depth) ring_.pop_front();

    // First anomaly: flush the flight recorder immediately so the dump
    // survives even if the run is killed mid-divergence.
    if (before == 0 && anomalies_total_ > 0) write_dump();
}

void HealthMonitor::run_watchdog(const EpochHealth& e) {
    // ---- loss_divergence -------------------------------------------------
    if (!std::isfinite(e.train_loss) || !std::isfinite(e.val_loss)) {
        ++nonfinite_loss_total_;
        MetricsRegistry::global().counter("health.nonfinite_loss_total").add(1);
        flag("loss_divergence", "non_finite", e.epoch,
             std::isfinite(e.train_loss) ? e.val_loss : e.train_loss, 0.0);
    }
    if (std::isfinite(e.train_loss)) {
        const double median = trailing_median(train_losses_, config_.trailing_window);
        if (static_cast<int>(train_losses_.size()) >= config_.min_history &&
            median > config_.loss_floor &&
            e.train_loss > config_.loss_spike_factor * median) {
            flag("loss_divergence", "spike", e.epoch, e.train_loss,
                 config_.loss_spike_factor * median);
        }
        if (has_best_loss_ && e.epoch >= config_.warmup_epochs) {
            const double base = std::max(best_loss_, config_.loss_floor);
            if (e.train_loss > config_.loss_runaway_factor * base) {
                flag("loss_divergence", "runaway", e.epoch, e.train_loss,
                     config_.loss_runaway_factor * base);
            }
        }
        train_losses_.push_back(e.train_loss);
        if (!has_best_loss_ || e.train_loss < best_loss_) {
            best_loss_ = e.train_loss;
            has_best_loss_ = true;
        }
    }

    // ---- gradient_explosion ----------------------------------------------
    if (e.nonfinite_grad_elements > 0 || !std::isfinite(e.grad_norm_global)) {
        nonfinite_grad_total_ += std::max<std::uint64_t>(e.nonfinite_grad_elements, 1);
        MetricsRegistry::global()
            .counter("health.nonfinite_grad_total")
            .add(std::max<std::uint64_t>(e.nonfinite_grad_elements, 1));
        flag("gradient_explosion", "non_finite", e.epoch,
             static_cast<double>(e.nonfinite_grad_elements), 0.0);
    }
    if (std::isfinite(e.grad_norm_global)) {
        if (e.grad_norm_global > config_.grad_norm_limit) {
            flag("gradient_explosion", "limit", e.epoch, e.grad_norm_global,
                 config_.grad_norm_limit);
        }
        const double median = trailing_median(grad_norms_, config_.trailing_window);
        if (static_cast<int>(grad_norms_.size()) >= config_.min_history &&
            median > config_.grad_floor &&
            e.grad_norm_global > config_.grad_spike_factor * median) {
            flag("gradient_explosion", "spike", e.epoch, e.grad_norm_global,
                 config_.grad_spike_factor * median);
        }
        grad_norms_.push_back(e.grad_norm_global);
    }

    // ---- sustained_saturation --------------------------------------------
    if (e.omega_sat_rate >= config_.saturation_rate) {
        ++saturated_run_;
        if (saturated_run_ >= config_.saturation_epochs && !saturation_flagged_) {
            saturation_flagged_ = true;
            flag("sustained_saturation", "omega_clip", e.epoch, e.omega_sat_rate,
                 config_.saturation_rate);
        }
    } else {
        saturated_run_ = 0;
        saturation_flagged_ = false;
    }
}

void HealthMonitor::flag(const char* kind, const char* detail, int epoch, double value,
                         double threshold) {
    ++anomalies_total_;
    MetricsRegistry::global().counter("health.anomalies_total").add(1);
    if (anomalies_.size() < config_.max_anomalies)
        anomalies_.push_back({kind, detail, epoch, value, threshold});
    if (anomaly_events_ < config_.max_anomaly_events) {
        ++anomaly_events_;
        emit_event("health.anomaly",
                   {EventField::str("kind", kind), EventField::str("detail", detail),
                    EventField::num("epoch", epoch), EventField::num("value", value),
                    EventField::num("threshold", threshold)});
    }
}

HealthMonitor::Summary HealthMonitor::summarize() const {
    Summary summary;
    summary.epochs = epochs_;
    summary.anomalies_total = anomalies_total_;
    summary.max_grad_norm = max_grad_norm_;
    int rank = 0;
    for (const auto& anomaly : anomalies_) {
        if (is_divergence_kind(anomaly.kind)) summary.diverged = true;
        const int r = verdict_rank(anomaly.kind);
        if (r > rank) {
            rank = r;
            summary.verdict = anomaly.kind;
        }
    }
    return summary;
}

HealthMonitor::Summary HealthMonitor::finish() {
    const Summary summary = summarize();
    if (finished_) return summary;
    finished_ = true;
    auto& registry = MetricsRegistry::global();
    registry.gauge("health.diverged").set(summary.diverged ? 1.0 : 0.0);
    registry.gauge("health.max_grad_norm").set(summary.max_grad_norm);
    emit_event("health.finish",
               {EventField::num("epochs", summary.epochs),
                EventField::num("anomalies", static_cast<double>(summary.anomalies_total)),
                EventField::num("diverged", summary.diverged ? 1.0 : 0.0),
                EventField::str("verdict", summary.verdict)});
    write_dump();
    return summary;
}

json::Value HealthMonitor::document() const {
    using json::Value;
    const Summary summary = summarize();
    Value doc = Value::object();
    doc.set("schema", Value::string("pnc-health/1"));

    Value meta = Value::object();
    meta.set("tool", Value::string(health_out_tool()));
    for (const auto& [key, value] : meta_) meta.set(key, Value::string(value));
    doc.set("meta", std::move(meta));

    Value config = Value::object();
    config.set("loss_spike_factor", Value::number(config_.loss_spike_factor));
    config.set("loss_runaway_factor", Value::number(config_.loss_runaway_factor));
    config.set("loss_floor", Value::number(config_.loss_floor));
    config.set("trailing_window", Value::number(config_.trailing_window));
    config.set("min_history", Value::number(config_.min_history));
    config.set("warmup_epochs", Value::number(config_.warmup_epochs));
    config.set("grad_norm_limit", Value::number(config_.grad_norm_limit));
    config.set("grad_spike_factor", Value::number(config_.grad_spike_factor));
    config.set("grad_floor", Value::number(config_.grad_floor));
    config.set("saturation_rate", Value::number(config_.saturation_rate));
    config.set("saturation_epochs", Value::number(config_.saturation_epochs));
    config.set("ring_depth", Value::number(static_cast<double>(config_.ring_depth)));
    doc.set("config", std::move(config));

    Value status = Value::object();
    status.set("epochs_run", Value::number(epochs_));
    status.set("anomalies_total", Value::number(static_cast<double>(anomalies_total_)));
    status.set("nonfinite_loss_total",
               Value::number(static_cast<double>(nonfinite_loss_total_)));
    status.set("nonfinite_grad_total",
               Value::number(static_cast<double>(nonfinite_grad_total_)));
    status.set("diverged", Value::boolean(summary.diverged));
    status.set("verdict", Value::string(summary.verdict));
    status.set("max_grad_norm", Value::number(summary.max_grad_norm));
    doc.set("status", std::move(status));

    Value anomalies = Value::array();
    for (const auto& a : anomalies_) {
        Value entry = Value::object();
        entry.set("kind", Value::string(a.kind));
        entry.set("detail", Value::string(a.detail));
        entry.set("epoch", Value::number(a.epoch));
        entry.set("value", Value::number(a.value));
        entry.set("threshold", Value::number(a.threshold));
        anomalies.push_back(std::move(entry));
    }
    doc.set("anomalies", std::move(anomalies));

    Value ring = Value::array();
    for (const auto& e : ring_) {
        Value entry = Value::object();
        entry.set("epoch", Value::number(e.epoch));
        entry.set("train_loss", Value::number(e.train_loss));
        entry.set("val_loss", Value::number(e.val_loss));
        entry.set("grad_norm_theta", Value::number(e.grad_norm_theta));
        entry.set("grad_norm_omega", Value::number(e.grad_norm_omega));
        entry.set("grad_norm_global", Value::number(e.grad_norm_global));
        entry.set("nonfinite_grad_elements",
                  Value::number(static_cast<double>(e.nonfinite_grad_elements)));
        entry.set("rng_streams_consumed",
                  Value::number(static_cast<double>(e.rng_streams_consumed)));
        entry.set("theta_sat_rate", Value::number(e.theta_sat_rate));
        entry.set("omega_sat_rate", Value::number(e.omega_sat_rate));
        entry.set("surrogate_ood_fraction", Value::number(e.surrogate_ood_fraction));
        ring.push_back(std::move(entry));
    }
    doc.set("ring", std::move(ring));
    return doc;
}

void HealthMonitor::write_dump() const {
    const std::string path = health_out_path();
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "[obs] cannot write health dump to %s\n", path.c_str());
        return;
    }
    out << document().dump() << "\n";
}

namespace {

const char* kVerdicts[] = {"healthy", "sustained_saturation", "gradient_explosion",
                           "loss_divergence"};
const char* kKinds[] = {"loss_divergence", "gradient_explosion", "sustained_saturation"};

bool known_verdict(const std::string& v) {
    for (const char* k : kVerdicts)
        if (v == k) return true;
    return false;
}

bool known_kind(const std::string& v) {
    for (const char* k : kKinds)
        if (v == k) return true;
    return false;
}

/// Number or null (non-finite values serialize as null).
bool numeric_or_null(const json::Value* v) {
    return v != nullptr && (v->is_number() || v->kind() == json::Value::Kind::kNull);
}

}  // namespace

std::string validate_health(const json::Value& doc) {
    using json::Value;
    if (!doc.is_object()) return "health document is not an object";
    const Value* schema = doc.find("schema");
    if (!schema || !schema->is_string() || schema->as_string() != "pnc-health/1")
        return "schema is not \"pnc-health/1\"";

    const Value* meta = doc.find("meta");
    if (!meta || !meta->is_object()) return "missing meta object";
    for (const auto& [key, value] : meta->members())
        if (!value.is_string()) return "meta." + key + " is not a string";

    const Value* config = doc.find("config");
    if (!config || !config->is_object()) return "missing config object";
    for (const auto& [key, value] : config->members())
        if (!value.is_number()) return "config." + key + " is not a number";

    const Value* status = doc.find("status");
    if (!status || !status->is_object()) return "missing status object";
    for (const char* key : {"epochs_run", "anomalies_total"}) {
        const Value* v = status->find(key);
        if (!v || !v->is_number()) return std::string("status.") + key + " is not a number";
    }
    const Value* diverged = status->find("diverged");
    if (!diverged || !diverged->is_bool()) return "status.diverged is not a bool";
    const Value* verdict = status->find("verdict");
    if (!verdict || !verdict->is_string() || !known_verdict(verdict->as_string()))
        return "status.verdict is not a known verdict";

    const Value* anomalies = doc.find("anomalies");
    if (!anomalies || !anomalies->is_array()) return "missing anomalies array";
    for (const Value& entry : anomalies->items()) {
        if (!entry.is_object()) return "anomaly entry is not an object";
        const Value* kind = entry.find("kind");
        if (!kind || !kind->is_string() || !known_kind(kind->as_string()))
            return "anomaly kind is not a known kind";
        const Value* detail = entry.find("detail");
        if (!detail || !detail->is_string()) return "anomaly detail is not a string";
        const Value* epoch = entry.find("epoch");
        if (!epoch || !epoch->is_number()) return "anomaly epoch is not a number";
        // value / threshold may be null: non-finite observations (NaN loss)
        // have no JSON number representation.
        if (!numeric_or_null(entry.find("value"))) return "anomaly value is not numeric";
        if (!numeric_or_null(entry.find("threshold")))
            return "anomaly threshold is not numeric";
    }

    const Value* ring = doc.find("ring");
    if (!ring || !ring->is_array()) return "missing ring array";
    for (const Value& entry : ring->items()) {
        if (!entry.is_object()) return "ring entry is not an object";
        const Value* epoch = entry.find("epoch");
        if (!epoch || !epoch->is_number()) return "ring epoch is not a number";
        for (const char* key :
             {"train_loss", "val_loss", "grad_norm_theta", "grad_norm_omega",
              "grad_norm_global", "theta_sat_rate", "omega_sat_rate",
              "surrogate_ood_fraction"}) {
            if (!numeric_or_null(entry.find(key)))
                return std::string("ring.") + key + " is not numeric";
        }
    }
    return "";
}

HealthReading classify_health(const json::Value& doc) {
    const std::string error = validate_health(doc);
    if (!error.empty()) throw std::runtime_error("invalid pnc-health/1 document: " + error);

    HealthReading reading;
    const json::Value& status = *doc.find("status");
    reading.verdict = status.find("verdict")->as_string();
    reading.diverged = status.find("diverged")->as_bool();
    reading.epochs_run = static_cast<int>(status.find("epochs_run")->as_number());
    reading.anomalies_total =
        static_cast<std::uint64_t>(status.find("anomalies_total")->as_number());

    // Count recorded anomalies per kind, most severe first.
    for (const char* kind : kKinds) {
        std::uint64_t count = 0;
        for (const json::Value& entry : doc.find("anomalies")->items())
            if (entry.find("kind")->as_string() == kind) ++count;
        if (count > 0) reading.kinds.emplace_back(kind, count);
    }
    return reading;
}

}  // namespace pnc::obs
