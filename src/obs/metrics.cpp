#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pnc::obs {

namespace {

void atomic_min(std::atomic<double>& slot, double v) {
    double current = slot.load(std::memory_order_relaxed);
    while (v < current &&
           !slot.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
    }
}

void atomic_max(std::atomic<double>& slot, double v) {
    double current = slot.load(std::memory_order_relaxed);
    while (v > current &&
           !slot.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
    }
}

void atomic_add(std::atomic<double>& slot, double delta) {
    double current = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
    }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
    if (bounds_.empty()) throw std::invalid_argument("Histogram: empty bucket bounds");
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        throw std::invalid_argument("Histogram: bucket bounds must be ascending");
}

void Histogram::observe(double value) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const auto bucket = static_cast<std::size_t>(it - bounds_.begin());  // == size() -> overflow
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomic_add(sum_, value);
    atomic_min(min_, value);
    atomic_max(max_, value);
}

const std::vector<double>& Histogram::default_seconds_buckets() {
    // 1-2-5 decades from 1 us to 10 s: per-sample circuit evaluations sit in
    // the us..ms range, whole sweeps in the ms..s range.
    static const std::vector<double> buckets = [] {
        std::vector<double> b;
        for (double decade = 1e-6; decade < 10.0; decade *= 10.0)
            for (double step : {1.0, 2.0, 5.0}) b.push_back(decade * step);
        b.push_back(10.0);
        return b;
    }();
    return buckets;
}

double Histogram::min() const {
    const double v = min_.load(std::memory_order_relaxed);
    return std::isinf(v) ? 0.0 : v;
}

double Histogram::max() const {
    const double v = max_.load(std::memory_order_relaxed);
    return std::isinf(v) ? 0.0 : v;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
    std::vector<std::uint64_t> counts(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
    return counts;
}

double HistogramSnapshot::quantile(double q) const {
    if (count == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < bucket_counts.size(); ++b) {
        if (bucket_counts[b] == 0) continue;
        const double before = static_cast<double>(cumulative);
        cumulative += bucket_counts[b];
        if (static_cast<double>(cumulative) < target) continue;
        // Interpolate inside bucket b: [lower, upper] is the bucket span,
        // clamped to the observed extrema for the open-ended edges.
        const double lower = b == 0 ? min : bounds[b - 1];
        const double upper = b < bounds.size() ? bounds[b] : max;
        const double fraction =
            std::clamp((target - before) / static_cast<double>(bucket_counts[b]), 0.0, 1.0);
        return std::clamp(lower + fraction * (upper - lower), min, max);
    }
    return max;
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>(bounds);
    return *slot;
}

Series& MetricsRegistry::series(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = series_[name];
    if (!slot) slot = std::make_unique<Series>();
    return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto& [name, counter] : counters_) snap.counters.emplace_back(name, counter->value());
    for (const auto& [name, gauge] : gauges_) snap.gauges.emplace_back(name, gauge->value());
    for (const auto& [name, histogram] : histograms_) {
        HistogramSnapshot h;
        h.name = name;
        h.bounds = histogram->bounds();
        h.bucket_counts = histogram->bucket_counts();
        h.count = histogram->count();
        h.sum = histogram->sum();
        h.min = histogram->min();
        h.max = histogram->max();
        snap.histograms.push_back(std::move(h));
    }
    for (const auto& [name, series] : series_) snap.series.emplace_back(name, series->values());
    return snap;
}

void MetricsRegistry::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    // Retire instead of destroy: a pool worker that fetched a metric just
    // before the reset may still write to it, so freeing here would race
    // (ThreadSanitizer catches the delete). Orphaned objects are cheap and
    // invisible to snapshots.
    for (auto& [name, counter] : counters_) retired_counters_.push_back(std::move(counter));
    for (auto& [name, gauge] : gauges_) retired_gauges_.push_back(std::move(gauge));
    for (auto& [name, histogram] : histograms_)
        retired_histograms_.push_back(std::move(histogram));
    for (auto& [name, series] : series_) retired_series_.push_back(std::move(series));
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    series_.clear();
}

}  // namespace pnc::obs
